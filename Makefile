# Development targets. CI runs `make verify`.

GO ?= go

.PHONY: build test race lint vet fault verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (prefetcher, ring
# allreduce, data-parallel trainer, fault injector).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/dist/... ./internal/train/... ./internal/fault/...

# Fault-injection and resilience suite: injector determinism, retry/backoff,
# skip quotas, and the end-to-end faulted DeepCAM acceptance run.
fault:
	$(GO) test -race -run 'Fault|Resilien|Retr|Backoff|Quota|SampleError|Transient|SameSeed|SameSample|Kind|FormatInjector|Summary' ./internal/fault/... ./internal/pipeline/... ./internal/train/...

# scipplint is the repo's own stdlib-only static analyzer (internal/analysis);
# it must exit 0 on the whole module.
lint:
	$(GO) run ./cmd/scipplint ./...

vet:
	$(GO) vet ./...

verify: build vet lint test race
