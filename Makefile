# Development targets. CI runs `make verify`.

GO ?= go

.PHONY: build test race lint lint-fixtures vet fault cover fuzz verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (staged pipeline DAG
# and its sample cache, multi-tenant data service, ring allreduce,
# data-parallel trainer, fault injector, metrics registry, checkpoint
# codec, chaos-training sweep).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/iosim/... ./internal/dataserve/... ./internal/dist/... ./internal/train/... ./internal/fault/... ./internal/obs/... ./internal/nn/... ./cmd/chaostrain/... ./cmd/chaosloader/... ./cmd/dataserve/... ./cmd/overload/... ./cmd/scenarios/...

# Fault-injection and resilience suite: injector determinism, retry/backoff,
# skip quotas, the end-to-end faulted DeepCAM acceptance run, the elastic
# rank-failure / checkpoint-resume suite, the self-healing supervisor and
# cache-integrity tests, the overload-protection layer (breakers, shedding,
# tier failover, poison quarantine), and the chaos sweep smokes.
fault:
	$(GO) test -race -run 'Fault|Resilien|Retr|Backoff|Quota|SampleError|Transient|SameSeed|SameSample|Kind|FormatInjector|Summary|Elastic|Checkpoint|Rank|Supervis|Stall|Panic|Quarantine|Integrity|Chaos|BitRot|Breaker|Shed|Tier|Poison|SlowConsumer|Detach|Isolation' ./internal/fault/... ./internal/pipeline/... ./internal/train/... ./internal/dist/... ./internal/dataserve/...
	$(GO) test -race ./cmd/chaosloader/ ./cmd/dataserve/ ./cmd/overload/ ./cmd/scenarios/

# scipplint is the repo's own stdlib-only static analyzer (internal/analysis);
# it must exit 0 on the whole module.
lint:
	$(GO) run ./cmd/scipplint ./...

# Regenerate the analyzer golden fixtures (internal/analysis/testdata/*/expect.txt
# and cmd/scipplint's JSON golden) after an intentional change to analyzer
# output, then re-run the fixture tests to confirm they match.
lint-fixtures:
	$(GO) test ./internal/analysis/ -run TestFixtures -update
	$(GO) test ./cmd/scipplint/ -run TestRunJSONGolden -update
	$(GO) test ./internal/analysis/ ./cmd/scipplint/

vet:
	$(GO) vet ./...

# Coverage ratchet over the packages the observability layer locks down
# (floors live in scripts/coverage_baseline.txt).
cover:
	./scripts/coverage.sh

# Short fuzz smoke over every codec fuzz target: seeds plus a few seconds
# of exploration each. `go test -fuzz` takes one target at a time, so loop.
# The pipeline's cache-integrity fuzzer lives in its own package, so it
# gets its own invocation after the codec loop.
FUZZ_TARGETS = FuzzFormatsOpenDecode FuzzDeltaFPRoundTrip FuzzLUTRoundTrip \
	FuzzRawCosmoRoundTrip FuzzRawDeepCAMRoundTrip FuzzZfpcRoundTrip
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		$(GO) test -run=NONE -fuzz="^$$t$$" -fuzztime=10s ./internal/codec/ || exit 1; \
	done
	$(GO) test -run=NONE -fuzz='^FuzzCacheIntegrity$$' -fuzztime=10s ./internal/pipeline/
	$(GO) test -run=NONE -fuzz='^FuzzTenantCache$$' -fuzztime=10s ./internal/dataserve/
	$(GO) test -run=NONE -fuzz='^FuzzBreakerState$$' -fuzztime=10s ./internal/dataserve/
	$(GO) test -run=NONE -fuzz='^FuzzBlobDecode$$' -fuzztime=10s ./internal/dataserve/

verify: build vet lint test race cover
