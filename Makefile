# Development targets. CI runs `make verify`.

GO ?= go

.PHONY: build test race lint vet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (prefetcher, ring
# allreduce, data-parallel trainer).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/dist/... ./internal/train/...

# scipplint is the repo's own stdlib-only static analyzer (internal/analysis);
# it must exit 0 on the whole module.
lint:
	$(GO) run ./cmd/scipplint ./...

vet:
	$(GO) vet ./...

verify: build vet lint test race
