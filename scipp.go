// Package scipp is a Go reproduction of "Preprocessing Pipeline
// Optimization for Scientific Deep Learning Workloads" (Ibrahim & Oliker,
// IPPS 2022): domain-specific sample encoders/decoders for scientific
// machine-learning data, integrated into a DALI-like loading pipeline, with
// a simulated-accelerator execution substrate and a full benchmark harness
// for every table and figure in the paper's evaluation.
//
// The package is a facade over the internal implementation:
//
//   - Encoding/decoding: EncodeDeepCAM / EncodeCosmoFlow produce the
//     domain-encoded blobs (§V); OpenFormat + DecodeFull reverse them,
//     emitting FP16 samples with fused preprocessing (§VI).
//   - Datasets and loading: BuildDataset generates encoded synthetic
//     datasets; NewLoader wires the decode plugins (CPU or simulated GPU)
//     into a prefetching loader.
//   - Training: TrainDeepCAM / TrainCosmoFlow run the convergence
//     experiments of Figs 6-7 on real from-scratch models.
//   - Evaluation: the Fig*/Table*/Headlines functions regenerate every
//     evaluation artifact over the Table I platform models.
package scipp

import (
	"scipp/internal/bench"
	"scipp/internal/codec"
	"scipp/internal/codec/deltafp"
	"scipp/internal/codec/lut"
	"scipp/internal/codec/seriesfmt"
	"scipp/internal/core"
	"scipp/internal/gpusim"
	"scipp/internal/pipeline"
	"scipp/internal/platform"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
	"scipp/internal/train"
)

// Re-exported core types. These aliases are the supported public names; the
// internal packages they point at are implementation detail.
type (
	// App identifies one of the two studied workloads.
	App = core.App
	// Encoding selects how dataset samples are stored.
	Encoding = core.Encoding
	// Plugin selects where sample decode runs.
	Plugin = pipeline.Plugin
	// Platform is one modeled evaluation system.
	Platform = platform.Platform
	// Tensor is the dense numeric tensor samples decode into.
	Tensor = tensor.Tensor
	// Dataset is indexed access to encoded samples.
	Dataset = pipeline.Dataset
	// MemDataset is an in-memory Dataset.
	MemDataset = pipeline.MemDataset
	// Loader drives prefetched decoding of a Dataset.
	Loader = pipeline.Loader
	// Batch is one assembled minibatch.
	Batch = pipeline.Batch
	// Format opens encoded blobs.
	Format = codec.Format
	// ChunkDecoder decodes one sample in independent chunks.
	ChunkDecoder = codec.ChunkDecoder
	// ClimateConfig configures CAM5-like sample generation.
	ClimateConfig = synthetic.ClimateConfig
	// CosmoConfig configures cosmology sample generation.
	CosmoConfig = synthetic.CosmoConfig
	// ClimateSample is one CAM5-like sample.
	ClimateSample = synthetic.ClimateSample
	// CosmoSample is one 4-redshift universe sub-volume.
	CosmoSample = synthetic.CosmoSample
	// WeatherConfig configures irregular weather-station series generation.
	WeatherConfig = synthetic.WeatherConfig
	// WeatherSample is one station's variable-length observation record.
	WeatherSample = synthetic.WeatherSample
	// PaddedBatch is a ragged minibatch padded dense, with a validity mask.
	PaddedBatch = pipeline.PaddedBatch
	// TrainConfig configures a convergence run.
	TrainConfig = train.Config
	// LoaderConfig configures NewLoader.
	LoaderConfig = core.LoaderConfig
	// Scenario describes one node-pipeline simulation.
	Scenario = bench.Scenario
	// StepResult is a simulated steady-state result.
	StepResult = bench.StepResult
	// ThroughputRow is one Fig 8/10/11 table row.
	ThroughputRow = bench.ThroughputRow
	// BreakdownRow is one Fig 9/12 profile row.
	BreakdownRow = bench.BreakdownRow
	// AppModel is a calibrated per-sample workload model.
	AppModel = bench.AppModel
	// Device is a simulated accelerator.
	Device = gpusim.Device
)

// Workload identifiers.
const (
	DeepCAM   = core.DeepCAM
	CosmoFlow = core.CosmoFlow
)

// Dataset encodings.
const (
	Baseline       = core.Baseline
	Gzip           = core.Gzip
	PluginEncoding = core.Plugin
)

// Decode placements.
const (
	CPUPlugin = pipeline.CPUPlugin
	GPUPlugin = pipeline.GPUPlugin
)

// Platforms returns the three Table I systems.
func Platforms() []Platform { return platform.All() }

// PlatformByName looks up a Table I system.
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// DefaultClimateConfig returns the paper-scale DeepCAM data configuration.
func DefaultClimateConfig() ClimateConfig { return synthetic.DefaultClimateConfig() }

// DefaultCosmoConfig returns the paper-scale CosmoFlow data configuration.
func DefaultCosmoConfig() CosmoConfig { return synthetic.DefaultCosmoConfig() }

// GenerateClimate produces one synthetic CAM5-like sample.
func GenerateClimate(cfg ClimateConfig, index int) (*ClimateSample, error) {
	return synthetic.GenerateClimate(cfg, index)
}

// GenerateCosmo produces one synthetic universe sub-volume.
func GenerateCosmo(cfg CosmoConfig, index int) (*CosmoSample, error) {
	return synthetic.GenerateCosmo(cfg, index)
}

// DefaultWeatherConfig returns the small-archive weather-station data
// configuration (four channels, series lengths 0..256).
func DefaultWeatherConfig() WeatherConfig { return synthetic.DefaultWeatherConfig() }

// GenerateWeather produces one station's irregular observation record.
func GenerateWeather(cfg WeatherConfig, index int) (*WeatherSample, error) {
	return synthetic.GenerateWeather(cfg, index)
}

// EncodeDeepCAM compresses a [C, H, W] FP32 climate stack with the paper's
// differential floating-point scheme (§V-A).
func EncodeDeepCAM(data *Tensor) ([]byte, error) {
	return deltafp.Encode(data, deltafp.Options{})
}

// EncodeCosmoFlow compresses a 4-redshift voxel volume with the paper's
// group-lookup-table scheme (§V-B).
func EncodeCosmoFlow(s *CosmoSample) ([]byte, error) {
	return lut.Encode(s.Channels, s.Dim)
}

// FormatFor returns the decode format for (app, enc).
func FormatFor(app App, enc Encoding) Format { return core.FormatFor(app, enc) }

// OpenFormat looks up a registered format by name ("deltafp", "cosmo-lut",
// "raw-deepcam", "raw-cosmo", "gzip+raw-cosmo", ...).
func OpenFormat(name string) (Format, error) { return codec.Lookup(name) }

// DecodeFull decodes an encoded blob with the given format, serially.
func DecodeFull(f Format, blob []byte) (*Tensor, error) {
	cd, err := f.Open(blob)
	if err != nil {
		return nil, err
	}
	return codec.Decode(cd)
}

// DecodeOnDevice decodes an encoded blob on a simulated accelerator and
// returns the decoded tensor plus the modeled kernel time in seconds.
func DecodeOnDevice(f Format, blob []byte, p Platform) (*Tensor, float64, error) {
	cd, err := f.Open(blob)
	if err != nil {
		return nil, 0, err
	}
	return gpusim.New(p.GPU).Execute(cd)
}

// BuildDataset generates n synthetic samples for app under its default
// configuration scaled by dims (nil means defaults) and encodes them.
func BuildDataset(app App, enc Encoding, n int) (*MemDataset, error) {
	if app == CosmoFlow {
		return core.BuildCosmoDataset(synthetic.DefaultCosmoConfig(), n, enc)
	}
	return core.BuildClimateDataset(synthetic.DefaultClimateConfig(), n, enc)
}

// BuildClimateDataset generates an encoded DeepCAM dataset under cfg.
func BuildClimateDataset(cfg ClimateConfig, n int, enc Encoding) (*MemDataset, error) {
	return core.BuildClimateDataset(cfg, n, enc)
}

// BuildCosmoDataset generates an encoded CosmoFlow dataset under cfg.
func BuildCosmoDataset(cfg CosmoConfig, n int, enc Encoding) (*MemDataset, error) {
	return core.BuildCosmoDataset(cfg, n, enc)
}

// BuildWeatherDataset generates a ragged weather-station dataset under cfg.
// Blobs are raw-series records decodable by the "raw-series" format (see
// SeriesFormat); labels are each station's four climate normals.
func BuildWeatherDataset(cfg WeatherConfig, n int) (*MemDataset, error) {
	return core.BuildWeatherDataset(cfg, n)
}

// SeriesFormat returns the variable-length station-series decode format,
// bounded by the archive-level shape guarantee the pool- and cache-sizing
// layers consume.
func SeriesFormat(cfg WeatherConfig) Format {
	return seriesfmt.Bounded(cfg.Channels, cfg.MaxLen)
}

// NewLoader builds a prefetching loader over ds.
func NewLoader(ds Dataset, cfg LoaderConfig) (*Loader, error) { return core.NewLoader(ds, cfg) }

// TrainDeepCAM runs the Fig 6 convergence experiment, returning per-step
// training loss.
func TrainDeepCAM(dataCfg ClimateConfig, cfg TrainConfig) ([]float64, error) {
	return train.DeepCAM(dataCfg, cfg)
}

// TrainCosmoFlow runs one Fig 7 repetition, returning per-epoch loss.
func TrainCosmoFlow(dataCfg CosmoConfig, cfg TrainConfig) ([]float64, error) {
	return train.CosmoFlow(dataCfg, cfg)
}

// Calibrate measures the per-sample workload model for an app at the given
// fraction of paper scale.
func Calibrate(app App, scale float64) (AppModel, error) { return bench.Calibrate(app, scale) }

// Simulate evaluates the node pipeline model for one scenario.
func Simulate(sc Scenario) (StepResult, error) { return bench.Simulate(sc) }

// Evaluation-artifact generators (see DESIGN.md §5 for the experiment index).
var (
	// TableI formats the system-architecture table.
	TableI = bench.TableI
	// TableII formats the software-environment table.
	TableII = bench.TableII
	// Fig5 analyzes CosmoFlow sample content.
	Fig5 = bench.Fig5
	// Fig6 runs the DeepCAM convergence comparison.
	Fig6 = bench.Fig6
	// Fig7 runs the repeated CosmoFlow convergence comparison.
	Fig7 = bench.Fig7
	// Fig8 sweeps DeepCAM node throughput.
	Fig8 = bench.Fig8
	// Fig9 profiles the DeepCAM step-time breakdown.
	Fig9 = bench.Fig9
	// Fig10 sweeps CosmoFlow small-set throughput.
	Fig10 = bench.Fig10
	// Fig11 sweeps CosmoFlow large-set throughput.
	Fig11 = bench.Fig11
	// Fig12 profiles the CosmoFlow step-time breakdown.
	Fig12 = bench.Fig12
	// Headlines aggregates the headline speedups.
	Headlines = bench.Headlines
)

// SimulateNode runs the discrete-event node simulation for `steps` training
// steps, returning throughput and per-resource busy fractions.
func SimulateNode(sc Scenario, steps int) (bench.NodeSimResult, error) {
	return bench.SimulateNode(sc, steps, nil)
}

// ScaleOut projects weak scaling of a scenario across node counts.
func ScaleOut(sc Scenario, nodes []int) ([]bench.ScaleRow, error) {
	return bench.ScaleOut(sc, nodes)
}

// TimeToSolution combines real epochs-to-target with the modeled epoch time
// on a platform (CosmoFlow).
func TimeToSolution(scale float64, p Platform, target float64, dataCfg CosmoConfig, trainCfg TrainConfig) (bench.TTSResult, error) {
	return bench.TimeToSolution(scale, p, target, dataCfg, trainCfg)
}
