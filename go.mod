module scipp

go 1.22
