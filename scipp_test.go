package scipp

import (
	"testing"

	"scipp/internal/tensor"
)

func TestPublicEncodeDecodeDeepCAM(t *testing.T) {
	cfg := DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 32
	cfg.Width = 64
	s, err := GenerateClimate(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeDeepCAM(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= s.Data.Bytes() {
		t.Error("encoding did not compress")
	}
	f := FormatFor(DeepCAM, PluginEncoding)
	out, err := DecodeFull(f, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.Shape{4, 32, 64}) {
		t.Errorf("decoded shape %v", out.Shape)
	}
	if out.DT != tensor.F16 {
		t.Error("plugin decode should emit FP16")
	}
}

func TestPublicEncodeDecodeCosmo(t *testing.T) {
	cfg := DefaultCosmoConfig()
	cfg.Dim = 16
	s, err := GenerateCosmo(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeCosmoFlow(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Platforms() {
		out, simT, err := DecodeOnDevice(FormatFor(CosmoFlow, PluginEncoding), blob, p)
		if err != nil {
			t.Fatal(err)
		}
		if simT <= 0 {
			t.Errorf("%s: non-positive kernel time", p.Name)
		}
		if out.Elems() != 4*16*16*16 {
			t.Errorf("%s: decoded elems %d", p.Name, out.Elems())
		}
	}
}

func TestPublicLoaderRoundTrip(t *testing.T) {
	cfg := DefaultCosmoConfig()
	cfg.Dim = 16
	ds, err := BuildCosmoDataset(cfg, 4, PluginEncoding)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlatformByName("Summit")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(ds, LoaderConfig{
		App: CosmoFlow, Encoding: PluginEncoding, Plugin: GPUPlugin,
		Platform: p, Batch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := l.Epoch(0).Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("delivered %d samples", n)
	}
}

func TestPublicSimulateAndCalibrate(t *testing.T) {
	m, err := Calibrate(DeepCAM, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := PlatformByName("Cori-A100")
	r, err := Simulate(Scenario{
		Platform: p, Model: m, Enc: PluginEncoding, Plugin: GPUPlugin,
		SamplesPerNode: 1536, Staged: true, Batch: 4, Epoch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Node <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestPublicFormatLookup(t *testing.T) {
	for _, name := range []string{"deltafp", "cosmo-lut", "raw-cosmo", "gzip+raw-deepcam"} {
		if _, err := OpenFormat(name); err != nil {
			t.Errorf("OpenFormat(%q): %v", name, err)
		}
	}
	if _, err := OpenFormat("nope"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestPublicTables(t *testing.T) {
	if len(TableI()) == 0 || len(TableII()) == 0 {
		t.Error("empty tables")
	}
}
