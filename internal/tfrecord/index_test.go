package tfrecord

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeTestFile(t *testing.T, records [][]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "recs.tfrecord")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for _, rec := range records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func testRecords(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, bytes.Repeat([]byte{byte(i)}, 10+i*7))
	}
	return out
}

func TestBuildIndex(t *testing.T) {
	records := testRecords(5)
	path := writeTestFile(t, records)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ix, err := BuildIndex(f)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5 {
		t.Fatalf("index has %d records, want 5", ix.Len())
	}
	// Offsets must account for the 16-byte framing per record.
	want := int64(0)
	for i, rec := range records {
		if ix.Offsets[i] != want {
			t.Errorf("offset[%d] = %d, want %d", i, ix.Offsets[i], want)
		}
		want += int64(len(rec)) + 16
	}
	if ix.Offsets[5] != want {
		t.Errorf("final offset %d, want file size %d", ix.Offsets[5], want)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	path := writeTestFile(t, testRecords(4))
	f, _ := os.Open(path)
	ix, err := BuildIndex(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(back.Offsets) != fmt.Sprint(ix.Offsets) {
		t.Errorf("index round trip: %v vs %v", back.Offsets, ix.Offsets)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty index accepted")
	}
	// Non-increasing offsets.
	var buf bytes.Buffer
	ix := &Index{Offsets: []int64{0, 5, 5}}
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(&buf); err == nil {
		t.Error("non-increasing offsets accepted")
	}
	// First offset nonzero.
	buf.Reset()
	ix = &Index{Offsets: []int64{4, 8}}
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(&buf); err == nil {
		t.Error("nonzero first offset accepted")
	}
}

func TestIndexedRandomAccess(t *testing.T) {
	records := testRecords(8)
	path := writeTestFile(t, records)
	x, err := OpenIndexed(path, "")
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if x.Len() != 8 {
		t.Fatalf("Len = %d", x.Len())
	}
	// Access out of order.
	for _, i := range []int{7, 0, 3, 5, 3} {
		got, err := x.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, records[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := x.Record(8); err == nil {
		t.Error("out-of-range record accepted")
	}
	if _, err := x.Record(-1); err == nil {
		t.Error("negative record accepted")
	}
}

func TestIndexedWithSidecar(t *testing.T) {
	records := testRecords(3)
	path := writeTestFile(t, records)
	// Build + persist index.
	x, err := OpenIndexed(path, "")
	if err != nil {
		t.Fatal(err)
	}
	idxPath := path + ".idx"
	idxF, err := os.Create(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Index().WriteTo(idxF); err != nil {
		t.Fatal(err)
	}
	idxF.Close()
	x.Close()
	// Reopen through the sidecar.
	y, err := OpenIndexed(path, idxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	got, err := y.Record(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, records[2]) {
		t.Error("sidecar-indexed read mismatch")
	}
}

func TestIndexedDetectsCorruption(t *testing.T) {
	records := testRecords(2)
	path := writeTestFile(t, records)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xFF // inside record 0's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	x, err := OpenIndexed(path, "")
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if _, err := x.Record(0); err == nil {
		t.Error("corrupt record accepted")
	}
	// Record 1 is untouched and still reads.
	if _, err := x.Record(1); err != nil {
		t.Errorf("clean record failed: %v", err)
	}
}

func TestBuildIndexOnCorruptStream(t *testing.T) {
	if _, err := BuildIndex(bytes.NewReader([]byte("garbage-not-a-record"))); err == nil {
		t.Error("corrupt stream indexed")
	}
}
