package tfrecord

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 100000),
		[]byte{0},
	}
	for _, rec := range records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(records) {
		t.Errorf("Count = %d, want %d", w.Count(), len(records))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewGzipWriter(&buf)
	payload := bytes.Repeat([]byte("cosmoflow-voxels"), 1000)
	for i := 0; i < 10; i++ {
		if err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	plainSize := 10 * (len(payload) + 16)
	if buf.Len() >= plainSize {
		t.Errorf("gzip stream (%d bytes) not smaller than plain (%d)", buf.Len(), plainSize)
	}
	r, err := NewGzipReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || !bytes.Equal(got[0], payload) {
		t.Error("gzip round trip mismatch")
	}
}

func TestWireFormat(t *testing.T) {
	// Verify exact framing against the TFRecord spec for a known payload.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) != 8+4+3+4 {
		t.Fatalf("frame length %d, want 19", len(raw))
	}
	if binary.LittleEndian.Uint64(raw[:8]) != 3 {
		t.Error("length field wrong")
	}
	// Masked CRC of the length bytes must verify.
	if maskedCRC(raw[:8]) != binary.LittleEndian.Uint32(raw[8:12]) {
		t.Error("length CRC wrong")
	}
	if maskedCRC([]byte("abc")) != binary.LittleEndian.Uint32(raw[15:19]) {
		t.Error("data CRC wrong")
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("important-science")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, flip := range []int{0, 9, 14, buf.Len() - 1} {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[flip] ^= 0x01
		r := NewReader(bytes.NewReader(raw))
		_, err := r.Next()
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: err = %v, want ErrCorrupt", flip, err)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{4, 12, 40, len(raw) - 2} {
		r := NewReader(bytes.NewReader(raw[:cut]))
		_, err := r.Next()
		if err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	// Clean EOF at a record boundary is io.EOF, not corruption.
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("at boundary: err = %v, want io.EOF", err)
	}
}

func TestEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(recs [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := ReadAll(NewReader(&buf))
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(got[i], recs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	payload := bytes.Repeat([]byte{0x42}, 1<<16)
	b.SetBytes(int64(len(payload)))
	w := NewWriter(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payload := bytes.Repeat([]byte{0x42}, 1<<16)
	for i := 0; i < 64; i++ {
		if err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	raw := buf.Bytes()
	b.SetBytes(int64(len(payload) * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(NewReader(bytes.NewReader(raw))); err != nil {
			b.Fatal(err)
		}
	}
}
