// Package tfrecord implements the TFRecord container format used by the
// CosmoFlow benchmark dataset, wire-compatible with TensorFlow's
// implementation: each record is framed as
//
//	uint64 length (little endian)
//	uint32 masked CRC32-C of the length bytes
//	byte   data[length]
//	uint32 masked CRC32-C of the data
//
// plus the optional whole-file gzip compression variant that the standard
// benchmark distributes ("the latest release of the dataset provides a
// compressed variant of the dataset using gzip", §IV).
package tfrecord

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt is returned when a record fails its checksum.
var ErrCorrupt = errors.New("tfrecord: corrupt record (CRC mismatch)")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maskedCRC computes the TFRecord masked CRC32-C:
// ((crc >> 15) | (crc << 17)) + 0xa282ead8.
func maskedCRC(b []byte) uint32 {
	c := crc32.Checksum(b, castagnoli)
	return ((c >> 15) | (c << 17)) + 0xa282ead8
}

// Writer writes TFRecord framing to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	gz  *gzip.Writer
	n   int
	hdr [12]byte
	ftr [4]byte
}

// NewWriter returns a Writer emitting plain (uncompressed) records.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// NewGzipWriter returns a Writer whose whole output stream is gzip
// compressed, matching TFRecordOptions(compression_type="GZIP").
func NewGzipWriter(w io.Writer) *Writer {
	gz := gzip.NewWriter(w)
	return &Writer{w: bufio.NewWriter(gz), gz: gz}
}

// Write appends one record.
func (w *Writer) Write(data []byte) error {
	binary.LittleEndian.PutUint64(w.hdr[:8], uint64(len(data)))
	binary.LittleEndian.PutUint32(w.hdr[8:], maskedCRC(w.hdr[:8]))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(w.ftr[:], maskedCRC(data))
	if _, err := w.w.Write(w.ftr[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Close flushes buffers (and the gzip stream if present). It does not close
// the underlying writer.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}

// Reader reads TFRecord framing from an underlying stream.
type Reader struct {
	r   *bufio.Reader
	gz  *gzip.Reader
	hdr [12]byte
	ftr [4]byte
}

// NewReader returns a Reader for plain records.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// NewGzipReader returns a Reader for a gzip-compressed record stream.
func NewGzipReader(r io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("tfrecord: opening gzip stream: %w", err)
	}
	return &Reader{r: bufio.NewReader(gz), gz: gz}, nil
}

// Next returns the next record's payload, or io.EOF at end of stream. The
// returned slice is freshly allocated and owned by the caller.
func (r *Reader) Next() ([]byte, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrCorrupt
		}
		return nil, err
	}
	length := binary.LittleEndian.Uint64(r.hdr[:8])
	if maskedCRC(r.hdr[:8]) != binary.LittleEndian.Uint32(r.hdr[8:]) {
		return nil, ErrCorrupt
	}
	const maxRecord = 1 << 31
	if length > maxRecord {
		return nil, fmt.Errorf("tfrecord: record length %d exceeds limit", length)
	}
	data := make([]byte, length)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return nil, ErrCorrupt
	}
	if _, err := io.ReadFull(r.r, r.ftr[:]); err != nil {
		return nil, ErrCorrupt
	}
	if maskedCRC(data) != binary.LittleEndian.Uint32(r.ftr[:]) {
		return nil, ErrCorrupt
	}
	return data, nil
}

// Close releases the gzip reader if present.
func (r *Reader) Close() error {
	if r.gz != nil {
		return r.gz.Close()
	}
	return nil
}

// ReadAll reads every record from r until EOF.
func ReadAll(r *Reader) ([][]byte, error) {
	var out [][]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
