package tfrecord

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Index maps record ordinals to byte ranges in an (uncompressed) TFRecord
// file, enabling random access — exactly the sidecar ".idx" files NVIDIA
// DALI requires next to TFRecord shards so its readers can shuffle and
// shard without scanning. Gzip-compressed streams cannot be indexed (no
// random access into a deflate stream), matching DALI's constraint.
type Index struct {
	// Offsets[i] is the file offset of record i's frame; Offsets[n] is the
	// file size, so record i spans [Offsets[i], Offsets[i+1]).
	Offsets []int64
}

// Len returns the number of records.
func (ix *Index) Len() int {
	if len(ix.Offsets) == 0 {
		return 0
	}
	return len(ix.Offsets) - 1
}

// BuildIndex scans a plain TFRecord stream and produces its index. The
// reader must be positioned at the start of the stream.
func BuildIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	ix := &Index{Offsets: []int64{0}}
	var pos int64
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return ix, nil
			}
			return nil, ErrCorrupt
		}
		length := binary.LittleEndian.Uint64(hdr[:8])
		if maskedCRC(hdr[:8]) != binary.LittleEndian.Uint32(hdr[8:]) {
			return nil, ErrCorrupt
		}
		frame := int64(12) + int64(length) + 4
		if _, err := io.CopyN(io.Discard, br, int64(length)+4); err != nil {
			return nil, ErrCorrupt
		}
		pos += frame
		ix.Offsets = append(ix.Offsets, pos)
	}
}

// WriteTo serializes the index (little-endian count + offsets).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(ix.Offsets)))
	if _, err := bw.Write(buf[:]); err != nil {
		return 0, err
	}
	n := int64(8)
	for _, off := range ix.Offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(off))
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n += 8
	}
	return n, bw.Flush()
}

// ReadIndex parses an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("tfrecord: reading index header: %w", err)
	}
	n := binary.LittleEndian.Uint64(buf[:])
	const maxEntries = 1 << 30
	if n < 1 || n > maxEntries {
		return nil, fmt.Errorf("tfrecord: implausible index entry count %d", n)
	}
	ix := &Index{Offsets: make([]int64, n)}
	prev := int64(-1)
	for i := range ix.Offsets {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("tfrecord: truncated index: %w", err)
		}
		off := int64(binary.LittleEndian.Uint64(buf[:]))
		if off <= prev {
			return nil, errors.New("tfrecord: index offsets not strictly increasing")
		}
		ix.Offsets[i] = off
		prev = off
	}
	if ix.Offsets[0] != 0 {
		return nil, errors.New("tfrecord: index must start at offset 0")
	}
	return ix, nil
}

// IndexedFile provides random access to records of an on-disk TFRecord
// file through its index.
type IndexedFile struct {
	f  *os.File
	ix *Index
}

// OpenIndexed opens path and builds (or loads from idxPath, if non-empty
// and existing) its index.
func OpenIndexed(path, idxPath string) (*IndexedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var ix *Index
	if idxPath != "" {
		if idxF, err := os.Open(idxPath); err == nil {
			ix, err = ReadIndex(idxF)
			//lint:ignore uncheckederr the index file is read-only; a close error cannot lose data
			idxF.Close()
			if err != nil {
				//lint:ignore uncheckederr best-effort cleanup; the index read error already propagates
				f.Close()
				return nil, err
			}
		}
	}
	if ix == nil {
		ix, err = BuildIndex(f)
		if err != nil {
			//lint:ignore uncheckederr best-effort cleanup; the index build error already propagates
			f.Close()
			return nil, err
		}
	}
	return &IndexedFile{f: f, ix: ix}, nil
}

// Len returns the record count.
func (x *IndexedFile) Len() int { return x.ix.Len() }

// Index returns the underlying index (for persisting via WriteTo).
func (x *IndexedFile) Index() *Index { return x.ix }

// Record reads record i, verifying its checksums.
func (x *IndexedFile) Record(i int) ([]byte, error) {
	if i < 0 || i >= x.ix.Len() {
		return nil, fmt.Errorf("tfrecord: record %d out of %d", i, x.ix.Len())
	}
	start := x.ix.Offsets[i]
	size := x.ix.Offsets[i+1] - start
	frame := make([]byte, size)
	if _, err := x.f.ReadAt(frame, start); err != nil {
		return nil, fmt.Errorf("tfrecord: reading record %d: %w", i, err)
	}
	if size < 16 {
		return nil, ErrCorrupt
	}
	length := binary.LittleEndian.Uint64(frame[:8])
	if int64(length)+16 != size {
		return nil, ErrCorrupt
	}
	if maskedCRC(frame[:8]) != binary.LittleEndian.Uint32(frame[8:12]) {
		return nil, ErrCorrupt
	}
	data := frame[12 : 12+length]
	if maskedCRC(data) != binary.LittleEndian.Uint32(frame[12+length:]) {
		return nil, ErrCorrupt
	}
	return data, nil
}

// Close releases the file.
func (x *IndexedFile) Close() error { return x.f.Close() }
