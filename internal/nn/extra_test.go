package nn

import (
	"math"
	"testing"

	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

func TestDilatedConv2DGradients(t *testing.T) {
	r := xrand.New(30)
	c := NewDilatedConv2D("c", 2, 2, 3, 1, 2, 2)
	NewSequential(c).InitHe(31)
	x := randTensor(r, 1, 2, 9, 9)
	checkLayerGradients(t, c, x, 2e-2)
}

func TestDilationOneMatchesPlainConv(t *testing.T) {
	r := xrand.New(32)
	plain := NewConv2D("p", 2, 3, 3, 1, 1)
	dil := NewDilatedConv2D("d", 2, 3, 3, 1, 1, 1)
	NewSequential(plain).InitHe(33)
	// Copy weights so both compute the same function.
	copy(dil.Weight.W, plain.Weight.W)
	copy(dil.Bias.W, plain.Bias.W)
	x := randTensor(r, 2, 2, 8, 10)
	a := plain.Forward(x)
	b := dil.Forward(x)
	if !a.Shape.Equal(b.Shape) {
		t.Fatalf("shapes differ: %v vs %v", a.Shape, b.Shape)
	}
	if d := tensor.MaxAbsDiff(a, b); d > 1e-6 {
		t.Errorf("dilation=1 differs from plain conv by %g", d)
	}
}

func TestDilationEnlargesReceptiveField(t *testing.T) {
	// A centered impulse through a dilated 3x3 kernel must place taps
	// Dilation pixels apart.
	c := NewDilatedConv2D("c", 1, 1, 3, 1, 2, 2)
	for i := range c.Weight.W {
		c.Weight.W[i] = 1
	}
	x := tensor.New(tensor.F32, 1, 1, 9, 9)
	x.F32s[4*9+4] = 1 // impulse at center
	out := c.Forward(x)
	if !out.Shape.Equal(tensor.Shape{1, 1, 9, 9}) {
		t.Fatalf("same-pad dilated output shape %v", out.Shape)
	}
	// Output at positions 2 pixels from center should see the impulse.
	if out.F32s[2*9+2] != 1 || out.F32s[4*9+4] != 1 || out.F32s[6*9+6] != 1 {
		t.Error("dilated taps not 2 pixels apart")
	}
	// Odd offsets do not align with any tap.
	if out.F32s[3*9+4] != 0 {
		t.Error("tap at dilation-misaligned position")
	}
}

func TestDropoutTrainEval(t *testing.T) {
	d := NewDropout(0.5, 7)
	x := tensor.New(tensor.F32, 1, 1000)
	for i := range x.F32s {
		x.F32s[i] = 1
	}
	out := d.Forward(x)
	zeros, kept := 0, 0
	var sum float64
	for _, v := range out.F32s {
		if v == 0 {
			zeros++
		} else {
			kept++
			sum += float64(v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d of 1000 at p=0.5", zeros)
	}
	// Inverted dropout: kept values scaled by 2, expectation preserved.
	if kept > 0 && math.Abs(sum/1000-1) > 0.15 {
		t.Errorf("expectation not preserved: %g", sum/1000)
	}
	// Eval mode is identity.
	d.Train = false
	out2 := d.Forward(x)
	if tensor.MaxAbsDiff(out2, x) != 0 {
		t.Error("eval-mode dropout altered input")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.3, 9)
	x := tensor.New(tensor.F32, 1, 64)
	for i := range x.F32s {
		x.F32s[i] = float32(i + 1)
	}
	out := d.Forward(x)
	grad := tensor.New(tensor.F32, 1, 64)
	for i := range grad.F32s {
		grad.F32s[i] = 1
	}
	dx := d.Backward(grad)
	for i := range dx.F32s {
		if (out.F32s[i] == 0) != (dx.F32s[i] == 0) {
			t.Fatalf("grad mask mismatch at %d", i)
		}
		if out.F32s[i] != 0 {
			want := float32(1 / (1 - 0.3))
			if math.Abs(float64(dx.F32s[i]-want)) > 1e-6 {
				t.Fatalf("grad scale %g, want %g", dx.F32s[i], want)
			}
		}
	}
}

func TestDropoutDeterministicBySeed(t *testing.T) {
	x := tensor.New(tensor.F32, 1, 128)
	for i := range x.F32s {
		x.F32s[i] = 1
	}
	a := NewDropout(0.5, 42).Forward(x)
	b := NewDropout(0.5, 42).Forward(x)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Error("same seed produced different masks")
	}
	c := NewDropout(0.5, 43).Forward(x)
	if tensor.MaxAbsDiff(a, c) == 0 {
		t.Error("different seeds produced identical masks")
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("p=1 accepted")
		}
	}()
	NewDropout(1.0, 1)
}

func TestLeakyReLUGradients(t *testing.T) {
	r := xrand.New(50)
	x := randTensor(r, 2, 12)
	checkLayerGradients(t, NewLeakyReLU(0.1), x, 1e-2)
}

func TestLeakyReLUForward(t *testing.T) {
	l := NewLeakyReLU(0.1)
	x := tensor.FromF32([]float32{-2, 0, 3}, 3)
	out := l.Forward(x)
	if out.F32s[0] != -0.2 || out.F32s[1] != 0 || out.F32s[2] != 3 {
		t.Errorf("LeakyReLU forward: %v", out.F32s)
	}
	defer func() {
		if recover() == nil {
			t.Error("alpha=1 accepted")
		}
	}()
	NewLeakyReLU(1)
}
