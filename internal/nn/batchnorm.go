package nn

import (
	"fmt"
	"math"

	"scipp/internal/tensor"
)

// BatchNorm2D normalizes [N, C, H, W] activations per channel over the
// batch — standard in the DeepLabv3+ family DeepCAM builds on. Training
// mode uses batch statistics and maintains running estimates; evaluation
// mode applies the running estimates.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate (PyTorch convention)
	Train    bool

	Gamma, Beta             *Param
	RunningMean, RunningVar []float32

	// cached for backward
	xhat   []float32
	invStd []float32
	inSh   tensor.Shape
}

// NewBatchNorm2D builds a batch-norm layer for c channels. It panics if
// c <= 0 (programmer invariant: layer wiring is static).
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	if c <= 0 {
		panic(fmt.Sprintf("nn: bad BatchNorm2D channels %d", c))
	}
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1, Train: true,
		Gamma:       newParam(name+".g", c),
		Beta:        newParam(name+".b", c),
		RunningMean: make([]float32, c),
		RunningVar:  make([]float32, c),
	}
	for i := 0; i < c; i++ {
		bn.Gamma.W[i] = 1
		bn.RunningVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.Gamma.Name[:len(bn.Gamma.Name)-2] }

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Layer. It panics unless x is FP32 [N, C, H, W] with
// the layer's channel count (programmer invariant: model wiring is static).
func (bn *BatchNorm2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 4, "BatchNorm2D")
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D expects %d channels, got %d", bn.C, c))
	}
	out := tensor.New(tensor.F32, x.Shape...)
	bn.inSh = x.Shape.Clone()
	plane := h * w
	m := n * plane

	if cap(bn.xhat) < len(x.F32s) {
		bn.xhat = make([]float32, len(x.F32s))
	}
	bn.xhat = bn.xhat[:len(x.F32s)]
	if cap(bn.invStd) < c {
		bn.invStd = make([]float32, c)
	}
	bn.invStd = bn.invStd[:c]

	parallelFor(c, func(ci int) {
		var mean, variance float64
		if bn.Train {
			var sum, sumSq float64
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for p := 0; p < plane; p++ {
					v := float64(x.F32s[base+p])
					sum += v
					sumSq += v * v
				}
			}
			mean = sum / float64(m)
			variance = sumSq/float64(m) - mean*mean
			if variance < 0 {
				variance = 0
			}
			// Update running stats (unbiased variance, PyTorch-style).
			unbiased := variance
			if m > 1 {
				unbiased = variance * float64(m) / float64(m-1)
			}
			mom := float32(bn.Momentum)
			bn.RunningMean[ci] = (1-mom)*bn.RunningMean[ci] + mom*float32(mean)
			bn.RunningVar[ci] = (1-mom)*bn.RunningVar[ci] + mom*float32(unbiased)
		} else {
			mean = float64(bn.RunningMean[ci])
			variance = float64(bn.RunningVar[ci])
		}
		inv := float32(1 / math.Sqrt(variance+bn.Eps))
		bn.invStd[ci] = inv
		g, b := bn.Gamma.W[ci], bn.Beta.W[ci]
		mf := float32(mean)
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for p := 0; p < plane; p++ {
				xh := (x.F32s[base+p] - mf) * inv
				bn.xhat[base+p] = xh
				out.F32s[base+p] = g*xh + b
			}
		}
	})
	return out
}

// Backward implements Layer. It panics unless grad matches the forward
// input shape (programmer invariant).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := bn.inSh[0], bn.inSh[1], bn.inSh[2], bn.inSh[3]
	if !grad.Shape.Equal(bn.inSh) {
		panic(fmt.Sprintf("nn: BatchNorm2D backward grad shape %v", grad.Shape))
	}
	dx := tensor.New(tensor.F32, bn.inSh...)
	plane := h * w
	m := float32(n * plane)

	parallelFor(c, func(ci int) {
		var sumDy, sumDyXhat float64
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for p := 0; p < plane; p++ {
				dy := float64(grad.F32s[base+p])
				sumDy += dy
				sumDyXhat += dy * float64(bn.xhat[base+p])
			}
		}
		bn.Beta.G[ci] += float32(sumDy)
		bn.Gamma.G[ci] += float32(sumDyXhat)
		if !bn.Train {
			// Eval mode: stats are constants; dx = dy * gamma * invStd.
			gi := bn.Gamma.W[ci] * bn.invStd[ci]
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for p := 0; p < plane; p++ {
					dx.F32s[base+p] = grad.F32s[base+p] * gi
				}
			}
			return
		}
		gInv := bn.Gamma.W[ci] * bn.invStd[ci] / m
		sDy, sDyX := float32(sumDy), float32(sumDyXhat)
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for p := 0; p < plane; p++ {
				dy := grad.F32s[base+p]
				dx.F32s[base+p] = gInv * (m*dy - sDy - bn.xhat[base+p]*sDyX)
			}
		}
	})
	return dx
}
