package nn

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

// paramLayer is a do-nothing layer holding one explicit parameter, for
// exercising checkpoint edge cases (zero-length tensors, hand-set values).
type paramLayer struct{ p *Param }

func (l *paramLayer) Name() string                            { return l.p.Name }
func (l *paramLayer) Params() []*Param                        { return []*Param{l.p} }
func (l *paramLayer) Forward(x *tensor.Tensor) *tensor.Tensor { return x }
func (l *paramLayer) Backward(g *tensor.Tensor) *tensor.Tensor {
	return g
}

func ckptModel() *Sequential {
	return NewSequential(
		NewDense("d1", 4, 8),
		NewDropout(0.3, 77),
		NewDense("d2", 8, 2),
	)
}

// stepOnce fakes one training step so optimizer state exists to checkpoint.
func stepOnce(s *Sequential, opt Optimizer, seed uint64) {
	r := xrand.New(seed)
	for _, p := range s.Params() {
		for i := range p.G {
			p.G[i] = float32(r.NormFloat64()) * 0.1
		}
	}
	opt.Step(s.Params())
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

func reload(t *testing.T, buf []byte, s *Sequential, opt Optimizer) map[string]string {
	t.Helper()
	extra, err := LoadCheckpoint(bytes.NewReader(buf), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	return extra
}

func TestCheckpointRoundTripSGD(t *testing.T) {
	src := ckptModel()
	src.InitHe(5)
	opt := NewSGD(0.1, 0.9)
	stepOnce(src, opt, 1)
	stepOnce(src, opt, 2)

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, opt, map[string]string{"epoch": "3", "step": "120"}); err != nil {
		t.Fatal(err)
	}

	dst := ckptModel()
	dst.InitHe(99)
	opt2 := NewSGD(0.5, 0.1) // wrong hyperparameters, must be overwritten
	extra := reload(t, buf.Bytes(), dst, opt2)
	if extra["epoch"] != "3" || extra["step"] != "120" {
		t.Errorf("extra attrs = %v", extra)
	}
	if opt2.LR() != 0.1 || opt2.Momentum != 0.9 {
		t.Errorf("sgd hyperparameters not restored: lr=%v momentum=%v", opt2.LR(), opt2.Momentum)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W {
			if sp[i].W[j] != dp[i].W[j] {
				t.Fatalf("weight %s[%d] not bit-identical", sp[i].Name, j)
			}
		}
		sv, dv := opt.vel[sp[i]], opt2.vel[dp[i]]
		if len(sv) != len(dv) {
			t.Fatalf("velocity for %s: %d vs %d entries", sp[i].Name, len(sv), len(dv))
		}
		for j := range sv {
			if sv[j] != dv[j] {
				t.Fatalf("velocity %s[%d] not bit-identical", sp[i].Name, j)
			}
		}
	}
	// Both must evolve identically from here: same fake gradients, same
	// momentum history.
	stepOnce(src, opt, 3)
	stepOnce(dst, opt2, 3)
	for i := range sp {
		for j := range sp[i].W {
			if sp[i].W[j] != dp[i].W[j] {
				t.Fatalf("post-restore step diverged at %s[%d]", sp[i].Name, j)
			}
		}
	}
}

func TestCheckpointRoundTripAdam(t *testing.T) {
	src := ckptModel()
	src.InitHe(5)
	opt := NewAdam(1e-3)
	for s := uint64(1); s <= 3; s++ {
		stepOnce(src, opt, s)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, opt, nil); err != nil {
		t.Fatal(err)
	}

	dst := ckptModel()
	opt2 := NewAdam(1)
	reload(t, buf.Bytes(), dst, opt2)
	if opt2.t != 3 {
		t.Errorf("adam step count = %d, want 3", opt2.t)
	}
	if opt2.LR() != 1e-3 || opt2.Beta1 != 0.9 || opt2.Beta2 != 0.999 || opt2.Eps != 1e-8 {
		t.Errorf("adam hyperparameters not restored")
	}
	// Bias correction depends on t, so a diverging t shows up immediately.
	stepOnce(src, opt, 9)
	stepOnce(dst, opt2, 9)
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W {
			if sp[i].W[j] != dp[i].W[j] {
				t.Fatalf("post-restore Adam step diverged at %s[%d]", sp[i].Name, j)
			}
		}
	}
}

func TestCheckpointDropoutStream(t *testing.T) {
	src := ckptModel()
	src.InitHe(5)
	// Advance the dropout stream so the checkpoint captures a mid-sequence
	// state, not the seed.
	x := randTensor(xrand.New(7), 2, 4)
	src.Forward(x)
	src.Forward(x)

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, nil, nil); err != nil {
		t.Fatal(err)
	}
	dst := ckptModel() // fresh seed 77, wrong position in the stream
	reload(t, buf.Bytes(), dst, nil)

	a := src.Forward(x)
	b := dst.Forward(x)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Error("restored dropout stream diverged from the original")
	}
}

func TestCheckpointZeroLengthTensor(t *testing.T) {
	mk := func() *Sequential {
		return NewSequential(
			&paramLayer{p: newParam("empty", 0)},
			&paramLayer{p: newParam("scalarish", 1)},
		)
	}
	src := mk()
	src.Params()[1].W[0] = 42
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, nil, nil); err != nil {
		t.Fatal(err)
	}
	dst := mk()
	reload(t, buf.Bytes(), dst, nil)
	if got := dst.Params()[0]; len(got.W) != 0 {
		t.Errorf("zero-length param came back with %d elements", len(got.W))
	}
	if dst.Params()[1].W[0] != 42 {
		t.Error("neighbor of zero-length param corrupted")
	}
}

func TestCheckpointNaNInfBitExact(t *testing.T) {
	specials := []float32{
		float32(math.NaN()),
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
		math.Float32frombits(0x7fc00001), // quiet NaN with payload
		-0.0,
		math.Float32frombits(0x00000001), // smallest subnormal
	}
	mk := func() *Sequential {
		return NewSequential(&paramLayer{p: newParam("w", len(specials))})
	}
	src := mk()
	copy(src.Params()[0].W, specials)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, nil, nil); err != nil {
		t.Fatal(err)
	}
	dst := mk()
	reload(t, buf.Bytes(), dst, nil)
	for i, want := range specials {
		got := dst.Params()[0].W[i]
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Errorf("element %d: bits %08x, want %08x", i, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestCheckpointTruncatedTyped(t *testing.T) {
	src := ckptModel()
	src.InitHe(5)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, nil, nil); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
		_, err := LoadCheckpoint(bytes.NewReader(full[:cut]), ckptModel(), nil)
		var ce *CheckpointError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: got %v, want *CheckpointError", cut, err)
		}
	}
	// A flipped payload byte must surface as a typed corruption error.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-9] ^= 0xff
	_, err := LoadCheckpoint(bytes.NewReader(flipped), ckptModel(), nil)
	var ce *CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("bit flip: got %v, want *CheckpointError", err)
	}
}

func TestCheckpointVersionMismatchTyped(t *testing.T) {
	src := ckptModel()
	src.InitHe(5)
	// A v1 weights container is not a v2 checkpoint.
	var v1 bytes.Buffer
	if err := SaveWeights(&v1, src); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(bytes.NewReader(v1.Bytes()), ckptModel(), nil)
	var ce *CheckpointError
	if !errors.As(err, &ce) || ce.Reason != "version" {
		t.Fatalf("v1 container: got %v, want *CheckpointError reason=version", err)
	}
	// And a v2 checkpoint is not a v1 weights container.
	var v2 bytes.Buffer
	if err := SaveCheckpoint(&v2, src, nil, nil); err != nil {
		t.Fatal(err)
	}
	err = LoadWeights(bytes.NewReader(v2.Bytes()), ckptModel())
	if !errors.As(err, &ce) || ce.Reason != "version" {
		t.Fatalf("v2 into LoadWeights: got %v, want *CheckpointError reason=version", err)
	}
}

func TestCheckpointOptimizerMismatchTyped(t *testing.T) {
	src := ckptModel()
	src.InitHe(5)
	opt := NewAdam(1e-3)
	stepOnce(src, opt, 1)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, opt, nil); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), ckptModel(), NewSGD(0.1, 0.9))
	var ce *CheckpointError
	if !errors.As(err, &ce) || ce.Reason != "optimizer" {
		t.Fatalf("adam->sgd restore: got %v, want *CheckpointError reason=optimizer", err)
	}
	_, err = LoadCheckpoint(bytes.NewReader(buf.Bytes()), ckptModel(), nil)
	if !errors.As(err, &ce) || ce.Reason != "optimizer" {
		t.Fatalf("adam->none restore: got %v, want *CheckpointError reason=optimizer", err)
	}
}

func TestCheckpointTopologyMismatchTyped(t *testing.T) {
	src := ckptModel()
	src.InitHe(5)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src, nil, nil); err != nil {
		t.Fatal(err)
	}
	other := NewSequential(NewDense("dX", 4, 8), NewDense("d2", 8, 2))
	_, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), other, nil)
	var ce *CheckpointError
	if !errors.As(err, &ce) || ce.Reason != "missing" {
		t.Fatalf("renamed param: got %v, want reason=missing", err)
	}
	shaped := NewSequential(NewDense("d1", 4, 8), NewDense("d2", 8, 3))
	_, err = LoadCheckpoint(bytes.NewReader(buf.Bytes()), shaped, nil)
	if !errors.As(err, &ce) || (ce.Reason != "shape" && ce.Reason != "missing") {
		t.Fatalf("reshaped param: got %v, want reason=shape", err)
	}
	// Dropout count mismatch.
	plain := NewSequential(NewDense("d1", 4, 8), NewDense("d2", 8, 2))
	_, err = LoadCheckpoint(bytes.NewReader(buf.Bytes()), plain, nil)
	if !errors.As(err, &ce) || ce.Reason != "rng" {
		t.Fatalf("dropout-less model: got %v, want reason=rng", err)
	}
}
