package nn

import (
	"bytes"
	"math"
	"testing"

	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

func testModel() *Sequential {
	return NewSequential(
		NewConv2D("c1", 2, 4, 3, 1, 1),
		NewReLU(),
		NewFlatten(),
		NewDense("d1", 4*6*6, 3),
	)
}

func TestSaveLoadWeights(t *testing.T) {
	src := testModel()
	src.InitHe(11)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := testModel()
	dst.InitHe(99) // different init, must be overwritten
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W {
			if sp[i].W[j] != dp[i].W[j] {
				t.Fatalf("param %s[%d] not restored", sp[i].Name, j)
			}
		}
	}
	// The restored model must compute identically.
	r := xrand.New(3)
	x := randTensor(r, 1, 2, 6, 6)
	a, b := src.Forward(x), dst.Forward(x)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Error("restored model computes differently")
	}
}

func TestLoadWeightsRejectsMismatch(t *testing.T) {
	src := testModel()
	src.InitHe(1)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	// Different topology: wrong parameter count.
	other := NewSequential(NewDense("d1", 4, 2))
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("mismatched param count accepted")
	}
	// Same count, different shapes.
	other2 := NewSequential(
		NewConv2D("c1", 2, 4, 5, 1, 2), // different kernel size
		NewReLU(),
		NewFlatten(),
		NewDense("d1", 4*6*6, 3),
	)
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), other2); err == nil {
		t.Error("mismatched shapes accepted")
	}
	// Garbage input.
	if err := LoadWeights(bytes.NewReader([]byte("junk")), testModel()); err == nil {
		t.Error("garbage checkpoint accepted")
	}
}

func TestSaveWeightsRejectsDuplicateNames(t *testing.T) {
	m := NewSequential(NewDense("same", 2, 2), NewDense("same", 2, 2))
	var buf bytes.Buffer
	if err := SaveWeights(&buf, m); err == nil {
		t.Error("duplicate parameter names accepted")
	}
}

func TestIoU2D(t *testing.T) {
	// 1 sample, 2 classes, 2x2: predictions argmax to [0,0;1,1],
	// labels [0,1;1,1].
	logits := tensor.New(tensor.F32, 1, 2, 2, 2)
	// class-0 plane favored at pixels 0,1; class-1 plane at pixels 2,3.
	logits.F32s[0], logits.F32s[1] = 1, 1 // c0: p0, p1
	logits.F32s[6], logits.F32s[7] = 1, 1 // c1: p2, p3
	labels := tensor.New(tensor.I16, 1, 2, 2)
	labels.I16s[0], labels.I16s[1], labels.I16s[2], labels.I16s[3] = 0, 1, 1, 1
	ious := IoU2D(logits, labels)
	// class 0: inter {p0}, union {p0, p1} -> 0.5
	if math.Abs(ious[0]-0.5) > 1e-12 {
		t.Errorf("IoU class 0 = %g, want 0.5", ious[0])
	}
	// class 1: inter {p2,p3}, union {p1,p2,p3} -> 2/3
	if math.Abs(ious[1]-2.0/3) > 1e-12 {
		t.Errorf("IoU class 1 = %g, want 2/3", ious[1])
	}
	m := MeanIoU(ious)
	if math.Abs(m-(0.5+2.0/3)/2) > 1e-12 {
		t.Errorf("mean IoU = %g", m)
	}
}

func TestIoUUndefinedClass(t *testing.T) {
	logits := tensor.New(tensor.F32, 1, 3, 1, 1)
	logits.F32s[0] = 1 // predicts class 0
	labels := tensor.New(tensor.I16, 1, 1, 1)
	ious := IoU2D(logits, labels)
	if ious[0] != 1 {
		t.Errorf("class 0 IoU = %g", ious[0])
	}
	if !math.IsNaN(ious[1]) || !math.IsNaN(ious[2]) {
		t.Error("absent classes should be NaN")
	}
	if MeanIoU(ious) != 1 {
		t.Error("mean IoU should skip NaN classes")
	}
	if !math.IsNaN(MeanIoU([]float64{math.NaN()})) {
		t.Error("all-NaN mean should be NaN")
	}
}

func TestMAE(t *testing.T) {
	pred := tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)
	target := tensor.FromF32([]float32{2, 2, 1, 4}, 2, 2)
	if got := MAE(pred, target); math.Abs(got-(1+0+2+0)/4.0) > 1e-12 {
		t.Errorf("MAE = %g", got)
	}
}
