package nn

import (
	"fmt"

	"scipp/internal/tensor"
)

// Conv2D is a 2D convolution over [N, Cin, H, W] inputs.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	Weight, Bias              *Param

	x *tensor.Tensor // cached input
}

// NewConv2D builds a KxK convolution. It panics on a non-positive config
// (programmer invariant: layer wiring is static).
func NewConv2D(name string, inC, outC, k, stride, pad int) *Conv2D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: bad Conv2D config %d %d %d %d %d", inC, outC, k, stride, pad))
	}
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: newParam(name+".w", outC, inC, k, k),
		Bias:   newParam(name+".b", outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.Weight.Name[:len(c.Weight.Name)-2] }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

func (c *Conv2D) outDims(h, w int) (int, int) {
	ho := (h+2*c.Pad-c.K)/c.Stride + 1
	wo := (w+2*c.Pad-c.K)/c.Stride + 1
	return ho, wo
}

// Forward implements Layer. It panics unless x is FP32 [N, InC, H, W]
// (programmer invariant: model wiring is static).
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 4, "Conv2D")
	n, cin, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if cin != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, cin))
	}
	ho, wo := c.outDims(h, w)
	out := tensor.New(tensor.F32, n, c.OutC, ho, wo)
	c.x = x
	wgt, bias := c.Weight.W, c.Bias.W
	parallelFor(n*c.OutC, func(job int) {
		ni, co := job/c.OutC, job%c.OutC
		xBase := ni * cin * h * w
		oBase := (ni*c.OutC + co) * ho * wo
		wBase := co * cin * c.K * c.K
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				acc := bias[co]
				iy0 := oy*c.Stride - c.Pad
				ix0 := ox*c.Stride - c.Pad
				for ci := 0; ci < cin; ci++ {
					xC := xBase + ci*h*w
					wC := wBase + ci*c.K*c.K
					for ky := 0; ky < c.K; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						row := xC + iy*w
						wRow := wC + ky*c.K
						for kx := 0; kx < c.K; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							acc += x.F32s[row+ix] * wgt[wRow+kx]
						}
					}
				}
				out.F32s[oBase+oy*wo+ox] = acc
			}
		}
	})
	return out
}

// Backward implements Layer. It panics unless grad matches the forward
// output shape (programmer invariant).
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	n, cin, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	ho, wo := c.outDims(h, w)
	if !grad.Shape.Equal(tensor.Shape{n, c.OutC, ho, wo}) {
		panic(fmt.Sprintf("nn: Conv2D backward grad shape %v", grad.Shape))
	}
	dx := tensor.New(tensor.F32, n, cin, h, w)

	// dW and dB: accumulate per output channel (parallel over co, serial
	// over batch to avoid write races on the shared accumulators).
	parallelFor(c.OutC, func(co int) {
		wBase := co * cin * c.K * c.K
		var db float32
		for ni := 0; ni < n; ni++ {
			gBase := (ni*c.OutC + co) * ho * wo
			xBase := ni * cin * h * w
			for oy := 0; oy < ho; oy++ {
				iy0 := oy*c.Stride - c.Pad
				for ox := 0; ox < wo; ox++ {
					g := grad.F32s[gBase+oy*wo+ox]
					if g == 0 {
						continue
					}
					db += g
					ix0 := ox*c.Stride - c.Pad
					for ci := 0; ci < cin; ci++ {
						xC := xBase + ci*h*w
						wC := wBase + ci*c.K*c.K
						for ky := 0; ky < c.K; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							row := xC + iy*w
							wRow := wC + ky*c.K
							for kx := 0; kx < c.K; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								c.Weight.G[wRow+kx] += g * x.F32s[row+ix]
							}
						}
					}
				}
			}
		}
		c.Bias.G[co] += db
	})

	// dX: parallel over (batch, input channel).
	wgt := c.Weight.W
	parallelFor(n*cin, func(job int) {
		ni, ci := job/cin, job%cin
		dxC := (ni*cin + ci) * h * w
		for co := 0; co < c.OutC; co++ {
			gBase := (ni*c.OutC + co) * ho * wo
			wC := (co*cin + ci) * c.K * c.K
			for oy := 0; oy < ho; oy++ {
				iy0 := oy*c.Stride - c.Pad
				for ox := 0; ox < wo; ox++ {
					g := grad.F32s[gBase+oy*wo+ox]
					if g == 0 {
						continue
					}
					ix0 := ox*c.Stride - c.Pad
					for ky := 0; ky < c.K; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						row := dxC + iy*w
						wRow := wC + ky*c.K
						for kx := 0; kx < c.K; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							dx.F32s[row+ix] += g * wgt[wRow+kx]
						}
					}
				}
			}
		}
	})
	return dx
}

// Conv3D is a 3D convolution over [N, Cin, D, H, W] inputs, the CosmoFlow
// building block ("five layers of 3D convolutional layers").
type Conv3D struct {
	InC, OutC, K, Stride, Pad int
	Weight, Bias              *Param

	x *tensor.Tensor
}

// NewConv3D builds a KxKxK convolution. It panics on a non-positive config
// (programmer invariant: layer wiring is static).
func NewConv3D(name string, inC, outC, k, stride, pad int) *Conv3D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: bad Conv3D config %d %d %d %d %d", inC, outC, k, stride, pad))
	}
	return &Conv3D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: newParam(name+".w", outC, inC, k, k, k),
		Bias:   newParam(name+".b", outC),
	}
}

// Name implements Layer.
func (c *Conv3D) Name() string { return c.Weight.Name[:len(c.Weight.Name)-2] }

// Params implements Layer.
func (c *Conv3D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

func (c *Conv3D) outDims(d, h, w int) (int, int, int) {
	do := (d+2*c.Pad-c.K)/c.Stride + 1
	ho := (h+2*c.Pad-c.K)/c.Stride + 1
	wo := (w+2*c.Pad-c.K)/c.Stride + 1
	return do, ho, wo
}

// Forward implements Layer. It panics unless x is FP32 [N, InC, D, H, W]
// (programmer invariant: model wiring is static).
func (c *Conv3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 5, "Conv3D")
	n, cin, d, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	if cin != c.InC {
		panic(fmt.Sprintf("nn: Conv3D expects %d input channels, got %d", c.InC, cin))
	}
	do, ho, wo := c.outDims(d, h, w)
	out := tensor.New(tensor.F32, n, c.OutC, do, ho, wo)
	c.x = x
	wgt, bias := c.Weight.W, c.Bias.W
	k3 := c.K * c.K * c.K
	parallelFor(n*c.OutC, func(job int) {
		ni, co := job/c.OutC, job%c.OutC
		xBase := ni * cin * d * h * w
		oBase := (ni*c.OutC + co) * do * ho * wo
		wBase := co * cin * k3
		for oz := 0; oz < do; oz++ {
			iz0 := oz*c.Stride - c.Pad
			for oy := 0; oy < ho; oy++ {
				iy0 := oy*c.Stride - c.Pad
				for ox := 0; ox < wo; ox++ {
					ix0 := ox*c.Stride - c.Pad
					acc := bias[co]
					for ci := 0; ci < cin; ci++ {
						xC := xBase + ci*d*h*w
						wC := wBase + ci*k3
						for kz := 0; kz < c.K; kz++ {
							iz := iz0 + kz
							if iz < 0 || iz >= d {
								continue
							}
							for ky := 0; ky < c.K; ky++ {
								iy := iy0 + ky
								if iy < 0 || iy >= h {
									continue
								}
								row := xC + (iz*h+iy)*w
								wRow := wC + (kz*c.K+ky)*c.K
								for kx := 0; kx < c.K; kx++ {
									ix := ix0 + kx
									if ix < 0 || ix >= w {
										continue
									}
									acc += x.F32s[row+ix] * wgt[wRow+kx]
								}
							}
						}
					}
					out.F32s[oBase+(oz*ho+oy)*wo+ox] = acc
				}
			}
		}
	})
	return out
}

// Backward implements Layer. It panics unless grad matches the forward
// output shape (programmer invariant).
func (c *Conv3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	n, cin, d, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	do, ho, wo := c.outDims(d, h, w)
	if !grad.Shape.Equal(tensor.Shape{n, c.OutC, do, ho, wo}) {
		panic(fmt.Sprintf("nn: Conv3D backward grad shape %v", grad.Shape))
	}
	dx := tensor.New(tensor.F32, n, cin, d, h, w)
	k3 := c.K * c.K * c.K

	parallelFor(c.OutC, func(co int) {
		wBase := co * cin * k3
		var db float32
		for ni := 0; ni < n; ni++ {
			gBase := (ni*c.OutC + co) * do * ho * wo
			xBase := ni * cin * d * h * w
			for oz := 0; oz < do; oz++ {
				iz0 := oz*c.Stride - c.Pad
				for oy := 0; oy < ho; oy++ {
					iy0 := oy*c.Stride - c.Pad
					for ox := 0; ox < wo; ox++ {
						g := grad.F32s[gBase+(oz*ho+oy)*wo+ox]
						if g == 0 {
							continue
						}
						db += g
						ix0 := ox*c.Stride - c.Pad
						for ci := 0; ci < cin; ci++ {
							xC := xBase + ci*d*h*w
							wC := wBase + ci*k3
							for kz := 0; kz < c.K; kz++ {
								iz := iz0 + kz
								if iz < 0 || iz >= d {
									continue
								}
								for ky := 0; ky < c.K; ky++ {
									iy := iy0 + ky
									if iy < 0 || iy >= h {
										continue
									}
									row := xC + (iz*h+iy)*w
									wRow := wC + (kz*c.K+ky)*c.K
									for kx := 0; kx < c.K; kx++ {
										ix := ix0 + kx
										if ix < 0 || ix >= w {
											continue
										}
										c.Weight.G[wRow+kx] += g * x.F32s[row+ix]
									}
								}
							}
						}
					}
				}
			}
		}
		c.Bias.G[co] += db
	})

	wgt := c.Weight.W
	parallelFor(n*cin, func(job int) {
		ni, ci := job/cin, job%cin
		dxC := (ni*cin + ci) * d * h * w
		for co := 0; co < c.OutC; co++ {
			gBase := (ni*c.OutC + co) * do * ho * wo
			wC := (co*cin + ci) * k3
			for oz := 0; oz < do; oz++ {
				iz0 := oz*c.Stride - c.Pad
				for oy := 0; oy < ho; oy++ {
					iy0 := oy*c.Stride - c.Pad
					for ox := 0; ox < wo; ox++ {
						g := grad.F32s[gBase+(oz*ho+oy)*wo+ox]
						if g == 0 {
							continue
						}
						ix0 := ox*c.Stride - c.Pad
						for kz := 0; kz < c.K; kz++ {
							iz := iz0 + kz
							if iz < 0 || iz >= d {
								continue
							}
							for ky := 0; ky < c.K; ky++ {
								iy := iy0 + ky
								if iy < 0 || iy >= h {
									continue
								}
								row := dxC + (iz*h+iy)*w
								wRow := wC + (kz*c.K+ky)*c.K
								for kx := 0; kx < c.K; kx++ {
									ix := ix0 + kx
									if ix < 0 || ix >= w {
										continue
									}
									dx.F32s[row+ix] += g * wgt[wRow+kx]
								}
							}
						}
					}
				}
			}
		}
	})
	return dx
}
