// Package nn is a from-scratch neural-network substrate sufficient to train
// the paper's two model families and reproduce the convergence experiments
// (Figs 6, 7): batched FP32 tensors, 2D/3D convolutions with full
// backpropagation, pooling, dense layers, softmax-cross-entropy and MSE
// losses, and SGD/Adam optimizers. Computation is FP32 throughout — the
// mixed-precision effect under study enters through the FP16 *samples* the
// decoder plugins emit, exactly as in the paper's autocast pipelines.
package nn

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

// Param is one learnable parameter tensor with its gradient accumulator.
type Param struct {
	Name  string
	Shape tensor.Shape
	W     []float32 // weights
	G     []float32 // gradient, accumulated across a batch
}

func newParam(name string, shape ...int) *Param {
	n := tensor.Shape(shape).Elems()
	return &Param{
		Name:  name,
		Shape: tensor.Shape(shape).Clone(),
		W:     make([]float32, n),
		G:     make([]float32, n),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is one differentiable module. Forward must be called before
// Backward; layers cache what they need in between (single-threaded use per
// layer instance).
type Layer interface {
	// Name identifies the layer for diagnostics.
	Name() string
	// Forward computes the layer output for a batched input.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Name implements Layer.
func (s *Sequential) Name() string { return "sequential" }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of learnable scalars.
func (s *Sequential) ParamCount() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.W)
	}
	return n
}

// InitHe applies He-normal initialization to every conv/dense weight and
// zeros every bias, deterministically from seed.
func (s *Sequential) InitHe(seed uint64) {
	rng := xrand.New(seed)
	for _, p := range s.Params() {
		r := rng.Split()
		if len(p.Shape) <= 1 {
			// Rank-<=1 parameters keep their constructed values: biases are
			// born zero, batch-norm gammas are born one. Zeroing here would
			// silently kill normalization layers.
			continue
		}
		fanIn := 1
		for _, d := range p.Shape[1:] {
			fanIn *= d
		}
		std := float32(1.0)
		if fanIn > 0 {
			std = float32(math.Sqrt(2.0 / float64(fanIn)))
		}
		for i := range p.W {
			p.W[i] = std * float32(r.NormFloat64())
		}
	}
}

// parallelFor runs f(i) for i in [0, n) across GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// checkF32 panics unless t is a rank-matching FP32 tensor.
func checkF32(t *tensor.Tensor, rank int, who string) {
	if t.DT != tensor.F32 {
		panic(fmt.Sprintf("nn: %s requires FP32 input, got %v", who, t.DT))
	}
	if len(t.Shape) != rank {
		panic(fmt.Sprintf("nn: %s requires rank-%d input, got %v", who, rank, t.Shape))
	}
}
