package nn

import (
	"fmt"
	"math"

	"scipp/internal/tensor"
)

// MSELoss returns the mean squared error between pred [N, M] and target
// [N, M] plus the gradient dL/dpred. It panics on a shape mismatch
// (programmer invariant: both come from the same static model wiring).
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	checkF32(pred, 2, "MSELoss")
	if !pred.Shape.Equal(target.Shape) {
		panic(fmt.Sprintf("nn: MSE shapes %v vs %v", pred.Shape, target.Shape))
	}
	n := pred.Elems()
	grad := tensor.New(tensor.F32, pred.Shape...)
	var loss float64
	inv := 2 / float64(n)
	for i := range pred.F32s {
		d := float64(pred.F32s[i]) - float64(target.F32s[i])
		loss += d * d
		grad.F32s[i] = float32(d * inv)
	}
	return loss / float64(n), grad
}

// SoftmaxCrossEntropy2D computes the per-pixel multi-class segmentation loss
// of DeepCAM: logits [N, K, H, W], labels I16 [N, H, W] with class ids in
// [0, K). Returns mean loss over pixels and dL/dlogits. It panics on a
// label shape/dtype mismatch or an out-of-range class id (programmer
// invariant: labels are produced by the repo's own generators).
func SoftmaxCrossEntropy2D(logits *tensor.Tensor, labels *tensor.Tensor) (float64, *tensor.Tensor) {
	checkF32(logits, 4, "SoftmaxCrossEntropy2D")
	n, k, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	if labels.DT != tensor.I16 || !labels.Shape.Equal(tensor.Shape{n, h, w}) {
		panic(fmt.Sprintf("nn: labels must be I16 [%d %d %d], got %v %v", n, h, w, labels.DT, labels.Shape))
	}
	grad := tensor.New(tensor.F32, logits.Shape...)
	pixels := n * h * w
	losses := make([]float64, n)
	plane := h * w
	parallelFor(n, func(ni int) {
		var loss float64
		base := ni * k * plane
		for p := 0; p < plane; p++ {
			// Stable softmax over the K class logits of this pixel.
			maxv := float32(math.Inf(-1))
			for c := 0; c < k; c++ {
				if v := logits.F32s[base+c*plane+p]; v > maxv {
					maxv = v
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				sum += math.Exp(float64(logits.F32s[base+c*plane+p] - maxv))
			}
			lab := int(labels.I16s[ni*plane+p])
			if lab < 0 || lab >= k {
				panic(fmt.Sprintf("nn: label %d out of %d classes", lab, k))
			}
			logSum := math.Log(sum)
			loss += logSum - float64(logits.F32s[base+lab*plane+p]-maxv)
			invP := 1 / float64(pixels)
			for c := 0; c < k; c++ {
				pSoft := math.Exp(float64(logits.F32s[base+c*plane+p]-maxv)) / sum
				g := pSoft
				if c == lab {
					g -= 1
				}
				grad.F32s[base+c*plane+p] = float32(g * invP)
			}
		}
		losses[ni] = loss
	})
	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(pixels), grad
}

// Accuracy2D returns the fraction of pixels whose argmax class matches the
// label.
func Accuracy2D(logits, labels *tensor.Tensor) float64 {
	n, k, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	plane := h * w
	correct := 0
	for ni := 0; ni < n; ni++ {
		base := ni * k * plane
		for p := 0; p < plane; p++ {
			best, bestC := float32(math.Inf(-1)), 0
			for c := 0; c < k; c++ {
				if v := logits.F32s[base+c*plane+p]; v > best {
					best, bestC = v, c
				}
			}
			if int16(bestC) == labels.I16s[ni*plane+p] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n*plane)
}
