package nn

import (
	"math"
	"testing"

	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

// numGradParam estimates dLoss/dParam[i] by central differences.
func numGradParam(loss func() float64, w []float32, i int, eps float32) float64 {
	old := w[i]
	w[i] = old + eps
	lp := loss()
	w[i] = old - eps
	lm := loss()
	w[i] = old
	return (lp - lm) / (2 * float64(eps))
}

func randTensor(r *xrand.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.F32, shape...)
	for i := range t.F32s {
		t.F32s[i] = float32(r.NormFloat64())
	}
	return t
}

// checkLayerGradients verifies analytic gradients (parameters and input)
// against finite differences for layer under a scalar loss sum(out*coef).
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	r := xrand.New(99)
	out := layer.Forward(x)
	coef := make([]float32, out.Elems())
	for i := range coef {
		coef[i] = float32(r.NormFloat64())
	}
	loss := func() float64 {
		o := layer.Forward(x)
		var l float64
		for i, v := range o.F32s {
			l += float64(v) * float64(coef[i])
		}
		return l
	}
	// Analytic pass.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	out = layer.Forward(x)
	grad := tensor.New(tensor.F32, out.Shape...)
	copy(grad.F32s, coef)
	dx := layer.Backward(grad)

	// Input gradient spot checks.
	for k := 0; k < 10; k++ {
		i := r.Intn(x.Elems())
		num := numGradParam(loss, x.F32s, i, 1e-2)
		got := float64(dx.F32s[i])
		if math.Abs(got-num) > tol*(1+math.Abs(num)) {
			t.Errorf("%s: input grad[%d] = %g, numeric %g", layer.Name(), i, got, num)
		}
	}
	// Parameter gradient spot checks.
	for _, p := range layer.Params() {
		for k := 0; k < 8; k++ {
			i := r.Intn(len(p.W))
			num := numGradParam(loss, p.W, i, 1e-2)
			got := float64(p.G[i])
			if math.Abs(got-num) > tol*(1+math.Abs(num)) {
				t.Errorf("%s: %s grad[%d] = %g, numeric %g", layer.Name(), p.Name, i, got, num)
			}
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	r := xrand.New(1)
	c := NewConv2D("c", 2, 3, 3, 1, 1)
	NewSequential(c).InitHe(5)
	x := randTensor(r, 2, 2, 6, 7)
	checkLayerGradients(t, c, x, 2e-2)
}

func TestConv2DStride2Gradients(t *testing.T) {
	r := xrand.New(2)
	c := NewConv2D("c", 1, 2, 3, 2, 1)
	NewSequential(c).InitHe(6)
	x := randTensor(r, 1, 1, 8, 8)
	checkLayerGradients(t, c, x, 2e-2)
}

func TestConv3DGradients(t *testing.T) {
	r := xrand.New(3)
	c := NewConv3D("c", 2, 2, 3, 1, 1)
	NewSequential(c).InitHe(7)
	x := randTensor(r, 1, 2, 4, 5, 4)
	checkLayerGradients(t, c, x, 2e-2)
}

func TestConv3DStride2Gradients(t *testing.T) {
	r := xrand.New(4)
	c := NewConv3D("c", 1, 2, 2, 2, 0)
	NewSequential(c).InitHe(8)
	x := randTensor(r, 2, 1, 6, 6, 6)
	checkLayerGradients(t, c, x, 2e-2)
}

func TestDenseGradients(t *testing.T) {
	r := xrand.New(5)
	d := NewDense("d", 7, 4)
	NewSequential(d).InitHe(9)
	x := randTensor(r, 3, 7)
	checkLayerGradients(t, d, x, 1e-2)
}

func TestReLUGradients(t *testing.T) {
	r := xrand.New(6)
	x := randTensor(r, 2, 10)
	checkLayerGradients(t, NewReLU(), x, 1e-2)
}

func TestTanhGradients(t *testing.T) {
	r := xrand.New(7)
	x := randTensor(r, 2, 10)
	checkLayerGradients(t, NewTanh(), x, 1e-2)
}

func TestMaxPool2DGradients(t *testing.T) {
	r := xrand.New(8)
	x := randTensor(r, 2, 2, 6, 6)
	checkLayerGradients(t, NewMaxPool2D(2), x, 1e-2)
}

func TestMaxPool3DGradients(t *testing.T) {
	r := xrand.New(9)
	x := randTensor(r, 1, 2, 4, 4, 4)
	checkLayerGradients(t, NewMaxPool3D(2), x, 1e-2)
}

func TestUpsample2DGradients(t *testing.T) {
	r := xrand.New(10)
	x := randTensor(r, 1, 2, 3, 3)
	checkLayerGradients(t, NewUpsample2D(2), x, 1e-2)
}

func TestUpsampleInvertsPoolShapes(t *testing.T) {
	r := xrand.New(11)
	x := randTensor(r, 1, 3, 8, 8)
	pooled := NewMaxPool2D(2).Forward(x)
	up := NewUpsample2D(2).Forward(pooled)
	if !up.Shape.Equal(x.Shape) {
		t.Errorf("pool+upsample shape %v, want %v", up.Shape, x.Shape)
	}
}

func TestFlatten(t *testing.T) {
	r := xrand.New(12)
	x := randTensor(r, 2, 3, 4)
	f := NewFlatten()
	y := f.Forward(x)
	if !y.Shape.Equal(tensor.Shape{2, 12}) {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	g := f.Backward(y)
	if !g.Shape.Equal(x.Shape) {
		t.Fatalf("unflatten shape %v", g.Shape)
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)
	target := tensor.FromF32([]float32{1, 1, 3, 2}, 2, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-(0+1+0+4)/4.0) > 1e-6 {
		t.Errorf("MSE = %g", loss)
	}
	// grad = 2*(pred-target)/n
	if math.Abs(float64(grad.F32s[1])-0.5) > 1e-6 || math.Abs(float64(grad.F32s[3])-1.0) > 1e-6 {
		t.Errorf("MSE grad = %v", grad.F32s)
	}
}

func TestMSEGradientNumeric(t *testing.T) {
	r := xrand.New(13)
	pred := randTensor(r, 2, 3)
	target := randTensor(r, 2, 3)
	_, grad := MSELoss(pred, target)
	for i := range pred.F32s {
		num := numGradParam(func() float64 { l, _ := MSELoss(pred, target); return l }, pred.F32s, i, 1e-3)
		if math.Abs(float64(grad.F32s[i])-num) > 1e-3 {
			t.Errorf("MSE grad[%d] = %g, numeric %g", i, grad.F32s[i], num)
		}
	}
}

func TestSoftmaxCE(t *testing.T) {
	// Perfectly confident correct logits give near-zero loss.
	logits := tensor.New(tensor.F32, 1, 3, 2, 2)
	labels := tensor.New(tensor.I16, 1, 2, 2)
	for p := 0; p < 4; p++ {
		labels.I16s[p] = int16(p % 3)
		logits.F32s[(p%3)*4+p] = 50
	}
	loss, _ := SoftmaxCrossEntropy2D(logits, labels)
	if loss > 1e-6 {
		t.Errorf("confident correct loss = %g", loss)
	}
	// Uniform logits give log(K).
	logits = tensor.New(tensor.F32, 1, 3, 2, 2)
	loss, _ = SoftmaxCrossEntropy2D(logits, labels)
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Errorf("uniform loss = %g, want log 3", loss)
	}
}

func TestSoftmaxCEGradientNumeric(t *testing.T) {
	r := xrand.New(14)
	logits := randTensor(r, 2, 3, 2, 2)
	labels := tensor.New(tensor.I16, 2, 2, 2)
	for i := range labels.I16s {
		labels.I16s[i] = int16(r.Intn(3))
	}
	_, grad := SoftmaxCrossEntropy2D(logits, labels)
	for k := 0; k < 12; k++ {
		i := r.Intn(logits.Elems())
		num := numGradParam(func() float64 {
			l, _ := SoftmaxCrossEntropy2D(logits, labels)
			return l
		}, logits.F32s, i, 1e-2)
		if math.Abs(float64(grad.F32s[i])-num) > 1e-3 {
			t.Errorf("CE grad[%d] = %g, numeric %g", i, grad.F32s[i], num)
		}
	}
}

func TestAccuracy2D(t *testing.T) {
	logits := tensor.New(tensor.F32, 1, 2, 1, 2)
	// pixel 0: class 1 wins; pixel 1: class 0 wins.
	logits.F32s[0], logits.F32s[2] = 0, 1 // class 0 plane
	logits.F32s[1], logits.F32s[3] = 2, 0 // wait: plane layout [C, H, W]
	labels := tensor.New(tensor.I16, 1, 1, 2)
	labels.I16s[0] = 1
	labels.I16s[1] = 0
	// plane size = 2. class0 plane = [0, 1], class1 plane = [2, 0]... see below
	logits.F32s[0] = 0.0 // c0 p0
	logits.F32s[1] = 1.0 // c0 p1
	logits.F32s[2] = 2.0 // c1 p0
	logits.F32s[3] = 0.0 // c1 p1
	if acc := Accuracy2D(logits, labels); acc != 1.0 {
		t.Errorf("accuracy = %g, want 1", acc)
	}
	labels.I16s[0] = 0
	if acc := Accuracy2D(logits, labels); acc != 0.5 {
		t.Errorf("accuracy = %g, want 0.5", acc)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// Minimize (w-3)^2 with SGD+momentum.
	p := newParam("w", 1)
	p.W[0] = 0
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 200; i++ {
		p.ZeroGrad()
		p.G[0] = 2 * (p.W[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.W[0])-3) > 1e-3 {
		t.Errorf("SGD converged to %g, want 3", p.W[0])
	}
}

func TestAdamConverges(t *testing.T) {
	p := newParam("w", 2)
	p.W[0], p.W[1] = -4, 7
	opt := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		p.ZeroGrad()
		p.G[0] = 2 * (p.W[0] - 1)
		p.G[1] = 8 * (p.W[1] - 2) // ill-conditioned pair
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.W[0])-1) > 1e-2 || math.Abs(float64(p.W[1])-2) > 1e-2 {
		t.Errorf("Adam converged to %v", p.W)
	}
}

func TestWarmupSchedule(t *testing.T) {
	s := WarmupSchedule{Base: 1.0, WarmupSteps: 10, DecayAt: []int{100}, DecayFactor: 0.1}
	if got := s.At(0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("step 0 lr = %g", got)
	}
	if got := s.At(9); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("step 9 lr = %g", got)
	}
	if got := s.At(50); got != 1.0 {
		t.Errorf("step 50 lr = %g", got)
	}
	if got := s.At(150); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("step 150 lr = %g", got)
	}
}

func TestSequentialEndToEnd(t *testing.T) {
	// A small conv net must fit random data: loss decreases monotonically
	// enough to halve.
	r := xrand.New(20)
	model := NewSequential(
		NewConv2D("c1", 1, 4, 3, 1, 1),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense("d1", 4*4*4, 3),
	)
	model.InitHe(21)
	x := randTensor(r, 4, 1, 8, 8)
	target := randTensor(r, 4, 3)
	opt := NewAdam(0.01)
	first, last := 0.0, 0.0
	for i := 0; i < 60; i++ {
		model.ZeroGrad()
		out := model.Forward(x)
		loss, grad := MSELoss(out, target)
		if i == 0 {
			first = loss
		}
		last = loss
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if last > first/2 {
		t.Errorf("training did not reduce loss: %g -> %g", first, last)
	}
	if model.ParamCount() == 0 {
		t.Error("ParamCount is zero")
	}
}

func TestInitHeDeterministic(t *testing.T) {
	m1 := NewSequential(NewConv2D("c", 2, 2, 3, 1, 1))
	m2 := NewSequential(NewConv2D("c", 2, 2, 3, 1, 1))
	m1.InitHe(42)
	m2.InitHe(42)
	p1, p2 := m1.Params()[0], m2.Params()[0]
	for i := range p1.W {
		if p1.W[i] != p2.W[i] {
			t.Fatal("InitHe not deterministic")
		}
	}
	m3 := NewSequential(NewConv2D("c", 2, 2, 3, 1, 1))
	m3.InitHe(43)
	if m3.Params()[0].W[0] == p1.W[0] {
		t.Error("different seeds give identical init")
	}
	// Bias is zeroed.
	if b := m1.Params()[1]; b.W[0] != 0 {
		t.Error("bias not zero-initialized")
	}
}
