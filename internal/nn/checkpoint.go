package nn

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"scipp/internal/h5lite"
	"scipp/internal/tensor"
)

// CheckpointError is the typed failure of checkpoint serialization: Reason
// classifies what went wrong ("read" for truncated or unreadable bytes,
// "corrupt" for CRC failures, "version" for a format-header mismatch,
// "missing"/"shape" for topology drift, "optimizer" and "rng" for restore
// state that does not fit the live objects).
type CheckpointError struct {
	Reason string
	Err    error
}

// Error implements error.
func (e *CheckpointError) Error() string {
	return fmt.Sprintf("nn: checkpoint %s: %v", e.Reason, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *CheckpointError) Unwrap() error { return e.Err }

func ckptErr(reason, format string, args ...any) error {
	return &CheckpointError{Reason: reason, Err: fmt.Errorf(format, args...)}
}

func readErr(err error) error {
	reason := "read"
	if errors.Is(err, h5lite.ErrCorrupt) {
		reason = "corrupt"
	}
	return &CheckpointError{Reason: reason, Err: err}
}

// SaveWeights serializes a model's parameters into an h5lite container —
// one dataset per parameter, keyed by parameter name — so training runs can
// checkpoint and the examples can hand models around.
func SaveWeights(w io.Writer, s *Sequential) error {
	f := h5lite.NewFile()
	f.Attrs["format"] = "scipp-weights-v1"
	f.Attrs["params"] = fmt.Sprint(len(s.Params()))
	seen := make(map[string]bool)
	for _, p := range s.Params() {
		if seen[p.Name] {
			return ckptErr("name", "duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		t := tensor.FromF32(p.W, p.Shape...)
		f.Put(p.Name, t)
	}
	return f.Write(w)
}

// LoadWeights restores parameters saved by SaveWeights into a model with
// the identical topology. Shapes must match exactly; extra or missing
// parameters are errors. All failures are *CheckpointError.
func LoadWeights(r io.Reader, s *Sequential) error {
	f, err := h5lite.Read(r)
	if err != nil {
		return readErr(err)
	}
	if f.Attrs["format"] != "scipp-weights-v1" {
		return ckptErr("version", "not a weights checkpoint (format %q)", f.Attrs["format"])
	}
	params := s.Params()
	if fmt.Sprint(len(params)) != f.Attrs["params"] {
		return ckptErr("missing", "checkpoint has %s parameters, model has %d", f.Attrs["params"], len(params))
	}
	for _, p := range params {
		t, ok := f.Get(p.Name)
		if !ok {
			return ckptErr("missing", "checkpoint missing parameter %q", p.Name)
		}
		if t.DT != tensor.F32 || !t.Shape.Equal(p.Shape) {
			return ckptErr("shape", "parameter %q has shape %v, model wants %v", p.Name, t.Shape, p.Shape)
		}
		copy(p.W, t.F32s)
	}
	return nil
}

// checkpointFormat is the v2 container header: weights plus optimizer state
// plus live RNG streams, enough for bit-identical training resume.
const checkpointFormat = "scipp-checkpoint-v2"

// dropouts walks the model collecting its Dropout layers in forward order —
// the order their RNG streams are keyed in a checkpoint.
func dropouts(s *Sequential) []*Dropout {
	var out []*Dropout
	for _, l := range s.Layers {
		switch v := l.(type) {
		case *Dropout:
			out = append(out, v)
		case *Sequential:
			out = append(out, dropouts(v)...)
		}
	}
	return out
}

func encodeRNGState(st [4]uint64) string {
	return fmt.Sprintf("%016x%016x%016x%016x", st[0], st[1], st[2], st[3])
}

func decodeRNGState(s string) ([4]uint64, error) {
	var st [4]uint64
	if len(s) != 64 {
		return st, fmt.Errorf("rng state %q is not 64 hex digits", s)
	}
	for i := range st {
		v, err := strconv.ParseUint(s[i*16:(i+1)*16], 16, 64)
		if err != nil {
			return st, fmt.Errorf("rng state %q: %w", s, err)
		}
		st[i] = v
	}
	return st, nil
}

// SaveCheckpoint serializes everything a training run needs to resume
// bit-identically: parameter weights, optimizer state (SGD velocity or Adam
// moments and step count), and the live RNG stream of every Dropout layer.
// extra attributes (sampler position, epoch counters — whatever the trainer
// must carry) are stored under an "x." namespace and returned verbatim by
// LoadCheckpoint. opt may be nil for an optimizer-less snapshot.
func SaveCheckpoint(w io.Writer, s *Sequential, opt Optimizer, extra map[string]string) error {
	f := h5lite.NewFile()
	f.Attrs["format"] = checkpointFormat
	params := s.Params()
	f.Attrs["params"] = fmt.Sprint(len(params))
	seen := make(map[string]bool)
	for _, p := range params {
		if seen[p.Name] {
			return ckptErr("name", "duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		f.Put("w/"+p.Name, tensor.FromF32(p.W, p.Shape...))
	}

	switch o := opt.(type) {
	case nil:
		f.Attrs["opt"] = "none"
	case *SGD:
		f.Attrs["opt"] = "sgd"
		f.Attrs["opt.lr"] = strconv.FormatFloat(o.lr, 'x', -1, 64)
		f.Attrs["opt.momentum"] = strconv.FormatFloat(o.Momentum, 'x', -1, 64)
		for _, p := range params {
			if v, ok := o.vel[p]; ok {
				f.Put("opt/vel/"+p.Name, tensor.FromF32(v, len(v)))
			}
		}
	case *Adam:
		f.Attrs["opt"] = "adam"
		f.Attrs["opt.lr"] = strconv.FormatFloat(o.lr, 'x', -1, 64)
		f.Attrs["opt.beta1"] = strconv.FormatFloat(o.Beta1, 'x', -1, 64)
		f.Attrs["opt.beta2"] = strconv.FormatFloat(o.Beta2, 'x', -1, 64)
		f.Attrs["opt.eps"] = strconv.FormatFloat(o.Eps, 'x', -1, 64)
		f.Attrs["opt.t"] = fmt.Sprint(o.t)
		for _, p := range params {
			if m, ok := o.m[p]; ok {
				f.Put("opt/m/"+p.Name, tensor.FromF32(m, len(m)))
				f.Put("opt/v/"+p.Name, tensor.FromF32(o.v[p], len(o.v[p])))
			}
		}
	default:
		return ckptErr("optimizer", "cannot checkpoint optimizer type %T", opt)
	}

	drops := dropouts(s)
	f.Attrs["rng.dropouts"] = fmt.Sprint(len(drops))
	for i, d := range drops {
		f.Attrs[fmt.Sprintf("rng.dropout.%d", i)] = encodeRNGState(d.RNGState())
	}

	for k, v := range extra {
		f.Attrs["x."+k] = v
	}
	return f.Write(w)
}

// LoadCheckpoint restores a SaveCheckpoint snapshot into a model and
// optimizer of the identical construction, returning the extra attributes.
// The optimizer must be the same type the checkpoint was taken from (nil
// matches "none"). All failures are *CheckpointError with a classifying
// Reason: a truncated stream is "read", a flipped payload byte "corrupt", a
// foreign or v1 container "version".
func LoadCheckpoint(r io.Reader, s *Sequential, opt Optimizer) (map[string]string, error) {
	f, err := h5lite.Read(r)
	if err != nil {
		return nil, readErr(err)
	}
	if f.Attrs["format"] != checkpointFormat {
		return nil, ckptErr("version", "not a %s container (format %q)", checkpointFormat, f.Attrs["format"])
	}
	params := s.Params()
	if fmt.Sprint(len(params)) != f.Attrs["params"] {
		return nil, ckptErr("missing", "checkpoint has %s parameters, model has %d", f.Attrs["params"], len(params))
	}
	for _, p := range params {
		t, ok := f.Get("w/" + p.Name)
		if !ok {
			return nil, ckptErr("missing", "checkpoint missing parameter %q", p.Name)
		}
		if t.DT != tensor.F32 || !t.Shape.Equal(p.Shape) {
			return nil, ckptErr("shape", "parameter %q has shape %v, model wants %v", p.Name, t.Shape, p.Shape)
		}
		copy(p.W, t.F32s)
	}

	loadSlice := func(name string, want int) ([]float32, error) {
		t, ok := f.Get(name)
		if !ok {
			return nil, nil
		}
		if t.DT != tensor.F32 || len(t.F32s) != want {
			return nil, ckptErr("shape", "optimizer state %q has %d elements, parameter wants %d", name, len(t.F32s), want)
		}
		return append([]float32(nil), t.F32s...), nil
	}
	parseF := func(key string) (float64, error) {
		v, err := strconv.ParseFloat(f.Attrs[key], 64)
		if err != nil {
			return 0, ckptErr("optimizer", "bad attribute %s=%q", key, f.Attrs[key])
		}
		return v, nil
	}

	kind := f.Attrs["opt"]
	switch o := opt.(type) {
	case nil:
		if kind != "none" {
			return nil, ckptErr("optimizer", "checkpoint carries %q optimizer state, caller passed none", kind)
		}
	case *SGD:
		if kind != "sgd" {
			return nil, ckptErr("optimizer", "checkpoint carries %q optimizer state, caller passed *SGD", kind)
		}
		if o.lr, err = parseF("opt.lr"); err != nil {
			return nil, err
		}
		if o.Momentum, err = parseF("opt.momentum"); err != nil {
			return nil, err
		}
		o.vel = make(map[*Param][]float32)
		for _, p := range params {
			v, err := loadSlice("opt/vel/"+p.Name, len(p.W))
			if err != nil {
				return nil, err
			}
			if v != nil {
				o.vel[p] = v
			}
		}
	case *Adam:
		if kind != "adam" {
			return nil, ckptErr("optimizer", "checkpoint carries %q optimizer state, caller passed *Adam", kind)
		}
		if o.lr, err = parseF("opt.lr"); err != nil {
			return nil, err
		}
		if o.Beta1, err = parseF("opt.beta1"); err != nil {
			return nil, err
		}
		if o.Beta2, err = parseF("opt.beta2"); err != nil {
			return nil, err
		}
		if o.Eps, err = parseF("opt.eps"); err != nil {
			return nil, err
		}
		if o.t, err = strconv.Atoi(f.Attrs["opt.t"]); err != nil {
			return nil, ckptErr("optimizer", "bad attribute opt.t=%q", f.Attrs["opt.t"])
		}
		o.m = make(map[*Param][]float32)
		o.v = make(map[*Param][]float32)
		for _, p := range params {
			m, err := loadSlice("opt/m/"+p.Name, len(p.W))
			if err != nil {
				return nil, err
			}
			v, err := loadSlice("opt/v/"+p.Name, len(p.W))
			if err != nil {
				return nil, err
			}
			if (m == nil) != (v == nil) {
				return nil, ckptErr("optimizer", "parameter %q has half its Adam moments", p.Name)
			}
			if m != nil {
				o.m[p], o.v[p] = m, v
			}
		}
	default:
		return nil, ckptErr("optimizer", "cannot restore into optimizer type %T", opt)
	}

	drops := dropouts(s)
	if fmt.Sprint(len(drops)) != f.Attrs["rng.dropouts"] {
		return nil, ckptErr("rng", "checkpoint has %s dropout streams, model has %d", f.Attrs["rng.dropouts"], len(drops))
	}
	for i, d := range drops {
		st, err := decodeRNGState(f.Attrs[fmt.Sprintf("rng.dropout.%d", i)])
		if err != nil {
			return nil, &CheckpointError{Reason: "rng", Err: err}
		}
		d.SetRNGState(st)
	}

	extra := make(map[string]string)
	for k, v := range f.Attrs {
		if len(k) > 2 && k[:2] == "x." {
			extra[k[2:]] = v
		}
	}
	return extra, nil
}
