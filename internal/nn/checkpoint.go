package nn

import (
	"fmt"
	"io"

	"scipp/internal/h5lite"
	"scipp/internal/tensor"
)

// SaveWeights serializes a model's parameters into an h5lite container —
// one dataset per parameter, keyed by parameter name — so training runs can
// checkpoint and the examples can hand models around.
func SaveWeights(w io.Writer, s *Sequential) error {
	f := h5lite.NewFile()
	f.Attrs["format"] = "scipp-weights-v1"
	f.Attrs["params"] = fmt.Sprint(len(s.Params()))
	seen := make(map[string]bool)
	for _, p := range s.Params() {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		t := tensor.FromF32(p.W, p.Shape...)
		f.Put(p.Name, t)
	}
	return f.Write(w)
}

// LoadWeights restores parameters saved by SaveWeights into a model with
// the identical topology. Shapes must match exactly; extra or missing
// parameters are errors.
func LoadWeights(r io.Reader, s *Sequential) error {
	f, err := h5lite.Read(r)
	if err != nil {
		return fmt.Errorf("nn: reading checkpoint: %w", err)
	}
	if f.Attrs["format"] != "scipp-weights-v1" {
		return fmt.Errorf("nn: not a weights checkpoint (format %q)", f.Attrs["format"])
	}
	params := s.Params()
	if fmt.Sprint(len(params)) != f.Attrs["params"] {
		return fmt.Errorf("nn: checkpoint has %s parameters, model has %d", f.Attrs["params"], len(params))
	}
	for _, p := range params {
		t, ok := f.Get(p.Name)
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if t.DT != tensor.F32 || !t.Shape.Equal(p.Shape) {
			return fmt.Errorf("nn: parameter %q has shape %v, model wants %v", p.Name, t.Shape, p.Shape)
		}
		copy(p.W, t.F32s)
	}
	return nil
}
