package nn

import (
	"fmt"

	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

// DilatedConv2D is a 2D convolution with dilation (atrous convolution) —
// the characteristic operator of DeepLabv3+ ("encoder-decoder with atrous
// separable convolution"), which DeepCAM's model is built on. A dilation of
// 1 is a plain convolution; dilation d samples the kernel taps d pixels
// apart, enlarging the receptive field at constant cost.
type DilatedConv2D struct {
	InC, OutC, K, Stride, Pad, Dilation int
	Weight, Bias                        *Param

	x *tensor.Tensor
}

// NewDilatedConv2D builds a KxK convolution with the given dilation. It
// panics on a non-positive config (programmer invariant: layer wiring is
// static).
func NewDilatedConv2D(name string, inC, outC, k, stride, pad, dilation int) *DilatedConv2D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 || dilation <= 0 {
		panic(fmt.Sprintf("nn: bad DilatedConv2D config %d %d %d %d %d %d", inC, outC, k, stride, pad, dilation))
	}
	return &DilatedConv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Dilation: dilation,
		Weight: newParam(name+".w", outC, inC, k, k),
		Bias:   newParam(name+".b", outC),
	}
}

// Name implements Layer.
func (c *DilatedConv2D) Name() string { return c.Weight.Name[:len(c.Weight.Name)-2] }

// Params implements Layer.
func (c *DilatedConv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

func (c *DilatedConv2D) outDims(h, w int) (int, int) {
	ek := (c.K-1)*c.Dilation + 1 // effective kernel extent
	ho := (h+2*c.Pad-ek)/c.Stride + 1
	wo := (w+2*c.Pad-ek)/c.Stride + 1
	return ho, wo
}

// Forward implements Layer. It panics unless x is FP32 [N, InC, H, W]
// large enough for a non-empty output (programmer invariant).
func (c *DilatedConv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 4, "DilatedConv2D")
	n, cin, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if cin != c.InC {
		panic(fmt.Sprintf("nn: DilatedConv2D expects %d input channels, got %d", c.InC, cin))
	}
	ho, wo := c.outDims(h, w)
	if ho <= 0 || wo <= 0 {
		panic(fmt.Sprintf("nn: DilatedConv2D output %dx%d is empty", ho, wo))
	}
	out := tensor.New(tensor.F32, n, c.OutC, ho, wo)
	c.x = x
	wgt, bias := c.Weight.W, c.Bias.W
	d := c.Dilation
	parallelFor(n*c.OutC, func(job int) {
		ni, co := job/c.OutC, job%c.OutC
		xBase := ni * cin * h * w
		oBase := (ni*c.OutC + co) * ho * wo
		wBase := co * cin * c.K * c.K
		for oy := 0; oy < ho; oy++ {
			iy0 := oy*c.Stride - c.Pad
			for ox := 0; ox < wo; ox++ {
				ix0 := ox*c.Stride - c.Pad
				acc := bias[co]
				for ci := 0; ci < cin; ci++ {
					xC := xBase + ci*h*w
					wC := wBase + ci*c.K*c.K
					for ky := 0; ky < c.K; ky++ {
						iy := iy0 + ky*d
						if iy < 0 || iy >= h {
							continue
						}
						row := xC + iy*w
						wRow := wC + ky*c.K
						for kx := 0; kx < c.K; kx++ {
							ix := ix0 + kx*d
							if ix < 0 || ix >= w {
								continue
							}
							acc += x.F32s[row+ix] * wgt[wRow+kx]
						}
					}
				}
				out.F32s[oBase+oy*wo+ox] = acc
			}
		}
	})
	return out
}

// Backward implements Layer. It panics unless grad matches the forward
// output shape (programmer invariant).
func (c *DilatedConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	n, cin, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	ho, wo := c.outDims(h, w)
	if !grad.Shape.Equal(tensor.Shape{n, c.OutC, ho, wo}) {
		panic(fmt.Sprintf("nn: DilatedConv2D backward grad shape %v", grad.Shape))
	}
	dx := tensor.New(tensor.F32, n, cin, h, w)
	d := c.Dilation

	parallelFor(c.OutC, func(co int) {
		wBase := co * cin * c.K * c.K
		var db float32
		for ni := 0; ni < n; ni++ {
			gBase := (ni*c.OutC + co) * ho * wo
			xBase := ni * cin * h * w
			for oy := 0; oy < ho; oy++ {
				iy0 := oy*c.Stride - c.Pad
				for ox := 0; ox < wo; ox++ {
					g := grad.F32s[gBase+oy*wo+ox]
					if g == 0 {
						continue
					}
					db += g
					ix0 := ox*c.Stride - c.Pad
					for ci := 0; ci < cin; ci++ {
						xC := xBase + ci*h*w
						wC := wBase + ci*c.K*c.K
						for ky := 0; ky < c.K; ky++ {
							iy := iy0 + ky*d
							if iy < 0 || iy >= h {
								continue
							}
							row := xC + iy*w
							wRow := wC + ky*c.K
							for kx := 0; kx < c.K; kx++ {
								ix := ix0 + kx*d
								if ix < 0 || ix >= w {
									continue
								}
								c.Weight.G[wRow+kx] += g * x.F32s[row+ix]
							}
						}
					}
				}
			}
		}
		c.Bias.G[co] += db
	})

	wgt := c.Weight.W
	parallelFor(n*cin, func(job int) {
		ni, ci := job/cin, job%cin
		dxC := (ni*cin + ci) * h * w
		for co := 0; co < c.OutC; co++ {
			gBase := (ni*c.OutC + co) * ho * wo
			wC := (co*cin + ci) * c.K * c.K
			for oy := 0; oy < ho; oy++ {
				iy0 := oy*c.Stride - c.Pad
				for ox := 0; ox < wo; ox++ {
					g := grad.F32s[gBase+oy*wo+ox]
					if g == 0 {
						continue
					}
					ix0 := ox*c.Stride - c.Pad
					for ky := 0; ky < c.K; ky++ {
						iy := iy0 + ky*d
						if iy < 0 || iy >= h {
							continue
						}
						row := dxC + iy*w
						wRow := wC + ky*c.K
						for kx := 0; kx < c.K; kx++ {
							ix := ix0 + kx*d
							if ix < 0 || ix >= w {
								continue
							}
							dx.F32s[row+ix] += g * wgt[wRow+kx]
						}
					}
				}
			}
		}
	})
	return dx
}

// Dropout randomly zeroes activations during training — the "random weight
// drop-offs" the paper lists among CosmoFlow's run-to-run variability
// sources (§VIII-A). Deterministic given the seed sequence; a Dropout with
// Train=false is the identity.
type Dropout struct {
	// P is the drop probability in [0, 1).
	P float64
	// Train enables dropping; evaluation mode passes through unscaled.
	Train bool

	rng  *xrand.RNG
	mask []float32
}

// NewDropout builds a dropout layer seeded deterministically. It panics if
// p is outside [0, 1) (programmer invariant).
func NewDropout(p float64, seed uint64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g out of [0,1)", p))
	}
	return &Dropout{P: p, Train: true, rng: xrand.New(seed)}
}

// Name implements Layer.
func (d *Dropout) Name() string { return "dropout" }

// RNGState exposes the layer's live random stream for checkpointing: a
// restored run must continue the mask sequence exactly where the original
// left off to stay bit-identical.
func (d *Dropout) RNGState() [4]uint64 { return d.rng.State() }

// SetRNGState restores a stream captured by RNGState.
func (d *Dropout) SetRNGState(s [4]uint64) { d.rng.SetState(s) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer. Uses inverted dropout: kept activations are
// scaled by 1/(1-p) so evaluation needs no rescaling.
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.Train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := tensor.New(tensor.F32, x.Shape...)
	if cap(d.mask) < len(x.F32s) {
		d.mask = make([]float32, len(x.F32s))
	}
	d.mask = d.mask[:len(x.F32s)]
	keep := float32(1 / (1 - d.P))
	for i, v := range x.F32s {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = keep
			out.F32s[i] = v * keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	dx := tensor.New(tensor.F32, grad.Shape...)
	for i, g := range grad.F32s {
		dx.F32s[i] = g * d.mask[i]
	}
	return dx
}

// LeakyReLU is max(x, alpha*x) — mitigates the dying-ReLU collapse that
// fully kills gradient flow in small networks (observed in this codebase's
// own training history; see models.MiniCosmoFlow's head note).
type LeakyReLU struct {
	Alpha float32
	x     []float32
}

// NewLeakyReLU builds the activation with the given negative slope. It
// panics if alpha is outside [0, 1) (programmer invariant).
func NewLeakyReLU(alpha float32) *LeakyReLU {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("nn: LeakyReLU alpha %g out of [0,1)", alpha))
	}
	return &LeakyReLU{Alpha: alpha}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return "leakyrelu" }

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(tensor.F32, x.Shape...)
	if cap(l.x) < len(x.F32s) {
		l.x = make([]float32, len(x.F32s))
	}
	l.x = l.x[:len(x.F32s)]
	copy(l.x, x.F32s)
	for i, v := range x.F32s {
		if v > 0 {
			out.F32s[i] = v
		} else {
			out.F32s[i] = l.Alpha * v
		}
	}
	return out
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(tensor.F32, grad.Shape...)
	for i, g := range grad.F32s {
		if l.x[i] > 0 {
			dx.F32s[i] = g
		} else {
			dx.F32s[i] = l.Alpha * g
		}
	}
	return dx
}
