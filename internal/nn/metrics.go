package nn

import (
	"fmt"
	"math"

	"scipp/internal/tensor"
)

// IoU2D computes per-class intersection-over-union for a segmentation
// prediction: logits [N, K, H, W] against I16 labels [N, H, W]. Classes
// absent from both prediction and labels report IoU = NaN (undefined).
// DeepCAM's quality target is mean IoU. It panics on a label shape/dtype
// mismatch (programmer invariant).
func IoU2D(logits, labels *tensor.Tensor) []float64 {
	checkF32(logits, 4, "IoU2D")
	n, k, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	if labels.DT != tensor.I16 || !labels.Shape.Equal(tensor.Shape{n, h, w}) {
		panic(fmt.Sprintf("nn: IoU2D labels must be I16 [%d %d %d]", n, h, w))
	}
	plane := h * w
	inter := make([]int, k)
	union := make([]int, k)
	for ni := 0; ni < n; ni++ {
		base := ni * k * plane
		for p := 0; p < plane; p++ {
			best, bestC := float32(math.Inf(-1)), 0
			for c := 0; c < k; c++ {
				if v := logits.F32s[base+c*plane+p]; v > best {
					best, bestC = v, c
				}
			}
			lab := int(labels.I16s[ni*plane+p])
			if bestC == lab {
				inter[lab]++
				union[lab]++
			} else {
				union[bestC]++
				union[lab]++
			}
		}
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		if union[c] == 0 {
			out[c] = math.NaN()
			continue
		}
		out[c] = float64(inter[c]) / float64(union[c])
	}
	return out
}

// MeanIoU averages the defined per-class IoUs.
func MeanIoU(ious []float64) float64 {
	var sum float64
	var n int
	for _, v := range ious {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MAE computes the mean absolute error between pred [N, M] and target
// [N, M] — CosmoFlow's quality target is the mean absolute error of the
// predicted cosmological parameters. It panics on a shape mismatch
// (programmer invariant).
func MAE(pred, target *tensor.Tensor) float64 {
	checkF32(pred, 2, "MAE")
	if !pred.Shape.Equal(target.Shape) {
		panic(fmt.Sprintf("nn: MAE shapes %v vs %v", pred.Shape, target.Shape))
	}
	var sum float64
	for i := range pred.F32s {
		sum += math.Abs(float64(pred.F32s[i]) - float64(target.F32s[i]))
	}
	return sum / float64(pred.Elems())
}
