package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; callers ZeroGrad after.
	Step(params []*Param)
	// SetLR changes the learning rate (for warmup/decay schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with momentum.
type SGD struct {
	lr       float64
	Momentum float64
	vel      map[*Param][]float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, Momentum: momentum, vel: make(map[*Param][]float32)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.vel[p]
		if v == nil {
			v = make([]float32, len(p.W))
			s.vel[p] = v
		}
		m := float32(s.Momentum)
		lr := float32(s.lr)
		for i := range p.W {
			v[i] = m*v[i] + p.G[i]
			p.W[i] -= lr * v[i]
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer.
type Adam struct {
	lr                float64
	Beta1, Beta2, Eps float64
	t                 int
	m, v              map[*Param][]float32
}

// NewAdam returns an Adam optimizer with the conventional betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float32), v: make(map[*Param][]float32),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, v := a.m[p], a.v[p]
		if m == nil {
			m = make([]float32, len(p.W))
			v = make([]float32, len(p.W))
			a.m[p], a.v[p] = m, v
		}
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		for i := range p.W {
			g := p.G[i]
			m[i] = b1*m[i] + (1-b1)*g
			v[i] = b2*v[i] + (1-b2)*g*g
			mh := float64(m[i]) / bc1
			vh := float64(v[i]) / bc2
			p.W[i] -= float32(a.lr * mh / (math.Sqrt(vh) + a.Eps))
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// WarmupSchedule implements the reference learning schedule: linear warmup
// to base LR over warmupSteps, then constant ("we merely used the same
// learning schedule — warmup, learning rate change with rank count and
// phases — for both classes of samples", §VIII-A).
type WarmupSchedule struct {
	Base        float64
	WarmupSteps int
	// DecayAt and DecayFactor optionally drop the LR at phase boundaries.
	DecayAt     []int
	DecayFactor float64
}

// At returns the learning rate for a (0-based) step.
func (w WarmupSchedule) At(step int) float64 {
	lr := w.Base
	if w.WarmupSteps > 0 && step < w.WarmupSteps {
		lr = w.Base * float64(step+1) / float64(w.WarmupSteps)
	}
	f := 1.0
	for _, at := range w.DecayAt {
		if step >= at {
			f *= w.DecayFactor
		}
	}
	return lr * f
}
