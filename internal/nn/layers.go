package nn

import (
	"fmt"
	"math"

	"scipp/internal/tensor"
)

// Dense is a fully connected layer over [N, In] inputs.
type Dense struct {
	In, Out      int
	Weight, Bias *Param

	x *tensor.Tensor
}

// NewDense builds a fully connected layer. It panics on a non-positive
// config (programmer invariant: layer wiring is static).
func NewDense(name string, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: bad Dense config %d %d", in, out))
	}
	return &Dense{
		In: in, Out: out,
		Weight: newParam(name+".w", out, in),
		Bias:   newParam(name+".b", out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.Weight.Name[:len(d.Weight.Name)-2] }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Forward implements Layer. It panics unless x is FP32 [N, In]
// (programmer invariant: model wiring is static).
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 2, "Dense")
	n := x.Shape[0]
	if x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d features, got %d", d.In, x.Shape[1]))
	}
	d.x = x
	out := tensor.New(tensor.F32, n, d.Out)
	parallelFor(n, func(ni int) {
		xi := x.F32s[ni*d.In : (ni+1)*d.In]
		oi := out.F32s[ni*d.Out : (ni+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			acc := d.Bias.W[o]
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			for i, v := range xi {
				acc += v * row[i]
			}
			oi[o] = acc
		}
	})
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := d.x
	n := x.Shape[0]
	dx := tensor.New(tensor.F32, n, d.In)
	// Parameter grads: parallel over output unit (each owns its weight row).
	parallelFor(d.Out, func(o int) {
		row := d.Weight.G[o*d.In : (o+1)*d.In]
		var db float32
		for ni := 0; ni < n; ni++ {
			g := grad.F32s[ni*d.Out+o]
			if g == 0 {
				continue
			}
			db += g
			xi := x.F32s[ni*d.In : (ni+1)*d.In]
			for i, v := range xi {
				row[i] += g * v
			}
		}
		d.Bias.G[o] += db
	})
	// Input grads: parallel over batch.
	parallelFor(n, func(ni int) {
		gi := grad.F32s[ni*d.Out : (ni+1)*d.Out]
		di := dx.F32s[ni*d.In : (ni+1)*d.In]
		for o, g := range gi {
			if g == 0 {
				continue
			}
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			for i, wv := range row {
				di[i] += g * wv
			}
		}
	})
	return dx
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(tensor.F32, x.Shape...)
	if cap(r.mask) < len(x.F32s) {
		r.mask = make([]bool, len(x.F32s))
	}
	r.mask = r.mask[:len(x.F32s)]
	for i, v := range x.F32s {
		if v > 0 {
			out.F32s[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(tensor.F32, grad.Shape...)
	for i, g := range grad.F32s {
		if r.mask[i] {
			dx.F32s[i] = g
		}
	}
	return dx
}

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y []float32
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(tensor.F32, x.Shape...)
	if cap(t.y) < len(x.F32s) {
		t.y = make([]float32, len(x.F32s))
	}
	t.y = t.y[:len(x.F32s)]
	for i, v := range x.F32s {
		y := float32(math.Tanh(float64(v)))
		out.F32s[i] = y
		t.y[i] = y
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(tensor.F32, grad.Shape...)
	for i, g := range grad.F32s {
		dx.F32s[i] = g * (1 - t.y[i]*t.y[i])
	}
	return dx
}

// MaxPool2D is 2x2 (or KxK) max pooling with stride K over [N, C, H, W].
type MaxPool2D struct {
	K    int
	arg  []int
	inSh tensor.Shape
}

// NewMaxPool2D returns a KxK/stride-K max-pool layer. It panics if k <= 0
// (programmer invariant).
func NewMaxPool2D(k int) *MaxPool2D {
	if k <= 0 {
		panic("nn: bad MaxPool2D k")
	}
	return &MaxPool2D{K: k}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return "maxpool2d" }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 4, "MaxPool2D")
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	ho, wo := h/m.K, w/m.K
	out := tensor.New(tensor.F32, n, c, ho, wo)
	m.inSh = x.Shape.Clone()
	if cap(m.arg) < out.Elems() {
		m.arg = make([]int, out.Elems())
	}
	m.arg = m.arg[:out.Elems()]
	parallelFor(n*c, func(job int) {
		base := job * h * w
		oBase := job * ho * wo
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				best := float32(math.Inf(-1))
				bestIdx := -1
				for ky := 0; ky < m.K; ky++ {
					for kx := 0; kx < m.K; kx++ {
						idx := base + (oy*m.K+ky)*w + ox*m.K + kx
						if v := x.F32s[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				o := oBase + oy*wo + ox
				out.F32s[o] = best
				m.arg[o] = bestIdx
			}
		}
	})
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(tensor.F32, m.inSh...)
	for o, g := range grad.F32s {
		dx.F32s[m.arg[o]] += g
	}
	return dx
}

// MaxPool3D is KxKxK/stride-K max pooling over [N, C, D, H, W].
type MaxPool3D struct {
	K    int
	arg  []int
	inSh tensor.Shape
}

// NewMaxPool3D returns a KxKxK/stride-K max-pool layer. It panics if k <= 0
// (programmer invariant).
func NewMaxPool3D(k int) *MaxPool3D {
	if k <= 0 {
		panic("nn: bad MaxPool3D k")
	}
	return &MaxPool3D{K: k}
}

// Name implements Layer.
func (m *MaxPool3D) Name() string { return "maxpool3d" }

// Params implements Layer.
func (m *MaxPool3D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 5, "MaxPool3D")
	n, c, d, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	do, ho, wo := d/m.K, h/m.K, w/m.K
	out := tensor.New(tensor.F32, n, c, do, ho, wo)
	m.inSh = x.Shape.Clone()
	if cap(m.arg) < out.Elems() {
		m.arg = make([]int, out.Elems())
	}
	m.arg = m.arg[:out.Elems()]
	parallelFor(n*c, func(job int) {
		base := job * d * h * w
		oBase := job * do * ho * wo
		for oz := 0; oz < do; oz++ {
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for kz := 0; kz < m.K; kz++ {
						for ky := 0; ky < m.K; ky++ {
							for kx := 0; kx < m.K; kx++ {
								idx := base + ((oz*m.K+kz)*h+oy*m.K+ky)*w + ox*m.K + kx
								if v := x.F32s[idx]; v > best {
									best = v
									bestIdx = idx
								}
							}
						}
					}
					o := oBase + (oz*ho+oy)*wo + ox
					out.F32s[o] = best
					m.arg[o] = bestIdx
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (m *MaxPool3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(tensor.F32, m.inSh...)
	for o, g := range grad.F32s {
		dx.F32s[m.arg[o]] += g
	}
	return dx
}

// Upsample2D is nearest-neighbor x-K upsampling over [N, C, H, W], the
// decoder half of the segmentation model.
type Upsample2D struct {
	K    int
	inSh tensor.Shape
}

// NewUpsample2D returns an xK nearest-neighbor upsampler. It panics if
// k <= 0 (programmer invariant).
func NewUpsample2D(k int) *Upsample2D {
	if k <= 0 {
		panic("nn: bad Upsample2D k")
	}
	return &Upsample2D{K: k}
}

// Name implements Layer.
func (u *Upsample2D) Name() string { return "upsample2d" }

// Params implements Layer.
func (u *Upsample2D) Params() []*Param { return nil }

// Forward implements Layer.
func (u *Upsample2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkF32(x, 4, "Upsample2D")
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	u.inSh = x.Shape.Clone()
	out := tensor.New(tensor.F32, n, c, h*u.K, w*u.K)
	ho, wo := h*u.K, w*u.K
	parallelFor(n*c, func(job int) {
		base := job * h * w
		oBase := job * ho * wo
		for oy := 0; oy < ho; oy++ {
			iy := oy / u.K
			for ox := 0; ox < wo; ox++ {
				out.F32s[oBase+oy*wo+ox] = x.F32s[base+iy*w+ox/u.K]
			}
		}
	})
	return out
}

// Backward implements Layer.
func (u *Upsample2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := u.inSh[0], u.inSh[1], u.inSh[2], u.inSh[3]
	dx := tensor.New(tensor.F32, n, c, h, w)
	ho, wo := h*u.K, w*u.K
	parallelFor(n*c, func(job int) {
		base := job * h * w
		gBase := job * ho * wo
		for oy := 0; oy < ho; oy++ {
			iy := oy / u.K
			for ox := 0; ox < wo; ox++ {
				dx.F32s[base+iy*w+ox/u.K] += grad.F32s[gBase+oy*wo+ox]
			}
		}
	})
	return dx
}

// Flatten reshapes [N, ...] to [N, rest].
type Flatten struct {
	inSh tensor.Shape
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inSh = x.Shape.Clone()
	n := x.Shape[0]
	rest := x.Elems() / n
	return tensor.FromF32(x.F32s, n, rest)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.FromF32(grad.F32s, f.inSh...)
}
