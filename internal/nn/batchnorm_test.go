package nn

import (
	"math"
	"testing"

	"scipp/internal/xrand"
)

func TestBatchNormGradients(t *testing.T) {
	r := xrand.New(40)
	bn := NewBatchNorm2D("bn", 3)
	x := randTensor(r, 2, 3, 4, 5)
	checkLayerGradients(t, bn, x, 3e-2)
}

func TestBatchNormNormalizes(t *testing.T) {
	r := xrand.New(41)
	bn := NewBatchNorm2D("bn", 2)
	x := randTensor(r, 4, 2, 8, 8)
	// Shift and scale the input wildly.
	for i := range x.F32s {
		x.F32s[i] = x.F32s[i]*37 + 100
	}
	out := bn.Forward(x)
	// Per channel, output must be ~zero mean unit variance (gamma=1 beta=0).
	n, c, plane := 4, 2, 64
	for ci := 0; ci < c; ci++ {
		var sum, sumSq float64
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for p := 0; p < plane; p++ {
				v := float64(out.F32s[base+p])
				sum += v
				sumSq += v * v
			}
		}
		m := float64(n * plane)
		mean := sum / m
		variance := sumSq/m - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Errorf("channel %d mean %g", ci, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Errorf("channel %d variance %g", ci, variance)
		}
	}
}

func TestBatchNormRunningStats(t *testing.T) {
	r := xrand.New(42)
	bn := NewBatchNorm2D("bn", 1)
	// Feed batches with mean ~5, std ~2.
	for step := 0; step < 200; step++ {
		x := randTensor(r, 8, 1, 4, 4)
		for i := range x.F32s {
			x.F32s[i] = x.F32s[i]*2 + 5
		}
		bn.Forward(x)
	}
	if math.Abs(float64(bn.RunningMean[0])-5) > 0.3 {
		t.Errorf("running mean %g, want ~5", bn.RunningMean[0])
	}
	if math.Abs(float64(bn.RunningVar[0])-4) > 0.8 {
		t.Errorf("running var %g, want ~4", bn.RunningVar[0])
	}
	// Eval mode uses running stats: an input at the running mean maps near
	// beta (= 0).
	bn.Train = false
	x := randTensor(r, 1, 1, 2, 2)
	for i := range x.F32s {
		x.F32s[i] = 5
	}
	out := bn.Forward(x)
	if math.Abs(float64(out.F32s[0])) > 0.1 {
		t.Errorf("eval output at running mean = %g, want ~0", out.F32s[0])
	}
}

func TestBatchNormEvalBackward(t *testing.T) {
	r := xrand.New(43)
	bn := NewBatchNorm2D("bn", 2)
	// Prime running stats.
	bn.Forward(randTensor(r, 4, 2, 4, 4))
	bn.Train = false
	x := randTensor(r, 2, 2, 4, 4)
	checkLayerGradients(t, bn, x, 3e-2)
}

func TestBatchNormInTrainingLoop(t *testing.T) {
	// A conv+BN+ReLU stack must train stably on wildly scaled inputs.
	r := xrand.New(44)
	model := NewSequential(
		NewConv2D("c1", 1, 4, 3, 1, 1),
		NewBatchNorm2D("bn1", 4),
		NewReLU(),
		NewFlatten(),
		NewDense("d1", 4*8*8, 2),
	)
	model.InitHe(45)
	x := randTensor(r, 4, 1, 8, 8)
	for i := range x.F32s {
		x.F32s[i] *= 500 // would destabilize an un-normalized net at this LR
	}
	target := randTensor(r, 4, 2)
	opt := NewAdam(0.01)
	var first, last float64
	for i := 0; i < 50; i++ {
		model.ZeroGrad()
		out := model.Forward(x)
		loss, grad := MSELoss(out, target)
		if i == 0 {
			first = loss
		}
		last = loss
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if last > first/2 {
		t.Errorf("BN training did not reduce loss: %g -> %g", first, last)
	}
}

func TestBatchNormValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero channels accepted")
		}
	}()
	NewBatchNorm2D("bn", 0)
}
