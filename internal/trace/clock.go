// Clock abstraction: everything in the repository that timestamps real
// work does so through a Clock, so library code never reads the wall clock
// directly (the determinism analyzer enforces this). Simulated paths use
// virtual clocks; the real-pipeline profiling paths use a WallClock, which
// is the single sanctioned wall-time source.
package trace

import (
	"sync"
	"time"
)

// Clock supplies a Timeline's notion of "now", in seconds from an arbitrary
// epoch. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
}

// wallClock reads real elapsed time, anchored at construction.
type wallClock struct {
	t0 time.Time
}

// NewWallClock returns a Clock measuring real elapsed seconds since the
// call. It is the one place library code may touch the wall clock: profiling
// a real pipeline run (cmd/realbench, pipeline.Config.Trace) is inherently a
// wall-time measurement.
func NewWallClock() Clock {
	//lint:ignore determinism the sanctioned wall-time source for real-pipeline profiling
	return wallClock{t0: time.Now()}
}

// Now implements Clock.
func (w wallClock) Now() float64 {
	//lint:ignore determinism the sanctioned wall-time source for real-pipeline profiling
	return time.Since(w.t0).Seconds()
}

// Sleeper is implemented by clocks through which time can be made to pass.
// Code that must wait (retry backoff in the loader's resilience policy) does
// so through the clock it was handed rather than time.Sleep, so simulated
// runs wait in virtual time and tests never block on the wall clock.
type Sleeper interface {
	// Sleep passes d seconds of the clock's time.
	Sleep(d float64)
}

// Sleep implements Sleeper by really sleeping: wall-clock runs pay their
// backoff delays in wall time.
func (w wallClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	//lint:ignore determinism the sanctioned wall-time source for real-pipeline profiling
	time.Sleep(time.Duration(d * float64(time.Second)))
}

// Alarm is implemented by clocks that can signal the arrival of a point in
// time. The distributed communicator's collective deadlines run on it, so
// failure detection works identically on wall clocks (real timers) and
// virtual clocks (waiters fired by Advance).
type Alarm interface {
	// After returns a channel that is closed once the clock reaches time t
	// (seconds on the clock's own epoch), plus a cancel function releasing
	// the waiter early. If t has already passed, the channel is returned
	// closed. Cancel is idempotent and safe after firing.
	After(t float64) (<-chan struct{}, func())
}

// After implements Alarm with a real timer.
func (w wallClock) After(t float64) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	d := t - w.Now()
	if d <= 0 {
		close(ch)
		return ch, func() {}
	}
	var once sync.Once
	fire := func() { once.Do(func() { close(ch) }) }
	//lint:ignore determinism the sanctioned wall-time source for real-pipeline profiling
	timer := time.AfterFunc(time.Duration(d*float64(time.Second)), fire)
	return ch, func() { timer.Stop() }
}

// VirtualClock is a manually advanced Clock for simulations and tests: time
// moves only when Advance is called, so traces are reproducible bit-for-bit.
type VirtualClock struct {
	mu      sync.Mutex
	t       float64
	waiters []*virtualWaiter
}

type virtualWaiter struct {
	at   float64
	ch   chan struct{}
	done bool
}

// Now implements Clock.
func (c *VirtualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d seconds; negative d is ignored.
// Alarm waiters whose deadline is reached fire before Advance returns.
func (c *VirtualClock) Advance(d float64) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.t += d
	c.fireLocked()
	c.mu.Unlock()
}

// Sleep implements Sleeper by advancing the clock: virtual waits are free.
func (c *VirtualClock) Sleep(d float64) { c.Advance(d) }

// Set jumps the clock to t seconds if that is forward motion.
func (c *VirtualClock) Set(t float64) {
	c.mu.Lock()
	if t > c.t {
		c.t = t
		c.fireLocked()
	}
	c.mu.Unlock()
}

// After implements Alarm: the channel closes when Advance or Set carries the
// clock past t. Virtual deadlines therefore fire deterministically, exactly
// when simulated time is made to pass.
func (c *VirtualClock) After(t float64) (<-chan struct{}, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &virtualWaiter{at: t, ch: make(chan struct{})}
	if t <= c.t {
		w.done = true
		close(w.ch)
		return w.ch, func() {}
	}
	c.waiters = append(c.waiters, w)
	cancel := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if !w.done {
			w.done = true // leave the channel open: canceled, not fired
			c.removeLocked(w)
		}
	}
	return w.ch, cancel
}

// fireLocked closes every waiter whose deadline the clock has reached.
func (c *VirtualClock) fireLocked() {
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.done && w.at <= c.t {
			w.done = true
			close(w.ch)
			continue
		}
		kept = append(kept, w)
	}
	c.waiters = kept
}

func (c *VirtualClock) removeLocked(w *virtualWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}
