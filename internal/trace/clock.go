// Clock abstraction: everything in the repository that timestamps real
// work does so through a Clock, so library code never reads the wall clock
// directly (the determinism analyzer enforces this). Simulated paths use
// virtual clocks; the real-pipeline profiling paths use a WallClock, which
// is the single sanctioned wall-time source.
package trace

import (
	"sync"
	"time"
)

// Clock supplies a Timeline's notion of "now", in seconds from an arbitrary
// epoch. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
}

// wallClock reads real elapsed time, anchored at construction.
type wallClock struct {
	t0 time.Time
}

// NewWallClock returns a Clock measuring real elapsed seconds since the
// call. It is the one place library code may touch the wall clock: profiling
// a real pipeline run (cmd/realbench, pipeline.Config.Trace) is inherently a
// wall-time measurement.
func NewWallClock() Clock {
	//lint:ignore determinism the sanctioned wall-time source for real-pipeline profiling
	return wallClock{t0: time.Now()}
}

// Now implements Clock.
func (w wallClock) Now() float64 {
	//lint:ignore determinism the sanctioned wall-time source for real-pipeline profiling
	return time.Since(w.t0).Seconds()
}

// Sleeper is implemented by clocks through which time can be made to pass.
// Code that must wait (retry backoff in the loader's resilience policy) does
// so through the clock it was handed rather than time.Sleep, so simulated
// runs wait in virtual time and tests never block on the wall clock.
type Sleeper interface {
	// Sleep passes d seconds of the clock's time.
	Sleep(d float64)
}

// Sleep implements Sleeper by really sleeping: wall-clock runs pay their
// backoff delays in wall time.
func (w wallClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	//lint:ignore determinism the sanctioned wall-time source for real-pipeline profiling
	time.Sleep(time.Duration(d * float64(time.Second)))
}

// VirtualClock is a manually advanced Clock for simulations and tests: time
// moves only when Advance is called, so traces are reproducible bit-for-bit.
type VirtualClock struct {
	mu sync.Mutex
	t  float64
}

// Now implements Clock.
func (c *VirtualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d seconds; negative d is ignored.
func (c *VirtualClock) Advance(d float64) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.t += d
	c.mu.Unlock()
}

// Sleep implements Sleeper by advancing the clock: virtual waits are free.
func (c *VirtualClock) Sleep(d float64) { c.Advance(d) }

// Set jumps the clock to t seconds if that is forward motion.
func (c *VirtualClock) Set(t float64) {
	c.mu.Lock()
	if t > c.t {
		c.t = t
	}
	c.mu.Unlock()
}
