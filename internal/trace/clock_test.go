package trace

import (
	"testing"
	"time"
)

func fired(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func TestVirtualAlarmFiresOnAdvance(t *testing.T) {
	c := &VirtualClock{}
	ch, cancel := c.After(5)
	defer cancel()
	if fired(ch) {
		t.Fatal("alarm fired before its time")
	}
	c.Advance(4.9)
	if fired(ch) {
		t.Fatal("alarm fired early")
	}
	c.Advance(0.1)
	if !fired(ch) {
		t.Fatal("alarm did not fire at its deadline")
	}
}

func TestVirtualAlarmFiresOnSet(t *testing.T) {
	c := &VirtualClock{}
	ch, cancel := c.After(2)
	defer cancel()
	c.Set(10)
	if !fired(ch) {
		t.Fatal("Set past the deadline must fire the alarm")
	}
}

func TestVirtualAlarmPastDeadlineImmediate(t *testing.T) {
	c := &VirtualClock{}
	c.Advance(3)
	ch, cancel := c.After(2)
	defer cancel()
	if !fired(ch) {
		t.Fatal("alarm for a past time must return fired")
	}
}

func TestVirtualAlarmCancel(t *testing.T) {
	c := &VirtualClock{}
	ch, cancel := c.After(1)
	cancel()
	cancel() // idempotent
	c.Advance(2)
	if fired(ch) {
		t.Fatal("canceled alarm fired")
	}
	// A canceled waiter must not linger in the waiter list.
	c.mu.Lock()
	n := len(c.waiters)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d waiters left after cancel", n)
	}
}

func TestVirtualAlarmMultipleWaiters(t *testing.T) {
	c := &VirtualClock{}
	early, cancelE := c.After(1)
	late, cancelL := c.After(3)
	defer cancelE()
	defer cancelL()
	c.Advance(2)
	if !fired(early) || fired(late) {
		t.Fatal("only the earlier waiter should have fired")
	}
	c.Advance(2)
	if !fired(late) {
		t.Fatal("later waiter must fire once reached")
	}
}

func TestVirtualSleepFiresAlarms(t *testing.T) {
	c := &VirtualClock{}
	ch, cancel := c.After(0.5)
	defer cancel()
	c.Sleep(1)
	if !fired(ch) {
		t.Fatal("Sleep advances the clock and must fire alarms")
	}
}

func TestWallAlarm(t *testing.T) {
	c := NewWallClock()
	a, ok := c.(Alarm)
	if !ok {
		t.Fatal("wall clock must implement Alarm")
	}
	ch, cancel := a.After(c.Now() - 1)
	cancel()
	if !fired(ch) {
		t.Fatal("past-deadline wall alarm must be pre-fired")
	}
	ch2, cancel2 := a.After(c.Now() + 0.005)
	defer cancel2()
	select {
	case <-ch2:
	case <-time.After(2 * time.Second):
		t.Fatal("wall alarm did not fire")
	}
	// Cancel before the deadline: the channel must stay open.
	ch3, cancel3 := a.After(c.Now() + 3600)
	cancel3()
	if fired(ch3) {
		t.Fatal("canceled wall alarm fired")
	}
}
