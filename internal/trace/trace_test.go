package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestAddAndBreakdown(t *testing.T) {
	var tl Timeline
	tl.Add("cpu", "read", 0, 1)
	tl.Add("cpu", "read", 2, 2.5)
	tl.Add("gpu0", "compute", 1, 4)
	b := tl.Breakdown()
	if math.Abs(b["read"]-1.5) > 1e-12 {
		t.Errorf("read = %g", b["read"])
	}
	if math.Abs(b["compute"]-3) > 1e-12 {
		t.Errorf("compute = %g", b["compute"])
	}
	if tl.Len() != 3 {
		t.Errorf("Len = %d", tl.Len())
	}
}

func TestZeroLengthDropped(t *testing.T) {
	var tl Timeline
	tl.Add("cpu", "noop", 1, 1)
	tl.Add("cpu", "bad", 2, 1)
	if tl.Len() != 0 {
		t.Error("degenerate events not dropped")
	}
}

func TestSpan(t *testing.T) {
	var tl Timeline
	if tl.Span() != 0 {
		t.Error("empty span")
	}
	tl.Add("a", "x", 1, 2)
	tl.Add("b", "y", 0.5, 3.5)
	if got := tl.Span(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Span = %g, want 3", got)
	}
}

func TestResourceBreakdown(t *testing.T) {
	var tl Timeline
	tl.Add("cpu", "read", 0, 1)
	tl.Add("gpu0", "read", 0, 2)
	rb := tl.ResourceBreakdown()
	if rb["cpu"]["read"] != 1 || rb["gpu0"]["read"] != 2 {
		t.Errorf("resource breakdown: %+v", rb)
	}
}

func TestBusyMergesOverlaps(t *testing.T) {
	var tl Timeline
	tl.Add("gpu", "a", 0, 2)
	tl.Add("gpu", "b", 1, 3) // overlaps
	tl.Add("gpu", "c", 5, 6) // disjoint
	tl.Add("cpu", "d", 0, 100)
	if got := tl.Busy("gpu"); math.Abs(got-4) > 1e-12 {
		t.Errorf("Busy = %g, want 4 (union of [0,3] and [5,6])", got)
	}
	if got := tl.Busy("none"); got != 0 {
		t.Errorf("Busy on unknown resource = %g", got)
	}
}

func TestEventsSorted(t *testing.T) {
	var tl Timeline
	tl.Add("r", "b", 5, 6)
	tl.Add("r", "a", 1, 2)
	ev := tl.Events()
	if len(ev) != 2 || ev[0].Tag != "a" {
		t.Errorf("events not sorted: %+v", ev)
	}
	if ev[0].Duration() != 1 {
		t.Errorf("Duration = %g", ev[0].Duration())
	}
}

func TestConcurrentAdd(t *testing.T) {
	var tl Timeline
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tl.Add("cpu", "work", float64(j), float64(j)+0.5)
			}
		}(i)
	}
	wg.Wait()
	if tl.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", tl.Len())
	}
}

func TestReset(t *testing.T) {
	var tl Timeline
	tl.Add("r", "x", 0, 1)
	tl.Reset()
	if tl.Len() != 0 || tl.Span() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestFormatBreakdown(t *testing.T) {
	s := FormatBreakdown(map[string]float64{"read": 0.010, "compute": 0.030})
	if !strings.Contains(s, "compute") || !strings.Contains(s, "read") {
		t.Errorf("missing tags: %q", s)
	}
	// compute (larger) must come first.
	if strings.Index(s, "compute") > strings.Index(s, "read") {
		t.Error("rows not sorted by share")
	}
	if !strings.Contains(s, "75.0%") {
		t.Errorf("percent formatting wrong: %q", s)
	}
	if FormatBreakdown(nil) != "" {
		t.Error("empty breakdown should be empty string")
	}
}
