// Package trace records activities on a virtual-time axis, powering the
// execution-profile breakdowns of Figs 9 and 12 ("we present key grouped
// activities for two timelines during the execution, the host CPU timeline
// and the accelerator GPU timeline").
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event is one activity on one resource, in virtual seconds.
type Event struct {
	Resource string // e.g. "cpu", "gpu0", "link"
	Tag      string // activity group, e.g. "read", "h2d", "decode"
	Start    float64
	End      float64
}

// Duration returns the event length.
func (e Event) Duration() float64 { return e.End - e.Start }

// Timeline collects events; safe for concurrent Add.
type Timeline struct {
	mu     sync.Mutex
	events []Event
}

// Add records an activity. Zero- or negative-length events are dropped.
func (t *Timeline) Add(resource, tag string, start, end float64) {
	if end <= start {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Resource: resource, Tag: tag, Start: start, End: end})
	t.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded events.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Span returns the distance from the earliest start to the latest end.
func (t *Timeline) Span() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return 0
	}
	lo, hi := t.events[0].Start, t.events[0].End
	for _, e := range t.events[1:] {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return hi - lo
}

// Breakdown sums durations per tag across all resources.
func (t *Timeline) Breakdown() map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64)
	for _, e := range t.events {
		out[e.Tag] += e.Duration()
	}
	return out
}

// ResourceBreakdown sums durations per resource, per tag.
func (t *Timeline) ResourceBreakdown() map[string]map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]map[string]float64)
	for _, e := range t.events {
		m := out[e.Resource]
		if m == nil {
			m = make(map[string]float64)
			out[e.Resource] = m
		}
		m[e.Tag] += e.Duration()
	}
	return out
}

// Busy returns the total busy time (union of intervals) on one resource.
// Overlapping events are counted once.
func (t *Timeline) Busy(resource string) float64 {
	t.mu.Lock()
	var iv []Event
	for _, e := range t.events {
		if e.Resource == resource {
			iv = append(iv, e)
		}
	}
	t.mu.Unlock()
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	total := 0.0
	curS, curE := iv[0].Start, iv[0].End
	for _, e := range iv[1:] {
		if e.Start > curE {
			total += curE - curS
			curS, curE = e.Start, e.End
			continue
		}
		if e.End > curE {
			curE = e.End
		}
	}
	return total + (curE - curS)
}

// Reset discards all events.
func (t *Timeline) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// FormatBreakdown renders a per-tag breakdown as aligned text rows sorted by
// descending share, for the cmd/breakdown output.
func FormatBreakdown(b map[string]float64) string {
	type row struct {
		tag string
		d   float64
	}
	rows := make([]row, 0, len(b))
	total := 0.0
	for tag, d := range b {
		rows = append(rows, row{tag, d})
		total += d
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].d != rows[j].d {
			return rows[i].d > rows[j].d
		}
		return rows[i].tag < rows[j].tag
	})
	var sb strings.Builder
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * r.d / total
		}
		fmt.Fprintf(&sb, "  %-16s %10.3f ms  %5.1f%%\n", r.tag, r.d*1e3, pct)
	}
	return sb.String()
}
