// Package bench is the experiment harness: it calibrates per-sample
// workload models from the real codecs on real synthetic data, runs the
// node-pipeline performance model over the Table I platforms, and formats
// the rows/series of every table and figure in the paper's evaluation
// (Tables I-II, Figs 5-12).
//
// Absolute times are modeled (the substrate is a simulator, §DESIGN); the
// calibration constants are chosen once, globally, to reproduce the paper's
// *relationships*: who wins, by what factor, and where the crossovers fall.
package bench

import (
	"fmt"
	"sync"

	"scipp/internal/codec"
	"scipp/internal/codec/deltafp"
	"scipp/internal/codec/gzipc"
	"scipp/internal/codec/lut"
	"scipp/internal/core"
	"scipp/internal/synthetic"
)

// AppModel holds the calibrated per-sample workload of one application at
// paper scale. Sizes are measured by running the real encoders on real
// synthetic samples (at a reduced spatial scale, then extrapolated
// linearly in voxel/pixel count); compute constants are the model.
type AppModel struct {
	App core.App

	// Per-sample sizes in bytes at paper scale.
	RawF32Bytes  int // FP32 tensor the baseline materializes and ships H2D
	StoredBytes  int // baseline on-disk encoded size (HDF5-ish / int16 record)
	GzipBytes    int // gzip-compressed stored size
	PluginBytes  int // domain-encoded size
	DecodedBytes int // FP16 plugin decode output

	// DecodeWorkload is the plugin decode cost profile scaled to paper size.
	DecodeWorkload codec.Workload

	// PreprocOps counts per-value preprocessing operations the baseline CPU
	// path performs (the per-voxel log for CosmoFlow; ~0 for DeepCAM).
	PreprocOps int

	// ComputeFLOPs is the fwd+bwd cost per sample under mixed precision.
	ComputeFLOPs float64
	// StepOverheadSec is the per-optimizer-step framework overhead,
	// amortized over the batch.
	StepOverheadSec float64
	// GradBytes is the FP16 gradient volume allreduced per step.
	GradBytes int
}

// Paper-scale dimensions.
const (
	deepcamC, deepcamH, deepcamW = 16, 768, 1152
	cosmoDim                     = 128
)

// Model compute constants (see DESIGN.md §1: calibration constants).
const (
	// deepcamFLOPs places the V100 DeepCAM step at ~8 ms/sample under the
	// mixed-precision efficiencies below, so the Cori baselines are
	// IO/CPU-bound — the regime §IX-A measures (the baseline does not
	// improve from V100 to A100).
	deepcamFLOPs   = 2.7e11
	cosmoFLOPs     = 4.0e11
	deepcamOvhSec  = 6e-3
	cosmoOvhSec    = 3e-3
	deepcamGradMB  = 120 // DeepLabv3+-class model, FP16 gradients
	cosmoGradMB    = 16
	logOpsPerValue = 1 // one transcendental per voxel in the baseline
)

var (
	calMu    sync.Mutex
	calCache = map[string]AppModel{}
)

// Calibrate measures an AppModel by generating one representative sample at
// `scale` of the paper dimensions (scale 1 = full size; tests use ~0.25),
// running the real encoders over it, and extrapolating sizes linearly to
// paper scale. Results are cached per (app, scale).
func Calibrate(app core.App, scale float64) (AppModel, error) {
	if scale <= 0 || scale > 1 {
		return AppModel{}, fmt.Errorf("bench: scale %g out of (0,1]", scale)
	}
	key := fmt.Sprintf("%v-%g", app, scale)
	calMu.Lock()
	defer calMu.Unlock()
	if m, ok := calCache[key]; ok {
		return m, nil
	}
	var m AppModel
	var err error
	if app == core.CosmoFlow {
		m, err = calibrateCosmo(scale)
	} else {
		m, err = calibrateDeepCAM(scale)
	}
	if err != nil {
		return AppModel{}, err
	}
	calCache[key] = m
	return m, nil
}

func calibrateDeepCAM(scale float64) (AppModel, error) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Height = snap4(float64(deepcamH) * scale)
	cfg.Width = snap4(float64(deepcamW) * scale)
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		return AppModel{}, err
	}
	blob, err := deltafp.Encode(s.Data, deltafp.Options{})
	if err != nil {
		return AppModel{}, err
	}
	cd, err := deltafp.Format().Open(blob)
	if err != nil {
		return AppModel{}, err
	}
	h5, err := core.BuildClimateDataset(cfg, 1, core.Baseline)
	if err != nil {
		return AppModel{}, err
	}
	gz, err := gzipc.Encode(h5.Blobs[0], 1) // fast level: parity with TFRecordOptions defaults
	if err != nil {
		return AppModel{}, err
	}

	nScaled := cfg.Channels * cfg.Height * cfg.Width
	nFull := deepcamC * deepcamH * deepcamW
	f := float64(nFull) / float64(nScaled)
	wl := cd.Workload()
	m := AppModel{
		App:          core.DeepCAM,
		RawF32Bytes:  4 * nFull,
		StoredBytes:  scaleInt(len(h5.Blobs[0]), f),
		GzipBytes:    scaleInt(len(gz), f),
		PluginBytes:  scaleInt(len(blob), f),
		DecodedBytes: 2 * nFull,
		DecodeWorkload: codec.Workload{
			BytesIn:   scaleInt(wl.BytesIn, f),
			BytesOut:  2 * nFull,
			Ops:       scaleInt(wl.Ops, f),
			Chunks:    scaleInt(wl.Chunks, f),
			Divergent: scaleInt(wl.Divergent, f),
		},
		PreprocOps:      0,
		ComputeFLOPs:    deepcamFLOPs,
		StepOverheadSec: deepcamOvhSec,
		GradBytes:       deepcamGradMB << 20,
	}
	return m, nil
}

func calibrateCosmo(scale float64) (AppModel, error) {
	cfg := synthetic.DefaultCosmoConfig()
	cfg.Dim = snap8(float64(cosmoDim) * scale)
	s, err := synthetic.GenerateCosmo(cfg, 0)
	if err != nil {
		return AppModel{}, err
	}
	rec := synthetic.CosmoToRecord(s)
	blob, err := lut.Encode(s.Channels, s.Dim)
	if err != nil {
		return AppModel{}, err
	}
	cd, err := lut.Format().Open(blob)
	if err != nil {
		return AppModel{}, err
	}
	gz, err := gzipc.Encode(rec, 1)
	if err != nil {
		return AppModel{}, err
	}

	nScaled := 4 * cfg.Dim * cfg.Dim * cfg.Dim
	nFull := 4 * cosmoDim * cosmoDim * cosmoDim
	f := float64(nFull) / float64(nScaled)
	wl := cd.Workload()
	// LUT blobs split into per-voxel keys (scale linearly with volume) and
	// group tables (grow sublinearly — the paper-scale group count stays in
	// the tens of thousands regardless of volume, Fig 5c). Extrapolating
	// the whole blob linearly would overstate the table share, so split.
	st, err := lut.BlobStats(blob)
	if err != nil {
		return AppModel{}, err
	}
	tableBytes := st.Groups * 8
	keyBytes := len(blob) - tableBytes
	pluginFull := scaleInt(keyBytes, f) + tableBytes
	m := AppModel{
		App:          core.CosmoFlow,
		RawF32Bytes:  4 * nFull,
		StoredBytes:  scaleInt(len(rec), f),
		GzipBytes:    scaleInt(len(gz), f),
		PluginBytes:  pluginFull,
		DecodedBytes: 2 * nFull,
		DecodeWorkload: codec.Workload{
			BytesIn:   scaleInt(wl.BytesIn, f),
			BytesOut:  2 * nFull,
			Ops:       scaleInt(wl.Ops, f),
			Chunks:    scaleInt(wl.Chunks, f),
			Divergent: 0,
		},
		PreprocOps:      logOpsPerValue * nFull,
		ComputeFLOPs:    cosmoFLOPs,
		StepOverheadSec: cosmoOvhSec,
		GradBytes:       cosmoGradMB << 20,
	}
	return m, nil
}

func scaleInt(v int, f float64) int { return int(float64(v) * f) }

func snap4(v float64) int {
	n := int(v+3) / 4 * 4
	if n < 4 {
		n = 4
	}
	return n
}

func snap8(v float64) int {
	n := int(v+7) / 8 * 8
	if n < 8 {
		n = 8
	}
	return n
}

// BytesFor returns the on-disk sample size under an encoding.
func (m AppModel) BytesFor(enc core.Encoding) int {
	switch enc {
	case core.Gzip:
		return m.GzipBytes
	case core.Plugin:
		return m.PluginBytes
	default:
		return m.StoredBytes
	}
}
