package bench

import (
	"math"
	"testing"

	"scipp/internal/obs"
)

func replayRows() []BreakdownRow {
	return []BreakdownRow{
		{
			Platform: "Summit", Variant: "base",
			Stages: StageTimes{Read: 0.010, CPU: 0.020, H2D: 0.003, GPUCompute: 0.005, AllReduce: 0.001},
			Node:   120,
		},
		{
			Platform: "Summit", Variant: "gpu-plugin",
			Stages: StageTimes{Read: 0.002, H2D: 0.001, GPUDecode: 0.004, GPUCompute: 0.005, AllReduce: 0.001},
			Node:   480,
		},
	}
}

// TestReplayBreakdown checks the replayed spans land under the documented
// names with exact durations, and that the virtual clock ends at the total
// stage time.
func TestReplayBreakdown(t *testing.T) {
	rows := replayRows()
	reg := obs.NewRegistry()
	clock := ReplayBreakdown(reg, rows)

	total := 0.0
	for _, r := range rows {
		for _, v := range stageSeconds(r.Stages) {
			total += v
		}
	}
	// Span durations are clock subtractions, so allow float rounding.
	const eps = 1e-12
	if got := clock.Now(); math.Abs(got-total) > eps {
		t.Fatalf("clock = %v, want %v", got, total)
	}

	s := reg.Snapshot()
	hv, ok := s.Histogram("breakdown.Summit.base.cpu.seconds")
	if !ok || hv.Count != 1 || math.Abs(hv.Sum-0.020) > eps {
		t.Fatalf("base cpu span = %+v, want count 1 sum 0.020", hv)
	}
	if v := s.Counter("breakdown.Summit.gpu-plugin.gpu_decode.spans"); v != 1 {
		t.Fatalf("gpu_decode spans = %d, want 1", v)
	}
	if gv := s.Gauge("breakdown.Summit.gpu-plugin.node_rate"); gv.Value != 480 {
		t.Fatalf("node_rate = %v, want 480", gv.Value)
	}
}

// TestRenderBreakdownMatchesFormat pins the metrics-backed renderer to the
// original direct formatter: the table is a view over the registry, and the
// two paths must agree byte for byte.
func TestRenderBreakdownMatchesFormat(t *testing.T) {
	rows := replayRows()
	reg := obs.NewRegistry()
	ReplayBreakdown(reg, rows)

	want := FormatBreakdown("TITLE", rows)
	got := RenderBreakdown("TITLE", rows, reg.Snapshot())
	if got != want {
		t.Fatalf("render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}
