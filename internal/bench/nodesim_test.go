package bench

import (
	"testing"

	"scipp/internal/core"
	"scipp/internal/pipeline"
	"scipp/internal/platform"
	"scipp/internal/trace"
)

func nodeScenario(t *testing.T, app core.App, enc core.Encoding, plug pipeline.Plugin, p platform.Platform) Scenario {
	t.Helper()
	m := mustModel(t, app)
	samples := DeepCAMSmallPerNode
	if app == core.CosmoFlow {
		samples = CosmoSmallPerGPU * p.GPUsPerNode
	}
	return Scenario{
		Platform: p, Model: m, Enc: enc, Plugin: plug,
		SamplesPerNode: samples, Staged: true, Batch: 4, Epoch: 1,
	}
}

func TestNodeSimAgreesWithClosedForm(t *testing.T) {
	// The DES models the same pipeline with explicit queueing; its steady
	// throughput must land within ~40% of the closed-form bound (the DES is
	// strictly more pessimistic: barriers and queueing waves cost extra).
	for _, tc := range []struct {
		app  core.App
		enc  core.Encoding
		plug pipeline.Plugin
	}{
		{core.DeepCAM, core.Baseline, pipeline.CPUPlugin},
		{core.DeepCAM, core.Plugin, pipeline.GPUPlugin},
		{core.CosmoFlow, core.Baseline, pipeline.CPUPlugin},
		{core.CosmoFlow, core.Plugin, pipeline.GPUPlugin},
	} {
		sc := nodeScenario(t, tc.app, tc.enc, tc.plug, platform.CoriV100())
		closed, err := Simulate(sc)
		if err != nil {
			t.Fatal(err)
		}
		des, err := SimulateNode(sc, 30, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratio := des.Node / closed.Node
		if ratio > 1.15 || ratio < 0.5 {
			t.Errorf("%v/%v/%v: DES %.0f vs closed %.0f (ratio %.2f)",
				tc.app, tc.enc, tc.plug, des.Node, closed.Node, ratio)
		}
	}
}

func TestNodeSimPluginStillWins(t *testing.T) {
	// The headline ordering must survive the queueing model.
	p := platform.CoriA100()
	base, err := SimulateNode(nodeScenario(t, core.DeepCAM, core.Baseline, pipeline.CPUPlugin, p), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	plug, err := SimulateNode(nodeScenario(t, core.DeepCAM, core.Plugin, pipeline.GPUPlugin, p), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plug.Node <= base.Node {
		t.Errorf("plugin (%.0f) should beat base (%.0f) in the DES too", plug.Node, base.Node)
	}
}

func TestNodeSimBusyFractions(t *testing.T) {
	sc := nodeScenario(t, core.CosmoFlow, core.Baseline, pipeline.CPUPlugin, platform.CoriV100())
	res, err := SimulateNode(sc, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// CosmoFlow baseline is CPU-bound: per-GPU CPU busy fraction near 1.
	cpuBusy := res.Busy["cpu0"]
	if cpuBusy < 0.7 || cpuBusy > 1.01 {
		t.Errorf("cpu0 busy fraction %.2f, want near 1 for the CPU-bound baseline", cpuBusy)
	}
	// The GPU should be mostly idle in the baseline (Fig 12's point: "the
	// base version underutilizes the GPU").
	if gpuBusy := res.Busy["gpu0"]; gpuBusy > 0.6 {
		t.Errorf("gpu0 busy fraction %.2f, baseline should underutilize the GPU", gpuBusy)
	}
}

func TestNodeSimPluginRaisesGPUUtilization(t *testing.T) {
	p := platform.CoriV100()
	base, err := SimulateNode(nodeScenario(t, core.CosmoFlow, core.Baseline, pipeline.CPUPlugin, p), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	plug, err := SimulateNode(nodeScenario(t, core.CosmoFlow, core.Plugin, pipeline.GPUPlugin, p), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plug.Busy["gpu0"] <= base.Busy["gpu0"] {
		t.Errorf("plugin GPU busy %.2f should exceed baseline %.2f (plugin reveals the raw GPU)",
			plug.Busy["gpu0"], base.Busy["gpu0"])
	}
}

func TestNodeSimTimeline(t *testing.T) {
	sc := nodeScenario(t, core.CosmoFlow, core.Plugin, pipeline.GPUPlugin, platform.Summit())
	tl := &trace.Timeline{}
	res, err := SimulateNode(sc, 3, tl)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSec <= 0 {
		t.Error("non-positive total")
	}
	b := tl.Breakdown()
	for _, tag := range []string{"read", "cpu", "h2d", "gpu", "allreduce"} {
		if b[tag] <= 0 {
			t.Errorf("missing %q events: %v", tag, b)
		}
	}
	// 3 steps x batch 4 x 6 GPUs samples, 4 stages each, plus 3x6 allreduce.
	want := 3*4*6*4 + 3*6
	if tl.Len() != want {
		t.Errorf("timeline has %d events, want %d", tl.Len(), want)
	}
}

func TestNodeSimValidation(t *testing.T) {
	sc := nodeScenario(t, core.DeepCAM, core.Baseline, pipeline.CPUPlugin, platform.Summit())
	if _, err := SimulateNode(sc, 0, nil); err == nil {
		t.Error("zero steps accepted")
	}
	bad := sc
	bad.Batch = 0
	if _, err := SimulateNode(bad, 5, nil); err == nil {
		t.Error("invalid scenario accepted")
	}
}
