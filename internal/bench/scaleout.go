package bench

import (
	"fmt"
	"strings"

	"scipp/internal/dist"
)

// ScaleRow is one point of a weak-scaling projection: nodes, aggregate
// throughput, and parallel efficiency relative to one node.
type ScaleRow struct {
	Nodes      int
	Throughput float64 // samples/s aggregate
	Efficiency float64 // vs. perfect scaling of the 1-node rate
	Bound      string
}

// ScaleOut projects weak scaling of a scenario across multiple nodes: each
// node keeps the per-node dataset and batch, and the gradient allreduce
// becomes hierarchical — the intra-node ring (already in the scenario
// model) plus an inter-node ring over the nodes' InfiniBand injection
// bandwidth. The paper evaluates single nodes; this projection explores the
// "system architectures beyond those investigated" direction of §X.
func ScaleOut(sc Scenario, nodes []int) ([]ScaleRow, error) {
	base, err := Simulate(sc)
	if err != nil {
		return nil, err
	}
	var out []ScaleRow
	var oneNode float64
	for _, n := range nodes {
		if n <= 0 {
			return nil, fmt.Errorf("bench: invalid node count %d", n)
		}
		st := base.Stages
		// Inter-node ring among node leaders, amortized over the per-GPU
		// batch like the intra-node term. Per-step latency is higher across
		// the fabric.
		inter := dist.RingTime(sc.Model.GradBytes, n, sc.Platform.InjectionGBs, 100e-6)
		st.AllReduce += inter / float64(sc.Batch)
		name, bound := st.Bottleneck()
		perGPU := 1 / bound
		agg := perGPU * float64(sc.Platform.GPUsPerNode) * float64(n)
		if n == 1 || oneNode == 0 {
			if n == 1 {
				oneNode = agg
			}
		}
		eff := 1.0
		if oneNode > 0 {
			eff = agg / (oneNode * float64(n))
		}
		out = append(out, ScaleRow{Nodes: n, Throughput: agg, Efficiency: eff, Bound: name})
	}
	return out, nil
}

// FormatScaleOut renders a weak-scaling projection.
func FormatScaleOut(title string, rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%8s %16s %12s %8s\n", "nodes", "samples/s", "efficiency", "bound")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %16.0f %11.1f%% %8s\n", r.Nodes, r.Throughput, 100*r.Efficiency, r.Bound)
	}
	return b.String()
}
