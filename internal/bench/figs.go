package bench

import (
	"fmt"
	"sort"
	"strings"

	"scipp/internal/core"
	"scipp/internal/gpusim"
	"scipp/internal/pipeline"
	"scipp/internal/platform"
	"scipp/internal/stats"
	"scipp/internal/synthetic"
	"scipp/internal/train"
)

// Dataset assignments of §IX ("a smaller 1536 samples per node case ...
// the bigger data set is 8x larger"; CosmoFlow "two datasets sizes
// consisting of 128 and 2048 samples per GPU").
const (
	DeepCAMSmallPerNode = 1536
	DeepCAMLargePerNode = 12288
	CosmoSmallPerGPU    = 128
	CosmoLargePerGPU    = 2048
)

// TableI formats the system-architecture table.
func TableI() string {
	ps := platform.All()
	var b strings.Builder
	row := func(label string, f func(p platform.Platform) string) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, p := range ps {
			fmt.Fprintf(&b, " %14s", f(p))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "TABLE I: SYSTEM ARCHITECTURE FOR EVALUATED SYSTEMS\n")
	row("", func(p platform.Platform) string { return p.Name })
	row("Host Processor (CPU)", func(p platform.Platform) string { return p.CPU.Name })
	row("CPU Freq (GHz)", func(p platform.Platform) string { return fmt.Sprintf("%.2f", p.CPU.FreqGHz) })
	row("Host Memory (GB)", func(p platform.Platform) string { return fmt.Sprint(p.HostMemGB) })
	row("CPU-GPU Interconnect", func(p platform.Platform) string { return string(p.Link.Kind) })
	row("GPU", func(p platform.Platform) string { return p.GPU.Name })
	row("GPUs per node", func(p platform.Platform) string { return fmt.Sprint(p.GPUsPerNode) })
	row("L2 Cache (MB)", func(p platform.Platform) string { return fmt.Sprint(p.GPU.L2MB) })
	row("SM", func(p platform.Platform) string { return fmt.Sprint(p.GPU.SMs) })
	row("Mem Capacity (GB)", func(p platform.Platform) string { return fmt.Sprint(p.GPU.MemGB) })
	row("BW to GPU Mem (TB/s)", func(p platform.Platform) string { return fmt.Sprintf("%.1f", p.GPU.HBMTBs) })
	row("GPU FP32 TF/s", func(p platform.Platform) string { return fmt.Sprintf("%.1f", p.GPU.FP32TFs) })
	row("Tensorcore TF/s", func(p platform.Platform) string { return fmt.Sprintf("%.0f", p.GPU.TensorTFs) })
	row("NVMe Capacity (TB)", func(p platform.Platform) string { return fmt.Sprintf("%.1f", p.Storage.NVMeTB) })
	row("NVMe Read BW (GiB/s)", func(p platform.Platform) string { return fmt.Sprintf("%.1f", p.Storage.NVMeGBs) })
	return b.String()
}

// TableII formats the software-environment table analog.
func TableII() string {
	ps := platform.All()
	keys := []string{"framework.cosmoflow", "framework.deepcam", "python", "horovod", "cuda", "cudnn", "nccl", "dali", "gcc"}
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: SOFTWARE ENVIRONMENT (modeled stack metadata)\n")
	fmt.Fprintf(&b, "%-20s", "")
	for _, p := range ps {
		fmt.Fprintf(&b, " %12s", p.Name)
	}
	b.WriteByte('\n')
	for _, k := range keys {
		fmt.Fprintf(&b, "%-20s", k)
		for _, p := range ps {
			v := p.Software[k]
			if v == "" {
				v = "-"
			}
			fmt.Fprintf(&b, " %12s", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig5Row is the per-sample content analysis of one CosmoFlow sample.
type Fig5Row struct {
	Sample       int
	UniqueValues int     // Fig 5b
	UniqueGroups int     // Fig 5c
	Alpha        float64 // Fig 5a power-law exponent
	R2           float64 // goodness of the log-log fit
}

// Fig5Result aggregates the Fig 5 analysis.
type Fig5Result struct {
	Dim  int
	Rows []Fig5Row
}

// Fig5 analyzes nsamples synthetic CosmoFlow samples at the given dimension
// (paper: 128), reproducing the three panels of Fig 5.
func Fig5(dim, nsamples int) (*Fig5Result, error) {
	cfg := synthetic.DefaultCosmoConfig()
	cfg.Dim = dim
	res := &Fig5Result{Dim: dim}
	for i := 0; i < nsamples; i++ {
		s, err := synthetic.GenerateCosmo(cfg, i)
		if err != nil {
			return nil, err
		}
		all := make([]int16, 0, 4*len(s.Channels[0]))
		for c := range s.Channels {
			all = append(all, s.Channels[c]...)
		}
		freqs := stats.UniqueInt16Freq(all)
		fit := stats.FitPowerLaw(freqs)
		res.Rows = append(res.Rows, Fig5Row{
			Sample:       i,
			UniqueValues: len(freqs),
			UniqueGroups: stats.UniqueGroups(s.Channels),
			Alpha:        fit.Alpha,
			R2:           fit.R2,
		})
	}
	return res, nil
}

// String formats the Fig 5 analysis.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 5: CosmoFlow sample content analysis (dim=%d)\n", r.Dim)
	fmt.Fprintf(&b, "%8s %14s %14s %12s %8s\n", "sample", "unique-values", "unique-groups", "plaw-alpha", "R2")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14d %14d %12.2f %8.2f\n",
			row.Sample, row.UniqueValues, row.UniqueGroups, row.Alpha, row.R2)
	}
	return b.String()
}

// ThroughputRow is one bar group of Figs 8/10/11: node throughput per
// pipeline variant for one (platform, set, staging, batch) cell.
type ThroughputRow struct {
	Platform string
	Set      string // "small" / "large"
	Staged   bool
	Batch    int
	// Node throughput in samples/s per variant; zero when a variant does
	// not apply.
	Base, GzipVar, CPUPlugin, GPUPlugin float64
	Bound                               map[string]string // variant -> binding stage
}

func stagedName(s bool) string {
	if s {
		return "staged"
	}
	return "unstaged"
}

func simulateVariants(p platform.Platform, m AppModel, samplesPerNode int, staged bool, batch int, withGzip, withCPUPlugin bool) (ThroughputRow, error) {
	row := ThroughputRow{
		Platform: p.Name, Staged: staged, Batch: batch,
		Bound: make(map[string]string),
	}
	run := func(enc core.Encoding, plug pipeline.Plugin) (StepResult, error) {
		return Simulate(Scenario{
			Platform: p, Model: m, Enc: enc, Plugin: plug,
			SamplesPerNode: samplesPerNode, Staged: staged, Batch: batch, Epoch: 1,
		})
	}
	base, err := run(core.Baseline, pipeline.CPUPlugin)
	if err != nil {
		return row, err
	}
	row.Base = base.Node
	row.Bound["base"] = base.Bound
	if withGzip {
		gz, err := run(core.Gzip, pipeline.CPUPlugin)
		if err != nil {
			return row, err
		}
		row.GzipVar = gz.Node
		row.Bound["gzip"] = gz.Bound
	}
	if withCPUPlugin {
		cp, err := run(core.Plugin, pipeline.CPUPlugin)
		if err != nil {
			return row, err
		}
		row.CPUPlugin = cp.Node
		row.Bound["cpu-plugin"] = cp.Bound
	}
	gp, err := run(core.Plugin, pipeline.GPUPlugin)
	if err != nil {
		return row, err
	}
	row.GPUPlugin = gp.Node
	row.Bound["gpu-plugin"] = gp.Bound
	return row, nil
}

// Fig8 sweeps the DeepCAM throughput experiment: three platforms x
// {small, large} x {staged, unstaged} x batch {1, 2, 4, 8}, comparing the
// baseline with the CPU and GPU decoder plugins.
func Fig8(scale float64) ([]ThroughputRow, error) {
	m, err := Calibrate(core.DeepCAM, scale)
	if err != nil {
		return nil, err
	}
	var rows []ThroughputRow
	for _, p := range platform.All() {
		for _, set := range []struct {
			name    string
			samples int
		}{{"small", DeepCAMSmallPerNode}, {"large", DeepCAMLargePerNode}} {
			for _, staged := range []bool{true, false} {
				for _, batch := range []int{1, 2, 4, 8} {
					row, err := simulateVariants(p, m, set.samples, staged, batch, false, true)
					if err != nil {
						return nil, err
					}
					row.Set = set.name
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// Fig10 sweeps the CosmoFlow small-set throughput experiment (128
// samples/GPU, batch 1-8), comparing baseline, gzip, and the GPU plugin.
func Fig10(scale float64) ([]ThroughputRow, error) {
	return cosmoSweep(scale, "small", CosmoSmallPerGPU)
}

// Fig11 sweeps the CosmoFlow large-set experiment (2048 samples/GPU), where
// staging and caching decide the outcome.
func Fig11(scale float64) ([]ThroughputRow, error) {
	return cosmoSweep(scale, "large", CosmoLargePerGPU)
}

func cosmoSweep(scale float64, set string, perGPU int) ([]ThroughputRow, error) {
	m, err := Calibrate(core.CosmoFlow, scale)
	if err != nil {
		return nil, err
	}
	var rows []ThroughputRow
	for _, p := range platform.All() {
		for _, staged := range []bool{true, false} {
			for _, batch := range []int{1, 2, 4, 8} {
				row, err := simulateVariants(p, m, perGPU*p.GPUsPerNode, staged, batch, true, false)
				if err != nil {
					return nil, err
				}
				row.Set = set
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatThroughput renders throughput rows as an aligned table.
func FormatThroughput(title string, rows []ThroughputRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-6s %-9s %5s %10s %10s %11s %11s\n",
		"platform", "set", "staging", "batch", "base/s", "gzip/s", "cpu-plug/s", "gpu-plug/s")
	for _, r := range rows {
		gz, cp := "-", "-"
		if r.GzipVar > 0 {
			gz = fmt.Sprintf("%.0f", r.GzipVar)
		}
		if r.CPUPlugin > 0 {
			cp = fmt.Sprintf("%.0f", r.CPUPlugin)
		}
		fmt.Fprintf(&b, "%-10s %-6s %-9s %5d %10.0f %10s %11s %11.0f\n",
			r.Platform, r.Set, stagedName(r.Staged), r.Batch, r.Base, gz, cp, r.GPUPlugin)
	}
	return b.String()
}

// BreakdownRow is one bar of Figs 9/12: the per-sample stage profile of one
// pipeline variant.
type BreakdownRow struct {
	Platform string
	Variant  string
	Stages   StageTimes
	Node     float64
}

// Fig9 produces the DeepCAM time breakdown (Cori V100 and A100, small
// staged set, batch 4) for baseline, CPU plugin and GPU plugin.
func Fig9(scale float64) ([]BreakdownRow, error) {
	m, err := Calibrate(core.DeepCAM, scale)
	if err != nil {
		return nil, err
	}
	var rows []BreakdownRow
	for _, p := range []platform.Platform{platform.CoriV100(), platform.CoriA100()} {
		for _, v := range []struct {
			name string
			enc  core.Encoding
			plug pipeline.Plugin
		}{
			{"base", core.Baseline, pipeline.CPUPlugin},
			{"cpu-plugin", core.Plugin, pipeline.CPUPlugin},
			{"gpu-plugin", core.Plugin, pipeline.GPUPlugin},
		} {
			r, err := Simulate(Scenario{
				Platform: p, Model: m, Enc: v.enc, Plugin: v.plug,
				SamplesPerNode: DeepCAMSmallPerNode, Staged: true, Batch: 4, Epoch: 1,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, BreakdownRow{Platform: p.Name, Variant: v.name, Stages: r.Stages, Node: r.Node})
		}
	}
	return rows, nil
}

// Fig12 produces the CosmoFlow time breakdown (Summit and Cori-V100, small
// staged set, batch 4) for baseline, gzip and the GPU plugin.
func Fig12(scale float64) ([]BreakdownRow, error) {
	m, err := Calibrate(core.CosmoFlow, scale)
	if err != nil {
		return nil, err
	}
	var rows []BreakdownRow
	for _, p := range []platform.Platform{platform.Summit(), platform.CoriV100()} {
		for _, v := range []struct {
			name string
			enc  core.Encoding
			plug pipeline.Plugin
		}{
			{"base", core.Baseline, pipeline.CPUPlugin},
			{"gzip", core.Gzip, pipeline.CPUPlugin},
			{"gpu-plugin", core.Plugin, pipeline.GPUPlugin},
		} {
			r, err := Simulate(Scenario{
				Platform: p, Model: m, Enc: v.enc, Plugin: v.plug,
				SamplesPerNode: CosmoSmallPerGPU * p.GPUsPerNode, Staged: true, Batch: 4, Epoch: 1,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, BreakdownRow{Platform: p.Name, Variant: v.name, Stages: r.Stages, Node: r.Node})
		}
	}
	return rows, nil
}

// FormatBreakdown renders breakdown rows.
func FormatBreakdown(title string, rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-11s %8s %8s %8s %9s %9s %9s %9s\n",
		"platform", "variant", "read", "cpu", "h2d", "gpu-dec", "gpu-comp", "allred", "node/s")
	for _, r := range rows {
		s := r.Stages
		fmt.Fprintf(&b, "%-10s %-11s %7.2fm %7.2fm %7.2fm %8.2fm %8.2fm %8.2fm %9.0f\n",
			r.Platform, r.Variant,
			1e3*s.Read, 1e3*s.CPU, 1e3*s.H2D, 1e3*s.GPUDecode, 1e3*s.GPUCompute, 1e3*s.AllReduce, r.Node)
	}
	return b.String()
}

// ConvergenceSeries is one loss trajectory.
type ConvergenceSeries struct {
	Label  string
	Losses []float64
}

// Fig6 runs the DeepCAM convergence comparison (base vs decoded samples,
// identical schedule/seed) on a reduced-scale model and returns the two
// per-step loss series.
func Fig6(samples, batch, steps int, seed uint64) ([]ConvergenceSeries, error) {
	clim := synthetic.DefaultClimateConfig()
	clim.Channels = 8
	clim.Height = 48
	clim.Width = 72
	cfg := train.Config{Samples: samples, Batch: batch, Steps: steps, Seed: seed, LR: 0.03, Warmup: 8}
	base, err := train.DeepCAM(clim, cfg)
	if err != nil {
		return nil, err
	}
	cfg.Encoded = true
	dec, err := train.DeepCAM(clim, cfg)
	if err != nil {
		return nil, err
	}
	return []ConvergenceSeries{{Label: "base", Losses: base}, {Label: "decoded", Losses: dec}}, nil
}

// Fig7Result summarizes the 16-repetition CosmoFlow convergence experiment.
type Fig7Result struct {
	Epochs int
	// Base and Decoded hold per-repetition loss series.
	Base, Decoded []ConvergenceSeries
}

// Fig7 runs `reps` repetitions (paper: 16) of CosmoFlow training for each
// sample class, per the MLPerf HPC multi-run submission rules.
func Fig7(samples, batch, epochs, reps int, baseSeed uint64) (*Fig7Result, error) {
	cosmo := synthetic.DefaultCosmoConfig()
	cosmo.Dim = 16
	out := &Fig7Result{Epochs: epochs}
	for rep := 0; rep < reps; rep++ {
		cfg := train.Config{
			Samples: samples, Batch: batch, Epochs: epochs,
			Seed: baseSeed + uint64(rep)*7919, LR: 0.01, Warmup: 4,
		}
		base, err := train.CosmoFlow(cosmo, cfg)
		if err != nil {
			return nil, err
		}
		cfg.Encoded = true
		dec, err := train.CosmoFlow(cosmo, cfg)
		if err != nil {
			return nil, err
		}
		out.Base = append(out.Base, ConvergenceSeries{Label: fmt.Sprintf("base-%d", rep), Losses: base})
		out.Decoded = append(out.Decoded, ConvergenceSeries{Label: fmt.Sprintf("decoded-%d", rep), Losses: dec})
	}
	return out, nil
}

// FinalLossStats returns mean and std of the final losses across series.
func FinalLossStats(series []ConvergenceSeries) (mean, std float64) {
	finals := make([]float64, 0, len(series))
	for _, s := range series {
		if len(s.Losses) > 0 {
			finals = append(finals, s.Losses[len(s.Losses)-1])
		}
	}
	sm := stats.Summarize(finals)
	return sm.Mean, sm.Std
}

// Headline summarizes the paper's headline speedups over the full sweep.
type Headline struct {
	// DeepCAMSmallSetSpeedup is the max GPU-plugin speedup over the
	// memory-resident small-set sweep — the configuration the paper's "up
	// to 3x" headline (Fig 8 caption) corresponds to.
	DeepCAMSmallSetSpeedup float64
	// DeepCAMCachingAmplifiedMax is the sweep-wide max, which in this
	// reproduction exceeds the paper's because our encoded large set fits
	// host memory while the baseline's does not (the §II caching argument
	// compounding with the IO reduction; see EXPERIMENTS.md).
	DeepCAMCachingAmplifiedMax float64
	CosmoMaxSpeedup            float64 // paper: up to ~10x
	GzipWorstSlowdown          float64 // paper: up to ~1.5x slower than base
	DeepCAMBestPlatform        string
	CosmoBestPlatform          string
}

// Headlines computes the max plugin speedups and worst gzip slowdown across
// the Fig 8/10/11 sweeps.
func Headlines(scale float64) (Headline, error) {
	var h Headline
	f8, err := Fig8(scale)
	if err != nil {
		return h, err
	}
	for _, r := range f8 {
		if r.Base > 0 {
			sp := r.GPUPlugin / r.Base
			if sp > h.DeepCAMCachingAmplifiedMax {
				h.DeepCAMCachingAmplifiedMax = sp
			}
			if r.Set == "small" && sp > h.DeepCAMSmallSetSpeedup {
				h.DeepCAMSmallSetSpeedup = sp
				h.DeepCAMBestPlatform = r.Platform
			}
		}
	}
	f10, err := Fig10(scale)
	if err != nil {
		return h, err
	}
	f11, err := Fig11(scale)
	if err != nil {
		return h, err
	}
	for _, r := range append(f10, f11...) {
		if r.Base > 0 {
			if sp := r.GPUPlugin / r.Base; sp > h.CosmoMaxSpeedup {
				h.CosmoMaxSpeedup = sp
				h.CosmoBestPlatform = r.Platform
			}
			if r.GzipVar > 0 {
				if sl := r.Base / r.GzipVar; sl > h.GzipWorstSlowdown {
					h.GzipWorstSlowdown = sl
				}
			}
		}
	}
	return h, nil
}

// AblationRow compares a design choice.
type AblationRow struct {
	Name           string
	BaselineValue  float64
	AlternateValue float64
	ImprovementPct float64
	Unit           string
}

// DecodeStrategyAblation compares the hierarchical warp assignment against
// the naive thread-per-line mapping for the DeepCAM decode kernel (§VI).
func DecodeStrategyAblation(scale float64, p platform.Platform) (AblationRow, error) {
	m, err := Calibrate(core.DeepCAM, scale)
	if err != nil {
		return AblationRow{}, err
	}
	hier := gpusim.Device{GPU: p.GPU, Strategy: gpusim.Hierarchical}
	naive := gpusim.Device{GPU: p.GPU, Strategy: gpusim.NaiveThreadPerChunk}
	th := hier.KernelTime(m.DecodeWorkload)
	tn := naive.KernelTime(m.DecodeWorkload)
	return AblationRow{
		Name:           "gpu-decode-strategy(hierarchical vs naive)",
		BaselineValue:  tn * 1e3,
		AlternateValue: th * 1e3,
		ImprovementPct: 100 * (tn - th) / tn,
		Unit:           "ms/kernel",
	}, nil
}

// KernelSimAblation runs the warp-level kernel simulator over the DeepCAM
// decode workload under both strategies, reporting makespan and warp
// occupancy — the detailed version of DecodeStrategyAblation.
type KernelSimAblation struct {
	Strategy  string
	KernelMs  float64
	Occupancy float64
}

// KernelSimCompare evaluates both decode strategies with the DES.
func KernelSimCompare(scale float64, p platform.Platform) ([]KernelSimAblation, error) {
	m, err := Calibrate(core.DeepCAM, scale)
	if err != nil {
		return nil, err
	}
	var out []KernelSimAblation
	for _, strat := range []gpusim.Strategy{gpusim.Hierarchical, gpusim.NaiveThreadPerChunk} {
		sim := &gpusim.KernelSim{Device: &gpusim.Device{GPU: p.GPU, Strategy: strat}}
		t, err := sim.Run(m.DecodeWorkload)
		if err != nil {
			return nil, err
		}
		occ, err := sim.Occupancy(m.DecodeWorkload)
		if err != nil {
			return nil, err
		}
		out = append(out, KernelSimAblation{
			Strategy: strat.String(), KernelMs: t * 1e3, Occupancy: occ,
		})
	}
	return out, nil
}

// SortRows orders throughput rows deterministically for golden output.
func SortRows(rows []ThroughputRow) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		if a.Staged != b.Staged {
			return a.Staged
		}
		return a.Batch < b.Batch
	})
}
