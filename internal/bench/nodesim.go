package bench

import (
	"fmt"

	"scipp/internal/core"
	"scipp/internal/dist"
	"scipp/internal/gpusim"
	"scipp/internal/iosim"
	"scipp/internal/pipeline"
	"scipp/internal/trace"
)

// NodeSimResult is the outcome of a discrete-event simulation of training
// steps on one node. Unlike Simulate's closed-form steady state (throughput
// = slowest stage), the DES models queueing on the shared resources
// (storage, PCIe switch groups), finite prefetch, the cold pipeline fill,
// and the allreduce barrier at every step — so bandwidth sharing and
// overlap are emergent rather than assumed.
type NodeSimResult struct {
	TotalSec float64
	// Node is the aggregate steady throughput in samples/s.
	Node float64
	// Busy maps resource name to its busy fraction of the total span.
	Busy map[string]float64
}

// SimulateNode runs `steps` synchronous training steps of the scenario
// through the event model. If tl is non-nil it receives every activity
// (resources: "storage", "link<g>", "cpu<g>", "gpu<g>").
func SimulateNode(sc Scenario, steps int, tl *trace.Timeline) (NodeSimResult, error) {
	if steps <= 0 {
		return NodeSimResult{}, fmt.Errorf("bench: steps must be positive")
	}
	// Reuse the closed-form per-sample service times; the DES composes them
	// with explicit queueing instead of a max().
	closed, err := Simulate(sc)
	if err != nil {
		return NodeSimResult{}, err
	}
	p := sc.Platform
	g := p.GPUsPerNode
	node := iosim.Node{P: p}
	ds := iosim.Dataset{
		Samples:     sc.SamplesPerNode,
		SampleBytes: sc.Model.BytesFor(sc.Enc),
		Staged:      sc.Staged,
	}
	level := node.ResidentLevel(ds, sc.Epoch)
	// Service times at FULL resource speed: sharing emerges from queueing.
	tRead := node.ReadTime(ds, level, 1)
	tCPU := closed.Stages.CPU // per-sample with the GPU's worker pool
	h2dBytes := sc.Model.RawF32Bytes
	switch {
	case sc.Enc == core.Plugin && sc.Plugin == pipeline.GPUPlugin:
		h2dBytes = sc.Model.PluginBytes
	case sc.Enc == core.Plugin:
		h2dBytes = sc.Model.DecodedBytes
	}
	tH2D := gpusim.CopyTime(p.Link, h2dBytes*sc.Batch, 1) / float64(sc.Batch)
	tGPU := closed.Stages.GPUDecode + closed.Stages.GPUCompute
	ring := dist.RingTime(sc.Model.GradBytes, g, p.CollectiveGBs, 30e-6)

	prefetch := 2 * sc.Batch
	nGroups := (g + p.Link.ShareGroup - 1) / p.Link.ShareGroup

	var availStorage float64
	availLink := make([]float64, nGroups)
	availCPU := make([]float64, g)
	availGPU := make([]float64, g)
	// gpuDone[g][j] is when sample j of GPU g finished its GPU stage; used
	// for the prefetch window.
	gpuDone := make([][]float64, g)
	for i := range gpuDone {
		gpuDone[i] = make([]float64, steps*sc.Batch)
	}
	busy := map[string]float64{}
	add := func(res string, tag string, start, dur float64) float64 {
		if tl != nil {
			tl.Add(res, tag, start, start+dur)
		}
		busy[res] += dur
		return start + dur
	}

	total := 0.0
	for step := 0; step < steps; step++ {
		for k := 0; k < sc.Batch; k++ {
			j := step*sc.Batch + k
			for gi := 0; gi < g; gi++ {
				// Prefetch window: sample j may not begin loading until
				// sample j-prefetch has cleared the GPU.
				issue := 0.0
				if j >= prefetch {
					issue = gpuDone[gi][j-prefetch]
				}
				rs := max2(availStorage, issue)
				availStorage = add("storage", "read", rs, tRead)
				cs := max2(availCPU[gi], availStorage)
				availCPU[gi] = add(fmt.Sprintf("cpu%d", gi), "cpu", cs, tCPU)
				grp := gi / p.Link.ShareGroup
				hs := max2(availLink[grp], availCPU[gi])
				availLink[grp] = add(fmt.Sprintf("link%d", grp), "h2d", hs, tH2D)
				gs := max2(availGPU[gi], availLink[grp])
				availGPU[gi] = add(fmt.Sprintf("gpu%d", gi), "gpu", gs, tGPU)
				gpuDone[gi][j] = availGPU[gi]
			}
		}
		// Synchronous allreduce barrier: every GPU joins at the slowest.
		barrier := 0.0
		for gi := 0; gi < g; gi++ {
			if availGPU[gi] > barrier {
				barrier = availGPU[gi]
			}
		}
		for gi := 0; gi < g; gi++ {
			availGPU[gi] = add(fmt.Sprintf("gpu%d", gi), "allreduce", barrier, ring)
		}
		total = barrier + ring
	}

	res := NodeSimResult{
		TotalSec: total,
		Node:     float64(steps*sc.Batch*g) / total,
		Busy:     map[string]float64{},
	}
	for r, b := range busy {
		res.Busy[r] = b / total
	}
	return res, nil
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
