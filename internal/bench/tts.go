package bench

import (
	"fmt"

	"scipp/internal/core"
	"scipp/internal/pipeline"
	"scipp/internal/platform"
	"scipp/internal/synthetic"
	"scipp/internal/train"
)

// TTSResult combines statistical efficiency (epochs to a target loss, from
// *real* training) with runtime efficiency (modeled epoch time at paper
// scale) into time-to-solution — "ultimately, the performance of these
// applications is defined by the time to a desired accuracy, which
// intertwines multiple performance contributing factors" (§III).
type TTSResult struct {
	Platform   string
	TargetLoss float64
	// Epochs to reach the target under each sample class (real training on
	// the reduced-scale model; -1 if the target was not reached).
	EpochsBase, EpochsPlugin int
	// Modeled seconds per epoch at paper scale.
	EpochSecBase, EpochSecPlugin float64
	// Time to solution = epochs x epoch time.
	TTSBase, TTSPlugin float64
	// Speedup of the plugin pipeline in time-to-solution.
	Speedup float64
}

func epochsToTarget(losses []float64, target float64) int {
	for i, l := range losses {
		if l <= target {
			return i + 1
		}
	}
	return -1
}

// TimeToSolution runs the CosmoFlow convergence experiment for both sample
// classes, takes epochs-to-target from the real loss curves, and multiplies
// by the modeled per-epoch wall time of the corresponding pipeline on p.
func TimeToSolution(scale float64, p platform.Platform, target float64, cosmoCfg synthetic.CosmoConfig, trainCfg train.Config) (TTSResult, error) {
	res := TTSResult{Platform: p.Name, TargetLoss: target}

	base, err := train.CosmoFlow(cosmoCfg, trainCfg)
	if err != nil {
		return res, err
	}
	trainCfg.Encoded = true
	plug, err := train.CosmoFlow(cosmoCfg, trainCfg)
	if err != nil {
		return res, err
	}
	res.EpochsBase = epochsToTarget(base, target)
	res.EpochsPlugin = epochsToTarget(plug, target)
	if res.EpochsBase < 0 || res.EpochsPlugin < 0 {
		return res, fmt.Errorf("bench: target loss %g not reached within %d epochs (base %v, plugin %v)",
			target, trainCfg.Epochs, res.EpochsBase, res.EpochsPlugin)
	}

	m, err := Calibrate(core.CosmoFlow, scale)
	if err != nil {
		return res, err
	}
	samples := CosmoSmallPerGPU * p.GPUsPerNode
	baseStep, err := Simulate(Scenario{
		Platform: p, Model: m, Enc: core.Baseline,
		SamplesPerNode: samples, Staged: true, Batch: trainCfg.Batch, Epoch: 1,
	})
	if err != nil {
		return res, err
	}
	plugStep, err := Simulate(Scenario{
		Platform: p, Model: m, Enc: core.Plugin, Plugin: pipeline.GPUPlugin,
		SamplesPerNode: samples, Staged: true, Batch: trainCfg.Batch, Epoch: 1,
	})
	if err != nil {
		return res, err
	}
	res.EpochSecBase = float64(samples) / baseStep.Node
	res.EpochSecPlugin = float64(samples) / plugStep.Node
	res.TTSBase = float64(res.EpochsBase) * res.EpochSecBase
	res.TTSPlugin = float64(res.EpochsPlugin) * res.EpochSecPlugin
	if res.TTSPlugin > 0 {
		res.Speedup = res.TTSBase / res.TTSPlugin
	}
	return res, nil
}

// String formats the result.
func (r TTSResult) String() string {
	return fmt.Sprintf(
		"TIME TO SOLUTION on %s (target loss %.3f)\n"+
			"  base:   %d epochs x %.1f s/epoch = %.1f s\n"+
			"  plugin: %d epochs x %.1f s/epoch = %.1f s\n"+
			"  speedup %.2fx (convergence preserved -> gain tracks throughput)\n",
		r.Platform, r.TargetLoss,
		r.EpochsBase, r.EpochSecBase, r.TTSBase,
		r.EpochsPlugin, r.EpochSecPlugin, r.TTSPlugin,
		r.Speedup)
}
