package bench

import (
	"fmt"
	"strings"

	"scipp/internal/obs"
	"scipp/internal/trace"
)

// BreakdownStages lists the stage metric suffixes of a replayed breakdown
// row, in pipeline order. Each maps 1:1 onto a StageTimes field.
var BreakdownStages = []string{"read", "cpu", "h2d", "gpu_decode", "gpu_compute", "allreduce"}

// stageSeconds flattens s into BreakdownStages order.
func stageSeconds(s StageTimes) []float64 {
	return []float64{s.Read, s.CPU, s.H2D, s.GPUDecode, s.GPUCompute, s.AllReduce}
}

// ReplayBreakdown replays simulated per-sample stage profiles into reg as
// stage spans on a virtual clock, bridging the analytic pipeline model to the
// obs layer. Each row becomes one span per stage under
//
//	breakdown.<platform>.<variant>.<stage>.{seconds,spans}
//
// plus a breakdown.<platform>.<variant>.node_rate gauge (samples/s). The
// replay is single-threaded pure float math on the returned clock, so the
// resulting snapshot is bit-reproducible for a given row set.
func ReplayBreakdown(reg *obs.Registry, rows []BreakdownRow) *trace.VirtualClock {
	clock := &trace.VirtualClock{}
	tr := obs.NewTracer(reg, clock)
	for _, r := range rows {
		prefix := "breakdown." + r.Platform + "." + r.Variant + "."
		for i, stage := range BreakdownStages {
			sp := tr.Start(prefix + stage)
			clock.Advance(stageSeconds(r.Stages)[i])
			sp.End()
		}
		reg.Gauge(prefix + "node_rate").Set(r.Node)
	}
	return clock
}

// RenderBreakdown formats breakdown rows as the Fig 9/12 table, reading every
// duration back from the snapshot rather than the rows: the table is a view
// over the metrics layer, so any drift between the two is visible. Rows only
// supply the (platform, variant) presentation order.
func RenderBreakdown(title string, rows []BreakdownRow, s obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-11s %8s %8s %8s %9s %9s %9s %9s\n",
		"platform", "variant", "read", "cpu", "h2d", "gpu-dec", "gpu-comp", "allred", "node/s")
	for _, r := range rows {
		prefix := "breakdown." + r.Platform + "." + r.Variant + "."
		fmt.Fprintf(&b, "%-10s %-11s", r.Platform, r.Variant)
		for i, stage := range BreakdownStages {
			sum := 0.0
			if hv, ok := s.Histogram(prefix + stage + ".seconds"); ok {
				sum = hv.Sum
			}
			format := " %7.2fm"
			if i >= 3 {
				format = " %8.2fm"
			}
			fmt.Fprintf(&b, format, 1e3*sum)
		}
		fmt.Fprintf(&b, " %9.0f\n", s.Gauge(prefix+"node_rate").Value)
	}
	return b.String()
}
