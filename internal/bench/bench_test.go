package bench

import (
	"strings"
	"testing"

	"scipp/internal/core"
	"scipp/internal/iosim"
	"scipp/internal/pipeline"
	"scipp/internal/platform"
	"scipp/internal/synthetic"
	"scipp/internal/train"
)

// testScale keeps calibration fast; sizes extrapolate linearly.
const testScale = 0.25

func mustModel(t testing.TB, app core.App) AppModel {
	t.Helper()
	m, err := Calibrate(app, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCalibrationSizes(t *testing.T) {
	dc := mustModel(t, core.DeepCAM)
	if dc.RawF32Bytes != 16*768*1152*4 {
		t.Errorf("DeepCAM raw bytes %d", dc.RawF32Bytes)
	}
	if dc.PluginBytes >= dc.RawF32Bytes/2 {
		t.Errorf("DeepCAM plugin (%d) should compress > 2x vs FP32 (%d)", dc.PluginBytes, dc.RawF32Bytes)
	}
	cf := mustModel(t, core.CosmoFlow)
	if cf.StoredBytes < 4*128*128*128*2 {
		t.Errorf("CosmoFlow stored bytes %d below int16 payload", cf.StoredBytes)
	}
	// §V-B: LUT ~4x, gzip ~5x (gzip ahead of LUT on the int16 source).
	if cf.PluginBytes <= cf.GzipBytes {
		t.Errorf("gzip (%d) should be smaller than LUT (%d) on cosmo data", cf.GzipBytes, cf.PluginBytes)
	}
	lutRatio := float64(cf.StoredBytes) / float64(cf.PluginBytes)
	if lutRatio < 2.5 || lutRatio > 6 {
		t.Errorf("LUT ratio %.2f outside the ~4x ballpark", lutRatio)
	}
	if _, err := Calibrate(core.DeepCAM, 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Calibrate(core.DeepCAM, 2); err == nil {
		t.Error("scale 2 accepted")
	}
}

func simulate(t testing.TB, p platform.Platform, m AppModel, enc core.Encoding, plug pipeline.Plugin, samples int, staged bool, batch, epoch int) StepResult {
	t.Helper()
	r, err := Simulate(Scenario{
		Platform: p, Model: m, Enc: enc, Plugin: plug,
		SamplesPerNode: samples, Staged: staged, Batch: batch, Epoch: epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The next tests assert the paper's qualitative claims hold in the model.

func TestDeepCAMBaselineDoesNotImproveOnA100(t *testing.T) {
	// §IX-A: "the baseline performance does not improve when migrating from
	// the Cori-V100 to the faster Cori-A100 system".
	m := mustModel(t, core.DeepCAM)
	v := simulate(t, platform.CoriV100(), m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	a := simulate(t, platform.CoriA100(), m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	if ratio := a.Node / v.Node; ratio > 1.15 || ratio < 0.85 {
		t.Errorf("baseline A100/V100 = %.2f, paper has them equal", ratio)
	}
}

func TestDeepCAMPluginSpeedups(t *testing.T) {
	m := mustModel(t, core.DeepCAM)
	for _, tc := range []struct {
		p        platform.Platform
		min, max float64
	}{
		{platform.CoriV100(), 1.3, 3.5},
		{platform.CoriA100(), 2.0, 4.0}, // paper: up to 3.1x
		{platform.Summit(), 1.05, 1.8},  // paper: limited to ~1.3x
	} {
		base := simulate(t, tc.p, m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
		plug := simulate(t, tc.p, m, core.Plugin, pipeline.GPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
		sp := Speedup(plug, base)
		if sp < tc.min || sp > tc.max {
			t.Errorf("%s: GPU plugin speedup %.2f outside [%.1f, %.1f]", tc.p.Name, sp, tc.min, tc.max)
		}
	}
}

func TestSummitCPUPluginDoesNotHelp(t *testing.T) {
	// §IX-A: "for Summit only gpu-based plugin improves the performance".
	m := mustModel(t, core.DeepCAM)
	base := simulate(t, platform.Summit(), m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	cpu := simulate(t, platform.Summit(), m, core.Plugin, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	if cpu.Node > base.Node {
		t.Errorf("Summit CPU plugin (%.0f) should not beat baseline (%.0f)", cpu.Node, base.Node)
	}
	gpu := simulate(t, platform.Summit(), m, core.Plugin, pipeline.GPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	if gpu.Node <= base.Node {
		t.Error("Summit GPU plugin should beat baseline")
	}
}

func TestSummitBaselineBeatsCoriAtBatch4(t *testing.T) {
	// §IX-A: "At batch size of 4, the 6-V100 Summit node outperforms an
	// 8-V100 Cori node, while expected performance should be around 75%".
	m := mustModel(t, core.DeepCAM)
	s := simulate(t, platform.Summit(), m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	c := simulate(t, platform.CoriV100(), m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	if s.Node <= c.Node {
		t.Errorf("Summit baseline node (%.0f) should beat Cori-V100 (%.0f)", s.Node, c.Node)
	}
}

func TestCoriPluginsBothImprove(t *testing.T) {
	// §IX-A: "for Cori-based experiments, both cpu-based and gpu-based
	// plugin improves the performance".
	m := mustModel(t, core.DeepCAM)
	for _, p := range []platform.Platform{platform.CoriV100(), platform.CoriA100()} {
		base := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
		cpu := simulate(t, p, m, core.Plugin, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
		gpu := simulate(t, p, m, core.Plugin, pipeline.GPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
		if cpu.Node <= base.Node {
			t.Errorf("%s: CPU plugin (%.0f) should beat baseline (%.0f)", p.Name, cpu.Node, base.Node)
		}
		if gpu.Node <= cpu.Node {
			t.Errorf("%s: GPU plugin (%.0f) should beat CPU plugin (%.0f)", p.Name, gpu.Node, cpu.Node)
		}
	}
}

func TestDeepCAMLargeSetSlowdown(t *testing.T) {
	// §IX-A: the baseline "suffers a significant slowdown ... for a large
	// dataset" — the large set no longer fits host memory.
	m := mustModel(t, core.DeepCAM)
	p := platform.CoriV100()
	small := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, DeepCAMSmallPerNode, true, 4, 1)
	large := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, DeepCAMLargePerNode, true, 4, 1)
	if small.ReadLevel != iosim.HostMem {
		t.Error("small set should cache in host memory")
	}
	if large.ReadLevel != iosim.NVMe {
		t.Error("large staged set should read from NVMe")
	}
	if large.Node >= small.Node {
		t.Error("large set should be slower than small")
	}
	// Unstaged large is worse still (1.2-2.4x staging effect band, loosely).
	unstaged := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, DeepCAMLargePerNode, false, 4, 1)
	eff := large.Node / unstaged.Node
	if eff < 1.2 || eff > 3.0 {
		t.Errorf("staging effect %.2f outside the paper band", eff)
	}
}

func TestCosmoGzipSlowdown(t *testing.T) {
	// §IX-B: "the use of gzipped formatting reduces throughput by up to
	// 1.5x" — decompression offsets the reduced IO.
	m := mustModel(t, core.CosmoFlow)
	for _, p := range platform.All() {
		base := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, CosmoSmallPerGPU*p.GPUsPerNode, true, 4, 1)
		gz := simulate(t, p, m, core.Gzip, pipeline.CPUPlugin, CosmoSmallPerGPU*p.GPUsPerNode, true, 4, 1)
		slow := base.Node / gz.Node
		if slow < 1.05 || slow > 1.7 {
			t.Errorf("%s: gzip slowdown %.2f outside (1.05, 1.7)", p.Name, slow)
		}
	}
}

func TestCosmoPluginSpeedups(t *testing.T) {
	// §IX-B small set: Summit 5-8x, Cori 3-4x (we accept slightly wider).
	m := mustModel(t, core.CosmoFlow)
	for _, tc := range []struct {
		p        platform.Platform
		min, max float64
	}{
		{platform.Summit(), 4.0, 9.0},
		{platform.CoriV100(), 2.5, 5.5},
		{platform.CoriA100(), 2.5, 6.5},
	} {
		n := CosmoSmallPerGPU * tc.p.GPUsPerNode
		base := simulate(t, tc.p, m, core.Baseline, pipeline.CPUPlugin, n, true, 4, 1)
		plug := simulate(t, tc.p, m, core.Plugin, pipeline.GPUPlugin, n, true, 4, 1)
		sp := Speedup(plug, base)
		if sp < tc.min || sp > tc.max {
			t.Errorf("%s: cosmo plugin speedup %.2f outside [%.1f, %.1f]", tc.p.Name, sp, tc.min, tc.max)
		}
	}
}

func TestCosmoBaselineFlatWithBatch(t *testing.T) {
	// §IX-B: "the base case does not change significantly with batch size".
	m := mustModel(t, core.CosmoFlow)
	p := platform.CoriV100()
	n := CosmoSmallPerGPU * p.GPUsPerNode
	b1 := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, n, true, 1, 1)
	b8 := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, n, true, 8, 1)
	if r := b8.Node / b1.Node; r > 1.3 {
		t.Errorf("baseline varies %.2fx across batch sizes; should be flat", r)
	}
}

func TestCosmoLargeSetStagingAndCaching(t *testing.T) {
	// Fig 11: staging improves Cori by up to ~1.5x; Summit stays within
	// ~10% because the large set still fits Summit's 512 GB.
	m := mustModel(t, core.CosmoFlow)
	cv := platform.CoriV100()
	n := CosmoLargePerGPU * cv.GPUsPerNode
	staged := simulate(t, cv, m, core.Baseline, pipeline.CPUPlugin, n, true, 4, 1)
	unstaged := simulate(t, cv, m, core.Baseline, pipeline.CPUPlugin, n, false, 4, 1)
	eff := staged.Node / unstaged.Node
	if eff < 1.2 || eff > 1.9 {
		t.Errorf("Cori-V100 staging effect %.2f, paper ~1.5", eff)
	}
	s := platform.Summit()
	ns := CosmoLargePerGPU * s.GPUsPerNode
	sStaged := simulate(t, s, m, core.Baseline, pipeline.CPUPlugin, ns, true, 4, 1)
	sUnstaged := simulate(t, s, m, core.Baseline, pipeline.CPUPlugin, ns, false, 4, 1)
	if d := sStaged.Node / sUnstaged.Node; d > 1.10 {
		t.Errorf("Summit staging effect %.2f, paper within 10%%", d)
	}
}

func TestCosmoLargeSetOrderOfMagnitude(t *testing.T) {
	// §IX-B: "The speedup for the large dataset is up to an order of
	// magnitude."
	m := mustModel(t, core.CosmoFlow)
	best := 0.0
	for _, p := range platform.All() {
		n := CosmoLargePerGPU * p.GPUsPerNode
		base := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, n, false, 4, 1)
		plug := simulate(t, p, m, core.Plugin, pipeline.GPUPlugin, n, false, 4, 1)
		if sp := Speedup(plug, base); sp > best {
			best = sp
		}
	}
	if best < 6 || best > 16 {
		t.Errorf("best large-set speedup %.1f, paper ~10x", best)
	}
}

func TestHeadlines(t *testing.T) {
	h, err := Headlines(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if h.DeepCAMSmallSetSpeedup < 2.0 || h.DeepCAMSmallSetSpeedup > 5.0 {
		t.Errorf("DeepCAM small-set speedup %.1f, paper up to ~3x", h.DeepCAMSmallSetSpeedup)
	}
	if h.DeepCAMCachingAmplifiedMax < h.DeepCAMSmallSetSpeedup {
		t.Error("sweep max should be at least the small-set max")
	}
	if h.CosmoMaxSpeedup < 6.0 || h.CosmoMaxSpeedup > 16.0 {
		t.Errorf("CosmoFlow max speedup %.1f, paper up to ~10x", h.CosmoMaxSpeedup)
	}
	if h.GzipWorstSlowdown < 1.1 || h.GzipWorstSlowdown > 1.8 {
		t.Errorf("gzip worst slowdown %.2f, paper up to ~1.5x", h.GzipWorstSlowdown)
	}
}

func TestFig9BreakdownShape(t *testing.T) {
	rows, err := Fig9(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Fig9 rows = %d, want 6", len(rows))
	}
	byKey := map[string]BreakdownRow{}
	for _, r := range rows {
		byKey[r.Platform+"/"+r.Variant] = r
	}
	// Plugin removes most of the host CPU preprocessing (Fig 9's point).
	base := byKey["Cori-V100/base"]
	plug := byKey["Cori-V100/gpu-plugin"]
	if plug.Stages.CPU > base.Stages.CPU/3 {
		t.Errorf("plugin CPU stage %.1fms not much below base %.1fms",
			1e3*plug.Stages.CPU, 1e3*base.Stages.CPU)
	}
	// And the H2D transfer shrinks.
	if plug.Stages.H2D >= base.Stages.H2D {
		t.Error("plugin H2D should shrink vs base")
	}
}

func TestFig12BreakdownShape(t *testing.T) {
	rows, err := Fig12(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]BreakdownRow{}
	for _, r := range rows {
		byKey[r.Platform+"/"+r.Variant] = r
	}
	// Fig 12: "performance is dominated by the CPU preprocessing activities
	// for the baseline".
	base := byKey["Cori-V100/base"]
	if name, _ := base.Stages.Bottleneck(); name != "cpu" {
		t.Errorf("cosmo baseline bound by %s, want cpu", name)
	}
	// gzip makes the CPU stage worse.
	gz := byKey["Cori-V100/gzip"]
	if gz.Stages.CPU <= base.Stages.CPU {
		t.Error("gzip should increase CPU stage")
	}
	// The data movement cost is higher on Cori than Summit (PCIe vs NVLink).
	if byKey["Cori-V100/base"].Stages.H2D <= byKey["Summit/base"].Stages.H2D {
		t.Error("Cori H2D should exceed Summit's (PCIe3 vs NVLink)")
	}
}

func TestFig5Analysis(t *testing.T) {
	res, err := Fig5(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatal("rows")
	}
	for _, r := range res.Rows {
		if r.UniqueValues < 20 {
			t.Errorf("sample %d: %d unique values", r.Sample, r.UniqueValues)
		}
		if r.UniqueGroups <= r.UniqueValues {
			t.Errorf("sample %d: groups %d <= values %d", r.Sample, r.UniqueGroups, r.UniqueValues)
		}
		if r.Alpha <= 0 {
			t.Errorf("sample %d: power-law alpha %.2f", r.Sample, r.Alpha)
		}
	}
	if !strings.Contains(res.String(), "unique-groups") {
		t.Error("Fig5 formatting")
	}
}

func TestTableFormatting(t *testing.T) {
	t1 := TableI()
	for _, want := range []string{"Summit", "Cori-V100", "Cori-A100", "NVLink", "15.7", "312", "24.3"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := TableII()
	for _, want := range []string{"TF 2.5", "PT 1.10", "2.11.4", "1.9.0"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestThroughputFormatting(t *testing.T) {
	rows, err := Fig10(testScale)
	if err != nil {
		t.Fatal(err)
	}
	SortRows(rows)
	out := FormatThroughput("FIG 10", rows)
	if !strings.Contains(out, "gpu-plug/s") || !strings.Contains(out, "Summit") {
		t.Error("throughput table formatting")
	}
	// 3 platforms x 2 staging x 4 batches.
	if len(rows) != 24 {
		t.Errorf("Fig10 rows = %d, want 24", len(rows))
	}
}

func TestSimulateValidation(t *testing.T) {
	m := mustModel(t, core.DeepCAM)
	if _, err := Simulate(Scenario{Platform: platform.Summit(), Model: m, Batch: 0, SamplesPerNode: 1}); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := Simulate(Scenario{Platform: platform.Summit(), Model: m, Batch: 1, SamplesPerNode: 0}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Simulate(Scenario{
		Platform: platform.Summit(), Model: m, Enc: core.Gzip,
		Plugin: pipeline.GPUPlugin, Batch: 1, SamplesPerNode: 1,
	}); err == nil {
		t.Error("GPU decode of gzip accepted")
	}
}

func TestDecodeStrategyAblation(t *testing.T) {
	row, err := DecodeStrategyAblation(testScale, platform.CoriV100())
	if err != nil {
		t.Fatal(err)
	}
	if row.ImprovementPct <= 0 {
		t.Errorf("hierarchical strategy should improve: %+v", row)
	}
}

func TestColdEpochReadsFromStorage(t *testing.T) {
	m := mustModel(t, core.CosmoFlow)
	p := platform.Summit()
	n := CosmoSmallPerGPU * p.GPUsPerNode
	cold := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, n, true, 4, 0)
	warm := simulate(t, p, m, core.Baseline, pipeline.CPUPlugin, n, true, 4, 1)
	if cold.ReadLevel != iosim.NVMe || warm.ReadLevel != iosim.HostMem {
		t.Errorf("levels: cold %v warm %v", cold.ReadLevel, warm.ReadLevel)
	}
	if cold.Node > warm.Node {
		t.Error("cold epoch should not be faster")
	}
}

func TestKernelSimCompare(t *testing.T) {
	rows, err := KernelSimCompare(testScale, platform.CoriV100())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	hier, naive := rows[0], rows[1]
	if hier.Strategy != "hierarchical" || naive.Strategy != "naive" {
		t.Fatalf("strategies: %+v", rows)
	}
	if hier.KernelMs >= naive.KernelMs {
		t.Error("hierarchical should be faster in the DES too")
	}
	if hier.Occupancy <= 0 || hier.Occupancy > 1 {
		t.Errorf("occupancy %g out of (0,1]", hier.Occupancy)
	}
}

func TestScaleOutProjection(t *testing.T) {
	m := mustModel(t, core.DeepCAM)
	sc := Scenario{
		Platform: platform.Summit(), Model: m, Enc: core.Plugin,
		Plugin: pipeline.GPUPlugin, SamplesPerNode: DeepCAMSmallPerNode,
		Staged: true, Batch: 4, Epoch: 1,
	}
	rows, err := ScaleOut(sc, []int{1, 2, 8, 64, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Efficiency != 1 {
		t.Errorf("1-node efficiency %g, want 1", rows[0].Efficiency)
	}
	// Throughput must grow with nodes, efficiency must not increase.
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput <= rows[i-1].Throughput {
			t.Errorf("throughput not increasing at %d nodes", rows[i].Nodes)
		}
		if rows[i].Efficiency > rows[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency increased at %d nodes", rows[i].Nodes)
		}
	}
	// Large rings erode efficiency but must stay sane.
	last := rows[len(rows)-1]
	if last.Efficiency <= 0.2 || last.Efficiency > 1 {
		t.Errorf("512-node efficiency %.2f implausible", last.Efficiency)
	}
	if _, err := ScaleOut(sc, []int{0}); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestScaleOutFormatting(t *testing.T) {
	m := mustModel(t, core.CosmoFlow)
	sc := Scenario{
		Platform: platform.CoriV100(), Model: m, Enc: core.Plugin,
		Plugin: pipeline.GPUPlugin, SamplesPerNode: CosmoSmallPerGPU * 8,
		Staged: true, Batch: 4, Epoch: 1,
	}
	rows, err := ScaleOut(sc, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatScaleOut("scaling", rows)
	if !strings.Contains(out, "efficiency") || !strings.Contains(out, "nodes") {
		t.Error("formatting")
	}
}

func TestTimeToSolution(t *testing.T) {
	cosmo := synthetic.DefaultCosmoConfig()
	cosmo.Dim = 8
	cfg := train.Config{Samples: 8, Batch: 4, Epochs: 12, Seed: 2, LR: 0.01, Warmup: 2}
	res, err := TimeToSolution(testScale, platform.CoriV100(), 0.9, cosmo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochsBase <= 0 || res.EpochsPlugin <= 0 {
		t.Fatalf("epochs not found: %+v", res)
	}
	// Convergence preserved: epoch counts within 2x of each other.
	if res.EpochsPlugin > 2*res.EpochsBase || res.EpochsBase > 2*res.EpochsPlugin {
		t.Errorf("epoch counts diverge: %d vs %d", res.EpochsBase, res.EpochsPlugin)
	}
	// The plugin must win end to end.
	if res.Speedup <= 1 {
		t.Errorf("TTS speedup %.2f, want > 1", res.Speedup)
	}
	if !strings.Contains(res.String(), "TIME TO SOLUTION") {
		t.Error("formatting")
	}
	// Unreachable target errors out.
	if _, err := TimeToSolution(testScale, platform.CoriV100(), 1e-9, cosmo, cfg); err == nil {
		t.Error("unreachable target accepted")
	}
}
