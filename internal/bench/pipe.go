package bench

import (
	"fmt"

	"scipp/internal/core"
	"scipp/internal/dist"
	"scipp/internal/gpusim"
	"scipp/internal/iosim"
	"scipp/internal/pipeline"
	"scipp/internal/platform"
)

// Scenario describes one training configuration on one node.
type Scenario struct {
	Platform platform.Platform
	Model    AppModel
	Enc      core.Encoding
	// Plugin places the decode stage; meaningful only for Enc == Plugin
	// (the baseline and gzip paths are host-CPU only, §IX-B).
	Plugin pipeline.Plugin
	// SamplesPerNode is the dataset assignment of §IX ("two dataset
	// assignments per node").
	SamplesPerNode int
	Staged         bool
	Batch          int
	// Epoch 0 is the cold traversal; >= 1 is the cached steady state the
	// throughput figures report.
	Epoch int
	// Strategy is the GPU decode work decomposition (Hierarchical default).
	Strategy gpusim.Strategy
}

// StageTimes are modeled per-sample stage durations in seconds. The
// pipeline prefetches, so in steady state the throughput is set by the
// slowest stage; the GPU-resident stages (decode, compute, allreduce)
// serialize on the accelerator and count as one.
type StageTimes struct {
	Read       float64 // storage -> host memory
	CPU        float64 // host parse / preprocess / decode / inflate
	H2D        float64 // host -> device transfer
	GPUDecode  float64 // on-device decode kernel (GPU plugin only)
	GPUCompute float64 // fwd + bwd + optimizer
	AllReduce  float64 // gradient synchronization (per sample)
}

// GPUTotal returns the serialized accelerator time per sample.
func (s StageTimes) GPUTotal() float64 { return s.GPUDecode + s.GPUCompute + s.AllReduce }

// Bottleneck returns the binding stage name and its per-sample duration.
func (s StageTimes) Bottleneck() (string, float64) {
	name, v := "read", s.Read
	if s.CPU > v {
		name, v = "cpu", s.CPU
	}
	if s.H2D > v {
		name, v = "h2d", s.H2D
	}
	if g := s.GPUTotal(); g > v {
		name, v = "gpu", g
	}
	return name, v
}

// StepResult is the modeled steady-state behaviour of a Scenario.
type StepResult struct {
	Stages    StageTimes
	ReadLevel iosim.Level
	Bound     string
	// PerGPU is samples/s for one GPU; Node is the full-node rate the
	// paper's figures plot.
	PerGPU float64
	Node   float64
}

// gpuEfficiency is the achieved fraction of tensor-core peak for the two
// model families (calibration constants). Summit runs the same V100 at a
// lower fraction — §IX-A: "the level of optimization for the software stack
// appears to be lower for Summit".
func gpuEfficiency(p platform.Platform) float64 {
	switch {
	case p.Name == "Summit":
		return 0.19
	case p.GPU.Name == "A100":
		// Larger tiles under-utilized by these mid-size models.
		return 0.22
	default:
		return 0.28
	}
}

// workersPerGPU is the dataloader worker count feeding one GPU (frameworks
// default to a handful of workers; more does not help under the GIL-bound
// stacks of the paper's era).
func workersPerGPU(p platform.Platform) int {
	w := p.CPU.Cores / p.GPUsPerNode
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Simulate evaluates the node pipeline model for one scenario.
func Simulate(sc Scenario) (StepResult, error) {
	if sc.Batch <= 0 {
		return StepResult{}, fmt.Errorf("bench: batch must be positive")
	}
	if sc.SamplesPerNode <= 0 {
		return StepResult{}, fmt.Errorf("bench: empty dataset")
	}
	if sc.Enc != core.Plugin && sc.Plugin == pipeline.GPUPlugin {
		return StepResult{}, fmt.Errorf("bench: %v decode is host-CPU only", sc.Enc)
	}
	p := sc.Platform
	m := sc.Model
	g := p.GPUsPerNode
	w := workersPerGPU(p)
	node := iosim.Node{P: p}

	ds := iosim.Dataset{
		Samples:     sc.SamplesPerNode,
		SampleBytes: m.BytesFor(sc.Enc),
		Staged:      sc.Staged,
	}
	level := node.ResidentLevel(ds, sc.Epoch)
	var st StageTimes
	st.Read = node.ReadTime(ds, level, g)

	// Host CPU stage.
	perCore := func(mbps float64) float64 { return mbps * 1e6 * float64(w) }
	switch {
	case sc.Enc == core.Plugin && sc.Plugin == pipeline.GPUPlugin:
		// Only staging/pinning of the encoded blob.
		st.CPU = float64(m.PluginBytes) / (2 * perCore(p.CPU.ParseMBs))
	case sc.Enc == core.Plugin: // CPU plugin decode
		st.CPU = float64(m.DecodedBytes) / perCore(p.CPU.DecodeMBs)
	default: // baseline / gzip: parse + cast + per-value preprocessing
		st.CPU = float64(m.RawF32Bytes)/perCore(p.CPU.ParseMBs) +
			float64(m.PreprocOps)/(p.CPU.TransOpsPerSec*float64(w))
		if sc.Enc == core.Gzip {
			st.CPU += float64(m.StoredBytes) / perCore(p.CPU.GunzipMBs)
		}
	}

	// Host-to-device transfer. The batch transfers together (sizing the
	// pageable-bandwidth point); all GPUs in a share group pull concurrently.
	h2dBytes := m.RawF32Bytes
	switch {
	case sc.Enc == core.Plugin && sc.Plugin == pipeline.GPUPlugin:
		h2dBytes = m.PluginBytes
	case sc.Enc == core.Plugin:
		h2dBytes = m.DecodedBytes
	}
	st.H2D = gpusim.CopyTime(p.Link, h2dBytes*sc.Batch, p.Link.ShareGroup) / float64(sc.Batch)

	// Accelerator stages.
	dev := gpusim.Device{GPU: p.GPU, Strategy: sc.Strategy}
	if sc.Enc == core.Plugin && sc.Plugin == pipeline.GPUPlugin {
		st.GPUDecode = dev.KernelTime(m.DecodeWorkload)
	}
	eff := gpuEfficiency(p)
	compute := m.ComputeFLOPs / (p.GPU.TensorTFs * 1e12 * eff)
	if p.GPU.Name == "A100" && sc.Batch >= 8 && m.App == core.DeepCAM {
		// §IX-A: "Cori-A100 suffers a small degradation with a batch size
		// of 8 ... the framework choice of the computational kernels ... is
		// the cause" — a calibration quirk carried over.
		compute *= 1.10
	}
	st.GPUCompute = compute + m.StepOverheadSec/float64(sc.Batch)

	// Gradient synchronization. Busy host CPUs delay collective launches,
	// which the paper observes as allreduce-time fluctuation that the
	// plugin removes (Fig 9).
	ring := dist.RingTime(m.GradBytes, g, p.CollectiveGBs, 30e-6)
	st.AllReduce = ring/float64(sc.Batch) + 0.10*st.CPU

	_, bound := st.Bottleneck()
	name, _ := st.Bottleneck()
	perGPU := 1 / bound
	return StepResult{
		Stages:    st,
		ReadLevel: level,
		Bound:     name,
		PerGPU:    perGPU,
		Node:      perGPU * float64(g),
	}, nil
}

// Speedup returns a's node throughput over b's.
func Speedup(a, b StepResult) float64 {
	if b.Node == 0 {
		return 0
	}
	return a.Node / b.Node
}
