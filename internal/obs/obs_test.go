package obs_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/fault"
	"scipp/internal/obs"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

func TestCounter(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if r.Counter("a") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := obs.NewRegistry()
	g := r.Gauge("depth")
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("fresh gauge not zero")
	}
	g.Set(3)
	g.Set(7)
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("Value = %v, want 2", got)
	}
	if got := g.Max(); got != 7 {
		t.Fatalf("Max = %v, want 7", got)
	}
	// A gauge that only ever saw negative values must report that value as
	// its max, not zero.
	n := r.Gauge("neg")
	n.Set(-5)
	if got := n.Max(); got != -5 {
		t.Fatalf("negative-only Max = %v, want -5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 1066.5 {
		t.Fatalf("Sum = %v, want 1066.5", got)
	}
	hv, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Bucket i counts v <= bounds[i]; trailing bucket is overflow.
	want := []int64{2, 2, 1, 1}
	if !reflect.DeepEqual(hv.Counts, want) {
		t.Fatalf("Counts = %v, want %v", hv.Counts, want)
	}
	if got := hv.Mean(); got != 1066.5/6 {
		t.Fatalf("Mean = %v, want %v", got, 1066.5/6)
	}
	if empty := (obs.HistogramValue{}); !math.IsNaN(empty.Mean()) {
		t.Fatalf("empty Mean = %v, want NaN", empty.Mean())
	}
}

func TestHistogramRegistrationPanics(t *testing.T) {
	r := obs.NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("empty bounds", func() { r.Histogram("h1", nil) })
	mustPanic("unsorted bounds", func() { r.Histogram("h2", []float64{2, 1}) })
	// Reuse ignores the second call's bounds entirely, even bad ones.
	h := r.Histogram("h3", []float64{1, 2})
	if got := r.Histogram("h3", nil); got != h {
		t.Fatal("reuse returned a different histogram")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil) // no panic: nil receiver short-circuits
	c.Add(5)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments leaked state")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	tr := obs.NewTracer(nil, &trace.VirtualClock{})
	if tr != nil {
		t.Fatal("NewTracer(nil, clock) != nil")
	}
	if obs.NewTracer(obs.NewRegistry(), nil) != nil {
		t.Fatal("NewTracer(reg, nil) != nil")
	}
	tr.Start("stage").End() // must not touch anything
	if tr.WithTimeline(&trace.Timeline{}, "cpu") != nil {
		t.Fatal("nil tracer WithTimeline != nil")
	}
	if tr.Clock() != nil {
		t.Fatal("nil tracer Clock != nil")
	}
}

func TestSnapshotSortedAndLookups(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(9)
	r.Gauge("y").Set(8)
	r.Histogram("m", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %v", s.Counters)
	}
	if s.Gauges[0].Name != "y" || s.Gauges[1].Name != "z" {
		t.Fatalf("gauges not sorted: %v", s.Gauges)
	}
	if got := s.Counter("b"); got != 2 {
		t.Fatalf("Counter(b) = %d, want 2", got)
	}
	if got := s.Counter("missing"); got != 0 {
		t.Fatalf("Counter(missing) = %d, want 0", got)
	}
	if gv := s.Gauge("z"); gv.Value != 9 || gv.Max != 9 {
		t.Fatalf("Gauge(z) = %+v", gv)
	}
	if gv := s.Gauge("missing"); gv.Value != 0 || gv.Name != "missing" {
		t.Fatalf("Gauge(missing) = %+v", gv)
	}
	if _, ok := s.Histogram("missing"); ok {
		t.Fatal("Histogram(missing) found")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("c").Add(10)
	r.Gauge("g").Set(4)
	r.Histogram("h", []float64{1, 10}).Observe(0.5)
	prev := r.Snapshot()

	r.Counter("c").Add(5)
	r.Counter("new").Add(3)
	r.Gauge("g").Set(2)
	r.Histogram("h", nil).Observe(20)
	d := r.Snapshot().Delta(prev)

	if got := d.Counter("c"); got != 5 {
		t.Fatalf("delta c = %d, want 5", got)
	}
	if got := d.Counter("new"); got != 3 {
		t.Fatalf("delta new = %d, want 3", got)
	}
	if gv := d.Gauge("g"); gv.Value != 2 {
		t.Fatalf("delta gauge = %+v, want last value 2", gv)
	}
	hv, ok := d.Histogram("h")
	if !ok {
		t.Fatal("delta histogram missing")
	}
	if hv.Count != 1 || hv.Sum != 20 {
		t.Fatalf("delta hist count/sum = %d/%v, want 1/20", hv.Count, hv.Sum)
	}
	if want := []int64{0, 0, 1}; !reflect.DeepEqual(hv.Counts, want) {
		t.Fatalf("delta hist counts = %v, want %v", hv.Counts, want)
	}
}

func TestTextAndJSONDeterministic(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("pipeline.batches").Add(12)
	r.Gauge("pipeline.queue_depth").Set(3)
	r.Histogram("pipeline.read.seconds", obs.DurationBuckets()).Observe(0.25)
	s := r.Snapshot()

	txt := s.Text()
	for _, want := range []string{"COUNTERS", "GAUGES", "HISTOGRAMS",
		"pipeline.batches", "pipeline.queue_depth", "pipeline.read.seconds"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Text missing %q:\n%s", want, txt)
		}
	}
	if txt != s.Text() {
		t.Fatal("Text not deterministic")
	}
	if got := (obs.Snapshot{}).Text(); got != "" {
		t.Fatalf("empty snapshot Text = %q, want empty", got)
	}

	js, err := s.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var round obs.Snapshot
	if err := json.Unmarshal(js, &round); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(round, s) {
		t.Fatalf("JSON round-trip mismatch:\n got %+v\nwant %+v", round, s)
	}
}

func TestTracerExactDurations(t *testing.T) {
	clock := &trace.VirtualClock{}
	r := obs.NewRegistry()
	tr := obs.NewTracer(r, clock)
	if tr.Clock() != clock {
		t.Fatal("Clock() did not return the construction clock")
	}

	sp := tr.Start("decode")
	clock.Advance(0.125)
	sp.End()
	sp = tr.Start("decode")
	clock.Advance(0.25)
	sp.End()

	s := r.Snapshot()
	hv, ok := s.Histogram("decode.seconds")
	if !ok {
		t.Fatal("decode.seconds missing")
	}
	if hv.Count != 2 || hv.Sum != 0.375 {
		t.Fatalf("decode.seconds count/sum = %d/%v, want 2/0.375", hv.Count, hv.Sum)
	}
	if got := s.Counter("decode.spans"); got != 2 {
		t.Fatalf("decode.spans = %d, want 2", got)
	}
}

func TestTracerTimelineMirror(t *testing.T) {
	clock := &trace.VirtualClock{}
	tl := &trace.Timeline{}
	tr := obs.NewTracer(obs.NewRegistry(), clock).WithTimeline(tl, "worker0")
	clock.Advance(1)
	sp := tr.Start("read")
	clock.Advance(0.5)
	sp.End()

	evs := tl.Events()
	if len(evs) != 1 {
		t.Fatalf("timeline events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Resource != "worker0" || e.Tag != "read" || e.Start != 1 || e.End != 1.5 {
		t.Fatalf("event = %+v", e)
	}
}

func TestErrorKind(t *testing.T) {
	if got := obs.ErrorKind(fmt.Errorf("io: %w", fault.Transient)); got != "transient" {
		t.Fatalf("wrapped transient = %q", got)
	}
	if got := obs.ErrorKind(errors.New("corrupt")); got != "permanent" {
		t.Fatalf("plain error = %q", got)
	}
}

// stubFormat is a minimal codec.Format for instrumentation tests: blobs are
// raw byte payloads decoded into a [n]U8-shaped F32 tensor one chunk at a
// time, with scripted failures.
type stubFormat struct {
	openErr   error
	decodeErr error
}

func (f stubFormat) Name() string { return "stub" }

func (f stubFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	if f.openErr != nil {
		return nil, f.openErr
	}
	return &stubDecoder{blob: blob, err: f.decodeErr}, nil
}

type stubDecoder struct {
	blob []byte
	err  error
}

func (d *stubDecoder) OutputShape() tensor.Shape { return tensor.Shape{len(d.blob)} }
func (d *stubDecoder) OutputDType() tensor.DType { return tensor.F32 }
func (d *stubDecoder) NumChunks() int            { return len(d.blob) }
func (d *stubDecoder) Workload() codec.Workload {
	return codec.Workload{BytesIn: len(d.blob), BytesOut: 4 * len(d.blob), Chunks: len(d.blob)}
}

func (d *stubDecoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	if d.err != nil {
		return d.err
	}
	dst.F32s[chunk] = float32(d.blob[chunk])
	return nil
}

func TestInstrumentFormatMeters(t *testing.T) {
	clock := &trace.VirtualClock{}
	r := obs.NewRegistry()
	f := obs.InstrumentFormat(stubFormat{}, r, clock)
	if f.Name() != "stub" {
		t.Fatalf("Name = %q, want stub (pass-through)", f.Name())
	}

	blob := []byte{1, 2, 3}
	cd, err := f.Open(blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := codec.Decode(cd)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if want := []float32{1, 2, 3}; !reflect.DeepEqual(got.F32s, want) {
		t.Fatalf("decoded = %v, want %v", got.F32s, want)
	}

	s := r.Snapshot()
	if v := s.Counter("codec.stub.open.spans"); v != 1 {
		t.Fatalf("open.spans = %d, want 1", v)
	}
	if v := s.Counter("codec.stub.bytes_in"); v != 3 {
		t.Fatalf("bytes_in = %d, want 3", v)
	}
	if v := s.Counter("codec.stub.bytes_out"); v != 12 {
		t.Fatalf("bytes_out = %d, want 12", v)
	}
	if v := s.Counter("codec.stub.decode.chunks"); v != 3 {
		t.Fatalf("decode.chunks = %d, want 3", v)
	}
	if hv, ok := s.Histogram("codec.stub.decode.seconds"); !ok || hv.Count != 3 {
		t.Fatalf("decode.seconds count = %+v", hv)
	}
}

func TestInstrumentFormatErrors(t *testing.T) {
	clock := &trace.VirtualClock{}
	r := obs.NewRegistry()

	transient := fmt.Errorf("flaky read: %w", fault.Transient)
	f := obs.InstrumentFormat(stubFormat{openErr: transient}, r, clock)
	if _, err := f.Open([]byte{0}); !errors.Is(err, fault.Transient) {
		t.Fatalf("Open err = %v, want transient", err)
	}
	f = obs.InstrumentFormat(stubFormat{openErr: errors.New("bad magic")}, r, clock)
	if _, err := f.Open([]byte{0}); err == nil {
		t.Fatal("Open: no error")
	}
	f = obs.InstrumentFormat(stubFormat{decodeErr: errors.New("corrupt chunk")}, r, clock)
	cd, err := f.Open([]byte{0})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := cd.DecodeChunk(0, tensor.New(tensor.F32, 1)); err == nil {
		t.Fatal("DecodeChunk: no error")
	}

	s := r.Snapshot()
	for name, want := range map[string]int64{
		"codec.stub.errors.open.transient":   1,
		"codec.stub.errors.open.permanent":   1,
		"codec.stub.errors.decode.permanent": 1,
		"codec.stub.errors.decode.transient": 0,
		"codec.stub.bytes_out":               4, // only the successful Open
	} {
		if got := s.Counter(name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestInstrumentFormatDisabled(t *testing.T) {
	f := stubFormat{}
	if got := obs.InstrumentFormat(f, nil, &trace.VirtualClock{}); got != codec.Format(f) {
		t.Fatal("nil registry should return the format untouched")
	}
	if got := obs.InstrumentFormat(f, obs.NewRegistry(), nil); got != codec.Format(f) {
		t.Fatal("nil clock should return the format untouched")
	}
	if got := obs.InstrumentFormat(nil, obs.NewRegistry(), &trace.VirtualClock{}); got != nil {
		t.Fatal("nil format should stay nil")
	}
}
