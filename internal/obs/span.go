package obs

import (
	"scipp/internal/trace"
)

// Tracer emits per-stage spans: each completed span records one observation
// into the stage's duration histogram ("<stage>.seconds") and bumps the
// stage's span counter ("<stage>.spans") in the backing registry. Durations
// come from the tracer's trace.Clock, so a trace.VirtualClock makes every
// recorded duration exact. A nil *Tracer (the disabled path) starts and ends
// spans for the cost of a nil check.
//
// Hot loops should resolve a *StageTimer once per stage and start spans from
// it: Tracer.Start re-resolves the stage's instruments (two registry lookups
// and two name concatenations) on every End, which the per-sample path
// cannot afford.
type Tracer struct {
	reg      *Registry
	clock    trace.Clock
	timeline *trace.Timeline
	resource string
}

// NewTracer returns a tracer recording into reg on clock. A nil reg or nil
// clock yields a nil (disabled) tracer.
func NewTracer(reg *Registry, clock trace.Clock) *Tracer {
	if reg == nil || clock == nil {
		return nil
	}
	return &Tracer{reg: reg, clock: clock}
}

// WithTimeline returns a copy of the tracer that also mirrors every span
// onto tl as a trace.Event on the given resource, bridging the metrics layer
// to the existing timeline breakdowns. No-op on a nil receiver.
func (t *Tracer) WithTimeline(tl *trace.Timeline, resource string) *Tracer {
	if t == nil {
		return nil
	}
	c := *t
	c.timeline = tl
	c.resource = resource
	return &c
}

// Clock returns the tracer's clock, or nil on a nil receiver.
func (t *Tracer) Clock() trace.Clock {
	if t == nil {
		return nil
	}
	return t.clock
}

// StageTimer is a per-stage span factory with its instruments resolved once:
// starting and ending a span through it touches no registry locks and
// allocates nothing, which is what lets the stage DAG afford a span per
// sample. A nil *StageTimer (from a nil tracer) is a true no-op.
type StageTimer struct {
	clock    trace.Clock
	hist     *Histogram
	spans    *Counter
	timeline *trace.Timeline
	resource string
	stage    string
}

// Stage resolves the named stage's instruments into a reusable StageTimer.
// Nil on a nil receiver.
func (t *Tracer) Stage(stage string) *StageTimer {
	if t == nil {
		return nil
	}
	return &StageTimer{
		clock:    t.clock,
		hist:     t.reg.Histogram(stage+".seconds", DurationBuckets()),
		spans:    t.reg.Counter(stage + ".spans"),
		timeline: t.timeline,
		resource: t.resource,
		stage:    stage,
	}
}

// Start opens a span on the pre-resolved stage. On a nil timer it returns
// the zero Span without touching any clock.
func (st *StageTimer) Start() Span {
	if st == nil {
		return Span{}
	}
	return Span{st: st, start: st.clock.Now()}
}

// Span is one in-flight stage activity. The zero Span (from a nil tracer or
// nil StageTimer) ends as a no-op.
type Span struct {
	st    *StageTimer
	start float64
}

// Start opens a span for the named stage, resolving its instruments on the
// spot. On a nil tracer it returns the zero Span without touching any clock.
// Per-sample call sites should resolve a StageTimer once instead.
func (t *Tracer) Start(stage string) Span {
	return t.Stage(stage).Start()
}

// End closes the span, recording its duration. Safe on the zero Span.
func (s Span) End() {
	if s.st == nil {
		return
	}
	end := s.st.clock.Now()
	s.st.hist.Observe(end - s.start)
	s.st.spans.Inc()
	if s.st.timeline != nil {
		s.st.timeline.Add(s.st.resource, s.st.stage, s.start, end)
	}
}
