package obs

import (
	"scipp/internal/trace"
)

// Tracer emits per-stage spans: each completed span records one observation
// into the stage's duration histogram ("<stage>.seconds") and bumps the
// stage's span counter ("<stage>.spans") in the backing registry. Durations
// come from the tracer's trace.Clock, so a trace.VirtualClock makes every
// recorded duration exact. A nil *Tracer (the disabled path) starts and ends
// spans for the cost of a nil check.
type Tracer struct {
	reg      *Registry
	clock    trace.Clock
	timeline *trace.Timeline
	resource string
}

// NewTracer returns a tracer recording into reg on clock. A nil reg or nil
// clock yields a nil (disabled) tracer.
func NewTracer(reg *Registry, clock trace.Clock) *Tracer {
	if reg == nil || clock == nil {
		return nil
	}
	return &Tracer{reg: reg, clock: clock}
}

// WithTimeline returns a copy of the tracer that also mirrors every span
// onto tl as a trace.Event on the given resource, bridging the metrics layer
// to the existing timeline breakdowns. No-op on a nil receiver.
func (t *Tracer) WithTimeline(tl *trace.Timeline, resource string) *Tracer {
	if t == nil {
		return nil
	}
	c := *t
	c.timeline = tl
	c.resource = resource
	return &c
}

// Clock returns the tracer's clock, or nil on a nil receiver.
func (t *Tracer) Clock() trace.Clock {
	if t == nil {
		return nil
	}
	return t.clock
}

// Span is one in-flight stage activity. The zero Span (from a nil tracer)
// ends as a no-op.
type Span struct {
	t     *Tracer
	stage string
	start float64
}

// Start opens a span for the named stage. On a nil tracer it returns the
// zero Span without touching any clock.
func (t *Tracer) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: t.clock.Now()}
}

// End closes the span, recording its duration. Safe on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.clock.Now()
	s.t.reg.Histogram(s.stage+".seconds", DurationBuckets()).Observe(end - s.start)
	s.t.reg.Counter(s.stage + ".spans").Inc()
	if s.t.timeline != nil {
		s.t.timeline.Add(s.t.resource, s.stage, s.start, end)
	}
}
