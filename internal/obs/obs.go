// Package obs is the pipeline's observability layer: a typed metrics
// registry (counters, gauges, fixed-bucket histograms) and a span-based
// stage tracer, both running on trace.Clock virtual time.
//
// The paper's core methodology is measurement — it attributes end-to-end
// training time to individual preprocessing stages (read, decode, augment,
// stage-in) before optimizing any of them. This package makes that
// attribution a first-class, deterministic artifact: every duration comes
// from a trace.Clock, so tests drive a trace.VirtualClock and assert exact
// values with no sleeps and no tolerances.
//
// Disabled-path contract: a nil *Registry — and every instrument handle
// obtained from one — is a true no-op. Instrument methods on nil receivers
// return after a single nil check, so the uninstrumented hot path pays one
// predictable branch per call site (guarded by BenchmarkNoopRegistry).
// Hold instrument handles (*Counter, *Gauge, *Histogram) rather than
// re-looking names up: handle operations are lock-free atomics, safe for
// concurrent prefetch workers.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 instrument. The nil Counter
// discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 instrument that also tracks the maximum
// value ever set (queue depths are asserted on via their high-water mark).
// The nil Gauge discards all updates.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	max float64
	set bool
}

// Set records the gauge's current value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.mu.Unlock()
}

// Value returns the last value set; zero on a nil receiver or before any Set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the high-water mark; zero on a nil receiver or before any Set.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Histogram is a fixed-bucket distribution instrument. Bucket i counts
// observations v <= Bounds[i]; one implicit overflow bucket counts the rest.
// Sum and Count are tracked exactly, so mean durations reconcile without
// bucket-interpolation error. The nil Histogram discards all updates.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64
	count  int64
	sum    float64
}

// DurationBuckets are the default span-duration bounds, in seconds:
// 1us..100s in decade steps. Stage times in this repo span from sub-ms
// simulated decode slices to multi-second epoch stalls.
func DurationBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations; zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry is a named collection of instruments. The zero value is unusable;
// construct with NewRegistry. A nil *Registry is the disabled path: every
// lookup returns a nil instrument and every snapshot is empty.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil on a nil
// receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Bounds must be sorted ascending; later calls reuse the
// first registration's bounds. Nil on a nil receiver. It panics if a first
// registration passes no bounds (a programming error: an unbounded histogram
// cannot bucket anything).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %q registered with no bucket bounds", name))
		}
		b := append([]float64(nil), bounds...)
		if !sort.Float64sAreSorted(b) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterValue is one counter's snapshot entry.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot entry.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
}

// HistogramValue is one histogram's snapshot entry. Counts has one more
// element than Bounds: the trailing overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the exact mean observation, or NaN with no observations.
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, with every section sorted
// by name so renderings are deterministic.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the registry's current state. Empty on a nil receiver.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counts {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range hists {
		h.mu.Lock()
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		})
		h.mu.Unlock()
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the snapshot value of the named counter (zero if absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshot entry of the named gauge (zero-valued if
// absent).
func (s Snapshot) Gauge(name string) GaugeValue {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g
		}
	}
	return GaugeValue{Name: name}
}

// Histogram returns the snapshot entry of the named histogram and whether it
// exists.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Delta returns the per-interval difference s - prev: counters and histogram
// counts/sums subtract (instruments absent from prev pass through); gauges
// keep their current value, because a last-value instrument has no
// meaningful difference. Used for per-epoch roll-ups.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	var d Snapshot
	for _, c := range s.Counters {
		d.Counters = append(d.Counters, CounterValue{Name: c.Name, Value: c.Value - prev.Counter(c.Name)})
	}
	d.Gauges = append(d.Gauges, s.Gauges...)
	for _, h := range s.Histograms {
		hv := HistogramValue{
			Name:   h.Name,
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Count:  h.Count,
			Sum:    h.Sum,
		}
		if p, ok := prev.Histogram(h.Name); ok && len(p.Counts) == len(hv.Counts) {
			for i := range hv.Counts {
				hv.Counts[i] -= p.Counts[i]
			}
			hv.Count -= p.Count
			hv.Sum -= p.Sum
		}
		d.Histograms = append(d.Histograms, hv)
	}
	return d
}
