package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Text renders the snapshot as aligned, deterministic rows — counters,
// gauges, then histograms, each sorted by name. The layout is stable and
// golden-testable: same snapshot, same bytes.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("COUNTERS\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-44s %12d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("GAUGES\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-44s %12.3f  max %.3f\n", g.Name, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("HISTOGRAMS\n")
		for _, h := range s.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-44s count %8d  sum %12.6f  mean %12.6f\n",
				h.Name, h.Count, h.Sum, mean)
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON. Field order follows the struct
// definitions and every section is name-sorted, so the bytes are
// deterministic.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
