package obs_test

import (
	"testing"

	"scipp/internal/obs"
)

// BenchmarkNoopRegistry guards the disabled-path contract: with no registry
// configured, an instrument call must cost a single nil check (budget
// 2 ns/op per call). This is what lets the pipeline keep its instrumentation
// call sites unconditional.
func BenchmarkNoopRegistry(b *testing.B) {
	var r *obs.Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	tr := obs.NewTracer(r, nil)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(1)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(1)
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Start("stage").End()
		}
	})
}

// BenchmarkEnabledCounter is the enabled-path reference point: one atomic add.
func BenchmarkEnabledCounter(b *testing.B) {
	c := obs.NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
