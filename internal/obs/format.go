package obs

import (
	"errors"

	"scipp/internal/codec"
	"scipp/internal/fault"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// ErrorKind classifies an error for metrics: transient errors (retryable,
// errors.Is(err, fault.Transient)) versus permanent ones. The split mirrors
// the loader's resilience policy, so retry metrics reconcile against error
// metrics exactly.
func ErrorKind(err error) string {
	if errors.Is(err, fault.Transient) {
		return "transient"
	}
	return "permanent"
}

// InstrumentFormat wraps f so that every Open and chunk decode is metered
// into reg on clock, under the metric prefix "codec.<name>.":
//
//	codec.<name>.open.seconds      histogram  Open latency
//	codec.<name>.open.spans        counter    Open calls
//	codec.<name>.bytes_in          counter    encoded bytes opened
//	codec.<name>.bytes_out         counter    decoded bytes (Workload.BytesOut)
//	codec.<name>.decode.seconds    histogram  per-chunk decode latency
//	codec.<name>.decode.chunks     counter    chunks decoded
//	codec.<name>.errors.open.*     counter    Open failures by ErrorKind
//	codec.<name>.errors.decode.*   counter    DecodeChunk failures by ErrorKind
//
// Name() passes through unchanged, so the wrapper drops into any Format
// site without altering behavior. With a nil reg or clock, f is returned
// untouched — the disabled path adds zero wrapping.
func InstrumentFormat(f codec.Format, reg *Registry, clock trace.Clock) codec.Format {
	if f == nil || reg == nil || clock == nil {
		return f
	}
	prefix := "codec." + f.Name() + "."
	return &instrumentedFormat{
		inner:       f,
		clock:       clock,
		reg:         reg,
		openSecs:    reg.Histogram(prefix+"open.seconds", DurationBuckets()),
		openSpans:   reg.Counter(prefix + "open.spans"),
		bytesIn:     reg.Counter(prefix + "bytes_in"),
		bytesOut:    reg.Counter(prefix + "bytes_out"),
		decodeSecs:  reg.Histogram(prefix+"decode.seconds", DurationBuckets()),
		chunks:      reg.Counter(prefix + "decode.chunks"),
		errOpenPerm: reg.Counter(prefix + "errors.open.permanent"),
		errOpenTran: reg.Counter(prefix + "errors.open.transient"),
		errDecPerm:  reg.Counter(prefix + "errors.decode.permanent"),
		errDecTran:  reg.Counter(prefix + "errors.decode.transient"),
	}
}

type instrumentedFormat struct {
	inner codec.Format
	clock trace.Clock
	reg   *Registry

	openSecs   *Histogram
	openSpans  *Counter
	bytesIn    *Counter
	bytesOut   *Counter
	decodeSecs *Histogram
	chunks     *Counter

	errOpenPerm, errOpenTran *Counter
	errDecPerm, errDecTran   *Counter
}

// Name implements codec.Format, passing the inner name through.
func (f *instrumentedFormat) Name() string { return f.inner.Name() }

// Open implements codec.Format.
func (f *instrumentedFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	t0 := f.clock.Now()
	cd, err := f.inner.Open(blob)
	f.openSecs.Observe(f.clock.Now() - t0)
	f.openSpans.Inc()
	f.bytesIn.Add(int64(len(blob)))
	if err != nil {
		if ErrorKind(err) == "transient" {
			f.errOpenTran.Inc()
		} else {
			f.errOpenPerm.Inc()
		}
		return nil, err
	}
	f.bytesOut.Add(int64(cd.Workload().BytesOut))
	return &instrumentedDecoder{ChunkDecoder: cd, f: f}, nil
}

// instrumentedDecoder meters per-chunk decode latency and errors, delegating
// everything else to the wrapped decoder.
type instrumentedDecoder struct {
	codec.ChunkDecoder
	f *instrumentedFormat
}

// DecodeChunk implements codec.ChunkDecoder.
func (d *instrumentedDecoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	t0 := d.f.clock.Now()
	err := d.ChunkDecoder.DecodeChunk(chunk, dst)
	d.f.decodeSecs.Observe(d.f.clock.Now() - t0)
	d.f.chunks.Inc()
	if err != nil {
		if ErrorKind(err) == "transient" {
			d.f.errDecTran.Inc()
		} else {
			d.f.errDecPerm.Inc()
		}
	}
	return err
}
