package obs_test

import (
	"sync"
	"testing"

	"scipp/internal/obs"
	"scipp/internal/trace"
)

// TestRegistryConcurrent hammers one registry from many goroutines — lookups,
// instrument updates, spans, and snapshots all interleaved — the way prefetch
// workers share a registry in the pipeline. Run under -race (the obs package
// is in the repo's race gate); the final totals must also be exact.
func TestRegistryConcurrent(t *testing.T) {
	const (
		workers = 8
		iters   = 500
	)
	r := obs.NewRegistry()
	clock := &trace.VirtualClock{}
	tr := obs.NewTracer(r, clock).WithTimeline(&trace.Timeline{}, "worker")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers hold handles, half re-look names up: both
			// paths must be race-free.
			c := r.Counter("shared.count")
			h := r.Histogram("shared.lat", obs.DurationBuckets())
			for i := 0; i < iters; i++ {
				if w%2 == 0 {
					c.Add(1)
					h.Observe(0.001)
				} else {
					r.Counter("shared.count").Add(1)
					r.Histogram("shared.lat", obs.DurationBuckets()).Observe(0.001)
				}
				r.Gauge("shared.depth").Set(float64(i))
				sp := tr.Start("shared.stage")
				sp.End()
				if i%64 == 0 {
					_ = r.Snapshot() // snapshots race against writers
				}
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	want := int64(workers * iters)
	if got := s.Counter("shared.count"); got != want {
		t.Fatalf("shared.count = %d, want %d", got, want)
	}
	hv, ok := s.Histogram("shared.lat")
	if !ok || hv.Count != want {
		t.Fatalf("shared.lat count = %d, want %d", hv.Count, want)
	}
	if got := s.Counter("shared.stage.spans"); got != want {
		t.Fatalf("shared.stage.spans = %d, want %d", got, want)
	}
}
