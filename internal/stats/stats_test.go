package stats

import (
	"math"
	"testing"

	"scipp/internal/xrand"
)

func TestUniqueValues(t *testing.T) {
	data := []float32{1, 2, 2, 3, 3, 3}
	u := UniqueValues(data)
	if len(u) != 3 {
		t.Fatalf("got %d uniques, want 3", len(u))
	}
	if u[0].Value != 3 || u[0].Count != 3 {
		t.Errorf("rank 1 = %+v, want {3 3}", u[0])
	}
	if u[2].Value != 1 || u[2].Count != 1 {
		t.Errorf("rank 3 = %+v, want {1 1}", u[2])
	}
}

func TestUniqueValuesTieBreak(t *testing.T) {
	u := UniqueValues([]float32{5, 4, 4, 5})
	if u[0].Value != 4 || u[1].Value != 5 {
		t.Errorf("ties should sort by value: %+v", u)
	}
}

func TestUniqueInt16(t *testing.T) {
	data := []int16{0, 0, 1, 2, 2, 2, 7}
	if got := UniqueInt16(data); got != 4 {
		t.Errorf("UniqueInt16 = %d, want 4", got)
	}
	f := UniqueInt16Freq(data)
	if f[0].Value != 2 || f[0].Count != 3 {
		t.Errorf("rank 1 = %+v", f[0])
	}
}

func TestUniqueGroups(t *testing.T) {
	ch := [4][]int16{
		{0, 0, 1, 0},
		{1, 1, 2, 1},
		{2, 2, 3, 2},
		{3, 3, 4, 3},
	}
	if got := UniqueGroups(ch); got != 2 {
		t.Errorf("UniqueGroups = %d, want 2", got)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// Exact power law count = 1000 * rank^-1.5.
	var freqs []ValueFreq
	for r := 1; r <= 100; r++ {
		freqs = append(freqs, ValueFreq{Value: float32(r), Count: int(math.Round(1e6 * math.Pow(float64(r), -1.5)))})
	}
	fit := FitPowerLaw(freqs)
	if math.Abs(fit.Alpha-1.5) > 0.1 {
		t.Errorf("Alpha = %g, want ~1.5", fit.Alpha)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %g, want ~1", fit.R2)
	}
}

func TestFitPowerLawZipfSamples(t *testing.T) {
	// Sampled data from a Zipf distribution should fit back near alpha.
	r := xrand.New(3)
	z := xrand.NewZipf(200, 1.3)
	counts := make(map[int]int)
	for i := 0; i < 300000; i++ {
		counts[z.Sample(r)]++
	}
	var freqs []ValueFreq
	for k := 1; k <= 200; k++ {
		freqs = append(freqs, ValueFreq{Value: float32(k), Count: counts[k]})
	}
	fit := FitPowerLaw(freqs)
	if math.Abs(fit.Alpha-1.3) > 0.25 {
		t.Errorf("fitted alpha %g, want ~1.3", fit.Alpha)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if fit := FitPowerLaw(nil); fit.Alpha != 0 {
		t.Error("empty fit should be zero")
	}
	if fit := FitPowerLaw([]ValueFreq{{1, 5}}); fit.Alpha != 0 {
		t.Error("single-point fit should be zero")
	}
}

func TestRelativeErrors(t *testing.T) {
	ref := []float32{1, 2, 0, 10}
	recon := []float32{1.05, 2, 0, 8} // 5%, 0%, exact-zero, 20%
	st := RelativeErrors(ref, recon, 0.10)
	if st.N != 4 {
		t.Errorf("N = %d", st.N)
	}
	if st.CountAboveThres != 1 {
		t.Errorf("CountAboveThres = %d, want 1", st.CountAboveThres)
	}
	if math.Abs(st.FracAbove-0.25) > 1e-12 {
		t.Errorf("FracAbove = %g, want 0.25", st.FracAbove)
	}
	if math.Abs(st.MaxRel-0.2) > 1e-6 {
		t.Errorf("MaxRel = %g, want 0.2", st.MaxRel)
	}
	if math.Abs(st.MaxAbs-2) > 1e-6 {
		t.Errorf("MaxAbs = %g, want 2", st.MaxAbs)
	}
}

func TestRelativeErrorsZeroRef(t *testing.T) {
	// Nonzero reconstruction of exact zero counts as a 100% error.
	st := RelativeErrors([]float32{0}, []float32{0.5}, 0.10)
	if st.CountAboveThres != 1 || st.NearZeroAbove != 1 {
		t.Errorf("zero-ref handling: %+v", st)
	}
	// Exact zero reconstruction of zero is no error.
	st = RelativeErrors([]float32{0}, []float32{0}, 0.10)
	if st.CountAboveThres != 0 || st.MaxRel != 0 {
		t.Errorf("exact zero: %+v", st)
	}
}

func TestRelativeErrorsEmpty(t *testing.T) {
	st := RelativeErrors(nil, nil, 0.1)
	if st.N != 0 || st.MeanRel != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("summary: %+v", s)
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", s.Std, want)
	}
	if e := Summarize(nil); e.N != 0 {
		t.Error("empty summary")
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{4, 1, 3, 2}
	if got := Percentile(data, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(data, 1); got != 4 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(data, 0.5); got != 2.5 {
		t.Errorf("p50 = %g, want 2.5", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.5, 1.5, 2.5, 10, -1}, 0, 3, 3)
	if h[0] != 3 || h[1] != 1 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
	if h := Histogram(nil, 0, 0, 3); h[0] != 0 {
		t.Error("degenerate histogram")
	}
}
