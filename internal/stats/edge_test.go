package stats

// Table-driven edge cases for the distribution helpers: empty and
// single-element inputs, NaN and Inf values, and degenerate parameter
// combinations. These inputs show up in practice — an epoch with zero
// decoded samples, a codec that emits Inf on overflow — and the analysis
// layer must stay finite and well-defined (or explicitly NaN) on them.

import (
	"math"
	"testing"
)

func TestSummarizeEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	for _, tc := range []struct {
		name string
		data []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{3.5}, Summary{N: 1, Min: 3.5, Max: 3.5, Mean: 3.5}},
		{"constant", []float64{2, 2, 2, 2}, Summary{N: 4, Min: 2, Max: 2, Mean: 2}},
		{"negatives", []float64{-1, -5}, Summary{N: 2, Min: -5, Max: -1, Mean: -3, Std: 2}},
		{"posinf", []float64{1, inf}, Summary{N: 2, Min: 1, Max: inf, Mean: inf, Std: math.NaN()}},
		{"neginf", []float64{-inf, 1}, Summary{N: 2, Min: -inf, Max: 1, Mean: -inf, Std: math.NaN()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Summarize(tc.data)
			if got.N != tc.want.N {
				t.Fatalf("N = %d, want %d", got.N, tc.want.N)
			}
			for _, f := range []struct {
				name      string
				got, want float64
			}{
				{"Min", got.Min, tc.want.Min},
				{"Max", got.Max, tc.want.Max},
				{"Mean", got.Mean, tc.want.Mean},
				{"Std", got.Std, tc.want.Std},
			} {
				if f.got != f.want && !(math.IsNaN(f.got) && math.IsNaN(f.want)) {
					t.Errorf("%s = %v, want %v", f.name, f.got, f.want)
				}
			}
		})
	}
}

func TestSummarizeNaNPropagates(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if !math.IsNaN(s.Mean) || !math.IsNaN(s.Std) {
		t.Fatalf("NaN input must poison Mean/Std, got %+v", s)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []float64
		p    float64
		want float64
	}{
		{"empty", nil, 0.5, math.NaN()},
		{"single-mid", []float64{7}, 0.5, 7},
		{"single-low", []float64{7}, 0, 7},
		{"single-high", []float64{7}, 1, 7},
		{"p-below-zero", []float64{1, 2, 3}, -0.5, 1},
		{"p-above-one", []float64{1, 2, 3}, 1.5, 3},
		{"interpolated", []float64{0, 10}, 0.25, 2.5},
		{"unsorted-input", []float64{9, 1, 5}, 0.5, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Percentile(tc.data, tc.p)
			if got != tc.want && !(math.IsNaN(got) && math.IsNaN(tc.want)) {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.data, tc.p, got, tc.want)
			}
		})
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name     string
		data     []float64
		min, max float64
		nbins    int
		want     []int
	}{
		{"empty-data", nil, 0, 1, 3, []int{0, 0, 0}},
		{"zero-bins", []float64{0.5}, 0, 1, 0, []int{}},
		{"inverted-range", []float64{0.5}, 1, 0, 2, []int{0, 0}},
		{"degenerate-range", []float64{0.5}, 1, 1, 2, []int{0, 0}},
		{"clamp-low", []float64{-10}, 0, 1, 2, []int{1, 0}},
		{"clamp-high", []float64{10}, 0, 1, 2, []int{0, 1}},
		{"inf-clamps", []float64{math.Inf(-1), math.Inf(1)}, 0, 1, 2, []int{1, 1}},
		{"nan-skipped", []float64{math.NaN(), 0.25}, 0, 1, 2, []int{1, 0}},
		{"single-on-edge", []float64{1}, 0, 1, 4, []int{0, 0, 0, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Histogram(tc.data, tc.min, tc.max, tc.nbins)
			if len(got) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("bin %d = %d, want %d (%v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

func TestFitPowerLawEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name  string
		freqs []ValueFreq
	}{
		{"empty", nil},
		{"single", []ValueFreq{{Value: 1, Count: 100}}},
		{"all-zero-counts", []ValueFreq{{Count: 0}, {Count: 0}, {Count: 0}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if fit := FitPowerLaw(tc.freqs); fit != (PowerLawFit{}) {
				t.Fatalf("degenerate input fit = %+v, want zero fit", fit)
			}
		})
	}
	// Two equal ranks: regression is defined, slope 0, perfect flat line
	// (up to exp/log rounding in the intercept).
	fit := FitPowerLaw([]ValueFreq{{Count: 8}, {Count: 8}})
	if math.Abs(fit.Alpha) > 1e-12 || math.Abs(fit.C-8) > 1e-9 {
		t.Fatalf("flat fit = %+v, want alpha 0 C 8", fit)
	}
}

func TestUniqueValuesEdgeCases(t *testing.T) {
	if got := UniqueValues(nil); len(got) != 0 {
		t.Fatalf("UniqueValues(nil) = %v, want empty", got)
	}
	got := UniqueValues([]float32{5})
	if len(got) != 1 || got[0] != (ValueFreq{Value: 5, Count: 1}) {
		t.Fatalf("single value = %v", got)
	}
	// NaN != NaN, so map keying on float32 NaN may split or merge bit
	// patterns; the invariant that must hold is total count conservation.
	nan := float32(math.NaN())
	vals := []float32{nan, nan, 1}
	total := 0
	for _, vf := range UniqueValues(vals) {
		total += vf.Count
	}
	if total != len(vals) {
		t.Fatalf("NaN input lost values: counted %d of %d", total, len(vals))
	}
	if got := UniqueInt16(nil); got != 0 {
		t.Fatalf("UniqueInt16(nil) = %d, want 0", got)
	}
	if got := UniqueInt16Freq(nil); len(got) != 0 {
		t.Fatalf("UniqueInt16Freq(nil) = %v, want empty", got)
	}
}

func TestRelativeErrorsEdgeCases(t *testing.T) {
	inf := float32(math.Inf(1))
	t.Run("single-exact", func(t *testing.T) {
		st := RelativeErrors([]float32{2}, []float32{2}, 0.1)
		if st.N != 1 || st.MaxRel != 0 || st.FracAbove != 0 {
			t.Fatalf("exact single = %+v", st)
		}
	})
	t.Run("inf-ref-inf-recon", func(t *testing.T) {
		// Inf - Inf is NaN; the comparison must not report a spurious
		// above-threshold error for a faithfully reproduced Inf.
		st := RelativeErrors([]float32{inf}, []float32{inf}, 0.1)
		if st.CountAboveThres != 0 {
			t.Fatalf("identical Inf counted as error: %+v", st)
		}
	})
	t.Run("nan-does-not-panic", func(t *testing.T) {
		nan := float32(math.NaN())
		st := RelativeErrors([]float32{nan, 1}, []float32{nan, 1}, 0.1)
		if st.N != 2 {
			t.Fatalf("N = %d, want 2", st.N)
		}
	})
	t.Run("length-mismatch-panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on length mismatch")
			}
		}()
		RelativeErrors([]float32{1}, []float32{1, 2}, 0.1)
	})
}
