// Package stats implements the data-content analyses of §V of the paper:
// unique-value counting, value-frequency distributions with power-law
// fitting (Fig 5a), unique-group counting across redshift channels
// (Fig 5c), and the relative-error distributions used to validate the lossy
// DeepCAM encoding ("roughly 3% of the values with larger than 10% error").
package stats

import (
	"math"
	"sort"
)

// ValueFreq is one unique value and how many times it appears.
type ValueFreq struct {
	Value float32
	Count int
}

// UniqueValues returns the unique values in data with their frequencies,
// sorted by decreasing frequency (rank order, as in Fig 5a).
func UniqueValues(data []float32) []ValueFreq {
	m := make(map[float32]int)
	for _, v := range data {
		m[v]++
	}
	out := make([]ValueFreq, 0, len(m))
	for v, c := range m {
		out = append(out, ValueFreq{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// UniqueInt16 returns the number of unique values in data.
func UniqueInt16(data []int16) int {
	m := make(map[int16]struct{}, 512)
	for _, v := range data {
		m[v] = struct{}{}
	}
	return len(m)
}

// UniqueInt16Freq returns unique int16 values with frequencies in rank order.
func UniqueInt16Freq(data []int16) []ValueFreq {
	m := make(map[int16]int, 512)
	for _, v := range data {
		m[v]++
	}
	out := make([]ValueFreq, 0, len(m))
	for v, c := range m {
		out = append(out, ValueFreq{Value: float32(v), Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// GroupKey is a group of four values at the same voxel across the four
// redshift channels (Fig 5c).
type GroupKey [4]int16

// UniqueGroups counts the unique 4-groups across channels. channels must
// contain exactly four equal-length slices (the four redshifts).
func UniqueGroups(channels [4][]int16) int {
	n := len(channels[0])
	m := make(map[GroupKey]struct{}, 1<<14)
	for i := 0; i < n; i++ {
		m[GroupKey{channels[0][i], channels[1][i], channels[2][i], channels[3][i]}] = struct{}{}
	}
	return len(m)
}

// PowerLawFit holds the result of fitting count(rank) ≈ C * rank^-alpha.
type PowerLawFit struct {
	Alpha float64 // fitted exponent
	C     float64 // fitted scale
	R2    float64 // coefficient of determination of the log-log regression
}

// FitPowerLaw performs least-squares regression of log(count) on log(rank)
// over the rank-ordered frequencies. Ranks with zero count are skipped.
func FitPowerLaw(freqs []ValueFreq) PowerLawFit {
	var xs, ys []float64
	for i, f := range freqs {
		if f.Count <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(f.Count)))
	}
	if len(xs) < 2 {
		return PowerLawFit{}
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return PowerLawFit{}
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R^2.
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerLawFit{Alpha: -slope, C: math.Exp(intercept), R2: r2}
}

// ErrorStats summarizes elementwise relative error between a reference and a
// reconstruction.
type ErrorStats struct {
	N               int     // total values compared
	MaxRel          float64 // maximum relative error
	MeanRel         float64 // mean relative error
	FracAbove       float64 // fraction of values with relative error > threshold
	Threshold       float64 // the threshold used for FracAbove
	MaxAbs          float64 // maximum absolute error
	NearZeroAbove   int     // count of >threshold errors with |ref| < NearZeroCut
	NearZeroCut     float64 // the magnitude below which a value counts as near zero
	CountAboveThres int     // absolute count above threshold
}

// RelativeErrors compares recon against ref, using threshold for the
// "fraction above" statistic (the paper uses 10%). Values with |ref| == 0 use
// absolute error against the smallest-normal FP16 scale so zeros do not
// produce infinite relative errors. It panics if the slices differ in
// length (programmer invariant: both sides come from one round-trip).
func RelativeErrors(ref, recon []float32, threshold float64) ErrorStats {
	if len(ref) != len(recon) {
		panic("stats: length mismatch")
	}
	const nearZeroCut = 1e-3
	st := ErrorStats{N: len(ref), Threshold: threshold, NearZeroCut: nearZeroCut}
	if len(ref) == 0 {
		return st
	}
	var sumRel float64
	for i := range ref {
		r := float64(ref[i])
		d := math.Abs(float64(recon[i]) - r)
		if d > st.MaxAbs {
			st.MaxAbs = d
		}
		var rel float64
		if ar := math.Abs(r); ar > 0 {
			rel = d / ar
		} else if d > 0 {
			rel = 1 // a nonzero reconstruction of an exact zero: count as 100%
		}
		sumRel += rel
		if rel > st.MaxRel {
			st.MaxRel = rel
		}
		if rel > threshold {
			st.CountAboveThres++
			if math.Abs(r) < nearZeroCut {
				st.NearZeroAbove++
			}
		}
	}
	st.MeanRel = sumRel / float64(len(ref))
	st.FracAbove = float64(st.CountAboveThres) / float64(len(ref))
	return st
}

// Summary holds basic distribution statistics.
type Summary struct {
	N              int
	Min, Max, Mean float64
	Std            float64
}

// Summarize computes min/max/mean/std of data.
func Summarize(data []float64) Summary {
	s := Summary{N: len(data)}
	if len(data) == 0 {
		return s
	}
	s.Min, s.Max = data[0], data[0]
	var sum float64
	for _, v := range data {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(data))
	var ss float64
	for _, v := range data {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(data)))
	return s
}

// Percentile returns the p-quantile (0..1) of data using linear
// interpolation on the sorted copy.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram builds a fixed-width histogram of data over [min, max] with
// nbins buckets; out-of-range values (including ±Inf) clamp into the edge
// buckets and NaN values are skipped. The clamping happens before the
// float-to-int conversion so ±Inf cannot overflow into the wrong bucket.
func Histogram(data []float64, min, max float64, nbins int) []int {
	h := make([]int, nbins)
	if max <= min || nbins == 0 {
		return h
	}
	w := (max - min) / float64(nbins)
	for _, v := range data {
		if math.IsNaN(v) {
			continue
		}
		var i int
		switch f := (v - min) / w; {
		case f < 0:
			i = 0
		case f >= float64(nbins):
			i = nbins - 1
		default:
			i = int(f)
		}
		h[i]++
	}
	return h
}
