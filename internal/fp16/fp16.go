// Package fp16 implements IEEE 754 binary16 (half-precision) conversion and
// slice kernels.
//
// The paper's decoders emit half-precision samples to feed mixed-precision
// training pipelines ("a floating-point format not supported by the
// decompression frameworks we are aware of", §III). Go has no native float16,
// so this package provides software conversion with round-to-nearest-even,
// full denormal support, and Inf/NaN propagation, plus bulk conversion
// kernels used on the (simulated) accelerator and host decode paths.
package fp16

import "math"

// Bits is a raw IEEE 754 binary16 value. The zero value is +0.
type Bits uint16

const (
	// PositiveInfinity and NegativeInfinity are the binary16 infinities.
	PositiveInfinity Bits = 0x7C00
	NegativeInfinity Bits = 0xFC00
	// QuietNaN is a canonical binary16 NaN.
	QuietNaN Bits = 0x7E00

	signMask16 = 0x8000
	expMask16  = 0x7C00
	manMask16  = 0x03FF

	// MaxValue is the largest finite binary16 value (65504).
	MaxValue float32 = 65504
	// SmallestNormal is the smallest positive normal binary16 value (2^-14).
	SmallestNormal float32 = 6.103515625e-05
	// SmallestSubnormal is the smallest positive binary16 value (2^-24).
	SmallestSubnormal float32 = 5.9604644775390625e-08
)

// FromFloat32 converts an FP32 value to binary16 with round-to-nearest-even.
// Values exceeding the binary16 range become infinities; NaN payload top bit
// is forced so NaNs stay NaNs.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := Bits(b>>16) & signMask16
	exp := int32(b>>23) & 0xFF
	man := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if man != 0 {
			// NaN: keep top mantissa bits, force quiet bit.
			return sign | expMask16 | 0x0200 | Bits(man>>13)
		}
		return sign | expMask16
	case exp == 0 && man == 0: // signed zero
		return sign
	}

	// Unbiased exponent.
	e := exp - 127
	switch {
	case e > 15: // overflow -> Inf
		return sign | expMask16
	case e >= -14: // normal range
		m := man >> 13
		// Round to nearest even on the 13 dropped bits.
		rem := man & 0x1FFF
		half := uint32(0x1000)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		h := (uint32(e+15) << 10) + m // mantissa carry may bump exponent; that is correct
		if h >= 0x7C00 {
			return sign | expMask16
		}
		return sign | Bits(h)
	case e >= -25: // subnormal range (incl. values that may round up to 2^-24)
		// Implicit leading 1 becomes explicit; shift right by the deficit.
		man |= 0x800000
		shift := uint32(-e - 14 + 13) // total bits dropped
		m := man >> shift
		dropped := man & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if dropped > half || (dropped == half && m&1 == 1) {
			m++
		}
		// m may round up to the smallest normal; the encoding is contiguous
		// so simple addition is still correct.
		return sign | Bits(m)
	default: // underflow to signed zero
		return sign
	}
}

// ToFloat32 converts a binary16 value to FP32 exactly (every binary16 value
// is representable in FP32).
func (h Bits) ToFloat32() float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h&expMask16) >> 10
	man := uint32(h & manMask16)

	switch {
	case exp == 0x1F: // Inf/NaN
		return math.Float32frombits(sign | 0x7F800000 | man<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	case man != 0: // subnormal: value = man * 2^-24
		// Normalize into FP32.
		e := uint32(113)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= manMask16
		return math.Float32frombits(sign | e<<23 | man<<13)
	default: // signed zero
		return math.Float32frombits(sign)
	}
}

// IsNaN reports whether h is a NaN.
func (h Bits) IsNaN() bool {
	return h&expMask16 == expMask16 && h&manMask16 != 0
}

// IsInf reports whether h is an infinity. sign > 0 checks +Inf, sign < 0
// checks -Inf, sign == 0 checks either.
func (h Bits) IsInf(sign int) bool {
	if h&expMask16 != expMask16 || h&manMask16 != 0 {
		return false
	}
	neg := h&signMask16 != 0
	return sign == 0 || (sign > 0 && !neg) || (sign < 0 && neg)
}

// Neg returns h with its sign flipped.
func (h Bits) Neg() Bits { return h ^ signMask16 }

// FromSlice converts src FP32 values into dst binary16 values.
// It panics if dst is shorter than src.
func FromSlice(dst []Bits, src []float32) {
	_ = dst[:len(src)]
	for i, f := range src {
		dst[i] = FromFloat32(f)
	}
}

// ToSlice converts src binary16 values into dst FP32 values.
// It panics if dst is shorter than src.
func ToSlice(dst []float32, src []Bits) {
	_ = dst[:len(src)]
	for i, h := range src {
		dst[i] = h.ToFloat32()
	}
}

// RoundTrip32 returns f after an FP32 -> binary16 -> FP32 round trip. It is
// the quantization the mixed-precision sample path applies.
func RoundTrip32(f float32) float32 { return FromFloat32(f).ToFloat32() }

// ULP returns the spacing between h and the next representable binary16
// value of larger magnitude, as an FP32 value. For Inf/NaN it returns NaN.
func (h Bits) ULP() float32 {
	if h&expMask16 == expMask16 {
		return float32(math.NaN())
	}
	exp := int32(h&expMask16) >> 10
	if exp == 0 {
		return SmallestSubnormal
	}
	// ulp = 2^(e-10) with e = exp-15.
	return float32(math.Ldexp(1, int(exp-15-10)))
}
