package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h Bits
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{0.25, 0x3400},
		{1.5, 0x3E00},
		{65504, 0x7BFF},                  // max finite
		{-65504, 0xFBFF},                 // min finite
		{6.103515625e-05, 0x0400},        // smallest normal
		{5.9604644775390625e-08, 0x0001}, // smallest subnormal
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := c.h.ToFloat32(); got != c.f {
			t.Errorf("Bits(%#04x).ToFloat32() = %g, want %g", c.h, got, c.f)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(65520); got != PositiveInfinity {
		// 65520 is the rounding boundary: rounds to 65536 which overflows.
		t.Errorf("FromFloat32(65520) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(1e10); got != PositiveInfinity {
		t.Errorf("FromFloat32(1e10) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(-1e10); got != NegativeInfinity {
		t.Errorf("FromFloat32(-1e10) = %#04x, want -Inf", got)
	}
	// 65519.996 rounds down to 65504 and must stay finite.
	if got := FromFloat32(65519); got != 0x7BFF {
		t.Errorf("FromFloat32(65519) = %#04x, want 0x7BFF", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	tiny := float32(1e-10)
	if got := FromFloat32(tiny); got != 0 {
		t.Errorf("FromFloat32(%g) = %#04x, want +0", tiny, got)
	}
	if got := FromFloat32(-tiny); got != 0x8000 {
		t.Errorf("FromFloat32(%g) = %#04x, want -0", -tiny, got)
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("FromFloat32(NaN) = %#04x, not NaN", h)
	}
	f := h.ToFloat32()
	if !math.IsNaN(float64(f)) {
		t.Errorf("NaN did not survive round trip: %g", f)
	}
	if QuietNaN.ToFloat32() == QuietNaN.ToFloat32() {
		t.Error("QuietNaN compares equal to itself as float")
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; ties go to even
	// mantissa (0), i.e. down to 1.0.
	f := float32(1 + math.Ldexp(1, -11))
	if got := FromFloat32(f); got != 0x3C00 {
		t.Errorf("halfway tie: got %#04x, want 0x3C00 (1.0)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; tie to even rounds up
	// to 1+2^-9 (mantissa 2).
	f = float32(1 + 3*math.Ldexp(1, -11))
	if got := FromFloat32(f); got != 0x3C02 {
		t.Errorf("halfway tie up: got %#04x, want 0x3C02", got)
	}
	// Just above halfway rounds up.
	f = float32(1 + math.Ldexp(1, -11) + math.Ldexp(1, -20))
	if got := FromFloat32(f); got != 0x3C01 {
		t.Errorf("above halfway: got %#04x, want 0x3C01", got)
	}
}

func TestSubnormalRounding(t *testing.T) {
	// Halfway between 0 and the smallest subnormal rounds to even (zero).
	f := float32(math.Ldexp(1, -25))
	if got := FromFloat32(f); got != 0 {
		t.Errorf("2^-25 should round to +0, got %#04x", got)
	}
	// Slightly above rounds to the smallest subnormal.
	f = float32(math.Ldexp(1, -25) * 1.0001)
	if got := FromFloat32(f); got != 1 {
		t.Errorf("just above 2^-25 should round to 0x0001, got %#04x", got)
	}
	// Subnormal that rounds up into the normal range.
	f = SmallestNormal - SmallestSubnormal/4
	if got := FromFloat32(f); got != 0x0400 {
		t.Errorf("near-normal subnormal should round to smallest normal, got %#04x", got)
	}
}

func TestAllBitsRoundTrip(t *testing.T) {
	// Every non-NaN binary16 value must survive fp16 -> fp32 -> fp16 exactly.
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		if h.IsNaN() {
			continue
		}
		f := h.ToFloat32()
		back := FromFloat32(f)
		if back != h {
			t.Fatalf("bits %#04x -> %g -> %#04x not identity", h, f, back)
		}
	}
}

func TestMonotonicity(t *testing.T) {
	// ToFloat32 must be strictly increasing over positive bit patterns.
	prev := Bits(0).ToFloat32()
	for i := 1; i < 0x7C00; i++ {
		cur := Bits(i).ToFloat32()
		if cur <= prev {
			t.Fatalf("not monotonic at %#04x: %g <= %g", i, cur, prev)
		}
		prev = cur
	}
}

func TestQuickRoundTripError(t *testing.T) {
	// Property: for finite in-range inputs the round-trip relative error is
	// bounded by 2^-11 (half ULP of the 10-bit mantissa).
	f := func(u uint32) bool {
		x := math.Float32frombits(u)
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		ax := math.Abs(float64(x))
		if ax > float64(MaxValue) || ax < float64(SmallestNormal) {
			return true // out of the normal range; covered elsewhere
		}
		y := RoundTrip32(x)
		rel := math.Abs(float64(y)-float64(x)) / ax
		return rel <= math.Ldexp(1, -11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderPreserving(t *testing.T) {
	// Property: conversion preserves <= ordering.
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		fa, fb := RoundTrip32(a), RoundTrip32(b)
		if a <= b {
			return fa <= fb
		}
		return fa >= fb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestSliceKernels(t *testing.T) {
	src := []float32{0, 1, -2.5, 3.14159, 65504, 1e-8}
	dst := make([]Bits, len(src))
	FromSlice(dst, src)
	back := make([]float32, len(src))
	ToSlice(back, dst)
	for i := range src {
		want := RoundTrip32(src[i])
		if back[i] != want {
			t.Errorf("slice kernel idx %d: got %g want %g", i, back[i], want)
		}
	}
}

func TestIsInfNeg(t *testing.T) {
	if !PositiveInfinity.IsInf(1) || !PositiveInfinity.IsInf(0) || PositiveInfinity.IsInf(-1) {
		t.Error("PositiveInfinity IsInf misclassified")
	}
	if !NegativeInfinity.IsInf(-1) || !NegativeInfinity.IsInf(0) || NegativeInfinity.IsInf(1) {
		t.Error("NegativeInfinity IsInf misclassified")
	}
	if PositiveInfinity.Neg() != NegativeInfinity {
		t.Error("Neg of +Inf is not -Inf")
	}
	if QuietNaN.IsInf(0) {
		t.Error("NaN reported as Inf")
	}
}

func TestULP(t *testing.T) {
	if got := FromFloat32(1).ULP(); got != float32(math.Ldexp(1, -10)) {
		t.Errorf("ULP(1.0) = %g, want 2^-10", got)
	}
	if got := Bits(0x0001).ULP(); got != SmallestSubnormal {
		t.Errorf("ULP(subnormal) = %g, want smallest subnormal", got)
	}
	if !math.IsNaN(float64(PositiveInfinity.ULP())) {
		t.Error("ULP(+Inf) should be NaN")
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	src := make([]float32, 4096)
	for i := range src {
		src[i] = float32(i) * 0.37
	}
	dst := make([]Bits, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromSlice(dst, src)
	}
}

func BenchmarkToFloat32(b *testing.B) {
	src := make([]Bits, 4096)
	for i := range src {
		src[i] = Bits(i * 7)
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ToSlice(dst, src)
	}
}
