// Package fault is a deterministic fault-injection layer for the data
// pipeline. The paper's decoders run against samples staged through shared
// parallel filesystems and node-local NVMe (§VI), where bit rot, truncated
// stage-ins, and transient I/O errors are routine at scale; this package
// reproduces those failure modes on demand so the loader's resilience policy
// (pipeline.Resilience) can be exercised and asserted on.
//
// Injectors wrap a pipeline Dataset (Wrap) or a codec.Format (WrapFormat).
// Every injection decision is a pure function of (Config.Seed, sample) — not
// of access order or goroutine scheduling — so a given seed produces the
// identical fault pattern on every run, and the injection log is queryable
// after the fact for exact accounting against Iterator.Stats.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"scipp/internal/codec"
	"scipp/internal/tensor"
	"scipp/internal/trace"
	"scipp/internal/xrand"
)

// Transient classifies an error as retryable: the failure is expected to
// clear on a re-read (a flaky NFS mount, a stage-in that has not landed yet).
// The loader's resilience policy retries errors for which
// errors.Is(err, Transient) holds and treats everything else as permanent.
var Transient = errors.New("transient fault")

// MarkTransient wraps err so that errors.Is(err, Transient) reports true
// while errors.Is/As against err's own chain keep working. Datasets outside
// this package use it to tag their own retryable I/O errors.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }

// Unwrap exposes both the wrapped error and the Transient marker.
func (e *transientErr) Unwrap() []error { return []error{e.err, Transient} }

// Kind enumerates the injected failure modes.
type Kind int

// The failure modes, in the order Config probabilities are drawn.
const (
	// Corrupt flips a few bytes of the blob on every access (bit rot).
	Corrupt Kind = iota
	// Truncate cuts the blob short on every access (interrupted stage-in).
	Truncate
	// TransientIO fails the first TransientFailures accesses with a
	// Transient-marked error, then succeeds (flaky mount, cold cache).
	TransientIO
	// Lost fails every access with a permanent error (evicted or missing
	// object).
	Lost
	// Latency delivers the blob intact after a stall of LatencySeconds on
	// the configured clock (straggling storage server).
	Latency

	numDataKinds

	// CrashRank fail-stops a training rank at a chosen step (node OOM,
	// hardware loss): the rank announces its departure and never returns.
	CrashRank
	// HangRank silently wedges a training rank at a chosen step (network
	// partition, stuck device): no announcement, only the communicator's
	// collective deadline can detect it.
	HangRank
	// SlowRank stalls a training rank for SlowSeconds before a step
	// (thermal throttling, noisy neighbor), feeding straggler detection.
	SlowRank

	// StagePanic crashes a pipeline stage worker mid-sample (a decoder bug,
	// an OOM-killed helper): the worker panics while holding the sample, so
	// only the stage supervisor's recovery path can save the epoch.
	StagePanic
	// StageStall wedges a pipeline stage worker indefinitely (a hung NFS
	// read, a dead stage-in daemon): the sample never completes, so only
	// the stall watchdog can detect and route around it.
	StageStall
	// CacheBitRot silently flips bytes of a sample resident in the staged
	// sample cache (NVMe bit rot, DMA corruption): the storage copy stays
	// intact, so cache-integrity verification must catch it on the hit.
	CacheBitRot

	// TierIO fails one NVMe-tier access of a chosen sample (a flaky cell,
	// a timed-out device command): the cache drops the resident and
	// charges the tier's health.
	TierIO
	// TierSlow delivers an NVMe-tier access only after a stall on the
	// configured clock (degraded-bandwidth mode: a device throttling or
	// resilvering).
	TierSlow
	// TierDead fails every NVMe-tier access after the device dies (pulled
	// drive, controller loss): only the cache's failover to HostMem-only
	// mode keeps samples flowing, and only its recovery probes notice the
	// tier coming back.
	TierDead

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case TransientIO:
		return "transient"
	case Lost:
		return "lost"
	case Latency:
		return "latency"
	case CrashRank:
		return "crash-rank"
	case HangRank:
		return "hang-rank"
	case SlowRank:
		return "slow-rank"
	case StagePanic:
		return "stage-panic"
	case StageStall:
		return "stage-stall"
	case CacheBitRot:
		return "cache-bitrot"
	case TierIO:
		return "tier-io"
	case TierSlow:
		return "tier-slow"
	case TierDead:
		return "tier-dead"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config sets the per-sample fault probabilities. Each sample draws at most
// one fault kind, deterministically from Seed, so the probabilities must sum
// to at most 1.
type Config struct {
	// Seed drives every injection decision; same seed, same faults.
	Seed uint64
	// Corrupt is the probability a sample's blob has bytes flipped.
	Corrupt float64
	// Truncate is the probability a sample's blob is cut short.
	Truncate float64
	// Transient is the probability a sample fails its first
	// TransientFailures accesses with a retryable error.
	Transient float64
	// Lost is the probability a sample is permanently unreadable.
	Lost float64
	// Latency is the probability a sample's delivery stalls.
	Latency float64
	// TransientFailures is how many accesses a TransientIO sample fails
	// before recovering (default 2).
	TransientFailures int
	// LatencySeconds is the stall injected on Latency samples (default
	// 0.05). The stall passes through Clock when it implements
	// trace.Sleeper, so simulated runs stall in virtual time.
	LatencySeconds float64
	// Clock, when non-nil and a trace.Sleeper, absorbs Latency stalls.
	Clock trace.Clock
}

func (c Config) withDefaults() Config {
	if c.TransientFailures <= 0 {
		c.TransientFailures = 2
	}
	if c.LatencySeconds <= 0 {
		c.LatencySeconds = 0.05
	}
	return c
}

// decide returns the fault kind assigned to sample i, if any. It is a pure
// function of (Seed, i): access order and concurrency cannot change it.
func (c Config) decide(i int) (Kind, bool) {
	rng := xrand.New(c.Seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
	u := rng.Float64()
	for k, p := range [numDataKinds]float64{c.Corrupt, c.Truncate, c.Transient, c.Lost, c.Latency} {
		if u < p {
			return Kind(k), true
		}
		u -= p
	}
	return 0, false
}

// damageRNG derives the per-sample stream that picks corruption/truncation
// sites, independent of the decision stream so the same bytes are damaged on
// every access.
func (c Config) damageRNG(i int) *xrand.RNG {
	return xrand.New(c.Seed ^ (uint64(i)+1)*0xBF58476D1CE4E5B9)
}

// Injection is one logged fault event: sample's access number `Access`
// (1-based) hit fault `Kind`. Format-level injections (WrapFormat) carry the
// blob hash in Key and Sample == -1. Rank-level injections (RankInjector)
// carry the training rank and step and use Sample == -1, Rank/Step >= 0;
// data-path injections have Rank == Step == -1.
type Injection struct {
	// Sample is the dataset index, or -1 for format- and rank-level
	// injections.
	Sample int
	// Key is the blob hash for format-level injections, 0 otherwise.
	Key uint64
	// Access is the 1-based per-sample access count when the fault fired;
	// 0 for rank-level injections.
	Access int
	// Kind is the injected failure mode.
	Kind Kind
	// Rank is the training rank for rank-level injections, -1 otherwise.
	Rank int
	// Step is the training step for rank-level injections, -1 otherwise.
	Step int
}

// Summary aggregates an injection log.
type Summary struct {
	// Events counts faulty accesses by Kind.
	Events [numKinds]int
	// Samples counts distinct faulted samples (or blobs) by Kind.
	Samples [numKinds]int
}

// Of returns the (events, samples) pair for one kind.
func (s Summary) Of(k Kind) (events, samples int) { return s.Events[k], s.Samples[k] }

// log is the shared injection record of both injector flavors.
type log struct {
	mu     sync.Mutex
	events []Injection
	access map[int]int    // per-sample access counts (dataset injector)
	keyAcc map[uint64]int // per-blob access counts (format injector)
}

func newLog() *log {
	return &log{
		access: make(map[int]int),
		keyAcc: make(map[uint64]int),
	}
}

func (l *log) bumpSample(i int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.access[i]++
	return l.access[i]
}

func (l *log) bumpKey(k uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.keyAcc[k]++
	return l.keyAcc[k]
}

func (l *log) record(inj Injection) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, inj)
}

// snapshot returns the events sorted by (Sample, Key, Rank, Step, Access,
// Kind): access order under a concurrent loader is scheduler-dependent, so
// the log is exposed in a canonical order to keep same-seed runs comparable.
func (l *log) snapshot() []Injection {
	l.mu.Lock()
	out := append([]Injection(nil), l.events...)
	l.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Sample != y.Sample {
			return x.Sample < y.Sample
		}
		if x.Key != y.Key {
			return x.Key < y.Key
		}
		if x.Rank != y.Rank {
			return x.Rank < y.Rank
		}
		if x.Step != y.Step {
			return x.Step < y.Step
		}
		if x.Access != y.Access {
			return x.Access < y.Access
		}
		return x.Kind < y.Kind
	})
	return out
}

func (l *log) summary() Summary {
	var s Summary
	seen := make(map[[4]uint64]bool)
	for _, inj := range l.snapshot() {
		s.Events[inj.Kind]++
		id := [4]uint64{uint64(inj.Sample) + 1, inj.Key, uint64(inj.Rank) + 1, uint64(inj.Kind)}
		if !seen[id] {
			seen[id] = true
			s.Samples[inj.Kind]++
		}
	}
	return s
}

// Dataset is the indexed-sample contract the injector wraps. It is
// structurally identical to pipeline.Dataset (declared here to keep this
// package importable from the pipeline without a cycle).
type Dataset interface {
	Len() int
	Blob(i int) ([]byte, error)
	Label(i int) (*tensor.Tensor, error)
}

// Injector wraps a Dataset, injecting faults on Blob accesses per its
// Config. It implements the same Dataset contract, so it drops into
// pipeline.New unchanged.
type Injector struct {
	ds  Dataset
	cfg Config
	log *log
}

// Wrap returns an Injector over ds configured by cfg.
func Wrap(ds Dataset, cfg Config) *Injector {
	return &Injector{ds: ds, cfg: cfg.withDefaults(), log: newLog()}
}

// Len implements Dataset.
func (in *Injector) Len() int { return in.ds.Len() }

// Label implements Dataset; labels pass through unfaulted (the failure modes
// under study are blob-side: the label path is exercised directly in tests).
func (in *Injector) Label(i int) (*tensor.Tensor, error) { return in.ds.Label(i) }

// Blob implements Dataset, applying sample i's assigned fault, if any.
func (in *Injector) Blob(i int) ([]byte, error) {
	kind, ok := in.cfg.decide(i)
	if !ok {
		return in.ds.Blob(i)
	}
	access := in.log.bumpSample(i)
	note := func(k Kind) {
		in.log.record(Injection{Sample: i, Access: access, Kind: k, Rank: -1, Step: -1})
	}
	switch kind {
	case TransientIO:
		if access <= in.cfg.TransientFailures {
			note(TransientIO)
			return nil, MarkTransient(fmt.Errorf("fault: sample %d: injected transient I/O error (access %d)", i, access))
		}
		return in.ds.Blob(i)
	case Lost:
		note(Lost)
		return nil, fmt.Errorf("fault: sample %d: injected permanent loss", i)
	case Latency:
		note(Latency)
		if s, isSleeper := in.cfg.Clock.(trace.Sleeper); isSleeper {
			s.Sleep(in.cfg.LatencySeconds)
		}
		return in.ds.Blob(i)
	}
	blob, err := in.ds.Blob(i)
	if err != nil {
		return nil, err
	}
	note(kind)
	return damage(blob, kind, in.cfg.damageRNG(i)), nil
}

// Log returns the injection events so far, in canonical order.
func (in *Injector) Log() []Injection { return in.log.snapshot() }

// Summary aggregates the injection events so far.
func (in *Injector) Summary() Summary { return in.log.summary() }

// damage applies Corrupt or Truncate to a copy of blob, deterministically
// under rng.
func damage(blob []byte, kind Kind, rng *xrand.RNG) []byte {
	if len(blob) == 0 {
		return blob
	}
	if kind == Truncate {
		return blob[:rng.Intn(len(blob))]
	}
	out := append([]byte(nil), blob...)
	flips := 1 + rng.Intn(4)
	for f := 0; f < flips; f++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	return out
}

// hashBlob is FNV-1a over the blob: the format injector's stand-in for a
// sample identity, since Format.Open sees only bytes.
func hashBlob(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// FormatInjector wraps a codec.Format, faulting blobs at Open time — the
// layer where decode-side corruption (as opposed to storage-side) lands.
type FormatInjector struct {
	f   codec.Format
	cfg Config
	log *log
}

// WrapFormat returns a FormatInjector over f configured by cfg. Injection
// decisions key off a hash of the blob (Open has no sample index), so they
// are deterministic per blob content.
func WrapFormat(f codec.Format, cfg Config) *FormatInjector {
	return &FormatInjector{f: f, cfg: cfg.withDefaults(), log: newLog()}
}

// Name implements codec.Format.
func (fi *FormatInjector) Name() string { return fi.f.Name() + "+fault" }

// Open implements codec.Format, applying the blob's assigned fault first.
func (fi *FormatInjector) Open(blob []byte) (codec.ChunkDecoder, error) {
	key := hashBlob(blob)
	cfg := fi.cfg
	cfg.Seed ^= key
	kind, ok := cfg.decide(0)
	if !ok {
		return fi.f.Open(blob)
	}
	access := fi.log.bumpKey(key)
	note := func(k Kind) {
		fi.log.record(Injection{Sample: -1, Key: key, Access: access, Kind: k, Rank: -1, Step: -1})
	}
	switch kind {
	case TransientIO:
		if access <= cfg.TransientFailures {
			note(TransientIO)
			return nil, MarkTransient(fmt.Errorf("fault: blob %016x: injected transient open failure (access %d)", key, access))
		}
		return fi.f.Open(blob)
	case Lost:
		note(Lost)
		return nil, fmt.Errorf("fault: blob %016x: injected permanent loss", key)
	case Latency:
		note(Latency)
		if s, isSleeper := cfg.Clock.(trace.Sleeper); isSleeper {
			s.Sleep(cfg.LatencySeconds)
		}
		return fi.f.Open(blob)
	}
	note(kind)
	return fi.f.Open(damage(blob, kind, cfg.damageRNG(0)))
}

// Log returns the injection events so far, in canonical order.
func (fi *FormatInjector) Log() []Injection { return fi.log.snapshot() }

// Summary aggregates the injection events so far.
func (fi *FormatInjector) Summary() Summary { return fi.log.summary() }
