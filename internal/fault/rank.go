// Rank-level fault injection: the failure modes of the *training* path —
// crashed, hung, and throttled ranks — driven by the same deterministic
// seeded machinery and the same queryable injection log as the data-path
// injectors, so a chaos run's evictions reconcile exactly against the log.
package fault

import (
	"scipp/internal/trace"
	"scipp/internal/xrand"
)

// RankConfig sets per-rank fault plans. Faults come from two sources that
// compose: explicit pins (CrashAt/HangAt/SlowAt name exact rank→step plans,
// the tool for acceptance tests) and seeded draws (per-(rank,step)
// probabilities, pure functions of Seed). A rank draws at most one kind per
// step; the probabilities must sum to at most 1.
type RankConfig struct {
	// Seed drives every probabilistic decision; same seed, same faults.
	Seed uint64
	// CrashRate is the per-step probability a rank fail-stops.
	CrashRate float64
	// HangRate is the per-step probability a rank silently wedges.
	HangRate float64
	// SlowRate is the per-step probability a rank stalls for SlowSeconds.
	SlowRate float64
	// CrashAt pins rank -> step fail-stop plans; overrides seeded draws.
	CrashAt map[int]int
	// HangAt pins rank -> step hang plans; overrides seeded draws.
	HangAt map[int]int
	// SlowAt pins rank -> step stall plans; overrides seeded draws.
	SlowAt map[int]int
	// SlowSeconds is the stall injected on SlowRank faults (default 0.05).
	// It passes through Clock when it implements trace.Sleeper.
	SlowSeconds float64
	// Clock, when non-nil and a trace.Sleeper, absorbs SlowRank stalls.
	Clock trace.Clock
}

func (c RankConfig) withDefaults() RankConfig {
	if c.SlowSeconds <= 0 {
		c.SlowSeconds = 0.05
	}
	return c
}

// decide returns the fault assigned to (rank, step), if any: pinned plans
// first, then a seeded draw — a pure function of (Seed, rank, step), so
// neither scheduling nor retry order can change the fault pattern.
func (c RankConfig) decide(rank, step int) (Kind, bool) {
	if s, ok := c.CrashAt[rank]; ok && s == step {
		return CrashRank, true
	}
	if s, ok := c.HangAt[rank]; ok && s == step {
		return HangRank, true
	}
	if s, ok := c.SlowAt[rank]; ok && s == step {
		return SlowRank, true
	}
	if c.CrashRate <= 0 && c.HangRate <= 0 && c.SlowRate <= 0 {
		return 0, false
	}
	rng := xrand.New(c.Seed ^ (uint64(rank)+1)*0x9E3779B97F4A7C15 ^ (uint64(step)+1)*0xD1B54A32D192ED03)
	u := rng.Float64()
	for i, p := range [3]float64{c.CrashRate, c.HangRate, c.SlowRate} {
		if u < p {
			return CrashRank + Kind(i), true
		}
		u -= p
	}
	return 0, false
}

// RankInjector hands the elastic trainer its per-(rank,step) fault plan and
// records every fired fault in the canonical injection log.
type RankInjector struct {
	cfg RankConfig
	log *log
}

// NewRankInjector returns an injector over cfg.
func NewRankInjector(cfg RankConfig) *RankInjector {
	return &RankInjector{cfg: cfg.withDefaults(), log: newLog()}
}

// At returns the fault rank must suffer before executing step, logging it.
// SlowRank stalls are absorbed here (through the configured clock) before
// returning, mirroring the Latency data fault; CrashRank and HangRank are
// returned for the caller to act out, since only the training loop can
// fail-stop or wedge its own rank. Call At once per (rank, step): every
// call that hits a fault appends one log event.
func (ri *RankInjector) At(rank, step int) (Kind, bool) {
	kind, ok := ri.cfg.decide(rank, step)
	if !ok {
		return 0, false
	}
	ri.log.record(Injection{Sample: -1, Kind: kind, Rank: rank, Step: step})
	if kind == SlowRank {
		if s, isSleeper := ri.cfg.Clock.(trace.Sleeper); isSleeper {
			s.Sleep(ri.cfg.SlowSeconds)
		}
	}
	return kind, true
}

// Plan returns the fault for (rank, step) without logging or stalling —
// the read-only view for reconciling results against expectations.
func (ri *RankInjector) Plan(rank, step int) (Kind, bool) {
	return ri.cfg.decide(rank, step)
}

// Log returns the injection events so far, in canonical order.
func (ri *RankInjector) Log() []Injection { return ri.log.snapshot() }

// Summary aggregates the injection events so far.
func (ri *RankInjector) Summary() Summary { return ri.log.summary() }
