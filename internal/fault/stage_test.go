package fault

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// stageDS is a minimal in-memory Dataset for the stage-injector tests.
type stageDS struct{ n int }

func (d stageDS) Len() int { return d.n }
func (d stageDS) Blob(i int) ([]byte, error) {
	return []byte{byte(i), byte(i + 1)}, nil
}
func (d stageDS) Label(i int) (*tensor.Tensor, error) {
	lb := tensor.New(tensor.F32, 1)
	lb.F32s[0] = float32(i)
	return lb, nil
}

// panickedIndices sweeps the dataset once, recovering injected panics, and
// returns which samples panicked.
func panickedIndices(t *testing.T, in *StageInjector) []int {
	t.Helper()
	var panicked []int
	for i := 0; i < in.Len(); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !strings.Contains(r.(string), "injected stage panic") {
						t.Fatalf("unexpected panic value %v", r)
					}
					panicked = append(panicked, i)
				}
			}()
			if _, err := in.Blob(i); err != nil {
				t.Fatalf("Blob(%d): %v", i, err)
			}
		}()
	}
	return panicked
}

func TestStageInjectorPanicRecoversAfterBudget(t *testing.T) {
	in := WrapStage(stageDS{n: 64}, StageFaultConfig{Seed: 11, Panic: 0.25})
	first := panickedIndices(t, in)
	if len(first) == 0 {
		t.Fatal("no panics injected at p=0.25 over 64 samples")
	}
	// Second access of every sample: PanicEvents defaults to 1, so every
	// panicked sample now reads cleanly and returns the pristine blob.
	for _, i := range first {
		blob, err := in.Blob(i)
		if err != nil || blob[0] != byte(i) {
			t.Fatalf("sample %d after recovery: blob %v err %v", i, blob, err)
		}
	}
	if got := len(in.Log()); got != len(first) {
		t.Fatalf("log has %d events, want %d", got, len(first))
	}
	ev, samples := in.Summary().Of(StagePanic)
	if ev != len(first) || samples != len(first) {
		t.Fatalf("summary (%d events, %d samples), want %d each", ev, samples, len(first))
	}
}

func TestStageInjectorDeterministicAcrossRuns(t *testing.T) {
	cfg := StageFaultConfig{Seed: 7, Panic: 0.2, Stall: 0}
	a := panickedIndices(t, WrapStage(stageDS{n: 96}, cfg))
	b := panickedIndices(t, WrapStage(stageDS{n: 96}, cfg))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different panic sets: %v vs %v", a, b)
	}
	if got := panickedIndices(t, WrapStage(stageDS{n: 96}, StageFaultConfig{Seed: 8, Panic: 0.2})); reflect.DeepEqual(a, got) && len(a) > 0 {
		t.Fatalf("different seeds produced identical panic sets: %v", a)
	}
}

func TestStageInjectorStallBlocksUntilRelease(t *testing.T) {
	// Find a stalling sample first via the pure decision function.
	cfg := StageFaultConfig{Seed: 3, Stall: 0.3}
	stallIdx := -1
	for i := 0; i < 64; i++ {
		if k, ok := cfg.decide(i); ok && k == StageStall {
			stallIdx = i
			break
		}
	}
	if stallIdx < 0 {
		t.Fatal("no stalling sample at p=0.3 over 64 samples")
	}
	in := WrapStage(stageDS{n: 64}, cfg)
	done := make(chan []byte, 1)
	go func() {
		blob, _ := in.Blob(stallIdx)
		done <- blob
	}()
	select {
	case <-done:
		t.Fatal("stalled access returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	in.Release()
	in.Release() // idempotent
	select {
	case blob := <-done:
		if blob[0] != byte(stallIdx) {
			t.Fatalf("released blob = %v, want pristine sample %d", blob, stallIdx)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled access did not return after Release")
	}
	// Second access is clean (StallEvents defaults to 1).
	if _, err := in.Blob(stallIdx); err != nil {
		t.Fatal(err)
	}
	if ev, _ := in.Summary().Of(StageStall); ev != 1 {
		t.Fatalf("stall events = %d, want 1", ev)
	}
}

func TestStageInjectorStallBoundedByAlarmClock(t *testing.T) {
	clock := &trace.VirtualClock{}
	cfg := StageFaultConfig{Seed: 3, Stall: 0.3, StallSeconds: 5, Clock: clock}
	stallIdx := -1
	for i := 0; i < 64; i++ {
		if _, ok := cfg.decide(i); ok {
			stallIdx = i
			break
		}
	}
	in := WrapStage(stageDS{n: 64}, cfg)
	done := make(chan struct{})
	go func() {
		if _, err := in.Blob(stallIdx); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("stall returned before the virtual bound elapsed")
	case <-time.After(20 * time.Millisecond):
	}
	clock.Advance(5)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stall did not release when the virtual bound elapsed")
	}
}

func TestStageInjectorLabelsPassThrough(t *testing.T) {
	in := WrapStage(stageDS{n: 4}, StageFaultConfig{Seed: 1, Panic: 1})
	lb, err := in.Label(2)
	if err != nil || lb.F32s[0] != 2 {
		t.Fatalf("label = %v, %v", lb, err)
	}
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4", in.Len())
	}
}

func TestCacheInjectorTampersOnceDeterministically(t *testing.T) {
	ci := NewCacheInjector(CacheFaultConfig{Seed: 5, BitRot: 0.3})
	rotIdx := -1
	for i := 0; i < 64; i++ {
		if ci.decide(i) {
			rotIdx = i
			break
		}
	}
	if rotIdx < 0 {
		t.Fatal("no rotting sample at p=0.3 over 64 samples")
	}
	pristine := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	blob := append([]byte(nil), pristine...)
	if !ci.Tamper(rotIdx, blob) {
		t.Fatal("first hit of a rotting sample was not tampered")
	}
	if reflect.DeepEqual(blob, pristine) {
		t.Fatal("tamper reported true but blob unchanged")
	}
	damaged := append([]byte(nil), blob...)
	// Second hit: BitRotEvents defaults to 1, so the blob stays as-is.
	if ci.Tamper(rotIdx, blob) {
		t.Fatal("second hit tampered beyond BitRotEvents")
	}
	if !reflect.DeepEqual(blob, damaged) {
		t.Fatal("untampered hit modified the blob")
	}
	// A clean sample is never touched.
	cleanIdx := -1
	for i := 0; i < 64; i++ {
		if !ci.decide(i) {
			cleanIdx = i
			break
		}
	}
	clean := append([]byte(nil), pristine...)
	if ci.Tamper(cleanIdx, clean) || !reflect.DeepEqual(clean, pristine) {
		t.Fatal("clean sample tampered")
	}
	// Same seed, same damage: a fresh injector flips the same bytes.
	ci2 := NewCacheInjector(CacheFaultConfig{Seed: 5, BitRot: 0.3})
	blob2 := append([]byte(nil), pristine...)
	ci2.Tamper(rotIdx, blob2)
	if !reflect.DeepEqual(blob2, damaged) {
		t.Fatalf("same seed flipped different bytes: %v vs %v", blob2, damaged)
	}
	if ev, samples := ci.Summary().Of(CacheBitRot); ev != 1 || samples != 1 {
		t.Fatalf("summary (%d, %d), want (1, 1)", ev, samples)
	}
	if ci.Tamper(rotIdx, nil) {
		t.Fatal("empty blob tampered")
	}
}

func TestStageKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		StagePanic:  "stage-panic",
		StageStall:  "stage-stall",
		CacheBitRot: "cache-bitrot",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
