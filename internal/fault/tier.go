// Tier-level fault injector: the failure modes that attack a whole storage
// tier of the staging hierarchy rather than individual samples or the
// pipeline's machinery. A TierInjector attaches to a pipeline.SampleCache
// through SetTierFault and fails, stalls, or kills the NVMe spill tier —
// the cache survives only through its per-tier health tracking, failover to
// HostMem-only degraded mode, and recovery probing. Injection decisions are
// pure functions of (Seed, sample) plus a deterministic access-count death
// schedule, so the log reconciles exactly against CacheStats.
package fault

import (
	"fmt"
	"sync"

	"scipp/internal/trace"
	"scipp/internal/xrand"
)

// tierDecisionMix derives the per-sample decision stream of the tier
// injector, independent of the other injectors' streams so tier faults can
// be layered over data, stage, and cache-rot populations on one dataset.
const tierDecisionMix = 0xA24BAED4963EE407

// TierFaultConfig sets the NVMe-tier fault probabilities and the tier's
// death schedule. IOErr and Degraded are per-sample draws (at most one kind
// per sample, deterministically from Seed); death is scheduled in access
// counts so a sweep can kill the tier mid-epoch reproducibly.
type TierFaultConfig struct {
	// Seed drives every injection decision; same seed, same faults.
	Seed uint64
	// IOErr is the probability a sample's NVMe accesses fail (flaky cell).
	IOErr float64
	// IOErrEvents is how many accesses of an IOErr sample fail before the
	// (re-admitted) sample's media behaves again (default 1).
	IOErrEvents int
	// Degraded is the probability a sample's NVMe accesses are delivered
	// only after a stall (degraded-bandwidth mode).
	Degraded float64
	// DegradedSeconds is the stall injected on Degraded accesses (default
	// 0.01), absorbed by Clock when it implements trace.Sleeper.
	DegradedSeconds float64
	// DieAfter, when positive, kills the whole tier after that many
	// non-probe accesses: every later access fails until recovery.
	DieAfter int
	// ReviveAfterProbes, when positive, brings a dead tier back on its
	// Nth recovery probe (earlier probes fail); 0 leaves it dead forever.
	ReviveAfterProbes int
	// Clock, when non-nil and a trace.Sleeper, absorbs Degraded stalls.
	Clock trace.Clock
}

func (c TierFaultConfig) withDefaults() TierFaultConfig {
	if c.IOErrEvents <= 0 {
		c.IOErrEvents = 1
	}
	if c.DegradedSeconds <= 0 {
		c.DegradedSeconds = 0.01
	}
	return c
}

// decide returns the tier fault assigned to sample i, if any. It is a pure
// function of (Seed, i).
func (c TierFaultConfig) decide(i int) (Kind, bool) {
	rng := xrand.New(c.Seed ^ (uint64(i)+1)*tierDecisionMix)
	u := rng.Float64()
	if u < c.IOErr {
		return TierIO, true
	}
	u -= c.IOErr
	if u < c.Degraded {
		return TierSlow, true
	}
	return 0, false
}

// TierInjector implements pipeline.TierFault: it interposes on every
// NVMe-tier access of a SampleCache, failing chosen samples' accesses,
// stalling others, and killing the whole tier on its death schedule. Every
// failed non-probe access is logged (TierIO and TierDead entries reconcile
// one-to-one against CacheStats.NVMeErrors; TierSlow entries are stalls,
// not errors). Probe outcomes are not logged: probes are the cache's own
// health machinery, and their counts are already in CacheStats.TierProbes.
type TierInjector struct {
	cfg TierFaultConfig
	log *log

	mu       sync.Mutex
	accesses int // non-probe accesses so far, drives DieAfter
	dead     bool
	probes   int // failed probes since death, drives ReviveAfterProbes
	revived  bool
}

// WrapTier returns a TierInjector configured by cfg; attach it with
// pipeline.SampleCache.SetTierFault.
func WrapTier(cfg TierFaultConfig) *TierInjector {
	return &TierInjector{cfg: cfg.withDefaults(), log: newLog()}
}

// Access implements pipeline.TierFault. Probe calls (index -1) succeed once
// the revive schedule has elapsed and fail while the tier is dead; regular
// accesses advance the death schedule and then apply the per-sample fault,
// if any.
func (ti *TierInjector) Access(index int, write bool) error {
	if index < 0 {
		return ti.probe()
	}
	ti.mu.Lock()
	ti.accesses++
	if !ti.dead && !ti.revived && ti.cfg.DieAfter > 0 && ti.accesses > ti.cfg.DieAfter {
		ti.dead = true
		ti.probes = 0
	}
	dead := ti.dead
	ti.mu.Unlock()
	if dead {
		access := ti.log.bumpSample(index)
		ti.log.record(Injection{Sample: index, Access: access, Kind: TierDead, Rank: -1, Step: -1})
		return fmt.Errorf("fault: nvme tier dead: sample %d access failed", index)
	}
	kind, ok := ti.cfg.decide(index)
	if !ok {
		return nil
	}
	switch kind {
	case TierIO:
		access := ti.log.bumpSample(index)
		if access <= ti.cfg.IOErrEvents {
			ti.log.record(Injection{Sample: index, Access: access, Kind: TierIO, Rank: -1, Step: -1})
			return fmt.Errorf("fault: sample %d: injected nvme tier I/O error (access %d)", index, access)
		}
	case TierSlow:
		access := ti.log.bumpSample(index)
		ti.log.record(Injection{Sample: index, Access: access, Kind: TierSlow, Rank: -1, Step: -1})
		if s, isSleeper := ti.cfg.Clock.(trace.Sleeper); isSleeper {
			s.Sleep(ti.cfg.DegradedSeconds)
		}
	}
	return nil
}

// probe is a recovery probe against the tier: it fails while the tier is
// dead, except the ReviveAfterProbes-th probe, which finds the device back
// in service and succeeds.
func (ti *TierInjector) probe() error {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if !ti.dead {
		return nil
	}
	ti.probes++
	if ti.cfg.ReviveAfterProbes > 0 && ti.probes >= ti.cfg.ReviveAfterProbes {
		ti.dead = false
		ti.revived = true // a revived tier does not die again
		return nil
	}
	return fmt.Errorf("fault: nvme tier dead: probe failed")
}

// Dead reports whether the injected tier is currently dead.
func (ti *TierInjector) Dead() bool {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return ti.dead
}

// Log returns the injection events so far, in canonical order.
func (ti *TierInjector) Log() []Injection { return ti.log.snapshot() }

// Summary aggregates the injection events so far.
func (ti *TierInjector) Summary() Summary { return ti.log.summary() }
