package fault_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/fault"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// memDS is the minimal Dataset: sample i's blob is 64 bytes of i.
type memDS struct{ n int }

func (d memDS) Len() int { return d.n }

func (d memDS) Blob(i int) ([]byte, error) {
	return bytes.Repeat([]byte{byte(i)}, 64), nil
}

func (d memDS) Label(i int) (*tensor.Tensor, error) {
	lb := tensor.New(tensor.F32, 1)
	lb.F32s[0] = float32(i)
	return lb, nil
}

func TestMarkTransient(t *testing.T) {
	if fault.MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
	base := errors.New("stage-in missing")
	err := fault.MarkTransient(base)
	if !errors.Is(err, fault.Transient) {
		t.Error("marked error does not satisfy errors.Is(err, Transient)")
	}
	if !errors.Is(err, base) {
		t.Error("marking hides the original error from errors.Is")
	}
	if err.Error() != base.Error() {
		t.Errorf("message changed: %q != %q", err.Error(), base.Error())
	}
	if errors.Is(base, fault.Transient) {
		t.Error("unmarked error satisfies errors.Is(err, Transient)")
	}
}

// TestSameSeedSameLog is the determinism contract: the injection log is a
// pure function of (seed, access multiset), whatever the access order or
// concurrency.
func TestSameSeedSameLog(t *testing.T) {
	cfgs := []struct {
		name string
		cfg  fault.Config
	}{
		{"corrupt-only", fault.Config{Seed: 7, Corrupt: 0.3}},
		{"mixed", fault.Config{Seed: 7, Corrupt: 0.1, Truncate: 0.1, Transient: 0.1, Lost: 0.1, Latency: 0.1}},
		{"transient-heavy", fault.Config{Seed: 99, Transient: 0.5, TransientFailures: 3}},
	}
	const n, rounds = 100, 3
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			forward := fault.Wrap(memDS{n: n}, tc.cfg)
			for r := 0; r < rounds; r++ {
				for i := 0; i < n; i++ {
					_, _ = forward.Blob(i)
				}
			}
			// Same accesses in reverse order, concurrently.
			concurrent := fault.Wrap(memDS{n: n}, tc.cfg)
			var wg sync.WaitGroup
			for r := 0; r < rounds; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := n - 1; i >= 0; i-- {
						_, _ = concurrent.Blob(i)
					}
				}()
			}
			wg.Wait()
			a, b := forward.Log(), concurrent.Log()
			if len(a) == 0 {
				t.Fatal("no injections at all — probabilities too low for the corpus")
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed, different logs:\n%v\nvs\n%v", a, b)
			}
			other := fault.Wrap(memDS{n: n}, func() fault.Config { c := tc.cfg; c.Seed++; return c }())
			for i := 0; i < n; i++ {
				_, _ = other.Blob(i)
			}
			if reflect.DeepEqual(a, other.Log()) {
				t.Error("different seeds produced identical logs")
			}
		})
	}
}

// TestSameSampleSameDamage pins that corruption/truncation is per-sample
// deterministic: every access to a damaged sample yields identical bytes.
func TestSameSampleSameDamage(t *testing.T) {
	inj := fault.Wrap(memDS{n: 50}, fault.Config{Seed: 3, Corrupt: 0.5, Truncate: 0.5})
	for i := 0; i < 50; i++ {
		a, err1 := inj.Blob(i)
		b, err2 := inj.Blob(i)
		if err1 != nil || err2 != nil {
			t.Fatalf("sample %d: unexpected errors %v / %v", i, err1, err2)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("sample %d: damage differs between accesses", i)
		}
	}
}

func TestKindBehavior(t *testing.T) {
	orig, _ := memDS{n: 1}.Blob(0)
	t.Run("lost", func(t *testing.T) {
		inj := fault.Wrap(memDS{n: 1}, fault.Config{Seed: 1, Lost: 1})
		for access := 0; access < 3; access++ {
			_, err := inj.Blob(0)
			if err == nil {
				t.Fatal("lost sample delivered")
			}
			if errors.Is(err, fault.Transient) {
				t.Error("permanent loss classified transient")
			}
		}
		s := inj.Summary()
		if ev, sm := s.Of(fault.Lost); ev != 3 || sm != 1 {
			t.Errorf("lost summary = %d events / %d samples, want 3 / 1", ev, sm)
		}
	})
	t.Run("transient", func(t *testing.T) {
		inj := fault.Wrap(memDS{n: 1}, fault.Config{Seed: 1, Transient: 1, TransientFailures: 2})
		for access := 1; access <= 2; access++ {
			_, err := inj.Blob(0)
			if err == nil || !errors.Is(err, fault.Transient) {
				t.Fatalf("access %d: want transient error, got %v", access, err)
			}
		}
		got, err := inj.Blob(0)
		if err != nil || !bytes.Equal(got, orig) {
			t.Fatalf("post-recovery access: got %v, err %v", got, err)
		}
		if ev, _ := inj.Summary().Of(fault.TransientIO); ev != 2 {
			t.Errorf("transient events = %d, want 2", ev)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		inj := fault.Wrap(memDS{n: 1}, fault.Config{Seed: 1, Truncate: 1})
		got, err := inj.Blob(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) >= len(orig) {
			t.Errorf("truncated blob is %d bytes, original %d", len(got), len(orig))
		}
		if !bytes.Equal(got, orig[:len(got)]) {
			t.Error("truncation is not a prefix of the original")
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		inj := fault.Wrap(memDS{n: 1}, fault.Config{Seed: 1, Corrupt: 1})
		got, err := inj.Blob(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(orig) {
			t.Errorf("corruption changed length %d -> %d", len(orig), len(got))
		}
		if bytes.Equal(got, orig) {
			t.Error("corrupt blob identical to original")
		}
	})
	t.Run("latency", func(t *testing.T) {
		clock := &trace.VirtualClock{}
		inj := fault.Wrap(memDS{n: 1}, fault.Config{Seed: 1, Latency: 1, LatencySeconds: 0.25, Clock: clock})
		got, err := inj.Blob(0)
		if err != nil || !bytes.Equal(got, orig) {
			t.Fatalf("latency fault altered delivery: %v, %v", got, err)
		}
		if now := clock.Now(); now != 0.25 {
			t.Errorf("clock advanced %v s, want 0.25", now)
		}
	})
	t.Run("none", func(t *testing.T) {
		inj := fault.Wrap(memDS{n: 5}, fault.Config{Seed: 1})
		for i := 0; i < 5; i++ {
			want, _ := memDS{n: 5}.Blob(i)
			got, err := inj.Blob(i)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("fault-free config perturbed sample %d", i)
			}
		}
		if log := inj.Log(); len(log) != 0 {
			t.Errorf("fault-free config logged %d injections", len(log))
		}
	})
}

// exactFormat accepts only its expected blob — a checksum-style detector for
// the format-level injector tests.
type exactFormat struct{ want []byte }

func (f exactFormat) Name() string { return "exact" }

func (f exactFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	if !bytes.Equal(blob, f.want) {
		return nil, fmt.Errorf("exact: blob mismatch (%d bytes)", len(blob))
	}
	return nil, nil
}

func TestFormatInjector(t *testing.T) {
	blob := bytes.Repeat([]byte{0xAB}, 128)
	f := exactFormat{want: blob}
	t.Run("passthrough", func(t *testing.T) {
		fi := fault.WrapFormat(f, fault.Config{Seed: 5})
		if _, err := fi.Open(blob); err != nil {
			t.Fatalf("clean config failed Open: %v", err)
		}
		if fi.Name() != "exact+fault" {
			t.Errorf("Name = %q", fi.Name())
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		fi := fault.WrapFormat(f, fault.Config{Seed: 5, Corrupt: 1})
		if _, err := fi.Open(blob); err == nil {
			t.Fatal("corrupted blob opened clean")
		}
		if ev, sm := fi.Summary().Of(fault.Corrupt); ev != 1 || sm != 1 {
			t.Errorf("corrupt summary = %d events / %d blobs, want 1 / 1", ev, sm)
		}
	})
	t.Run("transient-then-recovers", func(t *testing.T) {
		fi := fault.WrapFormat(f, fault.Config{Seed: 5, Transient: 1, TransientFailures: 2})
		for access := 1; access <= 2; access++ {
			_, err := fi.Open(blob)
			if err == nil || !errors.Is(err, fault.Transient) {
				t.Fatalf("access %d: want transient, got %v", access, err)
			}
		}
		if _, err := fi.Open(blob); err != nil {
			t.Fatalf("open after recovery: %v", err)
		}
	})
	t.Run("deterministic-per-blob", func(t *testing.T) {
		cfg := fault.Config{Seed: 5, Corrupt: 0.5}
		a := fault.WrapFormat(f, cfg)
		b := fault.WrapFormat(f, cfg)
		_, errA := a.Open(blob)
		_, errB := b.Open(blob)
		if (errA == nil) != (errB == nil) {
			t.Errorf("same blob, same seed, different outcomes: %v vs %v", errA, errB)
		}
		if !reflect.DeepEqual(a.Log(), b.Log()) {
			t.Error("same blob, same seed, different logs")
		}
	})
}

func TestSummaryAggregation(t *testing.T) {
	cfg := fault.Config{Seed: 11, Corrupt: 0.15, Lost: 0.1}
	const n = 200
	inj := fault.Wrap(memDS{n: n}, cfg)
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			_, _ = inj.Blob(i)
		}
	}
	s := inj.Summary()
	log := inj.Log()
	total := 0
	for _, k := range []fault.Kind{fault.Corrupt, fault.Truncate, fault.TransientIO, fault.Lost, fault.Latency} {
		ev, sm := s.Of(k)
		total += ev
		if k == fault.Corrupt || k == fault.Lost {
			if ev != 2*sm {
				t.Errorf("%v: %d events for %d samples over 2 rounds, want exactly 2x", k, ev, sm)
			}
			if sm == 0 {
				t.Errorf("%v: no samples faulted at these rates over %d samples", k, n)
			}
		} else if ev != 0 {
			t.Errorf("%v: %d events with zero probability", k, ev)
		}
	}
	if total != len(log) {
		t.Errorf("summary events %d != log length %d", total, len(log))
	}
}

func TestKindString(t *testing.T) {
	want := map[fault.Kind]string{
		fault.Corrupt: "corrupt", fault.Truncate: "truncate",
		fault.TransientIO: "transient", fault.Lost: "lost", fault.Latency: "latency",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
