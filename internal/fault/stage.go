// Stage- and cache-level fault injectors: the failure modes that attack the
// pipeline's own machinery rather than the bytes it moves. A StageInjector
// makes stage workers panic or wedge while they hold a sample — the loader
// survives only through its StageSupervisor and stall watchdog — and a
// CacheInjector rots samples after they were admitted to the staged sample
// cache, which only end-to-end cache integrity verification can catch.
// Injection decisions are pure functions of (Seed, sample), exactly like the
// data-path injectors, so the logs reconcile against pipeline counters.
package fault

import (
	"fmt"
	"sync"

	"scipp/internal/tensor"
	"scipp/internal/trace"
	"scipp/internal/xrand"
)

// stageDecisionMix and cacheDecisionMix derive the per-sample decision
// streams of the stage and cache injectors, independent of the data-path
// injector's streams so the fault populations can be layered on one dataset.
const (
	stageDecisionMix = 0x94D049BB133111EB
	cacheDecisionMix = 0xD6E8FEB86659FD93
)

// StageFaultConfig sets the per-sample stage-fault probabilities. Each
// sample draws at most one fault kind, deterministically from Seed, so
// Panic+Stall must sum to at most 1.
type StageFaultConfig struct {
	// Seed drives every injection decision; same seed, same faults.
	Seed uint64
	// Panic is the probability a sample's read panics the stage worker.
	Panic float64
	// Stall is the probability a sample's read wedges the stage worker.
	Stall float64
	// PanicEvents is how many accesses of a panicking sample crash before
	// the sample recovers (default 1) — a fresh attempt then succeeds, so
	// supervised retries restore bit-identical output.
	PanicEvents int
	// StallEvents is how many accesses of a stalling sample wedge before
	// the sample recovers (default 1).
	StallEvents int
	// StallSeconds bounds an injected stall on Clock when it implements
	// trace.Alarm (default: unbounded — the stall holds until Release).
	StallSeconds float64
	// Clock, when non-nil and a trace.Alarm, bounds Stall wedges in time.
	Clock trace.Clock
}

func (c StageFaultConfig) withDefaults() StageFaultConfig {
	if c.PanicEvents <= 0 {
		c.PanicEvents = 1
	}
	if c.StallEvents <= 0 {
		c.StallEvents = 1
	}
	return c
}

// decide returns the stage fault assigned to sample i, if any. It is a pure
// function of (Seed, i).
func (c StageFaultConfig) decide(i int) (Kind, bool) {
	rng := xrand.New(c.Seed ^ (uint64(i)+1)*stageDecisionMix)
	u := rng.Float64()
	if u < c.Panic {
		return StagePanic, true
	}
	u -= c.Panic
	if u < c.Stall {
		return StageStall, true
	}
	return 0, false
}

// StageInjector wraps a Dataset so that reading chosen samples panics or
// wedges the calling goroutine — the stage worker that holds the sample.
// It implements the same Dataset contract, so it drops into pipeline.New
// unchanged; the faults it injects are survivable only by the pipeline's
// supervision layer, never by the per-sample resilience policy alone.
type StageInjector struct {
	ds  Dataset
	cfg StageFaultConfig
	log *log

	releaseOnce sync.Once
	release     chan struct{}
}

// WrapStage returns a StageInjector over ds configured by cfg.
func WrapStage(ds Dataset, cfg StageFaultConfig) *StageInjector {
	return &StageInjector{
		ds:      ds,
		cfg:     cfg.withDefaults(),
		log:     newLog(),
		release: make(chan struct{}),
	}
}

// Len implements Dataset.
func (in *StageInjector) Len() int { return in.ds.Len() }

// Label implements Dataset; labels pass through unfaulted.
func (in *StageInjector) Label(i int) (*tensor.Tensor, error) {
	return in.ds.Label(i)
}

// Blob implements Dataset, applying sample i's assigned stage fault, if any.
// It panics on the first PanicEvents accesses of a StagePanic sample — that
// is the injected failure, recovered (if at all) by the stage supervisor —
// and wedges the calling goroutine on the first StallEvents accesses of a
// StageStall sample, until the stall bound elapses or Release is called.
func (in *StageInjector) Blob(i int) ([]byte, error) {
	kind, ok := in.cfg.decide(i)
	if !ok {
		return in.ds.Blob(i)
	}
	access := in.log.bumpSample(i)
	switch kind {
	case StagePanic:
		if access <= in.cfg.PanicEvents {
			in.log.record(Injection{Sample: i, Access: access, Kind: StagePanic, Rank: -1, Step: -1})
			panic(fmt.Sprintf("fault: sample %d: injected stage panic (access %d)", i, access))
		}
	case StageStall:
		if access <= in.cfg.StallEvents {
			in.log.record(Injection{Sample: i, Access: access, Kind: StageStall, Rank: -1, Step: -1})
			in.stall()
		}
	}
	return in.ds.Blob(i)
}

// stall blocks until the configured stall bound elapses on the clock or
// Release is called, whichever comes first. With no Alarm clock the wedge
// is indefinite: exactly the silent-hang failure mode the watchdog exists
// to detect.
func (in *StageInjector) stall() {
	var bound <-chan struct{}
	cancel := func() {}
	if a, ok := in.cfg.Clock.(trace.Alarm); ok && in.cfg.StallSeconds > 0 {
		bound, cancel = a.After(in.cfg.Clock.Now() + in.cfg.StallSeconds)
	}
	defer cancel()
	select {
	case <-bound:
	case <-in.release:
	}
}

// Release unwedges every stalled (and future) access: harnesses call it
// after the epoch settles so abandoned workers can drain and exit. Safe to
// call repeatedly.
func (in *StageInjector) Release() {
	in.releaseOnce.Do(func() { close(in.release) })
}

// Log returns the injection events so far, in canonical order.
func (in *StageInjector) Log() []Injection { return in.log.snapshot() }

// Summary aggregates the injection events so far.
func (in *StageInjector) Summary() Summary { return in.log.summary() }

// CacheFaultConfig sets the per-sample cache bit-rot probability.
type CacheFaultConfig struct {
	// Seed drives every injection decision; same seed, same faults.
	Seed uint64
	// BitRot is the probability a sample rots while resident in the cache.
	BitRot float64
	// BitRotEvents is how many cache hits of a rotting sample are corrupted
	// before the (re-admitted) sample stays clean (default 1).
	BitRotEvents int
}

func (c CacheFaultConfig) withDefaults() CacheFaultConfig {
	if c.BitRotEvents <= 0 {
		c.BitRotEvents = 1
	}
	return c
}

// CacheInjector corrupts cache-resident sample blobs in place, modeling bit
// rot on the staged NVMe/host-memory tier. It implements the pipeline's
// CacheTamper hook (attach with SampleCache.SetTamper); every tampered hit
// is logged, so quarantine counters reconcile exactly against Log.
type CacheInjector struct {
	cfg CacheFaultConfig
	log *log
}

// NewCacheInjector returns a CacheInjector configured by cfg.
func NewCacheInjector(cfg CacheFaultConfig) *CacheInjector {
	return &CacheInjector{cfg: cfg.withDefaults(), log: newLog()}
}

// decide reports whether sample i is a rotting sample: a pure function of
// (Seed, i).
func (ci *CacheInjector) decide(i int) bool {
	rng := xrand.New(ci.cfg.Seed ^ (uint64(i)+1)*cacheDecisionMix)
	return rng.Float64() < ci.cfg.BitRot
}

// Tamper implements the pipeline's cache-tamper hook: called with the
// resident blob on every cache hit, it flips a few bytes in place on the
// first BitRotEvents hits of a chosen sample and reports whether it did.
// The flipped sites derive from the per-sample damage stream, so the same
// bytes rot on every run with the same seed.
func (ci *CacheInjector) Tamper(index int, blob []byte) bool {
	if len(blob) == 0 || !ci.decide(index) {
		return false
	}
	access := ci.log.bumpSample(index)
	if access > ci.cfg.BitRotEvents {
		return false
	}
	ci.log.record(Injection{Sample: index, Access: access, Kind: CacheBitRot, Rank: -1, Step: -1})
	rng := xrand.New(ci.cfg.Seed ^ (uint64(index)+1)*0xBF58476D1CE4E5B9)
	flips := 1 + rng.Intn(4)
	for f := 0; f < flips; f++ {
		blob[rng.Intn(len(blob))] ^= byte(1 + rng.Intn(255))
	}
	return true
}

// Log returns the injection events so far, in canonical order.
func (ci *CacheInjector) Log() []Injection { return ci.log.snapshot() }

// Summary aggregates the injection events so far.
func (ci *CacheInjector) Summary() Summary { return ci.log.summary() }
