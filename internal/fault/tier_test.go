package fault

import (
	"testing"

	"scipp/internal/trace"
)

// TestTierDecideDeterministic pins the per-sample decision stream: same
// seed, same fault assignment, and IOErr/Degraded populations are disjoint
// (at most one kind per sample).
func TestTierDecideDeterministic(t *testing.T) {
	cfg := TierFaultConfig{Seed: 11, IOErr: 0.3, Degraded: 0.3}.withDefaults()
	for i := 0; i < 256; i++ {
		k1, ok1 := cfg.decide(i)
		k2, ok2 := cfg.decide(i)
		if k1 != k2 || ok1 != ok2 {
			t.Fatalf("sample %d: decision not deterministic: %v/%v vs %v/%v", i, k1, ok1, k2, ok2)
		}
		if ok1 && k1 != TierIO && k1 != TierSlow {
			t.Fatalf("sample %d: unexpected kind %v", i, k1)
		}
	}
	// With both probabilities at 0.3 over 256 samples, both kinds appear.
	var io, slow int
	for i := 0; i < 256; i++ {
		switch k, ok := cfg.decide(i); {
		case ok && k == TierIO:
			io++
		case ok && k == TierSlow:
			slow++
		}
	}
	if io == 0 || slow == 0 {
		t.Fatalf("decision stream degenerate: %d io, %d slow over 256 samples", io, slow)
	}
}

// TestTierIOErrEvents walks one flaky sample: its first IOErrEvents
// accesses fail and are logged, later accesses succeed (the re-admitted
// sample's media behaves again).
func TestTierIOErrEvents(t *testing.T) {
	cfg := TierFaultConfig{Seed: 5, IOErr: 1.0, IOErrEvents: 2}
	ti := WrapTier(cfg)
	for access := 1; access <= 4; access++ {
		err := ti.Access(7, access%2 == 0)
		if access <= 2 && err == nil {
			t.Fatalf("access %d: flaky sample succeeded inside IOErrEvents", access)
		}
		if access > 2 && err != nil {
			t.Fatalf("access %d: flaky sample still failing past IOErrEvents: %v", access, err)
		}
	}
	events, samples := ti.Summary().Of(TierIO)
	if events != 2 || samples != 1 {
		t.Fatalf("TierIO summary = %d events / %d samples, want 2/1", events, samples)
	}
}

// TestTierDegradedStall checks TierSlow samples stall on the sleeper clock
// without erroring, and that the stall is logged as a stall, not an error.
func TestTierDegradedStall(t *testing.T) {
	clock := &trace.VirtualClock{}
	ti := WrapTier(TierFaultConfig{
		Seed: 5, Degraded: 1.0, DegradedSeconds: 0.5, Clock: clock,
	})
	if err := ti.Access(3, false); err != nil {
		t.Fatalf("degraded access errored: %v", err)
	}
	if got := clock.Now(); got != 0.5 {
		t.Fatalf("clock advanced %g s, want the 0.5 s stall", got)
	}
	if events, _ := ti.Summary().Of(TierSlow); events != 1 {
		t.Fatalf("TierSlow events = %d, want 1", events)
	}
	if events, _ := ti.Summary().Of(TierIO); events != 0 {
		t.Fatalf("degraded access also logged %d TierIO errors", events)
	}
}

// TestTierDeathAndRevival drives the full death schedule: accesses past
// DieAfter fail as TierDead, earlier probes fail, the ReviveAfterProbes-th
// probe succeeds, and a revived tier neither fails nor dies again.
func TestTierDeathAndRevival(t *testing.T) {
	ti := WrapTier(TierFaultConfig{Seed: 9, DieAfter: 3, ReviveAfterProbes: 2})
	for i := 1; i <= 3; i++ {
		if err := ti.Access(i, false); err != nil {
			t.Fatalf("access %d before death failed: %v", i, err)
		}
	}
	if ti.Dead() {
		t.Fatal("tier dead before the schedule elapsed")
	}
	if err := ti.Access(4, true); err == nil {
		t.Fatal("access past DieAfter succeeded")
	}
	if !ti.Dead() {
		t.Fatal("tier alive past DieAfter")
	}
	if err := ti.Access(-1, false); err == nil {
		t.Fatal("first probe against a dead tier succeeded")
	}
	if err := ti.Access(-1, false); err != nil {
		t.Fatalf("revival probe failed: %v", err)
	}
	if ti.Dead() {
		t.Fatal("tier still dead after revival probe")
	}
	// Revived: accesses succeed and the death schedule never re-fires.
	for i := 0; i < 8; i++ {
		if err := ti.Access(i, false); err != nil {
			t.Fatalf("revived tier access failed: %v", err)
		}
	}
	if events, _ := ti.Summary().Of(TierDead); events != 1 {
		t.Fatalf("TierDead events = %d, want the 1 failed access", events)
	}
	// A healthy tier's probes are free no-ops.
	if err := ti.Access(-1, false); err != nil {
		t.Fatalf("probe against healthy tier failed: %v", err)
	}
}

// TestTierDeadForeverWithoutRevival pins ReviveAfterProbes 0: probes keep
// failing and the tier stays dead.
func TestTierDeadForeverWithoutRevival(t *testing.T) {
	ti := WrapTier(TierFaultConfig{Seed: 2, DieAfter: 1})
	ti.Access(0, false)
	if err := ti.Access(1, false); err == nil {
		t.Fatal("access past DieAfter succeeded")
	}
	for i := 0; i < 5; i++ {
		if err := ti.Access(-1, false); err == nil {
			t.Fatal("probe revived a tier with revival disabled")
		}
	}
	if !ti.Dead() {
		t.Fatal("tier came back without a revival schedule")
	}
}

// TestTierLogDeterministic pins the reconcile contract: identical runs
// produce identical logs, and every TierIO/TierDead entry corresponds to
// exactly one failed access.
func TestTierLogDeterministic(t *testing.T) {
	runOnce := func() ([]Injection, int) {
		ti := WrapTier(TierFaultConfig{Seed: 4, IOErr: 0.4, DieAfter: 30})
		failed := 0
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 16; i++ {
				if err := ti.Access(i, pass == 0); err != nil {
					failed++
				}
			}
		}
		return ti.Log(), failed
	}
	logA, failsA := runOnce()
	logB, failsB := runOnce()
	if len(logA) != len(logB) || failsA != failsB {
		t.Fatalf("runs diverged: %d/%d entries, %d/%d failures", len(logA), len(logB), failsA, failsB)
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("log entry %d diverged: %+v vs %+v", i, logA[i], logB[i])
		}
	}
	errorEntries := 0
	for _, inj := range logA {
		if inj.Kind == TierIO || inj.Kind == TierDead {
			errorEntries++
		}
	}
	if errorEntries != failsA {
		t.Fatalf("log records %d error entries, %d accesses failed", errorEntries, failsA)
	}
}
