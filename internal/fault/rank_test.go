package fault_test

import (
	"testing"

	"scipp/internal/fault"
	"scipp/internal/trace"
)

func TestRankPinnedPlans(t *testing.T) {
	ri := fault.NewRankInjector(fault.RankConfig{
		CrashAt: map[int]int{2: 5},
		HangAt:  map[int]int{1: 3},
		SlowAt:  map[int]int{0: 7},
	})
	cases := []struct {
		rank, step int
		kind       fault.Kind
		hit        bool
	}{
		{2, 5, fault.CrashRank, true},
		{2, 4, 0, false},
		{2, 6, 0, false},
		{1, 3, fault.HangRank, true},
		{0, 7, fault.SlowRank, true},
		{3, 5, 0, false},
	}
	for _, c := range cases {
		k, ok := ri.At(c.rank, c.step)
		if ok != c.hit || (ok && k != c.kind) {
			t.Errorf("At(%d,%d) = %v,%v want %v,%v", c.rank, c.step, k, ok, c.kind, c.hit)
		}
	}
	log := ri.Log()
	if len(log) != 3 {
		t.Fatalf("log has %d events, want 3: %+v", len(log), log)
	}
	// Canonical order sorts by Rank then Step for rank-level events.
	want := []fault.Injection{
		{Sample: -1, Kind: fault.SlowRank, Rank: 0, Step: 7},
		{Sample: -1, Kind: fault.HangRank, Rank: 1, Step: 3},
		{Sample: -1, Kind: fault.CrashRank, Rank: 2, Step: 5},
	}
	for i, w := range want {
		if log[i] != w {
			t.Errorf("log[%d] = %+v, want %+v", i, log[i], w)
		}
	}
	s := ri.Summary()
	if e, n := s.Of(fault.CrashRank); e != 1 || n != 1 {
		t.Errorf("crash summary = %d,%d", e, n)
	}
	if e, n := s.Of(fault.HangRank); e != 1 || n != 1 {
		t.Errorf("hang summary = %d,%d", e, n)
	}
	if e, n := s.Of(fault.SlowRank); e != 1 || n != 1 {
		t.Errorf("slow summary = %d,%d", e, n)
	}
}

func TestRankSeededDeterminism(t *testing.T) {
	cfg := fault.RankConfig{Seed: 42, CrashRate: 0.02, HangRate: 0.02, SlowRate: 0.05}
	a := fault.NewRankInjector(cfg)
	b := fault.NewRankInjector(cfg)
	hits := 0
	for rank := 0; rank < 8; rank++ {
		for step := 0; step < 200; step++ {
			ka, oka := a.Plan(rank, step)
			kb, okb := b.Plan(rank, step)
			if oka != okb || ka != kb {
				t.Fatalf("plan diverges at rank %d step %d: %v,%v vs %v,%v", rank, step, ka, oka, kb, okb)
			}
			if oka {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Error("no seeded faults drawn over 1600 (rank,step) pairs at 9% total rate")
	}
	// A different seed produces a different pattern.
	c := fault.NewRankInjector(fault.RankConfig{Seed: 43, CrashRate: 0.02, HangRate: 0.02, SlowRate: 0.05})
	same := 0
	for rank := 0; rank < 8; rank++ {
		for step := 0; step < 200; step++ {
			_, oka := a.Plan(rank, step)
			_, okc := c.Plan(rank, step)
			if oka == okc {
				same++
			}
		}
	}
	if same == 8*200 {
		t.Error("seeds 42 and 43 drew identical fault patterns")
	}
}

func TestRankPlanDoesNotLog(t *testing.T) {
	ri := fault.NewRankInjector(fault.RankConfig{CrashAt: map[int]int{0: 0}})
	if k, ok := ri.Plan(0, 0); !ok || k != fault.CrashRank {
		t.Fatal("plan missed the pinned crash")
	}
	if len(ri.Log()) != 0 {
		t.Error("Plan must not log")
	}
}

func TestSlowRankStallsOnClock(t *testing.T) {
	vc := &trace.VirtualClock{}
	ri := fault.NewRankInjector(fault.RankConfig{SlowAt: map[int]int{1: 2}, SlowSeconds: 0.25, Clock: vc})
	if _, ok := ri.At(1, 1); ok {
		t.Fatal("unexpected fault at step 1")
	}
	if vc.Now() != 0 {
		t.Fatal("clock moved without a stall")
	}
	if k, ok := ri.At(1, 2); !ok || k != fault.SlowRank {
		t.Fatal("pinned slow fault missed")
	}
	if vc.Now() != 0.25 {
		t.Errorf("stall advanced clock to %v, want 0.25", vc.Now())
	}
}

func TestRankKindStrings(t *testing.T) {
	for k, want := range map[fault.Kind]string{
		fault.CrashRank: "crash-rank",
		fault.HangRank:  "hang-rank",
		fault.SlowRank:  "slow-rank",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestDataInjectionsCarryRankSentinel(t *testing.T) {
	// Data-path events must stay distinguishable from rank events in a
	// merged log: Rank and Step are -1.
	in := fault.Wrap(memDS{n: 1}, fault.Config{Seed: 1, Lost: 1})
	if _, err := in.Blob(0); err == nil {
		t.Fatal("lost sample returned data")
	}
	log := in.Log()
	if len(log) != 1 || log[0].Rank != -1 || log[0].Step != -1 {
		t.Errorf("data injection = %+v, want Rank=-1 Step=-1", log)
	}
}
