package pipeline

import (
	"errors"
	"math"
	"strings"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/fault"
	"scipp/internal/tensor"
)

// raggedFormat decodes blobs into [2, L] samples whose trailing axis varies
// per sample: L = blob[0] % 5, so every fifth sample is empty. Element
// [c, t] holds v*100 + c*L + t, making both padding errors and row-order
// errors visible in the assembled batch.
type raggedFormat struct{}

func (raggedFormat) Name() string { return "ragged-test" }
func (raggedFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	if len(blob) == 0 {
		return nil, errors.New("empty blob")
	}
	return &raggedDecoder{v: blob[0], l: int(blob[0]) % 5}, nil
}

type raggedDecoder struct {
	v byte
	l int
}

func (d *raggedDecoder) OutputShape() tensor.Shape { return tensor.Shape{2, d.l} }
func (d *raggedDecoder) OutputDType() tensor.DType { return tensor.F32 }
func (d *raggedDecoder) NumChunks() int            { return 2 }
func (d *raggedDecoder) Workload() codec.Workload  { return codec.Workload{Chunks: 2} }
func (d *raggedDecoder) DecodeChunk(c int, dst *tensor.Tensor) error {
	for i := 0; i < d.l; i++ {
		dst.F32s[c*d.l+i] = float32(d.v)*100 + float32(c*d.l+i)
	}
	return nil
}

func raggedLen(index int) int { return index % 5 }

func raggedSample(p *SlabPool, v byte, l int) *tensor.Tensor {
	var t *tensor.Tensor
	if p != nil {
		t = p.GetTensor(tensor.F32, tensor.Shape{2, l})
	} else {
		t = tensor.New(tensor.F32, 2, l)
	}
	for i := range t.F32s {
		t.F32s[i] = float32(v)*100 + float32(i)
	}
	return t
}

func TestPaddedBatchAssembly(t *testing.T) {
	p := NewSlabPool()
	b := p.getBatch(3)
	for i, l := range []int{3, 0, 5} {
		b.Data = append(b.Data, raggedSample(p, byte(i), l))
		lb := tensor.New(tensor.F32, 1)
		lb.F32s[0] = float32(i)
		b.Labels = append(b.Labels, lb)
		b.Indices = append(b.Indices, i)
	}
	pb, err := b.Padded()
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Data.Shape.Equal(tensor.Shape{3, 2, 5}) || pb.Data.DT != tensor.F32 {
		t.Fatalf("padded data shape = %v %v, want F32 [3 2 5]", pb.Data.DT, pb.Data.Shape)
	}
	if !pb.Mask.Shape.Equal(tensor.Shape{3, 5}) {
		t.Fatalf("mask shape = %v, want [3 5]", pb.Mask.Shape)
	}
	if want := []int{3, 0, 5}; !equalInts(pb.Lengths, want) {
		t.Fatalf("lengths = %v, want %v", pb.Lengths, want)
	}
	if pb.Size() != 3 || len(pb.Labels) != 3 || !equalInts(pb.Indices, []int{0, 1, 2}) {
		t.Fatal("padded batch lost its labels or indices")
	}
	for i, l := range pb.Lengths {
		for c := 0; c < 2; c++ {
			for tt := 0; tt < 5; tt++ {
				got := pb.Data.F32s[(i*2+c)*5+tt]
				var want float32
				if tt < l {
					want = float32(i)*100 + float32(c*l+tt)
				}
				if got != want {
					t.Fatalf("data[%d,%d,%d] = %g, want %g", i, c, tt, got, want)
				}
			}
		}
		for tt := 0; tt < 5; tt++ {
			want := float32(0)
			if tt < l {
				want = 1
			}
			if pb.Mask.F32s[i*5+tt] != want {
				t.Fatalf("mask[%d,%d] = %g, want %g", i, tt, pb.Mask.F32s[i*5+tt], want)
			}
		}
	}
	// Release recycles the padded tensors but never the labels. Data (30
	// elems) and Mask (15 elems) share the smallest capacity class, so two
	// gets must hand both back, in whichever order the freelist serves.
	pb.Release()
	pb.Release() // idempotent
	got := map[*tensor.Tensor]bool{
		p.GetTensor(tensor.F32, tensor.Shape{3, 2, 5}): true,
		p.GetTensor(tensor.F32, tensor.Shape{3, 5}):    true,
	}
	if !got[pb.Data] || !got[pb.Mask] {
		t.Error("released padded tensors were not recycled")
	}
}

// TestPaddedZeroFillsRecycledSlabs pins the explicit-zero contract: padding
// assembled into a dirty recycled slab must not leak the slab's previous
// contents into the padding region.
func TestPaddedZeroFillsRecycledSlabs(t *testing.T) {
	p := NewSlabPool()
	dirty := p.GetTensor(tensor.F32, tensor.Shape{64})
	for i := range dirty.F32s {
		dirty.F32s[i] = math.MaxFloat32
	}
	p.PutTensor(dirty)

	b := p.getBatch(2)
	b.Data = append(b.Data, raggedSample(p, 1, 3), raggedSample(p, 2, 1))
	b.Labels = append(b.Labels, nil, nil)
	b.Indices = append(b.Indices, 0, 1)
	pb, err := b.Padded()
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range pb.Lengths {
		for c := 0; c < 2; c++ {
			for tt := l; tt < 3; tt++ {
				if got := pb.Data.F32s[(i*2+c)*3+tt]; got != 0 {
					t.Fatalf("padding [%d,%d,%d] = %g from a dirty slab", i, c, tt, got)
				}
			}
		}
	}
}

func TestPaddedRejectsIncompatibleSamples(t *testing.T) {
	newBatch := func(data ...*tensor.Tensor) *Batch { return &Batch{Data: data} }
	cases := map[string]*Batch{
		"empty":   newBatch(),
		"rank":    newBatch(tensor.New(tensor.F32, 2, 3), tensor.New(tensor.F32, 3)),
		"rank0":   newBatch(tensor.New(tensor.F32)),
		"leading": newBatch(tensor.New(tensor.F32, 2, 3), tensor.New(tensor.F32, 3, 3)),
		"dtype":   newBatch(tensor.New(tensor.F32, 2, 3), tensor.New(tensor.F16, 2, 3)),
	}
	for name, b := range cases {
		if _, err := b.Padded(); err == nil {
			t.Errorf("%s batch padded without error", name)
		} else if !strings.HasPrefix(err.Error(), "pipeline:") {
			t.Errorf("%s error %q lacks package prefix", name, err)
		}
	}
}

// TestPaddedEqualLengthsMatchStack pins the degenerate case: when every
// sample has the same length the padded tensor is the plain stacked tensor,
// bit for bit, and the mask is all ones. (train.StackData cannot be imported
// here — train depends on pipeline — so the stack is built by hand with the
// same copy layout; the cross-package identity is asserted in train's own
// tests.)
func TestPaddedEqualLengthsMatchStack(t *testing.T) {
	b := &Batch{}
	for i := 0; i < 3; i++ {
		b.Data = append(b.Data, raggedSample(nil, byte(i), 4))
		b.Indices = append(b.Indices, i)
	}
	pb, err := b.Padded()
	if err != nil {
		t.Fatal(err)
	}
	stride := 8
	for i, s := range b.Data {
		for k, v := range s.F32s {
			got := pb.Data.F32s[i*stride+k]
			if math.Float32bits(got) != math.Float32bits(v) {
				t.Fatalf("stacked elem [%d,%d] = %g, want bit-identical %g", i, k, got, v)
			}
		}
	}
	for _, m := range pb.Mask.F32s {
		if m != 1 {
			t.Fatal("equal-length batch has padding in its mask")
		}
	}
}

// drainPadded pulls every padded batch of the epoch, returning the delivered
// indices, lengths, and a digest over (indices, lengths, data bits, mask
// bits) in delivery order — the equality witness for determinism runs.
func drainPadded(t *testing.T, it *Iterator) (idx []int, digest uint64) {
	t.Helper()
	digest = 0xcbf29ce484222325
	fold := func(v uint64) {
		digest = (digest ^ v) * 0x100000001b3
	}
	for {
		pb, err := it.NextPadded()
		if err != nil {
			t.Fatal(err)
		}
		if pb == nil {
			return idx, digest
		}
		for k, i := range pb.Indices {
			idx = append(idx, i)
			fold(uint64(i))
			fold(uint64(pb.Lengths[k]))
		}
		for _, f := range pb.Data.F32s {
			fold(uint64(math.Float32bits(f)))
		}
		for _, f := range pb.Mask.F32s {
			fold(uint64(math.Float32bits(f)))
		}
		pb.Release()
	}
}

func TestNextPaddedEndToEnd(t *testing.T) {
	const n = 13
	l, err := New(testDataset(n), Config{Format: raggedFormat{}, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	seen := 0
	for {
		pb, err := it.NextPadded()
		if err != nil {
			t.Fatal(err)
		}
		if pb == nil {
			break
		}
		maxLen := 0
		for k, i := range pb.Indices {
			if pb.Lengths[k] != raggedLen(i) {
				t.Fatalf("sample %d length %d, want %d", i, pb.Lengths[k], raggedLen(i))
			}
			if maxLen < pb.Lengths[k] {
				maxLen = pb.Lengths[k]
			}
			if pb.Labels[k].F32s[0] != float32(i) {
				t.Fatalf("sample %d label mismatch", i)
			}
		}
		wantShape := tensor.Shape{len(pb.Indices), 2, maxLen}
		if !pb.Data.Shape.Equal(wantShape) {
			t.Fatalf("batch shape %v, want %v (pad to max-in-batch)", pb.Data.Shape, wantShape)
		}
		for k, i := range pb.Indices {
			li := pb.Lengths[k]
			for c := 0; c < 2; c++ {
				for tt := 0; tt < maxLen; tt++ {
					got := pb.Data.F32s[(k*2+c)*maxLen+tt]
					var want float32
					if tt < li {
						want = float32(i)*100 + float32(c*li+tt)
					}
					if got != want {
						t.Fatalf("sample %d elem [%d,%d] = %g, want %g", i, c, tt, got, want)
					}
				}
			}
		}
		seen += pb.Size()
		pb.Release()
	}
	if seen != n {
		t.Fatalf("padded epoch delivered %d samples, want %d", seen, n)
	}
	if st := l.Pool().Stats(); st.Hits == 0 {
		t.Error("padded epoch never reused a slab: NextPadded is not recycling")
	}
}

// TestNextPaddedDeterministicUnderRetry is the ragged half of the resilience
// determinism lock: a shuffled epoch whose reads fail transiently and retry
// must produce bit-identical padded batches and masks to the same epoch on a
// healthy dataset.
func TestNextPaddedDeterministicUnderRetry(t *testing.T) {
	const n = 24
	clean, err := New(testDataset(n), Config{Format: raggedFormat{}, Batch: 4, Shuffle: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, wantDigest := drainPadded(t, clean.Epoch(1))

	ds := flaky(n)
	ds.blobFails[wantIdx[0]] = 2
	ds.blobFails[wantIdx[7]] = 1
	ds.labelFails[wantIdx[3]] = 2
	l, err := New(ds, Config{
		Format: raggedFormat{}, Batch: 4, Shuffle: true, Seed: 11,
		Resilience: Resilience{MaxRetries: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(1)
	gotIdx, gotDigest := drainPadded(t, it)
	if !equalInts(gotIdx, wantIdx) {
		t.Fatalf("retried epoch reordered delivery:\n got %v\nwant %v", gotIdx, wantIdx)
	}
	if gotDigest != wantDigest {
		t.Fatal("retried epoch's padded batches are not bit-identical to the clean run")
	}
	if st := it.Stats(); st.Retried != 5 {
		t.Errorf("Stats.Retried = %d, want 5", st.Retried)
	}
}

// TestNextPaddedDeterministicUnderStallRestart locks padding determinism
// across the supervisor's stall re-admission path: abandoned generations are
// re-decoded fresh, so the padded output matches a clean run bit for bit.
func TestNextPaddedDeterministicUnderStallRestart(t *testing.T) {
	const n = 32
	clean, err := New(testDataset(n), Config{Format: raggedFormat{}, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, wantDigest := drainPadded(t, clean.Epoch(0))

	in := fault.WrapStage(testDataset(n), fault.StageFaultConfig{Seed: 9, Stall: 0.1})
	defer in.Release()
	l, err := New(in, Config{
		Format: raggedFormat{}, Batch: 4,
		Supervise: SupervisorConfig{MaxRestarts: 64, StallDeadline: 0.03, StallRestart: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	gotIdx, gotDigest := drainPadded(t, it)
	if !equalInts(gotIdx, wantIdx) || gotDigest != wantDigest {
		t.Fatal("stall re-admission changed the padded epoch output")
	}
	if len(in.Log()) == 0 {
		t.Fatal("injector logged no stalls: the test exercised nothing")
	}
}

// TestCachedRaggedEpochAccounting runs a cached loader over variable-size
// blobs — every sample a different resident size — and proves the cache's
// byte accounting is exact at every point the epoch settles, including after
// evictions forced by a budget several samples small.
func TestCachedRaggedEpochAccounting(t *testing.T) {
	const n = 20
	ds := &FuncDataset{
		N: n,
		BlobFn: func(i int) ([]byte, error) {
			blob := make([]byte, 1+8*(i%7))
			blob[0] = byte(i)
			return blob, nil
		},
		LabelFn: func(i int) (*tensor.Tensor, error) {
			lb := tensor.New(tensor.F32, 1)
			lb.F32s[0] = float32(i)
			return lb, nil
		},
	}
	l, err := New(ds, Config{
		Format: raggedFormat{}, Batch: 4,
		Cache: CacheConfig{HostMemBytes: 200, NVMeBytes: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	var digests []uint64
	for epoch := 0; epoch < 3; epoch++ {
		_, d := drainPadded(t, l.Epoch(epoch))
		digests = append(digests, d)
		if err := l.Cache().VerifyAccounting(); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Fatal("cached epochs diverged from each other on ragged samples")
	}
}
