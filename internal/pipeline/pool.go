package pipeline

import (
	"sync"

	"scipp/internal/tensor"
)

// slabClass is the recycling key of a sample slab: tensors are interchangeable
// exactly when their dtype and element count match (the shape header is
// patched on reuse when it differs).
type slabClass struct {
	dt    tensor.DType
	elems int
}

// maxPooledPerClass bounds each class's freelist. The pipeline's steady
// state holds at most Prefetch samples plus a few assembled batches in
// flight, so the cap never binds in normal operation; it only stops a
// misbehaving caller from growing the pool without bound.
const maxPooledPerClass = 1024

// SlabPool recycles the pipeline's per-sample buffers: the decoded sample
// tensors the decode stage writes into, and the Batch structs (with their
// backing slices) that Iterator.Next assembles. It is the allocator the
// hotalloc analyzer recognizes — hot-path stages must draw sample-sized
// memory from here rather than the heap, and every Get must be balanced by
// a Put on all paths (the poolleak analyzer's must-release rule), either
// directly or by handing the buffer downstream.
//
// Ownership protocol: the decode stage Gets a tensor and hands it to the
// batch sink inside its decodedSample (ownership moves with the sample);
// Iterator.Next hands it to the consumer inside a Batch; Batch.Release
// returns the batch's sample tensors — never its labels, which the Dataset
// owns — and the Batch itself. A consumer that retains tensors simply skips
// Release and the pool refills from the heap, so recycling is strictly
// opt-in and never aliases live data.
//
// A SlabPool is safe for concurrent use by the stage worker pools. Reused
// tensors have unspecified contents: decode covers every element, which is
// why the pool can skip zeroing.
type SlabPool struct {
	mu      sync.Mutex
	tensors map[slabClass][]*tensor.Tensor
	batches []*Batch

	gets, hits int64
}

// NewSlabPool returns an empty pool.
func NewSlabPool() *SlabPool {
	return &SlabPool{tensors: make(map[slabClass][]*tensor.Tensor)}
}

// GetTensor returns a tensor of the given dtype and shape with unspecified
// contents, reusing a recycled slab when one of the same class is free.
func (p *SlabPool) GetTensor(dt tensor.DType, shape tensor.Shape) *tensor.Tensor {
	class := slabClass{dt: dt, elems: shape.Elems()}
	p.mu.Lock()
	p.gets++
	free := p.tensors[class]
	if n := len(free); n > 0 {
		t := free[n-1]
		free[n-1] = nil
		p.tensors[class] = free[:n-1]
		p.hits++
		p.mu.Unlock()
		if !t.Shape.Equal(shape) {
			t.Shape = shape.Clone()
		}
		return t
	}
	p.mu.Unlock()
	return tensor.New(dt, shape...)
}

// PutTensor returns t to its class's freelist. Nil tensors are ignored. The
// caller must not use t afterwards.
func (p *SlabPool) PutTensor(t *tensor.Tensor) {
	if t == nil {
		return
	}
	class := slabClass{dt: t.DT, elems: t.Shape.Elems()}
	p.mu.Lock()
	if len(p.tensors[class]) < maxPooledPerClass {
		p.tensors[class] = append(p.tensors[class], t)
	}
	p.mu.Unlock()
}

// GetBatch returns a reset Batch whose slices have at least the given
// capacity available, reusing a released one when possible. It is the
// exported face of the pool's batch freelist for consumers outside the
// loader (the data service assembles tenant batches from a shared pool);
// the returned batch's Release hands it back exactly like a loader batch.
func (p *SlabPool) GetBatch(capacity int) *Batch { return p.getBatch(capacity) }

// getBatch returns a reset Batch whose slices have at least the given
// capacity available, reusing a released one when possible.
func (p *SlabPool) getBatch(capacity int) *Batch {
	p.mu.Lock()
	if n := len(p.batches); n > 0 {
		b := p.batches[n-1]
		p.batches[n-1] = nil
		p.batches = p.batches[:n-1]
		p.mu.Unlock()
		b.pool = p
		b.released = false
		return b
	}
	p.mu.Unlock()
	return &Batch{
		Data:    make([]*tensor.Tensor, 0, capacity),
		Labels:  make([]*tensor.Tensor, 0, capacity),
		Indices: make([]int, 0, capacity),
		pool:    p,
	}
}

// putBatch clears b's slices (keeping their capacity) and shelves it.
func (p *SlabPool) putBatch(b *Batch) {
	for i := range b.Data {
		b.Data[i] = nil
	}
	for i := range b.Labels {
		b.Labels[i] = nil
	}
	b.Data = b.Data[:0]
	b.Labels = b.Labels[:0]
	b.Indices = b.Indices[:0]
	p.mu.Lock()
	if len(p.batches) < maxPooledPerClass {
		p.batches = append(p.batches, b)
	}
	p.mu.Unlock()
}

// PoolStats is a point-in-time snapshot of a SlabPool's reuse accounting.
type PoolStats struct {
	// Gets counts GetTensor calls; Hits counts the ones served from the
	// freelist rather than the heap.
	Gets, Hits int64
	// FreeTensors and FreeBatches are current freelist occupancy.
	FreeTensors, FreeBatches int
}

// Stats returns a snapshot of the pool's accounting.
func (p *SlabPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{Gets: p.gets, Hits: p.hits, FreeBatches: len(p.batches)}
	for _, free := range p.tensors {
		s.FreeTensors += len(free)
	}
	return s
}
