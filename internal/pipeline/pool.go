package pipeline

import (
	"math/bits"
	"sync"

	"scipp/internal/tensor"
)

// slabClass is the recycling key of a sample slab: tensors are
// interchangeable exactly when their dtype matches and their backing arrays
// belong to the same capacity class. Capacities are rounded up to class
// boundaries (classElems) so that ragged datasets — where nearly every
// sample has a distinct element count — still recycle slabs instead of
// degenerating into one single-tensor freelist per length; a reused slab is
// resliced down to the sample's exact element count, with its shape header
// patched. Fixed-shape datasets collapse to the old behavior: one class,
// exact reuse.
type slabClass struct {
	dt    tensor.DType
	elems int // class capacity bound, not the sample's exact count
}

// minClassElems is the smallest capacity class: tiny tensors of any length
// share one freelist rather than fragmenting across lengths 1..64.
const minClassElems = 64

// classElems rounds a requested element count up to its capacity class: the
// next multiple of an eighth of its power-of-two octave (64, 72, 80, ...,
// 128, 144, ..., 1024, 1152, ...). Worst-case over-allocation is 25% just
// above an octave boundary, amortized well below that — the standard
// size-class trade between fragmentation across classes and slack within
// one.
func classElems(n int) int {
	if n <= minClassElems {
		return minClassElems
	}
	q := 1 << (bits.Len(uint(n-1)) - 3)
	return (n + q - 1) &^ (q - 1)
}

// capClass floors a backing-array capacity to the largest class it can
// serve, so a tensor re-entering the pool is filed where every future
// GetTensor of that class fits inside it. Pool-allocated tensors have
// exactly-class capacities, so the floor is the identity for them; a
// foreign tensor below the smallest class reports 0 and is not pooled.
func capClass(c int) int {
	if c < minClassElems {
		return 0
	}
	q := 1 << (bits.Len(uint(c)) - 3)
	return c &^ (q - 1)
}

// tensorCap is the element capacity of t's backing array.
func tensorCap(t *tensor.Tensor) int {
	switch t.DT {
	case tensor.F16:
		return cap(t.F16s)
	case tensor.I16:
		return cap(t.I16s)
	default:
		return cap(t.F32s)
	}
}

// resliceTensor shapes t to exactly shape/elems within its capacity: the
// shape header is patched and the element slice resliced, never copied.
func resliceTensor(t *tensor.Tensor, shape tensor.Shape, elems int) {
	if !t.Shape.Equal(shape) {
		t.Shape = shape.Clone()
	}
	switch t.DT {
	case tensor.F16:
		t.F16s = t.F16s[:elems]
	case tensor.I16:
		t.I16s = t.I16s[:elems]
	default:
		t.F32s = t.F32s[:elems]
	}
}

// maxPooledPerClass bounds each class's freelist. The pipeline's steady
// state holds at most Prefetch samples plus a few assembled batches in
// flight, so the cap never binds in normal operation; it only stops a
// misbehaving caller from growing the pool without bound.
const maxPooledPerClass = 1024

// SlabPool recycles the pipeline's per-sample buffers: the decoded sample
// tensors the decode stage writes into, and the Batch structs (with their
// backing slices) that Iterator.Next assembles. It is the allocator the
// hotalloc analyzer recognizes — hot-path stages must draw sample-sized
// memory from here rather than the heap, and every Get must be balanced by
// a Put on all paths (the poolleak analyzer's must-release rule), either
// directly or by handing the buffer downstream.
//
// Ownership protocol: the decode stage Gets a tensor and hands it to the
// batch sink inside its decodedSample (ownership moves with the sample);
// Iterator.Next hands it to the consumer inside a Batch; Batch.Release
// returns the batch's sample tensors — never its labels, which the Dataset
// owns — and the Batch itself. A consumer that retains tensors simply skips
// Release and the pool refills from the heap, so recycling is strictly
// opt-in and never aliases live data.
//
// A SlabPool is safe for concurrent use by the stage worker pools. Reused
// tensors have unspecified contents: decode covers every element, which is
// why the pool can skip zeroing.
type SlabPool struct {
	mu      sync.Mutex
	tensors map[slabClass][]*tensor.Tensor
	batches []*Batch

	gets, hits int64
}

// NewSlabPool returns an empty pool.
func NewSlabPool() *SlabPool {
	return &SlabPool{tensors: make(map[slabClass][]*tensor.Tensor)}
}

// GetTensor returns a tensor of the given dtype and shape with unspecified
// contents, reusing a recycled slab whose capacity class covers the shape
// when one is free. The returned tensor's element slice always has capacity
// of at least the class bound — at least the requested element count — an
// invariant the fragmentation tests assert.
func (p *SlabPool) GetTensor(dt tensor.DType, shape tensor.Shape) *tensor.Tensor {
	elems := shape.Elems()
	class := slabClass{dt: dt, elems: classElems(elems)}
	p.mu.Lock()
	p.gets++
	free := p.tensors[class]
	for n := len(free); n > 0; n = len(free) {
		t := free[n-1]
		free[n-1] = nil
		free = free[:n-1]
		p.tensors[class] = free
		if tensorCap(t) < elems {
			continue // never hand out a slab the shape does not fit
		}
		p.hits++
		p.mu.Unlock()
		resliceTensor(t, shape, elems)
		return t
	}
	p.mu.Unlock()
	t := tensor.New(dt, class.elems)
	resliceTensor(t, shape, elems)
	return t
}

// PutTensor returns t to the freelist of the largest class its capacity can
// serve. Nil tensors are ignored, as are foreign tensors too small for any
// class. The caller must not use t afterwards.
func (p *SlabPool) PutTensor(t *tensor.Tensor) {
	if t == nil {
		return
	}
	class := slabClass{dt: t.DT, elems: capClass(tensorCap(t))}
	if class.elems == 0 {
		return
	}
	p.mu.Lock()
	if len(p.tensors[class]) < maxPooledPerClass {
		p.tensors[class] = append(p.tensors[class], t)
	}
	p.mu.Unlock()
}

// GetBatch returns a reset Batch whose slices have at least the given
// capacity available, reusing a released one when possible. It is the
// exported face of the pool's batch freelist for consumers outside the
// loader (the data service assembles tenant batches from a shared pool);
// the returned batch's Release hands it back exactly like a loader batch.
func (p *SlabPool) GetBatch(capacity int) *Batch { return p.getBatch(capacity) }

// getBatch returns a reset Batch whose slices have at least the given
// capacity available, reusing a released one when possible.
func (p *SlabPool) getBatch(capacity int) *Batch {
	p.mu.Lock()
	if n := len(p.batches); n > 0 {
		b := p.batches[n-1]
		p.batches[n-1] = nil
		p.batches = p.batches[:n-1]
		p.mu.Unlock()
		b.pool = p
		b.released = false
		return b
	}
	p.mu.Unlock()
	return &Batch{
		Data:    make([]*tensor.Tensor, 0, capacity),
		Labels:  make([]*tensor.Tensor, 0, capacity),
		Indices: make([]int, 0, capacity),
		pool:    p,
	}
}

// putBatch clears b's slices (keeping their capacity) and shelves it.
func (p *SlabPool) putBatch(b *Batch) {
	for i := range b.Data {
		b.Data[i] = nil
	}
	for i := range b.Labels {
		b.Labels[i] = nil
	}
	b.Data = b.Data[:0]
	b.Labels = b.Labels[:0]
	b.Indices = b.Indices[:0]
	p.mu.Lock()
	if len(p.batches) < maxPooledPerClass {
		p.batches = append(p.batches, b)
	}
	p.mu.Unlock()
}

// PoolStats is a point-in-time snapshot of a SlabPool's reuse accounting.
type PoolStats struct {
	// Gets counts GetTensor calls; Hits counts the ones served from the
	// freelist rather than the heap.
	Gets, Hits int64
	// FreeTensors and FreeBatches are current freelist occupancy.
	FreeTensors, FreeBatches int
}

// Stats returns a snapshot of the pool's accounting.
func (p *SlabPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{Gets: p.gets, Hits: p.hits, FreeBatches: len(p.batches)}
	for _, free := range p.tensors {
		s.FreeTensors += len(free)
	}
	return s
}
