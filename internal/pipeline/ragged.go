package pipeline

import (
	"fmt"

	"scipp/internal/tensor"
)

// PaddedBatch is a ragged minibatch assembled into dense tensors: samples
// that differ along their trailing axis are padded to the longest sample in
// the batch, with a mask distinguishing observations from padding. It is the
// bridge from the per-sample shape contract (decoders report each sample's
// own shape) to models that want one rectangular tensor per step.
type PaddedBatch struct {
	// Data is the batched FP32 tensor [N, lead..., Lmax]: every sample
	// widened to FP32 (exactly as train.StackData does) and padded with
	// zeros beyond its own length.
	Data *tensor.Tensor
	// Mask is the FP32 validity mask [N, Lmax]: 1 where t < Lengths[i], 0 in
	// the padding. The mask is shared across the leading axes — raggedness
	// lives only on the trailing axis.
	Mask *tensor.Tensor
	// Lengths holds each sample's own trailing-axis extent.
	Lengths []int
	// Labels holds the per-sample labels (owned by the Dataset, never
	// pooled), and Indices the dataset indices, exactly as on Batch.
	Labels  []*tensor.Tensor
	Indices []int

	pool     *SlabPool
	released bool
}

// Size returns the number of samples in the batch.
func (pb *PaddedBatch) Size() int { return len(pb.Lengths) }

// Release hands the padded tensors back to the slab pool. Idempotent,
// nil-safe, and a no-op for batches not drawn from a pool. Labels are never
// recycled — the Dataset owns them.
func (pb *PaddedBatch) Release() {
	if pb == nil || pb.pool == nil || pb.released {
		return
	}
	pb.released = true
	pb.pool.PutTensor(pb.Data)
	pb.pool.PutTensor(pb.Mask)
}

// Padded assembles the batch's per-sample tensors into one padded tensor
// pair. Samples must agree on rank and every leading axis; only the trailing
// axis may vary (including down to zero — an empty sample contributes an
// all-zero mask row). When every sample has the same length, Data is
// bit-identical to train.StackData over the same samples: the fixed-shape
// path is the degenerate case of the ragged one, not a separate code path.
//
// The padded tensors are drawn from the batch's slab pool; recycled slab
// memory is unspecified, so the padding region is zeroed explicitly. The
// source batch is left untouched — callers that are done with it release it
// themselves (NextPadded does).
func (b *Batch) Padded() (*PaddedBatch, error) {
	n := len(b.Data)
	if n == 0 {
		return nil, fmt.Errorf("pipeline: cannot pad an empty batch")
	}
	first := b.Data[0]
	rank := len(first.Shape)
	if rank == 0 {
		return nil, fmt.Errorf("pipeline: cannot pad rank-0 samples")
	}
	lead := first.Shape[:rank-1]
	maxLen := 0
	for i, s := range b.Data {
		if s.DT != first.DT {
			return nil, fmt.Errorf("pipeline: sample %d dtype %v != %v", i, s.DT, first.DT)
		}
		if len(s.Shape) != rank || !s.Shape[:rank-1].Equal(lead) {
			return nil, fmt.Errorf("pipeline: sample %d shape %v is not ragged-compatible with %v (only the trailing axis may vary)", i, s.Shape, first.Shape)
		}
		if l := s.Shape[rank-1]; l > maxLen {
			maxLen = l
		}
	}

	leadElems := lead.Elems()
	stride := leadElems * maxLen
	shape := make(tensor.Shape, 0, rank+1)
	shape = append(shape, n)
	shape = append(shape, lead...)
	shape = append(shape, maxLen)

	data := b.allocPadded(tensor.F32, shape)
	mask := b.allocPadded(tensor.F32, tensor.Shape{n, maxLen})
	lengths := make([]int, n)
	for i, s := range b.Data {
		li := s.Shape[rank-1]
		lengths[i] = li
		src := s.ToF32().F32s
		base := i * stride
		for r := 0; r < leadElems; r++ {
			row := data.F32s[base+r*maxLen : base+(r+1)*maxLen]
			copy(row, src[r*li:(r+1)*li])
			for t := li; t < maxLen; t++ {
				row[t] = 0
			}
		}
		mrow := mask.F32s[i*maxLen : (i+1)*maxLen]
		for t := range mrow {
			if t < li {
				mrow[t] = 1
			} else {
				mrow[t] = 0
			}
		}
	}
	return &PaddedBatch{
		Data:    data,
		Mask:    mask,
		Lengths: lengths,
		Labels:  append([]*tensor.Tensor(nil), b.Labels...),
		Indices: append([]int(nil), b.Indices...),
		pool:    b.pool,
	}, nil
}

func (b *Batch) allocPadded(dt tensor.DType, shape tensor.Shape) *tensor.Tensor {
	if b.pool != nil {
		return b.pool.GetTensor(dt, shape)
	}
	return tensor.New(dt, shape...)
}

// NextPadded returns the next batch in padded form, or (nil, nil) at the end
// of the epoch. It draws the same schedule-ordered batches as Next — errors,
// resilience policy, and accounting are identical — then pads each and
// releases the ragged source tensors back to the pool, so a NextPadded
// consumer recycles slabs exactly like a Next consumer that calls Release.
// Padding is a pure function of the batch's samples, so a seeded schedule
// yields bit-identical padded batches and masks run over run, with or
// without retries and stall re-admissions in between.
func (it *Iterator) NextPadded() (*PaddedBatch, error) {
	b, err := it.Next()
	if err != nil || b == nil {
		return nil, err
	}
	pb, perr := b.Padded()
	b.Release()
	if perr != nil {
		it.Close()
		return nil, perr
	}
	return pb, nil
}
