package pipeline

import (
	"bytes"
	"testing"
)

// xorTamper applies a caller-chosen XOR mask to one resident blob — the
// fuzzer's handle on arbitrary in-cache corruption patterns.
type xorTamper struct{ mask []byte }

func (x *xorTamper) Tamper(_ int, blob []byte) bool {
	changed := false
	for i := 0; i < len(blob) && i < len(x.mask); i++ {
		if x.mask[i] != 0 {
			changed = true
		}
		blob[i] ^= x.mask[i]
	}
	return changed
}

// FuzzCacheIntegrity drives arbitrary corruption patterns at a resident
// cache entry and asserts the integrity invariant: a Get either serves the
// admitted bytes exactly or quarantines — a corrupted blob never escapes the
// cache toward a Batch, and a quarantined sample re-admits cleanly.
func FuzzCacheIntegrity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xEE, 0xDD}, []byte{0x01})
	f.Add([]byte("staged-sample-payload"), []byte{0, 0, 0x80, 0, 0, 0, 0, 0, 0x40})
	f.Add([]byte{}, []byte{0xFF})
	f.Fuzz(func(t *testing.T, blob, mask []byte) {
		c := NewSampleCache(CacheConfig{HostMemBytes: 1 << 20})
		c.Put(0, blob, nil)
		tam := &xorTamper{mask: mask}
		c.SetTamper(tam)
		got, _, ok, quarantined := c.Get(0)
		corrupted := false
		for i := 0; i < len(blob) && i < len(mask); i++ {
			if mask[i] != 0 {
				corrupted = true
			}
		}
		if corrupted {
			if ok || !quarantined {
				t.Fatalf("corrupted resident served as a hit: ok=%v quarantined=%v", ok, quarantined)
			}
			if c.Len() != 0 {
				t.Fatal("quarantined entry still resident")
			}
		} else {
			if !ok || quarantined {
				t.Fatalf("pristine resident not served: ok=%v quarantined=%v", ok, quarantined)
			}
			if !bytes.Equal(got, blob) {
				t.Fatalf("hit served %v, admitted %v", got, blob)
			}
		}
		// Re-admission after any outcome must serve the clean bytes.
		c.SetTamper(nil)
		c.Put(0, blob, nil)
		got, _, ok, quarantined = c.Get(0)
		if !ok || quarantined || !bytes.Equal(got, blob) {
			t.Fatalf("re-admitted sample: got %v ok=%v quarantined=%v, want %v", got, ok, quarantined, blob)
		}
	})
}
