package pipeline

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"scipp/internal/iosim"
	"scipp/internal/tensor"
)

// CacheConfig sizes the loader's storage-hierarchy sample cache: a host
// CPU-memory tier with an NVMe spill tier below it, mirroring internal/
// iosim's residency model ("if the samples assigned to a node fit in the
// host CPU memory, a sample traverses step 1 & 2 once, while step 3 & 4 are
// repeated"). The zero value disables caching, keeping every epoch a cold
// traversal of the Dataset.
type CacheConfig struct {
	// HostMemBytes is the host-memory tier capacity; 0 disables the tier.
	HostMemBytes int64
	// NVMeBytes is the NVMe spill tier capacity; 0 disables the tier.
	// Host-tier LRU evictions demote into it instead of dropping.
	NVMeBytes int64
	// DisableIntegrity turns off end-to-end integrity verification: by
	// default every admission checksums the sample (both tiers) and every
	// hit verifies it, quarantining corrupted entries so they re-decode
	// from the dataset instead of poisoning a batch. Disable only to
	// measure the verification overhead.
	DisableIntegrity bool
	// TierFailK is how many consecutive NVMe-tier access failures mark the
	// tier dead and fail the cache over to HostMem-only degraded mode
	// (default 3). Failover drops the tier's residents (their media is
	// unreadable) and suspends demotions; recovery is probed on the Get
	// path and restores two-tier operation.
	TierFailK int
	// TierProbeEvery is how many Get calls pass between recovery probes of
	// a dead NVMe tier (default 32).
	TierProbeEvery int
}

func (c CacheConfig) enabled() bool { return c.HostMemBytes > 0 || c.NVMeBytes > 0 }

func (c CacheConfig) withTierDefaults() CacheConfig {
	if c.TierFailK <= 0 {
		c.TierFailK = 3
	}
	if c.TierProbeEvery <= 0 {
		c.TierProbeEvery = 32
	}
	return c
}

// CacheFromNode sizes a cache from a simulated node's storage hierarchy:
// the host tier gets the platform's per-node memory budget, and — for
// staged datasets — the NVMe tier gets the node NVMe capacity. This is the
// bridge from iosim's analytic residency model to the real data path.
func CacheFromNode(n iosim.Node, staged bool) CacheConfig {
	cfg := CacheConfig{HostMemBytes: n.P.MemBudgetBytes()}
	if staged {
		cfg.NVMeBytes = int64(n.P.Storage.NVMeTB * 1e12)
	}
	return cfg
}

// CacheStats is a point-in-time snapshot of a SampleCache's accounting.
type CacheStats struct {
	// Hits and Misses count Get outcomes; HostHits/NVMeHits split the hits
	// by the tier that served them.
	Hits, Misses, HostHits, NVMeHits int64
	// Demotions counts host-tier LRU evictions that moved into the NVMe
	// tier; Evictions counts samples dropped from the cache entirely.
	Demotions, Evictions int64
	// Quarantined counts hits whose payload failed integrity verification:
	// the entry was dropped and the Get reported a miss, forcing a clean
	// re-read from the dataset. Each corrupted resident counts once per
	// corrupting event, so the tally reconciles against a fault injector's
	// log.
	Quarantined int64
	// NVMeErrors counts failed NVMe-tier accesses (reads of residents and
	// demotion writes; recovery probes are not errors). Each reconciles
	// one-to-one against a tier injector's non-probe log entries.
	NVMeErrors int64
	// TierFailovers counts transitions into HostMem-only degraded mode
	// (TierFailK consecutive NVMe errors); TierRecoveries counts the
	// probe-driven restorations of two-tier operation; TierProbes counts
	// the recovery probes issued while the tier was dead; TierDropped
	// counts residents lost to a failover (their media became unreadable).
	TierFailovers, TierRecoveries, TierProbes, TierDropped int64
	// HostBytes/NVMeBytes and HostSamples/NVMeSamples are current occupancy.
	HostBytes, NVMeBytes     int64
	HostSamples, NVMeSamples int
}

// cacheEntry is one resident sample.
type cacheEntry struct {
	index int
	blob  []byte
	label *tensor.Tensor
	// sum is the admission-time checksum over blob and label, verified on
	// every hit while integrity is enabled.
	sum   uint64
	bytes int64
	level iosim.Level // HostMem or NVMe
	elem  *list.Element
}

// CacheTamper corrupts resident cache payloads in place — the hook a
// seeded bit-rot injector (fault.CacheInjector) attaches through SetTamper
// to model silent corruption on the staged NVMe/host-memory tiers. Tamper
// is called with the resident blob on every hit, before verification, and
// reports whether it modified the blob.
type CacheTamper interface {
	Tamper(index int, blob []byte) bool
}

// TierFault is the NVMe tier's fault domain — the hook a seeded tier-level
// injector (fault.TierInjector) attaches through SetTierFault to model IO
// errors, degraded bandwidth, and whole-tier death on the spill tier. The
// cache consults it on every NVMe access: reading resident sample index
// (write false), demoting or admitting it (write true), and probing a dead
// tier for recovery (index -1). A non-nil error fails the access; a failed
// read or write drops the entry (its media copy is unreadable) and counts
// toward the tier's health, while a failed probe just leaves the tier dead.
type TierFault interface {
	Access(index int, write bool) error
}

// cacheSum is the integrity checksum over a resident sample's payload: an
// FNV-1a-style fold taken 8 bytes at a time over the blob, then over the
// label's raw element bits. It detects the byte flips bit-rot injects
// without competing with the decode stage for time on the hit path.
//
// Each word is avalanched through a splitmix64-style finalizer before it
// touches the state. Folding raw words in by XOR is not enough, however the
// state is stirred afterwards: corrupting word k shifts the state by some
// delta, and XOR-ing that same delta into word k+1 cancels it exactly —
// FuzzCacheIntegrity found such two-word cancellations twice (first against
// plain xor-multiply, then against xor-multiply-xorshift; the crashers are
// committed as regression seeds). With the input avalanche, cancelling
// requires a full 64-bit preimage of the mixer, which random rot — and
// mutation search — cannot produce.
//
//scipp:hotpath
func cacheSum(blob []byte, label *tensor.Tensor) uint64 {
	const prime = 0x100000001b3
	mix := func(h, v uint64) uint64 {
		v *= 0xbf58476d1ce4e5b9
		v ^= v >> 31
		v *= 0x94d049bb133111eb
		v ^= v >> 27
		h = (h ^ v) * prime
		return h ^ h>>31
	}
	h := uint64(0xcbf29ce484222325)
	i := 0
	for ; i+8 <= len(blob); i += 8 {
		h = mix(h, binary.LittleEndian.Uint64(blob[i:]))
	}
	for ; i < len(blob); i++ {
		h = mix(h, uint64(blob[i]))
	}
	if label != nil {
		h = mix(h, uint64(label.DT))
		for _, f := range label.F32s {
			h = mix(h, uint64(math.Float32bits(f)))
		}
		for _, b := range label.F16s {
			h = mix(h, uint64(b))
		}
		for _, v := range label.I16s {
			h = mix(h, uint64(uint16(v)))
		}
	}
	return h
}

// SampleCache is the capacity-bounded sample store behind CacheStage: a
// two-tier (HostMem over NVMe) LRU keyed by dataset index. Eviction is
// deterministic in the access order — the least recently used host entry
// demotes to the NVMe tier, and the least recently used NVMe entry drops —
// so a given sequence of Get/Put calls always leaves the same residency.
// It is safe for concurrent use by the read-stage workers; the cache (and
// therefore the residency it builds up during epoch 0) is shared by every
// epoch of its Loader.
type SampleCache struct {
	cfg CacheConfig

	mu        sync.Mutex
	tamper    CacheTamper // nil outside fault-injection runs
	tier      TierFault   // nil outside fault-injection runs
	nvmeDead  bool        // HostMem-only degraded mode: demotions suspended
	nvmeErrs  int         // consecutive NVMe access failures toward TierFailK
	probeIn   int         // Get calls until the next recovery probe
	entries   map[int]*cacheEntry
	host      *list.List // front = most recently used
	nvme      *list.List
	hostBytes int64
	nvmeBytes int64
	stats     CacheStats
}

// NewSampleCache returns an empty cache with the given tier capacities.
func NewSampleCache(cfg CacheConfig) *SampleCache {
	return &SampleCache{
		cfg:     cfg.withTierDefaults(),
		entries: make(map[int]*cacheEntry),
		host:    list.New(),
		nvme:    list.New(),
	}
}

// SetTamper installs (or, with nil, removes) the cache's corruption hook.
// Chaos harnesses attach a fault.CacheInjector here so seeded bit rot hits
// the resident copies exactly where real media corruption would.
func (c *SampleCache) SetTamper(t CacheTamper) {
	c.mu.Lock()
	c.tamper = t
	c.mu.Unlock()
}

// SetTierFault installs (or, with nil, removes) the NVMe tier's fault hook.
// Chaos harnesses attach a fault.TierInjector here so seeded tier faults
// hit exactly the accesses a degraded or dying device would fail.
func (c *SampleCache) SetTierFault(t TierFault) {
	c.mu.Lock()
	c.tier = t
	c.mu.Unlock()
}

// TierHealthy reports whether the NVMe tier is in service (true until
// TierFailK consecutive access failures, and again after a successful
// recovery probe).
func (c *SampleCache) TierHealthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.nvmeDead
}

// nvmeReadLocked performs the tier access for a Get served from NVMe. It
// reports whether the read succeeded; on failure the entry is dropped (its
// media copy is unreadable) and the tier's health is charged.
func (c *SampleCache) nvmeReadLocked(e *cacheEntry) bool {
	if c.tier == nil {
		return true
	}
	if err := c.tier.Access(e.index, false); err != nil {
		c.noteNVMeErrorLocked()
		c.removeLocked(e)
		return false
	}
	c.nvmeErrs = 0
	return true
}

// nvmeWriteLocked performs the tier access for a demotion or admission into
// NVMe. It reports whether the write succeeded; a failure charges the
// tier's health and the caller drops the entry instead.
func (c *SampleCache) nvmeWriteLocked(index int) bool {
	if c.tier == nil {
		return true
	}
	if err := c.tier.Access(index, true); err != nil {
		c.noteNVMeErrorLocked()
		return false
	}
	c.nvmeErrs = 0
	return true
}

// noteNVMeErrorLocked charges one failed NVMe access toward the tier's
// health, failing the cache over to HostMem-only mode at TierFailK
// consecutive failures. The failover drops every NVMe resident — the tier
// that held them is unreadable — and suspends demotions; the entries
// re-decode from the dataset on their next access, so output stays
// bit-identical.
func (c *SampleCache) noteNVMeErrorLocked() {
	c.stats.NVMeErrors++
	c.nvmeErrs++
	if c.nvmeDead || c.nvmeErrs < c.cfg.TierFailK {
		return
	}
	c.nvmeDead = true
	c.nvmeErrs = 0
	c.probeIn = c.cfg.TierProbeEvery
	c.stats.TierFailovers++
	for c.nvme.Len() > 0 {
		e := c.nvme.Back().Value.(*cacheEntry)
		c.removeLocked(e)
		c.stats.TierDropped++
	}
}

// probeTierLocked issues a recovery probe against a dead NVMe tier every
// TierProbeEvery Get calls. A successful probe restores two-tier operation:
// demotions resume and the tier refills through the normal LRU flow, so the
// recovered cache serves the same bytes it would have without the outage.
func (c *SampleCache) probeTierLocked() {
	if !c.nvmeDead || c.tier == nil {
		return
	}
	c.probeIn--
	if c.probeIn > 0 {
		return
	}
	c.probeIn = c.cfg.TierProbeEvery
	c.stats.TierProbes++
	if c.tier.Access(-1, false) == nil {
		c.nvmeDead = false
		c.nvmeErrs = 0
		c.stats.TierRecoveries++
	}
}

// Get returns sample i if resident, refreshing its recency within its tier.
// While integrity is enabled the resident payload is verified against its
// admission checksum first: a corrupted entry is quarantined — dropped and
// counted, with quarantined reporting the drop — and the Get is a miss, so
// the caller re-reads the sample from the dataset and batch output stays
// bit-identical to an uncorrupted run.
func (c *SampleCache) Get(i int) (blob []byte, label *tensor.Tensor, ok, quarantined bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probeTierLocked()
	e, found := c.entries[i]
	if !found {
		c.stats.Misses++
		return nil, nil, false, false
	}
	if e.level == iosim.NVMe && !c.nvmeReadLocked(e) {
		// The tier failed the read: the resident is gone, so the caller
		// re-reads from the dataset and output stays bit-identical.
		c.stats.Misses++
		return nil, nil, false, false
	}
	if c.tamper != nil {
		c.tamper.Tamper(i, e.blob)
	}
	if !c.cfg.DisableIntegrity && cacheSum(e.blob, e.label) != e.sum {
		c.removeLocked(e)
		c.stats.Quarantined++
		c.stats.Misses++
		return nil, nil, false, true
	}
	c.stats.Hits++
	if e.level == iosim.HostMem {
		c.stats.HostHits++
		c.host.MoveToFront(e.elem)
	} else {
		c.stats.NVMeHits++
		c.nvme.MoveToFront(e.elem)
	}
	return e.blob, e.label, true, false
}

// Put inserts sample i, evicting least-recently-used residents as needed.
// New samples land in the host tier (falling through to NVMe when they
// cannot fit host memory at all); overflow demotes host LRU entries to the
// NVMe tier and drops NVMe LRU entries. Samples larger than every tier are
// not cached. Re-putting a resident index refreshes its payload in place.
// The blob is copied at admission: the cache must own its resident bytes so
// that corruption of a cached copy (bit rot, injected or real) can never
// reach the dataset's memory and survive a quarantine re-read. It returns
// the number of samples dropped from the cache by this call, so callers can
// feed eviction metrics without re-reading shared state.
func (c *SampleCache) Put(i int, blob []byte, label *tensor.Tensor) int {
	size := int64(len(blob))
	if label != nil {
		size += int64(label.Bytes())
	}
	//lint:ignore hotalloc the cache must own its resident bytes: tamper/rot must never reach dataset memory
	blob = append([]byte(nil), blob...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[i]; ok {
		c.removeLocked(e)
	}
	e := &cacheEntry{index: i, blob: blob, label: label, bytes: size, sum: cacheSum(blob, label)}
	switch {
	case size <= c.cfg.HostMemBytes:
		e.level = iosim.HostMem
		e.elem = c.host.PushFront(e)
		c.hostBytes += size
	case size <= c.cfg.NVMeBytes:
		if c.nvmeDead || !c.nvmeWriteLocked(i) {
			return 0 // the only tier that fits is out of service
		}
		e.level = iosim.NVMe
		e.elem = c.nvme.PushFront(e)
		c.nvmeBytes += size
	default:
		return 0 // fits nowhere: uncacheable
	}
	c.entries[i] = e
	return c.rebalanceLocked()
}

// rebalanceLocked restores both tier capacity invariants: host overflow
// demotes LRU entries to NVMe (or drops them when no NVMe tier fits, or
// while the tier is failed over and demotions are suspended), then NVMe
// overflow drops LRU entries. It returns the number of drops.
func (c *SampleCache) rebalanceLocked() int {
	dropped := 0
	for c.hostBytes > c.cfg.HostMemBytes {
		e := c.host.Back().Value.(*cacheEntry)
		c.host.Remove(e.elem)
		c.hostBytes -= e.bytes
		if e.bytes <= c.cfg.NVMeBytes && !c.nvmeDead && c.nvmeWriteLocked(e.index) {
			e.level = iosim.NVMe
			e.elem = c.nvme.PushFront(e)
			c.nvmeBytes += e.bytes
			c.stats.Demotions++
			continue
		}
		delete(c.entries, e.index)
		c.stats.Evictions++
		dropped++
	}
	for c.nvmeBytes > c.cfg.NVMeBytes {
		e := c.nvme.Back().Value.(*cacheEntry)
		c.removeLocked(e)
		c.stats.Evictions++
		dropped++
	}
	return dropped
}

// removeLocked detaches e from its tier and the index.
func (c *SampleCache) removeLocked(e *cacheEntry) {
	if e.level == iosim.HostMem {
		c.host.Remove(e.elem)
		c.hostBytes -= e.bytes
	} else {
		c.nvme.Remove(e.elem)
		c.nvmeBytes -= e.bytes
	}
	delete(c.entries, e.index)
}

// VerifyAccounting re-derives the cache's byte accounting from the resident
// entries themselves and checks it against the incrementally maintained
// counters and the configured budgets. With per-entry sizes varying sample
// by sample (the ragged domains), a single missed add or subtract in the
// Put/demote/evict flow silently drifts the budget enforcement; this walk
// proves, at any quiescent point, that Σ entry bytes per tier equals the
// tier counter, every entry's recorded size matches its payload, each list
// resident is indexed under its own key at its recorded level, and neither
// tier exceeds its capacity. It reports the first discrepancy found; tests
// call it after every mutation batch.
func (c *SampleCache) VerifyAccounting() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tiers := []struct {
		name  string
		l     *list.List
		level iosim.Level
		sum   int64
		cap   int64
	}{
		{"host", c.host, iosim.HostMem, c.hostBytes, c.cfg.HostMemBytes},
		{"nvme", c.nvme, iosim.NVMe, c.nvmeBytes, c.cfg.NVMeBytes},
	}
	residents := 0
	for _, tier := range tiers {
		var sum int64
		for el := tier.l.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			if e.level != tier.level {
				return fmt.Errorf("cache: sample %d on the %s list records level %v", e.index, tier.name, e.level)
			}
			want := int64(len(e.blob))
			if e.label != nil {
				want += int64(e.label.Bytes())
			}
			if e.bytes != want {
				return fmt.Errorf("cache: sample %d accounts %d bytes, payload is %d", e.index, e.bytes, want)
			}
			if c.entries[e.index] != e {
				return fmt.Errorf("cache: sample %d resident on the %s list but not indexed", e.index, tier.name)
			}
			sum += e.bytes
			residents++
		}
		if sum != tier.sum {
			return fmt.Errorf("cache: %s tier counter %d, Σ entry bytes %d", tier.name, tier.sum, sum)
		}
		if sum > tier.cap {
			return fmt.Errorf("cache: %s tier holds %d bytes over its %d budget", tier.name, sum, tier.cap)
		}
	}
	if residents != len(c.entries) {
		return fmt.Errorf("cache: %d list residents, %d indexed", residents, len(c.entries))
	}
	return nil
}

// Stats returns a snapshot of the cache's accounting.
func (c *SampleCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.HostBytes, s.NVMeBytes = c.hostBytes, c.nvmeBytes
	s.HostSamples, s.NVMeSamples = c.host.Len(), c.nvme.Len()
	return s
}

// Len returns the number of resident samples.
func (c *SampleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStage is the storage-aware read stage: it serves resident samples
// from the SampleCache and delegates misses to the inner ReadStage, whose
// successful reads populate the cache — so epoch 0 is the cold traversal
// that builds residency and later epochs read from the hierarchy level the
// paper's model predicts. Hits and misses are counted on the
// pipeline.cache.* metrics; both paths run under the pipeline.read span so
// stage accounting is identical with and without a cache.
type CacheStage struct {
	read  *ReadStage
	cache *SampleCache
	ob    iterObs
}

// Name implements Stage.
func (s *CacheStage) Name() string { return "read" }

// Process implements Stage[struct{}, rawSample]. The hit path hands out the
// cache's resident blob and label without copying — decode only reads the
// blob, and the copydiscipline analyzer keeps clone idioms off this path. A
// hit that fails integrity verification becomes a miss: the quarantined
// entry re-reads from the dataset and re-admits, so a corrupted resident
// can never reach a batch.
//
//scipp:hotpath
func (s *CacheStage) Process(index int, _ struct{}) (rawSample, error) {
	sp := s.ob.read.Start()
	defer sp.End()
	blob, label, ok, quarantined := s.cache.Get(index)
	if ok {
		s.ob.cacheHits.Inc()
		return rawSample{blob: blob, label: label}, nil
	}
	if quarantined {
		s.ob.cacheQuarantined.Inc()
	}
	s.ob.cacheMisses.Inc()
	r, err := s.read.fetch(index)
	if err != nil {
		return rawSample{}, err
	}
	if dropped := s.cache.Put(index, r.blob, r.label); dropped > 0 {
		s.ob.cacheEvictions.Add(int64(dropped))
	}
	return r, nil
}
