package pipeline

import (
	"container/list"
	"sync"

	"scipp/internal/iosim"
	"scipp/internal/tensor"
)

// CacheConfig sizes the loader's storage-hierarchy sample cache: a host
// CPU-memory tier with an NVMe spill tier below it, mirroring internal/
// iosim's residency model ("if the samples assigned to a node fit in the
// host CPU memory, a sample traverses step 1 & 2 once, while step 3 & 4 are
// repeated"). The zero value disables caching, keeping every epoch a cold
// traversal of the Dataset.
type CacheConfig struct {
	// HostMemBytes is the host-memory tier capacity; 0 disables the tier.
	HostMemBytes int64
	// NVMeBytes is the NVMe spill tier capacity; 0 disables the tier.
	// Host-tier LRU evictions demote into it instead of dropping.
	NVMeBytes int64
}

func (c CacheConfig) enabled() bool { return c.HostMemBytes > 0 || c.NVMeBytes > 0 }

// CacheFromNode sizes a cache from a simulated node's storage hierarchy:
// the host tier gets the platform's per-node memory budget, and — for
// staged datasets — the NVMe tier gets the node NVMe capacity. This is the
// bridge from iosim's analytic residency model to the real data path.
func CacheFromNode(n iosim.Node, staged bool) CacheConfig {
	cfg := CacheConfig{HostMemBytes: n.P.MemBudgetBytes()}
	if staged {
		cfg.NVMeBytes = int64(n.P.Storage.NVMeTB * 1e12)
	}
	return cfg
}

// CacheStats is a point-in-time snapshot of a SampleCache's accounting.
type CacheStats struct {
	// Hits and Misses count Get outcomes; HostHits/NVMeHits split the hits
	// by the tier that served them.
	Hits, Misses, HostHits, NVMeHits int64
	// Demotions counts host-tier LRU evictions that moved into the NVMe
	// tier; Evictions counts samples dropped from the cache entirely.
	Demotions, Evictions int64
	// HostBytes/NVMeBytes and HostSamples/NVMeSamples are current occupancy.
	HostBytes, NVMeBytes     int64
	HostSamples, NVMeSamples int
}

// cacheEntry is one resident sample.
type cacheEntry struct {
	index int
	blob  []byte
	label *tensor.Tensor
	bytes int64
	level iosim.Level // HostMem or NVMe
	elem  *list.Element
}

// SampleCache is the capacity-bounded sample store behind CacheStage: a
// two-tier (HostMem over NVMe) LRU keyed by dataset index. Eviction is
// deterministic in the access order — the least recently used host entry
// demotes to the NVMe tier, and the least recently used NVMe entry drops —
// so a given sequence of Get/Put calls always leaves the same residency.
// It is safe for concurrent use by the read-stage workers; the cache (and
// therefore the residency it builds up during epoch 0) is shared by every
// epoch of its Loader.
type SampleCache struct {
	cfg CacheConfig

	mu        sync.Mutex
	entries   map[int]*cacheEntry
	host      *list.List // front = most recently used
	nvme      *list.List
	hostBytes int64
	nvmeBytes int64
	stats     CacheStats
}

// NewSampleCache returns an empty cache with the given tier capacities.
func NewSampleCache(cfg CacheConfig) *SampleCache {
	return &SampleCache{
		cfg:     cfg,
		entries: make(map[int]*cacheEntry),
		host:    list.New(),
		nvme:    list.New(),
	}
}

// Get returns sample i if resident, refreshing its recency within its tier.
func (c *SampleCache) Get(i int) ([]byte, *tensor.Tensor, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[i]
	if !ok {
		c.stats.Misses++
		return nil, nil, false
	}
	c.stats.Hits++
	if e.level == iosim.HostMem {
		c.stats.HostHits++
		c.host.MoveToFront(e.elem)
	} else {
		c.stats.NVMeHits++
		c.nvme.MoveToFront(e.elem)
	}
	return e.blob, e.label, true
}

// Put inserts sample i, evicting least-recently-used residents as needed.
// New samples land in the host tier (falling through to NVMe when they
// cannot fit host memory at all); overflow demotes host LRU entries to the
// NVMe tier and drops NVMe LRU entries. Samples larger than every tier are
// not cached. Re-putting a resident index refreshes its payload in place.
// It returns the number of samples dropped from the cache by this call, so
// callers can feed eviction metrics without re-reading shared state.
func (c *SampleCache) Put(i int, blob []byte, label *tensor.Tensor) int {
	size := int64(len(blob))
	if label != nil {
		size += int64(label.Bytes())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[i]; ok {
		c.removeLocked(e)
	}
	e := &cacheEntry{index: i, blob: blob, label: label, bytes: size}
	switch {
	case size <= c.cfg.HostMemBytes:
		e.level = iosim.HostMem
		e.elem = c.host.PushFront(e)
		c.hostBytes += size
	case size <= c.cfg.NVMeBytes:
		e.level = iosim.NVMe
		e.elem = c.nvme.PushFront(e)
		c.nvmeBytes += size
	default:
		return 0 // fits nowhere: uncacheable
	}
	c.entries[i] = e
	return c.rebalanceLocked()
}

// rebalanceLocked restores both tier capacity invariants: host overflow
// demotes LRU entries to NVMe (or drops them when no NVMe tier fits), then
// NVMe overflow drops LRU entries. It returns the number of drops.
func (c *SampleCache) rebalanceLocked() int {
	dropped := 0
	for c.hostBytes > c.cfg.HostMemBytes {
		e := c.host.Back().Value.(*cacheEntry)
		c.host.Remove(e.elem)
		c.hostBytes -= e.bytes
		if e.bytes <= c.cfg.NVMeBytes {
			e.level = iosim.NVMe
			e.elem = c.nvme.PushFront(e)
			c.nvmeBytes += e.bytes
			c.stats.Demotions++
			continue
		}
		delete(c.entries, e.index)
		c.stats.Evictions++
		dropped++
	}
	for c.nvmeBytes > c.cfg.NVMeBytes {
		e := c.nvme.Back().Value.(*cacheEntry)
		c.removeLocked(e)
		c.stats.Evictions++
		dropped++
	}
	return dropped
}

// removeLocked detaches e from its tier and the index.
func (c *SampleCache) removeLocked(e *cacheEntry) {
	if e.level == iosim.HostMem {
		c.host.Remove(e.elem)
		c.hostBytes -= e.bytes
	} else {
		c.nvme.Remove(e.elem)
		c.nvmeBytes -= e.bytes
	}
	delete(c.entries, e.index)
}

// Stats returns a snapshot of the cache's accounting.
func (c *SampleCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.HostBytes, s.NVMeBytes = c.hostBytes, c.nvmeBytes
	s.HostSamples, s.NVMeSamples = c.host.Len(), c.nvme.Len()
	return s
}

// Len returns the number of resident samples.
func (c *SampleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStage is the storage-aware read stage: it serves resident samples
// from the SampleCache and delegates misses to the inner ReadStage, whose
// successful reads populate the cache — so epoch 0 is the cold traversal
// that builds residency and later epochs read from the hierarchy level the
// paper's model predicts. Hits and misses are counted on the
// pipeline.cache.* metrics; both paths run under the pipeline.read span so
// stage accounting is identical with and without a cache.
type CacheStage struct {
	read  *ReadStage
	cache *SampleCache
	ob    iterObs
}

// Name implements Stage.
func (s *CacheStage) Name() string { return "read" }

// Process implements Stage[struct{}, rawSample]. The hit path hands out the
// cache's resident blob and label without copying — decode only reads the
// blob, and the copydiscipline analyzer keeps clone idioms off this path.
//
//scipp:hotpath
func (s *CacheStage) Process(index int, _ struct{}) (rawSample, error) {
	sp := s.ob.read.Start()
	defer sp.End()
	if blob, label, ok := s.cache.Get(index); ok {
		s.ob.cacheHits.Inc()
		return rawSample{blob: blob, label: label}, nil
	}
	s.ob.cacheMisses.Inc()
	r, err := s.read.fetch(index)
	if err != nil {
		return rawSample{}, err
	}
	if dropped := s.cache.Put(index, r.blob, r.label); dropped > 0 {
		s.ob.cacheEvictions.Add(int64(dropped))
	}
	return r, nil
}
