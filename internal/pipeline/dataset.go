package pipeline

import (
	"fmt"

	"scipp/internal/tensor"
)

// Dataset is indexed access to encoded sample blobs and their labels.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Blob returns the encoded bytes of sample i.
	Blob(i int) ([]byte, error)
	// Label returns the training label of sample i.
	Label(i int) (*tensor.Tensor, error)
}

// RangeError reports a Dataset access outside [0, Len). Every Dataset in
// this package surfaces out-of-bounds indices as one, so callers can
// distinguish a bad schedule from a failing storage read with errors.As.
type RangeError struct {
	// Kind names the accessor: "sample" for Blob, "label" for Label.
	Kind string
	// Index is the offending index.
	Index int
	// Len is the dataset length the index was checked against.
	Len int
}

// Error implements error.
func (e *RangeError) Error() string {
	return fmt.Sprintf("pipeline: %s %d out of range [0,%d)", e.Kind, e.Index, e.Len)
}

// checkIndex validates i against [0, n), returning a typed *RangeError on
// violation — the one bounds check shared by every Dataset implementation.
func checkIndex(kind string, i, n int) error {
	if i < 0 || i >= n {
		return &RangeError{Kind: kind, Index: i, Len: n}
	}
	return nil
}

// MemDataset is an in-memory Dataset.
type MemDataset struct {
	Blobs  [][]byte
	Labels []*tensor.Tensor
}

// Len implements Dataset.
func (d *MemDataset) Len() int { return len(d.Blobs) }

// Blob implements Dataset.
func (d *MemDataset) Blob(i int) ([]byte, error) {
	if err := checkIndex("sample", i, len(d.Blobs)); err != nil {
		return nil, err
	}
	return d.Blobs[i], nil
}

// Label implements Dataset.
func (d *MemDataset) Label(i int) (*tensor.Tensor, error) {
	if err := checkIndex("label", i, len(d.Labels)); err != nil {
		return nil, err
	}
	return d.Labels[i], nil
}

// EncodedBytes returns the dataset's total encoded footprint.
func (d *MemDataset) EncodedBytes() int {
	n := 0
	for _, b := range d.Blobs {
		n += len(b)
	}
	return n
}
