package pipeline

import (
	"fmt"

	"scipp/internal/xrand"
)

// Source supplies the sample schedule of each epoch — the first node of the
// staged DAG. It replaces the loader's old inline schedule so ordering
// policies (sequential, shuffled, sharded-by-rank) compose with the rest of
// the pipeline instead of being hard-wired into it.
type Source interface {
	// Len returns the number of samples one epoch of this source yields.
	Len() int
	// Order returns the epoch's dataset indices, in consumption order. The
	// result must be stable for a given epoch: schedules are re-derived on
	// resume and must replay bit-identically.
	Order(epoch int) []int
}

// SequentialSource yields 0..N-1 in order every epoch.
type SequentialSource struct {
	// N is the dataset length.
	N int
}

// Len implements Source.
func (s *SequentialSource) Len() int { return s.N }

// Order implements Source.
func (s *SequentialSource) Order(int) []int { return identity(s.N) }

// ShuffledSource yields a per-epoch deterministic permutation of 0..N-1,
// derived from (Seed, epoch) exactly as the pre-DAG loader did, so existing
// seeded runs reproduce bit-identically.
type ShuffledSource struct {
	// N is the dataset length.
	N int
	// Seed drives the per-epoch derived shuffle.
	Seed uint64
}

// Len implements Source.
func (s *ShuffledSource) Len() int { return s.N }

// Order implements Source.
func (s *ShuffledSource) Order(epoch int) []int {
	return shuffled(identity(s.N), s.Seed, epoch)
}

// ShardedSource yields rank's strided share of the (optionally shuffled)
// epoch permutation: indices at positions Rank, Rank+World, ... — the
// DistributedSampler contract. All ranks derive the same permutation from
// (Seed, epoch), so the shards partition each epoch exactly.
type ShardedSource struct {
	// N is the dataset length.
	N int
	// Seed drives the shared per-epoch shuffle (ignored unless Shuffle).
	Seed uint64
	// Shuffle reshuffles the global order each epoch before sharding.
	Shuffle bool
	// Rank is this consumer's shard in [0, World).
	Rank int
	// World is the total shard count.
	World int
}

// Validate reports an impossible shard geometry.
func (s *ShardedSource) Validate() error {
	if s.World <= 0 || s.Rank < 0 || s.Rank >= s.World {
		return fmt.Errorf("pipeline: sharded source rank %d of world %d", s.Rank, s.World)
	}
	return nil
}

// Len implements Source: the size of this rank's shard.
func (s *ShardedSource) Len() int {
	if s.World <= 0 {
		return 0
	}
	n := s.N / s.World
	if s.Rank < s.N%s.World {
		n++
	}
	return n
}

// Order implements Source.
func (s *ShardedSource) Order(epoch int) []int {
	if s.World <= 0 {
		return nil
	}
	order := identity(s.N)
	if s.Shuffle {
		order = shuffled(order, s.Seed, epoch)
	}
	shard := make([]int, 0, s.Len())
	for i := s.Rank; i < len(order); i += s.World {
		shard = append(shard, order[i])
	}
	return shard
}

// identity returns 0..n-1.
func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// shuffled permutes order in place with the per-epoch derived seed the
// loader has always used; changing this constant breaks resume replay.
func shuffled(order []int, seed uint64, epoch int) []int {
	rng := xrand.New(seed ^ (uint64(epoch)+1)*0x9E3779B97F4A7C15)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}
