package pipeline

import (
	"errors"
	"fmt"
	"testing"

	"scipp/internal/fault"
	"scipp/internal/obs"
)

// stubTier is a hand-driven TierFault: every access outcome is scripted by
// the test, so failover/probe/recovery transitions can be pinned exactly.
type stubTier struct {
	fail     bool
	accesses []string // "r <i>" / "w <i>" / "p" trace, in call order
}

func (s *stubTier) Access(index int, write bool) error {
	switch {
	case index < 0:
		s.accesses = append(s.accesses, "p")
	case write:
		s.accesses = append(s.accesses, fmt.Sprintf("w %d", index))
	default:
		s.accesses = append(s.accesses, fmt.Sprintf("r %d", index))
	}
	if s.fail {
		return errors.New("stub tier failure")
	}
	return nil
}

// TestTierFailoverDuringEviction kills the NVMe tier in the middle of an
// eviction pass: a demotion write inside rebalanceLocked fails, the tier
// trips to dead with residents still on it, and the failover must purge
// those residents (TierDropped), drop the in-flight demotion as a plain
// eviction, and suspend further demotions — all without touching the tier
// again while it is dead.
func TestTierFailoverDuringEviction(t *testing.T) {
	st := &stubTier{}
	c := NewSampleCache(CacheConfig{
		HostMemBytes: 2 * testSampleCost,
		NVMeBytes:    10 * testSampleCost,
		TierFailK:    1,
	})
	c.SetTierFault(st)

	// Fill host and demote two entries onto the healthy tier.
	for i := 0; i < 4; i++ {
		if dropped := putSample(c, i); dropped != 0 {
			t.Fatalf("put %d dropped %d entries with the tier healthy", i, dropped)
		}
	}
	if s := c.Stats(); s.Demotions != 2 || s.NVMeSamples != 2 {
		t.Fatalf("healthy-tier demotions = %d (%d resident), want 2 (2)", s.Demotions, s.NVMeSamples)
	}

	// Kill the tier: the next overflow's demotion write fails mid-eviction.
	st.fail = true
	if dropped := putSample(c, 4); dropped != 1 {
		t.Fatalf("put during tier death dropped %d entries, want 1 (the failed demotion)", dropped)
	}
	s := c.Stats()
	if s.NVMeErrors != 1 || s.TierFailovers != 1 {
		t.Errorf("NVMeErrors/TierFailovers = %d/%d, want 1/1", s.NVMeErrors, s.TierFailovers)
	}
	if s.TierDropped != 2 || s.NVMeSamples != 0 {
		t.Errorf("failover purged %d residents (%d left), want 2 (0)", s.TierDropped, s.NVMeSamples)
	}
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (the demotion that had nowhere to go)", s.Evictions)
	}
	if c.TierHealthy() {
		t.Error("tier still healthy after failover")
	}

	// Degraded mode: overflow evicts without consulting the dead tier.
	before := len(st.accesses)
	if dropped := putSample(c, 5); dropped != 1 {
		t.Fatalf("degraded-mode put dropped %d entries, want 1", dropped)
	}
	if got := st.accesses[before:]; len(got) != 0 {
		t.Errorf("degraded-mode eviction touched the dead tier: %v", got)
	}
	// The purged residents are gone: their Gets miss and re-reads stay clean.
	for _, i := range []int{0, 1} {
		if _, _, ok, quarantined := c.Get(i); ok || quarantined {
			t.Errorf("purged sample %d: ok=%v quarantined=%v, want plain miss", i, ok, quarantined)
		}
	}
}

// TestTierReadFailureAndRecovery drives the read path: NVMe-resident Gets
// fail one by one until the tier trips, then recovery probes (every
// TierProbeEvery Gets) restore two-tier operation and demotions resume.
func TestTierReadFailureAndRecovery(t *testing.T) {
	st := &stubTier{}
	c := NewSampleCache(CacheConfig{
		HostMemBytes:   2 * testSampleCost,
		NVMeBytes:      10 * testSampleCost,
		TierFailK:      2,
		TierProbeEvery: 3,
	})
	c.SetTierFault(st)
	for i := 0; i < 4; i++ {
		putSample(c, i)
	}

	st.fail = true
	// Two failed NVMe reads: the first drops its entry, the second trips the
	// tier and purges the one remaining resident.
	for k, i := range []int{0, 1} {
		if _, _, ok, _ := c.Get(i); ok {
			t.Fatalf("read %d of dead media reported a hit", k)
		}
	}
	s := c.Stats()
	if s.NVMeErrors != 2 || s.TierFailovers != 1 || s.TierDropped != 1 {
		t.Fatalf("after read failures: errors=%d failovers=%d dropped=%d, want 2/1/1",
			s.NVMeErrors, s.TierFailovers, s.TierDropped)
	}

	// The tier heals; the cache notices on its next probe (every 3rd Get).
	st.fail = false
	for g := 0; g < 3; g++ {
		c.Get(2) // host hit; drives the probe countdown
	}
	s = c.Stats()
	if s.TierProbes != 1 || s.TierRecoveries != 1 {
		t.Fatalf("probes/recoveries = %d/%d, want 1/1", s.TierProbes, s.TierRecoveries)
	}
	if !c.TierHealthy() {
		t.Fatal("tier not healthy after successful probe")
	}
	// Demotions resume onto the recovered tier.
	putSample(c, 6)
	if s := c.Stats(); s.NVMeSamples != 1 {
		t.Errorf("post-recovery demotion left %d NVMe residents, want 1", s.NVMeSamples)
	}
}

// TestTierDeathRunBitIdentical is the end-to-end bit-identity lock for the
// failover path: a cached multi-epoch run whose NVMe tier dies mid-run and
// later revives must deliver exactly the bytes of an unfaulted twin, and
// the cache's error/failover/probe accounting must reconcile exactly
// against the injector's log.
func TestTierDeathRunBitIdentical(t *testing.T) {
	const n = 24
	mk := func(reg *obs.Registry) *Loader {
		l, err := New(testDataset(n), Config{
			Format:  countFormat{},
			Batch:   4,
			Shuffle: true,
			Seed:    17,
			Cache: CacheConfig{
				HostMemBytes:   8 * testSampleCost, // force demotions
				NVMeBytes:      n * testSampleCost,
				TierFailK:      2,
				TierProbeEvery: 4,
			},
			Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	clean := collectRun(t, mk(obs.NewRegistry()), 4)

	faulted := mk(obs.NewRegistry())
	ti := fault.WrapTier(fault.TierFaultConfig{
		Seed:              5,
		DieAfter:          20, // dies while epoch-residency is being built
		ReviveAfterProbes: 2,
	})
	faulted.Cache().SetTierFault(ti)
	got := collectRun(t, faulted, 4)

	if len(got) != len(clean) {
		t.Fatalf("faulted run delivered %d samples, clean %d", len(got), len(clean))
	}
	for i := range got {
		if got[i] != clean[i] {
			t.Fatalf("delivery %d diverges under tier death: %s vs %s", i, got[i], clean[i])
		}
	}

	s := faulted.Cache().Stats()
	logged := int64(0)
	for _, inj := range ti.Log() {
		if inj.Kind == fault.TierIO || inj.Kind == fault.TierDead {
			logged++
		}
	}
	if logged == 0 {
		t.Fatal("tier injector logged nothing: death schedule never fired")
	}
	if s.NVMeErrors != logged {
		t.Errorf("cache NVMeErrors %d != injector-logged failures %d", s.NVMeErrors, logged)
	}
	if s.TierFailovers != 1 || s.TierRecoveries != 1 {
		t.Errorf("failovers/recoveries = %d/%d, want 1/1 for one death+revival", s.TierFailovers, s.TierRecoveries)
	}
	if s.TierProbes < 2 {
		t.Errorf("probes = %d, want >= 2 (revival on the 2nd)", s.TierProbes)
	}
}

// TestTierInjectorDeterminism pins the injector contract: the same seed and
// schedule produce the same log, and the death schedule is a pure function
// of the access count.
func TestTierInjectorDeterminism(t *testing.T) {
	runInjector := func() []fault.Injection {
		ti := fault.WrapTier(fault.TierFaultConfig{Seed: 9, IOErr: 0.5, DieAfter: 10, ReviveAfterProbes: 3})
		for a := 0; a < 14; a++ {
			ti.Access(a%7, a%2 == 0) //nolint special pattern: alternating read/write
		}
		for p := 0; p < 3; p++ {
			ti.Access(-1, false)
		}
		ti.Access(3, false) // post-revival access
		return ti.Log()
	}
	a, b := runInjector(), runInjector()
	if len(a) == 0 {
		t.Fatal("injector logged nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("log lengths differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("log entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	sum := fault.WrapTier(fault.TierFaultConfig{Seed: 9, DieAfter: 1})
	sum.Access(0, false)
	if sum.Dead() {
		t.Error("tier dead before DieAfter accesses")
	}
	sum.Access(1, false)
	if !sum.Dead() {
		t.Error("tier alive past DieAfter accesses")
	}
	if ev, _ := sum.Summary().Of(fault.TierDead); ev != 1 {
		t.Errorf("TierDead events = %d, want 1", ev)
	}
}
