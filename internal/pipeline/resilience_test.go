package pipeline

import (
	"errors"
	"sync"
	"testing"

	"scipp/internal/fault"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// flakyDataset fails Blob/Label with Transient-marked errors a configured
// number of times per sample before recovering — the minimal stand-in for a
// flaky mount, independent of the fault package's own injector.
type flakyDataset struct {
	*MemDataset
	mu         sync.Mutex
	blobFails  map[int]int
	labelFails map[int]int
}

func (d *flakyDataset) take(m map[int]int, i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m[i] > 0 {
		m[i]--
		return true
	}
	return false
}

func (d *flakyDataset) Blob(i int) ([]byte, error) {
	if d.take(d.blobFails, i) {
		return nil, fault.MarkTransient(errors.New("flaky blob read"))
	}
	return d.MemDataset.Blob(i)
}

func (d *flakyDataset) Label(i int) (*tensor.Tensor, error) {
	if d.take(d.labelFails, i) {
		return nil, fault.MarkTransient(errors.New("flaky label read"))
	}
	return d.MemDataset.Label(i)
}

func flaky(n int) *flakyDataset {
	return &flakyDataset{
		MemDataset: testDataset(n),
		blobFails:  make(map[int]int),
		labelFails: make(map[int]int),
	}
}

// drainAll pulls batches until end-of-epoch or error, returning delivered
// indices.
func drainAll(t *testing.T, it *Iterator) ([]int, error) {
	t.Helper()
	var got []int
	for {
		b, err := it.Next()
		if err != nil {
			return got, err
		}
		if b == nil {
			return got, nil
		}
		got = append(got, b.Indices...)
	}
}

// TestDefaultPolicySampleError pins the zero-policy contract: the first bad
// sample fails the epoch with a typed *SampleError carrying its index, and
// Close then Drain after that path must terminate cleanly (regression for
// the error-path Close inside Next relying on the background drain
// goroutine; run under -race via the merge gate).
func TestDefaultPolicySampleError(t *testing.T) {
	ds := testDataset(8)
	ds.Blobs[3] = nil // Open fails
	l, err := New(ds, Config{Format: countFormat{}, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	_, err = drainAll(t, it)
	if err == nil {
		t.Fatal("bad sample did not surface an error")
	}
	var se *SampleError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) does not unwrap to *SampleError", err, err)
	}
	if se.Index != 3 {
		t.Errorf("SampleError.Index = %d, want 3", se.Index)
	}
	// Error-then-Close-then-Drain must not deadlock, double-close, or race.
	it.Close()
	if _, err := it.Drain(); err != nil {
		var se2 *SampleError
		if !errors.As(err, &se2) {
			t.Errorf("post-close Drain returned untyped error %v", err)
		}
	}
	st := it.Stats()
	if len(st.Errors) == 0 || st.Errors[0].Index != 3 {
		t.Errorf("Stats.Errors = %+v, want first entry for sample 3", st.Errors)
	}
	if st.Skipped != 0 {
		t.Errorf("Stats.Skipped = %d, want 0 under the zero policy", st.Skipped)
	}
}

func TestSkipWithinQuota(t *testing.T) {
	ds := testDataset(10)
	for _, i := range []int{2, 5, 7} {
		ds.Blobs[i] = nil
	}
	l, err := New(ds, Config{
		Format:     countFormat{},
		Batch:      2,
		Resilience: Resilience{MaxBadSamples: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	got, err := drainAll(t, it)
	if err != nil {
		t.Fatalf("epoch failed despite quota: %v", err)
	}
	if len(got) != 7 {
		t.Errorf("delivered %d samples, want 7", len(got))
	}
	for _, i := range got {
		if i == 2 || i == 5 || i == 7 {
			t.Errorf("bad sample %d was delivered", i)
		}
	}
	st := it.Stats()
	if st.Decoded != 7 || st.Skipped != 3 {
		t.Errorf("Stats = decoded %d / skipped %d, want 7 / 3", st.Decoded, st.Skipped)
	}
	if want := []int{2, 5, 7}; !equalInts(st.BadSamples, want) {
		t.Errorf("BadSamples = %v, want %v", st.BadSamples, want)
	}
}

func TestQuotaExceededEpochError(t *testing.T) {
	ds := testDataset(10)
	for _, i := range []int{1, 3, 4, 8} {
		ds.Blobs[i] = nil
	}
	l, err := New(ds, Config{
		Format:     countFormat{},
		Batch:      2,
		Resilience: Resilience{MaxBadSamples: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	_, err = drainAll(t, it)
	if err == nil {
		t.Fatal("quota overflow did not fail the epoch")
	}
	var ee *EpochError
	if !errors.As(err, &ee) {
		t.Fatalf("error %v (%T) does not unwrap to *EpochError", err, err)
	}
	if ee.Quota != 2 {
		t.Errorf("EpochError.Quota = %d, want 2", ee.Quota)
	}
	if want := []int{1, 3, 4}; !equalInts(ee.Indices, want) {
		t.Errorf("EpochError.Indices = %v, want %v (2 skipped + the fatal one)", ee.Indices, want)
	}
	var se *SampleError
	if !errors.As(err, &se) {
		t.Error("EpochError does not unwrap to a *SampleError")
	}
	if st := it.Stats(); st.Skipped != 2 {
		t.Errorf("Stats.Skipped = %d, want 2 (never beyond quota)", st.Skipped)
	}
}

func TestTransientRetriesRecover(t *testing.T) {
	tests := []struct {
		name        string
		blobFails   map[int]int
		labelFails  map[int]int
		wantRetried int
	}{
		{"blob", map[int]int{2: 2, 6: 1}, nil, 3},
		{"label", nil, map[int]int{4: 3}, 3},
		{"mixed", map[int]int{1: 1}, map[int]int{5: 2}, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ds := flaky(8)
			for i, n := range tc.blobFails {
				ds.blobFails[i] = n
			}
			for i, n := range tc.labelFails {
				ds.labelFails[i] = n
			}
			l, err := New(ds, Config{
				Format:     countFormat{},
				Batch:      4,
				Resilience: Resilience{MaxRetries: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			it := l.Epoch(0)
			got, err := drainAll(t, it)
			if err != nil {
				t.Fatalf("transient faults not retried away: %v", err)
			}
			if len(got) != 8 {
				t.Errorf("delivered %d samples, want all 8", len(got))
			}
			st := it.Stats()
			if st.Retried != tc.wantRetried {
				t.Errorf("Stats.Retried = %d, want %d", st.Retried, tc.wantRetried)
			}
		})
	}
}

func TestRetriesExhaustedSurfaceTransientError(t *testing.T) {
	ds := flaky(4)
	ds.blobFails[1] = 10 // beyond the retry budget
	l, err := New(ds, Config{
		Format:     countFormat{},
		Batch:      1,
		Resilience: Resilience{MaxRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	_, err = drainAll(t, it)
	if err == nil {
		t.Fatal("exhausted retries did not surface an error")
	}
	var se *SampleError
	if !errors.As(err, &se) || se.Index != 1 {
		t.Fatalf("error %v: want *SampleError for sample 1", err)
	}
	if !errors.Is(err, fault.Transient) {
		t.Error("surfaced error lost its Transient classification")
	}
	if st := it.Stats(); st.Retried != 2 {
		t.Errorf("Stats.Retried = %d, want 2 (the cap)", st.Retried)
	}
}

// TestBackoffOnVirtualClock pins the capped-exponential schedule: delays pass
// through the iterator clock's Sleeper, so the whole wait happens in virtual
// time and the test never sleeps on the wall clock.
func TestBackoffOnVirtualClock(t *testing.T) {
	tests := []struct {
		name      string
		pol       Resilience
		fails     int
		wantClock float64
	}{
		{"base-doubles", Resilience{MaxRetries: 3, BackoffBase: 0.01}, 3, 0.01 + 0.02 + 0.04},
		{"capped", Resilience{MaxRetries: 3, BackoffBase: 0.01, BackoffCap: 0.015}, 3, 0.01 + 0.015 + 0.015},
		{"zero-base", Resilience{MaxRetries: 3}, 2, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			clock := &trace.VirtualClock{}
			ds := flaky(1)
			ds.blobFails[0] = tc.fails
			l, err := New(ds, Config{
				Format:     countFormat{},
				Batch:      1,
				Resilience: tc.pol,
				Clock:      clock,
			})
			if err != nil {
				t.Fatal(err)
			}
			it := l.Epoch(0)
			if _, err := drainAll(t, it); err != nil {
				t.Fatalf("retries under backoff failed: %v", err)
			}
			if got := clock.Now(); !close6(got, tc.wantClock) {
				t.Errorf("virtual clock advanced %.6f s, want %.6f s", got, tc.wantClock)
			}
			if st := it.Stats(); st.Retried != tc.fails {
				t.Errorf("Stats.Retried = %d, want %d", st.Retried, tc.fails)
			}
		})
	}
}

func TestBackoffSchedule(t *testing.T) {
	r := Resilience{BackoffBase: 0.01, BackoffCap: 0.05}
	for attempt, want := range []float64{0.01, 0.02, 0.04, 0.05, 0.05} {
		if got := r.backoff(attempt); !close6(got, want) {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	uncapped := Resilience{BackoffBase: 0.01}
	if got := uncapped.backoff(4); !close6(got, 0.16) {
		t.Errorf("uncapped backoff(4) = %v, want 0.16", got)
	}
}

func close6(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
