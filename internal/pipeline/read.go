package pipeline

import "scipp/internal/tensor"

// rawSample is a fetched but still encoded sample: the output of the read
// (or cache) stage, the input of the decode stage.
type rawSample struct {
	blob  []byte
	label *tensor.Tensor
}

// ReadStage is the storage stage of the DAG: it performs step a.2/b.4 of
// the paper's Fig 1, pulling one sample's encoded bytes and label from the
// Dataset (shared FS, staged NVMe, or memory — whatever the Dataset fronts).
// Each attempt is wrapped in a pipeline.read span, including failed ones, so
// the span count reconciles with the fault injector's access log.
type ReadStage struct {
	ds Dataset
	ob iterObs
}

// Name implements Stage.
func (s *ReadStage) Name() string { return "read" }

// Process implements Stage[struct{}, rawSample].
//
//scipp:hotpath
func (s *ReadStage) Process(index int, _ struct{}) (rawSample, error) {
	sp := s.ob.read.Start()
	defer sp.End()
	return s.fetch(index)
}

// fetch is the span-less read body, shared with CacheStage's miss path.
func (s *ReadStage) fetch(index int) (rawSample, error) {
	blob, err := s.ds.Blob(index)
	if err != nil {
		return rawSample{}, err
	}
	label, err := s.ds.Label(index)
	if err != nil {
		return rawSample{}, err
	}
	return rawSample{blob: blob, label: label}, nil
}
