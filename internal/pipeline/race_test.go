package pipeline

import (
	"sort"
	"sync"
	"testing"
)

// TestConcurrentNext hammers one iterator from many goroutines: every sample
// must be delivered exactly once across all callers. Run with -race.
func TestConcurrentNext(t *testing.T) {
	const samples = 64
	ds := testDataset(samples)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 3, Prefetch: 4})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()

	const callers = 8
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b, err := it.Next()
				if err != nil {
					errs <- err
					return
				}
				if b == nil {
					return
				}
				mu.Lock()
				got = append(got, b.Indices...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(got) != samples {
		t.Fatalf("delivered %d samples, want %d", len(got), samples)
	}
	sort.Ints(got)
	for i, idx := range got {
		if idx != i {
			t.Fatalf("sample %d delivered %d times or skipped", i, countOf(got, i))
		}
	}
}

func countOf(xs []int, v int) int {
	n := 0
	for _, x := range xs {
		if x == v {
			n++
		}
	}
	return n
}

// TestCloseDuringNext closes the iterator while other goroutines are pulling
// batches; nobody may deadlock and the prefetch workers must all exit.
func TestCloseDuringNext(t *testing.T) {
	for round := 0; round < 20; round++ {
		ds := testDataset(40)
		l, err := New(ds, Config{Format: countFormat{}, Batch: 2, Prefetch: 3})
		if err != nil {
			t.Fatal(err)
		}
		it := l.Epoch(round)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					b, err := it.Next()
					if err != nil || b == nil {
						return
					}
				}
			}()
		}
		// Race Close against the consumers, including double-Close.
		wg.Add(2)
		go func() { defer wg.Done(); it.Close() }()
		go func() { defer wg.Done(); it.Close() }()
		wg.Wait()
	}
}

// TestDrainConcurrentWithClose checks Drain against a racing Close: Drain
// must return without hanging whether it sees the full epoch or a truncated
// one.
func TestDrainConcurrentWithClose(t *testing.T) {
	ds := testDataset(64)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 4, Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := it.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	it.Close()
	<-done
}
