package pipeline

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"scipp/internal/fault"
	"scipp/internal/obs"
	"scipp/internal/trace"
)

// epochValues drains one epoch and returns the delivered sample indices and
// first data element per sample — enough to prove bit-identity between a
// chaos run and a clean run (countFormat fills tensors with blob[0]).
func epochValues(t *testing.T, it *Iterator) (indices []int, values []float32) {
	t.Helper()
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if b == nil {
			return indices, values
		}
		for s := range b.Data {
			indices = append(indices, b.Indices[s])
			values = append(values, b.Data[s].F32s[0])
		}
		b.Release()
	}
}

func TestSupervisedPanicRecoveryBitIdentical(t *testing.T) {
	const n = 48
	clean, err := New(testDataset(n), Config{Format: countFormat{}, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, wantVal := epochValues(t, clean.Epoch(0))

	reg := obs.NewRegistry()
	in := fault.WrapStage(testDataset(n), fault.StageFaultConfig{Seed: 21, Panic: 0.2})
	l, err := New(in, Config{
		Format: countFormat{}, Batch: 4,
		Resilience: Resilience{MaxRetries: 1},
		Supervise:  SupervisorConfig{MaxRestarts: 64},
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotIdx, gotVal := epochValues(t, l.Epoch(0))

	if !reflect.DeepEqual(gotIdx, wantIdx) || !reflect.DeepEqual(gotVal, wantVal) {
		t.Fatalf("chaos epoch diverged from clean run:\n got %v %v\nwant %v %v", gotIdx, gotVal, wantIdx, wantVal)
	}
	if len(in.Log()) == 0 {
		t.Fatal("injector logged no panics at p=0.2 over 48 samples")
	}
}

func TestSupervisedPanicStatsReconcile(t *testing.T) {
	const n = 48
	reg := obs.NewRegistry()
	in := fault.WrapStage(testDataset(n), fault.StageFaultConfig{Seed: 21, Panic: 0.2})
	l, err := New(in, Config{
		Format: countFormat{}, Batch: 4,
		Resilience: Resilience{MaxRetries: 1},
		Supervise:  SupervisorConfig{MaxRestarts: 64},
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	if _, err := it.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	log := in.Log()
	st := it.Stats()
	if st.Panics != len(log) {
		t.Fatalf("Stats.Panics = %d, injector logged %d", st.Panics, len(log))
	}
	if st.Retried != len(log) {
		t.Fatalf("Stats.Retried = %d, want %d (one retry per recovered panic)", st.Retried, len(log))
	}
	if st.Decoded != n {
		t.Fatalf("Stats.Decoded = %d, want %d", st.Decoded, n)
	}
	s := reg.Snapshot()
	if v := s.Counter("pipeline.worker.panics"); v != int64(len(log)) {
		t.Fatalf("pipeline.worker.panics = %d, injector logged %d", v, len(log))
	}
	if v := s.Counter("pipeline.errors.transient"); v != int64(len(log)) {
		t.Fatalf("pipeline.errors.transient = %d, want %d (panics are transient)", v, len(log))
	}
}

func TestWorkerPanicWithoutRetryIsSampleError(t *testing.T) {
	in := fault.WrapStage(testDataset(8), fault.StageFaultConfig{Seed: 21, Panic: 1})
	l, err := New(in, Config{Format: countFormat{}, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()
	_, err = it.Next()
	var se *SampleError
	if !errors.As(err, &se) {
		t.Fatalf("Next = %v, want *SampleError", err)
	}
	var pe *WorkerPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *WorkerPanicError", err)
	}
	if pe.Stage != "read" || pe.Index != se.Index {
		t.Fatalf("panic error names stage %q sample %d, SampleError sample %d", pe.Stage, pe.Index, se.Index)
	}
	if !errors.Is(err, fault.Transient) {
		t.Fatal("worker panic is not marked transient")
	}
}

func TestPanicRestartBudgetExhausted(t *testing.T) {
	// Every access of every sample panics; retries never exhaust. The only
	// way out is the supervisor's restart budget, which must abort the
	// epoch with a typed *SupervisorError rather than crash-loop.
	in := fault.WrapStage(testDataset(8), fault.StageFaultConfig{Seed: 3, Panic: 1, PanicEvents: 1 << 20})
	l, err := New(in, Config{
		Format: countFormat{}, Batch: 2,
		Resilience: Resilience{MaxRetries: 1 << 20},
		Supervise:  SupervisorConfig{MaxRestarts: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()
	done := make(chan error, 1)
	go func() {
		_, err := it.Drain()
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("epoch hung instead of aborting on an exhausted restart budget")
	}
	var supErr *SupervisorError
	if !errors.As(err, &supErr) {
		t.Fatalf("Drain = %v, want *SupervisorError", err)
	}
	if supErr.Stage != "read" || supErr.Restarts <= 4 {
		t.Fatalf("SupervisorError names stage %q after %d restarts, want read > 4", supErr.Stage, supErr.Restarts)
	}
	if it.Stats().Panics < 5 {
		t.Fatalf("Stats.Panics = %d, want >= 5", it.Stats().Panics)
	}
}

func TestStallWatchdogRestartsStage(t *testing.T) {
	const n = 32
	clean, err := New(testDataset(n), Config{Format: countFormat{}, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, wantVal := epochValues(t, clean.Epoch(0))

	reg := obs.NewRegistry()
	in := fault.WrapStage(testDataset(n), fault.StageFaultConfig{Seed: 9, Stall: 0.1})
	defer in.Release() // unwedge abandoned workers so they drain and exit
	l, err := New(in, Config{
		Format: countFormat{}, Batch: 4,
		Supervise: SupervisorConfig{MaxRestarts: 64, StallDeadline: 0.03, StallRestart: true},
		Obs:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	gotIdx, gotVal := epochValues(t, it)
	if !reflect.DeepEqual(gotIdx, wantIdx) || !reflect.DeepEqual(gotVal, wantVal) {
		t.Fatalf("stalled epoch diverged from clean run:\n got %v %v\nwant %v %v", gotIdx, gotVal, wantIdx, wantVal)
	}
	log := in.Log()
	if len(log) == 0 {
		t.Fatal("injector logged no stalls at p=0.1 over 32 samples")
	}
	// Indefinite stalls guarantee exactly one watchdog detection each, so
	// the stall accounting reconciles exactly against the injector log.
	if st := it.Stats(); st.Stalls != len(log) {
		t.Fatalf("Stats.Stalls = %d, injector logged %d", st.Stalls, len(log))
	}
	s := reg.Snapshot()
	if v := s.Counter("pipeline.worker.stalls"); v != int64(len(log)) {
		t.Fatalf("pipeline.worker.stalls = %d, injector logged %d", v, len(log))
	}
	// The watchdog snapshotted queue state at detection time.
	if g := s.Gauge("pipeline.stall.inflight"); g.Max < 1 {
		t.Fatalf("pipeline.stall.inflight gauge = %v, want >= 1", g.Max)
	}
}

func TestStallWatchdogAbortsWithStallError(t *testing.T) {
	in := fault.WrapStage(testDataset(16), fault.StageFaultConfig{Seed: 9, Stall: 0.2})
	defer in.Release()
	l, err := New(in, Config{
		Format: countFormat{}, Batch: 4,
		Supervise: SupervisorConfig{StallDeadline: 0.03, StallRestart: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()
	done := make(chan error, 1)
	go func() {
		_, err := it.Drain()
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("epoch hung instead of aborting on a stall")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("Drain = %v, want *StallError", err)
	}
	if stall.Stage != "read" {
		t.Fatalf("StallError names stage %q, want read", stall.Stage)
	}
	if stall.Seconds < 0.03 {
		t.Fatalf("StallError reports %.3fs in flight, want >= deadline", stall.Seconds)
	}
}

func TestStallWatchdogOnVirtualClock(t *testing.T) {
	// The watchdog judges deadlines on the loader's clock: with a
	// VirtualClock, stalls are detected in virtual time. The pump goroutine
	// stands in for the simulation driver advancing time.
	clock := &trace.VirtualClock{}
	in := fault.WrapStage(testDataset(16), fault.StageFaultConfig{Seed: 9, Stall: 0.2})
	defer in.Release()
	l, err := New(in, Config{
		Format: countFormat{}, Batch: 4, Clock: clock,
		Supervise: SupervisorConfig{MaxRestarts: 64, StallDeadline: 10, StallRestart: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(5)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	n, err := it.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n != 16 {
		t.Fatalf("Drain = %d samples, want 16", n)
	}
	if st := it.Stats(); st.Stalls != len(in.Log()) {
		t.Fatalf("Stats.Stalls = %d, injector logged %d", st.Stalls, len(in.Log()))
	}
}

func TestSupervisorGoRecoversMachineryPanic(t *testing.T) {
	sup := newSupervisor(SupervisorConfig{}, &trace.VirtualClock{}, nil)
	got := make(chan error, 1)
	sup.fatalFn = func(err error) { got <- err }
	sup.Go("machinery", func() { panic("broken plumbing") })
	select {
	case err := <-got:
		var pe *WorkerPanicError
		if !errors.As(err, &pe) || pe.Stage != "machinery" || pe.Index != -1 {
			t.Fatalf("fatal = %v, want *WorkerPanicError{Stage: machinery, Index: -1}", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("machinery panic did not reach fatalFn")
	}
}

func TestSupervisorAbandonSuppressesStaleAttempt(t *testing.T) {
	// A begin for a generation older than the valid floor must refuse the
	// attempt; an end after abandonment must refuse the emit. The deadline
	// arms the flight bookkeeping — without a watchdog the supervisor runs
	// passive and nothing can ever be abandoned.
	sup := newSupervisor(SupervisorConfig{StallDeadline: 10}, &trace.VirtualClock{}, nil)
	if !sup.begin("read", 7, 3, 0) {
		t.Fatal("fresh attempt refused")
	}
	sup.mu.Lock()
	sup.valid[7] = 1 // watchdog abandoned gen 0 while it ran
	sup.mu.Unlock()
	if sup.end(7, 0) {
		t.Fatal("abandoned attempt allowed to emit")
	}
	if sup.begin("read", 7, 3, 0) {
		t.Fatal("stale generation allowed to start")
	}
	if !sup.begin("read", 7, 3, 1) {
		t.Fatal("successor generation refused")
	}
	if !sup.end(7, 1) {
		t.Fatal("successor generation refused to emit")
	}
}

func TestSupervisorPassiveSkipsFlightTracking(t *testing.T) {
	// No stall deadline means no watchdog, so begin/end must admit every
	// attempt without paying for the flight table on the hot path.
	sup := newSupervisor(SupervisorConfig{}, &trace.VirtualClock{}, nil)
	if !sup.passive {
		t.Fatal("zero-deadline supervisor not passive")
	}
	if !sup.begin("read", 7, 3, 0) {
		t.Fatal("passive begin refused an attempt")
	}
	if !sup.end(7, 0) {
		t.Fatal("passive end refused an emit")
	}
	if len(sup.inflight) != 0 {
		t.Fatalf("passive supervisor tracked %d flights", len(sup.inflight))
	}
}
