package pipeline

import (
	"fmt"
	"testing"

	"scipp/internal/iosim"
	"scipp/internal/obs"
	"scipp/internal/platform"
	"scipp/internal/tensor"
)

// testLabel mirrors testDataset's labels: one F32 element = 4 bytes, so one
// cached sample (1-byte blob + label) costs 5 bytes.
const testSampleCost = 5

func putSample(c *SampleCache, i int) int {
	lb := tensor.New(tensor.F32, 1)
	lb.F32s[0] = float32(i)
	return c.Put(i, []byte{byte(i)}, lb)
}

func TestSampleCacheFillToCapacity(t *testing.T) {
	c := NewSampleCache(CacheConfig{HostMemBytes: 5 * testSampleCost})
	for i := 0; i < 5; i++ {
		if dropped := putSample(c, i); dropped != 0 {
			t.Fatalf("put %d dropped %d entries before capacity", i, dropped)
		}
	}
	for i := 0; i < 5; i++ {
		blob, label, ok, _ := c.Get(i)
		if !ok {
			t.Fatalf("sample %d not resident after fill", i)
		}
		if blob[0] != byte(i) || label.F32s[0] != float32(i) {
			t.Fatalf("sample %d payload corrupted", i)
		}
	}
	st := c.Stats()
	if st.HostSamples != 5 || st.HostBytes != 5*testSampleCost {
		t.Errorf("host occupancy %d samples / %d bytes, want 5 / %d", st.HostSamples, st.HostBytes, 5*testSampleCost)
	}
	if st.Evictions != 0 || st.Demotions != 0 {
		t.Errorf("fill within capacity evicted: %+v", st)
	}
	if st.Hits != 5 || st.Misses != 0 {
		t.Errorf("hits/misses %d/%d, want 5/0", st.Hits, st.Misses)
	}
}

// TestSampleCacheDeterministicEviction pins the LRU policy: with a 3-sample
// host tier and no NVMe tier, inserting a 4th sample drops the least
// recently used resident — and a Get refreshes recency, changing the victim.
// The same op sequence must always pick the same victims.
func TestSampleCacheDeterministicEviction(t *testing.T) {
	run := func() (victims []int) {
		c := NewSampleCache(CacheConfig{HostMemBytes: 3 * testSampleCost})
		for i := 0; i < 3; i++ {
			putSample(c, i)
		}
		c.Get(0) // refresh: LRU is now 1
		putSample(c, 3)
		putSample(c, 4)
		for i := 0; i < 5; i++ {
			if _, _, ok, _ := c.Get(i); !ok {
				victims = append(victims, i)
			}
		}
		if st := c.Stats(); st.Evictions != 2 {
			t.Fatalf("evictions = %d, want 2", st.Evictions)
		}
		return victims
	}
	first := run()
	if fmt.Sprint(first) != "[1 2]" {
		t.Errorf("LRU victims %v, want [1 2] (0 was refreshed)", first)
	}
	for trial := 0; trial < 3; trial++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("eviction order not deterministic: %v vs %v", got, first)
		}
	}
}

// TestSampleCacheDemotion pins the two-tier flow: host overflow demotes LRU
// entries into the NVMe tier, and NVMe overflow drops its own LRU entry.
func TestSampleCacheDemotion(t *testing.T) {
	c := NewSampleCache(CacheConfig{HostMemBytes: 3 * testSampleCost, NVMeBytes: 2 * testSampleCost})
	for i := 0; i < 5; i++ {
		putSample(c, i) // 3 and 4 push 0 then 1 down to NVMe
	}
	st := c.Stats()
	if st.Demotions != 2 || st.Evictions != 0 {
		t.Fatalf("after 5 puts: demotions=%d evictions=%d, want 2/0", st.Demotions, st.Evictions)
	}
	if st.NVMeSamples != 2 {
		t.Fatalf("NVMe holds %d samples, want 2", st.NVMeSamples)
	}
	if _, _, ok, _ := c.Get(0); !ok {
		t.Error("demoted sample 0 should still be resident (NVMe)")
	}
	if c.Stats().NVMeHits != 1 {
		t.Error("demoted hit not accounted to the NVMe tier")
	}
	putSample(c, 5) // demotes 2; NVMe {2,0,1} overflows, dropping LRU = 1
	if _, _, ok, _ := c.Get(1); ok {
		t.Error("NVMe LRU entry 1 should have been dropped")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Demotions != 3 {
		t.Errorf("after overflow: demotions=%d evictions=%d, want 3/1", st.Demotions, st.Evictions)
	}
	if c.Len() != 5 {
		t.Errorf("resident count %d, want 5", c.Len())
	}
}

func TestSampleCacheOversizedSampleUncacheable(t *testing.T) {
	c := NewSampleCache(CacheConfig{HostMemBytes: 2})
	putSample(c, 0) // 5 bytes > every tier
	if c.Len() != 0 {
		t.Error("oversized sample was cached")
	}
	if _, _, ok, _ := c.Get(0); ok {
		t.Error("oversized sample resident")
	}
}

// TestCacheSecondEpochServedFromCache is the acceptance scenario: a
// HostMem-sized cache, two epochs — the first populates (all misses), the
// second is served entirely from the cache (hit counter == dataset size).
func TestCacheSecondEpochServedFromCache(t *testing.T) {
	const n = 20
	reg := obs.NewRegistry()
	l, err := New(testDataset(n), Config{
		Format:  countFormat{},
		Batch:   4,
		Shuffle: true,
		Seed:    9,
		Cache:   CacheConfig{HostMemBytes: n * testSampleCost},
		Obs:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		got, err := l.Epoch(epoch).Drain()
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if got != n {
			t.Fatalf("epoch %d delivered %d samples, want %d", epoch, got, n)
		}
	}
	snap := reg.Snapshot()
	if hits := snap.Counter("pipeline.cache.hits"); hits != n {
		t.Errorf("cache hits = %d, want %d (entire second epoch)", hits, n)
	}
	if misses := snap.Counter("pipeline.cache.misses"); misses != n {
		t.Errorf("cache misses = %d, want %d (entire first epoch)", misses, n)
	}
	if ev := snap.Counter("pipeline.cache.evictions"); ev != 0 {
		t.Errorf("cache evictions = %d, want 0 (dataset fits)", ev)
	}
	if dec := snap.Counter("pipeline.samples.decoded"); dec != 2*n {
		t.Errorf("decoded = %d, want %d", dec, 2*n)
	}
	cs := l.Cache().Stats()
	if cs.HostSamples != n || cs.NVMeSamples != 0 {
		t.Errorf("residency %d host / %d nvme, want %d / 0", cs.HostSamples, cs.NVMeSamples, n)
	}
}

// collectRun collects every delivered (index, data, label) triple of a
// multi-epoch run, in delivery order.
func collectRun(t *testing.T, l *Loader, epochs int) []string {
	t.Helper()
	var out []string
	for e := 0; e < epochs; e++ {
		it := l.Epoch(e)
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			for k, idx := range b.Indices {
				out = append(out, fmt.Sprintf("%d:%v:%v", idx, b.Data[k].F32s, b.Labels[k].F32s))
			}
		}
	}
	return out
}

// TestCachedRunBitIdenticalToUncached: enabling the cache must change where
// bytes come from, never what they are — delivery order, decoded tensors and
// labels are identical with and without it.
func TestCachedRunBitIdenticalToUncached(t *testing.T) {
	const n = 24
	mk := func(cache CacheConfig, reg *obs.Registry) *Loader {
		l, err := New(testDataset(n), Config{
			Format:  countFormat{},
			Batch:   5,
			Shuffle: true,
			Seed:    41,
			Cache:   cache,
			Obs:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	uncachedReg := obs.NewRegistry()
	cached := collectRun(t, mk(CacheConfig{HostMemBytes: n * testSampleCost}, obs.NewRegistry()), 2)
	uncached := collectRun(t, mk(CacheConfig{}, uncachedReg), 2)
	if len(cached) != len(uncached) {
		t.Fatalf("cached run delivered %d samples, uncached %d", len(cached), len(uncached))
	}
	for i := range cached {
		if cached[i] != uncached[i] {
			t.Fatalf("delivery %d diverges: cached %s, uncached %s", i, cached[i], uncached[i])
		}
	}
	// The cache counters are registered only on cached loaders: an uncached
	// run's snapshot must be exactly the historical metric set.
	for _, c := range uncachedReg.Snapshot().Counters {
		if c.Name == "pipeline.cache.hits" || c.Name == "pipeline.cache.misses" || c.Name == "pipeline.cache.evictions" {
			t.Errorf("uncached run registered %s", c.Name)
		}
	}
}

// TestCacheMatchesResidencyModel ties the real cache to iosim's analytic
// residency model. A dataset that fits the node's memory budget predicts
// HostMem residency from epoch 1 (HitFraction 1), and the CacheFromNode-
// sized cache indeed serves the whole second epoch. A capacity-starved cache
// under a sequential traversal reproduces the model's other regime: the scan
// thrashes the LRU and every epoch stays cold (HitFraction of epoch 0).
func TestCacheMatchesResidencyModel(t *testing.T) {
	const n = 16
	node := iosim.Node{P: platform.CoriV100()}
	ids := iosim.Dataset{Samples: n, SampleBytes: testSampleCost}
	if lvl := node.ResidentLevel(ids, 1); lvl != iosim.HostMem {
		t.Fatalf("model: tiny dataset resident at %v, want host-mem", lvl)
	}
	if h := node.HitFraction(ids, 1); h != 1 {
		t.Fatalf("model: HitFraction = %v, want 1", h)
	}

	reg := obs.NewRegistry()
	l, err := New(testDataset(n), Config{
		Format: countFormat{},
		Batch:  4,
		Cache:  CacheFromNode(node, false),
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if _, err := l.Epoch(e).Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if hits := reg.Snapshot().Counter("pipeline.cache.hits"); hits != n {
		t.Errorf("fitting dataset: epoch-1 hits = %d, want %d (model predicts HostMem)", hits, n)
	}

	// Starved cache, sequential order, single read worker: by the time the
	// scan wraps around, the head of the schedule has been evicted — zero
	// hits, the model's cold regime.
	starvedReg := obs.NewRegistry()
	starved, err := New(testDataset(n), Config{
		Format: countFormat{},
		Batch:  4,
		Cache:  CacheConfig{HostMemBytes: 3 * testSampleCost},
		Stages: StageConfig{ReadWorkers: 1},
		Obs:    starvedReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if _, err := starved.Epoch(e).Drain(); err != nil {
			t.Fatal(err)
		}
	}
	snap := starvedReg.Snapshot()
	if hits := snap.Counter("pipeline.cache.hits"); hits != 0 {
		t.Errorf("starved sequential scan: hits = %d, want 0", hits)
	}
	if ev := snap.Counter("pipeline.cache.evictions"); ev != 2*n-3 {
		t.Errorf("starved scan evictions = %d, want %d", ev, 2*n-3)
	}
}

func TestCacheFromNode(t *testing.T) {
	p := platform.CoriV100()
	n := iosim.Node{P: p}
	unstaged := CacheFromNode(n, false)
	if unstaged.HostMemBytes != p.MemBudgetBytes() {
		t.Errorf("host tier = %d, want the platform memory budget %d", unstaged.HostMemBytes, p.MemBudgetBytes())
	}
	if unstaged.NVMeBytes != 0 {
		t.Error("unstaged cache should have no NVMe tier")
	}
	staged := CacheFromNode(n, true)
	if staged.NVMeBytes != int64(p.Storage.NVMeTB*1e12) {
		t.Errorf("NVMe tier = %d, want %d", staged.NVMeBytes, int64(p.Storage.NVMeTB*1e12))
	}
	if !staged.enabled() || (CacheConfig{}).enabled() {
		t.Error("enabled() misclassifies")
	}
}

// verifyClean fails the test if the cache's byte accounting does not
// reconcile exactly at this point.
func verifyClean(t *testing.T, c *SampleCache, when string) {
	t.Helper()
	if err := c.VerifyAccounting(); err != nil {
		t.Fatalf("%s: %v", when, err)
	}
}

// TestVerifyAccountingExactUnderFaults drives every mutation the cache knows
// — variable-size admissions, refresh-in-place, demotion, eviction,
// quarantine, and tier failover — and proves Σ entry bytes reconciles with
// the tier counters and budgets after each one. This is the ragged-domain
// accounting lock: with per-sample sizes all different, any missed add or
// subtract surfaces here.
func TestVerifyAccountingExactUnderFaults(t *testing.T) {
	c := NewSampleCache(CacheConfig{HostMemBytes: 64, NVMeBytes: 96, TierFailK: 1})
	verifyClean(t, c, "empty cache")
	for i := 0; i < 12; i++ {
		lb := tensor.New(tensor.F32, 1)
		lb.F32s[0] = float32(i)
		c.Put(i, make([]byte, 3+5*i), lb) // every resident a different size
		verifyClean(t, c, fmt.Sprintf("after put %d", i))
	}
	// Refresh a resident in place with a different payload size.
	c.Put(8, make([]byte, 2), nil)
	verifyClean(t, c, "after refresh")
	// Touch residents to reshuffle recency, then force more demotions.
	for i := 0; i < 12; i += 3 {
		c.Get(i)
		verifyClean(t, c, fmt.Sprintf("after get %d", i))
	}
	// Quarantine a resident through the tamper hook.
	c.SetTamper(&flipTamper{targets: map[int]bool{8: true}})
	c.Get(8)
	verifyClean(t, c, "after quarantine")
	// Kill the NVMe tier: the failover purge must keep accounting exact.
	tier := &stubTier{fail: true}
	c.SetTierFault(tier)
	c.Put(20, make([]byte, 70), nil) // host-oversized: demotion write fails, tier dies
	verifyClean(t, c, "after tier failover")
	if c.TierHealthy() {
		t.Fatal("tier survived a TierFailK=1 failure")
	}
	st := c.Stats()
	if st.Demotions == 0 || st.Evictions == 0 || st.Quarantined != 1 {
		t.Fatalf("test exercised too little: %+v", st)
	}
}

// TestVerifyAccountingDetectsDrift corrupts the cache's internal accounting
// directly and checks the verifier reports each class of discrepancy — the
// proof it can actually fail, not just pass.
func TestVerifyAccountingDetectsDrift(t *testing.T) {
	fresh := func() *SampleCache {
		c := NewSampleCache(CacheConfig{HostMemBytes: 100})
		putSample(c, 1)
		return c
	}
	breakers := map[string]func(c *SampleCache){
		"tier counter drift": func(c *SampleCache) { c.hostBytes++ },
		"entry size drift":   func(c *SampleCache) { c.entries[1].bytes--; c.hostBytes-- },
		"level mismatch":     func(c *SampleCache) { c.entries[1].level = iosim.NVMe },
		"unindexed resident": func(c *SampleCache) { delete(c.entries, 1) },
		"over budget":        func(c *SampleCache) { c.cfg.HostMemBytes = 1 },
	}
	for name, corrupt := range breakers {
		c := fresh()
		verifyClean(t, c, name+" (pre)")
		c.mu.Lock()
		corrupt(c)
		c.mu.Unlock()
		if err := c.VerifyAccounting(); err == nil {
			t.Errorf("%s went undetected", name)
		}
	}
}
