package pipeline

import (
	"bytes"
	"reflect"
	"testing"

	"scipp/internal/fault"
	"scipp/internal/obs"
	"scipp/internal/tensor"
)

// flipTamper corrupts chosen indices' resident blobs once — a minimal
// CacheTamper for unit tests, independent of the fault package.
type flipTamper struct {
	targets map[int]bool
	hits    int
}

func (f *flipTamper) Tamper(i int, blob []byte) bool {
	if !f.targets[i] || len(blob) == 0 {
		return false
	}
	delete(f.targets, i)
	f.hits++
	blob[0] ^= 0xFF
	return true
}

func TestCacheQuarantinesCorruptedHit(t *testing.T) {
	c := NewSampleCache(CacheConfig{HostMemBytes: 1 << 20})
	lb := tensor.New(tensor.F32, 1)
	lb.F32s[0] = 7
	c.Put(3, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, lb)
	c.SetTamper(&flipTamper{targets: map[int]bool{3: true}})

	blob, label, ok, quarantined := c.Get(3)
	if ok || !quarantined || blob != nil || label != nil {
		t.Fatalf("corrupted hit: got (%v, %v, %v, %v), want quarantine miss", blob, label, ok, quarantined)
	}
	if c.Len() != 0 {
		t.Fatalf("quarantined entry still resident: Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Quarantined != 1 || st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Quarantined 1, Hits 0, Misses 1", st)
	}

	// Re-admission stores a clean copy; the next hit verifies and serves it.
	c.Put(3, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, lb)
	blob, _, ok, quarantined = c.Get(3)
	if !ok || quarantined || !bytes.Equal(blob, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Fatalf("re-admitted sample: got (%v, %v, %v)", blob, ok, quarantined)
	}
}

func TestCacheIntegrityCoversLabel(t *testing.T) {
	c := NewSampleCache(CacheConfig{HostMemBytes: 1 << 20})
	lb := tensor.New(tensor.F32, 1)
	lb.F32s[0] = 7
	c.Put(0, []byte{1, 2, 3}, lb)
	lb.F32s[0] = 8 // corrupt the cached label in place
	if _, _, ok, quarantined := c.Get(0); ok || !quarantined {
		t.Fatalf("label corruption not quarantined: ok=%v quarantined=%v", ok, quarantined)
	}
}

func TestCacheIntegrityDisabled(t *testing.T) {
	c := NewSampleCache(CacheConfig{HostMemBytes: 1 << 20, DisableIntegrity: true})
	c.Put(3, []byte{9, 9, 9}, nil)
	c.SetTamper(&flipTamper{targets: map[int]bool{3: true}})
	blob, _, ok, quarantined := c.Get(3)
	if !ok || quarantined {
		t.Fatalf("integrity-off hit: ok=%v quarantined=%v", ok, quarantined)
	}
	if blob[0] != 9^0xFF {
		t.Fatal("integrity-off hit did not serve the (corrupted) resident bytes")
	}
	if st := c.Stats(); st.Quarantined != 0 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want no quarantine and one hit", st)
	}
}

func TestCachePutCopiesBlob(t *testing.T) {
	// The cache must own its resident bytes: corrupting a resident copy
	// (bit rot) must never write through to the dataset's memory, or the
	// quarantine re-read would serve the same corruption forever.
	src := []byte{1, 2, 3, 4}
	c := NewSampleCache(CacheConfig{HostMemBytes: 1 << 20})
	c.Put(0, src, nil)
	blob, _, ok, _ := c.Get(0)
	if !ok {
		t.Fatal("miss after Put")
	}
	blob[0] = 0xEE // rot the resident copy
	if src[0] != 1 {
		t.Fatal("corrupting the resident blob reached the dataset's memory")
	}
}

// TestCacheBitRotEndToEnd is the tentpole integrity scenario: seeded bit rot
// corrupts resident cache entries between epochs; every corrupted hit must
// be quarantined and transparently re-decoded so batches stay bit-identical
// to a clean cached run, with quarantine counters reconciling exactly
// against the injector log.
func TestCacheBitRotEndToEnd(t *testing.T) {
	const n, epochs = 48, 3
	mkLoader := func(reg *obs.Registry) *Loader {
		l, err := New(testDataset(n), Config{
			Format: countFormat{}, Batch: 4,
			Cache: CacheConfig{HostMemBytes: 1 << 20},
			Obs:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	clean := mkLoader(nil)
	var wantIdx []int
	var wantVal []float32
	for e := 0; e < epochs; e++ {
		i, v := epochValues(t, clean.Epoch(e))
		wantIdx, wantVal = append(wantIdx, i...), append(wantVal, v...)
	}

	reg := obs.NewRegistry()
	chaos := mkLoader(reg)
	ci := fault.NewCacheInjector(fault.CacheFaultConfig{Seed: 13, BitRot: 0.15})
	chaos.Cache().SetTamper(ci)
	var gotIdx []int
	var gotVal []float32
	for e := 0; e < epochs; e++ {
		i, v := epochValues(t, chaos.Epoch(e))
		gotIdx, gotVal = append(gotIdx, i...), append(gotVal, v...)
	}

	if !reflect.DeepEqual(gotIdx, wantIdx) || !reflect.DeepEqual(gotVal, wantVal) {
		t.Fatal("bit-rot epoch diverged from clean cached run")
	}
	log := ci.Log()
	if len(log) == 0 {
		t.Fatal("injector logged no bit rot at p=0.15 over 48 samples")
	}
	cst := chaos.Cache().Stats()
	if cst.Quarantined != int64(len(log)) {
		t.Fatalf("cache Quarantined = %d, injector logged %d", cst.Quarantined, len(log))
	}
	s := reg.Snapshot()
	if v := s.Counter("pipeline.cache.quarantined"); v != int64(len(log)) {
		t.Fatalf("pipeline.cache.quarantined = %d, injector logged %d", v, len(log))
	}
	// Quarantined hits re-read and re-admit: the decoded-sample accounting
	// is untouched by the corruption.
	if v := s.Counter("pipeline.samples.decoded"); v != int64(n*epochs) {
		t.Fatalf("pipeline.samples.decoded = %d, want %d", v, n*epochs)
	}
}

// TestQuarantineRedecodePoolClean is the Batch.Release/SlabPool ownership
// audit on the quarantine→re-decode path (run under -race via the merge
// gate): every pooled tensor drawn across the corrupted epochs must return
// to the freelist after Release, with no double-release corrupting the
// freelist (a double-released tensor would be handed out twice and trip the
// race detector or the length check here).
func TestQuarantineRedecodePoolClean(t *testing.T) {
	const n, epochs = 32, 3
	l, err := New(testDataset(n), Config{
		Format: countFormat{}, Batch: 4,
		Cache: CacheConfig{HostMemBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Cache().SetTamper(fault.NewCacheInjector(fault.CacheFaultConfig{Seed: 13, BitRot: 0.25}))
	for e := 0; e < epochs; e++ {
		if _, err := l.Epoch(e).Drain(); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	st := l.Pool().Stats()
	// Drain released every batch, so every live tensor is back on the
	// freelist: the pool never holds more free tensors than the distinct
	// samples in flight would justify, and steady-state epochs are all hits.
	if st.FreeTensors == 0 {
		t.Fatal("no tensors returned to the pool")
	}
	if st.Gets == st.Hits {
		t.Fatal("pool accounting impossible: every Get was a Hit including the cold epoch")
	}
	maxLive := int64(n * epochs)
	if st.Gets > maxLive {
		t.Fatalf("pool Gets = %d, want <= %d (re-decodes must reuse released tensors, not leak)", st.Gets, maxLive)
	}
}
