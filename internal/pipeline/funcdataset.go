package pipeline

import (
	"fmt"

	"scipp/internal/tensor"
)

// FuncDataset adapts arbitrary blob/label providers — e.g. lazily read
// files on disk (the staged-NVMe layout of Fig 1) — to the Dataset
// interface.
type FuncDataset struct {
	N       int
	BlobFn  func(i int) ([]byte, error)
	LabelFn func(i int) (*tensor.Tensor, error)
}

// Len implements Dataset.
func (d *FuncDataset) Len() int { return d.N }

// Blob implements Dataset.
func (d *FuncDataset) Blob(i int) ([]byte, error) {
	if err := checkIndex("sample", i, d.N); err != nil {
		return nil, err
	}
	if d.BlobFn == nil {
		return nil, fmt.Errorf("pipeline: FuncDataset has no BlobFn")
	}
	return d.BlobFn(i)
}

// Label implements Dataset.
func (d *FuncDataset) Label(i int) (*tensor.Tensor, error) {
	if err := checkIndex("label", i, d.N); err != nil {
		return nil, err
	}
	if d.LabelFn == nil {
		return nil, fmt.Errorf("pipeline: FuncDataset has no LabelFn")
	}
	return d.LabelFn(i)
}
