package pipeline

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"scipp/internal/fault"
	"scipp/internal/obs"
	"scipp/internal/trace"
)

// SupervisorConfig tunes the pipeline's supervision layer: panic recovery
// and stall detection over every stage worker of the DAG. The zero value
// enables panic recovery with a default restart budget and disables the
// stall watchdog (no deadline to judge stalls against).
type SupervisorConfig struct {
	// MaxRestarts is the per-stage budget of worker restarts in one epoch —
	// a restart is a worker revived after a recovered panic, or a stalled
	// sample abandoned and re-admitted by the watchdog. Exceeding the budget
	// aborts the epoch with a typed error (*SupervisorError for panics,
	// *StallError for stalls) rather than looping or hanging. <= 0 selects
	// the default of 8.
	MaxRestarts int
	// StallDeadline is the per-sample progress deadline in seconds: a
	// sample held by one stage longer than this with no completion is
	// flagged as stalled. 0 disables the watchdog. The deadline is judged
	// on the loader's clock, so virtual-clock runs detect stalls in virtual
	// time; the clock must implement trace.Alarm for the watchdog to run.
	StallDeadline float64
	// StallRestart selects the watchdog's response to a stalled sample:
	// true abandons the wedged attempt (its eventual output is suppressed
	// and its pooled buffers recycled) and re-admits the sample at the head
	// stage, consuming a restart; false aborts the epoch immediately with a
	// *StallError naming the culprit stage and sample.
	StallRestart bool
}

func (c SupervisorConfig) maxRestarts() int {
	if c.MaxRestarts <= 0 {
		return 8
	}
	return c.MaxRestarts
}

// WorkerPanicError reports a panic recovered inside a stage worker, carrying
// the stage and the dataset index of the sample the worker held. It is
// marked transient: the supervisor restarted the worker in place, so the
// sample deserves a fresh attempt under the resilience retry budget — with
// the zero Resilience policy it fails the epoch as a *SampleError instead.
type WorkerPanicError struct {
	// Stage names the stage whose worker panicked.
	Stage string
	// Index is the dataset index of the sample in flight, or -1 when the
	// panic hit pipeline machinery outside any sample.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error implements error.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("pipeline: %s stage worker panicked on sample %d: %v", e.Stage, e.Index, e.Value)
}

// Unwrap marks the error transient so the resilience policy may retry the
// sample on the restarted worker.
func (e *WorkerPanicError) Unwrap() error { return fault.Transient }

// SupervisorError reports a stage that exhausted its restart budget: the
// supervisor stops reviving its workers and fails the epoch loudly instead
// of crash-looping.
type SupervisorError struct {
	// Stage names the stage over budget.
	Stage string
	// Restarts is the number of restarts consumed.
	Restarts int
	// Cause is the failure that broke the budget.
	Cause error
}

// Error implements error.
func (e *SupervisorError) Error() string {
	return fmt.Sprintf("pipeline: %s stage exceeded its restart budget (%d restarts): %v", e.Stage, e.Restarts, e.Cause)
}

// Unwrap exposes the budget-breaking failure to errors.Is/As.
func (e *SupervisorError) Unwrap() error { return e.Cause }

// StallError reports a stage that stopped making progress: a sample sat in
// it past the watchdog deadline and the configuration (or the exhausted
// restart budget) forbids routing around it.
type StallError struct {
	// Stage names the stalled stage.
	Stage string
	// Index is the dataset index of the wedged sample.
	Index int
	// Seconds is how long the sample had been in flight when flagged.
	Seconds float64
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("pipeline: %s stage stalled on sample %d (no progress for %.3fs)", e.Stage, e.Index, e.Seconds)
}

// flightKey identifies one attempt of one scheduled sample: seq is the
// schedule slot, gen the supervision generation (bumped each time the
// watchdog abandons a wedged attempt and re-admits the sample).
type flightKey struct{ seq, gen int }

// flight is one sample attempt currently inside a stage's Process call.
type flight struct {
	stage string
	index int
	since float64
}

// queueProbe exposes one inter-stage queue's occupancy to the watchdog so a
// stall report can snapshot the DAG's queue state into obs gauges.
type queueProbe struct {
	name   string
	length func() int
}

// StageSupervisor is the pipeline's supervision layer. Every goroutine the
// pipeline launches goes through Go (the workerguard analyzer enforces
// this), which fences it with panic recovery; every stage Process call runs
// between begin/end so the supervisor knows which samples are in flight,
// where, and for how long. A watchdog goroutine turns overdue flights into
// restarts or typed aborts; recovered worker panics consume the same
// per-stage restart budget. The supervisor never hangs the epoch: every
// failure path ends in a clean typed error through Iterator.Next.
type StageSupervisor struct {
	cfg   SupervisorConfig
	clock trace.Clock
	reg   *obs.Registry // stall queue-state gauges; nil disables

	// fatalFn aborts the epoch with a terminal error (set by the iterator).
	fatalFn func(error)
	// readmit re-enters an abandoned sample at the head stage.
	readmit func(seq, index, attempt, gen int) bool
	// onPanic/onStall feed Iterator.Stats and the obs counters.
	onPanic func()
	onStall func()

	// passive is set when no stall watchdog can run (no deadline): nothing
	// ever abandons an attempt, so the per-sample flight bookkeeping would
	// be pure hot-path overhead and begin/end short-circuit instead. Panic
	// recovery is unaffected — it lives in the workers' deferred recovers.
	passive bool

	mu       sync.Mutex
	inflight map[flightKey]flight
	valid    map[int]int // seq -> minimum still-valid generation
	restarts map[string]int
	workers  map[string]func() // stage -> one fresh worker body
	probes   []queueProbe
}

// newSupervisor returns a supervisor for one epoch of the DAG.
func newSupervisor(cfg SupervisorConfig, clock trace.Clock, reg *obs.Registry) *StageSupervisor {
	return &StageSupervisor{
		cfg:      cfg,
		clock:    clock,
		reg:      reg,
		passive:  cfg.StallDeadline <= 0,
		fatalFn:  func(error) {},
		readmit:  func(int, int, int, int) bool { return false },
		onPanic:  func() {},
		onStall:  func() {},
		inflight: make(map[flightKey]flight),
		valid:    make(map[int]int),
		restarts: make(map[string]int),
		workers:  make(map[string]func()),
	}
}

// registerWorker records how to spawn one fresh worker of a stage, so the
// watchdog can restart a stage whose worker it wrote off as wedged — without
// a replacement, a stage whose entire pool stalls would starve even after
// its samples were re-admitted.
func (s *StageSupervisor) registerWorker(stage string, body func()) {
	s.mu.Lock()
	s.workers[stage] = body
	s.mu.Unlock()
}

// probe registers one inter-stage queue for stall-time state snapshots.
func (s *StageSupervisor) probe(name string, length func() int) {
	s.mu.Lock()
	s.probes = append(s.probes, queueProbe{name: name, length: length})
	s.mu.Unlock()
}

// Go launches fn as a supervised pipeline goroutine. A panic escaping fn is
// machinery failure (not a stage transform crash, which superviseProcess
// absorbs earlier): it is recovered and converted into a clean epoch abort
// with a typed *WorkerPanicError, so a bug in the pipeline itself can never
// wedge a training run waiting on a dead goroutine.
func (s *StageSupervisor) Go(name string, fn func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.fatalFn(&WorkerPanicError{Stage: name, Index: -1, Value: r, Stack: string(debug.Stack())})
			}
		}()
		fn()
	}()
}

// begin registers an attempt entering a stage. It reports false when the
// attempt was already abandoned by the watchdog (a newer generation of the
// sample is in flight), in which case the worker must drop the item without
// processing it.
func (s *StageSupervisor) begin(stage string, seq, index, gen int) bool {
	if s.passive {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen < s.valid[seq] {
		return false
	}
	s.inflight[flightKey{seq: seq, gen: gen}] = flight{stage: stage, index: index, since: s.clock.Now()}
	return true
}

// end deregisters an attempt leaving a stage and reports whether its result
// may be emitted: false means the watchdog abandoned the attempt while it
// ran, so the worker must discard the output (recycling pooled buffers)
// instead of sending it downstream. Once end returns true the attempt can
// no longer be abandoned — it is out of the inflight table — so exactly one
// generation of each sample ever emits.
func (s *StageSupervisor) end(seq, gen int) bool {
	if s.passive {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, flightKey{seq: seq, gen: gen})
	return gen >= s.valid[seq]
}

// recovered converts a stage-worker panic into a typed error and charges
// the stage's restart budget; over budget, it aborts the epoch with a
// *SupervisorError. The worker that recovered continues its loop — it is
// logically restarted in place.
func (s *StageSupervisor) recovered(stage string, index int, r any) error {
	perr := &WorkerPanicError{Stage: stage, Index: index, Value: r, Stack: string(debug.Stack())}
	s.mu.Lock()
	s.restarts[stage]++
	n := s.restarts[stage]
	s.mu.Unlock()
	s.onPanic()
	if n > s.cfg.maxRestarts() {
		s.fatalFn(&SupervisorError{Stage: stage, Restarts: n, Cause: perr})
	}
	return perr
}

// watch is the stall watchdog: it scans the inflight table every half
// deadline and routes overdue attempts per StallRestart. It exits with the
// epoch (abort or done) and requires an Alarm-capable clock; without one
// (or with no deadline) the caller never starts it.
func (s *StageSupervisor) watch(alarm trace.Alarm, abort, done <-chan struct{}) {
	tick := s.cfg.StallDeadline / 2
	for {
		ch, cancel := alarm.After(s.clock.Now() + tick)
		select {
		case <-ch:
		case <-abort:
			cancel()
			return
		case <-done:
			cancel()
			return
		}
		if !s.scan(abort) {
			return
		}
	}
}

// stalledFlight is one overdue attempt found by a watchdog scan.
type stalledFlight struct {
	key flightKey
	fl  flight
	age float64
}

// scan flags every attempt in flight past the deadline, abandons and
// re-admits it while restart budget lasts, and aborts the epoch otherwise.
// It returns false once the epoch is over (fatal raised or abort observed).
func (s *StageSupervisor) scan(abort <-chan struct{}) bool {
	now := s.clock.Now()
	var stalled []stalledFlight
	var fatal *StallError
	s.mu.Lock()
	for k, f := range s.inflight {
		if now-f.since < s.cfg.StallDeadline || k.gen < s.valid[k.seq] {
			continue
		}
		stalled = append(stalled, stalledFlight{key: k, fl: f, age: now - f.since})
	}
	// Deterministic handling order: map iteration must not decide which
	// stall breaks the budget.
	sort.Slice(stalled, func(i, j int) bool { return stalled[i].key.seq < stalled[j].key.seq })
	for _, sf := range stalled {
		if !s.cfg.StallRestart || s.restarts[sf.fl.stage] >= s.cfg.maxRestarts() {
			fatal = &StallError{Stage: sf.fl.stage, Index: sf.fl.index, Seconds: sf.age}
			break
		}
		s.restarts[sf.fl.stage]++
		s.valid[sf.key.seq] = sf.key.gen + 1
	}
	s.mu.Unlock()

	if len(stalled) > 0 {
		s.snapshotQueues()
	}
	for _, sf := range stalled {
		if fatal != nil && sf.fl.stage == fatal.Stage && sf.fl.index == fatal.Index {
			break // this and later stalls were not abandoned
		}
		s.onStall()
		// Restart the stage: the wedged worker is written off, so a fresh
		// one takes its slot — otherwise a stage whose whole pool stalled
		// could never consume its re-admitted samples.
		s.mu.Lock()
		body := s.workers[sf.fl.stage]
		s.mu.Unlock()
		if body != nil {
			s.Go(sf.fl.stage, body)
		}
		if !s.readmit(sf.key.seq, sf.fl.index, 0, sf.key.gen+1) {
			return false // epoch aborted while re-admitting
		}
	}
	if fatal != nil {
		s.fatalFn(fatal)
		return false
	}
	select {
	case <-abort:
		return false
	default:
	}
	return true
}

// snapshotQueues records every registered queue's occupancy and the inflight
// population into obs gauges (pipeline.stall.queue.<name> and
// pipeline.stall.inflight), so a stall report carries the DAG's congestion
// state at detection time.
func (s *StageSupervisor) snapshotQueues() {
	if s.reg == nil {
		return
	}
	s.mu.Lock()
	probes := append([]queueProbe(nil), s.probes...)
	inflight := len(s.inflight)
	s.mu.Unlock()
	for _, p := range probes {
		s.reg.Gauge("pipeline.stall.queue." + p.name).Set(float64(p.length()))
	}
	s.reg.Gauge("pipeline.stall.inflight").Set(float64(inflight))
}

// superviseProcess runs one stage attempt under the supervisor: inflight
// registration around the Process call, panic recovery inside it. ok
// reports whether the attempt is still valid — false means it was abandoned
// (before or during processing) and the caller must discard out without
// emitting or routing err.
func superviseProcess[In, Out any](sup *StageSupervisor, st Stage[In, Out], name string, v item[In]) (out Out, err error, ok bool) {
	if !sup.begin(name, v.seq, v.index, v.gen) {
		return out, nil, false
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = sup.recovered(name, v.index, r)
			}
		}()
		out, err = st.Process(v.index, v.val)
	}()
	ok = sup.end(v.seq, v.gen)
	return out, err, ok
}
