package pipeline

import (
	"errors"
	"fmt"
)

// Resilience is the loader's degraded-mode policy. The zero value preserves
// strict behavior: no retries, and the first undecodable sample fails the
// epoch (as a typed *SampleError).
type Resilience struct {
	// MaxRetries caps per-sample retry attempts for transient errors —
	// Blob/Label/decode failures for which errors.Is(err, fault.Transient)
	// holds. Non-transient errors are never retried.
	MaxRetries int
	// BackoffBase is the delay before the first retry, in seconds; each
	// further retry doubles it. Zero means retry immediately. Delays pass
	// through the iterator's clock when it implements trace.Sleeper, so
	// virtual-clock runs back off in virtual time.
	BackoffBase float64
	// BackoffCap bounds the exponential delay (default: uncapped).
	BackoffCap float64
	// MaxBadSamples is the per-epoch quota of undecodable samples to skip
	// after retries are exhausted. Zero disables skipping. When the quota
	// is exceeded the epoch fails with an *EpochError naming every bad
	// sample.
	MaxBadSamples int
	// MaxLoggedErrors bounds the per-sample errors retained in Stats
	// (default 8). Indices of bad samples are always all retained.
	MaxLoggedErrors int
}

// backoff returns the delay before retry attempt (0-based).
func (r Resilience) backoff(attempt int) float64 {
	d := r.BackoffBase
	for a := 0; a < attempt; a++ {
		d *= 2
		if r.BackoffCap > 0 && d >= r.BackoffCap {
			return r.BackoffCap
		}
	}
	return d
}

func (r Resilience) maxLoggedErrors() int {
	if r.MaxLoggedErrors <= 0 {
		return 8
	}
	return r.MaxLoggedErrors
}

// SampleError reports the failure of one sample, carrying its dataset index.
// Every error surfaced by Iterator.Next for a sample (with or without a
// resilience policy) unwraps to one.
type SampleError struct {
	// Index is the dataset index of the failing sample.
	Index int
	// Err is the underlying Blob/Label/decode failure.
	Err error
}

// Error implements error.
func (e *SampleError) Error() string {
	return fmt.Sprintf("pipeline: sample %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *SampleError) Unwrap() error { return e.Err }

// EpochError reports an epoch that lost more samples than its
// Resilience.MaxBadSamples quota allows.
type EpochError struct {
	// Quota is the MaxBadSamples limit that was exceeded.
	Quota int
	// Indices are the dataset indices of every bad sample, in consumption
	// order.
	Indices []int
	// Errors holds the first MaxLoggedErrors sample errors.
	Errors []*SampleError
}

// Error implements error, naming the offending samples.
func (e *EpochError) Error() string {
	first := ""
	if len(e.Errors) > 0 {
		first = "; first: " + e.Errors[0].Error()
	}
	return fmt.Sprintf("pipeline: epoch lost %d samples %v, exceeding MaxBadSamples=%d%s",
		len(e.Indices), e.Indices, e.Quota, first)
}

// Unwrap exposes the first sample error to errors.Is/As.
func (e *EpochError) Unwrap() error {
	if len(e.Errors) == 0 {
		return nil
	}
	return e.Errors[0]
}

// Stats is an iterator's per-epoch error accounting, for asserting on
// sample-loss budgets.
type Stats struct {
	// Decoded counts samples decoded and delivered into batches.
	Decoded int
	// Retried counts retry attempts performed on transient errors.
	Retried int
	// Skipped counts undecodable samples dropped under MaxBadSamples.
	Skipped int
	// Panics counts stage-worker panics recovered by the supervisor; each
	// consumed one unit of its stage's restart budget.
	Panics int
	// Stalls counts wedged stage attempts the stall watchdog abandoned and
	// re-admitted; each consumed one unit of its stage's restart budget.
	Stalls int
	// BadSamples are the dataset indices of skipped (and, on epoch
	// failure, quota-exceeding) samples, in consumption order.
	BadSamples []int
	// Errors holds the first MaxLoggedErrors sample errors.
	Errors []*SampleError
}

// Stats returns a snapshot of the iterator's error accounting. It is safe
// for concurrent use with Next.
func (it *Iterator) Stats() Stats {
	it.statsMu.Lock()
	defer it.statsMu.Unlock()
	s := it.stats
	s.BadSamples = append([]int(nil), it.stats.BadSamples...)
	s.Errors = append([]*SampleError(nil), it.stats.Errors...)
	return s
}

func (it *Iterator) noteDecoded() {
	it.statsMu.Lock()
	it.stats.Decoded++
	it.statsMu.Unlock()
	it.ob.decoded.Inc()
}

func (it *Iterator) noteRetried() {
	it.statsMu.Lock()
	it.stats.Retried++
	it.statsMu.Unlock()
	it.ob.retried.Inc()
}

func (it *Iterator) notePanicked() {
	it.statsMu.Lock()
	it.stats.Panics++
	it.statsMu.Unlock()
	it.ob.panics.Inc()
}

func (it *Iterator) noteStalled() {
	it.statsMu.Lock()
	it.stats.Stalls++
	it.statsMu.Unlock()
	it.ob.stalls.Inc()
}

// recordBad logs a failed sample and reports whether the epoch may continue:
// true means the sample was skipped within the MaxBadSamples quota; false
// means the failure is epoch-fatal (no quota, or quota exceeded).
func (it *Iterator) recordBad(se *SampleError, quota int) bool {
	it.ob.bad.Inc()
	it.statsMu.Lock()
	defer it.statsMu.Unlock()
	it.stats.BadSamples = append(it.stats.BadSamples, se.Index)
	if len(it.stats.Errors) < it.loader.cfg.Resilience.maxLoggedErrors() {
		it.stats.Errors = append(it.stats.Errors, se)
	}
	if quota > 0 && len(it.stats.BadSamples) <= quota {
		it.stats.Skipped++
		it.ob.skipped.Inc()
		return true
	}
	return false
}

// asSampleError coerces err into a *SampleError for sample i (decode paths
// wrap their errors already; datasets may surface raw errors).
func asSampleError(err error, i int) *SampleError {
	var se *SampleError
	if errors.As(err, &se) {
		return se
	}
	return &SampleError{Index: i, Err: err}
}
