package pipeline

import (
	"errors"
	"sync"

	"scipp/internal/fault"
	"scipp/internal/obs"
	"scipp/internal/trace"
)

// iterObs bundles the iterator's observability handles. The zero value (no
// registry) leaves every handle nil, so each instrumentation site costs one
// nil check. The cache counters are registered only when the loader has a
// cache, so uncached runs snapshot exactly the metric set they always did.
type iterObs struct {
	tr                                     *obs.Tracer
	read, decode, augment, prefetchWait    *obs.StageTimer
	decoded, skipped, bad                  *obs.Counter
	retried, batches                       *obs.Counter
	errTransient, errPermanent             *obs.Counter
	panics, stalls                         *obs.Counter
	queueDepth                             *obs.Gauge
	cacheHits, cacheMisses, cacheEvictions *obs.Counter
	cacheQuarantined                       *obs.Counter
}

// newIterObs resolves every handle the iterator's stages will touch, once.
// The stage timers are pre-resolved StageTimers so the per-sample span sites
// never hit the registry; the augment timer is resolved only when an augment
// stage will actually run, and the decode timer carries the configured
// plugin's stage name, so snapshots list exactly the stages of this DAG.
func newIterObs(reg *obs.Registry, clock trace.Clock, cached bool, decodeStage string, augmented bool) iterObs {
	if reg == nil {
		return iterObs{}
	}
	tr := obs.NewTracer(reg, clock)
	ob := iterObs{
		tr:           tr,
		read:         tr.Stage("pipeline.read"),
		decode:       tr.Stage("pipeline." + decodeStage),
		prefetchWait: tr.Stage("pipeline.prefetch_wait"),
		decoded:      reg.Counter("pipeline.samples.decoded"),
		skipped:      reg.Counter("pipeline.samples.skipped"),
		bad:          reg.Counter("pipeline.samples.bad"),
		retried:      reg.Counter("pipeline.retries"),
		batches:      reg.Counter("pipeline.batches"),
		errTransient: reg.Counter("pipeline.errors.transient"),
		errPermanent: reg.Counter("pipeline.errors.permanent"),
		panics:       reg.Counter("pipeline.worker.panics"),
		stalls:       reg.Counter("pipeline.worker.stalls"),
		queueDepth:   reg.Gauge("pipeline.queue_depth"),
	}
	if augmented {
		ob.augment = tr.Stage("pipeline.augment")
	}
	if cached {
		ob.cacheHits = reg.Counter("pipeline.cache.hits")
		ob.cacheMisses = reg.Counter("pipeline.cache.misses")
		ob.cacheEvictions = reg.Counter("pipeline.cache.evictions")
		ob.cacheQuarantined = reg.Counter("pipeline.cache.quarantined")
	}
	return ob
}

// noteError classifies one failed sample attempt into the error-kind
// counters. Each attempt counts once, so under a retry policy the transient
// count equals the number of retryable failures observed, reconciling
// exactly with the fault injector's log.
func (ob iterObs) noteError(err error) {
	if ob.tr == nil {
		return
	}
	if obs.ErrorKind(err) == "transient" {
		ob.errTransient.Inc()
	} else {
		ob.errPermanent.Inc()
	}
}

// Iterator yields batches of one epoch in schedule order, running the stage
// DAG behind a schedule-order sink. Next is safe for concurrent callers;
// each call returns a distinct batch.
type Iterator struct {
	loader *Loader
	order  []int
	clock  trace.Clock
	ob     iterObs
	sup    *StageSupervisor

	// abort tears the DAG down on Close; tokens caps in-flight samples at
	// Prefetch; batcher restores schedule order over stage completions.
	abort    chan struct{}
	stopOnce sync.Once
	tokens   chan struct{}
	batcher  *BatchStage

	mu  sync.Mutex // serializes batch assembly and pos
	pos int

	statsMu  sync.Mutex // guards stats (written by stage goroutines and Next)
	stats    Stats
	fatalErr error // first supervisor abort; surfaced by Next after teardown
}

// fatal records the supervision layer's terminal error (first one wins) and
// tears the epoch down. Next surfaces the error once the ordered channel
// drains: the epoch ends loudly, never by hanging.
func (it *Iterator) fatal(err error) {
	it.statsMu.Lock()
	if it.fatalErr == nil {
		it.fatalErr = err
	}
	it.statsMu.Unlock()
	it.Close()
}

func (it *Iterator) fatalError() error {
	it.statsMu.Lock()
	defer it.statsMu.Unlock()
	return it.fatalErr
}

// start assembles and launches the epoch's DAG:
//
//	source ──▶ read/cache ──▶ decode ──▶ [augment] ──▶ batch sink ──▶ Next
//	   ▲          │ failures      │ failures   │ failures     │
//	   tokens     └──────────▶ retry judge ◀───┴──────────────┘
//	                 (transient: back to read; terminal: to sink)
//
// Each stage is a bounded worker pool; every queue is bounded; every send is
// abort-guarded. The retry judge re-admits transient failures at the read
// stage (re-reading the sample, so fault-injector access counts match the
// monolithic loader) and forwards exhausted or permanent failures to the
// sink as terminal outcomes, where they occupy their schedule position.
func (it *Iterator) start() {
	l := it.loader
	cfg := l.cfg
	depth := cfg.Stages.QueueDepth
	sup := it.sup

	readq := make(chan item[struct{}], depth)
	retryq := make(chan item[struct{}], cfg.Prefetch)
	decodeq := make(chan item[rawSample], depth)
	failq := make(chan failure, cfg.Prefetch)
	completionq := make(chan outcome, depth)
	abort, done := it.abort, it.batcher.done

	// Supervisor wiring: terminal aborts surface through Next; abandoned
	// (stalled) samples re-enter the head stage at a fresh generation with a
	// reset attempt count — the wedge was the stage's fault, not the
	// sample's, so its retry budget survives intact.
	sup.fatalFn = it.fatal
	sup.onPanic = it.notePanicked
	sup.onStall = it.noteStalled
	sup.readmit = func(seq, index, attempt, gen int) bool {
		return sendItem(retryq, item[struct{}]{seq: seq, index: index, attempt: attempt, gen: gen}, abort)
	}
	sup.probe("read", func() int { return len(readq) })
	sup.probe("retry", func() int { return len(retryq) })
	sup.probe("decode", func() int { return len(decodeq) })
	sup.probe("fail", func() int { return len(failq) })
	sup.probe("completion", func() int { return len(completionq) })

	toOutcome := func(v item[decodedSample]) bool {
		return sendItem(completionq, outcome{seq: v.seq, index: v.index, data: v.val.data, label: v.val.label}, abort)
	}
	// discardDecoded recycles the pooled tensor of an abandoned attempt's
	// decoded output — the re-admitted generation decodes into a fresh one.
	discardDecoded := func(v decodedSample) { l.pool.PutTensor(v.data) }

	// Source: admit scheduled samples while tokens (in-flight budget) last.
	sup.Go("source", func() {
		for seq, idx := range it.order {
			select {
			case it.tokens <- struct{}{}:
			case <-abort:
				return
			}
			if !sendItem(readq, item[struct{}]{seq: seq, index: idx}, abort) {
				return
			}
		}
	})

	// Read (or cache) stage: the only stage fed by the retry queue.
	var head Stage[struct{}, rawSample] = &ReadStage{ds: l.ds, ob: it.ob}
	if l.cache != nil {
		head = &CacheStage{read: &ReadStage{ds: l.ds, ob: it.ob}, cache: l.cache, ob: it.ob}
	}
	runPool(sup, head, cfg.Stages.ReadWorkers, readq, retryq,
		func(v item[rawSample]) bool { return sendItem(decodeq, v, abort) },
		failq, abort, done, it.ob.noteError, nil)

	// Decode stage, emitting into augment when configured, else the sink.
	dec := &DecodeStage{
		format: cfg.Format, plugin: cfg.Plugin, device: cfg.Device,
		cpuWorkers: cfg.CPUWorkers, pool: l.pool, clock: it.clock,
		timeline: cfg.Trace, tag: "decode-" + cfg.Plugin.String(), ob: it.ob,
	}
	emitDecoded := toOutcome
	if cfg.Augment != nil {
		augmentq := make(chan item[decodedSample], depth)
		sup.probe("augment", func() int { return len(augmentq) })
		emitDecoded = func(v item[decodedSample]) bool { return sendItem(augmentq, v, abort) }
		runPool[decodedSample, decodedSample](sup, &AugmentStage{fn: cfg.Augment, ob: it.ob},
			cfg.Stages.AugmentWorkers, augmentq, nil, toOutcome, failq, abort, done, it.ob.noteError, discardDecoded)
	}
	runPool[rawSample, decodedSample](sup, dec, cfg.Stages.DecodeWorkers, decodeq, nil,
		emitDecoded, failq, abort, done, it.ob.noteError, discardDecoded)

	// Retry judge: transient failures with retry budget left re-enter the
	// read stage (after their backoff elapses on the iterator's clock);
	// everything else is terminal and takes its schedule slot in the sink.
	sup.Go("retry-judge", func() {
		pol := cfg.Resilience
		for {
			var f failure
			select {
			case f = <-failq:
			case <-abort:
				return
			case <-done:
				return
			}
			if errors.Is(f.err, fault.Transient) && f.attempt < pol.MaxRetries {
				it.noteRetried()
				retry := item[struct{}]{seq: f.seq, index: f.index, attempt: f.attempt + 1, gen: f.gen}
				if s, ok := it.clock.(trace.Sleeper); ok {
					if delay := pol.backoff(f.attempt); delay > 0 {
						sup.Go("retry-backoff", func() {
							s.Sleep(delay)
							sendItem(retryq, retry, abort)
						})
						continue
					}
				}
				if !sendItem(retryq, retry, abort) {
					return
				}
				continue
			}
			if !sendItem(completionq, outcome{seq: f.seq, index: f.index, err: asSampleError(f.err, f.index)}, abort) {
				return
			}
		}
	})

	sup.Go("batch-sink", func() { it.batcher.run(completionq, abort) })

	// Stall watchdog: runs only with a deadline and an alarm-capable clock
	// (wall clocks and trace.VirtualClock both qualify).
	if cfg.Supervise.StallDeadline > 0 {
		if alarm, ok := it.clock.(trace.Alarm); ok {
			sup.Go("watchdog", func() { sup.watch(alarm, abort, done) })
		}
	}
}

// Next returns the next batch, or (nil, nil) at the end of the epoch.
//
// Batches are drawn from the loader's slab pool: call Batch.Release once a
// batch's tensors are dead to recycle them into later batches (consumers
// that retain tensors just skip Release). Batches Next never returns —
// empty at end of epoch, dropped partials, error exits — release here.
//
// Sample failures surface as typed errors: with the zero Resilience policy
// the first failed sample ends the epoch with a *SampleError carrying its
// dataset index; with MaxBadSamples > 0 failed samples are skipped and
// accounted in Stats until the quota is exceeded, at which point Next
// returns an *EpochError naming every bad sample. Either way the iterator
// is closed, and Close/Drain remain safe to call afterwards.
//
// Supervision failures — a stage over its restart budget (*SupervisorError)
// or a stall the watchdog may not route around (*StallError) — tear the DAG
// down and surface here as the epoch's terminal error.
//
//scipp:hotpath
func (it *Iterator) Next() (*Batch, error) {
	it.mu.Lock()
	defer it.mu.Unlock()
	pol := it.loader.cfg.Resilience
	want := it.loader.cfg.Batch
	b := it.loader.pool.getBatch(want)
	for len(b.Data) < want {
		it.ob.queueDepth.Set(float64(len(it.batcher.ordered)))
		wsp := it.ob.prefetchWait.Start()
		o, ok := <-it.batcher.ordered
		wsp.End()
		if !ok {
			if err := it.fatalError(); err != nil {
				b.Release()
				return nil, err
			}
			break
		}
		select { // one terminal outcome consumed: admit the next sample
		case <-it.tokens:
		default:
		}
		if o.err != nil {
			se := asSampleError(o.err, o.index)
			if it.recordBad(se, pol.MaxBadSamples) {
				continue // skipped within quota: the batch draws the next sample
			}
			b.Release()
			it.Close()
			if pol.MaxBadSamples > 0 {
				st := it.Stats()
				return nil, &EpochError{Quota: pol.MaxBadSamples, Indices: st.BadSamples, Errors: st.Errors}
			}
			return nil, se
		}
		b.Data = append(b.Data, o.data)
		b.Labels = append(b.Labels, o.label)
		b.Indices = append(b.Indices, o.index)
		it.noteDecoded()
		it.pos++
	}
	if len(b.Data) == 0 {
		b.Release()
		return nil, nil
	}
	if len(b.Data) < want && it.loader.cfg.DropLast {
		b.Release()
		return nil, nil
	}
	it.ob.batches.Inc()
	return b, nil
}

// Close abandons the epoch: the abort channel tears down the source, every
// stage pool, the retry judge and the batch sink. Safe to call repeatedly
// and concurrently with Next.
func (it *Iterator) Close() {
	it.stopOnce.Do(func() { close(it.abort) })
}

// Drain runs the full epoch, releasing each batch back to the slab pool,
// and returns the number of samples decoded. Used by throughput
// measurements, which it keeps allocation-steady.
func (it *Iterator) Drain() (int, error) {
	n := 0
	for {
		b, err := it.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Size()
		b.Release()
	}
}
