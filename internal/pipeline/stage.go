package pipeline

import "scipp/internal/tensor"

// Stage is one node of the staged DAG: a typed per-item transform executed
// by a bounded worker pool. A stage sees one sample at a time and never
// blocks on channels itself — queueing, backpressure, abort, retry routing
// and accounting all live in the pool runner, so a Stage implementation is
// just the work: read bytes, decode, augment. Stages self-instrument (each
// opens its own obs span) so span boundaries stay exactly where the
// monolithic loader had them.
type Stage[In, Out any] interface {
	// Name identifies the stage in diagnostics.
	Name() string
	// Process transforms one sample. index is the sample's dataset index.
	Process(index int, in In) (Out, error)
}

// item carries one scheduled sample between stages.
type item[T any] struct {
	// seq is the sample's position in the epoch schedule; batches are
	// reassembled in seq order downstream.
	seq int
	// index is the dataset index.
	index int
	// attempt counts the retries consumed so far (0 on the first pass).
	attempt int
	// gen is the supervision generation: bumped each time the stall
	// watchdog abandons a wedged attempt of this seq and re-admits it, so
	// the abandoned attempt's late output can be recognized and suppressed.
	gen int
	// val is the stage payload.
	val T
}

// failure is one failed stage attempt, routed to the retry judge.
type failure struct {
	seq, index, attempt, gen int
	err                      error
}

// outcome is a sample's terminal result entering batch assembly: decoded
// data, or the error that exhausted its retries.
type outcome struct {
	seq, index  int
	data, label *tensor.Tensor
	err         error
}

// sendItem delivers v on out unless the epoch aborts first. Every send in
// the stage machinery goes through here (or an equivalent select): a bare
// send could block forever once the consumer is gone, wedging the epoch —
// the same discipline the distsend rule enforces in internal/dist.
//
//scipp:hotpath
func sendItem[T any](out chan<- T, v T, abort <-chan struct{}) bool {
	select {
	case out <- v:
		return true
	case <-abort:
		return false
	}
}

// runPool launches the worker pool of one stage under sup. Workers pull
// items from in (and, for the head stage, the retry feed), apply st through
// superviseProcess — panic recovery plus inflight registration for the stall
// watchdog — and hand successes to emit and failures to fail. onErr observes
// every failed attempt (error-kind accounting). discard, when non-nil,
// disposes the output of an attempt the watchdog abandoned while it ran (the
// sample was re-admitted; this copy's pooled buffers must recycle, not
// emit). Workers exit when the epoch aborts or when done closes — done only
// closes after every scheduled sample reached a terminal outcome, so no
// worker can still hold an item by then and nothing is lost.
//
//scipp:hotpath
func runPool[In, Out any](sup *StageSupervisor, st Stage[In, Out], workers int,
	in, retry <-chan item[In],
	emit func(item[Out]) bool, fail chan<- failure,
	abort, done <-chan struct{}, onErr func(error), discard func(Out)) {

	name := st.Name()
	work := func() {
		for {
			var v item[In]
			select {
			case v = <-in:
			case v = <-retry: // nil for every stage but the head: blocks forever
			case <-abort:
				return
			case <-done:
				return
			}
			out, err, ok := superviseProcess(sup, st, name, v)
			if !ok {
				// Abandoned attempt: a newer generation owns this seq.
				if err == nil && discard != nil {
					discard(out)
				}
				continue
			}
			if err != nil {
				onErr(err)
				if !sendItem(fail, failure{seq: v.seq, index: v.index, attempt: v.attempt, gen: v.gen, err: err}, abort) {
					return
				}
				continue
			}
			if !emit(item[Out]{seq: v.seq, index: v.index, attempt: v.attempt, gen: v.gen, val: out}) {
				return
			}
		}
	}
	sup.registerWorker(name, work)
	for w := 0; w < workers; w++ {
		sup.Go(name, work)
	}
}
