package pipeline

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// countFormat produces decoders that write the sample's first blob byte
// everywhere, tracking open counts.
type countFormat struct{ opens *atomic.Int64 }

func (f countFormat) Name() string { return "count" }
func (f countFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	if len(blob) == 0 {
		return nil, errors.New("empty blob")
	}
	if f.opens != nil {
		f.opens.Add(1)
	}
	return &countDecoder{v: blob[0]}, nil
}

type countDecoder struct{ v byte }

func (d *countDecoder) OutputShape() tensor.Shape { return tensor.Shape{4} }
func (d *countDecoder) OutputDType() tensor.DType { return tensor.F32 }
func (d *countDecoder) NumChunks() int            { return 2 }
func (d *countDecoder) Workload() codec.Workload  { return codec.Workload{Chunks: 2} }
func (d *countDecoder) DecodeChunk(c int, dst *tensor.Tensor) error {
	for i := c * 2; i < (c+1)*2; i++ {
		dst.F32s[i] = float32(d.v)
	}
	return nil
}

func testDataset(n int) *MemDataset {
	ds := &MemDataset{}
	for i := 0; i < n; i++ {
		ds.Blobs = append(ds.Blobs, []byte{byte(i)})
		lb := tensor.New(tensor.F32, 1)
		lb.F32s[0] = float32(i)
		ds.Labels = append(ds.Labels, lb)
	}
	return ds
}

func TestEpochDeliversAllSamplesInOrder(t *testing.T) {
	ds := testDataset(10)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 3})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	var indices []int
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for k, idx := range b.Indices {
			if b.Data[k].F32s[0] != float32(idx) {
				t.Fatalf("sample %d decoded wrong content", idx)
			}
			if b.Labels[k].F32s[0] != float32(idx) {
				t.Fatalf("sample %d has wrong label", idx)
			}
		}
		indices = append(indices, b.Indices...)
	}
	if len(indices) != 10 {
		t.Fatalf("delivered %d samples, want 10", len(indices))
	}
	for i, idx := range indices {
		if idx != i {
			t.Errorf("unshuffled epoch out of order at %d: %d", i, idx)
		}
	}
}

func TestBatchSizes(t *testing.T) {
	ds := testDataset(7)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 3})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	var sizes []int
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, b.Size())
	}
	want := []int{3, 3, 1}
	if fmt.Sprint(sizes) != fmt.Sprint(want) {
		t.Errorf("batch sizes %v, want %v", sizes, want)
	}
}

func TestDropLast(t *testing.T) {
	ds := testDataset(7)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 3, DropLast: true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := l.Epoch(0).Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("DropLast delivered %d samples, want 6", n)
	}
}

func TestShuffleDeterministicPerEpoch(t *testing.T) {
	ds := testDataset(32)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 4, Shuffle: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s0a := l.Schedule(0)
	s0b := l.Schedule(0)
	s1 := l.Schedule(1)
	if fmt.Sprint(s0a) != fmt.Sprint(s0b) {
		t.Error("same epoch schedule not deterministic")
	}
	if fmt.Sprint(s0a) == fmt.Sprint(s1) {
		t.Error("different epochs have identical shuffles")
	}
	// Schedule must be a permutation.
	seen := make([]bool, 32)
	for _, idx := range s0a {
		if seen[idx] {
			t.Fatal("schedule repeats an index")
		}
		seen[idx] = true
	}
}

func TestShuffledEpochStillDeliversEverything(t *testing.T) {
	ds := testDataset(25)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 4, Shuffle: true, Seed: 3, Prefetch: 6})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(2)
	seen := make(map[int]bool)
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for k, idx := range b.Indices {
			if seen[idx] {
				t.Fatalf("sample %d delivered twice", idx)
			}
			seen[idx] = true
			if b.Data[k].F32s[0] != float32(idx) {
				t.Fatalf("shuffled sample %d content mismatch", idx)
			}
		}
	}
	if len(seen) != 25 {
		t.Errorf("delivered %d distinct samples, want 25", len(seen))
	}
}

func TestDecodeErrorPropagates(t *testing.T) {
	ds := testDataset(5)
	ds.Blobs[3] = nil // Open will fail
	l, err := New(ds, Config{Format: countFormat{}, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	sawErr := false
	for i := 0; i < 5; i++ {
		b, err := it.Next()
		if err != nil {
			sawErr = true
			break
		}
		if b == nil {
			break
		}
	}
	if !sawErr {
		t.Error("decode failure did not surface")
	}
}

func TestCloseMidEpoch(t *testing.T) {
	ds := testDataset(100)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 1, Prefetch: 4})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	it.Close() // must not deadlock or leak
}

func TestEachSampleOpenedOncePerEpoch(t *testing.T) {
	var opens atomic.Int64
	ds := testDataset(20)
	l, err := New(ds, Config{Format: countFormat{opens: &opens}, Batch: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Epoch(0).Drain(); err != nil {
		t.Fatal(err)
	}
	if opens.Load() != 20 {
		t.Errorf("opened %d blobs, want 20", opens.Load())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{Format: countFormat{}}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := New(testDataset(1), Config{}); err == nil {
		t.Error("nil format accepted")
	}
	if _, err := New(testDataset(1), Config{Format: countFormat{}, Plugin: GPUPlugin}); err == nil {
		t.Error("GPU plugin without device accepted")
	}
}

func TestMemDatasetBounds(t *testing.T) {
	ds := testDataset(2)
	if _, err := ds.Blob(5); err == nil {
		t.Error("out-of-range blob accepted")
	}
	if _, err := ds.Label(-1); err == nil {
		t.Error("negative label index accepted")
	}
	if ds.EncodedBytes() != 2 {
		t.Errorf("EncodedBytes = %d", ds.EncodedBytes())
	}
}

func TestPluginString(t *testing.T) {
	if CPUPlugin.String() != "cpu" || GPUPlugin.String() != "gpu" {
		t.Error("plugin names")
	}
}

func TestTraceInstrumentation(t *testing.T) {
	ds := testDataset(6)
	tl := &trace.Timeline{}
	l, err := New(ds, Config{Format: countFormat{}, Batch: 2, Trace: tl})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Epoch(0).Drain(); err != nil {
		t.Fatal(err)
	}
	if tl.Len() != 6 {
		t.Errorf("trace has %d events, want one per sample", tl.Len())
	}
	b := tl.Breakdown()
	if b["decode-cpu"] <= 0 {
		t.Errorf("missing decode-cpu tag: %v", b)
	}
}

func TestFuncDataset(t *testing.T) {
	fd := &FuncDataset{
		N:      2,
		BlobFn: func(i int) ([]byte, error) { return []byte{byte(i)}, nil },
		LabelFn: func(i int) (*tensor.Tensor, error) {
			lb := tensor.New(tensor.F32, 1)
			lb.F32s[0] = float32(i)
			return lb, nil
		},
	}
	if fd.Len() != 2 {
		t.Error("Len")
	}
	if _, err := fd.Blob(2); err == nil {
		t.Error("out-of-range blob accepted")
	}
	if _, err := fd.Label(-1); err == nil {
		t.Error("out-of-range label accepted")
	}
	b, err := fd.Blob(1)
	if err != nil || b[0] != 1 {
		t.Error("BlobFn not wired")
	}
	empty := &FuncDataset{N: 1}
	if _, err := empty.Blob(0); err == nil {
		t.Error("nil BlobFn accepted")
	}
	if _, err := empty.Label(0); err == nil {
		t.Error("nil LabelFn accepted")
	}
}
