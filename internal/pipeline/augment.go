package pipeline

import "scipp/internal/tensor"

// AugmentStage runs the per-sample augmentation transform of the reference
// pipelines on its own worker pool, overlapped with read and decode like
// every other stage. Augment errors fail the sample exactly like decode
// errors. The stage is omitted from the DAG when no transform is configured.
type AugmentStage struct {
	fn func(*tensor.Tensor) (*tensor.Tensor, error)
	ob iterObs
}

// Name implements Stage.
func (s *AugmentStage) Name() string { return "augment" }

// Process implements Stage[decodedSample, decodedSample].
//
//scipp:hotpath
func (s *AugmentStage) Process(index int, in decodedSample) (decodedSample, error) {
	sp := s.ob.augment.Start()
	data, err := s.fn(in.data)
	sp.End()
	if err != nil {
		return decodedSample{}, err
	}
	return decodedSample{data: data, label: in.label}, nil
}
