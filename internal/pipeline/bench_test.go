package pipeline

import (
	"testing"

	"scipp/internal/gpusim"
	"scipp/internal/obs"
	"scipp/internal/platform"
	"scipp/internal/tensor"
)

// Benchmarks over the staged pipeline. One iteration drains one full epoch
// (benchSamples samples), so ns/op is the end-to-end epoch latency of the
// stage DAG and samples/sec its steady throughput. scripts/bench.sh runs
// these and commits the result as BENCH_pipeline.json; the CPU/GPU pair
// uses the same workload shape as the pre-DAG loader benchmarks, so the
// committed numbers are directly comparable across the refactor.
const (
	benchSamples  = 256
	benchBatch    = 8
	benchPrefetch = 16
)

func benchLoader(b *testing.B, cfg Config) *Loader {
	b.Helper()
	cfg.Format = countFormat{}
	cfg.Batch = benchBatch
	cfg.Prefetch = benchPrefetch
	l, err := New(testDataset(benchSamples), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func drainEpochs(b *testing.B, l *Loader) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := l.Epoch(i).Drain()
		if err != nil {
			b.Fatal(err)
		}
		if n != benchSamples {
			b.Fatalf("epoch delivered %d samples, want %d", n, benchSamples)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchSamples)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkPipelineCPU(b *testing.B) {
	drainEpochs(b, benchLoader(b, Config{}))
}

func BenchmarkPipelineGPU(b *testing.B) {
	drainEpochs(b, benchLoader(b, Config{
		Plugin: GPUPlugin,
		Device: gpusim.New(platform.Summit().GPU),
	}))
}

// syntheticReadDataset imitates a dataset whose Blob calls cost real work
// (checksumming a 4 KiB buffer per read), so the cached/uncached pair below
// measures what the sample cache actually buys on later epochs.
func syntheticReadDataset(n int) *FuncDataset {
	labels := make([]*tensor.Tensor, n)
	for i := range labels {
		lb := tensor.New(tensor.F32, 1)
		lb.F32s[0] = float32(i)
		labels[i] = lb
	}
	return &FuncDataset{
		N: n,
		BlobFn: func(i int) ([]byte, error) {
			buf := make([]byte, 4096)
			acc := byte(i)
			for k := range buf {
				acc = acc*31 + byte(k)
				buf[k] = acc
			}
			return []byte{byte(i), buf[len(buf)-1]}, nil
		},
		LabelFn: func(i int) (*tensor.Tensor, error) { return labels[i], nil },
	}
}

func benchCacheEpochs(b *testing.B, cache CacheConfig) {
	l, err := New(syntheticReadDataset(benchSamples), Config{
		Format:   countFormat{},
		Batch:    benchBatch,
		Prefetch: benchPrefetch,
		Cache:    cache,
		Obs:      obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm epoch 0 outside the timed region: the benchmark measures the
	// steady state the residency model describes (epoch >= 1).
	if _, err := l.Epoch(0).Drain(); err != nil {
		b.Fatal(err)
	}
	drainEpochs(b, l)
}

func BenchmarkPipelineCachedEpoch(b *testing.B) {
	benchCacheEpochs(b, CacheConfig{HostMemBytes: 64 << 20})
}

func BenchmarkPipelineUncachedEpoch(b *testing.B) {
	benchCacheEpochs(b, CacheConfig{})
}

// BenchmarkPipelineCachedEpochIntegrityOff isolates what the end-to-end
// checksum verification costs on the cached hit path: the delta between
// this and BenchmarkPipelineCachedEpoch is the integrity overhead, budgeted
// at under ~5% of the cached epoch.
func BenchmarkPipelineCachedEpochIntegrityOff(b *testing.B) {
	benchCacheEpochs(b, CacheConfig{HostMemBytes: 64 << 20, DisableIntegrity: true})
}

// BenchmarkSlabPoolFragmentation is the satellite measurement behind the
// capacity-class freelists: a ragged get/put stream cycling through many
// distinct element counts. Under exact-elems pooling every length was its
// own class and nearly every get missed to the heap; with round-up classes
// the stream recycles a handful of slabs, so allocs/op is the honest
// fragmentation signal. (Deliberately outside the BenchmarkPipeline* family:
// it has no committed baseline cell in BENCH_pipeline.json.)
func BenchmarkSlabPoolFragmentation(b *testing.B) {
	p := NewSlabPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elems := 1 + (i*37)%997 // 997 distinct lengths, a few classes
		t := p.GetTensor(tensor.F32, tensor.Shape{3, elems})
		t.F32s[0] = float32(i) // touch the slab so reuse is not optimized away
		p.PutTensor(t)
	}
	b.StopTimer()
	st := p.Stats()
	if b.N > 64 && st.Hits == 0 {
		b.Fatal("ragged stream never hit the freelist")
	}
	b.ReportMetric(float64(st.Hits)/float64(st.Gets), "hit-ratio")
}
