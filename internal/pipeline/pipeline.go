// Package pipeline implements the data-loading pipeline the paper's plugins
// slot into — the role NVIDIA DALI plays in §VI: indexed datasets of encoded
// samples, per-epoch shuffling, prefetched multi-worker decoding, and batch
// assembly feeding the training loop. Decode placement is selectable per
// §VI's two plugin variants: a CPU thread-pool decoder or the simulated-GPU
// decoder.
//
// # Architecture
//
// The loader is an explicit stage DAG. A Source derives each epoch's sample
// schedule (sequential, shuffled, or sharded by rank); the scheduled indices
// flow through typed stages — Read (or Cache, when a storage-hierarchy cache
// is configured), Decode, and optionally Augment — each a bounded worker
// pool connected by bounded queues; and a batch sink restores schedule order
// before Iterator.Next assembles minibatches and applies the Resilience
// policy. Admission of new samples is capped at Prefetch in-flight, so
// backpressure propagates from the consumer to the source. Every channel
// send in the stage machinery sits in a select with an abort escape (the
// stagesend lint rule), so Close never wedges a worker.
package pipeline

import (
	"errors"
	"runtime"

	"scipp/internal/codec"
	"scipp/internal/gpusim"
	"scipp/internal/obs"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// Plugin selects where sample decode runs (§VI: "we implemented two
// variants for decoding ... one for the CPU and another for the GPU").
type Plugin int

// Plugin placements.
const (
	CPUPlugin Plugin = iota
	GPUPlugin
)

// String names the plugin placement.
func (p Plugin) String() string {
	if p == GPUPlugin {
		return "gpu"
	}
	return "cpu"
}

// StageConfig sizes the per-stage worker pools and inter-stage queues of the
// DAG. Zero pool widths default to a GOMAXPROCS-derived width capped at
// Prefetch — wide enough to keep the in-flight admission cap busy, narrow
// enough not to thrash the scheduler on small hosts; a zero queue depth
// defaults to Prefetch. Worker counts never affect delivered order (the
// batch sink restores schedule order), only throughput.
type StageConfig struct {
	// ReadWorkers is the read/cache stage pool width.
	ReadWorkers int
	// DecodeWorkers is the decode stage pool width. This is cross-sample
	// parallelism; Config.CPUWorkers remains the intra-sample chunk
	// parallelism of one CPU-plugin decode.
	DecodeWorkers int
	// AugmentWorkers is the augment stage pool width (ignored without an
	// Augment transform).
	AugmentWorkers int
	// QueueDepth is the capacity of each inter-stage queue.
	QueueDepth int
}

func (s StageConfig) withDefaults(prefetch int) StageConfig {
	pool := func(floor int) int {
		w := runtime.GOMAXPROCS(0)
		if w < floor {
			w = floor
		}
		if w > prefetch {
			w = prefetch
		}
		return w
	}
	if s.ReadWorkers <= 0 {
		s.ReadWorkers = pool(2) // reads may block on storage: keep a spare
	}
	if s.DecodeWorkers <= 0 {
		s.DecodeWorkers = pool(4)
	}
	if s.AugmentWorkers <= 0 {
		s.AugmentWorkers = pool(2)
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = prefetch
	}
	return s
}

// Config configures a Loader.
type Config struct {
	// Format opens the dataset's blobs.
	Format codec.Format
	// Plugin places the decode stage.
	Plugin Plugin
	// Device executes GPU-plugin decodes; required iff Plugin == GPUPlugin.
	Device *gpusim.Device
	// CPUWorkers is the decode thread count for the CPU plugin (default 4).
	CPUWorkers int
	// Prefetch caps the samples in flight across the stage DAG (default
	// 2*Batch).
	Prefetch int
	// Batch is the per-iterator batch size (default 1).
	Batch int
	// Shuffle reshuffles sample order each epoch.
	Shuffle bool
	// Seed drives shuffling (per-epoch derived).
	Seed uint64
	// DropLast drops a trailing partial batch.
	DropLast bool
	// Source, when non-nil, overrides the schedule policy implied by
	// Shuffle/Seed — e.g. a ShardedSource for rank-partitioned loading. It
	// must cover only valid dataset indices.
	Source Source
	// Stages sizes the per-stage worker pools and queues; zero values
	// default to Prefetch.
	Stages StageConfig
	// Cache, when enabled, interposes a storage-hierarchy sample cache
	// (HostMem over NVMe, deterministic LRU) in front of Dataset reads. The
	// cache is owned by the Loader and persists across epochs: the first
	// epoch's reads populate it, later epochs hit it — iosim's residency
	// model realized on the actual data path.
	Cache CacheConfig
	// Resilience is the degraded-mode policy: retry budget for transient
	// errors and the per-epoch bad-sample skip quota. The zero value keeps
	// strict semantics (first bad sample fails the epoch).
	Resilience Resilience
	// Supervise tunes the supervision layer: per-stage worker restart
	// budgets for recovered panics and the stall watchdog deadline. The
	// zero value recovers panics under the default budget and leaves the
	// watchdog off. Resilience decides a sample's fate after its worker was
	// revived; Supervise decides whether the worker is revived at all.
	Supervise SupervisorConfig
	// Augment, when non-nil, runs on every decoded sample tensor before
	// batch assembly — the per-sample augmentation stage of the reference
	// pipelines. It executes as its own DAG stage, overlapped with read and
	// decode. Errors fail the sample exactly like decode errors.
	Augment func(*tensor.Tensor) (*tensor.Tensor, error)
	// Trace, when non-nil, receives one event per decoded sample (resource
	// "loader", tag "decode-cpu"/"decode-gpu"), for profiling the real
	// pipeline.
	Trace *trace.Timeline
	// Clock timestamps Trace events and observability spans. Defaults to a
	// wall clock anchored at iterator creation; supply a trace.VirtualClock
	// for reproducible traces.
	Clock trace.Clock
	// Obs, when non-nil, receives the iterator's stage spans and metrics:
	// per-stage duration histograms (pipeline.read / pipeline.decode.cpu /
	// pipeline.decode.gpu / pipeline.augment / pipeline.prefetch_wait, all
	// ".seconds"), sample accounting counters (pipeline.samples.*,
	// pipeline.retries, pipeline.batches, pipeline.errors.*), the
	// pipeline.queue_depth gauge, and — only when a cache is enabled —
	// pipeline.cache.hits/misses/evictions. Nil keeps the hot path
	// uninstrumented at the cost of one nil check per site.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.CPUWorkers <= 0 {
		c.CPUWorkers = 4
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Prefetch <= 0 {
		c.Prefetch = 2 * c.Batch
	}
	c.Stages = c.Stages.withDefaults(c.Prefetch)
	return c
}

// Loader drives the staged decoding of a Dataset.
type Loader struct {
	ds    Dataset
	cfg   Config
	cache *SampleCache // nil unless cfg.Cache is enabled; shared by epochs
	pool  *SlabPool    // recycles sample tensors and batches across epochs
}

// New validates the configuration and returns a Loader.
func New(ds Dataset, cfg Config) (*Loader, error) {
	cfg = cfg.withDefaults()
	if ds == nil {
		return nil, errors.New("pipeline: nil dataset")
	}
	if cfg.Format == nil {
		return nil, errors.New("pipeline: nil format")
	}
	if cfg.Plugin == GPUPlugin && cfg.Device == nil {
		return nil, errors.New("pipeline: GPU plugin requires a device")
	}
	if v, ok := cfg.Source.(interface{ Validate() error }); ok && v != nil {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	l := &Loader{ds: ds, cfg: cfg, pool: NewSlabPool()}
	if cfg.Cache.enabled() {
		l.cache = NewSampleCache(cfg.Cache)
	}
	return l, nil
}

// Cache returns the loader's sample cache, or nil when caching is disabled.
func (l *Loader) Cache() *SampleCache { return l.cache }

// Pool returns the loader's slab pool — the recycler behind the decoded
// sample tensors and batches its iterators hand out (see Batch.Release).
func (l *Loader) Pool() *SlabPool { return l.pool }

// Schedule returns the sample order for an epoch, as derived by the
// configured Source (default: sequential, or seeded per-epoch shuffle when
// Shuffle is set).
func (l *Loader) Schedule(epoch int) []int {
	src := l.cfg.Source
	if src == nil {
		if l.cfg.Shuffle {
			src = &ShuffledSource{N: l.ds.Len(), Seed: l.cfg.Seed}
		} else {
			src = &SequentialSource{N: l.ds.Len()}
		}
	}
	return src.Order(epoch)
}

// Epoch returns an iterator over the epoch's batches. The iterator runs the
// stage DAG concurrently; call Close to release its workers early.
func (l *Loader) Epoch(epoch int) *Iterator {
	order := l.Schedule(epoch)
	clock := l.cfg.Clock
	if clock == nil {
		clock = trace.NewWallClock()
	}
	it := &Iterator{
		loader:  l,
		order:   order,
		clock:   clock,
		ob:      newIterObs(l.cfg.Obs, clock, l.cache != nil, "decode."+l.cfg.Plugin.String(), l.cfg.Augment != nil),
		sup:     newSupervisor(l.cfg.Supervise, clock, l.cfg.Obs),
		abort:   make(chan struct{}),
		tokens:  make(chan struct{}, l.cfg.Prefetch),
		batcher: newBatchStage(len(order), l.cfg.Stages.QueueDepth),
	}
	it.start()
	return it
}
