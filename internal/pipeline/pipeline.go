// Package pipeline implements the data-loading pipeline the paper's plugins
// slot into — the role NVIDIA DALI plays in §VI: indexed datasets of encoded
// samples, per-epoch shuffling, prefetched multi-worker decoding, and batch
// assembly feeding the training loop. Decode placement is selectable per
// §VI's two plugin variants: a CPU thread-pool decoder or the simulated-GPU
// decoder.
package pipeline

import (
	"errors"
	"fmt"
	"sync"

	"scipp/internal/codec"
	"scipp/internal/gpusim"
	"scipp/internal/obs"
	"scipp/internal/tensor"
	"scipp/internal/trace"
	"scipp/internal/xrand"
)

// Dataset is indexed access to encoded sample blobs and their labels.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Blob returns the encoded bytes of sample i.
	Blob(i int) ([]byte, error)
	// Label returns the training label of sample i.
	Label(i int) (*tensor.Tensor, error)
}

// MemDataset is an in-memory Dataset.
type MemDataset struct {
	Blobs  [][]byte
	Labels []*tensor.Tensor
}

// Len implements Dataset.
func (d *MemDataset) Len() int { return len(d.Blobs) }

// Blob implements Dataset.
func (d *MemDataset) Blob(i int) ([]byte, error) {
	if i < 0 || i >= len(d.Blobs) {
		return nil, fmt.Errorf("pipeline: sample %d out of range", i)
	}
	return d.Blobs[i], nil
}

// Label implements Dataset.
func (d *MemDataset) Label(i int) (*tensor.Tensor, error) {
	if i < 0 || i >= len(d.Labels) {
		return nil, fmt.Errorf("pipeline: label %d out of range", i)
	}
	return d.Labels[i], nil
}

// EncodedBytes returns the dataset's total encoded footprint.
func (d *MemDataset) EncodedBytes() int {
	n := 0
	for _, b := range d.Blobs {
		n += len(b)
	}
	return n
}

// Plugin selects where sample decode runs (§VI: "we implemented two
// variants for decoding ... one for the CPU and another for the GPU").
type Plugin int

// Plugin placements.
const (
	CPUPlugin Plugin = iota
	GPUPlugin
)

// String names the plugin placement.
func (p Plugin) String() string {
	if p == GPUPlugin {
		return "gpu"
	}
	return "cpu"
}

// Config configures a Loader.
type Config struct {
	// Format opens the dataset's blobs.
	Format codec.Format
	// Plugin places the decode stage.
	Plugin Plugin
	// Device executes GPU-plugin decodes; required iff Plugin == GPUPlugin.
	Device *gpusim.Device
	// CPUWorkers is the decode thread count for the CPU plugin (default 4).
	CPUWorkers int
	// Prefetch is the number of samples decoded ahead (default 2*Batch).
	Prefetch int
	// Batch is the per-iterator batch size (default 1).
	Batch int
	// Shuffle reshuffles sample order each epoch.
	Shuffle bool
	// Seed drives shuffling (per-epoch derived).
	Seed uint64
	// DropLast drops a trailing partial batch.
	DropLast bool
	// Resilience is the degraded-mode policy: retry budget for transient
	// errors and the per-epoch bad-sample skip quota. The zero value keeps
	// strict semantics (first bad sample fails the epoch).
	Resilience Resilience
	// Augment, when non-nil, runs on every decoded sample tensor before
	// batch assembly — the per-sample augmentation stage of the reference
	// pipelines. It executes on the prefetch workers, overlapped like
	// decode. Errors fail the sample exactly like decode errors.
	Augment func(*tensor.Tensor) (*tensor.Tensor, error)
	// Trace, when non-nil, receives one event per decoded sample (resource
	// "loader", tag "decode-cpu"/"decode-gpu"), for profiling the real
	// pipeline.
	Trace *trace.Timeline
	// Clock timestamps Trace events and observability spans. Defaults to a
	// wall clock anchored at iterator creation; supply a trace.VirtualClock
	// for reproducible traces.
	Clock trace.Clock
	// Obs, when non-nil, receives the iterator's stage spans and metrics:
	// per-stage duration histograms (pipeline.read / pipeline.decode.cpu /
	// pipeline.decode.gpu / pipeline.augment / pipeline.prefetch_wait, all
	// ".seconds"), sample accounting counters (pipeline.samples.*,
	// pipeline.retries, pipeline.batches, pipeline.errors.*) and the
	// pipeline.queue_depth gauge. Nil keeps the hot path uninstrumented at
	// the cost of one nil check per site.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.CPUWorkers <= 0 {
		c.CPUWorkers = 4
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Prefetch <= 0 {
		c.Prefetch = 2 * c.Batch
	}
	return c
}

// Batch is one assembled minibatch.
type Batch struct {
	// Data holds the decoded sample tensors, one per sample.
	Data []*tensor.Tensor
	// Labels holds the matching labels.
	Labels []*tensor.Tensor
	// Indices are the dataset indices the batch was drawn from.
	Indices []int
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return len(b.Data) }

// Loader drives decoding of a Dataset.
type Loader struct {
	ds  Dataset
	cfg Config
}

// New validates the configuration and returns a Loader.
func New(ds Dataset, cfg Config) (*Loader, error) {
	cfg = cfg.withDefaults()
	if ds == nil {
		return nil, errors.New("pipeline: nil dataset")
	}
	if cfg.Format == nil {
		return nil, errors.New("pipeline: nil format")
	}
	if cfg.Plugin == GPUPlugin && cfg.Device == nil {
		return nil, errors.New("pipeline: GPU plugin requires a device")
	}
	return &Loader{ds: ds, cfg: cfg}, nil
}

// Schedule returns the sample order for an epoch.
func (l *Loader) Schedule(epoch int) []int {
	order := make([]int, l.ds.Len())
	for i := range order {
		order[i] = i
	}
	if l.cfg.Shuffle {
		rng := xrand.New(l.cfg.Seed ^ (uint64(epoch)+1)*0x9E3779B97F4A7C15)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	return order
}

// decoded is one prefetched sample.
type decoded struct {
	index int
	data  *tensor.Tensor
	label *tensor.Tensor
	err   error
}

// Epoch returns an iterator over the epoch's batches. The iterator prefetches
// and decodes samples concurrently; call Close to release its workers early.
func (l *Loader) Epoch(epoch int) *Iterator {
	order := l.Schedule(epoch)
	clock := l.cfg.Clock
	if clock == nil {
		clock = trace.NewWallClock()
	}
	it := &Iterator{
		loader: l,
		order:  order,
		slots:  make(chan chan decoded, l.cfg.Prefetch),
		stop:   make(chan struct{}),
		clock:  clock,
		ob:     newIterObs(l.cfg.Obs, clock),
	}
	go it.produce()
	return it
}

// iterObs bundles the iterator's observability handles. The zero value (no
// registry) leaves every handle nil, so each instrumentation site costs one
// nil check.
type iterObs struct {
	tr                         *obs.Tracer
	decoded, skipped, bad      *obs.Counter
	retried, batches           *obs.Counter
	errTransient, errPermanent *obs.Counter
	queueDepth                 *obs.Gauge
}

func newIterObs(reg *obs.Registry, clock trace.Clock) iterObs {
	if reg == nil {
		return iterObs{}
	}
	return iterObs{
		tr:           obs.NewTracer(reg, clock),
		decoded:      reg.Counter("pipeline.samples.decoded"),
		skipped:      reg.Counter("pipeline.samples.skipped"),
		bad:          reg.Counter("pipeline.samples.bad"),
		retried:      reg.Counter("pipeline.retries"),
		batches:      reg.Counter("pipeline.batches"),
		errTransient: reg.Counter("pipeline.errors.transient"),
		errPermanent: reg.Counter("pipeline.errors.permanent"),
		queueDepth:   reg.Gauge("pipeline.queue_depth"),
	}
}

// noteError classifies one failed sample attempt into the error-kind
// counters. Each attempt counts once, so under a retry policy the transient
// count equals the number of retryable failures observed, reconciling
// exactly with the fault injector's log.
func (ob iterObs) noteError(err error) {
	if ob.tr == nil {
		return
	}
	if obs.ErrorKind(err) == "transient" {
		ob.errTransient.Inc()
	} else {
		ob.errPermanent.Inc()
	}
}

// Iterator yields batches of one epoch in schedule order. Next is safe for
// concurrent callers; each call returns a distinct batch.
type Iterator struct {
	loader   *Loader
	order    []int
	slots    chan chan decoded
	stop     chan struct{}
	stopOnce sync.Once
	clock    trace.Clock
	ob       iterObs

	mu  sync.Mutex // serializes batch assembly and pos
	pos int

	statsMu sync.Mutex // guards stats (written by decode goroutines and Next)
	stats   Stats
}

// produce launches bounded prefetch: each scheduled sample gets a slot
// channel (queued in order) and a goroutine decoding into it. The slots
// channel's capacity bounds outstanding decodes.
func (it *Iterator) produce() {
	defer close(it.slots)
	for _, idx := range it.order {
		slot := make(chan decoded, 1)
		select {
		case it.slots <- slot:
		case <-it.stop:
			return
		}
		go func(i int) {
			slot <- it.retryDecode(i)
		}(idx)
	}
}

// decodeOne runs one sample attempt and accounts any failure into the
// error-kind metrics.
func (it *Iterator) decodeOne(i int) decoded {
	d := it.decodeSample(i)
	if d.err != nil {
		it.ob.noteError(d.err)
	}
	return d
}

// decodeSample is one read → open → decode → augment attempt for sample i,
// with a stage span around each phase.
func (it *Iterator) decodeSample(i int) decoded {
	l := it.loader
	rsp := it.ob.tr.Start("pipeline.read")
	blob, err := l.ds.Blob(i)
	if err != nil {
		rsp.End()
		return decoded{index: i, err: err}
	}
	label, err := l.ds.Label(i)
	rsp.End()
	if err != nil {
		return decoded{index: i, err: err}
	}
	cd, err := l.cfg.Format.Open(blob)
	if err != nil {
		return decoded{index: i, err: err}
	}
	var data *tensor.Tensor
	dsp := it.ob.tr.Start("pipeline.decode." + l.cfg.Plugin.String())
	t0 := it.clock.Now()
	switch l.cfg.Plugin {
	case GPUPlugin:
		data, _, err = l.cfg.Device.Execute(cd)
	default:
		data, err = codec.DecodeParallel(cd, l.cfg.CPUWorkers)
	}
	dsp.End()
	if err != nil {
		return decoded{index: i, err: err}
	}
	if l.cfg.Trace != nil {
		l.cfg.Trace.Add("loader", "decode-"+l.cfg.Plugin.String(), t0, it.clock.Now())
	}
	if l.cfg.Augment != nil {
		asp := it.ob.tr.Start("pipeline.augment")
		data, err = l.cfg.Augment(data)
		asp.End()
		if err != nil {
			return decoded{index: i, err: err}
		}
	}
	return decoded{index: i, data: data, label: label}
}

// Next returns the next batch, or (nil, nil) at the end of the epoch.
//
// Sample failures surface as typed errors: with the zero Resilience policy
// the first failed sample ends the epoch with a *SampleError carrying its
// dataset index; with MaxBadSamples > 0 failed samples are skipped and
// accounted in Stats until the quota is exceeded, at which point Next
// returns an *EpochError naming every bad sample. Either way the iterator
// is closed, and Close/Drain remain safe to call afterwards.
func (it *Iterator) Next() (*Batch, error) {
	it.mu.Lock()
	defer it.mu.Unlock()
	b := &Batch{}
	pol := it.loader.cfg.Resilience
	want := it.loader.cfg.Batch
	for len(b.Data) < want {
		it.ob.queueDepth.Set(float64(len(it.slots)))
		wsp := it.ob.tr.Start("pipeline.prefetch_wait")
		slot, ok := <-it.slots
		if !ok {
			wsp.End()
			break
		}
		d := <-slot
		wsp.End()
		if d.err != nil {
			se := asSampleError(d.err, d.index)
			if it.recordBad(se, pol.MaxBadSamples) {
				continue // skipped within quota: the batch draws the next sample
			}
			it.Close()
			if pol.MaxBadSamples > 0 {
				st := it.Stats()
				return nil, &EpochError{Quota: pol.MaxBadSamples, Indices: st.BadSamples, Errors: st.Errors}
			}
			return nil, se
		}
		b.Data = append(b.Data, d.data)
		b.Labels = append(b.Labels, d.label)
		b.Indices = append(b.Indices, d.index)
		it.noteDecoded()
		it.pos++
	}
	if len(b.Data) == 0 {
		return nil, nil
	}
	if len(b.Data) < want && it.loader.cfg.DropLast {
		return nil, nil
	}
	it.ob.batches.Inc()
	return b, nil
}

// Close abandons the epoch; remaining prefetched decodes are drained.
func (it *Iterator) Close() {
	it.stopOnce.Do(func() { close(it.stop) })
	// Drain outstanding slots so decode goroutines can exit.
	go func() {
		for slot := range it.slots {
			<-slot
		}
	}()
}

// Drain runs the full epoch, discarding batches, and returns the number of
// samples decoded. Used by throughput measurements.
func (it *Iterator) Drain() (int, error) {
	n := 0
	for {
		b, err := it.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Size()
	}
}
