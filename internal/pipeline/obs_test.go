package pipeline

import (
	"sync"
	"testing"

	"scipp/internal/fault"
	"scipp/internal/obs"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// TestObsInstrumentedEpoch runs one clean epoch with a registry attached and
// checks the stage spans and sample accounting line up with the schedule.
func TestObsInstrumentedEpoch(t *testing.T) {
	const n = 6
	reg := obs.NewRegistry()
	clock := &trace.VirtualClock{}
	augmented := 0
	var mu sync.Mutex
	l, err := New(testDataset(n), Config{
		Format: countFormat{},
		Batch:  2,
		Clock:  clock,
		Obs:    reg,
		Augment: func(x *tensor.Tensor) (*tensor.Tensor, error) {
			mu.Lock()
			augmented++
			mu.Unlock()
			return x, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()
	got, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("drained %d samples, want %d", got, n)
	}
	if augmented != n {
		t.Fatalf("augment ran %d times, want %d", augmented, n)
	}

	s := reg.Snapshot()
	if v := s.Counter("pipeline.samples.decoded"); v != n {
		t.Fatalf("samples.decoded = %d, want %d", v, n)
	}
	if v := s.Counter("pipeline.batches"); v != n/2 {
		t.Fatalf("batches = %d, want %d", v, n/2)
	}
	for _, stage := range []string{"pipeline.read", "pipeline.decode.cpu", "pipeline.augment"} {
		if v := s.Counter(stage + ".spans"); v != n {
			t.Fatalf("%s.spans = %d, want %d", stage, v, n)
		}
		if hv, ok := s.Histogram(stage + ".seconds"); !ok || hv.Count != n {
			t.Fatalf("%s.seconds count = %d, want %d", stage, hv.Count, n)
		}
	}
	// One prefetch wait per consumed slot, plus at least the final wait that
	// observes the closed slot channel.
	if v := s.Counter("pipeline.prefetch_wait.spans"); v < n {
		t.Fatalf("prefetch_wait.spans = %d, want >= %d", v, n)
	}
	if gv := s.Gauge("pipeline.queue_depth"); gv.Max > float64(l.cfg.withDefaults().Prefetch) {
		t.Fatalf("queue_depth max %v exceeds prefetch bound", gv.Max)
	}
	// No faults were injected: error counters must not exist or be zero.
	if s.Counter("pipeline.errors.transient")+s.Counter("pipeline.errors.permanent") != 0 {
		t.Fatalf("error counters non-zero on a clean epoch: %s", s.Text())
	}
}

// TestObsDisabledEpochUnchanged runs the same epoch with no registry: the
// zero-value path must deliver identical batches and record nothing.
func TestObsDisabledEpochUnchanged(t *testing.T) {
	l, err := New(testDataset(5), Config{Format: countFormat{}, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()
	if got, err := it.Drain(); err != nil || got != 5 {
		t.Fatalf("drain = %d, %v; want 5, nil", got, err)
	}
}

// TestObsConcurrentNext hammers one instrumented iterator from many callers
// while the prefetch workers write the same registry. Run under -race. The
// totals must still be exact.
func TestObsConcurrentNext(t *testing.T) {
	const samples = 64
	reg := obs.NewRegistry()
	clock := &trace.VirtualClock{}
	l, err := New(testDataset(samples), Config{
		Format:   countFormat{},
		Batch:    3,
		Prefetch: 4,
		Clock:    clock,
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()

	const callers = 8
	var wg sync.WaitGroup
	var delivered sync.Map
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b, err := it.Next()
				if err != nil {
					errs <- err
					return
				}
				if b == nil {
					return
				}
				for _, i := range b.Indices {
					delivered.Store(i, true)
				}
				// Snapshots race against the prefetch writers.
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if v := s.Counter("pipeline.samples.decoded"); v != samples {
		t.Fatalf("samples.decoded = %d, want %d", v, samples)
	}
	if v := s.Counter("pipeline.read.spans"); v != samples {
		t.Fatalf("read.spans = %d, want %d", v, samples)
	}
	count := 0
	delivered.Range(func(_, _ any) bool { count++; return true })
	if count != samples {
		t.Fatalf("delivered %d distinct samples, want %d", count, samples)
	}
}

// TestObsReconciliation drives a seeded fault mix through an instrumented
// iterator on a virtual clock and requires three independent accountings to
// agree exactly: the obs registry, Iterator.Stats, and the fault injector's
// log. Transient faults recover within the retry budget, Lost samples are
// skipped under quota, and Latency stalls advance only the virtual clock.
func TestObsReconciliation(t *testing.T) {
	const (
		n          = 40
		seed       = 11
		latencySec = 0.25
	)
	clock := &trace.VirtualClock{}
	inj := fault.Wrap(testDataset(n), fault.Config{
		Seed:              seed,
		Transient:         0.15,
		Lost:              0.10,
		Latency:           0.15,
		TransientFailures: 2,
		LatencySeconds:    latencySec,
		Clock:             clock,
	})
	reg := obs.NewRegistry()
	l, err := New(inj, Config{
		Format: countFormat{},
		Batch:  4,
		Clock:  clock,
		Obs:    reg,
		Resilience: Resilience{
			MaxRetries:    2, // == TransientFailures: transients always recover
			MaxBadSamples: n, // quota never exceeded: Lost samples all skip
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	defer it.Close()
	decoded, err := it.Drain()
	if err != nil {
		t.Fatal(err)
	}

	sum := inj.Summary()
	transientEvents, transientSamples := sum.Of(fault.TransientIO)
	lostEvents, lostSamples := sum.Of(fault.Lost)
	latencyEvents, _ := sum.Of(fault.Latency)
	// The seed must actually exercise every mode under test.
	if transientEvents == 0 || lostEvents == 0 || latencyEvents == 0 {
		t.Fatalf("seed %d produced no faults of some kind: %+v", seed, sum)
	}
	// A transient sample fails exactly TransientFailures accesses before
	// recovering, so events = 2 * samples; a lost sample fails its single
	// (unretried) access, so events = samples.
	if transientEvents != 2*transientSamples {
		t.Fatalf("transient events %d != 2 * %d samples", transientEvents, transientSamples)
	}
	if lostEvents != lostSamples {
		t.Fatalf("lost events %d != %d samples", lostEvents, lostSamples)
	}

	st := it.Stats()
	s := reg.Snapshot()
	check := func(what string, got, want int64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d, want %d\n%s", what, got, want, s.Text())
		}
	}
	// Registry vs. Stats vs. injector log, all exact.
	check("drained", int64(decoded), int64(n-lostSamples))
	check("stats.Decoded", int64(st.Decoded), int64(decoded))
	check("samples.decoded", s.Counter("pipeline.samples.decoded"), int64(st.Decoded))
	check("stats.Retried", int64(st.Retried), int64(transientEvents))
	check("pipeline.retries", s.Counter("pipeline.retries"), int64(st.Retried))
	check("errors.transient", s.Counter("pipeline.errors.transient"), int64(transientEvents))
	check("stats.Skipped", int64(st.Skipped), int64(lostSamples))
	check("samples.skipped", s.Counter("pipeline.samples.skipped"), int64(st.Skipped))
	check("samples.bad", s.Counter("pipeline.samples.bad"), int64(len(st.BadSamples)))
	check("errors.permanent", s.Counter("pipeline.errors.permanent"), int64(lostEvents))
	check("batches", s.Counter("pipeline.batches"), int64((decoded+3)/4))
	// Latency stalls are the only thing that advances the virtual clock
	// (backoff is zero), so total virtual time is exact.
	if got, want := clock.Now(), float64(latencyEvents)*latencySec; got != want {
		t.Errorf("virtual clock = %v, want %v (%d latency stalls)", got, want, latencyEvents)
	}
}
