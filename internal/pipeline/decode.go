package pipeline

import (
	"scipp/internal/codec"
	"scipp/internal/gpusim"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// decodedSample is a decoded sample tensor with its label: the payload of
// the augment and batch stages.
type decodedSample struct {
	data  *tensor.Tensor
	label *tensor.Tensor
}

// DecodeStage is the decode-plugin stage of the DAG — the paper's §VI
// decode placement choice. The CPU placement decodes chunks on a thread
// pool (cpuWorkers-wide, intra-sample); the GPU placement submits the
// sample's chunk workload to the simulated device. Open runs outside the
// decode span, exactly as the monolithic loader had it.
type DecodeStage struct {
	format     codec.Format
	plugin     Plugin
	device     *gpusim.Device
	cpuWorkers int
	clock      trace.Clock
	timeline   *trace.Timeline
	ob         iterObs
}

// Name implements Stage.
func (s *DecodeStage) Name() string { return "decode." + s.plugin.String() }

// Process implements Stage[rawSample, decodedSample].
func (s *DecodeStage) Process(index int, in rawSample) (decodedSample, error) {
	cd, err := s.format.Open(in.blob)
	if err != nil {
		return decodedSample{}, err
	}
	sp := s.ob.tr.Start("pipeline." + s.Name())
	t0 := s.clock.Now()
	var data *tensor.Tensor
	switch s.plugin {
	case GPUPlugin:
		data, _, err = s.device.Execute(cd)
	default:
		data, err = codec.DecodeParallel(cd, s.cpuWorkers)
	}
	sp.End()
	if err != nil {
		return decodedSample{}, err
	}
	if s.timeline != nil {
		s.timeline.Add("loader", "decode-"+s.plugin.String(), t0, s.clock.Now())
	}
	return decodedSample{data: data, label: in.label}, nil
}
