package pipeline

import (
	"scipp/internal/codec"
	"scipp/internal/gpusim"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// decodedSample is a decoded sample tensor with its label: the payload of
// the augment and batch stages.
type decodedSample struct {
	data  *tensor.Tensor
	label *tensor.Tensor
}

// DecodeStage is the decode-plugin stage of the DAG — the paper's §VI
// decode placement choice. The CPU placement decodes chunks on a thread
// pool (cpuWorkers-wide, intra-sample); the GPU placement submits the
// sample's chunk workload to the simulated device. Open runs outside the
// decode span, exactly as the monolithic loader had it.
//
// The stage decodes into tensors drawn from the loader's SlabPool and hands
// them downstream inside the decodedSample (ownership travels with the
// sample until Batch.Release recycles it); decoder scratch goes back to the
// format through codec.Recycle as soon as the decode returns.
type DecodeStage struct {
	format     codec.Format
	plugin     Plugin
	device     *gpusim.Device
	cpuWorkers int
	pool       *SlabPool
	clock      trace.Clock
	timeline   *trace.Timeline
	tag        string // timeline tag, "decode-"+plugin, precomputed
	ob         iterObs
}

// Name implements Stage.
func (s *DecodeStage) Name() string { return "decode." + s.plugin.String() }

// Process implements Stage[rawSample, decodedSample].
//
//scipp:hotpath
func (s *DecodeStage) Process(index int, in rawSample) (decodedSample, error) {
	cd, err := s.format.Open(in.blob)
	if err != nil {
		return decodedSample{}, err
	}
	dst := s.pool.GetTensor(cd.OutputDType(), cd.OutputShape())
	sp := s.ob.decode.Start()
	t0 := s.clock.Now()
	switch s.plugin {
	case GPUPlugin:
		_, err = s.device.ExecuteInto(cd, dst)
	default:
		err = codec.DecodeParallelInto(cd, dst, s.cpuWorkers)
	}
	sp.End()
	codec.Recycle(cd)
	if err != nil {
		s.pool.PutTensor(dst)
		return decodedSample{}, err
	}
	if s.timeline != nil {
		s.timeline.Add("loader", s.tag, t0, s.clock.Now())
	}
	return decodedSample{data: dst, label: in.label}, nil
}
