package pipeline

import (
	"reflect"
	"testing"

	"scipp/internal/fault"
)

// chaosRun is everything one seeded chaos run observes: delivered batches,
// iterator accounting, and both injector logs. Two runs with the same seeds
// must produce identical chaosRuns, byte for byte.
type chaosRun struct {
	Indices  []int
	Values   []float32
	Stats    []Stats
	StageLog []fault.Injection
	CacheLog []fault.Injection
}

// runChaos executes epochs of a fully-faulted cached loader: stage panics,
// stage stalls, and cache bit rot, all from fixed seeds.
func runChaos(t *testing.T, n, epochs int) chaosRun {
	t.Helper()
	in := fault.WrapStage(testDataset(n), fault.StageFaultConfig{Seed: 5, Panic: 0.1, Stall: 0.05})
	defer in.Release()
	ci := fault.NewCacheInjector(fault.CacheFaultConfig{Seed: 6, BitRot: 0.1})
	l, err := New(in, Config{
		Format: countFormat{}, Batch: 4,
		Cache:      CacheConfig{HostMemBytes: 1 << 20},
		Resilience: Resilience{MaxRetries: 2},
		Supervise:  SupervisorConfig{MaxRestarts: 64, StallDeadline: 0.03, StallRestart: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Cache().SetTamper(ci)
	var run chaosRun
	for e := 0; e < epochs; e++ {
		it := l.Epoch(e)
		i, v := epochValues(t, it)
		run.Indices = append(run.Indices, i...)
		run.Values = append(run.Values, v...)
		run.Stats = append(run.Stats, it.Stats())
	}
	run.StageLog = in.Log()
	run.CacheLog = ci.Log()
	return run
}

// TestChaosDeterministicAcrossRuns pins the reproducibility contract of the
// whole self-healing stack: two runs with the same fault seeds produce
// byte-identical injector logs, per-epoch Stats, and batch contents — panic
// recovery, stall abandonment, and quarantine re-decodes included.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	a := runChaos(t, 48, 3)
	b := runChaos(t, 48, 3)
	if !reflect.DeepEqual(a.StageLog, b.StageLog) {
		t.Fatalf("stage injector logs diverged:\n%v\n%v", a.StageLog, b.StageLog)
	}
	if !reflect.DeepEqual(a.CacheLog, b.CacheLog) {
		t.Fatalf("cache injector logs diverged:\n%v\n%v", a.CacheLog, b.CacheLog)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("iterator stats diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Indices, b.Indices) || !reflect.DeepEqual(a.Values, b.Values) {
		t.Fatal("batch contents diverged between same-seed runs")
	}
}

// TestChaosMatchesCleanRun pins recovery transparency: the fully-faulted run
// delivers batches bit-identical to a fault-free run of the same loader
// configuration.
func TestChaosMatchesCleanRun(t *testing.T) {
	const n, epochs = 48, 3
	l, err := New(testDataset(n), Config{
		Format: countFormat{}, Batch: 4,
		Cache: CacheConfig{HostMemBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantIdx []int
	var wantVal []float32
	for e := 0; e < epochs; e++ {
		i, v := epochValues(t, l.Epoch(e))
		wantIdx, wantVal = append(wantIdx, i...), append(wantVal, v...)
	}
	got := runChaos(t, n, epochs)
	if !reflect.DeepEqual(got.Indices, wantIdx) || !reflect.DeepEqual(got.Values, wantVal) {
		t.Fatal("chaos run diverged from fault-free run")
	}
	if len(got.StageLog) == 0 || len(got.CacheLog) == 0 {
		t.Fatalf("chaos run injected nothing (stage %d, cache %d events)", len(got.StageLog), len(got.CacheLog))
	}
}
