package pipeline

import "scipp/internal/tensor"

// Batch is one assembled minibatch.
type Batch struct {
	// Data holds the decoded sample tensors, one per sample.
	Data []*tensor.Tensor
	// Labels holds the matching labels.
	Labels []*tensor.Tensor
	// Indices are the dataset indices the batch was drawn from.
	Indices []int

	// pool, when non-nil, is the SlabPool the batch and its sample tensors
	// were drawn from; released marks a batch already handed back.
	pool     *SlabPool
	released bool
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return len(b.Data) }

// Release hands the batch — its struct, its slices, and its sample tensors
// (never its labels, which the Dataset owns) — back to the loader's slab
// pool for reuse. Call it once the batch's tensors are no longer referenced;
// a consumer that retains tensors simply skips Release and the pool refills
// from the heap. Idempotent, nil-safe, and a no-op for batches that were not
// drawn from a pool.
func (b *Batch) Release() {
	if b == nil || b.pool == nil || b.released {
		return
	}
	b.released = true
	for _, t := range b.Data {
		b.pool.PutTensor(t)
	}
	b.pool.putBatch(b)
}

// BatchStage is the sink of the DAG: it restores schedule order over the
// out-of-order stage completions and feeds Iterator.Next, which assembles
// minibatches and applies the resilience policy. Stages ahead of it run
// samples concurrently, so completions arrive in any order; the reorder
// buffer (bounded by the in-flight cap, so at most Prefetch entries) holds
// each until its schedule position is next. Terminal failures occupy their
// schedule position like successes — Next sees errors exactly where the
// monolithic loader surfaced them.
type BatchStage struct {
	// total is the epoch's scheduled sample count.
	total int
	// ordered delivers outcomes to Next in schedule order.
	ordered chan outcome
	// done closes once every scheduled sample reached a terminal outcome;
	// stage workers and the retry judge exit on it.
	done chan struct{}
}

func newBatchStage(total, depth int) *BatchStage {
	return &BatchStage{
		total:   total,
		ordered: make(chan outcome, depth),
		done:    make(chan struct{}),
	}
}

// run consumes terminal outcomes until every scheduled sample is accounted,
// releasing them to the ordered channel in schedule order. It owns both
// ordered (closed on exit, so Next observes end-of-epoch) and done (closed
// only on full accounting, so an abort never signals completion). Progress
// is counted on released schedule positions, not received messages, so a
// duplicate outcome for an already-released seq — impossible while the
// supervisor's exactly-one-emit-per-seq invariant holds, but the invariant
// the sink must not silently depend on — is dropped instead of stealing a
// later sample's accounting slot and wedging the epoch one short.
func (bs *BatchStage) run(completions <-chan outcome, abort <-chan struct{}) {
	defer close(bs.ordered)
	pending := make(map[int]outcome, 8)
	next := 0
	for next < bs.total {
		var o outcome
		select {
		case o = <-completions:
		case <-abort:
			return
		}
		if o.seq < next {
			continue // duplicate of a released position: drop, don't miscount
		}
		pending[o.seq] = o
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if !sendItem(bs.ordered, r, abort) {
				return
			}
		}
	}
	close(bs.done)
}
