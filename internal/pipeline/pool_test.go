package pipeline

import (
	"testing"

	"scipp/internal/tensor"
)

func TestSlabPoolTensorReuse(t *testing.T) {
	p := NewSlabPool()
	a := p.GetTensor(tensor.F32, tensor.Shape{2, 3})
	if got := p.Stats(); got.Gets != 1 || got.Hits != 0 {
		t.Fatalf("fresh get stats = %+v", got)
	}
	p.PutTensor(a)
	b := p.GetTensor(tensor.F32, tensor.Shape{2, 3})
	if b != a {
		t.Error("same-class get did not reuse the released tensor")
	}
	if got := p.Stats(); got.Hits != 1 {
		t.Errorf("hits = %d, want 1", got.Hits)
	}
}

func TestSlabPoolReshapesSameClass(t *testing.T) {
	p := NewSlabPool()
	a := p.GetTensor(tensor.F32, tensor.Shape{2, 3})
	p.PutTensor(a)
	// Same element count, different shape: the slab is reused with its
	// shape header patched.
	b := p.GetTensor(tensor.F32, tensor.Shape{6})
	if b != a {
		t.Fatal("equal-elems get did not reuse the released tensor")
	}
	if !b.Shape.Equal(tensor.Shape{6}) {
		t.Errorf("reused tensor shape = %v, want [6]", b.Shape)
	}
	if len(b.F32s) != 6 {
		t.Errorf("reused tensor has %d elems, want 6", len(b.F32s))
	}
}

func TestSlabPoolClassesDoNotMix(t *testing.T) {
	p := NewSlabPool()
	a := p.GetTensor(tensor.F32, tensor.Shape{4})
	p.PutTensor(a)
	// Distinct elem counts within one capacity class share a freelist: the
	// ragged refactor's round-up classes keep pooling effective when nearly
	// every sample has its own length.
	b := p.GetTensor(tensor.F32, tensor.Shape{8})
	if b != a {
		t.Error("same-class get with a different elem count did not reuse the slab")
	}
	if len(b.F32s) != 8 || cap(b.F32s) < 8 {
		t.Errorf("reused slab len/cap = %d/%d, want 8/>=8", len(b.F32s), cap(b.F32s))
	}
	p.PutTensor(b)
	// Distinct capacity classes never mix, and neither do dtypes.
	if c := p.GetTensor(tensor.F32, tensor.Shape{4096}); c == a {
		t.Error("different capacity class reused the same slab")
	}
	if c := p.GetTensor(tensor.F16, tensor.Shape{4}); c == a {
		t.Error("different dtype reused the same slab")
	}
}

// TestSlabPoolCapacityClasses pins the class arithmetic: round-up targets,
// the floor on re-entry, and the identity between them for pool-allocated
// capacities.
func TestSlabPoolCapacityClasses(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 80}, {80, 80}, {81, 96},
		{127, 128}, {128, 128}, {129, 160}, {1000, 1024}, {1025, 1280},
	}
	for _, c := range cases {
		if got := classElems(c.n); got != c.class {
			t.Errorf("classElems(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	for _, c := range cases {
		if got := capClass(c.class); got != c.class {
			t.Errorf("capClass(%d) = %d, want identity for class values", c.class, got)
		}
	}
	if got := capClass(63); got != 0 {
		t.Errorf("capClass(63) = %d, want 0 (below the smallest class)", got)
	}
	if got := capClass(100); got != 96 {
		t.Errorf("capClass(100) = %d, want 96", got)
	}
}

// TestSlabPoolRaggedReuseKeepsCapacity is the satellite-2 invariant: across
// many distinct ragged element counts, every tensor GetTensor hands out —
// fresh or reused, before or after class rounding — has cap(Data) >= the
// requested elems, and the ragged stream still hits the freelist.
func TestSlabPoolRaggedReuseKeepsCapacity(t *testing.T) {
	p := NewSlabPool()
	for i := 0; i < 400; i++ {
		elems := 1 + (i*37)%997 // many distinct lengths across a few classes
		got := p.GetTensor(tensor.F32, tensor.Shape{3, elems})
		want := 3 * elems
		if len(got.F32s) != want {
			t.Fatalf("elems=%d: len = %d, want %d", elems, len(got.F32s), want)
		}
		if cap(got.F32s) < want {
			t.Fatalf("elems=%d: cap = %d < requested %d after class rounding", elems, cap(got.F32s), want)
		}
		if cap(got.F32s) < classElems(want) {
			t.Fatalf("elems=%d: cap = %d below class bound %d", elems, cap(got.F32s), classElems(want))
		}
		if !got.Shape.Equal(tensor.Shape{3, elems}) {
			t.Fatalf("elems=%d: shape = %v", elems, got.Shape)
		}
		p.PutTensor(got)
	}
	st := p.Stats()
	if st.Hits == 0 {
		t.Error("ragged get/put stream never hit the freelist: classes are not pooling")
	}
	// The freelist count stays far below the number of distinct lengths:
	// classes, not exact sizes, key the pool.
	if st.FreeTensors > 40 {
		t.Errorf("%d free tensors pooled: ragged lengths are fragmenting the pool", st.FreeTensors)
	}
}

// TestSlabPoolForeignTensors pins the re-entry rules for tensors the pool
// did not allocate: an exact-size foreign tensor files under the class its
// capacity can actually serve (never one that could over-reslice it), and
// tensors below the smallest class are not pooled at all.
func TestSlabPoolForeignTensors(t *testing.T) {
	p := NewSlabPool()
	foreign := tensor.New(tensor.F32, 100) // cap 100: serves class 96, not 112
	p.PutTensor(foreign)
	got := p.GetTensor(tensor.F32, tensor.Shape{90}) // class 96
	if got != foreign {
		t.Error("foreign tensor was not filed under its floored capacity class")
	}
	if cap(got.F32s) < 90 {
		t.Errorf("reused foreign cap = %d < 90", cap(got.F32s))
	}

	p2 := NewSlabPool()
	p2.PutTensor(tensor.New(tensor.F32, 8)) // below minClassElems: dropped
	if st := p2.Stats(); st.FreeTensors != 0 {
		t.Errorf("sub-class foreign tensor was pooled: %+v", st)
	}
}

func TestSlabPoolPutNil(t *testing.T) {
	p := NewSlabPool()
	p.PutTensor(nil) // must not panic
	if got := p.Stats(); got.FreeTensors != 0 {
		t.Errorf("nil put changed occupancy: %+v", got)
	}
}

func TestBatchReleaseRecyclesTensorsNotLabels(t *testing.T) {
	p := NewSlabPool()
	data := p.GetTensor(tensor.F32, tensor.Shape{4})
	label := tensor.New(tensor.F32, 1)
	b := p.getBatch(1)
	b.Data = append(b.Data, data)
	b.Labels = append(b.Labels, label)
	b.Indices = append(b.Indices, 7)
	b.Release()

	if got := p.Stats(); got.FreeTensors != 1 || got.FreeBatches != 1 {
		t.Fatalf("after release: %+v, want 1 free tensor and 1 free batch", got)
	}
	// The data tensor is recycled; the label must never be.
	if r := p.GetTensor(tensor.F32, tensor.Shape{4}); r != data {
		t.Error("released data tensor was not recycled")
	}
	if r := p.GetTensor(tensor.F32, tensor.Shape{1}); r == label {
		t.Error("label tensor leaked into the pool")
	}

	b2 := p.getBatch(1)
	if b2 != b {
		t.Error("released batch struct was not recycled")
	}
	if len(b2.Data) != 0 || len(b2.Labels) != 0 || len(b2.Indices) != 0 {
		t.Errorf("recycled batch not reset: %d/%d/%d entries",
			len(b2.Data), len(b2.Labels), len(b2.Indices))
	}
}

func TestBatchReleaseIdempotentAndNilSafe(t *testing.T) {
	var nilBatch *Batch
	nilBatch.Release() // must not panic

	(&Batch{Data: []*tensor.Tensor{tensor.New(tensor.F32, 1)}}).Release() // poolless: no-op

	p := NewSlabPool()
	b := p.getBatch(1)
	b.Data = append(b.Data, p.GetTensor(tensor.F32, tensor.Shape{2}))
	b.Release()
	b.Release() // second release must not double-free
	if got := p.Stats(); got.FreeTensors != 1 || got.FreeBatches != 1 {
		t.Errorf("double release changed occupancy: %+v", got)
	}
}

// TestEpochReusesSlabsAcrossEpochs drives the real DAG for two epochs with
// the consumer releasing every batch, and checks both that the pool serves
// later decodes from its freelist and that recycled tensors still carry the
// right decoded contents.
func TestEpochReusesSlabsAcrossEpochs(t *testing.T) {
	ds := testDataset(12)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		it := l.Epoch(epoch)
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			for k, idx := range b.Indices {
				if b.Data[k].F32s[0] != float32(idx) {
					t.Fatalf("epoch %d sample %d decoded wrong content", epoch, idx)
				}
			}
			b.Release()
		}
	}
	st := l.Pool().Stats()
	if st.Gets != 24 {
		t.Errorf("pool gets = %d, want 24", st.Gets)
	}
	if st.Hits == 0 {
		t.Error("two released epochs never hit the pool freelist")
	}
}

// TestUnreleasedBatchesStayValid pins the opt-in contract: a consumer that
// never calls Release keeps every tensor it was handed, bit-exact, even
// after the loader has produced many more batches.
func TestUnreleasedBatchesStayValid(t *testing.T) {
	ds := testDataset(20)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	var kept []*Batch
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		kept = append(kept, b)
	}
	if len(kept) != 10 {
		t.Fatalf("got %d batches, want 10", len(kept))
	}
	for _, b := range kept {
		for k, idx := range b.Indices {
			if b.Data[k].F32s[0] != float32(idx) {
				t.Fatalf("retained sample %d was clobbered", idx)
			}
		}
	}
}
