package pipeline

import (
	"testing"

	"scipp/internal/tensor"
)

func TestSlabPoolTensorReuse(t *testing.T) {
	p := NewSlabPool()
	a := p.GetTensor(tensor.F32, tensor.Shape{2, 3})
	if got := p.Stats(); got.Gets != 1 || got.Hits != 0 {
		t.Fatalf("fresh get stats = %+v", got)
	}
	p.PutTensor(a)
	b := p.GetTensor(tensor.F32, tensor.Shape{2, 3})
	if b != a {
		t.Error("same-class get did not reuse the released tensor")
	}
	if got := p.Stats(); got.Hits != 1 {
		t.Errorf("hits = %d, want 1", got.Hits)
	}
}

func TestSlabPoolReshapesSameClass(t *testing.T) {
	p := NewSlabPool()
	a := p.GetTensor(tensor.F32, tensor.Shape{2, 3})
	p.PutTensor(a)
	// Same element count, different shape: the slab is reused with its
	// shape header patched.
	b := p.GetTensor(tensor.F32, tensor.Shape{6})
	if b != a {
		t.Fatal("equal-elems get did not reuse the released tensor")
	}
	if !b.Shape.Equal(tensor.Shape{6}) {
		t.Errorf("reused tensor shape = %v, want [6]", b.Shape)
	}
	if len(b.F32s) != 6 {
		t.Errorf("reused tensor has %d elems, want 6", len(b.F32s))
	}
}

func TestSlabPoolClassesDoNotMix(t *testing.T) {
	p := NewSlabPool()
	a := p.GetTensor(tensor.F32, tensor.Shape{4})
	p.PutTensor(a)
	if b := p.GetTensor(tensor.F32, tensor.Shape{8}); b == a {
		t.Error("different elem count reused the same slab")
	}
	if c := p.GetTensor(tensor.F16, tensor.Shape{4}); c == a {
		t.Error("different dtype reused the same slab")
	}
}

func TestSlabPoolPutNil(t *testing.T) {
	p := NewSlabPool()
	p.PutTensor(nil) // must not panic
	if got := p.Stats(); got.FreeTensors != 0 {
		t.Errorf("nil put changed occupancy: %+v", got)
	}
}

func TestBatchReleaseRecyclesTensorsNotLabels(t *testing.T) {
	p := NewSlabPool()
	data := p.GetTensor(tensor.F32, tensor.Shape{4})
	label := tensor.New(tensor.F32, 1)
	b := p.getBatch(1)
	b.Data = append(b.Data, data)
	b.Labels = append(b.Labels, label)
	b.Indices = append(b.Indices, 7)
	b.Release()

	if got := p.Stats(); got.FreeTensors != 1 || got.FreeBatches != 1 {
		t.Fatalf("after release: %+v, want 1 free tensor and 1 free batch", got)
	}
	// The data tensor is recycled; the label must never be.
	if r := p.GetTensor(tensor.F32, tensor.Shape{4}); r != data {
		t.Error("released data tensor was not recycled")
	}
	if r := p.GetTensor(tensor.F32, tensor.Shape{1}); r == label {
		t.Error("label tensor leaked into the pool")
	}

	b2 := p.getBatch(1)
	if b2 != b {
		t.Error("released batch struct was not recycled")
	}
	if len(b2.Data) != 0 || len(b2.Labels) != 0 || len(b2.Indices) != 0 {
		t.Errorf("recycled batch not reset: %d/%d/%d entries",
			len(b2.Data), len(b2.Labels), len(b2.Indices))
	}
}

func TestBatchReleaseIdempotentAndNilSafe(t *testing.T) {
	var nilBatch *Batch
	nilBatch.Release() // must not panic

	(&Batch{Data: []*tensor.Tensor{tensor.New(tensor.F32, 1)}}).Release() // poolless: no-op

	p := NewSlabPool()
	b := p.getBatch(1)
	b.Data = append(b.Data, p.GetTensor(tensor.F32, tensor.Shape{2}))
	b.Release()
	b.Release() // second release must not double-free
	if got := p.Stats(); got.FreeTensors != 1 || got.FreeBatches != 1 {
		t.Errorf("double release changed occupancy: %+v", got)
	}
}

// TestEpochReusesSlabsAcrossEpochs drives the real DAG for two epochs with
// the consumer releasing every batch, and checks both that the pool serves
// later decodes from its freelist and that recycled tensors still carry the
// right decoded contents.
func TestEpochReusesSlabsAcrossEpochs(t *testing.T) {
	ds := testDataset(12)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		it := l.Epoch(epoch)
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			for k, idx := range b.Indices {
				if b.Data[k].F32s[0] != float32(idx) {
					t.Fatalf("epoch %d sample %d decoded wrong content", epoch, idx)
				}
			}
			b.Release()
		}
	}
	st := l.Pool().Stats()
	if st.Gets != 24 {
		t.Errorf("pool gets = %d, want 24", st.Gets)
	}
	if st.Hits == 0 {
		t.Error("two released epochs never hit the pool freelist")
	}
}

// TestUnreleasedBatchesStayValid pins the opt-in contract: a consumer that
// never calls Release keeps every tensor it was handed, bit-exact, even
// after the loader has produced many more batches.
func TestUnreleasedBatchesStayValid(t *testing.T) {
	ds := testDataset(20)
	l, err := New(ds, Config{Format: countFormat{}, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := l.Epoch(0)
	var kept []*Batch
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		kept = append(kept, b)
	}
	if len(kept) != 10 {
		t.Fatalf("got %d batches, want 10", len(kept))
	}
	for _, b := range kept {
		for k, idx := range b.Indices {
			if b.Data[k].F32s[0] != float32(idx) {
				t.Fatalf("retained sample %d was clobbered", idx)
			}
		}
	}
}
