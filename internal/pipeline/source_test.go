package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

func TestSequentialSource(t *testing.T) {
	s := &SequentialSource{N: 5}
	if s.Len() != 5 {
		t.Error("Len")
	}
	for _, epoch := range []int{0, 3} {
		if fmt.Sprint(s.Order(epoch)) != "[0 1 2 3 4]" {
			t.Errorf("epoch %d order %v", epoch, s.Order(epoch))
		}
	}
}

// TestShuffledSourceMatchesLoaderSchedule pins the compatibility contract:
// the Source abstraction must reproduce the loader's historical per-epoch
// shuffle exactly, or resumed runs would replay a different sample order.
func TestShuffledSourceMatchesLoaderSchedule(t *testing.T) {
	l, err := New(testDataset(32), Config{Format: countFormat{}, Shuffle: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	src := &ShuffledSource{N: 32, Seed: 7}
	for epoch := 0; epoch < 4; epoch++ {
		if fmt.Sprint(src.Order(epoch)) != fmt.Sprint(l.Schedule(epoch)) {
			t.Fatalf("epoch %d: ShuffledSource diverges from Loader.Schedule", epoch)
		}
	}
}

func TestShardedSourcePartitionsEpoch(t *testing.T) {
	const n, world = 23, 4
	for _, shuffle := range []bool{false, true} {
		seen := make(map[int]int)
		total := 0
		for rank := 0; rank < world; rank++ {
			s := &ShardedSource{N: n, Seed: 11, Shuffle: shuffle, Rank: rank, World: world}
			order := s.Order(3)
			if len(order) != s.Len() {
				t.Fatalf("rank %d: Order has %d indices, Len says %d", rank, len(order), s.Len())
			}
			total += len(order)
			for _, idx := range order {
				seen[idx]++
			}
		}
		if total != n {
			t.Fatalf("shuffle=%v: shards cover %d samples, want %d", shuffle, total, n)
		}
		for idx, count := range seen {
			if count != 1 {
				t.Fatalf("shuffle=%v: index %d appears %d times across shards", shuffle, idx, count)
			}
		}
	}
}

// TestShardedSourceStridesSharedShuffle: every rank derives the same global
// permutation and takes its strided positions — interleaving the shards
// reconstructs exactly the ShuffledSource order (the DistributedSampler
// contract).
func TestShardedSourceStridesSharedShuffle(t *testing.T) {
	const n, world, epoch = 20, 3, 2
	global := (&ShuffledSource{N: n, Seed: 5}).Order(epoch)
	shards := make([][]int, world)
	for rank := 0; rank < world; rank++ {
		shards[rank] = (&ShardedSource{N: n, Seed: 5, Shuffle: true, Rank: rank, World: world}).Order(epoch)
	}
	for pos, want := range global {
		rank, k := pos%world, pos/world
		if shards[rank][k] != want {
			t.Fatalf("global position %d: rank %d shard[%d] = %d, want %d", pos, rank, k, shards[rank][k], want)
		}
	}
}

func TestShardedSourceValidate(t *testing.T) {
	for _, bad := range []*ShardedSource{
		{N: 10, World: 0},
		{N: 10, Rank: -1, World: 2},
		{N: 10, Rank: 2, World: 2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("rank %d world %d accepted", bad.Rank, bad.World)
		}
		// New must reject the geometry too, via the Validate hook.
		if _, err := New(testDataset(10), Config{Format: countFormat{}, Source: bad}); err == nil {
			t.Errorf("New accepted invalid sharded source rank %d world %d", bad.Rank, bad.World)
		}
	}
	if err := (&ShardedSource{N: 10, Rank: 1, World: 2}).Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

// TestLoaderWithShardedSources drains one loader per rank and checks the
// union of delivered samples is the whole dataset, each exactly once.
func TestLoaderWithShardedSources(t *testing.T) {
	const n, world = 17, 3
	delivered := make(map[int]int)
	for rank := 0; rank < world; rank++ {
		l, err := New(testDataset(n), Config{
			Format: countFormat{},
			Batch:  4,
			Source: &ShardedSource{N: n, Seed: 13, Shuffle: true, Rank: rank, World: world},
		})
		if err != nil {
			t.Fatal(err)
		}
		it := l.Epoch(1)
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			for k, idx := range b.Indices {
				delivered[idx]++
				if b.Data[k].F32s[0] != float32(idx) {
					t.Fatalf("rank %d delivered wrong content for sample %d", rank, idx)
				}
			}
		}
	}
	var missing []int
	for i := 0; i < n; i++ {
		if delivered[i] != 1 {
			missing = append(missing, i)
		}
	}
	sort.Ints(missing)
	if len(missing) != 0 {
		t.Errorf("samples not delivered exactly once: %v", missing)
	}
}

// TestRangeError pins the satellite contract: every Dataset in the package
// reports out-of-bounds access as a typed *RangeError via the shared check.
func TestRangeError(t *testing.T) {
	md := testDataset(3)
	fd := &FuncDataset{N: 3}
	cases := []struct {
		name string
		err  error
		kind string
		idx  int
	}{
		{"mem blob", func() error { _, err := md.Blob(7); return err }(), "sample", 7},
		{"mem label", func() error { _, err := md.Label(-2); return err }(), "label", -2},
		{"func blob", func() error { _, err := fd.Blob(3); return err }(), "sample", 3},
		{"func label", func() error { _, err := fd.Label(99); return err }(), "label", 99},
	}
	for _, tc := range cases {
		var re *RangeError
		if !errors.As(tc.err, &re) {
			t.Errorf("%s: error %v is not a *RangeError", tc.name, tc.err)
			continue
		}
		if re.Kind != tc.kind || re.Index != tc.idx || re.Len != 3 {
			t.Errorf("%s: got %+v, want kind=%s index=%d len=3", tc.name, re, tc.kind, tc.idx)
		}
		want := fmt.Sprintf("pipeline: %s %d out of range [0,3)", tc.kind, tc.idx)
		if re.Error() != want {
			t.Errorf("%s: message %q, want %q", tc.name, re.Error(), want)
		}
	}
}
