// Package tensor provides dense numeric tensors in FP32 and binary16 with
// the layout transforms the preprocessing pipeline needs.
//
// Samples flow through the system as tensors: DeepCAM samples are
// [C, H, W] FP32 channel stacks, CosmoFlow samples are [C, D, D, D] voxel
// grids. Decoders emit FP16 tensors to feed the mixed-precision training
// path; the fused decode+transpose optimization of the paper (§X) is
// implemented here as strided copy kernels.
package tensor

import (
	"fmt"

	"scipp/internal/fp16"
)

// DType identifies a tensor element type.
type DType int

const (
	// F32 is IEEE 754 binary32.
	F32 DType = iota
	// F16 is IEEE 754 binary16.
	F16
	// I16 is a signed 16-bit integer (raw CosmoFlow voxel counts).
	I16
)

// Size returns the element size in bytes. It panics on an unknown dtype
// (programmer invariant: DType values are the package's own constants).
func (d DType) Size() int {
	switch d {
	case F32:
		return 4
	case F16, I16:
		return 2
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
}

// String returns the conventional name of the dtype.
func (d DType) String() string {
	switch d {
	case F32:
		return "float32"
	case F16:
		return "float16"
	case I16:
		return "int16"
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Shape is a tensor shape, outermost dimension first.
type Shape []int

// Elems returns the total number of elements. It panics on a negative
// dimension (programmer invariant: decoders validate shapes at Open).
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			panic("tensor: negative dimension")
		}
		n *= d
	}
	return n
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// String formats the shape like [16 1152 768].
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// Tensor is a dense tensor. Exactly one of F32s, F16s, I16s is non-nil,
// matching DType.
type Tensor struct {
	DT    DType
	Shape Shape
	F32s  []float32
	F16s  []fp16.Bits
	I16s  []int16
}

// New allocates a zeroed tensor of the given dtype and shape. It panics on
// an unknown dtype or negative dimension (programmer invariant: callers on
// decode paths validate blob headers before allocating).
func New(dt DType, shape ...int) *Tensor {
	t := &Tensor{DT: dt, Shape: Shape(shape).Clone()}
	n := t.Shape.Elems()
	switch dt {
	case F32:
		t.F32s = make([]float32, n)
	case F16:
		t.F16s = make([]fp16.Bits, n)
	case I16:
		t.I16s = make([]int16, n)
	default:
		panic("tensor: unknown dtype")
	}
	return t
}

// FromF32 wraps data (not copied) as an F32 tensor of the given shape. It
// panics if the shape does not match len(data) (programmer invariant).
func FromF32(data []float32, shape ...int) *Tensor {
	s := Shape(shape)
	if s.Elems() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match %d elements", s, len(data)))
	}
	return &Tensor{DT: F32, Shape: s.Clone(), F32s: data}
}

// FromI16 wraps data (not copied) as an I16 tensor of the given shape. It
// panics if the shape does not match len(data) (programmer invariant).
func FromI16(data []int16, shape ...int) *Tensor {
	s := Shape(shape)
	if s.Elems() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match %d elements", s, len(data)))
	}
	return &Tensor{DT: I16, Shape: s.Clone(), I16s: data}
}

// FromF16 wraps data (not copied) as an F16 tensor of the given shape. It
// panics if the shape does not match len(data) (programmer invariant).
func FromF16(data []fp16.Bits, shape ...int) *Tensor {
	s := Shape(shape)
	if s.Elems() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match %d elements", s, len(data)))
	}
	return &Tensor{DT: F16, Shape: s.Clone(), F16s: data}
}

// Elems returns the element count.
func (t *Tensor) Elems() int { return t.Shape.Elems() }

// Bytes returns the payload size in bytes.
func (t *Tensor) Bytes() int { return t.Elems() * t.DT.Size() }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{DT: t.DT, Shape: t.Shape.Clone()}
	switch t.DT {
	case F32:
		c.F32s = append([]float32(nil), t.F32s...)
	case F16:
		c.F16s = append([]fp16.Bits(nil), t.F16s...)
	case I16:
		c.I16s = append([]int16(nil), t.I16s...)
	}
	return c
}

// At32 returns element i as float32, converting from the stored dtype. It
// panics on an unknown dtype (programmer invariant).
func (t *Tensor) At32(i int) float32 {
	switch t.DT {
	case F32:
		return t.F32s[i]
	case F16:
		return t.F16s[i].ToFloat32()
	case I16:
		return float32(t.I16s[i])
	}
	panic("tensor: unknown dtype")
}

// Set32 stores v at element i, converting to the stored dtype. It panics on
// an unknown dtype (programmer invariant).
func (t *Tensor) Set32(i int, v float32) {
	switch t.DT {
	case F32:
		t.F32s[i] = v
	case F16:
		t.F16s[i] = fp16.FromFloat32(v)
	case I16:
		t.I16s[i] = int16(v)
	default:
		panic("tensor: unknown dtype")
	}
}

// ToF32 returns an F32 tensor with the same contents. If t is already F32 the
// receiver itself is returned.
func (t *Tensor) ToF32() *Tensor {
	if t.DT == F32 {
		return t
	}
	out := New(F32, t.Shape...)
	switch t.DT {
	case F16:
		fp16.ToSlice(out.F32s, t.F16s)
	case I16:
		for i, v := range t.I16s {
			out.F32s[i] = float32(v)
		}
	}
	return out
}

// ToF16 returns an F16 tensor with the same contents (rounded). If t is
// already F16 the receiver itself is returned.
func (t *Tensor) ToF16() *Tensor {
	if t.DT == F16 {
		return t
	}
	out := New(F16, t.Shape...)
	switch t.DT {
	case F32:
		fp16.FromSlice(out.F16s, t.F32s)
	case I16:
		for i, v := range t.I16s {
			out.F16s[i] = fp16.FromFloat32(float32(v))
		}
	}
	return out
}

// Apply applies f elementwise in FP32 space, in place.
func (t *Tensor) Apply(f func(float32) float32) {
	switch t.DT {
	case F32:
		for i, v := range t.F32s {
			t.F32s[i] = f(v)
		}
	case F16:
		for i, v := range t.F16s {
			t.F16s[i] = fp16.FromFloat32(f(v.ToFloat32()))
		}
	case I16:
		for i, v := range t.I16s {
			t.I16s[i] = int16(f(float32(v)))
		}
	}
}

// MaxAbsDiff returns the maximum absolute elementwise difference between two
// tensors of the same shape, comparing in FP32 space. It panics on a shape
// mismatch (programmer invariant: both sides come from one round-trip).
func MaxAbsDiff(a, b *Tensor) float32 {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	var m float32
	for i, n := 0, a.Elems(); i < n; i++ {
		d := a.At32(i) - b.At32(i)
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TransposeCHWtoHWC converts a [C, H, W] FP32/FP16 tensor to [H, W, C]
// layout. The GPU decoder fuses this transform with decompression; the CPU
// baseline performs it as a separate pass (which is part of the preprocessing
// cost the paper's plugin removes). It panics unless t is rank-3
// (programmer invariant).
func TransposeCHWtoHWC(t *Tensor) *Tensor {
	if len(t.Shape) != 3 {
		panic("tensor: TransposeCHWtoHWC needs a rank-3 tensor")
	}
	c, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	out := New(t.DT, h, w, c)
	for ci := 0; ci < c; ci++ {
		for hi := 0; hi < h; hi++ {
			base := (ci*h + hi) * w
			for wi := 0; wi < w; wi++ {
				src := base + wi
				dst := (hi*w+wi)*c + ci
				switch t.DT {
				case F32:
					out.F32s[dst] = t.F32s[src]
				case F16:
					out.F16s[dst] = t.F16s[src]
				case I16:
					out.I16s[dst] = t.I16s[src]
				}
			}
		}
	}
	return out
}
