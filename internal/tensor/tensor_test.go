package tensor

import (
	"testing"
	"testing/quick"

	"scipp/internal/fp16"
)

func TestShapeElems(t *testing.T) {
	if got := (Shape{16, 1152, 768}).Elems(); got != 16*1152*768 {
		t.Errorf("Elems = %d", got)
	}
	if got := (Shape{}).Elems(); got != 1 {
		t.Errorf("scalar Elems = %d, want 1", got)
	}
	if got := (Shape{4, 0, 3}).Elems(); got != 0 {
		t.Errorf("zero-dim Elems = %d, want 0", got)
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := Shape{2, 3}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = 9
	if s[0] == 9 {
		t.Error("clone aliases original")
	}
	if s.Equal(Shape{2, 3, 1}) || s.Equal(Shape{3, 2}) {
		t.Error("Equal false positives")
	}
}

func TestNewAllocations(t *testing.T) {
	for _, dt := range []DType{F32, F16, I16} {
		x := New(dt, 2, 3)
		if x.Elems() != 6 {
			t.Fatalf("%v: Elems = %d", dt, x.Elems())
		}
		if x.Bytes() != 6*dt.Size() {
			t.Fatalf("%v: Bytes = %d", dt, x.Bytes())
		}
		for i := 0; i < 6; i++ {
			if x.At32(i) != 0 {
				t.Fatalf("%v: element %d not zero", dt, i)
			}
		}
	}
}

func TestSetAtRoundtrip(t *testing.T) {
	x := New(F32, 4)
	x.Set32(2, 3.5)
	if x.At32(2) != 3.5 {
		t.Error("F32 set/get mismatch")
	}
	y := New(F16, 4)
	y.Set32(1, 1.5)
	if y.At32(1) != 1.5 {
		t.Error("F16 set/get mismatch for exactly representable value")
	}
	z := New(I16, 4)
	z.Set32(0, 123)
	if z.At32(0) != 123 {
		t.Error("I16 set/get mismatch")
	}
}

func TestConversions(t *testing.T) {
	x := FromF32([]float32{0, 1, -2, 0.5}, 4)
	h := x.ToF16()
	if h.DT != F16 {
		t.Fatal("ToF16 dtype")
	}
	back := h.ToF32()
	for i := range x.F32s {
		if back.F32s[i] != x.F32s[i] {
			t.Errorf("idx %d: %g != %g", i, back.F32s[i], x.F32s[i])
		}
	}
	// Identity conversions return the receiver.
	if x.ToF32() != x {
		t.Error("ToF32 on F32 should return receiver")
	}
	if h.ToF16() != h {
		t.Error("ToF16 on F16 should return receiver")
	}
	i16 := FromI16([]int16{0, 7, -3}, 3)
	f := i16.ToF32()
	if f.F32s[1] != 7 || f.F32s[2] != -3 {
		t.Error("I16 -> F32 conversion wrong")
	}
}

func TestFromPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromF32 with wrong shape did not panic")
		}
	}()
	FromF32(make([]float32, 5), 2, 3)
}

func TestApply(t *testing.T) {
	x := FromF32([]float32{1, 2, 3}, 3)
	x.Apply(func(v float32) float32 { return v * 2 })
	if x.F32s[2] != 6 {
		t.Error("Apply failed on F32")
	}
	h := New(F16, 2)
	h.Set32(0, 1)
	h.Apply(func(v float32) float32 { return v + 0.5 })
	if h.At32(0) != 1.5 {
		t.Error("Apply failed on F16")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromF32([]float32{1, 2, 3}, 3)
	b := FromF32([]float32{1, 2.5, 2}, 3)
	if got := MaxAbsDiff(a, b); got != 1 {
		t.Errorf("MaxAbsDiff = %g, want 1", got)
	}
	if got := MaxAbsDiff(a, a.Clone()); got != 0 {
		t.Errorf("MaxAbsDiff with clone = %g, want 0", got)
	}
}

func TestCloneDeep(t *testing.T) {
	a := FromF32([]float32{1, 2}, 2)
	c := a.Clone()
	c.F32s[0] = 9
	if a.F32s[0] == 9 {
		t.Error("Clone shares storage")
	}
}

func TestTransposeCHWtoHWC(t *testing.T) {
	c, h, w := 2, 3, 4
	x := New(F32, c, h, w)
	for i := range x.F32s {
		x.F32s[i] = float32(i)
	}
	y := TransposeCHWtoHWC(x)
	if !y.Shape.Equal(Shape{h, w, c}) {
		t.Fatalf("transposed shape %v", y.Shape)
	}
	for ci := 0; ci < c; ci++ {
		for hi := 0; hi < h; hi++ {
			for wi := 0; wi < w; wi++ {
				src := x.F32s[(ci*h+hi)*w+wi]
				dst := y.F32s[(hi*w+wi)*c+ci]
				if src != dst {
					t.Fatalf("transpose mismatch at c=%d h=%d w=%d", ci, hi, wi)
				}
			}
		}
	}
}

func TestTransposePropertyPreservesMultiset(t *testing.T) {
	f := func(seed uint8) bool {
		c, h, w := 3, 5, 7
		x := New(F16, c, h, w)
		for i := range x.F16s {
			x.F16s[i] = fp16.Bits(uint16(i)*31 + uint16(seed))
		}
		y := TransposeCHWtoHWC(x)
		// sum of raw bits must be preserved (cheap multiset check).
		var sx, sy uint64
		for _, v := range x.F16s {
			sx += uint64(v)
		}
		for _, v := range y.F16s {
			sy += uint64(v)
		}
		return sx == sy && y.Elems() == x.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDTypeString(t *testing.T) {
	if F32.String() != "float32" || F16.String() != "float16" || I16.String() != "int16" {
		t.Error("DType String names wrong")
	}
}
