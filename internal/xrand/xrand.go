// Package xrand provides a deterministic, splittable random number generator
// and the sampling distributions the synthetic data generators need
// (normal, log-normal, truncated power-law / Zipf).
//
// Everything in the repository that involves randomness — synthetic dataset
// generation, sample shuffling, weight initialization, dropout — draws from
// this package seeded explicitly, so every experiment is reproducible
// bit-for-bit from its seed.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a splitmix64-seeded xoshiro256** generator. The zero value is not
// valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, which guarantees
// a well-distributed internal state even for small or similar seeds.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r, advancing r once. Useful to
// give each sample / worker its own stream without correlation.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }

// State returns the generator's internal state, for checkpointing a live
// stream mid-sequence.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured by State: the stream continues exactly
// where the captured generator left off. It panics on the all-zero state,
// which xoshiro256** can never reach from a valid seed and would emit zeros
// forever (programmer invariant: only feed back State output).
func (r *RNG) SetState(s [4]uint64) {
	if s == ([4]uint64{}) {
		panic("xrand: SetState with all-zero state")
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns exp(mu + sigma*N(0,1)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Zipf returns an integer in [1, n] with P(k) proportional to k^-alpha,
// using inverse-CDF sampling on a precomputed table held by the caller via
// NewZipf for efficiency; this method is the one-shot variant for small n.
func (r *RNG) Zipf(n int, alpha float64) int {
	z := NewZipf(n, alpha)
	return z.Sample(r)
}

// Zipf samples from a truncated power-law (Zipf) distribution over [1, n].
// The CosmoFlow sample value-frequency distribution is a power law (Fig 5a);
// the cosmology generator uses this to draw particle counts.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler for P(k) ∝ k^-alpha, k in [1, n]. It panics if
// n < 1 (programmer invariant, matching Intn's contract).
func NewZipf(n int, alpha float64) *Zipf {
	if n < 1 {
		panic("xrand: Zipf with n < 1")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -alpha)
		cdf[k-1] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against FP drift
	return &Zipf{cdf: cdf}
}

// Sample draws one value in [1, n].
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Perm fills dst with a uniform random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
