package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %g", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %g, want ~1", variance)
	}
}

func TestZipfPowerLaw(t *testing.T) {
	r := New(5)
	const n, alpha, draws = 50, 1.5, 200000
	z := NewZipf(n, alpha)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		k := z.Sample(r)
		if k < 1 || k > n {
			t.Fatalf("Zipf sample %d out of [1,%d]", k, n)
		}
		counts[k]++
	}
	// Frequency ratio between rank 1 and rank 2 should approximate 2^alpha.
	got := float64(counts[1]) / float64(counts[2])
	want := math.Pow(2, alpha)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("rank1/rank2 ratio %g, want ~%g", got, want)
	}
	// Monotone non-increasing counts (statistically) for low ranks.
	for k := 1; k < 5; k++ {
		if counts[k] < counts[k+1] {
			t.Errorf("power law not decreasing: count[%d]=%d < count[%d]=%d",
				k, counts[k], k+1, counts[k+1])
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := make([]int, 100)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
	// Shuffled: should not be identity.
	identity := true
	for i, v := range p {
		if i != v {
			identity = false
			break
		}
	}
	if identity {
		t.Error("Perm returned identity permutation (astronomically unlikely)")
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %g", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(500, 1.8)
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}
