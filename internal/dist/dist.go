// Package dist implements ring allreduce across in-process ranks — the role
// NCCL/Horovod play in the paper's distributed training ("NVIDIA's NCCL for
// distributed implementation"; "TensorFlow leverages the NCCL library ...
// through the Horovod library").
//
// The algorithm is the bandwidth-optimal ring: N-1 scatter-reduce steps
// followed by N-1 allgather steps, moving 2*(N-1)/N of the buffer per rank.
// Ranks are goroutines; links are channels. A cost model mirrors the data
// movement for the step-time breakdowns.
package dist

import (
	"fmt"
	"sync"
)

// Group is a fixed-size communicator. All ranks must call collective
// operations the same number of times in the same order.
type Group struct {
	n     int
	links []chan []float32 // links[r] carries messages from rank r-1 to rank r
	bar   *barrier
}

// NewGroup creates a communicator of n ranks.
func NewGroup(n int) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: invalid group size %d", n)
	}
	g := &Group{n: n, links: make([]chan []float32, n), bar: newBarrier(n)}
	for i := range g.links {
		g.links[i] = make(chan []float32, 1)
	}
	return g, nil
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.n }

// AllReduceSum sums data elementwise across ranks, in place; every rank ends
// with the identical total. Blocks until all ranks participate. data must
// have the same length on every rank. It panics if rank is outside the
// group (programmer invariant: rank assignment is the launcher's wiring).
func (g *Group) AllReduceSum(rank int, data []float32) {
	if rank < 0 || rank >= g.n {
		panic(fmt.Sprintf("dist: rank %d out of group of %d", rank, g.n))
	}
	if g.n == 1 {
		return
	}
	n := g.n
	// Segment boundaries: segment s covers [bounds[s], bounds[s+1]).
	bounds := make([]int, n+1)
	for s := 0; s <= n; s++ {
		bounds[s] = s * len(data) / n
	}
	seg := func(s int) []float32 { return data[bounds[s]:bounds[s+1]] }
	next := (rank + 1) % n

	// Scatter-reduce: after step k, rank r holds the partial sum of segment
	// (r-k) over k+1 contributions.
	for step := 0; step < n-1; step++ {
		sendSeg := (rank - step + n*n) % n
		out := append([]float32(nil), seg(sendSeg)...)
		//lint:ignore concurrency ring send is paired with the neighbor's receive in the same step; every rank sends then receives, so the ring drains and cannot deadlock
		g.links[next] <- out
		in := <-g.links[rank]
		recvSeg := (rank - step - 1 + n*n) % n
		dst := seg(recvSeg)
		for i, v := range in {
			dst[i] += v
		}
	}
	// Allgather: circulate the completed segments.
	for step := 0; step < n-1; step++ {
		sendSeg := (rank - step + 1 + n*n) % n
		out := append([]float32(nil), seg(sendSeg)...)
		//lint:ignore concurrency allgather send mirrors the scatter-reduce pairing; buffered links of capacity 1 absorb the send before the matching receive
		g.links[next] <- out
		in := <-g.links[rank]
		recvSeg := (rank - step + n*n) % n
		copy(seg(recvSeg), in)
	}
}

// AllReduceMean is AllReduceSum followed by division by the group size.
func (g *Group) AllReduceMean(rank int, data []float32) {
	g.AllReduceSum(rank, data)
	inv := 1 / float32(g.n)
	for i := range data {
		data[i] *= inv
	}
}

// Barrier blocks until every rank reaches it.
func (g *Group) Barrier() { g.bar.wait() }

type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// RingTime models the wall time of a ring allreduce of `bytes` gradient
// bytes across n ranks over links of linkGBs, with perStepLatency seconds of
// software/launch latency per ring step. This is the model-synchronization
// stage of Figs 9/12.
func RingTime(bytes int, n int, linkGBs float64, perStepLatency float64) float64 {
	if n <= 1 || bytes == 0 {
		return 0
	}
	moved := 2 * float64(n-1) / float64(n) * float64(bytes)
	return moved/(linkGBs*1e9) + float64(2*(n-1))*perStepLatency
}
