// Package dist implements ring allreduce across in-process ranks — the role
// NCCL/Horovod play in the paper's distributed training ("NVIDIA's NCCL for
// distributed implementation"; "TensorFlow leverages the NCCL library ...
// through the Horovod library").
//
// The algorithm is the bandwidth-optimal ring: N-1 scatter-reduce steps
// followed by N-1 allgather steps, moving 2*(N-1)/N of the buffer per rank.
// Ranks are goroutines; links are channels. A cost model mirrors the data
// movement for the step-time breakdowns.
//
// The communicator is elastic, in the style of Horovod elastic / NCCL
// collective timeouts: every collective opens with a rendezvous carrying a
// deadline on the group's trace.Clock. A rank that has not arrived when the
// deadline fires is declared failed and evicted; the survivors rebuild a
// smaller ring deterministically (live ranks in id order) under a bumped
// generation number and each gets a typed *RankError so the caller can re-run
// the interrupted step. Ranks may also announce their own departure with
// Leave (fail-stop). The fault model is fail-stop at collective boundaries: a
// rank fails instead of arriving at a rendezvous, never in the middle of a
// data exchange it already joined.
package dist

import (
	"fmt"
	"sort"
	"sync"

	"scipp/internal/obs"
	"scipp/internal/trace"
)

// Config configures an elastic communicator.
type Config struct {
	// Ranks is the initial group size; required, > 0.
	Ranks int
	// Clock supplies collective timestamps (straggler EWMAs, eviction
	// times). If it also implements trace.Alarm and Timeout > 0, rendezvous
	// deadlines are enforced on it. Nil disables both.
	Clock trace.Clock
	// Timeout is the rendezvous deadline in clock seconds: once the first
	// rank arrives at a collective, every other live rank must arrive within
	// Timeout or be evicted. Zero disables deadlines.
	Timeout float64
	// SlowFactor flags rank r a straggler when its step-time EWMA exceeds
	// SlowFactor times the fastest live rank's EWMA. Zero disables straggler
	// detection.
	SlowFactor float64
	// EWMAAlpha is the smoothing factor for per-rank step times; defaults
	// to 0.4 when zero.
	EWMAAlpha float64
	// Obs receives dist.* gauges and counters; nil disables metrics.
	Obs *obs.Registry
	// Down lists ranks that start already evicted — a resumed run excludes
	// the ranks lost before its checkpoint.
	Down []int
}

// Eviction records one rank's removal from the group.
type Eviction struct {
	Rank   int     // evicted rank id
	Gen    int     // generation that ended with this eviction
	Reason string  // "timeout", "crash", ...
	Time   float64 // clock time of the eviction
}

// RankError reports that the ring was rebuilt — or, when Self is true, that
// the calling rank itself has been evicted. Surviving callers should re-run
// the interrupted step against the new, smaller ring.
type RankError struct {
	Evicted []int  // ranks removed since the caller last participated
	Gen     int    // generation now in effect
	Reason  string // reason of the (latest) eviction
	Self    bool   // the calling rank is among the evicted
}

// Error implements error.
func (e *RankError) Error() string {
	if e.Self {
		return fmt.Sprintf("dist: rank %v evicted (%s), now generation %d", e.Evicted, e.Reason, e.Gen)
	}
	return fmt.Sprintf("dist: ranks %v evicted (%s), ring rebuilt at generation %d", e.Evicted, e.Reason, e.Gen)
}

// MismatchError reports ranks joining one collective with incompatible
// arguments — different operations or different buffer lengths. It is a
// programming error in the caller, not a rank failure: nobody is evicted.
type MismatchError struct {
	Op     string // operation of the offending call
	WantOp string // operation the rendezvous was opened with
	Rank   int    // offending rank
	Got    int    // its buffer length
	Want   int    // buffer length the rendezvous was opened with
}

// Error implements error.
func (e *MismatchError) Error() string {
	if e.Op != e.WantOp {
		return fmt.Sprintf("dist: rank %d joined %s while group runs %s", e.Rank, e.Op, e.WantOp)
	}
	return fmt.Sprintf("dist: rank %d passed %d elements to %s, group agreed on %d", e.Rank, e.Got, e.Op, e.Want)
}

const (
	opAllReduce = "allreduce"
	opBarrier   = "barrier"
)

// linkSet is one generation's ring channels. links[r] carries messages to
// rank r from its ring predecessor. A retired set (its generation ended) is
// drained as soon as the last in-flight exchange finishes, so buffered
// slices from an aborted collective are never delivered to — and never leak
// into — the rebuilt ring.
type linkSet struct {
	chans   []chan []float32
	active  int // exchanges still running on these channels
	retired bool
}

func newLinkSet(n int) *linkSet {
	ls := &linkSet{chans: make([]chan []float32, n)}
	for i := range ls.chans {
		ls.chans[i] = make(chan []float32, 1)
	}
	return ls
}

func (ls *linkSet) drain() {
	for _, ch := range ls.chans {
		for {
			select {
			case <-ch:
			default:
			}
			if len(ch) == 0 {
				break
			}
		}
	}
}

// rendezvous is the entry barrier of one collective: it validates that every
// live rank joined the same operation with the same buffer length, arms the
// deadline, and snapshots the ring for the data exchange.
type rendezvous struct {
	op      string
	length  int
	expect  int // live ranks when opened
	arrived map[int]bool
	done    bool
	err     *MismatchError
	seen    int // ranks that observed err (mismatch teardown)
	tk      *ticket
	settled bool
	settle  chan struct{} // closed when done, poisoned, or aborted
}

// ticket is the per-collective exchange context snapshotted at rendezvous
// completion, so every participant sees the same ring even if an eviction
// lands before it wakes.
type ticket struct {
	gen   int
	ring  []int
	ls    *linkSet
	abort chan struct{}
}

// Group is an elastic communicator. All live ranks must call collective
// operations the same number of times in the same order; on a *RankError
// they re-run the interrupted call.
type Group struct {
	cfg   Config
	n     int
	clock trace.Clock
	alarm trace.Alarm

	mu        sync.Mutex
	cond      *sync.Cond
	gen       int
	alive     []bool
	ring      []int // live ranks in ascending id order
	links     *linkSet
	abort     chan struct{}
	departed  []chan struct{}
	notify    []bool
	pending   []*RankError
	rv        *rendezvous
	evictions []Eviction

	lastDone   []float64 // clock time each rank last completed a rendezvous
	ewma       []float64
	ewmaSet    []bool
	stragglers []int

	gRing      *obs.Gauge
	gStrag     *obs.Gauge
	cEvictions *obs.Counter
}

// New creates an elastic communicator from cfg.
func New(cfg Config) (*Group, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("dist: invalid group size %d", cfg.Ranks)
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.4
	}
	n := cfg.Ranks
	g := &Group{
		cfg:      cfg,
		n:        n,
		clock:    cfg.Clock,
		alive:    make([]bool, n),
		links:    newLinkSet(n),
		abort:    make(chan struct{}),
		departed: make([]chan struct{}, n),
		notify:   make([]bool, n),
		pending:  make([]*RankError, n),
		lastDone: make([]float64, n),
		ewma:     make([]float64, n),
		ewmaSet:  make([]bool, n),
	}
	g.cond = sync.NewCond(&g.mu)
	if cfg.Clock != nil && cfg.Timeout > 0 {
		g.alarm, _ = cfg.Clock.(trace.Alarm)
	}
	for r := range g.alive {
		g.alive[r] = true
		g.departed[r] = make(chan struct{})
		g.lastDone[r] = -1
	}
	for _, r := range cfg.Down {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("dist: down rank %d outside group of %d", r, n)
		}
		if g.alive[r] {
			g.alive[r] = false
			close(g.departed[r])
		}
	}
	g.rebuildRingLocked()
	if len(g.ring) == 0 {
		return nil, fmt.Errorf("dist: all %d ranks down at construction", n)
	}
	g.gRing = cfg.Obs.Gauge("dist.ring_size")
	g.gStrag = cfg.Obs.Gauge("dist.stragglers")
	g.cEvictions = cfg.Obs.Counter("dist.evictions")
	g.gRing.Set(float64(len(g.ring)))
	g.gStrag.Set(0)
	return g, nil
}

// NewGroup creates a non-elastic communicator of n ranks: no clock, no
// deadlines, no metrics. Collectives still validate buffer lengths.
func NewGroup(n int) (*Group, error) { return New(Config{Ranks: n}) }

// Size returns the initial number of ranks.
func (g *Group) Size() int { return g.n }

// Generation returns the current ring generation; it increments on every
// eviction.
func (g *Group) Generation() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// Alive returns the live ranks in ascending order.
func (g *Group) Alive() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.ring...)
}

// Live reports whether rank is still in the group.
func (g *Group) Live(rank int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return rank >= 0 && rank < g.n && g.alive[rank]
}

// Evictions returns every eviction so far, in order.
func (g *Group) Evictions() []Eviction {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Eviction(nil), g.evictions...)
}

// Departed returns a channel closed when rank is evicted. A hanging rank's
// goroutine can park on it and exit once the group gives up on it.
func (g *Group) Departed(rank int) <-chan struct{} {
	g.checkRank(rank)
	return g.departed[rank]
}

// Stragglers returns the live ranks currently flagged slow (step-time EWMA
// above SlowFactor times the fastest live rank), ascending.
func (g *Group) Stragglers() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.stragglers...)
}

// EWMA returns rank's current step-time EWMA and whether one has been
// recorded yet.
func (g *Group) EWMA(rank int) (float64, bool) {
	g.checkRank(rank)
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ewma[rank], g.ewmaSet[rank]
}

// Leave announces rank's fail-stop departure: the rank is evicted
// immediately, survivors get a *RankError at (or in) their current
// collective and retry on the rebuilt ring.
func (g *Group) Leave(rank int, reason string) {
	g.checkRank(rank)
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.alive[rank] {
		return
	}
	g.evictLocked([]int{rank}, reason)
}

// AllReduceSum sums data elementwise across live ranks, in place; every
// live rank ends with the identical total. data must have the same length
// on every rank (*MismatchError otherwise). A *RankError means the ring was
// rebuilt mid-collective and the call must be retried with the original
// data. It panics if rank is outside the group (programmer invariant: rank
// assignment is the launcher's wiring).
func (g *Group) AllReduceSum(rank int, data []float32) error {
	g.checkRank(rank)
	tk, err := g.start(rank, opAllReduce, len(data))
	if err != nil {
		return err
	}
	if tk == nil {
		return nil
	}
	defer g.finish(tk)
	return g.exchange(tk, rank, data)
}

// AllReduceMean is AllReduceSum followed by division by the number of live
// ranks that participated.
func (g *Group) AllReduceMean(rank int, data []float32) error {
	g.checkRank(rank)
	tk, err := g.start(rank, opAllReduce, len(data))
	if err != nil {
		return err
	}
	m := 1
	if tk != nil {
		defer g.finish(tk)
		if err := g.exchange(tk, rank, data); err != nil {
			return err
		}
		m = len(tk.ring)
	}
	inv := 1 / float32(m)
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// Barrier blocks until every live rank reaches it, subject to the same
// deadline and eviction semantics as the collectives.
func (g *Group) Barrier(rank int) error {
	g.checkRank(rank)
	_, err := g.start(rank, opBarrier, 0)
	return err
}

// checkRank panics if rank is outside the group (programmer invariant: rank
// ids come from the launcher's own wiring, never from data).
func (g *Group) checkRank(rank int) {
	if rank < 0 || rank >= g.n {
		panic(fmt.Sprintf("dist: rank %d out of group of %d", rank, g.n))
	}
}

func (g *Group) now() float64 {
	if g.clock == nil {
		return 0
	}
	return g.clock.Now()
}

// start runs the rendezvous for one collective call. It returns a non-nil
// ticket when a ring data exchange must follow, nil when the collective is
// complete as-is (barrier, single live rank, empty buffer).
func (g *Group) start(rank int, op string, length int) (*ticket, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	if !g.alive[rank] {
		return nil, g.selfErrLocked(rank)
	}
	if g.notify[rank] {
		return nil, g.takePendingLocked(rank)
	}

	rv := g.rv
	if rv == nil {
		rv = &rendezvous{
			op:      op,
			length:  length,
			expect:  len(g.ring),
			arrived: make(map[int]bool, len(g.ring)),
			settle:  make(chan struct{}),
		}
		g.rv = rv
		g.armDeadlineLocked(rv)
	} else if rv.err != nil {
		return nil, g.observeMismatchLocked(rv)
	} else if rv.op != op || rv.length != length {
		rv.err = &MismatchError{Op: op, WantOp: rv.op, Rank: rank, Got: length, Want: rv.length}
		rv.settleLocked()
		g.cond.Broadcast()
		return nil, g.observeMismatchLocked(rv)
	}

	rv.arrived[rank] = true
	g.noteArrivalLocked(rank)
	if len(rv.arrived) == rv.expect {
		return g.completeLocked(rv), nil
	}

	gen := g.gen
	for !rv.done && rv.err == nil && g.gen == gen {
		g.cond.Wait()
	}
	switch {
	case rv.err != nil:
		return nil, g.observeMismatchLocked(rv)
	case rv.done:
		return rv.tk, nil
	default: // aborted: an eviction rebuilt the ring while we waited
		if !g.alive[rank] {
			return nil, g.selfErrLocked(rank)
		}
		return nil, g.takePendingLocked(rank)
	}
}

// completeLocked settles a fully-arrived rendezvous: clears the deadline,
// stamps step completion for the EWMAs, snapshots the exchange ticket, and
// releases the waiters.
func (g *Group) completeLocked(rv *rendezvous) *ticket {
	rv.done = true
	rv.settleLocked()
	now := g.now()
	for _, r := range g.ring {
		g.lastDone[r] = now
	}
	if rv.op == opAllReduce && rv.length > 0 && rv.expect > 1 {
		rv.tk = &ticket{
			gen:   g.gen,
			ring:  append([]int(nil), g.ring...),
			ls:    g.links,
			abort: g.abort,
		}
		g.links.active += rv.expect
	}
	g.updateStragglersLocked()
	g.rv = nil
	g.cond.Broadcast()
	return rv.tk
}

// observeMismatchLocked hands one rank the rendezvous's sticky mismatch
// error; the rendezvous is cleared once every expected rank has seen it, so
// late arrivals do not pair with a fresh collective.
func (g *Group) observeMismatchLocked(rv *rendezvous) error {
	rv.seen++
	if rv.seen >= rv.expect && g.rv == rv {
		g.rv = nil
	}
	return rv.err
}

func (g *Group) selfErrLocked(rank int) error {
	reason := "evicted"
	for _, e := range g.evictions {
		if e.Rank == rank {
			reason = e.Reason
		}
	}
	return &RankError{Evicted: []int{rank}, Gen: g.gen, Reason: reason, Self: true}
}

func (g *Group) takePendingLocked(rank int) error {
	g.notify[rank] = false
	err := g.pending[rank]
	g.pending[rank] = nil
	if err == nil {
		err = &RankError{Gen: g.gen, Reason: "eviction"}
	}
	return err
}

// armDeadlineLocked starts the watchdog enforcing the rendezvous deadline:
// if the alarm fires before every live rank arrives, the missing ranks are
// evicted.
func (g *Group) armDeadlineLocked(rv *rendezvous) {
	if g.alarm == nil || rv.expect <= 1 {
		return
	}
	fired, cancel := g.alarm.After(g.clock.Now() + g.cfg.Timeout)
	go g.watchdog(rv, fired, cancel)
}

func (g *Group) watchdog(rv *rendezvous, fired <-chan struct{}, cancel func()) {
	select {
	case <-fired:
	case <-rv.settle:
		cancel()
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if rv.done || rv.err != nil || g.rv != rv {
		return
	}
	var late []int
	for _, r := range g.ring {
		if !rv.arrived[r] {
			late = append(late, r)
		}
	}
	if len(late) == 0 || len(late) == len(g.ring) {
		return
	}
	g.evictLocked(late, "timeout")
}

// evictLocked removes victims from the group: generation bumps, ring
// rebuilds over the survivors in id order, the current rendezvous aborts,
// every survivor is armed to observe exactly one *RankError, and the old
// generation's links are retired for draining.
func (g *Group) evictLocked(victims []int, reason string) {
	now := g.now()
	evicted := victims[:0:0]
	for _, r := range victims {
		if r < 0 || r >= g.n || !g.alive[r] {
			continue
		}
		g.alive[r] = false
		close(g.departed[r])
		g.evictions = append(g.evictions, Eviction{Rank: r, Gen: g.gen, Reason: reason, Time: now})
		evicted = append(evicted, r)
	}
	if len(evicted) == 0 {
		return
	}
	g.cEvictions.Add(int64(len(evicted)))
	g.gen++
	g.rebuildRingLocked()
	for _, r := range g.ring {
		if g.pending[r] != nil {
			g.pending[r].Evicted = append(g.pending[r].Evicted, evicted...)
			sort.Ints(g.pending[r].Evicted)
			g.pending[r].Gen = g.gen
			g.pending[r].Reason = reason
		} else {
			g.pending[r] = &RankError{Evicted: append([]int(nil), evicted...), Gen: g.gen, Reason: reason}
		}
		g.notify[r] = true
	}
	if g.rv != nil {
		g.rv.settleLocked()
		g.rv = nil
	}
	close(g.abort)
	g.abort = make(chan struct{})
	g.links.retired = true
	if g.links.active == 0 {
		g.links.drain()
	}
	g.links = newLinkSet(g.n)
	g.gRing.Set(float64(len(g.ring)))
	g.updateStragglersLocked()
	g.cond.Broadcast()
}

func (g *Group) rebuildRingLocked() {
	g.ring = g.ring[:0]
	for r := 0; r < g.n; r++ {
		if g.alive[r] {
			g.ring = append(g.ring, r)
		}
	}
}

// finish releases one exchange's hold on its generation's links; the last
// exchange off a retired generation drains the buffered slices.
func (g *Group) finish(tk *ticket) {
	g.mu.Lock()
	defer g.mu.Unlock()
	tk.ls.active--
	if tk.ls.retired && tk.ls.active == 0 {
		tk.ls.drain()
	}
}

// noteArrivalLocked feeds the straggler EWMAs: a rank's step time is the
// clock span from its previous rendezvous completion to this arrival, so
// time spent waiting for slower peers inside the rendezvous is not charged.
func (g *Group) noteArrivalLocked(rank int) {
	if g.clock == nil {
		return
	}
	now := g.clock.Now()
	if g.lastDone[rank] < 0 {
		return
	}
	dt := now - g.lastDone[rank]
	if g.ewmaSet[rank] {
		a := g.cfg.EWMAAlpha
		g.ewma[rank] = a*dt + (1-a)*g.ewma[rank]
	} else {
		g.ewma[rank] = dt
		g.ewmaSet[rank] = true
	}
	g.cfg.Obs.Gauge(fmt.Sprintf("dist.step_ewma.rank%d", rank)).Set(g.ewma[rank])
}

func (g *Group) updateStragglersLocked() {
	g.stragglers = g.stragglers[:0]
	if g.cfg.SlowFactor <= 0 {
		return
	}
	minE := -1.0
	for _, r := range g.ring {
		if g.ewmaSet[r] && (minE < 0 || g.ewma[r] < minE) {
			minE = g.ewma[r]
		}
	}
	if minE <= 0 {
		g.gStrag.Set(0)
		return
	}
	for _, r := range g.ring {
		if g.ewmaSet[r] && g.ewma[r] > g.cfg.SlowFactor*minE {
			g.stragglers = append(g.stragglers, r)
		}
	}
	g.gStrag.Set(float64(len(g.stragglers)))
}

func (rv *rendezvous) settleLocked() {
	if !rv.settled {
		rv.settled = true
		close(rv.settle)
	}
}

// exchange runs the ring allreduce over the live ranks snapshotted in tk.
// Segment boundaries cover the live ring, neighbors are ring-order, and all
// channel traffic stays on tk's generation links.
func (g *Group) exchange(tk *ticket, rank int, data []float32) error {
	m := len(tk.ring)
	idx := 0
	for i, r := range tk.ring {
		if r == rank {
			idx = i
		}
	}
	bounds := make([]int, m+1)
	for s := 0; s <= m; s++ {
		bounds[s] = s * len(data) / m
	}
	seg := func(s int) []float32 { return data[bounds[s]:bounds[s+1]] }
	next := tk.ring[(idx+1)%m]

	// Scatter-reduce: after step k, position p holds the partial sum of
	// segment (p-k) over k+1 contributions.
	for step := 0; step < m-1; step++ {
		sendSeg := (idx - step + m*m) % m
		out := append([]float32(nil), seg(sendSeg)...)
		if err := g.sendMsg(tk, next, out); err != nil {
			return err
		}
		in, err := g.recvMsg(tk, rank)
		if err != nil {
			return err
		}
		recvSeg := (idx - step - 1 + m*m) % m
		dst := seg(recvSeg)
		for i, v := range in {
			dst[i] += v
		}
	}
	// Allgather: circulate the completed segments.
	for step := 0; step < m-1; step++ {
		sendSeg := (idx - step + 1 + m*m) % m
		out := append([]float32(nil), seg(sendSeg)...)
		if err := g.sendMsg(tk, next, out); err != nil {
			return err
		}
		in, err := g.recvMsg(tk, rank)
		if err != nil {
			return err
		}
		recvSeg := (idx - step + m*m) % m
		copy(seg(recvSeg), in)
	}
	return nil
}

// sendMsg delivers one ring message. An abort mid-exchange means an
// eviction fired elsewhere; under fail-stop semantics every participant of
// this exchange is still running, so the exchange is completable and the
// send keeps going — with a full Timeout as a deadlock backstop. The
// *RankError for the eviction is delivered at the next rendezvous.
func (g *Group) sendMsg(tk *ticket, to int, out []float32) error {
	select {
	case tk.ls.chans[to] <- out:
		return nil
	case <-tk.abort:
	}
	fired, cancel := g.backstop()
	defer cancel()
	select {
	case tk.ls.chans[to] <- out:
		return nil
	case <-fired:
		return g.stuckErr()
	}
}

// recvMsg receives one ring message, with the same abort semantics as
// sendMsg.
func (g *Group) recvMsg(tk *ticket, rank int) ([]float32, error) {
	select {
	case in := <-tk.ls.chans[rank]:
		return in, nil
	case <-tk.abort:
	}
	fired, cancel := g.backstop()
	defer cancel()
	select {
	case in := <-tk.ls.chans[rank]:
		return in, nil
	case <-fired:
		return nil, g.stuckErr()
	}
}

// backstop returns a deadline channel for a post-abort exchange: it fires
// only if a peer violated fail-stop and died mid-exchange, which would
// otherwise hang the survivors forever.
func (g *Group) backstop() (<-chan struct{}, func()) {
	if g.alarm == nil {
		return nil, func() {} // nil channel: never fires
	}
	return g.alarm.After(g.clock.Now() + g.cfg.Timeout)
}

func (g *Group) stuckErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return &RankError{Gen: g.gen, Reason: "exchange stalled past abort backstop"}
}

// RingTime models the wall time of a ring allreduce of `bytes` gradient
// bytes across n ranks over links of linkGBs, with perStepLatency seconds of
// software/launch latency per ring step. This is the model-synchronization
// stage of Figs 9/12.
func RingTime(bytes int, n int, linkGBs float64, perStepLatency float64) float64 {
	if n <= 1 || bytes == 0 {
		return 0
	}
	moved := 2 * float64(n-1) / float64(n) * float64(bytes)
	return moved/(linkGBs*1e9) + float64(2*(n-1))*perStepLatency
}
