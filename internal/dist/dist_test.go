package dist

import (
	"math"
	"sync"
	"testing"

	"scipp/internal/xrand"
)

func runAllReduce(t *testing.T, n, size int, mean bool) [][]float32 {
	t.Helper()
	g, err := NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]float32, n)
	r := xrand.New(uint64(n*1000 + size))
	for rk := range data {
		data[rk] = make([]float32, size)
		for i := range data[rk] {
			data[rk][i] = float32(r.NormFloat64())
		}
	}
	want := make([]float64, size)
	for rk := range data {
		for i, v := range data[rk] {
			want[i] += float64(v)
		}
	}
	if mean {
		for i := range want {
			want[i] /= float64(n)
		}
	}
	var wg sync.WaitGroup
	for rk := 0; rk < n; rk++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var err error
			if mean {
				err = g.AllReduceMean(rank, data[rank])
			} else {
				err = g.AllReduceSum(rank, data[rank])
			}
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}(rk)
	}
	wg.Wait()
	for rk := range data {
		for i := range data[rk] {
			if math.Abs(float64(data[rk][i])-want[i]) > 1e-4*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d size=%d rank %d elem %d: %g want %g",
					n, size, rk, i, data[rk][i], want[i])
			}
		}
	}
	return data
}

func TestAllReduceSumSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		for _, size := range []int{1, 7, 64, 1000} {
			if size < n {
				continue
			}
			runAllReduce(t, n, size, false)
		}
	}
}

func TestAllReduceUnevenSegments(t *testing.T) {
	// Sizes not divisible by n exercise the boundary arithmetic.
	runAllReduce(t, 3, 10, false)
	runAllReduce(t, 4, 9, false)
	runAllReduce(t, 5, 11, false)
}

func TestAllReduceMean(t *testing.T) {
	runAllReduce(t, 4, 32, true)
}

func TestAllRanksIdentical(t *testing.T) {
	data := runAllReduce(t, 4, 64, false)
	for rk := 1; rk < len(data); rk++ {
		for i := range data[0] {
			if data[rk][i] != data[0][i] {
				t.Fatalf("ranks 0 and %d differ at %d", rk, i)
			}
		}
	}
}

func TestRepeatedCollectives(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for rk := 0; rk < 3; rk++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				d := []float32{float32(rank), 1, 2}
				if err := g.AllReduceSum(rank, d); err != nil {
					t.Errorf("iter %d rank %d: %v", iter, rank, err)
					return
				}
				if d[0] != 3 || d[1] != 3 || d[2] != 6 {
					t.Errorf("iter %d rank %d: %v", iter, rank, d)
					return
				}
				if err := g.Barrier(rank); err != nil {
					t.Errorf("iter %d rank %d barrier: %v", iter, rank, err)
					return
				}
			}
		}(rk)
	}
	wg.Wait()
}

func TestBarrier(t *testing.T) {
	g, err := NewGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	var phase [4]int
	var wg sync.WaitGroup
	for rk := 0; rk < 4; rk++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for p := 0; p < 10; p++ {
				phase[rank] = p
				if err := g.Barrier(rank); err != nil {
					t.Errorf("rank %d barrier: %v", rank, err)
					return
				}
				// After the barrier everyone must be at phase >= p.
				for other := 0; other < 4; other++ {
					if phase[other] < p {
						t.Errorf("rank %d saw rank %d at phase %d < %d", rank, other, phase[other], p)
						return
					}
				}
				if err := g.Barrier(rank); err != nil {
					t.Errorf("rank %d barrier: %v", rank, err)
					return
				}
			}
		}(rk)
	}
	wg.Wait()
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(0); err == nil {
		t.Error("zero-size group accepted")
	}
	g, _ := NewGroup(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank accepted")
		}
	}()
	_ = g.AllReduceSum(5, []float32{1})
}

func TestSingleRankNoOp(t *testing.T) {
	g, _ := NewGroup(1)
	d := []float32{1, 2, 3}
	if err := g.AllReduceSum(0, d); err != nil {
		t.Fatal(err)
	}
	if d[0] != 1 || d[2] != 3 {
		t.Error("single-rank allreduce changed data")
	}
}

func TestRingTimeModel(t *testing.T) {
	if RingTime(0, 8, 10, 0) != 0 {
		t.Error("zero bytes should cost zero")
	}
	if RingTime(1<<20, 1, 10, 0) != 0 {
		t.Error("single rank should cost zero")
	}
	t2 := RingTime(100<<20, 2, 10, 0)
	t8 := RingTime(100<<20, 8, 10, 0)
	// Moved volume per rank grows from 1x (n=2) toward 2x (n→inf).
	if t8 <= t2 {
		t.Error("larger rings should move more data per rank")
	}
	if t8 > 2*t2 {
		t.Error("ring time should stay within 2x of the 2-rank case")
	}
	// Latency term grows linearly in steps.
	lat := RingTime(0, 8, 10, 1e-4)
	if lat != 0 {
		t.Error("zero bytes means no allreduce at all in this model")
	}
	withLat := RingTime(1, 8, 10, 1e-4)
	if math.Abs(withLat-14*1e-4) > 1e-6 {
		t.Errorf("latency term = %g, want ~14e-4", withLat)
	}
}
