package dist

import (
	"sync"
	"testing"
)

// TestAllReduceUnevenCompletion staggers ranks so they reach each collective
// at very different times: fast ranks burn almost no CPU between collectives
// while slow ranks do a long local reduction first. The ring must stay
// correct and race-free (run with -race) under that skew.
func TestAllReduceUnevenCompletion(t *testing.T) {
	const (
		ranks  = 5
		elems  = 257 // not divisible by ranks: uneven segments too
		rounds = 25
	)
	g, err := NewGroup(ranks)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]float32, ranks)
	for r := range bufs {
		bufs[r] = make([]float32, elems)
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Skew: rank r does r*20000 units of busywork before joining,
				// so completion order differs every round.
				sink := 0.0
				for i := 0; i < rank*20000; i++ {
					sink += float64(i)
				}
				_ = sink
				for i := range bufs[rank] {
					bufs[rank][i] = float32(rank + round)
				}
				g.AllReduceSum(rank, bufs[rank])
			}
		}(r)
	}
	wg.Wait()
	// After the last round every rank holds sum over r of (r + rounds-1).
	want := float32(0)
	for r := 0; r < ranks; r++ {
		want += float32(r + rounds - 1)
	}
	for r := 0; r < ranks; r++ {
		for i, v := range bufs[r] {
			if v != want {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, v, want)
			}
		}
	}
}

// TestAllReduceInterleavedWithBarrier mixes collectives with barriers under
// skewed arrival, the pattern the data-parallel trainer uses per step.
func TestAllReduceInterleavedWithBarrier(t *testing.T) {
	const ranks = 4
	g, err := NewGroup(ranks)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := make([]float32, 33)
			for round := 0; round < 10; round++ {
				for i := range buf {
					buf[i] = 1
				}
				if err := g.AllReduceMean(rank, buf); err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
				if buf[0] != 1 {
					t.Errorf("rank %d round %d: mean of ones = %v", rank, round, buf[0])
				}
				if err := g.Barrier(rank); err != nil {
					t.Errorf("rank %d round %d barrier: %v", rank, round, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
