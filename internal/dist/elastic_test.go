package dist

import (
	"errors"
	"sync"
	"testing"

	"scipp/internal/obs"
	"scipp/internal/trace"
)

// sumWithRetry runs AllReduceSum, refilling data and retrying on ring
// rebuilds. It returns the evictions observed, or stops the goroutine's loop
// when the rank itself is evicted.
func sumWithRetry(t *testing.T, g *Group, rank int, fill func() []float32) (result []float32, observed []int, dead bool) {
	t.Helper()
	d := fill()
	for attempt := 0; attempt <= g.Size(); attempt++ {
		err := g.AllReduceSum(rank, d)
		if err == nil {
			return d, observed, false
		}
		var re *RankError
		if !errors.As(err, &re) {
			t.Errorf("rank %d: unexpected error %v", rank, err)
			return d, observed, true
		}
		if re.Self {
			return d, observed, true
		}
		observed = append(observed, re.Evicted...)
		d = fill()
	}
	t.Errorf("rank %d: retries exhausted", rank)
	return d, observed, true
}

// TestLeaveEvictsAndRebuildsRing is the core elastic scenario on a virtual
// clock with no time advancement: rank 2 of 4 announces a fail-stop crash
// at round 3; survivors observe exactly one *RankError naming it, retry the
// interrupted collective on the rebuilt 3-rank ring, and finish all rounds.
func TestLeaveEvictsAndRebuildsRing(t *testing.T) {
	const (
		ranks     = 4
		victim    = 2
		killRound = 3
		rounds    = 6
	)
	vc := &trace.VirtualClock{}
	reg := obs.NewRegistry()
	g, err := New(Config{Ranks: ranks, Clock: vc, Timeout: 10, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	sums := make([][]float32, ranks)
	evicts := make([][]int, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		sums[r] = make([]float32, rounds)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if rank == victim && round == killRound {
					g.Leave(rank, "crash")
					return
				}
				d, seen, dead := sumWithRetry(t, g, rank, func() []float32 {
					return []float32{float32(rank + 1), float32(round)}
				})
				evicts[rank] = append(evicts[rank], seen...)
				if dead {
					return
				}
				sums[rank][round] = d[0]
			}
		}(r)
	}
	wg.Wait()

	fullSum := float32(1 + 2 + 3 + 4)
	for r := 0; r < ranks; r++ {
		if r == victim {
			continue
		}
		for round := 0; round < rounds; round++ {
			want := fullSum
			if round >= killRound {
				want = fullSum - float32(victim+1)
			}
			if sums[r][round] != want {
				t.Errorf("rank %d round %d: sum %v, want %v", r, round, sums[r][round], want)
			}
		}
		if len(evicts[r]) != 1 || evicts[r][0] != victim {
			t.Errorf("rank %d observed evictions %v, want [%d] exactly once", r, evicts[r], victim)
		}
	}
	if got := g.Alive(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Errorf("alive = %v, want [0 1 3]", got)
	}
	if g.Generation() != 1 {
		t.Errorf("generation = %d, want 1", g.Generation())
	}
	evs := g.Evictions()
	if len(evs) != 1 || evs[0].Rank != victim || evs[0].Reason != "crash" || evs[0].Gen != 0 {
		t.Errorf("evictions = %+v", evs)
	}
	snap := reg.Snapshot()
	if snap.Counter("dist.evictions") != 1 {
		t.Errorf("dist.evictions = %d, want 1", snap.Counter("dist.evictions"))
	}
	if rs := snap.Gauge("dist.ring_size"); rs.Value != 3 || rs.Max != 4 {
		t.Errorf("dist.ring_size = %+v, want value 3 max 4", rs)
	}
}

// TestDeadlineEvictsHangingRank exercises the timeout path: a rank that
// silently hangs (no Leave) misses the rendezvous deadline on a wall clock
// and is evicted; its goroutine is released via Departed.
func TestDeadlineEvictsHangingRank(t *testing.T) {
	const (
		ranks     = 3
		victim    = 1
		hangRound = 2
		rounds    = 4
	)
	g, err := New(Config{Ranks: ranks, Clock: trace.NewWallClock(), Timeout: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	sums := make([][]float32, ranks)
	for r := 0; r < ranks; r++ {
		sums[r] = make([]float32, rounds)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if rank == victim && round == hangRound {
					<-g.Departed(rank) // silent hang until the group gives up
					return
				}
				d, _, dead := sumWithRetry(t, g, rank, func() []float32 {
					return []float32{1}
				})
				if dead {
					return
				}
				sums[rank][round] = d[0]
			}
		}(r)
	}
	wg.Wait()

	evs := g.Evictions()
	if len(evs) != 1 || evs[0].Rank != victim || evs[0].Reason != "timeout" {
		t.Fatalf("evictions = %+v, want rank %d by timeout", evs, victim)
	}
	for r := 0; r < ranks; r++ {
		if r == victim {
			continue
		}
		for round := 0; round < rounds; round++ {
			want := float32(ranks)
			if round >= hangRound {
				want = float32(ranks - 1)
			}
			if sums[r][round] != want {
				t.Errorf("rank %d round %d: sum %v, want %v", r, round, sums[r][round], want)
			}
		}
	}
	if g.Live(victim) {
		t.Error("victim still live after timeout eviction")
	}
}

// TestLengthMismatchTyped: ranks joining one allreduce with different
// buffer lengths all get a *MismatchError, nobody is evicted, and the group
// remains usable for a following well-formed collective.
func TestLengthMismatchTyped(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = g.AllReduceSum(rank, make([]float32, 3+rank))
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		var me *MismatchError
		if !errors.As(e, &me) {
			t.Fatalf("rank %d: got %v, want *MismatchError", r, e)
		}
		if me.Got == me.Want {
			t.Errorf("rank %d: mismatch error with equal lengths: %+v", r, me)
		}
	}
	if len(g.Alive()) != 2 {
		t.Errorf("mismatch must not evict: alive = %v", g.Alive())
	}
	// The group must recover for a well-formed collective.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			d := []float32{1, 1}
			if err := g.AllReduceSum(rank, d); err != nil {
				t.Errorf("rank %d post-mismatch: %v", rank, err)
			} else if d[0] != 2 {
				t.Errorf("rank %d post-mismatch sum = %v", rank, d[0])
			}
		}(r)
	}
	wg.Wait()
}

// TestOpMismatchTyped: one rank at a barrier while the other runs an
// allreduce is a typed mismatch, not a hang.
func TestOpMismatchTyped(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = g.Barrier(0)
	}()
	go func() {
		defer wg.Done()
		errs[1] = g.AllReduceSum(1, []float32{1})
	}()
	wg.Wait()
	for r, e := range errs {
		var me *MismatchError
		if !errors.As(e, &me) {
			t.Fatalf("rank %d: got %v, want *MismatchError", r, e)
		}
	}
}

// TestEvictedRankSelfError: an evicted rank calling back into the group
// gets a self-flagged *RankError naming it, never a hang.
func TestEvictedRankSelfError(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	g.Leave(1, "crash")
	err = g.AllReduceSum(1, []float32{1})
	var re *RankError
	if !errors.As(err, &re) || !re.Self {
		t.Fatalf("got %v, want self *RankError", err)
	}
	if len(re.Evicted) != 1 || re.Evicted[0] != 1 || re.Reason != "crash" {
		t.Errorf("self error = %+v", re)
	}
	if err := g.Barrier(1); !errors.As(err, &re) || !re.Self {
		t.Errorf("barrier on evicted rank: %v, want self *RankError", err)
	}
}

// TestDownRanksAtConstruction: a resumed run excludes ranks lost before its
// checkpoint; collectives and means run over the survivors only.
func TestDownRanksAtConstruction(t *testing.T) {
	g, err := New(Config{Ranks: 4, Down: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Alive(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("alive = %v, want [0 2]", got)
	}
	var wg sync.WaitGroup
	means := make([]float32, 4)
	for _, r := range []int{0, 2} {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			d := []float32{float32(rank)}
			if err := g.AllReduceMean(rank, d); err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			means[rank] = d[0]
		}(r)
	}
	wg.Wait()
	if means[0] != 1 || means[2] != 1 {
		t.Errorf("means = %v, want 1 on live ranks (0+2)/2", means)
	}
	if _, err := New(Config{Ranks: 2, Down: []int{0, 1}}); err == nil {
		t.Error("all ranks down accepted")
	}
	if _, err := New(Config{Ranks: 2, Down: []int{5}}); err == nil {
		t.Error("out-of-range down rank accepted")
	}
}

// TestLinksDrainedOnEviction locks satellite (b): buffered slices left on a
// generation's links by an aborted collective are drained at eviction, and
// the rebuilt ring starts on fresh channels that cannot deliver them.
func TestLinksDrainedOnEviction(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	stale := []float32{9, 9, 9}
	g.mu.Lock()
	old := g.links
	old.chans[1] <- stale // simulate a message stranded by an aborted step
	g.evictLocked([]int{2}, "crash")
	fresh := g.links
	g.mu.Unlock()
	if len(old.chans[1]) != 0 {
		t.Error("retired links not drained on eviction")
	}
	if fresh == old {
		t.Error("eviction did not replace the link set")
	}
	// Survivors' next collective must not see the stale payload.
	var wg sync.WaitGroup
	for _, r := range []int{0, 1} {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			d := []float32{1, 1, 1}
			if err := g.AllReduceSum(rank, d); err != nil {
				// First call observes the eviction notification; retry.
				var re *RankError
				if !errors.As(err, &re) || re.Self {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				d = []float32{1, 1, 1}
				if err := g.AllReduceSum(rank, d); err != nil {
					t.Errorf("rank %d retry: %v", rank, err)
					return
				}
			}
			for i, v := range d {
				if v != 2 {
					t.Errorf("rank %d elem %d: %v (stale message leaked?)", rank, i, v)
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestDrainDeferredWhileExchangeActive: links retired while an exchange is
// still running are drained only when the last exchange finishes, so the
// drain cannot steal messages a mid-flight exchange still needs.
func TestDrainDeferredWhileExchangeActive(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	old := g.links
	old.active = 1 // one exchange notionally in flight
	old.chans[0] <- []float32{5}
	g.evictLocked([]int{2}, "crash")
	g.mu.Unlock()
	if len(old.chans[0]) != 1 {
		t.Fatal("drain ran while an exchange held the links")
	}
	g.finish(&ticket{ls: old})
	if len(old.chans[0]) != 0 {
		t.Error("last finish off a retired link set must drain it")
	}
}

// TestStragglerEWMA drives arrivals on a virtual clock and checks the EWMA
// update, the slow-rank threshold, and the obs gauges.
func TestStragglerEWMA(t *testing.T) {
	vc := &trace.VirtualClock{}
	reg := obs.NewRegistry()
	g, err := New(Config{Ranks: 3, Clock: vc, SlowFactor: 4, EWMAAlpha: 0.5, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	for r := 0; r < 3; r++ {
		g.lastDone[r] = 0
	}
	g.mu.Unlock()

	vc.Advance(1) // fast ranks arrive after 1s of compute
	g.mu.Lock()
	g.noteArrivalLocked(0)
	g.noteArrivalLocked(1)
	g.mu.Unlock()
	vc.Advance(9) // the slow rank takes 10s total
	g.mu.Lock()
	g.noteArrivalLocked(2)
	g.updateStragglersLocked()
	g.mu.Unlock()

	if e, ok := g.EWMA(0); !ok || e != 1 {
		t.Errorf("ewma[0] = %v,%v want 1", e, ok)
	}
	if e, ok := g.EWMA(2); !ok || e != 10 {
		t.Errorf("ewma[2] = %v,%v want 10", e, ok)
	}
	if s := g.Stragglers(); len(s) != 1 || s[0] != 2 {
		t.Fatalf("stragglers = %v, want [2]", s)
	}

	// Second round: EWMA smooths with alpha 0.5.
	g.mu.Lock()
	for r := 0; r < 3; r++ {
		g.lastDone[r] = vc.Now()
	}
	g.mu.Unlock()
	vc.Advance(2)
	g.mu.Lock()
	g.noteArrivalLocked(2)
	g.mu.Unlock()
	if e, _ := g.EWMA(2); e != 0.5*2+0.5*10 {
		t.Errorf("smoothed ewma[2] = %v, want 6", e)
	}

	snap := reg.Snapshot()
	if v := snap.Gauge("dist.step_ewma.rank2").Value; v != 6 {
		t.Errorf("gauge dist.step_ewma.rank2 = %v, want 6", v)
	}
	if v := snap.Gauge("dist.stragglers").Value; v != 1 {
		t.Errorf("gauge dist.stragglers = %v, want 1", v)
	}
}

// TestStragglerIntegrationWallClock flags a rank that really is slower,
// end to end through the collectives on a wall clock.
func TestStragglerIntegrationWallClock(t *testing.T) {
	clk := trace.NewWallClock()
	sleeper := clk.(trace.Sleeper)
	g, err := New(Config{Ranks: 3, Clock: clk, SlowFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				if rank == 2 {
					sleeper.Sleep(0.02) // simulated slow compute
				}
				if err := g.AllReduceSum(rank, []float32{1}); err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	found := false
	for _, s := range g.Stragglers() {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("rank 2 not flagged: stragglers = %v", g.Stragglers())
	}
}

// TestConcurrentBarrierCollectiveEviction is the satellite (c) -race test:
// barriers and collectives interleave across ranks while one rank crashes
// mid-run; every survivor realigns and finishes.
func TestConcurrentBarrierCollectiveEviction(t *testing.T) {
	const (
		ranks     = 5
		victim    = 3
		killRound = 4
		rounds    = 10
	)
	g, err := New(Config{Ranks: ranks, Clock: &trace.VirtualClock{}, Timeout: 100})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if rank == victim && round == killRound {
					g.Leave(rank, "crash")
					return
				}
				if _, _, dead := sumWithRetry(t, g, rank, func() []float32 {
					return make([]float32, 17)
				}); dead {
					return
				}
				for attempt := 0; attempt <= ranks; attempt++ {
					err := g.Barrier(rank)
					if err == nil {
						break
					}
					var re *RankError
					if !errors.As(err, &re) || re.Self {
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if len(g.Alive()) != ranks-1 {
		t.Errorf("alive = %v", g.Alive())
	}
	evs := g.Evictions()
	if len(evs) != 1 || evs[0].Rank != victim {
		t.Errorf("evictions = %+v", evs)
	}
}
