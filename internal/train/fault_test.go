package train

// The acceptance suite of the robustness layer: a DeepCAM training run under
// an injected corruption + transient-error mix must finish with zero panics,
// bounded sample loss that matches the injector's ground truth exactly, and
// convergence close to the fault-free run. The injector seed (46) was chosen
// so the 40-sample corpus draws every interesting kind: flipped-byte
// corruption that decodes silently (realistic bit rot in FP payloads),
// truncation that fails decode, and a transient sample that recovers under
// retry.

import (
	"errors"
	"sort"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/core"
	"scipp/internal/fault"
	"scipp/internal/pipeline"
	"scipp/internal/synthetic"
)

func faultClimate() synthetic.ClimateConfig {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 32
	cfg.Width = 48
	return cfg
}

// faultMix is the ~1% corruption + transient-error mix of the acceptance
// criterion: 0.5% byte flips + 0.5% truncation + 1% transient I/O errors.
func faultMix() fault.Config {
	return fault.Config{Seed: 46, Corrupt: 0.005, Truncate: 0.005, Transient: 0.01, TransientFailures: 2}
}

// expectedBadSamples replays the injection pattern on a fresh injector and
// returns the indices whose faults are *detectable* (permanent read failure
// or failed decode). Byte flips deep in the FP payload decode silently and
// are invisible to any pipeline without checksums — those samples are
// expected to be delivered, not skipped.
func expectedBadSamples(t *testing.T, ds pipeline.Dataset, format codec.Format) []int {
	t.Helper()
	probe := fault.Wrap(ds, faultMix())
	var bad []int
	for i := 0; i < ds.Len(); i++ {
		blob, err := probe.Blob(i)
		if err != nil {
			if !errors.Is(err, fault.Transient) {
				bad = append(bad, i) // permanent loss
			}
			continue // transient: recovers under retry
		}
		cd, err := format.Open(blob)
		if err != nil {
			bad = append(bad, i)
			continue
		}
		if _, err := codec.Decode(cd); err != nil {
			bad = append(bad, i)
		}
	}
	return bad
}

// TestFaultedEpochAccountingExact drains one full epoch over the faulted
// dataset and checks Iterator.Stats against the injector's log with exact
// equality: every detectable bad sample skipped (and nothing else), every
// transient failure retried.
func TestFaultedEpochAccountingExact(t *testing.T) {
	const samples = 40
	ds, err := core.BuildClimateDataset(faultClimate(), samples, core.Plugin)
	if err != nil {
		t.Fatal(err)
	}
	format := core.FormatFor(core.DeepCAM, core.Plugin)
	wantBad := expectedBadSamples(t, ds, format)
	if len(wantBad) == 0 {
		t.Fatal("seed draws no detectable faults — the test corpus is dead")
	}

	inj := fault.Wrap(ds, faultMix())
	loader, err := pipeline.New(inj, pipeline.Config{
		Format: format,
		Batch:  2,
		Resilience: pipeline.Resilience{
			MaxRetries:    3,
			MaxBadSamples: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := loader.Epoch(0)
	n, err := it.Drain()
	if err != nil {
		t.Fatalf("faulted epoch failed within quota: %v", err)
	}
	st := it.Stats()

	if want := samples - len(wantBad); n != want || st.Decoded != want {
		t.Errorf("decoded %d (stats %d), want %d", n, st.Decoded, want)
	}
	gotBad := append([]int(nil), st.BadSamples...)
	sort.Ints(gotBad)
	if !sameInts(gotBad, wantBad) {
		t.Errorf("BadSamples = %v, want %v", gotBad, wantBad)
	}
	if st.Skipped != len(wantBad) {
		t.Errorf("Skipped = %d, want %d", st.Skipped, len(wantBad))
	}
	transientEvents, _ := inj.Summary().Of(fault.TransientIO)
	if transientEvents == 0 {
		t.Error("no transient events injected — mix has no flaky component")
	}
	if st.Retried != transientEvents {
		t.Errorf("Retried = %d, want %d (one retry per logged transient failure)", st.Retried, transientEvents)
	}
}

// TestDeepCAMConvergesUnderFaultMix is the end-to-end acceptance run: real
// training under the fault mix, with skipped samples recorded per epoch and
// the final loss within tolerance of the fault-free run.
func TestDeepCAMConvergesUnderFaultMix(t *testing.T) {
	if testing.Short() {
		t.Skip("full DeepCAM training run")
	}
	clim := faultClimate()
	base := Config{
		Encoded: true,
		Samples: 40,
		Batch:   2,
		Steps:   40,
		Seed:    5,
		LR:      0.01,
		Warmup:  4,
	}
	clean, err := DeepCAMRun(clim, base)
	if err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}

	faulted := base
	mix := faultMix()
	faulted.Faults = &mix
	faulted.Resilience = pipeline.Resilience{
		MaxRetries:    3,
		BackoffBase:   0.0005,
		BackoffCap:    0.002,
		MaxBadSamples: 4,
	}
	res, err := DeepCAMRun(clim, faulted)
	if err != nil {
		t.Fatalf("faulted run failed (want graceful degradation): %v", err)
	}
	if len(res.Losses) != base.Steps {
		t.Fatalf("faulted run took %d steps, want %d", len(res.Losses), base.Steps)
	}
	if len(res.Injections) == 0 {
		t.Fatal("no faults injected — acceptance run is vacuous")
	}

	var retried int
	for e, st := range res.Epochs {
		if st.Skipped > faulted.Resilience.MaxBadSamples {
			t.Errorf("epoch %d skipped %d samples, above quota %d", e, st.Skipped, faulted.Resilience.MaxBadSamples)
		}
		retried += st.Retried
	}
	if res.Skipped() == 0 {
		t.Error("no samples skipped — detectable corruption did not exercise the skip path")
	}
	var summary fault.Summary
	for _, injEv := range res.Injections {
		summary.Events[injEv.Kind]++
	}
	transientEvents, _ := summary.Of(fault.TransientIO)
	if retried != transientEvents {
		t.Errorf("retried %d times for %d transient failures", retried, transientEvents)
	}

	cleanLoss := tail5(clean.Losses)
	faultLoss := tail5(res.Losses)
	if diff := (faultLoss - cleanLoss) / cleanLoss; diff > 0.5 || diff < -0.5 {
		t.Errorf("final loss %.4f drifted %.0f%% from fault-free %.4f (tolerance 50%%)",
			faultLoss, 100*diff, cleanLoss)
	}
}

// TestDeepCAMQuotaExceededFailsLoudly pins the loud-failure half of the
// policy: past MaxBadSamples the run errors with an *EpochError naming the
// offending samples instead of silently training on a gutted epoch.
func TestDeepCAMQuotaExceededFailsLoudly(t *testing.T) {
	clim := faultClimate()
	cfg := Config{
		Encoded: true,
		Samples: 40,
		Batch:   2,
		Steps:   40,
		Seed:    5,
		LR:      0.01,
		Warmup:  4,
		Faults:  &fault.Config{Seed: 46, Truncate: 0.2, Lost: 0.1},
		Resilience: pipeline.Resilience{
			MaxRetries:    2,
			MaxBadSamples: 1,
		},
	}
	_, err := DeepCAMRun(clim, cfg)
	if err == nil {
		t.Fatal("run with a gutted dataset and quota 1 did not fail")
	}
	var ee *pipeline.EpochError
	if !errors.As(err, &ee) {
		t.Fatalf("error %v (%T) does not unwrap to *pipeline.EpochError", err, err)
	}
	if len(ee.Indices) < 2 {
		t.Errorf("EpochError names %v, want at least the skipped and the fatal sample", ee.Indices)
	}
}

func tail5(losses []float64) float64 {
	n := len(losses)
	k := 5
	if n < k {
		k = n
	}
	sum := 0.0
	for _, l := range losses[n-k:] {
		sum += l
	}
	return sum / float64(k)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
