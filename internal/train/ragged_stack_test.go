package train

import (
	"math"
	"testing"

	"scipp/internal/pipeline"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

// TestPaddedEqualLengthsBitIdenticalToStack is the cross-layer lock on the
// ragged refactor's degenerate case: over samples that all share one shape,
// pipeline's pad-to-max assembly and train's fixed-shape StackData must
// produce the same FP32 tensor, bit for bit, with an all-ones mask. Training
// on fixed-shape domains through NextPadded therefore sees exactly the
// batches the fixed-shape path always fed it.
func TestPaddedEqualLengthsBitIdenticalToStack(t *testing.T) {
	cfg := synthetic.DefaultWeatherConfig()
	cfg.MinLen, cfg.MaxLen = 40, 40 // pin the length: the degenerate case
	b := &pipeline.Batch{}
	for i := 0; i < 4; i++ {
		s, err := synthetic.GenerateWeather(cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		b.Data = append(b.Data, s.Data)
		b.Labels = append(b.Labels, s.Label())
		b.Indices = append(b.Indices, i)
	}
	pb, err := b.Padded()
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := StackData(b.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Data.Shape.Equal(stacked.Shape) {
		t.Fatalf("padded shape %v != stacked shape %v", pb.Data.Shape, stacked.Shape)
	}
	for i := range stacked.F32s {
		if math.Float32bits(pb.Data.F32s[i]) != math.Float32bits(stacked.F32s[i]) {
			t.Fatalf("elem %d: padded %g != stacked %g (not bit-identical)", i, pb.Data.F32s[i], stacked.F32s[i])
		}
	}
	for _, m := range pb.Mask.F32s {
		if m != 1 {
			t.Fatal("equal-length batch carries padding in its mask")
		}
	}
}

// TestPaddedWidensF16LikeStack pins the dtype side of the identity: F16
// samples widen to FP32 through the exact conversion StackData applies.
func TestPaddedWidensF16LikeStack(t *testing.T) {
	mk := func(vals ...float32) *tensor.Tensor {
		return tensor.FromF32(vals, 1, len(vals)).ToF16()
	}
	b := &pipeline.Batch{Data: []*tensor.Tensor{mk(1, 2.5, -3), mk(0.125, 9, 42)}}
	pb, err := b.Padded()
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := StackData(b.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stacked.F32s {
		if math.Float32bits(pb.Data.F32s[i]) != math.Float32bits(stacked.F32s[i]) {
			t.Fatalf("F16 widening diverged at elem %d: %g vs %g", i, pb.Data.F32s[i], stacked.F32s[i])
		}
	}
}
