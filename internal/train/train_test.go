package train

import (
	"math"
	"testing"

	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

func tinyClimate() synthetic.ClimateConfig {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 16
	cfg.Width = 16
	return cfg
}

func tinyCosmo() synthetic.CosmoConfig {
	cfg := synthetic.DefaultCosmoConfig()
	cfg.Dim = 8
	return cfg
}

func TestStackData(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2}, 2)
	b := tensor.FromF32([]float32{3, 4}, 2)
	x, err := StackData([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Shape.Equal(tensor.Shape{2, 2}) || x.F32s[3] != 4 {
		t.Errorf("stacked: %v %v", x.Shape, x.F32s)
	}
	// FP16 samples widen to FP32.
	h := tensor.New(tensor.F16, 2)
	h.Set32(0, 1.5)
	x, err = StackData([]*tensor.Tensor{h})
	if err != nil {
		t.Fatal(err)
	}
	if x.DT != tensor.F32 || x.F32s[0] != 1.5 {
		t.Error("FP16 stack did not widen")
	}
	if _, err := StackData(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := StackData([]*tensor.Tensor{a, tensor.New(tensor.F32, 3)}); err == nil {
		t.Error("ragged batch accepted")
	}
}

func TestStackLabels(t *testing.T) {
	a := tensor.New(tensor.I16, 2, 2)
	a.I16s[3] = 7
	y, err := StackLabels([]*tensor.Tensor{a, a})
	if err != nil {
		t.Fatal(err)
	}
	if y.DT != tensor.I16 || !y.Shape.Equal(tensor.Shape{2, 2, 2}) || y.I16s[7] != 7 {
		t.Errorf("labels: %v", y.Shape)
	}
}

func TestDeepCAMLossDecreases(t *testing.T) {
	cfg := Config{Samples: 8, Batch: 2, Steps: 20, Seed: 1, LR: 0.05, Warmup: 4}
	losses, err := DeepCAM(tinyClimate(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 20 {
		t.Fatalf("got %d losses", len(losses))
	}
	first := avg(losses[:5])
	last := avg(losses[15:])
	if last >= first {
		t.Errorf("DeepCAM loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func TestDeepCAMBaseVsDecodedConvergence(t *testing.T) {
	// Fig 6's claim: decoded (lossy FP16) samples give the same convergence
	// behaviour as the base. Same seeds, same schedule; trajectories must
	// track closely.
	clim := tinyClimate()
	cfg := Config{Samples: 8, Batch: 2, Steps: 16, Seed: 3, LR: 0.05, Warmup: 4}
	base, err := DeepCAM(clim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Encoded = true
	dec, err := DeepCAM(clim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Early steps are nearly identical (same init, near-identical inputs);
	// later steps diverge chaotically at the per-step level but the
	// trajectory must stay in the same regime (the paper's "identical
	// convergence behavior" is a plot-resolution statement).
	if d := math.Abs(base[0] - dec[0]); d > 0.05*(math.Abs(base[0])+0.01) {
		t.Errorf("step 0: base %.4f vs decoded %.4f differ at start", base[0], dec[0])
	}
	tail := len(base) - 4
	bTail, dTail := avg(base[tail:]), avg(dec[tail:])
	if math.Abs(bTail-dTail) > 0.5*(math.Abs(bTail)+0.05) {
		t.Errorf("final losses diverged: base %.4f vs decoded %.4f", bTail, dTail)
	}
}

func TestCosmoFlowLossDecreases(t *testing.T) {
	cfg := Config{Samples: 8, Batch: 4, Epochs: 8, Seed: 2, LR: 0.01, Warmup: 2}
	losses, err := CosmoFlow(tinyCosmo(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 8 {
		t.Fatalf("got %d epoch losses", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("CosmoFlow loss did not decrease: %v", losses)
	}
}

func TestCosmoFlowDecodedTracksBase(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 6, Seed: 5, LR: 0.01, Warmup: 2}
	base, err := CosmoFlow(cosmo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Encoded = true
	dec, err := CosmoFlow(cosmo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Final losses must be in the same regime (both converging).
	if dec[len(dec)-1] > 2*base[len(base)-1]+0.05 {
		t.Errorf("decoded diverged: base %v decoded %v", base, dec)
	}
}

func TestDataParallelMatchesSingleRankShapes(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 3, Seed: 7, LR: 0.01, Warmup: 1}
	multi, err := DataParallelCosmoFlow(cosmo, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 3 {
		t.Fatalf("got %d epochs", len(multi))
	}
	// Loss must decrease under data-parallel training too.
	if multi[len(multi)-1] >= multi[0] {
		t.Errorf("data-parallel loss did not decrease: %v", multi)
	}
}

func TestDataParallelValidation(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 4, Batch: 3, Epochs: 1, Seed: 1, LR: 0.01}
	if _, err := DataParallelCosmoFlow(cosmo, cfg, 2); err == nil {
		t.Error("indivisible batch accepted")
	}
	if _, err := DataParallelCosmoFlow(cosmo, cfg, 0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 4, Batch: 2, Epochs: 2, Seed: 11, LR: 0.01}
	a, err := CosmoFlow(cosmo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CosmoFlow(cosmo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic training: %v vs %v", a, b)
		}
	}
}

func avg(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
