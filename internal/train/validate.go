package train

import (
	"fmt"

	"scipp/internal/core"
	"scipp/internal/models"
	"scipp/internal/nn"
	"scipp/internal/pipeline"
	"scipp/internal/synthetic"
)

// Curves holds paired training and validation loss trajectories. §VIII-A:
// "The same behavior is also seen in the loss function of the validation
// samples, which is omitted for brevity" — this driver reproduces the
// omitted measurement.
type Curves struct {
	// Train has one entry per optimizer step (DeepCAM) or epoch (CosmoFlow).
	Train []float64
	// Val has one entry per validation evaluation, aligned with Train.
	Val []float64
}

// evalDeepCAM computes the mean segmentation loss over a held-out loader
// without updating the model.
func evalDeepCAM(model *nn.Sequential, loader *pipeline.Loader) (float64, error) {
	it := loader.Epoch(0)
	defer it.Close()
	var sum float64
	var steps int
	for {
		b, err := it.Next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			break
		}
		x, err := StackData(b.Data)
		if err != nil {
			return 0, err
		}
		NormalizeChannels(x)
		y, err := StackLabels(b.Labels)
		if err != nil {
			return 0, err
		}
		logits := model.Forward(x)
		loss, _ := nn.SoftmaxCrossEntropy2D(logits, y)
		sum += loss
		steps++
	}
	if steps == 0 {
		return 0, fmt.Errorf("train: empty validation set")
	}
	return sum / float64(steps), nil
}

// DeepCAMWithValidation runs the Fig 6 experiment tracking both the
// training loss per step and the loss on a disjoint validation set
// (generated with sample indices after the training range), evaluated every
// evalEvery steps.
func DeepCAMWithValidation(climCfg synthetic.ClimateConfig, cfg Config, valSamples, evalEvery int) (*Curves, error) {
	if valSamples <= 0 || evalEvery <= 0 {
		return nil, fmt.Errorf("train: need positive valSamples and evalEvery")
	}
	enc := cfg.encoding()
	ds, err := core.BuildClimateDataset(climCfg, cfg.Samples, enc)
	if err != nil {
		return nil, err
	}
	// Validation samples use indices beyond the training range, so the two
	// sets are disjoint draws from the same distribution.
	valCfg := climCfg
	valCfg.Seed = climCfg.Seed ^ 0xDEADBEEF
	valDS, err := core.BuildClimateDataset(valCfg, valSamples, enc)
	if err != nil {
		return nil, err
	}
	loader, err := pipeline.New(ds, pipeline.Config{
		Format: core.FormatFor(core.DeepCAM, enc), Batch: cfg.Batch, Shuffle: true, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	valLoader, err := pipeline.New(valDS, pipeline.Config{
		Format: core.FormatFor(core.DeepCAM, enc), Batch: cfg.Batch,
	})
	if err != nil {
		return nil, err
	}
	model, err := models.MiniDeepCAM(climCfg.Channels, climCfg.Height, climCfg.Width)
	if err != nil {
		return nil, err
	}
	model.InitHe(cfg.Seed)
	opt := nn.NewSGD(cfg.LR, 0.9)
	sched := nn.WarmupSchedule{Base: cfg.LR, WarmupSteps: cfg.Warmup}

	curves := &Curves{}
	step := 0
	for epoch := 0; step < cfg.Steps; epoch++ {
		it := loader.Epoch(epoch)
		for step < cfg.Steps {
			b, err := it.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			x, err := StackData(b.Data)
			if err != nil {
				return nil, err
			}
			NormalizeChannels(x)
			y, err := StackLabels(b.Labels)
			if err != nil {
				return nil, err
			}
			model.ZeroGrad()
			logits := model.Forward(x)
			loss, grad := nn.SoftmaxCrossEntropy2D(logits, y)
			model.Backward(grad)
			opt.SetLR(sched.At(step))
			opt.Step(model.Params())
			curves.Train = append(curves.Train, loss)
			step++
			if step%evalEvery == 0 || step == cfg.Steps {
				vl, err := evalDeepCAM(model, valLoader)
				if err != nil {
					return nil, err
				}
				curves.Val = append(curves.Val, vl)
			}
		}
		it.Close()
	}
	return curves, nil
}
