package train

import (
	"errors"
	"fmt"
	"sync"

	"scipp/internal/core"
	"scipp/internal/dist"
	"scipp/internal/fault"
	"scipp/internal/models"
	"scipp/internal/nn"
	"scipp/internal/pipeline"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// ElasticConfig configures the fault-tolerant data-parallel engine: a group
// of synchronous replicas that survives rank failures mid-run. The fault
// model matches internal/dist: fail-stop at collective boundaries — a rank
// crashes (announces Leave) or hangs (never arrives, evicted by deadline)
// instead of joining a step's gradient allreduce, survivors rebuild the ring
// and re-run the interrupted collective.
type ElasticConfig struct {
	// Ranks is the initial replica count; required, > 0.
	Ranks int
	// Timeout is the collective deadline in clock seconds (see
	// dist.Config.Timeout). Zero disables failure detection by deadline;
	// crashes are still detected immediately via Leave.
	Timeout float64
	// SlowFactor flags straggler ranks (see dist.Config.SlowFactor).
	SlowFactor float64
	// RankFaults, when non-nil, injects seeded rank-level faults
	// (crash/hang/slow) through fault.NewRankInjector. Hang faults need a
	// real deadline: set Timeout and use a wall clock, or the run blocks.
	RankFaults *fault.RankConfig
	// Clock drives collective deadlines, straggler EWMAs and injected
	// slow-rank stalls. Nil keeps the run clockless (crash-only faults).
	Clock trace.Clock
	// Source, when non-nil, overrides the run's data path: instead of
	// building a private pipeline.Loader the run draws its batches from
	// this source — typically a dataserve tenant (see NewTenantSource), so
	// concurrent elastic runs share one decoded-sample cache. The source
	// owns schedule determinism: configure it with the same batch size,
	// shuffle seed and drop-last policy the private loader would have used
	// and the run is bit-identical.
	Source BatchSource
}

// ElasticResult is an elastic run's outcome: the loss curve plus the full
// failure record, positioned so it reconciles exactly against the fault
// injector's log.
type ElasticResult struct {
	// Losses is the per-epoch mean global training loss.
	Losses []float64
	// StepLosses is the per-step global loss (each step's batch-weighted
	// mean over the ranks that survived it).
	StepLosses []float64
	// Evictions are the group's eviction records, in order.
	Evictions []dist.Eviction
	// EvictionSteps gives, parallel to Evictions, the global optimizer step
	// during which each eviction was absorbed.
	EvictionSteps []int
	// RankLog is the injector's canonical fault log (nil without faults).
	RankLog []fault.Injection
	// Alive lists the ranks still live at the end of the run.
	Alive []int
	// Generations is the final ring generation (= evictions survived,
	// counting from any ranks already down at start).
	Generations int
	// Stragglers lists the ranks flagged slow when the run ended.
	Stragglers []int
}

// elasticSpec is the per-application half of the engine: model construction
// and the loss closure. Everything else — sharding, fault injection, the
// weighted gradient allreduce, retries, checkpointing — is shared.
type elasticSpec struct {
	app       string
	newModel  func() (*nn.Sequential, error)
	newOpt    func(cfg Config) nn.Optimizer
	normalize bool
	loss      func(m *nn.Sequential, x, y *tensor.Tensor) (float64, *tensor.Tensor)
}

// ElasticDeepCAM trains the segmentation model across ecfg.Ranks elastic
// replicas for cfg.Epochs epochs (the elastic engines are epoch-driven;
// cfg.Steps is ignored).
func ElasticDeepCAM(climCfg synthetic.ClimateConfig, cfg Config, ecfg ElasticConfig) (*ElasticResult, error) {
	built, err := core.BuildClimateDataset(climCfg, cfg.Samples, cfg.encoding())
	if err != nil {
		return nil, err
	}
	spec := elasticSpec{
		app: "deepcam",
		newModel: func() (*nn.Sequential, error) {
			return models.MiniDeepCAM(climCfg.Channels, climCfg.Height, climCfg.Width)
		},
		newOpt:    func(cfg Config) nn.Optimizer { return nn.NewSGD(cfg.LR, 0.9) },
		normalize: true,
		loss: func(m *nn.Sequential, x, y *tensor.Tensor) (float64, *tensor.Tensor) {
			return nn.SoftmaxCrossEntropy2D(m.Forward(x), y)
		},
	}
	return elasticRun(built, core.DeepCAM, cfg, ecfg, spec)
}

// ElasticCosmoFlow trains the regression model across ecfg.Ranks elastic
// replicas for cfg.Epochs epochs.
func ElasticCosmoFlow(cosmoCfg synthetic.CosmoConfig, cfg Config, ecfg ElasticConfig) (*ElasticResult, error) {
	built, err := core.BuildCosmoDataset(cosmoCfg, cfg.Samples, cfg.encoding())
	if err != nil {
		return nil, err
	}
	spec := elasticSpec{
		app:      "cosmoflow",
		newModel: func() (*nn.Sequential, error) { return models.MiniCosmoFlow(cosmoCfg.Dim) },
		newOpt:   func(cfg Config) nn.Optimizer { return nn.NewAdam(cfg.LR) },
		loss: func(m *nn.Sequential, x, y *tensor.Tensor) (float64, *tensor.Tensor) {
			return nn.MSELoss(m.Forward(x), y)
		},
	}
	return elasticRun(built, core.CosmoFlow, cfg, ecfg, spec)
}

func elasticRun(built pipeline.Dataset, app core.App, cfg Config, ecfg ElasticConfig, spec elasticSpec) (*ElasticResult, error) {
	if ecfg.Ranks <= 0 {
		return nil, fmt.Errorf("train: invalid rank count %d", ecfg.Ranks)
	}
	source := ecfg.Source
	if source == nil {
		ds, _ := withFaults(built, cfg)
		loader, err := pipeline.New(ds, pipeline.Config{
			Format:     core.FormatFor(app, cfg.encoding()),
			Batch:      cfg.Batch,
			Shuffle:    true,
			Seed:       cfg.Seed,
			DropLast:   true,
			Cache:      cfg.Cache,
			Resilience: cfg.Resilience,
		})
		if err != nil {
			return nil, err
		}
		source = loaderSource{loader}
	}

	replicas := make([]*nn.Sequential, ecfg.Ranks)
	opts := make([]nn.Optimizer, ecfg.Ranks)
	for r := 0; r < ecfg.Ranks; r++ {
		m, err := spec.newModel()
		if err != nil {
			return nil, err
		}
		m.InitHe(cfg.Seed) // identical init on every replica
		replicas[r] = m
		opts[r] = spec.newOpt(cfg)
	}

	// Resume before building the group: the checkpoint names the ranks that
	// were already lost, and they must start down or the collectives would
	// wait on ghosts. Every replica restores from the same snapshot (weights
	// and optimizer state are identical across ranks by construction).
	var meta CheckpointMeta
	var err error
	for r := 0; r < ecfg.Ranks; r++ {
		meta, err = cfg.resumeInto(spec.app, replicas[r], opts[r])
		if err != nil {
			return nil, err
		}
	}

	group, err := dist.New(dist.Config{
		Ranks:      ecfg.Ranks,
		Clock:      ecfg.Clock,
		Timeout:    ecfg.Timeout,
		SlowFactor: ecfg.SlowFactor,
		Obs:        cfg.Obs,
		Down:       meta.Evicted,
	})
	if err != nil {
		return nil, err
	}
	var inj *fault.RankInjector
	if ecfg.RankFaults != nil {
		rc := *ecfg.RankFaults
		if rc.Clock == nil {
			rc.Clock = ecfg.Clock
		}
		inj = fault.NewRankInjector(rc)
	}
	sched := nn.WarmupSchedule{Base: cfg.LR, WarmupSteps: cfg.Warmup}

	res := &ElasticResult{}
	evSeen := 0
	step := meta.Step
	for epoch := meta.Epoch; epoch < cfg.Epochs; epoch++ {
		it := source.EpochBatches(epoch)
		if it == nil {
			return nil, fmt.Errorf("train: batch source yielded no epoch %d iterator (tenant detached?)", epoch)
		}
		var sum float64
		var steps int
		for {
			b, err := it.Next()
			if err != nil {
				it.Close()
				return nil, err
			}
			if b == nil {
				break
			}
			loss, err := elasticStep(group, replicas, opts, inj, spec, sched, b, step)
			if err != nil {
				it.Close()
				return nil, err
			}
			// Attribute any evictions absorbed during this step.
			for _, ev := range group.Evictions()[evSeen:] {
				res.Evictions = append(res.Evictions, ev)
				res.EvictionSteps = append(res.EvictionSteps, step)
				evSeen++
			}
			res.StepLosses = append(res.StepLosses, loss)
			sum += loss
			steps++
			step++
		}
		it.Close()
		if steps == 0 {
			return nil, fmt.Errorf("train: empty epoch %d", epoch)
		}
		res.Losses = append(res.Losses, sum/float64(steps))
		leader := group.Alive()[0]
		var down []int
		for r := 0; r < ecfg.Ranks; r++ {
			if !group.Live(r) {
				down = append(down, r)
			}
		}
		if err := cfg.saveCheckpoint(spec.app, epoch+1, step, replicas[leader], opts[leader], down); err != nil {
			return nil, err
		}
	}
	res.Alive = group.Alive()
	res.Generations = group.Generation()
	res.Stragglers = group.Stragglers()
	if inj != nil {
		res.RankLog = inj.Log()
	}
	return res, nil
}

// rankOutcome is one rank's result for one step.
type rankOutcome struct {
	loss float64 // global batch-weighted loss after the allreduce
	died bool    // this rank left the group during the step
	err  error   // non-recoverable failure
}

// elasticStep runs one synchronous optimizer step across the live ranks:
// shard the batch, inject any scheduled rank faults, compute local gradients,
// allreduce them sample-weighted, and apply the identical update everywhere.
// Returns the step's global loss from the lowest surviving rank.
func elasticStep(group *dist.Group, replicas []*nn.Sequential, opts []nn.Optimizer,
	inj *fault.RankInjector, spec elasticSpec, sched nn.WarmupSchedule,
	b *pipeline.Batch, step int) (float64, error) {

	alive := group.Alive()
	n := len(b.Data)
	m := len(alive)
	if n < m {
		return 0, fmt.Errorf("train: batch of %d cannot shard over %d ranks", n, m)
	}
	// Contiguous shards over the live ranks in id order: sizes differ by at
	// most one, and the allreduce weights each rank's gradient by its shard
	// size so uneven shards still yield the exact global batch mean.
	base, rem := n/m, n%m
	lr := sched.At(step)

	outs := make([]rankOutcome, len(replicas))
	var wg sync.WaitGroup
	off := 0
	for i, r := range alive {
		size := base
		if i < rem {
			size++
		}
		lo, hi := off, off+size
		off = hi
		wg.Add(1)
		go func(rank, lo, hi int) {
			defer wg.Done()
			outs[rank] = rankStep(group, replicas[rank], opts[rank], inj, spec, b, rank, step, lo, hi, lr)
		}(r, lo, hi)
	}
	wg.Wait()

	for _, r := range alive {
		if outs[r].err != nil {
			return 0, outs[r].err
		}
	}
	for _, r := range alive {
		if !outs[r].died {
			return outs[r].loss, nil
		}
	}
	return 0, fmt.Errorf("train: all ranks lost at step %d", step)
}

// rankStep is one rank's share of a step. The gradient synchronization
// flattens every parameter gradient scaled by the local sample count into a
// single buffer, appends [loss*count, count], and allreduce-sums it: dividing
// by the summed count afterwards gives the exact global batch mean even when
// shard sizes differ or a rank dies mid-step (its samples simply drop out of
// the weighted sum). On a *RankError the local gradients are untouched, so
// the retry refills the buffer and re-runs the collective on the rebuilt
// ring.
func rankStep(group *dist.Group, model *nn.Sequential, opt nn.Optimizer,
	inj *fault.RankInjector, spec elasticSpec, b *pipeline.Batch,
	rank, step, lo, hi int, lr float64) rankOutcome {

	if inj != nil {
		if kind, ok := inj.At(rank, step); ok {
			switch kind {
			case fault.CrashRank:
				group.Leave(rank, "crash")
				return rankOutcome{died: true}
			case fault.HangRank:
				// Never arrive at the collective; the goroutine parks until
				// the group's deadline gives up on this rank.
				<-group.Departed(rank)
				return rankOutcome{died: true}
			}
			// SlowRank already stalled inside At via the injector's clock.
		}
	}

	x, err := StackData(b.Data[lo:hi])
	if err != nil {
		return rankOutcome{err: err}
	}
	if spec.normalize {
		NormalizeChannels(x)
	}
	y, err := StackLabels(b.Labels[lo:hi])
	if err != nil {
		return rankOutcome{err: err}
	}
	model.ZeroGrad()
	loss, grad := spec.loss(model, x, y)
	model.Backward(grad)

	params := model.Params()
	total := 0
	for _, p := range params {
		total += len(p.G)
	}
	buf := make([]float32, total+2)
	w := float32(hi - lo)
	fill := func() {
		o := 0
		for _, p := range params {
			for i, g := range p.G {
				buf[o+i] = g * w
			}
			o += len(p.G)
		}
		buf[total] = float32(loss) * w
		buf[total+1] = w
	}

	// Bounded retry: each *RankError consumes at least one eviction, and the
	// group can only shrink Size()-1 times before the ring is a singleton.
	for attempt := 0; attempt < group.Size(); attempt++ {
		fill()
		err := group.AllReduceSum(rank, buf)
		if err == nil {
			tw := buf[total+1]
			if tw <= 0 {
				return rankOutcome{err: fmt.Errorf("train: rank %d allreduced a non-positive sample count %v", rank, tw)}
			}
			inv := 1 / tw
			o := 0
			for _, p := range params {
				for i := range p.G {
					p.G[i] = buf[o+i] * inv
				}
				o += len(p.G)
			}
			opt.SetLR(lr)
			opt.Step(params)
			return rankOutcome{loss: float64(buf[total] * inv)}
		}
		var re *dist.RankError
		if errors.As(err, &re) {
			if re.Self {
				return rankOutcome{died: true}
			}
			continue // ring rebuilt; re-run the interrupted collective
		}
		return rankOutcome{err: err}
	}
	return rankOutcome{err: fmt.Errorf("train: rank %d exhausted allreduce retries at step %d", rank, step)}
}
