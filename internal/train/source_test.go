package train

import (
	"fmt"
	"sync"
	"testing"

	"scipp/internal/core"
	"scipp/internal/dataserve"
	"scipp/internal/pipeline"
)

// attachCosmoTenant registers the run's dataset with a shared service and
// attaches a tenant whose schedule config mirrors what elasticRun's private
// loader would have used (Batch, Shuffle, Seed, DropLast) — the contract
// NewTenantSource documents for bit-identical batches.
func attachCosmoTenant(t *testing.T, svc *dataserve.Service, name string, cfg Config) *dataserve.Tenant {
	t.Helper()
	cosmo := tinyCosmo()
	built, err := core.BuildCosmoDataset(cosmo, cfg.Samples, cfg.encoding())
	if err != nil {
		t.Fatal(err)
	}
	if svc.Cache(name) == nil {
		err = svc.Register(dataserve.DatasetConfig{
			Name:   name,
			Data:   built,
			Format: core.FormatFor(core.CosmoFlow, cfg.encoding()),
			Cache:  pipeline.CacheConfig{HostMemBytes: 32 << 20},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tn, err := svc.Attach(dataserve.TenantConfig{
		Name:     fmt.Sprintf("job-%s-%d", name, cfg.Seed),
		Dataset:  name,
		Batch:    cfg.Batch,
		Shuffle:  true,
		Seed:     cfg.Seed,
		DropLast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// TestElasticTenantSourceBitIdentical runs the same elastic CosmoFlow
// config twice — once on the default private loader, once drawing batches
// from a dataserve tenant — and requires bit-identical training: every
// epoch loss and step loss must match exactly.
func TestElasticTenantSourceBitIdentical(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 3, Seed: 7, LR: 0.01, Warmup: 1}

	private, err := ElasticCosmoFlow(cosmo, cfg, ElasticConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}

	svc := dataserve.New(dataserve.Config{})
	defer svc.Close()
	tn := attachCosmoTenant(t, svc, "cosmo", cfg)
	shared, err := ElasticCosmoFlow(cosmo, cfg, ElasticConfig{
		Ranks:  2,
		Source: NewTenantSource(tn),
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(shared.Losses) != len(private.Losses) {
		t.Fatalf("epoch count %d != %d", len(shared.Losses), len(private.Losses))
	}
	for e := range private.Losses {
		if shared.Losses[e] != private.Losses[e] {
			t.Errorf("epoch %d loss %v != private %v", e, shared.Losses[e], private.Losses[e])
		}
	}
	if len(shared.StepLosses) != len(private.StepLosses) {
		t.Fatalf("step count %d != %d", len(shared.StepLosses), len(private.StepLosses))
	}
	for s := range private.StepLosses {
		if shared.StepLosses[s] != private.StepLosses[s] {
			t.Errorf("step %d loss %v != private %v", s, shared.StepLosses[s], private.StepLosses[s])
		}
	}

	// The tenant actually fed the run: one full schedule per epoch, all
	// samples served through the shared path.
	st := tn.Stats()
	if want := int64(cfg.Samples * cfg.Epochs); st.Samples != want {
		t.Errorf("tenant served %d samples, want %d", st.Samples, want)
	}
}

// TestElasticTwoTenantsOneService multiplexes two concurrent elastic
// CosmoFlow runs over one shared service: each must train bit-identically
// to its own private-loader twin, and the service must decode each sample
// once — the second job rides the first's decodes.
func TestElasticTwoTenantsOneService(t *testing.T) {
	cosmo := tinyCosmo()
	cfgs := [2]Config{
		{Samples: 8, Batch: 4, Epochs: 2, Seed: 7, LR: 0.01, Warmup: 1},
		{Samples: 8, Batch: 2, Epochs: 2, Seed: 13, LR: 0.02, Warmup: 1},
	}

	var privates [2]*ElasticResult
	for i, cfg := range cfgs {
		res, err := ElasticCosmoFlow(cosmo, cfg, ElasticConfig{Ranks: 2})
		if err != nil {
			t.Fatal(err)
		}
		privates[i] = res
	}

	svc := dataserve.New(dataserve.Config{})
	defer svc.Close()
	var tenants [2]*dataserve.Tenant
	for i, cfg := range cfgs {
		tenants[i] = attachCosmoTenant(t, svc, "cosmo", cfg)
	}

	var shared [2]*ElasticResult
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			shared[i], errs[i] = ElasticCosmoFlow(cosmo, cfg, ElasticConfig{
				Ranks:  2,
				Source: NewTenantSource(tenants[i]),
			})
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	for i := range cfgs {
		for s := range privates[i].StepLosses {
			if shared[i].StepLosses[s] != privates[i].StepLosses[s] {
				t.Fatalf("job %d step %d loss %v != private %v",
					i, s, shared[i].StepLosses[s], privates[i].StepLosses[s])
			}
		}
	}

	// Work sharing across jobs: 8 distinct samples, decoded once each.
	st := svc.Stats()
	if st.Decodes != 8 {
		t.Errorf("service decoded %d samples, want 8 (shared across both jobs)", st.Decodes)
	}
	if st.Dedup != 8 {
		t.Errorf("service dedup %d, want 8 (second job's first touches)", st.Dedup)
	}
}
