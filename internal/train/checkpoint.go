package train

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"scipp/internal/nn"
)

// CheckpointMeta is the training-run position stored alongside an nn
// checkpoint: everything beyond model and optimizer state that a resumed run
// needs to continue bit-identically. Because the loader's shuffle is a pure
// function of (Seed, epoch), the sampler position is fully described by the
// epoch and step counters — there is no hidden iterator state to persist.
type CheckpointMeta struct {
	// App identifies the experiment ("deepcam" or "cosmoflow"); resuming
	// into the wrong run is a typed error, not silent divergence.
	App string
	// Epoch is the number of fully completed dataset traversals.
	Epoch int
	// Step is the number of completed optimizer steps (drives the LR
	// schedule on resume).
	Step int
	// Seed is the run's seed; a resumed run must present the same one or
	// its shuffle schedule would diverge from the checkpointed trajectory.
	Seed uint64
	// Evicted lists ranks lost before this checkpoint (elastic runs); a
	// resumed run starts with these ranks already down.
	Evicted []int
}

func (m CheckpointMeta) attrs() map[string]string {
	a := map[string]string{
		"app":   m.App,
		"epoch": strconv.Itoa(m.Epoch),
		"step":  strconv.Itoa(m.Step),
		"seed":  strconv.FormatUint(m.Seed, 10),
	}
	if len(m.Evicted) > 0 {
		parts := make([]string, len(m.Evicted))
		for i, r := range m.Evicted {
			parts[i] = strconv.Itoa(r)
		}
		a["evicted"] = strings.Join(parts, ",")
	}
	return a
}

func metaFromAttrs(extra map[string]string) (CheckpointMeta, error) {
	var m CheckpointMeta
	m.App = extra["app"]
	if m.App == "" {
		return m, fmt.Errorf("train: checkpoint carries no app attribute")
	}
	var err error
	if m.Epoch, err = strconv.Atoi(extra["epoch"]); err != nil {
		return m, fmt.Errorf("train: bad checkpoint epoch %q", extra["epoch"])
	}
	if m.Step, err = strconv.Atoi(extra["step"]); err != nil {
		return m, fmt.Errorf("train: bad checkpoint step %q", extra["step"])
	}
	if m.Seed, err = strconv.ParseUint(extra["seed"], 10, 64); err != nil {
		return m, fmt.Errorf("train: bad checkpoint seed %q", extra["seed"])
	}
	if s := extra["evicted"]; s != "" {
		for _, part := range strings.Split(s, ",") {
			r, err := strconv.Atoi(part)
			if err != nil {
				return m, fmt.Errorf("train: bad checkpoint evicted list %q", s)
			}
			m.Evicted = append(m.Evicted, r)
		}
	}
	return m, nil
}

// Checkpoint is one epoch-boundary snapshot: the serialized nn checkpoint
// bytes plus the decoded run position.
type Checkpoint struct {
	Meta CheckpointMeta
	Data []byte
}

// CheckpointLog collects a run's snapshots in epoch order. It is safe for
// concurrent use so elastic runs can checkpoint from worker goroutines.
type CheckpointLog struct {
	mu  sync.Mutex
	cps []Checkpoint
}

func (l *CheckpointLog) add(cp Checkpoint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cps = append(l.cps, cp)
}

// Len returns the number of snapshots taken.
func (l *CheckpointLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cps)
}

// Latest returns the most recent snapshot.
func (l *CheckpointLog) Latest() (Checkpoint, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.cps) == 0 {
		return Checkpoint{}, false
	}
	return l.cps[len(l.cps)-1], true
}

// At returns the snapshot taken after `epoch` completed epochs.
func (l *CheckpointLog) At(epoch int) (Checkpoint, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, cp := range l.cps {
		if cp.Meta.Epoch == epoch {
			return cp, true
		}
	}
	return Checkpoint{}, false
}

// All returns every snapshot in epoch order.
func (l *CheckpointLog) All() []Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Checkpoint(nil), l.cps...)
}

// saveCheckpoint snapshots the run at an epoch boundary when the configured
// cadence says so. epoch counts COMPLETED epochs (the first boundary is 1).
func (c Config) saveCheckpoint(app string, epoch, step int, model *nn.Sequential, opt nn.Optimizer, evicted []int) error {
	if c.CheckpointEvery <= 0 {
		return nil
	}
	if c.Checkpoints == nil {
		return fmt.Errorf("train: CheckpointEvery set without a Checkpoints log")
	}
	if epoch%c.CheckpointEvery != 0 {
		return nil
	}
	meta := CheckpointMeta{
		App:     app,
		Epoch:   epoch,
		Step:    step,
		Seed:    c.Seed,
		Evicted: append([]int(nil), evicted...),
	}
	var buf bytes.Buffer
	if err := nn.SaveCheckpoint(&buf, model, opt, meta.attrs()); err != nil {
		return err
	}
	c.Checkpoints.add(Checkpoint{Meta: meta, Data: buf.Bytes()})
	return nil
}

// resumeInto restores cfg.ResumeFrom into model and opt, returning the run
// position to continue from. With no ResumeFrom it is a no-op at (0, 0).
func (c Config) resumeInto(app string, model *nn.Sequential, opt nn.Optimizer) (CheckpointMeta, error) {
	if c.ResumeFrom == nil {
		return CheckpointMeta{App: app}, nil
	}
	extra, err := nn.LoadCheckpoint(bytes.NewReader(c.ResumeFrom.Data), model, opt)
	if err != nil {
		return CheckpointMeta{}, err
	}
	meta, err := metaFromAttrs(extra)
	if err != nil {
		return CheckpointMeta{}, err
	}
	if meta.App != app {
		return CheckpointMeta{}, fmt.Errorf("train: checkpoint is a %q run, cannot resume %q", meta.App, app)
	}
	if meta.Seed != c.Seed {
		return CheckpointMeta{}, fmt.Errorf("train: checkpoint seed %d, run seed %d: shuffle schedules would diverge", meta.Seed, c.Seed)
	}
	return meta, nil
}
