package train

import (
	"math"
	"testing"
)

func TestDeepCAMWithValidation(t *testing.T) {
	clim := tinyClimate()
	cfg := Config{Samples: 8, Batch: 2, Steps: 16, Seed: 4, LR: 0.05, Warmup: 4}
	curves, err := DeepCAMWithValidation(clim, cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves.Train) != 16 {
		t.Fatalf("train points = %d", len(curves.Train))
	}
	if len(curves.Val) != 4 {
		t.Fatalf("val points = %d, want 4 (every 4 steps)", len(curves.Val))
	}
	// Validation loss must improve alongside training loss (same behaviour,
	// §VIII-A).
	if curves.Val[len(curves.Val)-1] >= curves.Val[0] {
		t.Errorf("validation loss did not improve: %v", curves.Val)
	}
}

func TestValidationTracksForDecodedSamples(t *testing.T) {
	clim := tinyClimate()
	cfg := Config{Samples: 8, Batch: 2, Steps: 12, Seed: 6, LR: 0.05, Warmup: 4}
	base, err := DeepCAMWithValidation(clim, cfg, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Encoded = true
	dec, err := DeepCAMWithValidation(clim, cfg, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Final validation losses land in the same regime.
	bf, df := base.Val[len(base.Val)-1], dec.Val[len(dec.Val)-1]
	if math.Abs(bf-df) > 0.5*(math.Abs(bf)+0.05) {
		t.Errorf("validation diverged: base %.4f vs decoded %.4f", bf, df)
	}
}

func TestValidationInputValidation(t *testing.T) {
	clim := tinyClimate()
	cfg := Config{Samples: 4, Batch: 2, Steps: 4, Seed: 1, LR: 0.01}
	if _, err := DeepCAMWithValidation(clim, cfg, 0, 2); err == nil {
		t.Error("zero validation samples accepted")
	}
	if _, err := DeepCAMWithValidation(clim, cfg, 2, 0); err == nil {
		t.Error("zero eval interval accepted")
	}
}
