// Package train drives the convergence experiments of §VIII (Figs 6 and 7):
// real gradient-descent training of the mini DeepCAM and CosmoFlow models on
// base (FP32) versus decoded (FP16 plugin) samples, with the same learning
// schedule and seeds for both sample classes — the paper's methodology of
// changing nothing but the data feeder.
package train

import (
	"fmt"
	"math"
	"sync"

	"scipp/internal/codec"
	"scipp/internal/core"
	"scipp/internal/dist"
	"scipp/internal/fault"
	"scipp/internal/models"
	"scipp/internal/nn"
	"scipp/internal/obs"
	"scipp/internal/pipeline"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
	"scipp/internal/trace"
)

// StackData concatenates per-sample tensors into one batched FP32 tensor
// [N, sampleShape...]. FP16 samples (the decoded plugin output) are widened
// to FP32 at ingest — exactly what autocast mixed precision does with
// half-precision inputs.
func StackData(samples []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("train: empty batch")
	}
	shape := samples[0].Shape
	out := tensor.New(tensor.F32, append(tensor.Shape{len(samples)}, shape...)...)
	stride := shape.Elems()
	for i, s := range samples {
		if !s.Shape.Equal(shape) {
			return nil, fmt.Errorf("train: sample %d shape %v != %v", i, s.Shape, shape)
		}
		f := s.ToF32()
		copy(out.F32s[i*stride:(i+1)*stride], f.F32s)
	}
	return out, nil
}

// StackLabels concatenates per-sample labels, preserving dtype.
func StackLabels(labels []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("train: empty label batch")
	}
	shape := labels[0].Shape
	out := tensor.New(labels[0].DT, append(tensor.Shape{len(labels)}, shape...)...)
	stride := shape.Elems()
	for i, l := range labels {
		if !l.Shape.Equal(shape) || l.DT != labels[0].DT {
			return nil, fmt.Errorf("train: label %d shape/dtype mismatch", i)
		}
		switch l.DT {
		case tensor.F32:
			copy(out.F32s[i*stride:(i+1)*stride], l.F32s)
		case tensor.I16:
			copy(out.I16s[i*stride:(i+1)*stride], l.I16s)
		default:
			return nil, fmt.Errorf("train: unsupported label dtype %v", l.DT)
		}
	}
	return out, nil
}

// NormalizeChannels standardizes a batched [N, C, ...] FP32 tensor per
// channel in place: (x - mean_c) / (std_c + eps). The DeepCAM reference
// pipeline normalizes the 16 physical fields, whose raw magnitudes span
// orders of magnitude (pressure ~1e5 vs humidity ~1e-2). It panics unless x
// is batched FP32 (programmer invariant: batches come from the repo's own
// loaders, whose decoders validate shapes at Open).
func NormalizeChannels(x *tensor.Tensor) {
	if x.DT != tensor.F32 || len(x.Shape) < 3 {
		panic("train: NormalizeChannels needs batched FP32 [N, C, ...]")
	}
	n, c := x.Shape[0], x.Shape[1]
	stride := x.Elems() / (n * c)
	for ci := 0; ci < c; ci++ {
		var sum, sumSq float64
		cnt := 0
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * stride
			for i := 0; i < stride; i++ {
				v := float64(x.F32s[base+i])
				sum += v
				sumSq += v * v
				cnt++
			}
		}
		mean := sum / float64(cnt)
		variance := sumSq/float64(cnt) - mean*mean
		if variance < 0 {
			variance = 0
		}
		inv := float32(1 / (math.Sqrt(variance) + 1e-6))
		m := float32(mean)
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * stride
			for i := 0; i < stride; i++ {
				x.F32s[base+i] = (x.F32s[base+i] - m) * inv
			}
		}
	}
}

// Config configures one convergence run.
type Config struct {
	// Encoded selects the decoded plugin samples (FP16) instead of the
	// baseline FP32 samples.
	Encoded bool
	// Samples is the training-set size.
	Samples int
	// Batch is the minibatch size (the paper uses 2/step for DeepCAM).
	Batch int
	// Steps bounds the total optimizer steps (DeepCAM tracks per step).
	Steps int
	// Epochs bounds full dataset traversals (CosmoFlow tracks per epoch).
	Epochs int
	// Seed drives model init and shuffling; vary per repetition.
	Seed uint64
	// LR is the base learning rate.
	LR float64
	// Warmup is the warmup step count of the schedule.
	Warmup int
	// Resilience is the loader's degraded-mode policy (transient-error
	// retries, bad-sample skip quota). The zero value keeps strict
	// semantics: the first undecodable sample fails the run.
	Resilience pipeline.Resilience
	// Cache, when enabled, gives the loader a storage-hierarchy sample
	// cache (pipeline.CacheConfig; size it by hand or with
	// pipeline.CacheFromNode). The first epoch populates it, later epochs
	// read from it. Caching never changes delivered samples or losses —
	// only where the bytes come from.
	Cache pipeline.CacheConfig
	// Faults, when non-nil, wraps the training dataset in a seeded fault
	// injector — the harness of the robustness experiments (cmd/faultbench).
	Faults *fault.Config
	// Obs, when non-nil, instruments the run end to end: the loader emits
	// stage spans and sample counters, the decode format is wrapped by
	// obs.InstrumentFormat, and the Result carries per-epoch metric deltas.
	Obs *obs.Registry
	// Clock drives observability spans (and loader trace events). Defaults
	// to a wall clock; supply a trace.VirtualClock for exact, reproducible
	// durations in tests.
	Clock trace.Clock
	// CheckpointEvery saves a resumable snapshot into Checkpoints after
	// every N fully completed epochs. Zero disables checkpointing.
	CheckpointEvery int
	// Checkpoints receives the epoch-boundary snapshots; required when
	// CheckpointEvery is set.
	Checkpoints *CheckpointLog
	// ResumeFrom, when non-nil, restores the run from a snapshot — model
	// weights, optimizer state, RNG streams and sampler position — and
	// continues from its epoch boundary bit-identically to a run that was
	// never interrupted.
	ResumeFrom *Checkpoint
}

// obsClock resolves the clock shared by the loader and the instrumented
// format: the configured clock, or one wall clock per run when
// instrumentation is on.
func (c Config) obsClock() trace.Clock {
	if c.Clock != nil || c.Obs == nil {
		return c.Clock
	}
	return trace.NewWallClock()
}

// format returns the decode format for app, instrumented when Obs is set.
func (c Config) format(app core.App, clock trace.Clock) codec.Format {
	f := core.FormatFor(app, c.encoding())
	if c.Obs != nil {
		f = obs.InstrumentFormat(f, c.Obs, clock)
	}
	return f
}

// EpochStats is one epoch's loader error accounting within a run.
type EpochStats struct {
	// Decoded, Retried, Skipped mirror pipeline.Stats for the epoch.
	Decoded, Retried, Skipped int
	// Metrics is the epoch's observability roll-up: the delta of every
	// counter and histogram in Config.Obs across the epoch (zero when Obs
	// is nil). Stage second totals, codec byte counts and error counters
	// for just this epoch read directly from it.
	Metrics obs.Snapshot
}

// Result couples a run's loss curve with its resilience accounting, so
// robustness experiments can assert on sample-loss budgets next to
// convergence.
type Result struct {
	// Losses is the loss curve (per step for DeepCAM, per epoch for
	// CosmoFlow).
	Losses []float64
	// Epochs is the per-epoch loader accounting, in epoch order.
	Epochs []EpochStats
	// Injections is the fault injector's log (nil unless Config.Faults
	// was set).
	Injections []fault.Injection
	// Metrics is the run's final registry snapshot (zero when Config.Obs
	// is nil).
	Metrics obs.Snapshot
}

// Skipped totals the skipped-sample count across the run's epochs.
func (r *Result) Skipped() int {
	n := 0
	for _, e := range r.Epochs {
		n += e.Skipped
	}
	return n
}

// withFaults wraps ds per cfg.Faults, returning the loader-facing dataset
// and the injector (nil when fault injection is off).
func withFaults(ds pipeline.Dataset, cfg Config) (pipeline.Dataset, *fault.Injector) {
	if cfg.Faults == nil {
		return ds, nil
	}
	inj := fault.Wrap(ds, *cfg.Faults)
	return inj, inj
}

// epochRoll accumulates per-epoch EpochStats entries, attaching the metric
// delta observed since the previous epoch boundary when a registry is wired.
type epochRoll struct {
	reg  *obs.Registry
	prev obs.Snapshot
}

func newEpochRoll(reg *obs.Registry) *epochRoll {
	return &epochRoll{reg: reg, prev: reg.Snapshot()}
}

// epoch converts an iterator's accounting into an EpochStats entry and
// advances the roll-up boundary.
func (er *epochRoll) epoch(it *pipeline.Iterator) EpochStats {
	st := it.Stats()
	es := EpochStats{Decoded: st.Decoded, Retried: st.Retried, Skipped: st.Skipped}
	if er.reg != nil {
		cur := er.reg.Snapshot()
		es.Metrics = cur.Delta(er.prev)
		er.prev = cur
	}
	return es
}

func (c Config) encoding() core.Encoding {
	if c.Encoded {
		return core.Plugin
	}
	return core.Baseline
}

// DeepCAM runs the Fig 6 experiment: per-step training loss of the
// segmentation model under cfg. Returns one loss value per optimizer step.
func DeepCAM(climCfg synthetic.ClimateConfig, cfg Config) ([]float64, error) {
	res, err := DeepCAMRun(climCfg, cfg)
	if err != nil {
		return nil, err
	}
	return res.Losses, nil
}

// DeepCAMRun is DeepCAM with full resilience accounting: the Result carries
// per-epoch decoded/retried/skipped counts and the fault injector's log.
func DeepCAMRun(climCfg synthetic.ClimateConfig, cfg Config) (*Result, error) {
	built, err := core.BuildClimateDataset(climCfg, cfg.Samples, cfg.encoding())
	if err != nil {
		return nil, err
	}
	ds, inj := withFaults(built, cfg)
	clock := cfg.obsClock()
	loader, err := pipeline.New(ds, pipeline.Config{
		Format:     cfg.format(core.DeepCAM, clock),
		Batch:      cfg.Batch,
		Shuffle:    true,
		Seed:       cfg.Seed,
		Cache:      cfg.Cache,
		Resilience: cfg.Resilience,
		Clock:      clock,
		Obs:        cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	model, err := models.MiniDeepCAM(climCfg.Channels, climCfg.Height, climCfg.Width)
	if err != nil {
		return nil, err
	}
	model.InitHe(cfg.Seed)
	opt := nn.NewSGD(cfg.LR, 0.9)
	sched := nn.WarmupSchedule{Base: cfg.LR, WarmupSteps: cfg.Warmup}
	meta, err := cfg.resumeInto("deepcam", model, opt)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	roll := newEpochRoll(cfg.Obs)
	step := meta.Step
	for epoch := meta.Epoch; step < cfg.Steps; epoch++ {
		it := loader.Epoch(epoch)
		epochStart := step
		full := false
		for step < cfg.Steps {
			b, err := it.Next()
			if err != nil {
				it.Close()
				return nil, err
			}
			if b == nil {
				full = true
				break
			}
			x, err := StackData(b.Data)
			if err != nil {
				it.Close()
				return nil, err
			}
			NormalizeChannels(x)
			y, err := StackLabels(b.Labels)
			if err != nil {
				it.Close()
				return nil, err
			}
			model.ZeroGrad()
			logits := model.Forward(x)
			loss, grad := nn.SoftmaxCrossEntropy2D(logits, y)
			model.Backward(grad)
			opt.SetLR(sched.At(step))
			opt.Step(model.Params())
			res.Losses = append(res.Losses, loss)
			step++
		}
		res.Epochs = append(res.Epochs, roll.epoch(it))
		it.Close()
		if step == epochStart {
			// Every sample skipped (or the dataset is empty): without this
			// guard a fully degraded epoch would loop forever.
			return nil, fmt.Errorf("train: epoch %d produced no batches", epoch)
		}
		if full {
			// Snapshots are taken only at true epoch boundaries, never at a
			// mid-epoch step cutoff, so a resumed run replays no batch.
			if err := cfg.saveCheckpoint("deepcam", epoch+1, step, model, opt, nil); err != nil {
				return nil, err
			}
		}
	}
	if inj != nil {
		res.Injections = inj.Log()
	}
	if cfg.Obs != nil {
		res.Metrics = cfg.Obs.Snapshot()
	}
	return res, nil
}

// CosmoFlow runs one Fig 7 repetition: per-epoch mean training loss of the
// regression model under cfg. Returns one loss value per epoch.
func CosmoFlow(cosmoCfg synthetic.CosmoConfig, cfg Config) ([]float64, error) {
	res, err := CosmoFlowRun(cosmoCfg, cfg)
	if err != nil {
		return nil, err
	}
	return res.Losses, nil
}

// CosmoFlowRun is CosmoFlow with full resilience accounting: the Result
// carries per-epoch decoded/retried/skipped counts and the fault injector's
// log.
func CosmoFlowRun(cosmoCfg synthetic.CosmoConfig, cfg Config) (*Result, error) {
	built, err := core.BuildCosmoDataset(cosmoCfg, cfg.Samples, cfg.encoding())
	if err != nil {
		return nil, err
	}
	ds, inj := withFaults(built, cfg)
	clock := cfg.obsClock()
	loader, err := pipeline.New(ds, pipeline.Config{
		Format:     cfg.format(core.CosmoFlow, clock),
		Batch:      cfg.Batch,
		Shuffle:    true,
		Seed:       cfg.Seed,
		Cache:      cfg.Cache,
		Resilience: cfg.Resilience,
		Clock:      clock,
		Obs:        cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	model, err := models.MiniCosmoFlow(cosmoCfg.Dim)
	if err != nil {
		return nil, err
	}
	model.InitHe(cfg.Seed)
	opt := nn.NewAdam(cfg.LR)
	sched := nn.WarmupSchedule{Base: cfg.LR, WarmupSteps: cfg.Warmup}
	meta, err := cfg.resumeInto("cosmoflow", model, opt)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	roll := newEpochRoll(cfg.Obs)
	step := meta.Step
	for epoch := meta.Epoch; epoch < cfg.Epochs; epoch++ {
		it := loader.Epoch(epoch)
		var sum float64
		var steps int
		for {
			b, err := it.Next()
			if err != nil {
				it.Close()
				return nil, err
			}
			if b == nil {
				break
			}
			x, err := StackData(b.Data)
			if err != nil {
				it.Close()
				return nil, err
			}
			y, err := StackLabels(b.Labels)
			if err != nil {
				it.Close()
				return nil, err
			}
			model.ZeroGrad()
			pred := model.Forward(x)
			loss, grad := nn.MSELoss(pred, y)
			model.Backward(grad)
			opt.SetLR(sched.At(step))
			opt.Step(model.Params())
			sum += loss
			steps++
			step++
		}
		res.Epochs = append(res.Epochs, roll.epoch(it))
		it.Close()
		if steps == 0 {
			return nil, fmt.Errorf("train: empty epoch %d", epoch)
		}
		res.Losses = append(res.Losses, sum/float64(steps))
		if err := cfg.saveCheckpoint("cosmoflow", epoch+1, step, model, opt, nil); err != nil {
			return nil, err
		}
	}
	if inj != nil {
		res.Injections = inj.Log()
	}
	if cfg.Obs != nil {
		res.Metrics = cfg.Obs.Snapshot()
	}
	return res, nil
}

// DataParallelCosmoFlow trains with `ranks` synchronous data-parallel
// replicas using ring-allreduced gradients (the NCCL/Horovod pattern),
// returning per-epoch mean loss. Every replica holds an identical model;
// each step shards the global batch across ranks.
func DataParallelCosmoFlow(cosmoCfg synthetic.CosmoConfig, cfg Config, ranks int) ([]float64, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("train: invalid rank count %d", ranks)
	}
	if cfg.Batch%ranks != 0 {
		return nil, fmt.Errorf("train: batch %d not divisible by %d ranks", cfg.Batch, ranks)
	}
	built, err := core.BuildCosmoDataset(cosmoCfg, cfg.Samples, cfg.encoding())
	if err != nil {
		return nil, err
	}
	ds, _ := withFaults(built, cfg)
	loader, err := pipeline.New(ds, pipeline.Config{
		Format:     core.FormatFor(core.CosmoFlow, cfg.encoding()),
		Batch:      cfg.Batch,
		Shuffle:    true,
		Seed:       cfg.Seed,
		DropLast:   true,
		Cache:      cfg.Cache,
		Resilience: cfg.Resilience,
	})
	if err != nil {
		return nil, err
	}
	group, err := dist.NewGroup(ranks)
	if err != nil {
		return nil, err
	}
	replicas := make([]*nn.Sequential, ranks)
	opts := make([]*nn.Adam, ranks)
	for r := 0; r < ranks; r++ {
		m, err := models.MiniCosmoFlow(cosmoCfg.Dim)
		if err != nil {
			return nil, err
		}
		m.InitHe(cfg.Seed) // identical init on every replica
		replicas[r] = m
		opts[r] = nn.NewAdam(cfg.LR)
	}
	shard := cfg.Batch / ranks

	var epochLosses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		it := loader.Epoch(epoch)
		var sum float64
		var steps int
		for {
			b, err := it.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			partLoss := make([]float64, ranks)
			rankErr := make([]error, ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					m := replicas[rank]
					lo, hi := rank*shard, (rank+1)*shard
					x, _ := StackData(b.Data[lo:hi])
					y, _ := StackLabels(b.Labels[lo:hi])
					m.ZeroGrad()
					pred := m.Forward(x)
					loss, grad := nn.MSELoss(pred, y)
					partLoss[rank] = loss
					m.Backward(grad)
					// Synchronize gradients: mean across replicas.
					for _, p := range m.Params() {
						if err := group.AllReduceMean(rank, p.G); err != nil {
							rankErr[rank] = err
							return
						}
					}
					opts[rank].Step(m.Params())
				}(r)
			}
			wg.Wait()
			for _, err := range rankErr {
				if err != nil {
					return nil, err
				}
			}
			var l float64
			for _, pl := range partLoss {
				l += pl
			}
			sum += l / float64(ranks)
			steps++
		}
		if steps == 0 {
			return nil, fmt.Errorf("train: empty epoch %d", epoch)
		}
		epochLosses = append(epochLosses, sum/float64(steps))
	}
	return epochLosses, nil
}
