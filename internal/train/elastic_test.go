package train

import (
	"bytes"
	"testing"

	"scipp/internal/fault"
	"scipp/internal/trace"
)

func TestCosmoFlowCheckpointResumeBitIdentical(t *testing.T) {
	cosmo := tinyCosmo()
	full := Config{Samples: 8, Batch: 4, Epochs: 4, Seed: 9, LR: 0.01, Warmup: 2,
		CheckpointEvery: 2, Checkpoints: &CheckpointLog{}}
	a, err := CosmoFlowRun(cosmo, full)
	if err != nil {
		t.Fatal(err)
	}
	if full.Checkpoints.Len() != 2 {
		t.Fatalf("expected checkpoints after epochs 2 and 4, got %d", full.Checkpoints.Len())
	}
	cp, ok := full.Checkpoints.At(2)
	if !ok {
		t.Fatal("no epoch-2 checkpoint")
	}
	if cp.Meta.Step != 4 || cp.Meta.App != "cosmoflow" || cp.Meta.Seed != 9 {
		t.Fatalf("checkpoint meta %+v", cp.Meta)
	}

	res := full
	res.Checkpoints = &CheckpointLog{}
	res.ResumeFrom = &cp
	b, err := CosmoFlowRun(cosmo, res)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Losses[2:]
	if len(b.Losses) != len(want) {
		t.Fatalf("resumed run produced %d epoch losses, want %d", len(b.Losses), len(want))
	}
	for i := range want {
		if b.Losses[i] != want[i] {
			t.Errorf("epoch %d: resumed loss %v != uninterrupted %v", i+2, b.Losses[i], want[i])
		}
	}
	// The resumed run's final snapshot must be byte-identical to the
	// uninterrupted run's: weights, optimizer state and counters all agree.
	fa, _ := full.Checkpoints.At(4)
	fb, ok := res.Checkpoints.At(4)
	if !ok {
		t.Fatal("resumed run saved no epoch-4 checkpoint")
	}
	if !bytes.Equal(fa.Data, fb.Data) {
		t.Error("final checkpoints differ between resumed and uninterrupted runs")
	}
}

func TestDeepCAMCheckpointResumeBitIdentical(t *testing.T) {
	clim := tinyClimate()
	// 8 samples / batch 2 = 4 steps per epoch; 8 steps = 2 full epochs.
	full := Config{Samples: 8, Batch: 2, Steps: 8, Seed: 4, LR: 0.05, Warmup: 2,
		CheckpointEvery: 1, Checkpoints: &CheckpointLog{}}
	a, err := DeepCAMRun(clim, full)
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := full.Checkpoints.At(1)
	if !ok {
		t.Fatal("no epoch-1 checkpoint")
	}
	if cp.Meta.Step != 4 || cp.Meta.App != "deepcam" {
		t.Fatalf("checkpoint meta %+v", cp.Meta)
	}
	res := full
	res.Checkpoints = &CheckpointLog{}
	res.ResumeFrom = &cp
	b, err := DeepCAMRun(clim, res)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Losses[4:]
	if len(b.Losses) != len(want) {
		t.Fatalf("resumed run produced %d step losses, want %d", len(b.Losses), len(want))
	}
	for i := range want {
		if b.Losses[i] != want[i] {
			t.Errorf("step %d: resumed loss %v != uninterrupted %v", i+4, b.Losses[i], want[i])
		}
	}
}

func TestCheckpointResumeValidation(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 4, Batch: 2, Epochs: 1, Seed: 3, LR: 0.01,
		CheckpointEvery: 1, Checkpoints: &CheckpointLog{}}
	if _, err := CosmoFlowRun(cosmo, cfg); err != nil {
		t.Fatal(err)
	}
	cp, _ := cfg.Checkpoints.Latest()

	wrongSeed := cfg
	wrongSeed.Seed = 99
	wrongSeed.Epochs = 2
	wrongSeed.ResumeFrom = &cp
	if _, err := CosmoFlowRun(cosmo, wrongSeed); err == nil {
		t.Error("resume with a different seed accepted")
	}
	wrongApp := Config{Samples: 4, Batch: 2, Steps: 2, Seed: 3, LR: 0.01, ResumeFrom: &cp}
	if _, err := DeepCAMRun(tinyClimate(), wrongApp); err == nil {
		t.Error("cosmoflow checkpoint accepted by a deepcam run")
	}
	noLog := cfg
	noLog.Checkpoints = nil
	if _, err := CosmoFlowRun(cosmo, noLog); err == nil {
		t.Error("CheckpointEvery without a log accepted")
	}
}

func TestElasticNoFaultsConverges(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 4, Seed: 7, LR: 0.01, Warmup: 1}
	res, err := ElasticCosmoFlow(cosmo, cfg, ElasticConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 4 || len(res.StepLosses) != 8 {
		t.Fatalf("got %d epoch / %d step losses", len(res.Losses), len(res.StepLosses))
	}
	if res.Losses[3] >= res.Losses[0] {
		t.Errorf("elastic loss did not decrease: %v", res.Losses)
	}
	if len(res.Evictions) != 0 || res.Generations != 0 {
		t.Errorf("fault-free run recorded evictions: %+v", res.Evictions)
	}
	if len(res.Alive) != 2 {
		t.Errorf("alive = %v", res.Alive)
	}
}

// TestElasticCrashAcceptance is the issue's acceptance scenario: a seeded
// fault kills rank 1 at a chosen allreduce step; the surviving ranks finish
// the epoch on a rebuilt ring, the Result's eviction record reconciles
// exactly against the injector log, and a run resumed from an epoch-boundary
// checkpoint matches the uninterrupted (faulted) run bit for bit.
func TestElasticCrashAcceptance(t *testing.T) {
	cosmo := tinyCosmo()
	vc := &trace.VirtualClock{}
	cfg := Config{Samples: 8, Batch: 4, Epochs: 3, Seed: 13, LR: 0.01, Warmup: 1,
		CheckpointEvery: 1, Checkpoints: &CheckpointLog{}}
	ecfg := ElasticConfig{
		Ranks:      3,
		Clock:      vc,
		RankFaults: &fault.RankConfig{CrashAt: map[int]int{1: 1}},
	}
	a, err := ElasticCosmoFlow(cosmo, cfg, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	// Survivors finished every epoch: 2 steps per epoch, 3 epochs.
	if len(a.StepLosses) != 6 || len(a.Losses) != 3 {
		t.Fatalf("got %d step / %d epoch losses", len(a.StepLosses), len(a.Losses))
	}
	if got := a.Alive; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("alive = %v, want [0 2]", got)
	}
	if a.Generations != 1 {
		t.Errorf("generation = %d, want 1", a.Generations)
	}
	// Eviction record reconciles exactly against the injector log.
	if len(a.Evictions) != 1 || len(a.RankLog) != 1 {
		t.Fatalf("evictions %+v, rank log %+v", a.Evictions, a.RankLog)
	}
	ev, inj := a.Evictions[0], a.RankLog[0]
	if ev.Rank != 1 || ev.Reason != "crash" || ev.Gen != 0 {
		t.Errorf("eviction %+v", ev)
	}
	if inj.Kind != fault.CrashRank || inj.Rank != 1 || inj.Step != 1 {
		t.Errorf("injection %+v", inj)
	}
	if a.EvictionSteps[0] != inj.Step {
		t.Errorf("eviction absorbed at step %d, injected at step %d", a.EvictionSteps[0], inj.Step)
	}

	// Resume from the epoch-2 checkpoint: rank 1 starts down, and the final
	// losses and final checkpoint bytes match the uninterrupted run exactly.
	cp, ok := cfg.Checkpoints.At(2)
	if !ok {
		t.Fatal("no epoch-2 checkpoint")
	}
	if len(cp.Meta.Evicted) != 1 || cp.Meta.Evicted[0] != 1 {
		t.Fatalf("checkpoint meta carries evicted %v, want [1]", cp.Meta.Evicted)
	}
	res := cfg
	res.Checkpoints = &CheckpointLog{}
	res.ResumeFrom = &cp
	b, err := ElasticCosmoFlow(cosmo, res, ElasticConfig{Ranks: 3, Clock: &trace.VirtualClock{},
		RankFaults: &fault.RankConfig{CrashAt: map[int]int{1: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Evictions) != 0 || len(b.RankLog) != 0 {
		t.Errorf("resumed run re-injected faults: %+v %+v", b.Evictions, b.RankLog)
	}
	if got := b.Alive; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("resumed alive = %v, want [0 2]", got)
	}
	if len(b.Losses) != 1 || b.Losses[0] != a.Losses[2] {
		t.Errorf("resumed final loss %v != uninterrupted %v (bit-for-bit)", b.Losses, a.Losses[2])
	}
	for i, sl := range b.StepLosses {
		if sl != a.StepLosses[4+i] {
			t.Errorf("resumed step loss %d: %v != %v", i, sl, a.StepLosses[4+i])
		}
	}
	fa, _ := cfg.Checkpoints.At(3)
	fb, ok := res.Checkpoints.At(3)
	if !ok {
		t.Fatal("resumed run saved no final checkpoint")
	}
	if !bytes.Equal(fa.Data, fb.Data) {
		t.Error("final checkpoints differ between resumed and uninterrupted runs")
	}
}

func TestElasticCrashReinjectedAfterResume(t *testing.T) {
	// The crash lands AFTER the checkpoint epoch: the resumed run must
	// re-inject it at the same step and converge to the same trajectory.
	cosmo := tinyCosmo()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 3, Seed: 21, LR: 0.01, Warmup: 1,
		CheckpointEvery: 1, Checkpoints: &CheckpointLog{}}
	faults := func() *fault.RankConfig { return &fault.RankConfig{CrashAt: map[int]int{2: 3}} }
	a, err := ElasticCosmoFlow(cosmo, cfg, ElasticConfig{Ranks: 3, RankFaults: faults()})
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := cfg.Checkpoints.At(1) // before the step-3 crash
	if !ok {
		t.Fatal("no epoch-1 checkpoint")
	}
	if len(cp.Meta.Evicted) != 0 {
		t.Fatalf("pre-crash checkpoint lists evicted %v", cp.Meta.Evicted)
	}
	res := cfg
	res.Checkpoints = &CheckpointLog{}
	res.ResumeFrom = &cp
	b, err := ElasticCosmoFlow(cosmo, res, ElasticConfig{Ranks: 3, RankFaults: faults()})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.RankLog) != 1 || b.RankLog[0].Step != 3 || b.RankLog[0].Rank != 2 {
		t.Fatalf("resumed run injected %+v, want crash of rank 2 at step 3", b.RankLog)
	}
	if len(b.Evictions) != 1 || b.Evictions[0].Rank != 2 {
		t.Fatalf("resumed evictions %+v", b.Evictions)
	}
	for i, l := range b.Losses {
		if l != a.Losses[1+i] {
			t.Errorf("epoch %d: resumed loss %v != %v", 1+i, l, a.Losses[1+i])
		}
	}
}

func TestElasticHangEvictedByDeadline(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 2, Seed: 17, LR: 0.01, Warmup: 1}
	// The deadline must comfortably exceed inter-rank arrival skew (uneven
	// shards mean unequal compute time per step), especially under -race.
	ecfg := ElasticConfig{
		Ranks:      3,
		Clock:      trace.NewWallClock(),
		Timeout:    0.5,
		RankFaults: &fault.RankConfig{HangAt: map[int]int{2: 1}},
	}
	res, err := ElasticCosmoFlow(cosmo, cfg, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions %+v", res.Evictions)
	}
	ev := res.Evictions[0]
	if ev.Rank != 2 || ev.Reason != "timeout" {
		t.Errorf("eviction %+v, want rank 2 by timeout", ev)
	}
	if len(res.RankLog) != 1 || res.RankLog[0].Kind != fault.HangRank || res.RankLog[0].Step != 1 {
		t.Errorf("rank log %+v", res.RankLog)
	}
	if res.EvictionSteps[0] != 1 {
		t.Errorf("eviction absorbed at step %d, want 1", res.EvictionSteps[0])
	}
	if got := res.Alive; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("alive = %v", got)
	}
	if len(res.Losses) != 2 {
		t.Errorf("survivors did not finish both epochs: %v", res.Losses)
	}
}

func TestElasticSlowRankFlagsStraggler(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 1, Seed: 19, LR: 0.01, Warmup: 1}
	// Stall rank 1 for 500ms at the final step (step 1, the first arrival
	// with a measurable step time): its EWMA lands far above the fastest
	// rank's even with race-detector overhead, and the run ends flagged.
	ecfg := ElasticConfig{
		Ranks:      2,
		Clock:      trace.NewWallClock(),
		SlowFactor: 3,
		RankFaults: &fault.RankConfig{SlowAt: map[int]int{1: 1}, SlowSeconds: 0.5},
	}
	res, err := ElasticCosmoFlow(cosmo, cfg, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 0 {
		t.Fatalf("slow rank was evicted: %+v", res.Evictions)
	}
	if len(res.RankLog) != 1 || res.RankLog[0].Kind != fault.SlowRank {
		t.Fatalf("rank log %+v", res.RankLog)
	}
	found := false
	for _, r := range res.Stragglers {
		if r == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("rank 1 not flagged: stragglers = %v", res.Stragglers)
	}
}

func TestElasticDeepCAMSurvivesCrash(t *testing.T) {
	clim := tinyClimate()
	cfg := Config{Samples: 8, Batch: 4, Epochs: 2, Seed: 23, LR: 0.05, Warmup: 1}
	res, err := ElasticDeepCAM(clim, cfg, ElasticConfig{
		Ranks:      2,
		RankFaults: &fault.RankConfig{CrashAt: map[int]int{0: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 1 || res.Evictions[0].Rank != 0 {
		t.Fatalf("evictions %+v", res.Evictions)
	}
	if got := res.Alive; len(got) != 1 || got[0] != 1 {
		t.Errorf("alive = %v, want [1]", got)
	}
	if len(res.Losses) != 2 {
		t.Errorf("survivor did not finish: %v", res.Losses)
	}
}

func TestElasticValidation(t *testing.T) {
	cosmo := tinyCosmo()
	cfg := Config{Samples: 4, Batch: 2, Epochs: 1, Seed: 1, LR: 0.01}
	if _, err := ElasticCosmoFlow(cosmo, cfg, ElasticConfig{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	// A batch smaller than the live rank count cannot shard.
	if _, err := ElasticCosmoFlow(cosmo, cfg, ElasticConfig{Ranks: 3}); err == nil {
		t.Error("unshardable batch accepted")
	}
}
