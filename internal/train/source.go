package train

import (
	"scipp/internal/dataserve"
	"scipp/internal/pipeline"
)

// BatchIter is one epoch's batch stream: the slice of pipeline.Iterator's
// contract the training loops consume. Next returns (nil, nil) at a clean
// end of epoch; Close aborts early without leaking.
type BatchIter interface {
	Next() (*pipeline.Batch, error)
	Close()
}

// BatchSource supplies epoch iterators — either a private pipeline.Loader
// (the default) or a tenant of a shared dataserve.Service, so several
// elastic runs can multiplex one decoded-sample cache. EpochBatches may
// return nil when the source has been torn down (e.g. a detached tenant).
type BatchSource interface {
	EpochBatches(epoch int) BatchIter
}

// loaderSource adapts a private pipeline.Loader to BatchSource.
type loaderSource struct{ l *pipeline.Loader }

func (s loaderSource) EpochBatches(epoch int) BatchIter { return s.l.Epoch(epoch) }

// tenantSource adapts a dataserve tenant to BatchSource.
type tenantSource struct{ t *dataserve.Tenant }

func (s tenantSource) EpochBatches(epoch int) BatchIter {
	it := s.t.Epoch(epoch)
	if it == nil {
		return nil // detached: the run fails loudly instead of hanging
	}
	return it
}

// NewTenantSource wires a dataserve tenant into the elastic engines: set
// ElasticConfig.Source to the result and the run draws its batches from
// the shared service instead of building a private loader. The tenant's
// schedule config (Batch, Shuffle, Seed, DropLast) must match what the
// run would have used privately for the batches to be bit-identical.
func NewTenantSource(t *dataserve.Tenant) BatchSource { return tenantSource{t} }
