package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file builds the module-local call graph behind the hot-path rules.
// Roots are functions annotated with a
//
//	//scipp:hotpath
//
// doc directive — the per-sample loops of the pipeline (stage Process
// bodies, Iterator.Next, the pool runner), the codec decode entry points,
// and the simulated device's execute path. Hotness propagates through
// static, module-internal call edges, with three deliberate stops:
//
//   - dynamic dispatch: a call through an interface (or a function value)
//     has no static callee; hot implementations carry their own annotation
//     instead (each stage's Process is annotated, not the Stage interface);
//   - pool methods: calls whose receiver is a pool type (a named type whose
//     name contains "Pool", including sync.Pool) are the sanctioned
//     allocator — the freelist hit IS the discipline, so what a pool does
//     internally is not hot;
//   - error-dominated sites: calls only reachable under a condition that
//     mentions an error value are the cold failure path (error rendering,
//     accounting, teardown), not the per-sample loop.
//
// The loader type-checks the whole module through one shared importer
// cache, so a *types.Func seen from an importing package is the same object
// as its definition — function identity holds module-wide and the graph
// crosses package boundaries for free.

// Module is the module-wide view handed to every analysis pass: the loaded
// packages plus the hot-path call graph over them.
type Module struct {
	funcs map[*types.Func]*funcNode
	// hotVia maps each hot-reachable function to the annotated root it was
	// reached from (itself, for roots) — context for diagnostics.
	hotVia map[*types.Func]*types.Func
}

// funcNode is one module function in the call graph.
type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	root  bool
	calls []callEdge
}

// callEdge is one static call site.
type callEdge struct {
	callee       *types.Func
	errDominated bool
}

// hotPathDirective is the doc-comment directive marking call-graph roots.
const hotPathDirective = "//scipp:hotpath"

// BuildModule constructs the call graph over pkgs and propagates hot-path
// reachability from the //scipp:hotpath roots.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		funcs:  make(map[*types.Func]*funcNode),
		hotVia: make(map[*types.Func]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{fn: fn, decl: fd, root: hasDirective(fd.Doc, hotPathDirective)}
				collectCalls(pkg.Info, fd.Body, false, &node.calls)
				m.funcs[fn] = node
			}
		}
	}
	// BFS from the roots through non-error-dominated static edges.
	var queue []*types.Func
	for fn, node := range m.funcs {
		if node.root {
			m.hotVia[fn] = fn
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := m.hotVia[fn]
		for _, e := range m.funcs[fn].calls {
			if e.errDominated {
				continue
			}
			callee := m.funcs[e.callee]
			if callee == nil { // outside the module
				continue
			}
			if _, seen := m.hotVia[e.callee]; seen {
				continue
			}
			m.hotVia[e.callee] = root
			queue = append(queue, e.callee)
		}
	}
	return m
}

// Hot reports whether fn is hot-path reachable, and if so, from which
// annotated root.
func (m *Module) Hot(fn *types.Func) (*types.Func, bool) {
	if m == nil || fn == nil {
		return nil, false
	}
	root, ok := m.hotVia[fn]
	return root, ok
}

// HotDecl is Hot keyed by a declaration's name ident, the form analyzers
// have in hand while walking files.
func (m *Module) HotDecl(info *types.Info, fd *ast.FuncDecl) (*types.Func, bool) {
	if m == nil || fd == nil {
		return nil, false
	}
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return m.Hot(fn)
}

// hasDirective reports whether the comment group contains the directive as
// a standalone comment line. Directives are not part of CommentGroup.Text,
// so the raw list is scanned.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// collectCalls gathers the static call edges under n. errDom tracks whether
// the walk is inside a branch whose condition mentions an error value.
func collectCalls(info *types.Info, n ast.Node, errDom bool, out *[]callEdge) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		if n.Init != nil {
			collectCalls(info, n.Init, errDom, out)
		}
		collectCalls(info, n.Cond, errDom, out)
		branchDom := errDom || mentionsError(info, n.Cond)
		collectCalls(info, n.Body, branchDom, out)
		if n.Else != nil {
			collectCalls(info, n.Else, branchDom, out)
		}
		return
	case *ast.CallExpr:
		if callee := staticCallee(info, n); callee != nil && !isPoolMethod(callee) {
			*out = append(*out, callEdge{callee: callee, errDominated: errDom})
		}
	}
	for _, child := range childNodes(n) {
		collectCalls(info, child, errDom, out)
	}
}

// childNodes returns n's direct children (one-level ast.Inspect).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	root := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if root {
			root = false
			return true // descend one level from n itself
		}
		out = append(out, c)
		return false // do not descend further; caller recurses
	})
	return out
}

// staticCallee resolves a call to its compile-time *types.Func target, or
// nil for dynamic calls: interface-method dispatch, calls through function
// values, builtins, and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel, ok := info.Selections[fun]; ok {
			// A method call: dispatch is static only on concrete receivers.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		return fn
	}
	return nil
}

// isPoolMethod reports whether fn is a method on a pool type — a named
// receiver type whose name contains "Pool" (SlabPool, sync.Pool, ...). Pool
// methods are the recognized allocator: hotness does not propagate into
// them, and hotalloc treats their results as pooled memory.
func isPoolMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isPoolType(sig.Recv().Type())
}

// isPoolType reports whether t (possibly behind pointers) is a named type
// whose name contains "Pool".
func isPoolType(t types.Type) bool {
	for {
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(named.Obj().Name(), "Pool")
}
