package analysis

import "go/ast"

// WorkerGuard closes the supervision loophole in the staged pipeline: every
// goroutine launched in scipp/internal/pipeline must go through
// StageSupervisor.Go, which fences it with panic recovery and converts an
// escaped panic into a clean typed epoch abort. A bare `go` statement
// anywhere else in the package creates a goroutine whose panic would kill
// the process — or whose silent death would wedge the epoch — outside the
// supervisor's restart accounting. The only `go` statements allowed are
// therefore inside methods with a StageSupervisor receiver (the launcher
// itself). Test files are exempt (the loader skips them).
var WorkerGuard = &Analyzer{
	Name: "workerguard",
	Doc:  "flag go statements in internal/pipeline outside StageSupervisor methods",
	Run:  runWorkerGuard,
}

func runWorkerGuard(pass *Pass) {
	if pass.Path != "scipp/internal/pipeline" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if receiverTypeName(fn) == "StageSupervisor" {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(Error, g.Pos(),
						"goroutine launched outside the stage supervisor: use StageSupervisor.Go so panics are recovered and restarts accounted")
				}
				return true
			})
		}
	}
}

// receiverTypeName returns the bare receiver type name of a method ("" for
// plain functions), unwrapping a pointer receiver.
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
