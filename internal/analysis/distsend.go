package analysis

import (
	"go/ast"
)

// DistSend enforces the communicator's abort discipline: every channel send
// in scipp/internal/dist must sit in a select that also has an escape case —
// a receive (abort/deadline channel) or a default. A bare send in the
// communicator can block forever once a peer is evicted mid-collective,
// wedging every survivor of the very failure the elastic layer exists to
// absorb. The concurrency analyzer's loop rule is narrower (loops only);
// this one covers every send in the package.
var DistSend = &Analyzer{
	Name: "distsend",
	Doc:  "flag channel sends in internal/dist not guarded by a select with an abort/deadline case",
	Run:  runDistSend,
}

func runDistSend(pass *Pass) {
	if pass.Path != "scipp/internal/dist" {
		return
	}
	reportUnguardedSends(pass,
		"channel send in internal/dist without an abort escape: use select { case ch <- v: case <-abort: }")
}

// reportUnguardedSends flags every channel send in the pass's files that is
// not the comm of a select clause whose select also offers an escape (a
// receive case or a default). Shared by the distsend and stagesend rules.
func reportUnguardedSends(pass *Pass, msg string) {
	for _, f := range pass.Files {
		// First pass: mark the sends that are the comm of a select clause
		// whose select also offers an escape (receive case or default).
		guarded := make(map[*ast.SendStmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			var sends []*ast.SendStmt
			escape := false
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				switch comm := cc.Comm.(type) {
				case nil: // default: the send cannot block
					escape = true
				case *ast.SendStmt:
					sends = append(sends, comm)
				default: // a receive clause: the abort/deadline escape
					escape = true
				}
			}
			if escape {
				for _, s := range sends {
					guarded[s] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !guarded[send] {
				pass.Reportf(Error, send.Pos(), "%s", msg)
			}
			return true
		})
	}
}
