package analysis

// DistSend enforces the communicator's abort discipline: every channel send
// in scipp/internal/dist must sit in a select that also has an escape case —
// a receive (abort/deadline channel) or a default. A bare send in the
// communicator can block forever once a peer is evicted mid-collective,
// wedging every survivor of the very failure the elastic layer exists to
// absorb. The concurrency analyzer's loop rule is narrower (loops only);
// this one covers every send in the package.
var DistSend = &Analyzer{
	Name: "distsend",
	Doc:  "flag channel sends in internal/dist not guarded by a select with an abort/deadline case",
	Run:  runDistSend,
}

func runDistSend(pass *Pass) {
	if pass.Path != "scipp/internal/dist" {
		return
	}
	reportUnguardedSends(pass,
		"channel send in internal/dist without an abort escape: use select { case ch <- v: case <-abort: }")
}
