package analysis

import (
	"go/ast"
	"go/types"
)

// UncheckedError flags discarded error returns: bare call statements whose
// result tuple contains an error, and assignments that blank every result of
// an error-returning call. Fire-and-forget errors on the data path are how a
// truncated shard trains silently on partial data.
var UncheckedError = &Analyzer{
	Name: "uncheckederr",
	Doc:  "flag call statements and blank assignments that discard an error result",
	Run:  runUncheckedError,
}

func runUncheckedError(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// defer f.Close() / go worker() are established idioms;
				// their errors are out of reach by construction.
				return false
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if tupleHasError(callResults(pass.Info, call)) && !errExempt(pass, call) {
					pass.Reportf(Error, call.Pos(),
						"result of %s contains an unchecked error: handle it, or assign to _ with a //lint:ignore reason",
						exprString(pass.Fset, call.Fun))
				}
			case *ast.AssignStmt:
				checkBlankedCall(pass, n)
			}
			return true
		})
	}
}

// checkBlankedCall flags `_ = f()` / `_, _ = f()` where f returns an error.
func checkBlankedCall(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return
		}
	}
	if tupleHasError(callResults(pass.Info, call)) && !errExempt(pass, call) {
		pass.Reportf(Error, assign.Pos(),
			"error from %s discarded with _: handle it, or keep the blank with a //lint:ignore reason",
			exprString(pass.Fset, call.Fun))
	}
}

// errExempt lists calls whose error results are unfailing or conventionally
// ignored: fmt printers to the process's own stdout/stderr, and the
// never-failing in-memory writers.
func errExempt(pass *Pass, call *ast.CallExpr) bool {
	for _, name := range []string{"Print", "Printf", "Println"} {
		if pkgFunc(pass.Info, call, "fmt", name) {
			return true
		}
	}
	for _, name := range []string{"Fprint", "Fprintf", "Fprintln"} {
		if pkgFunc(pass.Info, call, "fmt", name) && len(call.Args) > 0 &&
			(isStdStream(pass, call.Args[0]) || isMemWriter(pass, call.Args[0])) {
			return true
		}
	}
	// Methods on types documented never to return a write error.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if named, ok := derefType(s.Recv()).(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil {
					switch obj.Pkg().Path() + "." + obj.Name() {
					case "strings.Builder", "bytes.Buffer", "hash/crc32.digest":
						return true
					}
				}
			}
		}
	}
	return false
}

// isMemWriter matches expressions whose static type is one of the
// never-failing in-memory writers.
func isMemWriter(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	named, ok := derefType(tv.Type).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream matches os.Stdout / os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	pn := usesPackage(pass.Info, sel.X)
	return pn != nil && pn.Imported().Path() == "os"
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
