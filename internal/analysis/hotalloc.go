package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags per-sample heap allocation in hot-path-reachable functions
// — the code the //scipp:hotpath call graph proves runs for every sample of
// every epoch. An allocation that is invisible in a correctness test
// multiplies into gigabytes per epoch at training scale (the cached-epoch
// benchmark's allocs/op is the regression gate for the same discipline at
// runtime). Flagged forms:
//
//   - make(...) and new(...): fresh heap memory per call;
//   - var declarations of bytes.Buffer / strings.Builder: growing scratch;
//   - append onto a locally-fresh slice (declared nil or empty): growth
//     reallocates per sample.
//
// Sanctioned allocators are exempt: memory drawn from a pool type (a named
// type containing "Pool") is the freelist discipline this rule exists to
// steer code toward. Error-dominated code — statements under a condition
// that mentions an error value — is the cold failure path and is exempt;
// appends onto parameters, struct fields, or pool-backed slices have
// unknown or pooled provenance and are not flagged.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocation in //scipp:hotpath-reachable functions outside recognized pools",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root, hot := pass.Module.HotDecl(pass.Info, fd)
			if !hot {
				continue
			}
			via := ""
			if root != nil && root.Name() != fd.Name.Name {
				via = " (hot via //scipp:hotpath root " + root.Name() + ")"
			} else {
				via = " (//scipp:hotpath)"
			}
			fresh := freshSlices(pass.Info, fd.Body)
			scanHotAlloc(pass, fd.Body, false, fresh, via)
		}
	}
}

// scanHotAlloc walks a hot function body flagging allocation sites, with
// error-dominated branches skipped (errDom), mirroring the call graph's
// propagation rule.
func scanHotAlloc(pass *Pass, n ast.Node, errDom bool, fresh map[*types.Var]bool, via string) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		if n.Init != nil {
			scanHotAlloc(pass, n.Init, errDom, fresh, via)
		}
		scanHotAlloc(pass, n.Cond, errDom, fresh, via)
		branchDom := errDom || mentionsError(pass.Info, n.Cond)
		scanHotAlloc(pass, n.Body, branchDom, fresh, via)
		if n.Else != nil {
			scanHotAlloc(pass, n.Else, branchDom, fresh, via)
		}
		return
	case *ast.CallExpr:
		if !errDom {
			reportAllocCall(pass, n, fresh, via)
		}
	case *ast.ValueSpec:
		if !errDom && n.Type != nil {
			if name := scratchTypeName(pass.Info, n.Type); name != "" {
				pass.Reportf(Warning, n.Pos(),
					"%s declared on the hot path%s: hoist the scratch out of the per-sample loop or draw it from a pool", name, via)
			}
		}
	}
	for _, child := range childNodes(n) {
		scanHotAlloc(pass, child, errDom, fresh, via)
	}
}

// reportAllocCall flags one allocating call form.
func reportAllocCall(pass *Pass, call *ast.CallExpr, fresh map[*types.Var]bool, via string) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "make", "new":
		pass.Reportf(Warning, call.Pos(),
			"%s allocates on the hot path%s: draw the buffer from a pool or hoist it out of the per-sample loop",
			exprString(pass.Fset, call), via)
	case "append":
		if len(call.Args) == 0 {
			return
		}
		base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pass.Info.Uses[base].(*types.Var)
		if !ok || !fresh[v] {
			return
		}
		pass.Reportf(Warning, call.Pos(),
			"append grows fresh slice %q on the hot path%s: preallocate it from a pool with the final capacity",
			base.Name, via)
	}
}

// freshSlices returns the local slice variables whose every definition in
// body is provably fresh and empty — declared without a value, assigned
// nil, or assigned an empty composite literal. Appending to such a slice
// must grow it through the heap. Variables that are also assigned calls,
// fields, makes, or other expressions have unknown (or already-flagged)
// provenance and are excluded.
func freshSlices(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	unfresh := make(map[*types.Var]bool)
	note := func(id *ast.Ident, rhs ast.Expr) {
		v := localSliceVar(info, id)
		if v == nil {
			return
		}
		if rhs == nil || isEmptySliceExpr(info, rhs) {
			fresh[v] = true
			return
		}
		// Self-append keeps whatever provenance the slice already has.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
				if b, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && b.Name == id.Name {
					return
				}
			}
		}
		unfresh[v] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				note(name, rhs)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				for _, lhs := range n.Lhs { // multi-value call: unknown
					if id, ok := lhs.(*ast.Ident); ok {
						if v := localSliceVar(info, id); v != nil {
							unfresh[v] = true
						}
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					note(id, n.Rhs[i])
				}
			}
		}
		return true
	})
	for v := range unfresh {
		delete(fresh, v)
	}
	return fresh
}

// localSliceVar resolves id to a slice-typed *types.Var, or nil.
func localSliceVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Type() == nil {
		return nil
	}
	if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
		return nil
	}
	return v
}

// isEmptySliceExpr reports whether e is nil or an empty composite literal.
func isEmptySliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	}
	return false
}

// scratchTypeName returns "bytes.Buffer" / "strings.Builder" when texpr
// denotes one of the growing scratch types, else "".
func scratchTypeName(info *types.Info, texpr ast.Expr) string {
	tv, ok := info.Types[texpr]
	if !ok {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return "bytes.Buffer"
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return "strings.Builder"
	}
	return ""
}
