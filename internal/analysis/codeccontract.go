package analysis

import (
	"go/ast"
	"strings"
)

// CodecContract enforces the codec plugin contract (codec package doc;
// paper §V–VI): every format package under internal/codec/ must register its
// Format(s) with the codec registry, and no caller anywhere may silently
// discard the error result of an Encode/Decode/Open call — a swallowed codec
// error is exactly the silent data-path corruption the robustness tests
// guard against.
var CodecContract = &Analyzer{
	Name: "codeccontract",
	Doc:  "codec packages must codec.Register their formats; Encode/Decode/Open errors must not be blanked",
	Run:  runCodecContract,
}

const codecPkgPath = "scipp/internal/codec"

func runCodecContract(pass *Pass) {
	if strings.HasPrefix(pass.Path, codecPkgPath+"/") {
		checkRegisters(pass)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || !isCodecVerbCall(call) {
				return true
			}
			results := callResults(pass.Info, call)
			if results == nil || results.Len() != len(assign.Lhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && id.Name == "_" && isErrorType(results.At(i).Type()) {
					pass.Reportf(Error, id.Pos(),
						"error result of %s discarded: codec errors must be propagated or handled",
						exprString(pass.Fset, call.Fun))
				}
			}
			return true
		})
	}
}

// isCodecVerbCall matches calls whose callee name is an encode/decode/open
// verb, the operations the codec contract covers.
func isCodecVerbCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return name == "Open" || hasPrefixAny(name, "Encode", "Decode")
}

// checkRegisters requires at least one codec.Register call somewhere in the
// package (conventionally in init).
func checkRegisters(pass *Pass) {
	for _, f := range pass.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && pkgFunc(pass.Info, call, codecPkgPath, "Register") {
				found = true
				return false
			}
			return true
		})
		if found {
			return
		}
	}
	pass.Reportf(Error, pass.Files[0].Name.Pos(),
		"codec package %s never calls codec.Register: formats must be discoverable through the registry", pass.Path)
}
