package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolLeak enforces the pool ownership protocol with a must-release
// dataflow over the control-flow graph: a value obtained from a pool (a
// Get/Acquire-prefixed call on a type whose name contains "Pool") must, on
// every path to an ordinary function exit, either be released back
// (Put/Release/Recycle/Free — directly, or by a deferred call, which covers
// every exit at once) or have its ownership handed off (returned, sent on a
// channel, stored into a field, element, or closure, or appended into a
// longer-lived slice). A path that exits holding the value silently leaks
// the slab: the pool refills from the heap and the freelist discipline
// erodes without any test failing. Early `return err` paths are the classic
// offender and are checked like any other path; only panicking exits are
// excused.
var PoolLeak = &Analyzer{
	Name: "poolleak",
	Doc:  "flag pool Get results that miss their Put/Release on some control-flow path",
	Run:  runPoolLeak,
}

// poolDef is one tracked pool acquisition: variable v bound at stmt from
// call.
type poolDef struct {
	v    *types.Var
	stmt ast.Stmt
	call *ast.CallExpr
}

func runPoolLeak(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			defs := findPoolGets(pass.Info, fd.Body)
			if len(defs) == 0 {
				continue
			}
			cfg := BuildCFG(fd.Body)
			for _, def := range defs {
				if anyReleases(pass.Info, cfg.Defers, def.v) {
					continue // a deferred release covers every exit
				}
				if leakPath(pass.Info, cfg, def) {
					pass.Reportf(Error, def.call.Pos(),
						"pool value %q can reach a return without being released: call the pool's Put/Release on every path (or defer it)",
						def.v.Name())
				}
			}
		}
	}
}

// findPoolGets collects assignments binding a pool acquisition to a local
// variable: v := p.Get...(...) / v = p.Acquire...(...), including through a
// type assertion (sync.Pool's Get returns any).
func findPoolGets(info *types.Info, body *ast.BlockStmt) []poolDef {
	var out []poolDef
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			call := poolGetCall(info, as.Rhs[i])
			if call == nil {
				continue
			}
			v, ok := objOf(info, id).(*types.Var)
			if !ok {
				continue
			}
			out = append(out, poolDef{v: v, stmt: as, call: call})
		}
		return true
	})
	return out
}

// poolGetCall unwraps e (parens, type assertions) to a Get/Acquire call on
// a pool-typed receiver, or nil.
func poolGetCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
			continue
		case *ast.TypeAssertExpr:
			e = t.X
			continue
		}
		break
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if !hasFoldedPrefix(sel.Sel.Name, "get", "acquire") {
		return nil
	}
	recv, ok := info.Types[sel.X]
	if !ok || !isPoolType(recv.Type) {
		return nil
	}
	return call
}

// leakPath reports whether some path from def's binding to the ordinary
// exit neither releases nor hands off def.v. The walk is a DFS over CFG
// blocks starting just after the binding statement; each node is classified
// by its first effect on v (release, escape, rebinding, or none) and paths
// close on the first three. Panic exits do not count as leaks.
func leakPath(info *types.Info, cfg *CFG, def poolDef) bool {
	type point struct {
		b   *Block
		idx int
	}
	var stack []point
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(def.stmt) {
				stack = append(stack, point{b, i + 1})
			}
		}
	}
	visited := make(map[*Block]bool)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
	scan:
		for {
			for i := p.idx; i < len(p.b.Nodes); i++ {
				switch classifyEffect(info, p.b.Nodes[i], def.v) {
				case effRelease, effEscape, effRebind:
					break scan // this path is closed
				}
			}
			for _, s := range p.b.Succs {
				switch s {
				case cfg.Exit:
					return true // reached an ordinary exit still holding v
				case cfg.PanicExit:
					continue
				default:
					if !visited[s] {
						visited[s] = true
						stack = append(stack, point{s, 0})
					}
				}
			}
			break
		}
	}
	return false
}

// effect classifies what one statement does to a tracked pool value.
type effect int

const (
	effNone    effect = iota
	effRelease        // handed back to a pool (Put/Release/Recycle/Free)
	effEscape         // ownership handed off (return/send/store/append/closure)
	effRebind         // the variable is rebound; the old value's fate is its new owner's
)

// classifyEffect inspects one CFG node for its first effect on v.
func classifyEffect(info *types.Info, n ast.Node, v *types.Var) effect {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// Deferred releases were credited up front (they cover all exits);
		// any other deferred use keeps the value alive until exit — treat
		// as a handoff to the deferred closure.
		if mentionsVar(info, n, v) {
			return effEscape
		}
		return effNone
	case *ast.GoStmt:
		if mentionsVar(info, n, v) {
			return effEscape // the goroutine owns it now
		}
		return effNone
	case *ast.ReturnStmt, *ast.SendStmt:
		if mentionsVar(info, n, v) {
			return effEscape
		}
		return effNone
	case *ast.AssignStmt:
		if releasesVar(info, n, v) {
			return effRelease
		}
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && objOf(info, id) == types.Object(v) {
				return effRebind
			}
		}
		// A bare v on the right-hand side aliases or stores the value
		// (x := v, m[k] = v): ownership follows the new name. Passing v as
		// a mere call argument is a borrow and keeps the obligation here.
		for _, r := range n.Rhs {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && objOf(info, id) == types.Object(v) {
				return effEscape
			}
		}
		if capturesVar(info, n, v) {
			return effEscape
		}
		return effNone
	}
	if releasesVar(info, n, v) {
		return effRelease
	}
	if capturesVar(info, n, v) {
		return effEscape
	}
	return effNone
}

// releasesVar reports whether the node contains a release-like call taking
// v as its receiver or as an argument: v.Release(), pool.Put(v), ...
func releasesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		var recv ast.Expr
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			recv = fun.X
		default:
			return true
		}
		if !hasFoldedPrefix(name, "put", "release", "recycle", "free") {
			return true
		}
		if recv != nil && mentionsVar(info, recv, v) {
			found = true
			return false
		}
		for _, a := range call.Args {
			if mentionsVar(info, a, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// capturesVar reports whether n passes v into an append or a function
// literal — both hand the value to a longer-lived owner.
func capturesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch c := c.(type) {
		case *ast.FuncLit:
			if mentionsVar(info, c.Body, v) {
				found = true
			}
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "append" {
				for _, a := range c.Args[1:] {
					if mentionsVar(info, a, v) {
						found = true
						return false
					}
				}
			}
		case *ast.CompositeLit:
			if mentionsVar(info, c, v) {
				found = true // packed into a value whose fate we can't track
				return false
			}
		}
		return true
	})
	return found
}

// anyReleases reports whether any of the deferred calls releases v.
func anyReleases(info *types.Info, defers []*ast.CallExpr, v *types.Var) bool {
	for _, call := range defers {
		if releasesVar(info, call, v) {
			return true
		}
		// defer func() { p.Put(v) }() — the release sits in the literal.
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok && releasesVar(info, lit.Body, v) {
			return true
		}
	}
	return false
}

// mentionsVar reports whether any identifier under n resolves to v.
func mentionsVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && objOf(info, id) == types.Object(v) {
			found = true
		}
		return !found
	})
	return found
}

// objOf resolves an identifier through either the Uses or Defs map.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// hasFoldedPrefix reports whether name starts with any prefix,
// case-insensitively.
func hasFoldedPrefix(name string, prefixes ...string) bool {
	lower := strings.ToLower(name)
	for _, p := range prefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}
