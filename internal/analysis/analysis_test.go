package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture expect.txt golden files")

// fixtures maps each testdata package to the import path it is loaded under.
// The path matters: analyzer scope rules key off it (internal/ vs cmd/,
// codec subpackages, hot-path packages).
var fixtures = []struct {
	dir  string
	path string
}{
	{"fixdet", "scipp/internal/fixdet"},
	{"fixmissing", "scipp/internal/codec/fixmissing"},
	{"fixpanic", "scipp/internal/fixpanic"},
	{"fixconc", "scipp/internal/dist"}, // hot-path scope for the send rule
	{"fixerr", "scipp/internal/fixerr"},
	{"fixdir", "scipp/internal/fixdir"},
	{"fixretry", "scipp/internal/fixretry"},
	{"fixdistsend", "scipp/internal/dist"},           // dist scope for the abort-escape send rule
	{"fixstagesend", "scipp/internal/pipeline"},      // pipeline scope for the stage send rule
	{"fixdataservesend", "scipp/internal/dataserve"}, // dataserve scope for the tenant send rule
	{"fixhotalloc", "scipp/internal/fixhotalloc"},
	{"fixshapecontract", "scipp/internal/fixshapecontract"},
	{"fixpoolleak", "scipp/internal/fixpoolleak"},
	{"fixcopydiscipline", "scipp/internal/fixcopydiscipline"},
	{"fixworkerguard", "scipp/internal/pipeline"},   // pipeline scope for the supervised-goroutine rule
	{"fixbreakerstate", "scipp/internal/dataserve"}, // dataserve scope for the breaker transition rule
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// render formats diagnostics with basename-only filenames so the goldens are
// stable across checkouts.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: [%s] %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
			d.Severity, d.Analyzer, d.Message)
	}
	return b.String()
}

func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	for _, tc := range fixtures {
		t.Run(tc.dir, func(t *testing.T) {
			// A fresh loader per fixture: fixconc shadows a real import path.
			l, err := NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			dir, err := filepath.Abs(filepath.Join("testdata", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := l.LoadDir(dir, tc.path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			got := render(RunAnalyzers([]*Package{pkg}, All()))
			golden := filepath.Join("testdata", tc.dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixtureSeverities pins the severity ladder: loop-variable capture is a
// warning, everything else in the fixtures is an error.
func TestFixtureSeverities(t *testing.T) {
	root := moduleRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "fixconc"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "scipp/internal/dist")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, All())
	var warnings, errors int
	for _, d := range diags {
		switch d.Severity {
		case Warning:
			warnings++
		case Error:
			errors++
		}
	}
	if warnings == 0 || errors == 0 {
		t.Errorf("want both warnings and errors from fixconc, got %d warnings / %d errors", warnings, errors)
	}
}

// TestRepositoryIsLintClean is the self-test the merge gate relies on: the
// analyzers applied to the whole module must report nothing.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow")
	}
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAnalyzers(pkgs, All()) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestDirectiveParsing checks the malformed-directive diagnostic and that a
// reasoned suppression actually removes its finding.
func TestDirectiveParsing(t *testing.T) {
	root := moduleRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "fixdir"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "scipp/internal/fixdir")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, All())
	var sawMalformed, sawUnsuppressed bool
	for _, d := range diags {
		if d.Analyzer == "lintdirective" {
			sawMalformed = true
		}
		if d.Analyzer == "uncheckederr" {
			sawUnsuppressed = true
		}
		if d.Analyzer == "uncheckederr" && d.Pos.Line < 14 {
			t.Errorf("suppressed finding leaked through: %s", d)
		}
	}
	if !sawMalformed {
		t.Error("malformed directive not reported")
	}
	if !sawUnsuppressed {
		t.Error("the unsuppressed discard in alsoQuiet was not reported")
	}
}
