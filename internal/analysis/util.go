package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprString renders a short source form of e for diagnostic messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	s := buf.String()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callResults returns the result tuple of call, or nil for conversions and
// builtins without a signature.
func callResults(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// tupleHasError reports whether any result in tup is error-typed.
func tupleHasError(tup *types.Tuple) bool {
	if tup == nil {
		return false
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return true
		}
	}
	return false
}

// pkgFunc matches a call to pkgpath.name (package-level function).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgpath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgpath
}

// usesPackage returns the *types.PkgName if expr is a reference to an
// imported package.
func usesPackage(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// funcDocs maps each function body (FuncDecl) to its doc-comment text, for
// "documented panic" allowances.
func funcDocs(files []*ast.File) map[*ast.BlockStmt]string {
	out := make(map[*ast.BlockStmt]string)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			doc := ""
			if fd.Doc != nil {
				doc = fd.Doc.Text()
			}
			out[fd.Body] = doc
		}
	}
	return out
}

// lockTypeName returns the sync type name ("sync.Mutex", ...) if t is or
// (transitively, through struct fields and arrays) contains a sync lock
// type by value. Pointers, maps, slices, and channels break containment.
func lockTypeName(t types.Type) string {
	return lockTypeNameDepth(t, 0)
}

func lockTypeNameDepth(t types.Type, depth int) string {
	if depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockTypeNameDepth(u.Field(i).Type(), depth+1); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockTypeNameDepth(u.Elem(), depth+1)
	}
	return ""
}

// hasPrefixAny reports whether s starts with any of the prefixes.
func hasPrefixAny(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// reportUnguardedSends flags every channel send in the pass's files that is
// not the comm of a select clause whose select also offers an escape (a
// receive case or a default). Shared by the distsend and stagesend rules,
// which apply the same abort discipline to different packages.
func reportUnguardedSends(pass *Pass, msg string) {
	for _, f := range pass.Files {
		// First pass: mark the sends that are the comm of a select clause
		// whose select also offers an escape (receive case or default).
		guarded := make(map[*ast.SendStmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			var sends []*ast.SendStmt
			escape := false
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				switch comm := cc.Comm.(type) {
				case nil: // default: the send cannot block
					escape = true
				case *ast.SendStmt:
					sends = append(sends, comm)
				default: // a receive clause: the abort/deadline escape
					escape = true
				}
			}
			if escape {
				for _, s := range sends {
					guarded[s] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !guarded[send] {
				pass.Reportf(Error, send.Pos(), "%s", msg)
			}
			return true
		})
	}
}
