package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// This file is the analysis framework's intraprocedural control-flow graph:
// a stdlib-only (go/ast) CFG over one function body, precise enough for the
// must-release dataflow of the poolleak rule. Statements land in basic
// blocks; branching statements (if/for/range/switch/type-switch/select)
// split blocks and wire the successor edges, including labeled break and
// continue; function exits are explicit virtual blocks — one for ordinary
// returns and fallthrough off the end, one for panics — so a dataflow pass
// can require a fact on every non-panicking path. Deferred calls are
// collected separately: they run on every exit, which is exactly how a
// deferred Release closes all paths at once.

// Block is one basic block: a straight-line run of statements with a single
// entry and a set of successor edges.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, creation order).
	Index int
	// Kind labels what created the block ("entry", "if.then", "for.body",
	// "select.case", "exit", ...) for dumps and tests.
	Kind string
	// Nodes are the statements and expressions executed in the block, in
	// order. Branching statements contribute only the expression evaluated
	// in the block (an if's condition, a switch's tag, a select clause's
	// comm), never their nested bodies — a block's Nodes always describe
	// exactly the code that runs when the block runs, so dataflow passes
	// can scan them without seeing other branches.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, Entry first. Exit and PanicExit are members.
	Blocks []*Block
	// Entry is where the function starts.
	Entry *Block
	// Exit is the virtual ordinary-exit block: the target of every return
	// statement and of falling off the end of the body.
	Exit *Block
	// PanicExit is the virtual panicking-exit block: the target of explicit
	// panic(...) statements. Must-have-released analyses typically excuse
	// paths that end here.
	PanicExit *Block
	// Defers lists the deferred calls of the body in registration order.
	// They run on every exit (ordinary or panicking).
	Defers []*ast.CallExpr
}

// String renders a compact multi-line dump of the graph for tests and
// debugging: one line per block with its kind and successor indices.
func (c *CFG) String() string {
	var b strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&b, "b%d %s:", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " ->b%d", s.Index)
		}
		fmt.Fprintf(&b, " (%d nodes)\n", len(blk.Nodes))
	}
	return b.String()
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, gotos: map[string][]*Block{}, labeled: map[string]*Block{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cfg.PanicExit = b.newBlock("panic")
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is an ordinary exit.
	b.jump(b.cfg.Exit)
	// Unresolved gotos (label outside the analyzed body, or simply unknown):
	// conservatively treat as an exit so no path is silently dropped.
	for label, srcs := range b.gotos {
		dst := b.labeled[label]
		if dst == nil {
			dst = b.cfg.Exit
		}
		for _, src := range srcs {
			src.Succs = append(src.Succs, dst)
		}
	}
	return b.cfg
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label      string // enclosing label, or ""
	breakTo    *Block
	continueTo *Block // nil for switch/select frames (not continuable)
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil while the current point is
	// unreachable (after return/break/...).
	cur    *Block
	frames []loopFrame
	// pendingLabel is the label naming the next loop/switch/select.
	pendingLabel string
	gotos        map[string][]*Block
	labeled      map[string]*Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump ends the current block with an edge to dst. No-op when unreachable.
func (b *cfgBuilder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startBlock begins a new reachable block and returns it.
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	b.cur = blk
	return blk
}

// add appends a node to the current block, materializing one if control just
// merged here.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		return // unreachable statement
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findFrame resolves a break/continue target: the innermost frame, or the
// frame carrying the label. wantContinue skips non-loop frames.
func (b *cfgBuilder) findFrame(label string, wantContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		// Begin a fresh block so gotos have a well-defined target.
		target := b.startOrSplit("label." + s.Label.Name)
		b.labeled[s.Label.Name] = target
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond) // only the condition is evaluated in this block
		cond := b.cur
		then := b.startBlock("if.then")
		b.linkFrom(cond, then)
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := s.Else != nil
		if hasElse {
			els := b.startBlock("if.else")
			b.linkFrom(cond, els)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock("if.join")
		if thenEnd != nil {
			thenEnd.Succs = append(thenEnd.Succs, join)
		}
		if hasElse {
			if elseEnd != nil {
				elseEnd.Succs = append(elseEnd.Succs, join)
			}
		} else {
			b.linkFrom(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		label := b.takeLabel()
		head := b.startOrSplit("for.head")
		if s.Cond != nil {
			b.add(s.Cond)
		}
		headEnd := b.cur
		after := b.newBlock("for.after")
		post := b.newBlock("for.post")
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		post.Succs = append(post.Succs, head)
		body := b.startBlock("for.body")
		b.linkFrom(headEnd, body)
		if s.Cond != nil {
			b.linkFrom(headEnd, after) // condition false
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: post})
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(post)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startOrSplit("range.head")
		b.add(s.X) // the ranged expression; bodies go in range.body
		headEnd := b.cur
		_ = head
		after := b.newBlock("range.after")
		b.linkFrom(headEnd, after) // range exhausted
		body := b.startBlock("range.body")
		b.linkFrom(headEnd, body)
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: head})
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.startBlock("select.head")
		}
		after := b.newBlock("select.after")
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.startBlock("select.case")
			b.linkFrom(head, clause)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			b.linkFrom(head, after)
		}
		b.cur = after

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
		b.add(s)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.add(s)
				b.jump(b.cfg.PanicExit)
				return
			}
		}
		b.add(s)

	case *ast.GoStmt:
		b.add(s)

	default:
		// Assignments, declarations, sends, incdec, empty statements:
		// straight-line nodes.
		b.add(s)
	}
}

// switchStmt handles expression and type switches, which share clause and
// fallthrough structure.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	var init ast.Stmt
	var clauses []ast.Stmt
	label := ""
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init = s.Init
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		init = s.Init
		clauses = s.Body.List
	}
	if init != nil {
		b.stmt(init)
	}
	label = b.takeLabel()
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Tag != nil {
			b.add(s.Tag)
		}
	case *ast.TypeSwitchStmt:
		b.add(s.Assign)
	}
	head := b.cur
	if head == nil {
		head = b.startBlock("switch.head")
	}
	after := b.newBlock("switch.after")
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after})
	hasDefault := false
	var blocks []*Block
	var ends []*Block // end block of each clause, for fallthrough
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		clause := b.startBlock("switch.case")
		b.linkFrom(head, clause)
		blocks = append(blocks, clause)
		b.stmtList(cc.Body)
		// A trailing fallthrough transfers into the next clause.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				ends = append(ends, b.cur)
				continue
			}
		}
		ends = append(ends, nil)
		b.jump(after)
	}
	for i, end := range ends {
		if end != nil && i+1 < len(blocks) {
			end.Succs = append(end.Succs, blocks[i+1])
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.linkFrom(head, after) // no case matched
	}
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		b.add(s)
		if f := b.findFrame(label, false); f != nil {
			b.jump(f.breakTo)
		} else {
			b.jump(b.cfg.Exit)
		}
	case "continue":
		b.add(s)
		if f := b.findFrame(label, true); f != nil {
			b.jump(f.continueTo)
		} else {
			b.jump(b.cfg.Exit)
		}
	case "goto":
		b.add(s)
		if b.cur != nil {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
		b.cur = nil
	case "fallthrough":
		// Handled structurally by switchStmt; reaching here (a fallthrough
		// not in clause-tail position is a compile error anyway) is a no-op.
		b.add(s)
	}
}

// takeLabel consumes the pending label (set by an enclosing LabeledStmt).
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// startOrSplit continues in the current block if it is empty, else starts a
// fresh block reached from the current one — used where a jump target needs
// its own block (loop heads, labels).
func (b *cfgBuilder) startOrSplit(kind string) *Block {
	if b.cur != nil && len(b.cur.Nodes) == 0 && len(b.cur.Succs) == 0 {
		b.cur.Kind = kind
		return b.cur
	}
	prev := b.cur
	blk := b.newBlock(kind)
	if prev != nil {
		prev.Succs = append(prev.Succs, blk)
	}
	b.cur = blk
	return blk
}

// linkFrom adds an edge src -> dst, tolerating an unreachable src.
func (b *cfgBuilder) linkFrom(src, dst *Block) {
	if src != nil {
		src.Succs = append(src.Succs, dst)
	}
}
