package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BreakerState enforces the data service's circuit-breaker transition
// discipline: every assignment to the breaker's state field in
// scipp/internal/dataserve must happen inside a *Locked function — the
// package convention for code holding the service mutex, which is what
// serializes admission decisions against outcome recording — and that
// function must also record an obs instrument (Inc/Add/Set/Observe), so a
// breaker can never change position invisibly. A transition outside the
// mutex races the dispatcher's admission check; a transition without an
// instrument breaks the exact stats-vs-obs reconciliation the overload
// tooling asserts.
var BreakerState = &Analyzer{
	Name: "breakerstate",
	Doc:  "flag breaker state transitions in internal/dataserve outside *Locked methods or without an obs record",
	Run:  runBreakerState,
}

// obsRecordMethods are the instrument mutators that count as "recorded".
var obsRecordMethods = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true,
}

func runBreakerState(pass *Pass) {
	if pass.Path != "scipp/internal/dataserve" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			assigns := breakerStateAssigns(pass, fn.Body)
			if len(assigns) == 0 {
				continue
			}
			locked := strings.HasSuffix(fn.Name.Name, "Locked")
			recorded := recordsInstrument(fn.Body)
			for _, pos := range assigns {
				if !locked {
					pass.Reportf(Error, pos,
						"breaker state transition outside the service mutex: assign breaker.state only in a *Locked method")
				} else if !recorded {
					pass.Reportf(Error, pos,
						"breaker state transition without an obs record: a *Locked transition must also call an instrument's Inc/Add/Set/Observe")
				}
			}
		}
	}
}

// breakerStateAssigns collects the positions of assignments to the state
// field of the package's breaker struct within body. With type information
// the receiver is checked to really be the breaker type; without it, any
// selector spelled `.state` counts.
func breakerStateAssigns(pass *Pass, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "state" {
				continue
			}
			if !isBreakerRecv(pass, sel.X) {
				continue
			}
			out = append(out, sel.Pos())
		}
		return true
	})
	return out
}

// isBreakerRecv reports whether expr's type resolves to the dataserve
// breaker struct (through pointers), or true when type info is unavailable
// so the rule degrades to name matching rather than silence.
func isBreakerRecv(pass *Pass, expr ast.Expr) bool {
	if pass.Info == nil {
		return true
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return true
	}
	typ := tv.Type
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "breaker"
}

// recordsInstrument reports whether body contains a call to one of the obs
// instrument mutators.
func recordsInstrument(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && obsRecordMethods[sel.Sel.Name] {
			found = true
		}
		return !found
	})
	return found
}
