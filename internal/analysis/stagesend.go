package analysis

// StageSend extends the communicator's send discipline to the staged data
// pipeline: every channel send in scipp/internal/pipeline must sit in a
// select that also has an escape case — a receive (the epoch's abort
// channel) or a default. The stage DAG's worker pools hand samples between
// bounded queues; a bare send in any of them can block forever once
// Iterator.Close tears the consumer down, leaking the pool and wedging
// epoch teardown. Test files are exempt (the loader skips them).
var StageSend = &Analyzer{
	Name: "stagesend",
	Doc:  "flag channel sends in internal/pipeline not guarded by a select with an abort case",
	Run:  runStageSend,
}

func runStageSend(pass *Pass) {
	if pass.Path != "scipp/internal/pipeline" {
		return
	}
	reportUnguardedSends(pass,
		"channel send in internal/pipeline without an abort escape: use sendItem or select { case ch <- v: case <-abort: }")
}
