package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Panics polices panic discipline in library code: a panic in internal/
// must be a documented programmer-invariant check — the enclosing function's
// doc comment says "panics" — or carry a //lint:ignore annotation. Anything
// reachable from data decode paths on malformed input must return an error
// instead (a corrupt sample must fail the sample, not the training run).
var Panics = &Analyzer{
	Name: "panics",
	Doc:  "flag panic() in non-test library code unless the enclosing function documents the invariant",
	Run:  runPanics,
}

func runPanics(pass *Pass) {
	if !pass.InternalPath() {
		return
	}
	docs := funcDocs(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.Contains(strings.ToLower(docs[fd.Body]), "panic") {
				continue // documented invariant ("It panics if ...")
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				pass.Reportf(Error, call.Pos(),
					"panic in library code: return an error, or document the invariant (\"panics if ...\") in %s's doc comment",
					fd.Name.Name)
				return true
			})
		}
	}
}
