package analysis

import (
	"go/ast"
	"go/types"
)

// ShapeContract enforces the per-sample shape contract on hot paths. With
// variable-shape samples, a dataset carries two distinct shapes: each
// sample's own decoded shape (the decoder's OutputShape, or ProbeShape on
// the encoded blob) and the archive-wide MaxShape() upper bound that only
// the pool- and cache-sizing layers consume. Consulting MaxShape() inside
// a per-sample hot loop is almost always a bug in waiting: the bound is
// loop-invariant (so the call belongs hoisted to setup), and sizing
// per-sample work off the bound silently re-introduces the fixed-shape
// assumption — every ragged sample pays the worst case, which is exactly
// the over-allocation the shape contract exists to remove.
var ShapeContract = &Analyzer{
	Name: "shapecontract",
	Doc:  "flag dataset-wide MaxShape() bounds consulted inside per-sample hot-path loops",
	Run:  runShapeContract,
}

func runShapeContract(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root, hot := pass.Module.HotDecl(pass.Info, fd)
			if !hot {
				continue
			}
			via := " (//scipp:hotpath)"
			if root != nil && root.Name() != fd.Name.Name {
				via = " (hot via //scipp:hotpath root " + root.Name() + ")"
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				reportMaxShapeCalls(pass, body, via)
				return false // the loop body was just scanned in full
			})
		}
	}
}

// reportMaxShapeCalls flags every MaxShape method call under body,
// including ones in nested loops.
func reportMaxShapeCalls(pass *Pass, body ast.Node, via string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "MaxShape" {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() == nil {
			return true
		}
		pass.Reportf(Warning, call.Pos(),
			"MaxShape() consulted inside a per-sample loop%s: the bound is loop-invariant setup for pools and caches — hoist it, and size per-sample work from the sample's own shape (OutputShape/ProbeShape)", via)
		return true
	})
}
