package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism enforces the repository's reproducibility contract (ROADMAP
// tier-1; paper §VII convergence results): library code must draw randomness
// from internal/xrand and time from internal/trace's clocks, and must not
// emit output whose order depends on map iteration.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, wall-clock time, and map-iteration-order-dependent output in library code",
	Run:  runDeterminism,
}

// nondeterministicTimeFuncs are the time package entry points that make an
// execution depend on the wall clock or scheduler timing.
var nondeterministicTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runDeterminism(pass *Pass) {
	internal := pass.InternalPath()
	for _, f := range pass.Files {
		if internal {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(Error, imp.Pos(),
						"import of %s in library code: use scipp/internal/xrand (seeded, reproducible)", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !internal {
					return true
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !nondeterministicTimeFuncs[sel.Sel.Name] {
					return true
				}
				if pn := usesPackage(pass.Info, sel.X); pn != nil && pn.Imported().Path() == "time" {
					pass.Reportf(Error, n.Pos(),
						"wall-clock time.%s in library code: thread a trace.Clock (virtual time) instead", sel.Sel.Name)
				}
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n)
			}
			return true
		})
	}
}

// checkMapRangeOutput flags writes to streams and channel sends performed
// directly inside a range over a map: Go's map iteration order is
// randomized, so any emitted sequence is nondeterministic. Collecting into a
// slice and sorting before output is the sanctioned pattern.
func checkMapRangeOutput(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(Error, n.Pos(),
				"channel send inside range over map: receive order depends on map iteration order; collect and sort keys first")
		case *ast.CallExpr:
			if isOrderedOutputCall(pass, n) {
				pass.Reportf(Error, n.Pos(),
					"%s inside range over map: output order depends on map iteration order; collect and sort keys first",
					exprString(pass.Fset, n.Fun))
			}
		}
		return true
	})
}

// isOrderedOutputCall matches calls that append to an ordered output stream.
func isOrderedOutputCall(pass *Pass, call *ast.CallExpr) bool {
	for _, name := range []string{"Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln"} {
		if pkgFunc(pass.Info, call, "fmt", name) {
			return true
		}
	}
	if pkgFunc(pass.Info, call, "io", "WriteString") {
		return true
	}
	// Writer-shaped methods (strings.Builder, bufio.Writer, os.File, ...).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				return true
			}
		}
	}
	return false
}
