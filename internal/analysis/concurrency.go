package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Concurrency enforces goroutine hygiene on the repository's hot paths:
// no goroutines capturing loop variables (per-iteration semantics are a
// go1.22 accident waiting for a toolchain downgrade), no lock values copied
// through parameters, receivers, or range clauses, and no channel sends in
// select-less loops inside the pipeline/dist/train packages, where an
// unpaired send deadlocks the training step.
var Concurrency = &Analyzer{
	Name: "concurrency",
	Doc:  "flag loop-variable capture in goroutines, lock copies, and unguarded channel sends in hot loops",
	Run:  runConcurrency,
}

// sendScopedPkgs are the packages whose loops are training-step hot paths.
var sendScopedPkgs = map[string]bool{
	"scipp/internal/pipeline": true,
	"scipp/internal/dist":     true,
	"scipp/internal/train":    true,
}

func runConcurrency(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockParams(pass, fd)
			if fd.Body != nil {
				walkConcurrency(pass, fd.Body)
			}
		}
	}
}

// checkLockParams flags receivers and parameters that copy a lock by value.
func checkLockParams(pass *Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if name := lockTypeName(tv.Type); name != "" {
				pass.Reportf(Error, field.Pos(),
					"%s of %s passes %s by value: locks must be passed by pointer", kind, fd.Name.Name, name)
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type != nil {
		check(fd.Type.Params, "parameter")
	}
}

// walkConcurrency traverses a function body with an explicit ancestor stack
// (ast.Inspect signals subtree exit with a nil node), tracking loop
// variables and loop/select nesting.
func walkConcurrency(pass *Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkLoopCapture(pass, stack, lit)
			}
		case *ast.SendStmt:
			checkHotLoopSend(pass, stack, n)
		case *ast.RangeStmt:
			checkRangeLockCopy(pass, n)
		}
		stack = append(stack, n)
		return true
	})
}

// checkLoopCapture reports loop variables referenced inside a go func
// literal rather than passed as arguments.
func checkLoopCapture(pass *Pass, stack []ast.Node, lit *ast.FuncLit) {
	loopVars := make(map[types.Object]bool)
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && loopVars[obj] {
			pass.Reportf(Warning, id.Pos(),
				"goroutine captures loop variable %s: pass it as an argument (capture semantics depend on the language version)",
				id.Name)
		}
		return true
	})
}

// checkHotLoopSend reports channel sends inside a loop with no enclosing
// select, within the hot-path packages. The innermost function literal
// bounds the search: a send in a goroutine body is judged by that body's own
// loops only.
func checkHotLoopSend(pass *Pass, stack []ast.Node, send *ast.SendStmt) {
	if !sendScopedPkgs[pass.Path] {
		return
	}
	inLoop := false
scan:
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit:
			break scan // function boundary
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
			break scan
		case *ast.SelectStmt:
			return // send already guarded by a select
		}
	}
	if inLoop {
		pass.Reportf(Error, send.Pos(),
			"channel send in a select-less hot loop: pair it with a cancellation case (select { case ch <- v: case <-stop: })")
	}
}

// checkRangeLockCopy reports range clauses whose value variable copies a
// lock-bearing element.
func checkRangeLockCopy(pass *Pass, rng *ast.RangeStmt) {
	if rng.Tok != token.DEFINE {
		return
	}
	if id, ok := rng.Value.(*ast.Ident); ok && id.Name != "_" {
		if obj := pass.Info.Defs[id]; obj != nil {
			if name := lockTypeName(obj.Type()); name != "" {
				pass.Reportf(Error, id.Pos(),
					"range value %s copies %s: iterate by index or over pointers", id.Name, name)
			}
		}
	}
}
