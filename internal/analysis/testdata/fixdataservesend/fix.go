// Package fixdataservesend is a lint fixture for the data service's send
// discipline. The analysis tests load it under scipp/internal/dataserve so
// the dataservesend rule applies: every send needs a select with an escape
// case — the pattern the service's dispatcher, workers, and per-epoch
// source/sink goroutines use so tenant detach can never wedge a send.
package fixdataservesend

// Bare sends directly with no select.
func Bare(ch chan int, v int) {
	ch <- v
}

// Naked wraps the send in a single-case select with no escape.
func Naked(ch chan int, v int) {
	select {
	case ch <- v:
	}
}

// Guarded pairs the send with an abort receive; lint-clean.
func Guarded(ch chan int, abort <-chan struct{}, v int) bool {
	select {
	case ch <- v:
		return true
	case <-abort:
		return false
	}
}

// NonBlocking bounds the send with a default — the notify-wakeup idiom;
// lint-clean.
func NonBlocking(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}
