// Package fixhotalloc exercises the hotalloc analyzer: allocation in
// //scipp:hotpath-reachable code is flagged; pooled memory, cold
// error-dominated branches, and unannotated code are not.
package fixhotalloc

import (
	"bytes"
	"errors"
)

// BufPool is the recognized allocator: hotness stops at its methods, so
// the refill make below is never flagged.
type BufPool struct{ free [][]byte }

// Get returns a pooled buffer, refilling from the heap when empty.
func (p *BufPool) Get(n int) []byte {
	if k := len(p.free); k > 0 {
		b := p.free[k-1]
		p.free = p.free[:k-1]
		return b[:n]
	}
	return make([]byte, n)
}

// Put returns a buffer to the freelist.
func (p *BufPool) Put(b []byte) { p.free = append(p.free, b) }

// Decode is a per-sample hot loop: the direct allocations are flagged, the
// pooled draw and the error-dominated branch are not.
//
//scipp:hotpath
func Decode(p *BufPool, blob []byte) []byte {
	tmp := make([]byte, len(blob)) // flagged: make on the hot path
	scratch := new(int)            // flagged: new on the hot path
	var grown []byte
	grown = append(grown, blob...) // flagged: growth of a fresh slice
	var buf bytes.Buffer           // flagged: growing scratch type
	buf.Grow(64)
	out := p.Get(len(blob)) // sanctioned: pool memory
	copy(out, tmp)
	_ = scratch
	_ = grown
	if err := validate(blob); err != nil {
		logErr(err) // cold: reachability stops at error-dominated sites
	}
	transform(out) // hot propagation into a module-local callee
	p.Put(out)
	return tmp
}

// transform is hot by reachability from Decode, not by annotation.
func transform(b []byte) {
	pad := make([]byte, 8) // flagged: hot via root Decode
	copy(b, pad)
}

// validate gates the cold branch.
func validate(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty blob")
	}
	return nil
}

// logErr is only reachable under an error check: its allocations are the
// failure path's business, not the hot loop's.
func logErr(err error) {
	msg := make([]byte, 0, 128) // not flagged: not hot-reachable
	msg = append(msg, err.Error()...)
	_ = msg
}
