// Package fixretry exercises the retry analyzer: unbounded error-path retry
// loops are errors; loops bounded by an attempt cap, a stop channel, or an
// in-body counter are the sanctioned shapes.
package fixretry

import "errors"

var errFlaky = errors.New("flaky")

func read(i int) ([]byte, error) {
	if i%7 == 3 {
		return nil, errFlaky
	}
	return []byte{byte(i)}, nil
}

// Fetch retries forever on error: no attempt cap, no cancellation check.
func Fetch(i int) []byte {
	for { // want: unbounded retry loop
		b, err := read(i)
		if err != nil {
			continue
		}
		return b
	}
}

// FetchBounded caps the attempts in the loop header — the preferred shape.
func FetchBounded(i int) ([]byte, error) {
	var last error
	for attempt := 0; attempt < 5; attempt++ {
		b, err := read(i)
		if err != nil {
			last = err
			continue
		}
		return b, nil
	}
	return nil, last
}

// FetchStop retries until a stop channel fires — cancellation bounds it.
func FetchStop(i int, stop chan struct{}) []byte {
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		b, err := read(i)
		if err != nil {
			continue
		}
		return b
	}
}

// FetchCounted bounds the retry with an in-body attempt counter.
func FetchCounted(i int) ([]byte, error) {
	attempt := 0
	for {
		b, err := read(i)
		if err != nil {
			attempt++
			if attempt > 4 {
				return nil, err
			}
			continue
		}
		return b, nil
	}
}

// Reroll rejects by value, not by error — not a retry loop, not flagged.
func Reroll(next func() int) int {
	for {
		v := next()
		if v%2 == 1 {
			continue
		}
		return v
	}
}
