// Package fixbreakerstate is a lint fixture for the circuit-breaker
// transition discipline. The analysis tests load it under
// scipp/internal/dataserve so the breakerstate rule applies: every
// assignment to the breaker's state field must sit in a *Locked function
// (the holding-svc.mu convention) that also records an obs instrument, so
// no breaker changes position unserialized or uncounted.
package fixbreakerstate

// breaker mirrors the real struct's shape; the rule keys off the type name.
type breaker struct {
	state int
}

// counter mirrors an obs instrument handle.
type counter struct{ n int64 }

func (c *counter) Inc() { c.n++ }

// tenant carries the breaker and its instrument, like the real Tenant.
type tenant struct {
	brk   *breaker
	trips *counter
}

// Unlocked assigns breaker state outside any *Locked method: racy.
func (t *tenant) Unlocked() {
	t.brk.state = 1
	t.trips.Inc()
}

// silentTripLocked holds the mutex by convention but records nothing: the
// transition is invisible to reconciliation.
func (t *tenant) silentTripLocked() {
	t.brk.state = 1
}

// tripLocked is the disciplined transition; lint-clean.
func (t *tenant) tripLocked() {
	t.brk.state = 1
	t.trips.Inc()
}

// machine is an unrelated type that happens to have a state field; its
// assignments are not breaker transitions and stay lint-clean.
type machine struct {
	state int
}

// Reset mutates the unrelated state field; lint-clean.
func (m *machine) Reset() {
	m.state = 0
}
