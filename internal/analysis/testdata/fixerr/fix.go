// Package fixerr is a lint fixture for discarded errors, including the
// sanctioned exemptions (fmt printers, in-memory writers).
package fixerr

import (
	"errors"
	"fmt"
	"strings"
)

func work() error { return errors.New("boom") }

// Drop discards errors both ways and exercises the exemptions.
func Drop() string {
	work()
	_ = work()
	var b strings.Builder
	fmt.Fprintf(&b, "ok")
	b.WriteString("!")
	fmt.Println("done")
	return b.String()
}
