// Package fixconc is a lint fixture for concurrency hygiene. The analysis
// tests load it under a hot-path import path so the select-less-send rule
// applies.
package fixconc

import "sync"

// Broadcast sends into ch from a bare loop with no cancellation case.
func Broadcast(ch chan int, vals []int) {
	for _, v := range vals {
		ch <- v
	}
}

// Locker copies its mutex parameter by value.
func Locker(mu sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// Spawn starts goroutines that capture the loop variable.
func Spawn(vals []int, f func(int)) {
	for i := range vals {
		go func() {
			f(i)
		}()
	}
}
