// Package fixpanic is a lint fixture for panic discipline in library code.
package fixpanic

// Documented rejects negative input. It panics if n < 0 (programmer
// invariant documented here, so the analyzer stays quiet).
func Documented(n int) int {
	if n < 0 {
		panic("fixpanic: negative")
	}
	return n
}

// Undocumented states no contract about failing on bad input.
func Undocumented(n int) int {
	if n < 0 {
		panic("fixpanic: negative")
	}
	return n
}
