// Package fixstagesend is a lint fixture for the staged pipeline's send
// discipline. The analysis tests load it under scipp/internal/pipeline so
// the stagesend rule applies: every send needs a select with an escape case.
package fixstagesend

// Bare sends directly with no select.
func Bare(ch chan int, v int) {
	ch <- v
}

// Naked wraps the send in a single-case select with no escape.
func Naked(ch chan int, v int) {
	select {
	case ch <- v:
	}
}

// Guarded pairs the send with an abort receive; lint-clean.
func Guarded(ch chan int, abort <-chan struct{}, v int) bool {
	select {
	case ch <- v:
		return true
	case <-abort:
		return false
	}
}

// NonBlocking bounds the send with a default; lint-clean.
func NonBlocking(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}
