// Package fixshapecontract exercises the shapecontract analyzer: the
// dataset-wide MaxShape() bound consulted inside a //scipp:hotpath-reachable
// per-sample loop is flagged; the hoisted setup call, per-sample shape
// queries, and unannotated code are not.
package fixshapecontract

// Shape is a stand-in for the tensor shape type.
type Shape []int

// Bounded is a stand-in for a ShapeBounded format.
type Bounded struct{ c, l int }

// MaxShape returns the archive-wide decoded-shape bound.
func (b Bounded) MaxShape() Shape { return Shape{b.c, b.l} }

// Decoder is a stand-in for one sample's decoder.
type Decoder struct{ shape Shape }

// OutputShape returns this sample's own decoded shape.
func (d Decoder) OutputShape() Shape { return d.shape }

// Assemble is a per-sample hot loop: the in-loop bound queries are flagged,
// the hoisted one and the per-sample OutputShape are not.
//
//scipp:hotpath
func Assemble(b Bounded, samples []Decoder) int {
	bound := b.MaxShape() // sanctioned: hoisted setup
	elems := 0
	for _, d := range samples {
		worst := b.MaxShape() // flagged: loop-invariant bound in the loop
		own := d.OutputShape()
		for i := range own {
			if own[i] > worst[i] {
				elems += bound[i]
			}
			elems += own[i]
		}
	}
	for i := 0; i < len(samples); i++ {
		elems += len(b.MaxShape()) // flagged: same smell in a plain for loop
		elems += visit(b)
	}
	return elems
}

// visit is hot by reachability from Assemble, not by annotation.
func visit(b Bounded) int {
	n := 0
	for i := 0; i < 2; i++ {
		n += len(b.MaxShape()) // flagged: hot via root Assemble
	}
	return n
}

// Cold is unannotated: the same pattern is not the hot loop's business.
func Cold(b Bounded, samples []Decoder) int {
	n := 0
	for range samples {
		n += len(b.MaxShape()) // not flagged: not hot-reachable
	}
	return n
}
