// Package fixpoolleak exercises the poolleak analyzer: a pool Get whose
// value can reach an ordinary return unreleased is flagged; deferred
// releases, all-paths releases, ownership handoffs, and rebinding are not.
package fixpoolleak

import "errors"

// Slab is a pooled buffer.
type Slab struct{ data []byte }

// SlabPool is the recognized pool type.
type SlabPool struct{ free []*Slab }

// Get pops a slab or refills from the heap.
func (p *SlabPool) Get() *Slab {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		return s
	}
	return &Slab{data: make([]byte, 64)}
}

// Put returns a slab to the freelist.
func (p *SlabPool) Put(s *Slab) { p.free = append(p.free, s) }

// LeakOnError forgets the slab on the early error return: flagged.
func LeakOnError(p *SlabPool, blob []byte) error {
	s := p.Get() // flagged: the empty-blob return leaks s
	if len(blob) == 0 {
		return errors.New("empty blob")
	}
	copy(s.data, blob)
	p.Put(s)
	return nil
}

// DeferredRelease is clean: the deferred Put covers every exit at once.
func DeferredRelease(p *SlabPool, blob []byte) error {
	s := p.Get()
	defer p.Put(s)
	if len(blob) == 0 {
		return errors.New("empty blob")
	}
	copy(s.data, blob)
	return nil
}

// ReleasedOnAllPaths is clean: each branch releases before returning.
func ReleasedOnAllPaths(p *SlabPool, ok bool) {
	s := p.Get()
	if !ok {
		p.Put(s)
		return
	}
	copy(s.data, []byte{1})
	p.Put(s)
}

// Handoff is clean: returning the slab transfers the release obligation to
// the caller.
func Handoff(p *SlabPool) *Slab {
	s := p.Get()
	s.data = s.data[:0]
	return s
}

// LeakInSelect loses the slab on the abort arm: flagged. The happy arm is a
// handoff (the receiver owns it after the send).
func LeakInSelect(p *SlabPool, out chan *Slab, abort <-chan struct{}) {
	s := p.Get() // flagged: the abort arm exits still holding s
	select {
	case out <- s:
	case <-abort:
	}
}

// ReleaseAcrossLabeledLoops is clean: both the labeled continue and the
// fallthrough exit of the inner loop release before the next acquisition.
func ReleaseAcrossLabeledLoops(p *SlabPool, n int) {
outer:
	for i := 0; i < n; i++ {
		s := p.Get()
		for j := 0; j < n; j++ {
			if j == 3 {
				p.Put(s)
				continue outer
			}
			s.data = append(s.data, byte(j))
		}
		p.Put(s)
	}
}
