// Package fixworkerguard is a lint fixture for the pipeline's goroutine
// supervision discipline. The analysis tests load it under
// scipp/internal/pipeline so the workerguard rule applies: every goroutine
// must launch through StageSupervisor.Go.
package fixworkerguard

// StageSupervisor mirrors the pipeline's supervisor: its methods are the
// only place `go` statements are allowed.
type StageSupervisor struct{}

// Go launches fn supervised; the `go` here is the sanctioned launcher.
func (s *StageSupervisor) Go(name string, fn func()) {
	go fn()
}

// watch spawns a helper from a supervisor method; lint-clean.
func (s *StageSupervisor) watch(tick func()) {
	go tick()
}

// Bare launches an unsupervised goroutine from a plain function.
func Bare(fn func()) {
	go fn()
}

// nested hides the launch inside a closure; still unsupervised.
func nested(fn func()) func() {
	return func() {
		go fn()
	}
}

// Proper routes the launch through the supervisor; lint-clean.
func Proper(s *StageSupervisor, fn func()) {
	s.Go("worker", fn)
}
