// Package fixcopydiscipline exercises the copydiscipline analyzer: cloning
// a cache-returned value on a hot path defeats the zero-copy cache-hit
// contract and is flagged; reusing a caller-provided buffer is not.
package fixcopydiscipline

import "bytes"

// BlobCache is the recognized cache type: Get returns a view the caller
// must treat as read-only shared memory, not clone.
type BlobCache struct{ m map[int][]byte }

// Get returns the cached blob for sample i, zero-copy.
func (c *BlobCache) Get(i int) ([]byte, bool) {
	b, ok := c.m[i]
	return b, ok
}

// Serve is the hot cache-hit path: every clone of blob is flagged, the
// zero-copy uses are not.
//
//scipp:hotpath
func Serve(c *BlobCache, i int, buf []byte) []byte {
	blob, ok := c.Get(i)
	if !ok {
		return nil
	}
	clone := append([]byte(nil), blob...) // flagged: full copy onto a fresh base
	dup := bytes.Clone(blob)              // flagged: explicit clone
	copy(buf, blob)                       // flagged: copy out of the cache view
	reuse := append(buf[:0], blob...)     // fine: caller's buffer, reused capacity
	_ = clone
	_ = dup
	return reuse
}

// ColdClone is not hot-reachable: cloning off the hot path is allowed.
func ColdClone(c *BlobCache, i int) []byte {
	blob, _ := c.Get(i)
	return append([]byte(nil), blob...)
}
