// Package fixdet deliberately violates the determinism contract. It is a
// lint fixture: never built into the module, only loaded by the analysis
// tests.
package fixdet

import (
	"fmt"
	"math/rand"
	"time"
)

// Emit prints per-key lines straight out of a map range, so its output order
// changes run to run.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Jitter mixes the wall clock with the global math/rand source.
func Jitter() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(3))
}
