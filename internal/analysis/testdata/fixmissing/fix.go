// Package fixmissing is a lint fixture: a codec package that forgets to
// register its format with the codec registry and blanks a decode error.
package fixmissing

import "errors"

// Decode pretends to decode b.
func Decode(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("empty")
	}
	return b, nil
}

// Use calls Decode and drops the error on the floor.
func Use(b []byte) []byte {
	out, _ := Decode(b)
	return out
}
