// Package fixdir is a lint fixture for suppression directives: one valid
// reasoned suppression and one malformed directive missing its reason.
package fixdir

import "errors"

func work() error { return errors.New("boom") }

// Quiet discards an error under an explicit, reasoned suppression.
func Quiet() {
	//lint:ignore uncheckederr fixture: the error is intentionally dropped
	_ = work()
}

//lint:ignore badformat
func alsoQuiet() {
	_ = work()
}
