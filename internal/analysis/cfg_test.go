package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// buildCFGFromBody parses a function body (statements only) and builds its
// CFG. The snippets reference undeclared identifiers freely: the CFG is
// purely syntactic and needs no type information.
func buildCFGFromBody(t *testing.T, body string) (*token.FileSet, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "cfgtest.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return fset, BuildCFG(fd.Body)
}

// nodeText renders one CFG node back to source.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// blockWith returns the unique block whose nodes' source contains substr.
func blockWith(t *testing.T, fset *token.FileSet, cfg *CFG, substr string) *Block {
	t.Helper()
	var found *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(fset, n), substr) {
				if found != nil && found != b {
					t.Fatalf("%q appears in blocks b%d and b%d:\n%s", substr, found.Index, b.Index, cfg)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q:\n%s", substr, cfg)
	}
	return found
}

// reachesAvoiding reports whether to is reachable from from along successor
// edges without passing through any block in avoid.
func reachesAvoiding(from, to *Block, avoid ...*Block) bool {
	banned := make(map[*Block]bool, len(avoid))
	for _, b := range avoid {
		banned[b] = true
	}
	seen := map[*Block]bool{from: true}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s] && !banned[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	fset, cfg := buildCFGFromBody(t, `
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if j == 3 {
				continue outer
			}
			if j == 4 {
				break outer
			}
			inner()
		}
		post()
	}
	after()`)
	contBlock := blockWith(t, fset, cfg, "j == 3")
	brkBlock := blockWith(t, fset, cfg, "j == 4")
	outerPost := blockWith(t, fset, cfg, "i++")
	postCall := blockWith(t, fset, cfg, "post()")
	afterCall := blockWith(t, fset, cfg, "after()")
	innerHead := blockWith(t, fset, cfg, "j < m")

	// continue outer jumps to the outer post statement without running the
	// rest of the outer body or re-testing the inner loop.
	if !reachesAvoiding(contBlock, outerPost, postCall, innerHead, brkBlock) {
		t.Errorf("continue outer does not reach the outer post block directly:\n%s", cfg)
	}
	// break outer leaves both loops at once: after() is reachable without
	// touching the outer post, outer head, or inner head again.
	outerHead := blockWith(t, fset, cfg, "i < n")
	if !reachesAvoiding(brkBlock, afterCall, outerPost, outerHead, innerHead, postCall) {
		t.Errorf("break outer does not reach after() directly:\n%s", cfg)
	}
	// The normal inner exit still runs post() before re-testing the loop.
	if !reachesAvoiding(innerHead, postCall, contBlock, brkBlock) {
		t.Errorf("inner loop exit does not fall through to post():\n%s", cfg)
	}
}

func TestCFGSelectAbortArms(t *testing.T) {
	fset, cfg := buildCFGFromBody(t, `
	select {
	case out <- v:
		sent()
	case <-abort:
		aborted()
	}
	done()`)
	sendArm := blockWith(t, fset, cfg, "out <- v")
	abortArm := blockWith(t, fset, cfg, "<-abort")
	if sendArm == abortArm {
		t.Fatalf("select arms share a block:\n%s", cfg)
	}
	// Each arm's comm lives only in its clause block, so a dataflow pass
	// scanning the abort arm never sees the send.
	for _, n := range abortArm.Nodes {
		if strings.Contains(nodeText(fset, n), "out <- v") {
			t.Errorf("abort arm sees the send comm:\n%s", cfg)
		}
	}
	doneBlock := blockWith(t, fset, cfg, "done()")
	if !reachesAvoiding(sendArm, doneBlock, abortArm) {
		t.Errorf("send arm does not rejoin at done():\n%s", cfg)
	}
	if !reachesAvoiding(abortArm, doneBlock, sendArm) {
		t.Errorf("abort arm does not rejoin at done():\n%s", cfg)
	}
}

func TestCFGDeferredReleaseCollected(t *testing.T) {
	fset, cfg := buildCFGFromBody(t, `
	s := p.Get()
	defer p.Put(s)
	if bad {
		return
	}
	use(s)`)
	if len(cfg.Defers) != 1 {
		t.Fatalf("Defers = %d calls, want 1:\n%s", len(cfg.Defers), cfg)
	}
	if got := nodeText(fset, cfg.Defers[0]); got != "p.Put(s)" {
		t.Errorf("deferred call = %q, want %q", got, "p.Put(s)")
	}
	// The early return and the fallthrough end both reach the ordinary exit.
	entry := cfg.Entry
	if !reachesAvoiding(entry, cfg.Exit) {
		t.Errorf("exit unreachable from entry:\n%s", cfg)
	}
	useBlock := blockWith(t, fset, cfg, "use(s)")
	if !reachesAvoiding(useBlock, cfg.Exit) {
		t.Errorf("fallthrough end does not reach exit:\n%s", cfg)
	}
}

func TestCFGEarlyReturnAndPanicExits(t *testing.T) {
	fset, cfg := buildCFGFromBody(t, `
	if err != nil {
		return
	}
	if worse {
		panic("x")
	}
	ok()`)
	errCond := blockWith(t, fset, cfg, "err != nil")
	panicBlock := blockWith(t, fset, cfg, `panic("x")`)
	okBlock := blockWith(t, fset, cfg, "ok()")

	// The error branch exits without running ok().
	if !reachesAvoiding(errCond, cfg.Exit, okBlock, panicBlock) {
		t.Errorf("early return does not reach exit directly:\n%s", cfg)
	}
	// panic("x") targets the panic exit, never the ordinary one.
	if !reachesAvoiding(panicBlock, cfg.PanicExit) {
		t.Errorf("panic does not reach the panic exit:\n%s", cfg)
	}
	if reachesAvoiding(panicBlock, cfg.Exit) {
		t.Errorf("panic block reaches the ordinary exit:\n%s", cfg)
	}
	if !reachesAvoiding(okBlock, cfg.Exit) {
		t.Errorf("ok() does not reach the ordinary exit:\n%s", cfg)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	fset, cfg := buildCFGFromBody(t, `
	switch tag {
	case 1:
		first()
		fallthrough
	case 2:
		second()
	default:
		other()
	}
	done()`)
	oneBlock := blockWith(t, fset, cfg, "first()")
	twoBlock := blockWith(t, fset, cfg, "second()")
	otherBlock := blockWith(t, fset, cfg, "other()")
	doneBlock := blockWith(t, fset, cfg, "done()")

	if !reachesAvoiding(oneBlock, twoBlock, otherBlock, doneBlock) {
		t.Errorf("fallthrough does not wire case 1 into case 2:\n%s", cfg)
	}
	if reachesAvoiding(oneBlock, otherBlock) {
		t.Errorf("case 1 reaches default:\n%s", cfg)
	}
	for _, arm := range []*Block{twoBlock, otherBlock} {
		if !reachesAvoiding(arm, doneBlock) {
			t.Errorf("b%d does not rejoin at done():\n%s", arm.Index, cfg)
		}
	}
}
