package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	// Path is the import path within the module (e.g. "scipp/internal/dist").
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports resolve to source directories
// under the module root; standard-library imports resolve through the
// go/importer source importer.
type Loader struct {
	ModulePath string
	ModuleRoot string
	Fset       *token.FileSet

	std     types.ImporterFrom
	pkgs    map[string]*Package       // by import path, fully loaded
	loading map[string]bool           // import-cycle guard
	typed   map[string]*types.Package // importer cache
}

// NewLoader returns a Loader for the module rooted at root. The module path
// is read from root's go.mod.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		ModulePath: mod,
		ModuleRoot: root,
		Fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		typed:      make(map[string]*types.Package),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadAll walks the module tree and loads every non-test package. Hidden
// directories and testdata trees are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// LoadDir parses and type-checks the non-test package in dir, registering it
// under the given import path. Test files (_test.go) are excluded: the
// analyzers govern shipped code only.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.typed[path] = tpkg
	return pkg, nil
}

// loaderImporter resolves imports during type checking.
type loaderImporter Loader

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := l.ModuleRoot
		if rel != "" {
			dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tp, err := li.std.ImportFrom(path, srcDir, mode)
	if err != nil {
		return nil, err
	}
	l.typed[path] = tp
	return tp, nil
}
