// Package analysis is the repository's static-analysis framework: a small,
// stdlib-only (go/ast, go/parser, go/types) diagnostic engine plus the
// repo-specific analyzers that enforce the invariants the paper reproduction
// depends on — deterministic randomness and timing, codec registry and
// error contracts, panic discipline in library code, and concurrency
// hygiene on the pipeline hot paths.
//
// Diagnostics can be suppressed at a site with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it, or for a whole
// file with
//
//	//lint:file-ignore <analyzer> <reason>
//
// The reason is mandatory: an unexplained suppression is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	default:
		return "error"
	}
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: [%s] %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Severity, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a package.
type Analyzer struct {
	// Name identifies the analyzer in reports and lint:ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the pass's package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (e.g. "scipp/internal/codec/lut").
	// Scope decisions (which analyzers apply where) key off this.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Module is the module-wide hot-path call graph over every package of
	// the run (see BuildModule); flow-aware analyzers key off it.
	Module *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(sev Severity, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InternalPath reports whether the pass's package lives under internal/
// (library code, as opposed to cmd/ tools and examples/).
func (p *Pass) InternalPath() bool {
	return strings.Contains(p.Path, "/internal/")
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // names, or ["*"]
	reason    string
	fileWide  bool
	used      bool
	pos       token.Position
}

func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file {
		return false
	}
	if !d.fileWide && diag.Pos.Line != d.line && diag.Pos.Line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == "*" || a == diag.Analyzer {
			return true
		}
	}
	return false
}

// parseDirectives extracts lint directives from a file's comments.
func parseDirectives(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			fileWide := false
			var rest string
			switch {
			case strings.HasPrefix(text, "lint:ignore "):
				rest = strings.TrimPrefix(text, "lint:ignore ")
			case strings.HasPrefix(text, "lint:file-ignore "):
				rest = strings.TrimPrefix(text, "lint:file-ignore ")
				fileWide = true
			default:
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				*diags = append(*diags, Diagnostic{
					Analyzer: "lintdirective",
					Severity: Error,
					Pos:      pos,
					Message:  "malformed lint directive: want //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			out = append(out, &ignoreDirective{
				file:      pos.Filename,
				line:      pos.Line,
				analyzers: strings.Split(fields[0], ","),
				reason:    strings.Join(fields[1:], " "),
				fileWide:  fileWide,
				pos:       pos,
			})
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to each package and returns the
// surviving (non-suppressed) diagnostics sorted by position. The module's
// hot-path call graph is built once over all packages and shared by every
// pass, so cross-package reachability is consistent within the run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	var directives []*ignoreDirective
	module := BuildModule(pkgs)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(pkg.Fset, f, &raw)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   module,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}
	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range directives {
			if dir.matches(d) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// All returns the repository's analyzer set.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		CodecContract,
		Panics,
		Concurrency,
		UncheckedError,
		Retry,
		DistSend,
		StageSend,
		DataserveSend,
		HotAlloc,
		ShapeContract,
		PoolLeak,
		CopyDiscipline,
		WorkerGuard,
		BreakerState,
	}
}
