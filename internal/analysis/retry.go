package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Retry keeps the resilience idiom safe by construction: a retry loop —
// a condition-less `for` that `continue`s on an error path — must be bounded
// by an attempt cap or carry a stop/context check, or a persistent failure
// spins it forever. The sanctioned shapes are
//
//	for attempt := 0; attempt < max; attempt++ { ... }          // cap in the header
//	for { select { case <-stop: return; default: } ... }        // cancellation check
//	for { attempt++; if attempt > max { return err } ... }      // counted in the body
//
// The analyzer applies to library code (internal/); success-driven rejection
// loops (no error in sight) are not retry loops and are left alone.
var Retry = &Analyzer{
	Name: "retry",
	Doc:  "flag unbounded retry loops: an error-path continue in a condition-less for with no attempt cap or stop/context check",
	Run:  runRetry,
}

func runRetry(pass *Pass) {
	if !pass.InternalPath() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !retriesOnError(pass, loop.Body) {
				return true
			}
			if hasRetryGuard(pass, loop.Body) {
				return true
			}
			pass.Reportf(Error, loop.Pos(),
				"unbounded retry loop: continues on an error path with no attempt cap or stop/context check; bound it (for attempt := 0; attempt < max; attempt++) or add a cancellation case")
			return true
		})
	}
}

// retriesOnError reports whether the loop body directly (not through a
// nested loop or function literal) continues from an if whose condition
// involves an error-typed value — the signature of "failed, go around
// again".
func retriesOnError(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	var onErrPath []bool // if-condition stack: true where the condition mentions an error
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // inner loops and closures judge their own retries
		case *ast.IfStmt:
			onErrPath = append(onErrPath, mentionsError(pass.Info, n.Cond))
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			ast.Inspect(n.Body, walk)
			if n.Else != nil {
				ast.Inspect(n.Else, walk)
			}
			onErrPath = onErrPath[:len(onErrPath)-1]
			return false
		case *ast.BranchStmt:
			if n.Tok == token.CONTINUE && n.Label == nil {
				for _, onErr := range onErrPath {
					if onErr {
						found = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}

// mentionsError reports whether cond references an error-typed operand or an
// errors.Is/As classification call.
func mentionsError(info *types.Info, cond ast.Expr) bool {
	mentions := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isErrorType(obj.Type()) {
				mentions = true
			}
		case *ast.CallExpr:
			if pkgFunc(info, n, "errors", "Is") || pkgFunc(info, n, "errors", "As") {
				mentions = true
			}
		}
		return !mentions
	})
	return mentions
}

// hasRetryGuard reports whether the loop body carries a recognized bound:
// a select statement (cancellation case), a channel receive (<-stop,
// <-ctx.Done()), or an integer comparison (attempt-cap shape). Function
// literals are skipped — a guard inside a spawned closure guards nothing.
func hasRetryGuard(pass *Pass, body *ast.BlockStmt) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			guarded = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				guarded = true // receive from a stop/done channel
			}
		case *ast.BinaryExpr:
			if isIntComparison(pass.Info, n) {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// isIntComparison matches an ordered comparison between integer-typed
// operands — the shape of an in-body attempt cap.
func isIntComparison(info *types.Info, b *ast.BinaryExpr) bool {
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	isInt := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsInteger != 0
	}
	return isInt(b.X) && isInt(b.Y)
}
