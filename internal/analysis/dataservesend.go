package analysis

// DataserveSend applies the send discipline to the multi-tenant data
// service: every channel send in scipp/internal/dataserve must sit in a
// select with an escape case — a receive (the iterator's or service's
// abort channel) or a default. The service's dispatcher, workers, and
// per-epoch source/sink goroutines all hand work across bounded queues
// whose consumers can vanish mid-send (tenant detach, iterator close,
// service shutdown); a bare send on any of those paths blocks forever and
// leaks the goroutine past Service.Close. Test files are exempt (the
// loader skips them).
var DataserveSend = &Analyzer{
	Name: "dataservesend",
	Doc:  "flag channel sends in internal/dataserve not guarded by a select with an abort case",
	Run:  runDataserveSend,
}

func runDataserveSend(pass *Pass) {
	if pass.Path != "scipp/internal/dataserve" {
		return
	}
	reportUnguardedSends(pass,
		"channel send in internal/dataserve without an abort escape: use select { case ch <- v: case <-abort: } or a default case")
}
