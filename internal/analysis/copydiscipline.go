package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CopyDiscipline keeps whole-sample clones off the cache-hit path. The
// storage-hierarchy cache exists so that a warm epoch re-serves resident
// bytes; cloning the blob on every hit (append onto a nil/empty slice,
// bytes.Clone / slices.Clone, or a copy into fresh scratch) silently turns
// the zero-copy hit into a per-sample allocation plus a memcpy of the whole
// sample — the cache then saves the storage read but none of the memory
// traffic. The rule tracks values returned by Get-style calls on cache
// types (a named type whose name contains "Cache") inside hot-path
// functions and flags clone idioms applied to them. Copies into recycled
// buffers (append(buf[:0], v...)) are not clones of fresh memory and pass.
var CopyDiscipline = &Analyzer{
	Name: "copydiscipline",
	Doc:  "flag whole-sample clones of cache-resident blobs on hot paths",
	Run:  runCopyDiscipline,
}

func runCopyDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := pass.Module.HotDecl(pass.Info, fd); !hot {
				continue
			}
			tracked := cacheGotVars(pass.Info, fd.Body)
			if len(tracked) == 0 {
				continue
			}
			flagClones(pass, fd.Body, tracked)
		}
	}
}

// cacheGotVars collects the variables bound from Get-style calls on
// cache-typed receivers: blob, label, ok := c.Get(i).
func cacheGotVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isCacheGet(info, call) {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				if v, ok := objOf(info, id).(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// isCacheGet matches a Get/Lookup-prefixed method call on a cache type.
func isCacheGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !hasFoldedPrefix(sel.Sel.Name, "get", "lookup") {
		return false
	}
	recv, ok := info.Types[sel.X]
	return ok && isCacheType(recv.Type)
}

// isCacheType reports whether t (behind pointers) is a named type whose
// name contains "Cache".
func isCacheType(t types.Type) bool {
	for {
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(named.Obj().Name(), "Cache")
}

// flagClones reports clone idioms applied to tracked cache-resident values.
func flagClones(pass *Pass, body *ast.BlockStmt, tracked map[*types.Var]bool) {
	info := pass.Info
	isTracked := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := objOf(info, id).(*types.Var)
		return ok && tracked[v]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch fun.Name {
			case "append":
				// append(<fresh>, v...): a full clone into new memory.
				// Appending into a reused buffer (buf[:0]) is fine.
				if call.Ellipsis.IsValid() && len(call.Args) == 2 &&
					isTracked(call.Args[1]) && isFreshBase(info, call.Args[0]) {
					pass.Reportf(Warning, call.Pos(),
						"append clones cache-resident %s into fresh memory on the hot path: serve the resident bytes zero-copy (or reuse a pooled buffer)",
						exprString(pass.Fset, call.Args[1]))
				}
			case "copy":
				if len(call.Args) == 2 && isTracked(call.Args[1]) {
					pass.Reportf(Warning, call.Pos(),
						"copy duplicates cache-resident %s on the hot path: serve the resident bytes zero-copy",
						exprString(pass.Fset, call.Args[1]))
				}
			}
		case *ast.SelectorExpr:
			// bytes.Clone(v) / slices.Clone(v)
			if fun.Sel.Name == "Clone" && len(call.Args) == 1 && isTracked(call.Args[0]) {
				if pn := usesPackage(info, fun.X); pn != nil {
					p := pn.Imported().Path()
					if p == "bytes" || p == "slices" {
						pass.Reportf(Warning, call.Pos(),
							"%s.Clone duplicates cache-resident %s on the hot path: serve the resident bytes zero-copy",
							p, exprString(pass.Fset, call.Args[0]))
					}
				}
			}
		}
		return true
	})
}

// isFreshBase reports whether the append base denotes brand-new empty
// memory: nil, an empty composite literal, or a []T(nil) conversion.
func isFreshBase(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		// A conversion like []byte(nil) or []byte("").
		if len(e.Args) != 1 {
			return false
		}
		if _, isType := e.Fun.(*ast.ArrayType); !isType {
			return false
		}
		switch a := ast.Unparen(e.Args[0]).(type) {
		case *ast.Ident:
			return a.Name == "nil"
		case *ast.BasicLit:
			return a.Value == `""`
		}
	}
	return false
}
