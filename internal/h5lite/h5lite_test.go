package h5lite

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"scipp/internal/fp16"
	"scipp/internal/tensor"
)

func sampleFile() *File {
	f := NewFile()
	f.Attrs["source"] = "cam5-synthetic"
	f.Attrs["version"] = "1"
	data := tensor.New(tensor.F32, 2, 3, 4)
	for i := range data.F32s {
		data.F32s[i] = float32(i) * 0.25
	}
	f.Put("climate/data", data)
	label := tensor.New(tensor.I16, 3, 4)
	for i := range label.I16s {
		label.I16s[i] = int16(i % 3)
	}
	f.Put("climate/labels", label)
	h := tensor.New(tensor.F16, 5)
	for i := range h.F16s {
		h.F16s[i] = fp16.FromFloat32(float32(i) * 1.5)
	}
	f.Put("half", h)
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != f.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", f.EncodedSize(), buf.Len())
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Attrs["source"] != "cam5-synthetic" || g.Attrs["version"] != "1" {
		t.Error("attrs lost")
	}
	wantNames := []string{"climate/data", "climate/labels", "half"}
	names := g.Names()
	if len(names) != len(wantNames) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range wantNames {
		if names[i] != n {
			t.Errorf("name[%d] = %q, want %q", i, names[i], n)
		}
	}
	orig, _ := f.Get("climate/data")
	got, ok := g.Get("climate/data")
	if !ok {
		t.Fatal("dataset missing after round trip")
	}
	if !got.Shape.Equal(orig.Shape) || got.DT != orig.DT {
		t.Fatalf("shape/dtype mismatch: %v %v", got.Shape, got.DT)
	}
	if tensor.MaxAbsDiff(orig, got) != 0 {
		t.Error("F32 payload mismatch")
	}
	lab, _ := g.Get("climate/labels")
	if lab.I16s[5] != int16(5%3) {
		t.Error("I16 payload mismatch")
	}
	hOrig, _ := f.Get("half")
	hGot, _ := g.Get("half")
	for i := range hOrig.F16s {
		if hOrig.F16s[i] != hGot.F16s[i] {
			t.Fatal("F16 payload mismatch")
		}
	}
}

func TestFileIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sample.h5l")
	f := sampleFile()
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Names()) != 3 {
		t.Errorf("datasets after file IO: %v", g.Names())
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte near the end (inside the last dataset payload).
	raw[len(raw)-3] ^= 0xFF
	_, err := Read(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE----"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncated(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{2, 8, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	f := NewFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Names()) != 0 || len(g.Attrs) != 0 {
		t.Error("empty file round trip not empty")
	}
}

func TestPutReplaces(t *testing.T) {
	f := NewFile()
	f.Put("x", tensor.New(tensor.F32, 2))
	f.Put("x", tensor.New(tensor.F32, 3))
	got, _ := f.Get("x")
	if got.Elems() != 3 {
		t.Error("Put did not replace dataset")
	}
}

func TestGetMissing(t *testing.T) {
	f := NewFile()
	if _, ok := f.Get("nothing"); ok {
		t.Error("Get on missing dataset returned ok")
	}
}

func BenchmarkWriteRead(b *testing.B) {
	f := NewFile()
	data := tensor.New(tensor.F32, 16, 128, 128)
	for i := range data.F32s {
		data.F32s[i] = float32(i % 251)
	}
	f.Put("data", data)
	b.SetBytes(int64(data.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := f.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
