// Package h5lite is a minimal chunked scientific-data container standing in
// for HDF5, which the DeepCAM/CAM5 dataset uses ("stored in HDF5 files using
// 32-bit floating-point format", §IV). It supports named datasets with a
// dtype and shape, string attributes, and per-dataset CRC32 integrity, in a
// single self-describing file:
//
//	magic "H5L1" | uint32 ndatasets | uint32 nattrs
//	attrs:    {u16 klen, key, u16 vlen, value}*
//	datasets: {u16 namelen, name, u8 dtype, u8 rank, u64 dims[rank],
//	           u32 crc, u64 payloadlen, payload}*
//
// Payloads are little-endian packed element data.
package h5lite

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"scipp/internal/fp16"
	"scipp/internal/tensor"
)

var magic = [4]byte{'H', '5', 'L', '1'}

// ErrCorrupt is returned when a dataset payload fails its CRC.
var ErrCorrupt = errors.New("h5lite: corrupt dataset payload")

// File is an in-memory h5lite file: named datasets plus string attributes.
type File struct {
	Attrs    map[string]string
	datasets map[string]*tensor.Tensor
}

// NewFile returns an empty file.
func NewFile() *File {
	return &File{
		Attrs:    make(map[string]string),
		datasets: make(map[string]*tensor.Tensor),
	}
}

// Put stores a dataset under name, replacing any existing one. The tensor is
// stored by reference.
func (f *File) Put(name string, t *tensor.Tensor) { f.datasets[name] = t }

// Get returns the dataset stored under name.
func (f *File) Get(name string) (*tensor.Tensor, bool) {
	t, ok := f.datasets[name]
	return t, ok
}

// Names returns the dataset names in sorted order.
func (f *File) Names() []string {
	out := make([]string, 0, len(f.datasets))
	for k := range f.datasets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EncodedSize returns the number of bytes Write will produce.
func (f *File) EncodedSize() int {
	n := 4 + 4 + 4
	for k, v := range f.Attrs {
		n += 2 + len(k) + 2 + len(v)
	}
	for name, t := range f.datasets {
		n += 2 + len(name) + 1 + 1 + 8*len(t.Shape) + 4 + 8 + t.Bytes()
	}
	return n
}

// Write serializes the file to w.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	var u64 [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	writeStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("h5lite: string too long (%d)", len(s))
		}
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(s)))
		if _, err := bw.Write(u16[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := writeU32(uint32(len(f.datasets))); err != nil {
		return err
	}
	if err := writeU32(uint32(len(f.Attrs))); err != nil {
		return err
	}
	attrKeys := make([]string, 0, len(f.Attrs))
	for k := range f.Attrs {
		attrKeys = append(attrKeys, k)
	}
	sort.Strings(attrKeys)
	for _, k := range attrKeys {
		if err := writeStr(k); err != nil {
			return err
		}
		if err := writeStr(f.Attrs[k]); err != nil {
			return err
		}
	}
	for _, name := range f.Names() {
		t := f.datasets[name]
		if err := writeStr(name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(t.DT)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(len(t.Shape))); err != nil {
			return err
		}
		for _, d := range t.Shape {
			if err := writeU64(uint64(d)); err != nil {
				return err
			}
		}
		payload := packPayload(t)
		if err := writeU32(crc32.ChecksumIEEE(payload)); err != nil {
			return err
		}
		if err := writeU64(uint64(len(payload))); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func packPayload(t *tensor.Tensor) []byte {
	out := make([]byte, t.Bytes())
	switch t.DT {
	case tensor.F32:
		for i, v := range t.F32s {
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
		}
	case tensor.F16:
		for i, v := range t.F16s {
			binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
		}
	case tensor.I16:
		for i, v := range t.I16s {
			binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
		}
	}
	return out
}

func unpackPayload(dt tensor.DType, shape tensor.Shape, payload []byte) (*tensor.Tensor, error) {
	// Validate the shape/payload relationship BEFORE allocating: a corrupt
	// header must not trigger a huge allocation.
	elems := 1
	for _, d := range shape {
		if d < 0 || d > 1<<32 {
			return nil, fmt.Errorf("h5lite: implausible dimension %d", d)
		}
		if d > 0 && elems > (1<<33)/d {
			return nil, fmt.Errorf("h5lite: shape %v overflows element budget", shape)
		}
		elems *= d
	}
	switch dt {
	case tensor.F32, tensor.F16, tensor.I16:
	default:
		return nil, fmt.Errorf("h5lite: unknown dtype %d", int(dt))
	}
	if len(payload) != elems*dt.Size() {
		return nil, fmt.Errorf("h5lite: payload %d bytes, want %d", len(payload), elems*dt.Size())
	}
	t := tensor.New(dt, shape...)
	switch dt {
	case tensor.F32:
		for i := range t.F32s {
			t.F32s[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	case tensor.F16:
		for i := range t.F16s {
			t.F16s[i] = fp16.Bits(binary.LittleEndian.Uint16(payload[i*2:]))
		}
	case tensor.I16:
		for i := range t.I16s {
			t.I16s[i] = int16(binary.LittleEndian.Uint16(payload[i*2:]))
		}
	}
	return t, nil
}

// Read parses an h5lite file from r.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("h5lite: reading magic: %w", err)
	}
	if hdr != magic {
		return nil, errors.New("h5lite: bad magic")
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readStr := func() (string, error) {
		var b [2]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return "", err
		}
		n := binary.LittleEndian.Uint16(b[:])
		s := make([]byte, n)
		if _, err := io.ReadFull(br, s); err != nil {
			return "", err
		}
		return string(s), nil
	}

	nds, err := readU32()
	if err != nil {
		return nil, err
	}
	nattrs, err := readU32()
	if err != nil {
		return nil, err
	}
	f := NewFile()
	for i := uint32(0); i < nattrs; i++ {
		k, err := readStr()
		if err != nil {
			return nil, err
		}
		v, err := readStr()
		if err != nil {
			return nil, err
		}
		f.Attrs[k] = v
	}
	const maxPayload = 1 << 32
	for i := uint32(0); i < nds; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		dtb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rank, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		shape := make(tensor.Shape, rank)
		for d := range shape {
			v, err := readU64()
			if err != nil {
				return nil, err
			}
			shape[d] = int(v)
		}
		wantCRC, err := readU32()
		if err != nil {
			return nil, err
		}
		plen, err := readU64()
		if err != nil {
			return nil, err
		}
		if plen > maxPayload {
			return nil, fmt.Errorf("h5lite: payload length %d exceeds limit", plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, fmt.Errorf("%w: dataset %q", ErrCorrupt, name)
		}
		t, err := unpackPayload(tensor.DType(dtb), shape, payload)
		if err != nil {
			return nil, err
		}
		f.datasets[name] = t
	}
	return f, nil
}

// WriteFile serializes f to path.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		//lint:ignore uncheckederr best-effort cleanup; the write error already propagates
		out.Close()
		return err
	}
	return out.Close()
}

// ReadFile parses the h5lite file at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}
