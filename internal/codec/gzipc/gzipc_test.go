package gzipc

import (
	"testing"

	"scipp/internal/codec"
	"scipp/internal/codec/lut"
	"scipp/internal/codec/rawfmt"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

func cosmoRecord(t testing.TB, dim int) (*synthetic.CosmoSample, []byte) {
	t.Helper()
	cfg := synthetic.DefaultCosmoConfig()
	cfg.Dim = dim
	s, err := synthetic.GenerateCosmo(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s, synthetic.CosmoToRecord(s)
}

func TestRoundTripThroughGzip(t *testing.T) {
	_, rec := cosmoRecord(t, 16)
	z, err := Encode(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(rec) {
		t.Errorf("gzip did not compress: %d >= %d", len(z), len(rec))
	}
	f := Wrap(rawfmt.Cosmo())
	if f.Name() != "gzip+raw-cosmo" {
		t.Errorf("name = %q", f.Name())
	}
	cd, err := f.Open(z)
	if err != nil {
		t.Fatal(err)
	}
	out, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	// Must match the un-gzipped baseline exactly.
	plain, err := rawfmt.Cosmo().Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := codec.Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(out, want) != 0 {
		t.Error("gzip wrapper altered decode output")
	}
}

func TestWorkloadReportsSerialInflate(t *testing.T) {
	_, rec := cosmoRecord(t, 16)
	z, err := Encode(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Wrap(rawfmt.Cosmo()).Open(z)
	if err != nil {
		t.Fatal(err)
	}
	wl := cd.Workload()
	if wl.BytesIn != len(z) {
		t.Errorf("BytesIn = %d, want compressed size %d", wl.BytesIn, len(z))
	}
	if wl.SerialBytes != len(rec) {
		t.Errorf("SerialBytes = %d, want inflated size %d", wl.SerialBytes, len(rec))
	}
}

func TestGzipBeatsLUTRatioButStaysClose(t *testing.T) {
	// §V-B: gzip ~5x vs LUT ~4x on the int16 source. Verify the ordering
	// and rough magnitudes on synthetic data.
	s, rec := cosmoRecord(t, 48)
	z, err := Encode(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	lutBlob, err := lut.Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	src := float64(s.StoredBytes())
	gzRatio := src / float64(len(z))
	lutRatio := src / float64(len(lutBlob))
	t.Logf("gzip %.2fx, lut %.2fx", gzRatio, lutRatio)
	if gzRatio < lutRatio*0.8 {
		t.Errorf("gzip ratio %.2f much worse than lut %.2f; paper has gzip ahead", gzRatio, lutRatio)
	}
	// At dim=48 the per-sample table overhead is not yet amortized; the
	// paper-scale ~4x shows up at dim=128 (validated by the bench harness).
	if lutRatio < 2.5 {
		t.Errorf("lut ratio %.2f below the small-volume ballpark", lutRatio)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Wrap(rawfmt.Cosmo()).Open([]byte("definitely-not-gzip")); err == nil {
		t.Error("non-gzip blob accepted")
	}
	// Valid gzip wrapping garbage for the inner format.
	z, err := Encode([]byte("junk-payload"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(rawfmt.Cosmo()).Open(z); err == nil {
		t.Error("gzip of junk accepted by inner format")
	}
}

func TestEncodeLevels(t *testing.T) {
	_, rec := cosmoRecord(t, 16)
	fast, err := Encode(rec, 1)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Encode(rec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) > len(fast) {
		t.Errorf("level 9 (%d) larger than level 1 (%d)", len(best), len(fast))
	}
	if _, err := Encode(rec, 42); err == nil {
		t.Error("invalid level accepted")
	}
}
