// Package gzipc wraps any codec.Format with whole-blob gzip compression —
// the conventional-compression baseline of §IX-B ("the compressed tfrecord,
// using gzip, which is part of the standard benchmark implementation").
//
// gzip achieves a somewhat better ratio than the domain codecs (~5x vs ~4x
// for CosmoFlow) but its inflate stage is inherently serial and host-CPU
// only ("there is no existing GPU version for gunzip"), which the Workload
// reports via SerialBytes so the pipeline cost models charge it to the CPU.
package gzipc

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"scipp/internal/codec"
	"scipp/internal/codec/rawfmt"
)

// The gzip-wrapped baseline container formats of §IX-B are formats in their
// own right and register alongside the codecs they wrap.
func init() {
	codec.Register(Wrap(rawfmt.DeepCAM()))
	codec.Register(Wrap(rawfmt.Cosmo()))
}

// Encode gzip-compresses an inner-format blob at the given level
// (gzip.DefaultCompression if level is 0).
func Encode(inner []byte, level int) ([]byte, error) {
	if level == 0 {
		level = gzip.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("gzipc: %w", err)
	}
	if _, err := w.Write(inner); err != nil {
		return nil, fmt.Errorf("gzipc: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("gzipc: %w", err)
	}
	return buf.Bytes(), nil
}

// Wrap returns a Format that gunzips blobs and then opens them with inner.
func Wrap(inner codec.Format) codec.Format { return format{inner: inner} }

type format struct{ inner codec.Format }

func (f format) Name() string { return "gzip+" + f.inner.Name() }

func (f format) Open(blob []byte) (codec.ChunkDecoder, error) {
	zr, err := gzip.NewReader(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("gzipc: %w", err)
	}
	// Inflate-size guard: scientific samples compress at most ~100x; a
	// stream expanding beyond maxInflate of a 1+ GiB ceiling is corrupt or
	// hostile (zip bomb).
	const maxInflate = 1 << 31
	inflated, err := io.ReadAll(io.LimitReader(zr, maxInflate+1))
	if err != nil {
		return nil, fmt.Errorf("gzipc: inflate: %w", err)
	}
	if len(inflated) > maxInflate {
		return nil, fmt.Errorf("gzipc: inflated stream exceeds %d bytes", maxInflate)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("gzipc: %w", err)
	}
	cd, err := f.inner.Open(inflated)
	if err != nil {
		return nil, err
	}
	return &decoder{ChunkDecoder: cd, compressed: len(blob), inflated: len(inflated)}, nil
}

// decoder forwards to the inner decoder but adjusts the workload to account
// for the serial inflate stage.
type decoder struct {
	codec.ChunkDecoder
	compressed int
	inflated   int
}

func (d *decoder) Workload() codec.Workload {
	wl := d.ChunkDecoder.Workload()
	wl.BytesIn = d.compressed
	// Inflate must materialize the whole inner blob serially before any
	// chunk decode can run.
	wl.SerialBytes += d.inflated
	return wl
}
