package codec

import (
	"errors"
	"fmt"
	"testing"

	"scipp/internal/tensor"
)

// fakeDecoder decodes chunk i by writing i into element i.
type fakeDecoder struct {
	n       int
	failAt  int // chunk index that errors, -1 for none
	dtype   tensor.DType
	counter chan int
}

func (f *fakeDecoder) OutputShape() tensor.Shape { return tensor.Shape{f.n} }
func (f *fakeDecoder) OutputDType() tensor.DType { return f.dtype }
func (f *fakeDecoder) NumChunks() int            { return f.n }
func (f *fakeDecoder) Workload() Workload        { return Workload{Chunks: f.n} }
func (f *fakeDecoder) DecodeChunk(c int, dst *tensor.Tensor) error {
	if c == f.failAt {
		return errors.New("injected failure")
	}
	dst.Set32(c, float32(c))
	if f.counter != nil {
		f.counter <- c
	}
	return nil
}

type fakeFormat struct{ name string }

func (f fakeFormat) Name() string { return f.name }
func (f fakeFormat) Open([]byte) (ChunkDecoder, error) {
	return &fakeDecoder{n: 4, failAt: -1, dtype: tensor.F32}, nil
}

func TestDecodeSerial(t *testing.T) {
	d := &fakeDecoder{n: 8, failAt: -1, dtype: tensor.F32}
	out, err := Decode(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if out.F32s[i] != float32(i) {
			t.Fatalf("chunk %d not decoded", i)
		}
	}
}

func TestDecodeParallelAllChunksOnce(t *testing.T) {
	n := 32
	d := &fakeDecoder{n: n, failAt: -1, dtype: tensor.F32, counter: make(chan int, n)}
	out, err := DecodeParallel(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	close(d.counter)
	seen := make(map[int]int)
	for c := range d.counter {
		seen[c]++
	}
	if len(seen) != n {
		t.Errorf("decoded %d distinct chunks, want %d", len(seen), n)
	}
	for c, k := range seen {
		if k != 1 {
			t.Errorf("chunk %d decoded %d times", c, k)
		}
	}
	for i := 0; i < n; i++ {
		if out.F32s[i] != float32(i) {
			t.Fatalf("chunk %d missing from output", i)
		}
	}
}

func TestDecodeParallelDegradesToSerial(t *testing.T) {
	d := &fakeDecoder{n: 1, failAt: -1, dtype: tensor.F32}
	if _, err := DecodeParallel(d, 16); err != nil {
		t.Fatal(err)
	}
	d2 := &fakeDecoder{n: 4, failAt: -1, dtype: tensor.F32}
	if _, err := DecodeParallel(d2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrorsPropagate(t *testing.T) {
	d := &fakeDecoder{n: 4, failAt: 2, dtype: tensor.F32}
	if _, err := Decode(d); err == nil {
		t.Error("serial decode swallowed error")
	}
	if _, err := DecodeParallel(d, 3); err == nil {
		t.Error("parallel decode swallowed error")
	}
}

func TestRegistry(t *testing.T) {
	name := fmt.Sprintf("test-fmt-%p", t)
	Register(fakeFormat{name: name})
	f, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != name {
		t.Error("wrong format returned")
	}
	found := false
	for _, n := range Formats() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Error("Formats() missing registered name")
	}
	if _, err := Lookup("definitely-missing"); err == nil {
		t.Error("missing format lookup succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(fakeFormat{name: name})
}
