package deltafp

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"

	"scipp/internal/tensor"
)

// EncodeParallel is Encode with per-line parallelism: line independence
// works in both directions, so the encoder can process lines on a worker
// pool and assemble the blob afterwards. Output is byte-identical to
// Encode. This is the encode-side analogue of the paper's step b.1, which
// runs once per sample at dataset-preparation time.
func EncodeParallel(t *tensor.Tensor, opts Options, workers int) ([]byte, error) {
	if t.DT != tensor.F32 || len(t.Shape) != 3 {
		return nil, fmt.Errorf("deltafp: need rank-3 F32 tensor, got %v %v", t.DT, t.Shape)
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	c, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	if w == 0 || h == 0 || c == 0 {
		return nil, fmt.Errorf("deltafp: empty tensor")
	}
	if w > math.MaxUint16 {
		return nil, fmt.Errorf("deltafp: line width %d exceeds uint16 segment counters", w)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nLines := c * h
	if workers > nLines {
		workers = nLines
	}

	lineBufs := make([][]byte, nLines)
	var wg sync.WaitGroup
	next := make(chan int, nLines)
	for l := 0; l < nLines; l++ {
		next <- l
	}
	close(next)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			enc := lineEncoder{opts: opts, mantBits: 7 - opts.ExpBits}
			for l := range next {
				lineBufs[l] = enc.encodeLine(t.F32s[l*w:(l+1)*w], nil)
			}
		}()
	}
	wg.Wait()

	// Assemble: header, offset table, concatenated payloads.
	offsets := make([]uint32, nLines+1)
	total := 0
	for l, buf := range lineBufs {
		total += len(buf)
		offsets[l+1] = uint32(total)
	}
	headerLen := 4 * 5
	blob := make([]byte, headerLen+4*(nLines+1)+total)
	binary.LittleEndian.PutUint32(blob[0:], blobMagic)
	binary.LittleEndian.PutUint32(blob[4:], uint32(c))
	binary.LittleEndian.PutUint32(blob[8:], uint32(h))
	binary.LittleEndian.PutUint32(blob[12:], uint32(w))
	binary.LittleEndian.PutUint32(blob[16:], uint32(opts.ExpBits))
	for i, off := range offsets {
		binary.LittleEndian.PutUint32(blob[headerLen+4*i:], off)
	}
	pos := headerLen + 4*(nLines+1)
	for _, buf := range lineBufs {
		pos += copy(blob[pos:], buf)
	}
	return blob, nil
}
