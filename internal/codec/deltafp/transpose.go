package deltafp

import (
	"fmt"
	"math"

	"scipp/internal/codec"
	"scipp/internal/fp16"
	"scipp/internal/tensor"
)

// FormatHWC returns a deltafp format whose decoder fuses the CHW -> HWC
// layout transpose into decompression — the optimization §X highlights
// ("the fusion of data transpose with decompression thus achieving higher
// efficiency for preparing the data for computation"). The baseline path
// must decode into CHW and then run a separate transpose pass; the fused
// decoder writes each line's values directly to their strided HWC
// destinations while reconstructing them.
func FormatHWC() codec.Format { return formatHWC{} }

func init() {
	codec.Register(Format())
	codec.Register(FormatHWC())
}

type formatHWC struct{}

func (formatHWC) Name() string { return "deltafp-hwc" }

func (formatHWC) Open(blob []byte) (codec.ChunkDecoder, error) {
	cd, err := Format().Open(blob)
	if err != nil {
		return nil, err
	}
	return &hwcDecoder{inner: cd.(*Decoder)}, nil
}

// hwcDecoder decodes line chunks directly into [H, W, C] layout.
type hwcDecoder struct {
	inner *Decoder
}

// OutputShape implements codec.ChunkDecoder.
func (d *hwcDecoder) OutputShape() tensor.Shape {
	return tensor.Shape{d.inner.h, d.inner.w, d.inner.c}
}

// OutputDType implements codec.ChunkDecoder.
func (d *hwcDecoder) OutputDType() tensor.DType { return tensor.F16 }

// NumChunks implements codec.ChunkDecoder.
func (d *hwcDecoder) NumChunks() int { return d.inner.NumChunks() }

// Workload implements codec.ChunkDecoder. The fused transform writes
// strided (uncoalesced) output, which the cost model reflects with a small
// extra op charge; the payoff is eliminating the separate transpose pass.
func (d *hwcDecoder) Workload() codec.Workload {
	wl := d.inner.Workload()
	wl.Ops += d.inner.c * d.inner.h * d.inner.w // strided store overhead
	return wl
}

// DecodeChunk decodes line chunk (channel ci, row hi) into the strided HWC
// positions of dst.
func (d *hwcDecoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	in := d.inner
	if chunk < 0 || chunk >= in.c*in.h {
		return fmt.Errorf("deltafp: chunk %d out of range", chunk)
	}
	if dst.DT != tensor.F16 || !dst.Shape.Equal(d.OutputShape()) {
		return fmt.Errorf("deltafp: dst must be F16 %v", d.OutputShape())
	}
	ci, hi := chunk/in.h, chunk%in.h
	line := in.payload[in.offsets[chunk]:in.offsets[chunk+1]]
	// Destination stride: element (hi, x, ci) lives at (hi*w + x)*c + ci.
	base := hi * in.w * in.c
	put := func(x int, v fp16.Bits) { dst.F16s[base+x*in.c+ci] = v }

	switch line[0] {
	case modeRaw:
		for x := 0; x < in.w; x++ {
			v := math.Float32frombits(leU32(line[1+4*x:]))
			put(x, fp16.FromFloat32(v))
		}
	case modeConst:
		v := fp16.FromFloat32(math.Float32frombits(leU32(line[1:])))
		for x := 0; x < in.w; x++ {
			put(x, v)
		}
	case modeDelta:
		// Reuse the contiguous delta reconstruction, then scatter. The
		// reconstruction itself is the loop-carried part; the scatter is
		// the fused transpose.
		tmp := make([]fp16.Bits, in.w)
		if err := in.decodeDeltaLine(line, tmp); err != nil {
			return err
		}
		for x, v := range tmp {
			put(x, v)
		}
	}
	return nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
