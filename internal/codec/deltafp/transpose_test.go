package deltafp

import (
	"testing"

	"scipp/internal/codec"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

func TestFusedTransposeMatchesSeparatePass(t *testing.T) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 3
	cfg.Height = 24
	cfg.Width = 80
	s, err := synthetic.GenerateClimate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Encode(s.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: CHW decode then a separate transpose pass.
	chw, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := codec.Decode(chw)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.TransposeCHWtoHWC(plain)

	// Fused: decode straight into HWC.
	hwc, err := FormatHWC().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Decode(hwc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape.Equal(want.Shape) {
		t.Fatalf("fused shape %v, want %v", got.Shape, want.Shape)
	}
	for i := range want.F16s {
		if got.F16s[i] != want.F16s[i] {
			t.Fatalf("fused transpose differs at %d", i)
		}
	}
}

func TestFusedTransposeParallel(t *testing.T) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 2
	cfg.Height = 16
	cfg.Width = 64
	s, err := synthetic.GenerateClimate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Encode(s.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := FormatHWC().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := codec.DecodeParallel(cd, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.F16s {
		if a.F16s[i] != b.F16s[i] {
			t.Fatal("parallel fused decode differs")
		}
	}
}

func TestFusedTransposeValidation(t *testing.T) {
	src := tensor.New(tensor.F32, 1, 2, 16)
	blob, err := Encode(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := FormatHWC().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if cd.NumChunks() != 2 {
		t.Errorf("chunks = %d", cd.NumChunks())
	}
	dst := tensor.New(tensor.F16, 2, 16, 1)
	if err := cd.DecodeChunk(5, dst); err == nil {
		t.Error("chunk out of range accepted")
	}
	if err := cd.DecodeChunk(0, tensor.New(tensor.F16, 1, 2, 16)); err == nil {
		t.Error("CHW-shaped dst accepted by HWC decoder")
	}
	if _, err := FormatHWC().Open([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	// Workload charges extra ops for the strided stores.
	plain, _ := Format().Open(blob)
	if cd.Workload().Ops <= plain.Workload().Ops {
		t.Error("fused workload should charge strided-store overhead")
	}
}
