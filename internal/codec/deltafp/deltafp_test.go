package deltafp

import (
	"math"
	"testing"
	"testing/quick"

	"scipp/internal/codec"
	"scipp/internal/fp16"
	"scipp/internal/stats"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

// encodeDecode is a test helper running a full round trip.
func encodeDecode(t *testing.T, src *tensor.Tensor, opts Options) (*tensor.Tensor, *Decoder) {
	t.Helper()
	blob, err := Encode(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	return dec, cd.(*Decoder)
}

func relErr(ref, got float32) float64 {
	r := math.Abs(float64(ref))
	if r == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got)-float64(ref)) / r
}

func TestConstLine(t *testing.T) {
	src := tensor.New(tensor.F32, 1, 2, 64)
	for i := range src.F32s {
		src.F32s[i] = 42.5
	}
	dec, d := encodeDecode(t, src, Options{})
	raw, cnst, delta := d.LineModes()
	if cnst != 2 || raw != 0 || delta != 0 {
		t.Errorf("line modes raw=%d const=%d delta=%d, want all const", raw, cnst, delta)
	}
	for i := range dec.F16s {
		if dec.At32(i) != 42.5 {
			t.Fatalf("const decode wrong at %d: %g", i, dec.At32(i))
		}
	}
}

func TestSmoothLineIsDelta(t *testing.T) {
	w := 256
	src := tensor.New(tensor.F32, 1, 1, w)
	for i := 0; i < w; i++ {
		src.F32s[i] = 100 + float32(math.Sin(float64(i)*0.05))
	}
	dec, d := encodeDecode(t, src, Options{})
	_, _, delta := d.LineModes()
	if delta != 1 {
		t.Fatalf("smooth line not delta-encoded: modes %v", d)
	}
	for i := 0; i < w; i++ {
		if e := relErr(src.F32s[i], dec.At32(i)); e > 0.01 {
			t.Fatalf("value %d error %.3f%% too large (ref %g got %g)", i, e*100, src.F32s[i], dec.At32(i))
		}
	}
	// And it must actually compress.
	st, err := BlobStats(mustEncode(t, src, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio < 2 {
		t.Errorf("smooth line ratio %.2f, want > 2x", st.Ratio)
	}
}

func mustEncode(t *testing.T, src *tensor.Tensor, opts Options) []byte {
	t.Helper()
	blob, err := Encode(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestAbruptLineFallsBackToRaw(t *testing.T) {
	w := 128
	src := tensor.New(tensor.F32, 1, 1, w)
	r := xrand.New(5)
	for i := 0; i < w; i++ {
		src.F32s[i] = float32(r.NormFloat64()) * float32(math.Pow(10, float64(r.Intn(8))-4))
	}
	dec, d := encodeDecode(t, src, Options{})
	rawN, _, _ := d.LineModes()
	if rawN != 1 {
		t.Fatalf("wild line should be RAW; modes raw=%d", rawN)
	}
	// RAW is exact up to the FP16 emission.
	for i := 0; i < w; i++ {
		want := fp16.RoundTrip32(src.F32s[i])
		if dec.At32(i) != want {
			t.Fatalf("raw line value %d: got %g want %g", i, dec.At32(i), want)
		}
	}
}

func TestNonFiniteGoesRaw(t *testing.T) {
	src := tensor.New(tensor.F32, 1, 1, 8)
	src.F32s[3] = float32(math.Inf(1))
	src.F32s[5] = float32(math.NaN())
	dec, d := encodeDecode(t, src, Options{})
	rawN, _, _ := d.LineModes()
	if rawN != 1 {
		t.Error("non-finite line must be RAW")
	}
	if !dec.F16s[3].IsInf(1) {
		t.Error("Inf lost")
	}
	if !dec.F16s[5].IsNaN() {
		t.Error("NaN lost")
	}
}

func TestZeroDeltaByte(t *testing.T) {
	// Runs of identical values inside an otherwise varying line use the
	// reserved zero byte.
	w := 64
	src := tensor.New(tensor.F32, 1, 1, w)
	for i := 0; i < w; i++ {
		src.F32s[i] = 10 + float32(i/8) // steps with 8-long flats
	}
	dec, d := encodeDecode(t, src, Options{})
	_, _, delta := d.LineModes()
	if delta != 1 {
		t.Fatalf("step line should delta-encode")
	}
	for i := 0; i < w; i++ {
		if e := relErr(src.F32s[i], dec.At32(i)); e > 0.01 {
			t.Fatalf("step line value %d error too large", i)
		}
	}
}

func TestErrorBoundOnClimateData(t *testing.T) {
	// The paper's headline quality claim: ~3% of values with >10% error,
	// concentrated near zero. On synthetic CAM5 data we require the >10%
	// fraction to stay below 5%.
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 64
	cfg.Width = 192
	s, err := synthetic.GenerateClimate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := encodeDecode(t, s.Data, Options{})
	ref := s.Data.F32s
	got := dec.ToF32().F32s
	st := stats.RelativeErrors(ref, got, 0.10)
	if st.FracAbove > 0.05 {
		t.Errorf("%.2f%% of values exceed 10%% error, want < 5%%", st.FracAbove*100)
	}
	// The error tail must be concentrated near zero, as the paper observes
	// ("primarily for small values close to zero due to floating-point
	// denormalization").
	if st.CountAboveThres > 0 {
		nearZeroFrac := float64(st.NearZeroAbove) / float64(st.CountAboveThres)
		if nearZeroFrac < 0.9 {
			t.Errorf("only %.0f%% of >10%% errors are near zero", 100*nearZeroFrac)
		}
	}
	if st.MeanRel > 0.03 {
		t.Errorf("mean relative error %.4f too large", st.MeanRel)
	}
}

func TestCompressesClimateData(t *testing.T) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 64
	cfg.Width = 192
	s, err := synthetic.GenerateClimate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BlobStats(mustEncode(t, s.Data, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio < 2.0 {
		t.Errorf("climate compression ratio %.2f, want >= 2x vs FP32", st.Ratio)
	}
	if st.DeltaLines == 0 {
		t.Error("no lines delta-encoded on smooth climate data")
	}
	t.Logf("ratio %.2fx raw=%d const=%d delta=%d", st.Ratio, st.RawLines, st.ConstLines, st.DeltaLines)
}

func TestChunkedMatchesSerial(t *testing.T) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 2
	cfg.Height = 32
	cfg.Width = 96
	s, err := synthetic.GenerateClimate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	blob := mustEncode(t, s.Data, Options{})
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := codec.DecodeParallel(cd, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.F16s {
		if serial.F16s[i] != parallel.F16s[i] {
			t.Fatalf("parallel decode differs at %d", i)
		}
	}
}

func TestWorkloadProfile(t *testing.T) {
	src := tensor.New(tensor.F32, 2, 4, 32)
	for i := range src.F32s {
		src.F32s[i] = float32(i % 7)
	}
	blob := mustEncode(t, src, Options{})
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	wl := cd.Workload()
	if wl.Chunks != 8 {
		t.Errorf("Chunks = %d, want 8", wl.Chunks)
	}
	if wl.BytesOut != 2*2*4*32 {
		t.Errorf("BytesOut = %d", wl.BytesOut)
	}
	if wl.BytesIn != len(blob) {
		t.Errorf("BytesIn = %d, want %d", wl.BytesIn, len(blob))
	}
}

func TestOptionAblations(t *testing.T) {
	// The exponent-window / mantissa trade-off must round-trip at every
	// supported width (ablation of §V-A's "arbitrary number of bits, 3 in
	// our case").
	w := 256
	src := tensor.New(tensor.F32, 1, 1, w)
	for i := 0; i < w; i++ {
		src.F32s[i] = 50 + float32(math.Sin(float64(i)*0.1))*3
	}
	for _, expBits := range []int{2, 3, 4} {
		dec, _ := encodeDecode(t, src, Options{ExpBits: expBits})
		for i := 0; i < w; i++ {
			if e := relErr(src.F32s[i], dec.At32(i)); e > 0.02 {
				t.Errorf("expBits=%d: value %d error %.3f", expBits, i, e)
				break
			}
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Encode(tensor.New(tensor.F16, 1, 1, 4), Options{}); err == nil {
		t.Error("F16 input accepted")
	}
	if _, err := Encode(tensor.New(tensor.F32, 4), Options{}); err == nil {
		t.Error("rank-1 input accepted")
	}
	if _, err := Encode(tensor.New(tensor.F32, 0, 1, 4), Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Encode(tensor.New(tensor.F32, 1, 1, 4), Options{ExpBits: 7}); err == nil {
		t.Error("ExpBits 7 accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Format().Open(nil); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := Format().Open(make([]byte, 64)); err == nil {
		t.Error("zero blob accepted")
	}
	src := tensor.New(tensor.F32, 1, 2, 16)
	blob, err := Encode(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{8, 20, len(blob) - 1} {
		if _, err := Format().Open(blob[:cut]); err == nil {
			t.Errorf("truncated blob (%d bytes) accepted", cut)
		}
	}
	// Corrupt the offset table.
	bad := append([]byte(nil), blob...)
	bad[20] = 0xFF
	bad[21] = 0xFF
	if _, err := Format().Open(bad); err == nil {
		t.Error("corrupt offsets accepted")
	}
}

func TestDecodeChunkValidation(t *testing.T) {
	src := tensor.New(tensor.F32, 1, 2, 16)
	blob := mustEncode(t, src, Options{})
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(tensor.F16, 1, 2, 16)
	if err := cd.DecodeChunk(-1, dst); err == nil {
		t.Error("negative chunk accepted")
	}
	if err := cd.DecodeChunk(99, dst); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if err := cd.DecodeChunk(0, tensor.New(tensor.F32, 1, 2, 16)); err == nil {
		t.Error("wrong dst dtype accepted")
	}
}

func TestQuickBoundedError(t *testing.T) {
	// Property: on smooth lines (random walk with bounded steps) every
	// decoded value stays within combined quantization + FP16 tolerance.
	f := func(seed uint32) bool {
		r := xrand.New(uint64(seed))
		w := 64 + r.Intn(128)
		src := tensor.New(tensor.F32, 1, 1, w)
		v := 10 + 20*r.Float32()
		for i := 0; i < w; i++ {
			src.F32s[i] = v
			v += (r.Float32() - 0.5) * 0.1 * v
		}
		blob, err := Encode(src, Options{})
		if err != nil {
			return false
		}
		cd, err := Format().Open(blob)
		if err != nil {
			return false
		}
		dec, err := codec.Decode(cd)
		if err != nil {
			return false
		}
		for i := 0; i < w; i++ {
			if relErr(src.F32s[i], dec.At32(i)) > 0.06 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSingleValueLine(t *testing.T) {
	src := tensor.New(tensor.F32, 1, 1, 1)
	src.F32s[0] = 3.25
	dec, _ := encodeDecode(t, src, Options{})
	if dec.At32(0) != 3.25 {
		t.Errorf("W=1 decode: %g", dec.At32(0))
	}
}

func BenchmarkEncode(b *testing.B) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 96
	cfg.Width = 384
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.Data.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(s.Data, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 96
	cfg.Width = 384
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := Encode(s.Data, Options{})
	if err != nil {
		b.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.Data.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(cd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeParallel(b *testing.B) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 96
	cfg.Width = 384
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := Encode(s.Data, Options{})
	if err != nil {
		b.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.Data.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeParallel(cd, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncodeParallelByteIdentical(t *testing.T) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 48
	cfg.Width = 160
	s, err := synthetic.GenerateClimate(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Encode(s.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8, 0} {
		par, err := EncodeParallel(s.Data, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: length %d vs %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: byte %d differs", workers, i)
			}
		}
	}
}

func TestEncodeParallelValidation(t *testing.T) {
	if _, err := EncodeParallel(tensor.New(tensor.F16, 1, 1, 4), Options{}, 2); err == nil {
		t.Error("F16 input accepted")
	}
	if _, err := EncodeParallel(tensor.New(tensor.F32, 0, 1, 4), Options{}, 2); err == nil {
		t.Error("empty input accepted")
	}
}

func BenchmarkEncodeParallel(b *testing.B) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 4
	cfg.Height = 96
	cfg.Width = 384
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.Data.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeParallel(s.Data, Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
