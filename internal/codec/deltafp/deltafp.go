// Package deltafp implements the paper's DeepCAM differential floating-point
// encoding (§V-A, Fig 4).
//
// A sample is a [C, H, W] FP32 stack. Each line (one row of one channel) is
// encoded independently — the per-line metadata is what "enables independent
// decoding of lines, thus enabling efficient execution on accelerator
// architectures". A line is stored in whichever of three modes is smallest:
//
//   - CONST: all neighboring values are similar; store the head value once.
//   - DELTA: a sequence of segments. Each segment stores an exact FP32 pivot
//     (the head value), the minimum exponent of the segment's deltas, and one
//     byte per following value: [sign:1][exponent-offset:expBits][mantissa:mantBits]
//     with expBits+mantBits = 7. The exponent offset is relative to the
//     segment's minimum exponent — the paper's "exponent of these differences
//     is clustered into groups of close values". Byte 0x00 encodes an exact
//     zero delta.
//   - RAW: lines with abrupt transitions or too many segments are kept
//     uncompressed "because they potentially carry interesting climate
//     phenomena".
//
// The encoder quantizes each delta against the *reconstructed* previous
// value (mirroring decoder state), so quantization error does not accumulate
// along a segment. Decoding computes in FP32 and emits FP16 — the slightly
// lossy path whose error distribution §V-A quantifies.
package deltafp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"scipp/internal/codec"
	"scipp/internal/fp16"
	"scipp/internal/tensor"
)

// Line modes.
const (
	modeRaw   = 0
	modeConst = 1
	modeDelta = 2
)

const blobMagic = 0x44465043 // "DFPC"

// Options tune the encoder. The zero value is replaced by Default().
type Options struct {
	// ExpBits is the width of the per-delta exponent-offset field
	// (paper: 3). MantBits = 7 - ExpBits.
	ExpBits int
	// MaxSegFrac caps DELTA segments at W*MaxSegFrac before falling back to
	// RAW (abrupt lines).
	MaxSegFrac float64
	// RelTol closes a segment (resetting to an exact pivot) when a single
	// delta's quantization error exceeds RelTol of the value magnitude.
	RelTol float64
	// ConstTol declares a line CONST when every neighbor delta is below
	// ConstTol relative to the line's magnitude.
	ConstTol float64
}

// Default returns the paper's configuration: 3 exponent bits, 4 mantissa
// bits, 1 sign bit per delta.
func Default() Options {
	return Options{ExpBits: 3, MaxSegFrac: 1.0 / 8, RelTol: 0.05, ConstTol: 1e-7}
}

func (o Options) withDefaults() Options {
	d := Default()
	if o.ExpBits == 0 {
		o.ExpBits = d.ExpBits
	}
	if o.MaxSegFrac == 0 {
		o.MaxSegFrac = d.MaxSegFrac
	}
	if o.RelTol == 0 {
		o.RelTol = d.RelTol
	}
	if o.ConstTol == 0 {
		o.ConstTol = d.ConstTol
	}
	return o
}

func (o Options) validate() error {
	if o.ExpBits < 1 || o.ExpBits > 6 {
		return fmt.Errorf("deltafp: ExpBits %d out of [1,6]", o.ExpBits)
	}
	if o.MaxSegFrac <= 0 || o.MaxSegFrac > 1 {
		return fmt.Errorf("deltafp: MaxSegFrac %g out of (0,1]", o.MaxSegFrac)
	}
	return nil
}

// Encode compresses a [C, H, W] FP32 tensor into a deltafp blob.
func Encode(t *tensor.Tensor, opts Options) ([]byte, error) {
	if t.DT != tensor.F32 || len(t.Shape) != 3 {
		return nil, fmt.Errorf("deltafp: need rank-3 F32 tensor, got %v %v", t.DT, t.Shape)
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	c, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	if w == 0 || h == 0 || c == 0 {
		return nil, errors.New("deltafp: empty tensor")
	}
	if w > math.MaxUint16 {
		return nil, fmt.Errorf("deltafp: line width %d exceeds uint16 segment counters", w)
	}
	nLines := c * h

	// Header: magic, C, H, W, expBits. Then line offset table, then payload.
	var payload []byte
	offsets := make([]uint32, nLines+1)
	enc := lineEncoder{opts: opts, mantBits: 7 - opts.ExpBits}
	for l := 0; l < nLines; l++ {
		line := t.F32s[l*w : (l+1)*w]
		payload = enc.encodeLine(line, payload)
		offsets[l+1] = uint32(len(payload))
	}

	headerLen := 4 * 5
	blob := make([]byte, headerLen+4*(nLines+1)+len(payload))
	binary.LittleEndian.PutUint32(blob[0:], blobMagic)
	binary.LittleEndian.PutUint32(blob[4:], uint32(c))
	binary.LittleEndian.PutUint32(blob[8:], uint32(h))
	binary.LittleEndian.PutUint32(blob[12:], uint32(w))
	binary.LittleEndian.PutUint32(blob[16:], uint32(opts.ExpBits))
	for i, off := range offsets {
		binary.LittleEndian.PutUint32(blob[headerLen+4*i:], off)
	}
	copy(blob[headerLen+4*(nLines+1):], payload)
	return blob, nil
}

type lineEncoder struct {
	opts     Options
	mantBits int
}

type deltaCode struct {
	sign byte  // 0 or 1
	exp  uint8 // raw IEEE-754 FP32 exponent bits
	mant uint8 // top mantBits of the mantissa, after rounding
	zero bool  // exact zero delta
}

// dequant reconstructs the FP32 delta a code represents.
func dequant(d deltaCode, mantBits int) float32 {
	if d.zero {
		return 0
	}
	shift := uint(23 - mantBits)
	bits := uint32(d.sign)<<31 | uint32(d.exp)<<23 | uint32(d.mant)<<shift
	return math.Float32frombits(bits)
}

// encodeLine appends the cheapest encoding of line to payload.
func (e *lineEncoder) encodeLine(line []float32, payload []byte) []byte {
	w := len(line)

	// Reject non-finite content outright: RAW preserves it bit-exactly.
	maxAbs := float64(0)
	finite := true
	for _, v := range line {
		av := math.Abs(float64(v))
		if math.IsNaN(av) || math.IsInf(av, 0) {
			finite = false
			break
		}
		if av > maxAbs {
			maxAbs = av
		}
	}
	if !finite {
		return appendRaw(payload, line)
	}

	// CONST check: every neighbor delta below tolerance.
	isConst := true
	tol := e.opts.ConstTol * maxAbs
	for i := 1; i < w; i++ {
		if math.Abs(float64(line[i]-line[i-1])) > tol {
			isConst = false
			break
		}
	}
	if isConst {
		payload = append(payload, modeConst)
		return binary.LittleEndian.AppendUint32(payload, math.Float32bits(line[0]))
	}

	segs, ok := e.buildSegments(line)
	if !ok {
		return appendRaw(payload, line)
	}
	// Size comparison: take DELTA only if it beats RAW.
	deltaSize := 3
	for _, s := range segs {
		deltaSize += 7 + len(s.codes)
	}
	if deltaSize >= 1+4*w {
		return appendRaw(payload, line)
	}

	payload = append(payload, modeDelta)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(segs)))
	for _, s := range segs {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(s.pivot))
		payload = append(payload, s.minExp)
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(s.codes)+1))
		for _, d := range s.codes {
			payload = append(payload, e.packDelta(d, s.minExp))
		}
	}
	return payload
}

func appendRaw(payload []byte, line []float32) []byte {
	payload = append(payload, modeRaw)
	for _, v := range line {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(v))
	}
	return payload
}

func (e *lineEncoder) packDelta(d deltaCode, minExp uint8) byte {
	if d.zero {
		return 0
	}
	off := d.exp - minExp
	b := d.sign<<7 | off<<uint(e.mantBits) | d.mant
	if b == 0 {
		// Would collide with the reserved exact-zero byte; bump the mantissa
		// by one step (a 2^-mantBits relative perturbation of the delta).
		b = 1
	}
	return b
}

type segment struct {
	pivot  float32
	minExp uint8
	codes  []deltaCode
}

// buildSegments performs the greedy segmentation of Fig 4. It returns
// (nil, false) when the line is too abrupt (segment budget exceeded or
// non-encodable deltas).
func (e *lineEncoder) buildSegments(line []float32) ([]segment, bool) {
	w := len(line)
	maxSegs := int(float64(w) * e.opts.MaxSegFrac)
	if maxSegs < 1 {
		maxSegs = 1
	}
	window := uint8(1<<uint(e.opts.ExpBits) - 1)
	mantBits := e.mantBits
	shift := uint(23 - mantBits)
	roundBit := uint32(1) << (shift - 1)
	mantMax := uint8(1<<uint(mantBits) - 1)

	var segs []segment
	i := 0
	for i < w {
		seg := segment{pivot: line[i]}
		recon := line[i]
		var minE, maxE uint8
		haveExp := false
		j := i + 1
		for j < w {
			d := float64(line[j]) - float64(recon)
			if d == 0 {
				seg.codes = append(seg.codes, deltaCode{zero: true})
				j++
				continue
			}
			bits := math.Float32bits(float32(math.Abs(d)))
			exp := uint8(bits >> 23)
			mant := uint8((bits >> shift) & uint32(mantMax))
			if bits&roundBit != 0 {
				if mant == mantMax {
					mant = 0
					if exp == 0xFE {
						break // rounding into Inf: start a new pivot
					}
					exp++
				} else {
					mant++
				}
			}
			if exp == 0 {
				// FP32-denormal delta: indistinguishable from zero at any
				// realistic data scale.
				seg.codes = append(seg.codes, deltaCode{zero: true})
				j++
				continue
			}
			if exp == 0xFF {
				break // delta overflowed: isolate with a fresh pivot
			}
			if d > 0 && mant == 0 {
				// A positive delta with zero mantissa could pack to the
				// reserved zero byte (when exp lands on the segment minimum).
				// Bump the mantissa one step *before* mirroring the decoder,
				// so encoder and decoder reconstructions stay identical; the
				// quality guard below sees the bumped value.
				mant = 1
			}
			nMin, nMax := minE, maxE
			if !haveExp {
				nMin, nMax = exp, exp
			} else {
				if exp < nMin {
					nMin = exp
				}
				if exp > nMax {
					nMax = exp
				}
			}
			if nMax-nMin > window {
				break // exponent group exhausted: close the segment
			}
			code := deltaCode{exp: exp, mant: mant}
			if d < 0 {
				code.sign = 1
			}
			qd := dequant(code, mantBits)
			// Quality guard: a single-step quantization error beyond RelTol
			// of the value magnitude forces an exact pivot reset.
			if qErr := math.Abs(float64(qd) - d); qErr > e.opts.RelTol*math.Abs(float64(line[j]))+1e-12 {
				break
			}
			minE, maxE, haveExp = nMin, nMax, true
			seg.codes = append(seg.codes, code)
			recon += qd
			j++
		}
		seg.minExp = minE
		if !haveExp {
			seg.minExp = 0
		}
		segs = append(segs, seg)
		if len(segs) > maxSegs {
			return nil, false
		}
		i = j
	}
	return segs, true
}

// format implements codec.Format for deltafp blobs.
type format struct{}

// Format returns the codec.Format for deltafp blobs.
func Format() codec.Format { return format{} }

func (format) Name() string { return "deltafp" }

func (format) Open(blob []byte) (codec.ChunkDecoder, error) {
	const headerLen = 20
	if len(blob) < headerLen {
		return nil, errors.New("deltafp: blob too short")
	}
	if binary.LittleEndian.Uint32(blob[0:]) != blobMagic {
		return nil, errors.New("deltafp: bad magic")
	}
	c := int(binary.LittleEndian.Uint32(blob[4:]))
	h := int(binary.LittleEndian.Uint32(blob[8:]))
	w := int(binary.LittleEndian.Uint32(blob[12:]))
	expBits := int(binary.LittleEndian.Uint32(blob[16:]))
	if c <= 0 || h <= 0 || w <= 0 || expBits < 1 || expBits > 6 {
		return nil, fmt.Errorf("deltafp: invalid header C=%d H=%d W=%d expBits=%d", c, h, w, expBits)
	}
	if w > math.MaxUint16 {
		return nil, fmt.Errorf("deltafp: line width %d exceeds format limit", w)
	}
	// Allocation guard against corrupt headers: the densest legitimate
	// encoding (CONST lines) expands 5 payload bytes into 2*w output bytes,
	// so the decoded size can never exceed ~2*w/5 of the blob.
	if outBytes := 2 * c * h * w; outBytes/(2*math.MaxUint16) > len(blob) {
		return nil, fmt.Errorf("deltafp: header implies %d output bytes from a %d-byte blob", outBytes, len(blob))
	}
	nLines := c * h
	need := headerLen + 4*(nLines+1)
	if len(blob) < need {
		return nil, errors.New("deltafp: truncated offset table")
	}
	d := getDecoder(nLines + 1)
	offsets := d.offsets
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint32(blob[headerLen+4*i:])
	}
	payload := blob[need:]
	if int(offsets[nLines]) != len(payload) {
		d.Recycle()
		return nil, errors.New("deltafp: payload length mismatch")
	}
	for i := 0; i < nLines; i++ {
		if offsets[i] > offsets[i+1] {
			d.Recycle()
			return nil, errors.New("deltafp: non-monotonic offsets")
		}
	}
	d.c, d.h, d.w = c, h, w
	d.mantBits = 7 - expBits
	d.payload = payload
	d.blobLen = len(blob)
	if err := d.profile(); err != nil {
		d.Recycle()
		return nil, err
	}
	return d, nil
}

// decoderPool recycles Decoder structs — and, through them, their offset
// tables — between samples: the pipeline's decode stage hands finished
// decoders back via codec.Recycle, so the per-sample Open cost on the hot
// path is parsing, not heap allocation.
var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// getDecoder returns a zeroed Decoder whose offsets table has room for n
// entries, reusing a recycled one when available.
func getDecoder(n int) *Decoder {
	d := decoderPool.Get().(*Decoder)
	offsets := d.offsets
	if cap(offsets) < n {
		offsets = make([]uint32, n)
	}
	*d = Decoder{offsets: offsets[:n]}
	return d
}

// Recycle implements codec.Recycler: it drops the decoder's blob references
// and returns it (with its offsets table) to the pool. The decoder must not
// be used afterwards.
func (d *Decoder) Recycle() {
	offsets := d.offsets
	*d = Decoder{offsets: offsets[:0]}
	decoderPool.Put(d)
}

// Decoder decodes a deltafp blob line by line. Lines are independent, so
// DecodeChunk may be called concurrently on distinct chunks.
type Decoder struct {
	c, h, w  int
	mantBits int
	offsets  []uint32
	payload  []byte
	blobLen  int

	nRaw, nConst, nDelta int
}

// profile scans line modes once for the workload report and validates every
// line's framing.
func (d *Decoder) profile() error {
	for l := 0; l < d.c*d.h; l++ {
		line := d.payload[d.offsets[l]:d.offsets[l+1]]
		if len(line) == 0 {
			return fmt.Errorf("deltafp: empty line %d", l)
		}
		switch line[0] {
		case modeRaw:
			if len(line) != 1+4*d.w {
				return fmt.Errorf("deltafp: raw line %d has %d bytes", l, len(line))
			}
			d.nRaw++
		case modeConst:
			if len(line) != 5 {
				return fmt.Errorf("deltafp: const line %d has %d bytes", l, len(line))
			}
			d.nConst++
		case modeDelta:
			d.nDelta++
		default:
			return fmt.Errorf("deltafp: line %d has unknown mode %d", l, line[0])
		}
	}
	return nil
}

// OutputShape implements codec.ChunkDecoder.
func (d *Decoder) OutputShape() tensor.Shape { return tensor.Shape{d.c, d.h, d.w} }

// OutputDType implements codec.ChunkDecoder: the plugin emits FP16.
func (d *Decoder) OutputDType() tensor.DType { return tensor.F16 }

// NumChunks implements codec.ChunkDecoder: one chunk per line.
func (d *Decoder) NumChunks() int { return d.c * d.h }

// LineModes returns the number of RAW, CONST and DELTA lines.
func (d *Decoder) LineModes() (raw, cnst, delta int) { return d.nRaw, d.nConst, d.nDelta }

// Workload implements codec.ChunkDecoder.
func (d *Decoder) Workload() codec.Workload {
	n := d.c * d.h * d.w
	return codec.Workload{
		BytesIn:   d.blobLen,
		BytesOut:  2 * n,
		Ops:       3 * n, // delta add + FP16 convert + store per value
		Chunks:    d.c * d.h,
		Divergent: d.nDelta,
	}
}

// DecodeChunk implements codec.ChunkDecoder, decoding line chunk into dst.
func (d *Decoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	if chunk < 0 || chunk >= d.c*d.h {
		return fmt.Errorf("deltafp: chunk %d out of range", chunk)
	}
	if dst.DT != tensor.F16 || !dst.Shape.Equal(d.OutputShape()) {
		return fmt.Errorf("deltafp: dst must be F16 %v", d.OutputShape())
	}
	out := dst.F16s[chunk*d.w : (chunk+1)*d.w]
	line := d.payload[d.offsets[chunk]:d.offsets[chunk+1]]
	switch line[0] {
	case modeRaw:
		for i := 0; i < d.w; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(line[1+4*i:]))
			out[i] = fp16.FromFloat32(v)
		}
	case modeConst:
		v := fp16.FromFloat32(math.Float32frombits(binary.LittleEndian.Uint32(line[1:])))
		for i := range out {
			out[i] = v
		}
	case modeDelta:
		return d.decodeDeltaLine(line, out)
	}
	return nil
}

func (d *Decoder) decodeDeltaLine(line []byte, out []fp16.Bits) error {
	nsegs := int(binary.LittleEndian.Uint16(line[1:]))
	pos := 3
	emitted := 0
	shift := uint(23 - d.mantBits)
	mantMask := byte(1<<uint(d.mantBits) - 1)
	expMask := byte(1<<uint(7-d.mantBits) - 1)
	for s := 0; s < nsegs; s++ {
		if pos+7 > len(line) {
			return errors.New("deltafp: truncated segment header")
		}
		pivot := math.Float32frombits(binary.LittleEndian.Uint32(line[pos:]))
		minExp := line[pos+4]
		count := int(binary.LittleEndian.Uint16(line[pos+5:]))
		pos += 7
		if count < 1 || emitted+count > len(out) || pos+count-1 > len(line) {
			return errors.New("deltafp: segment overruns line")
		}
		// The decode loop is the "software emulated addition for
		// floating-point numbers": computation in FP32, emission in FP16.
		v := pivot
		out[emitted] = fp16.FromFloat32(v)
		emitted++
		for k := 0; k < count-1; k++ {
			b := line[pos+k]
			if b != 0 {
				sign := uint32(b>>7) << 31
				off := uint32((b >> uint(d.mantBits)) & expMask)
				mant := uint32(b & mantMask)
				bits := sign | (uint32(minExp)+off)<<23 | mant<<shift
				v += math.Float32frombits(bits)
			}
			out[emitted] = fp16.FromFloat32(v)
			emitted++
		}
		pos += count - 1
	}
	if emitted != len(out) || pos != len(line) {
		return errors.New("deltafp: line did not decode to full width")
	}
	return nil
}

// Stats summarizes an encoded blob.
type Stats struct {
	C, H, W              int
	RawLines, ConstLines int
	DeltaLines           int
	EncodedBytes         int
	SourceBytes          int // FP32 source size
	Ratio                float64
}

// BlobStats inspects blob without decoding it.
func BlobStats(blob []byte) (Stats, error) {
	cd, err := Format().Open(blob)
	if err != nil {
		return Stats{}, err
	}
	d := cd.(*Decoder)
	src := d.c * d.h * d.w * 4
	return Stats{
		C: d.c, H: d.h, W: d.w,
		RawLines: d.nRaw, ConstLines: d.nConst, DeltaLines: d.nDelta,
		EncodedBytes: d.blobLen,
		SourceBytes:  src,
		Ratio:        float64(src) / float64(d.blobLen),
	}, nil
}
