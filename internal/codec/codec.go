// Package codec defines the encoder/decoder plugin contract of the paper's
// preprocessing pipeline (§V–VI).
//
// An encoded sample is an opaque blob plus a Format that can open it into a
// ChunkDecoder: a decoder whose work decomposes into independent chunks
// ("we use metadata that enables independent decoding of lines, thus
// enabling efficient execution on accelerator architectures"). The CPU
// plugin assigns chunks to worker threads; the simulated-GPU plugin assigns
// them to warps, using the Workload profile for cost accounting.
package codec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"scipp/internal/tensor"
)

// Workload characterizes the decode work of one encoded sample for the
// execution-cost models (both CPU thread pool and simulated GPU).
type Workload struct {
	BytesIn  int // encoded bytes read
	BytesOut int // decoded bytes written
	Ops      int // arithmetic operation estimate (FP adds, table lookups...)
	// Chunks is the number of independently decodable units.
	Chunks int
	// DivergentChunks counts chunks whose decode has data-dependent control
	// flow (differential-encoded lines); on the simulated GPU these execute
	// with a warp-divergence penalty (§VI's hierarchical parallelism).
	Divergent int
	// SerialBytes counts bytes that must pass through an inherently serial
	// host-CPU stage before any parallel decode can start (gzip inflate:
	// "the decompression can only be performed on the host CPU", §IX-B).
	// Zero for GPU-decodable formats.
	SerialBytes int
}

// ChunkDecoder decodes one encoded sample. Implementations must allow
// concurrent DecodeChunk calls on distinct chunks.
type ChunkDecoder interface {
	// OutputShape is the shape of the decoded tensor.
	OutputShape() tensor.Shape
	// OutputDType is the element type of the decoded tensor (F16 for the
	// paper's plugins, F32 for the baseline path).
	OutputDType() tensor.DType
	// NumChunks returns the count of independently decodable units.
	NumChunks() int
	// DecodeChunk decodes unit chunk into its region of dst, which must
	// have OutputShape/OutputDType.
	DecodeChunk(chunk int, dst *tensor.Tensor) error
	// Workload reports the decode cost profile.
	Workload() Workload
}

// Format opens encoded blobs of one on-disk format.
type Format interface {
	// Name identifies the format (e.g. "deltafp", "cosmo-lut", "raw-cosmo").
	Name() string
	// Open parses blob and returns a decoder for it.
	Open(blob []byte) (ChunkDecoder, error)
}

// Recycler is implemented by decoders whose Open builds reusable scratch
// (decoded lookup tables, offset indexes). Once every DecodeChunk call has
// returned, the pipeline hands the decoder back through Recycle so the next
// Open of the same format can reuse the buffers instead of reallocating them
// per sample. After Recycle the decoder must not be used again.
type Recycler interface {
	Recycle()
}

// Recycle returns d's reusable buffers to its format's pool, when the
// decoder supports it. Safe on any decoder; non-Recyclers are ignored.
func Recycle(d ChunkDecoder) {
	if r, ok := d.(Recycler); ok {
		r.Recycle()
	}
}

// parallelDecodeMinBytes is the decoded-output size below which
// DecodeParallelInto stays serial: fanning a sample's chunks out to
// goroutines costs more (scheduler churn, per-spawn heap allocation) than
// decoding a small sample in place, and cross-sample parallelism already
// comes from the pipeline's decode-stage worker pool.
const parallelDecodeMinBytes = 64 << 10

// Decode fully decodes blob-opened decoder d serially into a new tensor.
// Hot paths that recycle buffers should use DecodeInto.
func Decode(d ChunkDecoder) (*tensor.Tensor, error) {
	dst := tensor.New(d.OutputDType(), d.OutputShape()...)
	if err := DecodeInto(d, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecodeInto decodes d serially into dst, which must have d's output shape
// and dtype (DecodeChunk implementations validate).
//
//scipp:hotpath
func DecodeInto(d ChunkDecoder, dst *tensor.Tensor) error {
	for c := 0; c < d.NumChunks(); c++ {
		if err := d.DecodeChunk(c, dst); err != nil {
			return fmt.Errorf("codec: chunk %d: %w", c, err)
		}
	}
	return nil
}

// DecodeParallel decodes with up to workers concurrent goroutines into a new
// tensor. Hot paths that recycle buffers should use DecodeParallelInto.
func DecodeParallel(d ChunkDecoder, workers int) (*tensor.Tensor, error) {
	dst := tensor.New(d.OutputDType(), d.OutputShape()...)
	if err := DecodeParallelInto(d, dst, workers); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecodeParallelInto decodes into dst with up to workers concurrent
// goroutines, the CPU plugin's execution strategy ("on the CPU we assign
// different samples to different threads" — and within a sample, chunks to
// threads). Small samples decode serially (see parallelDecodeMinBytes);
// larger ones draw chunks from an atomic cursor, with the calling goroutine
// working alongside the spawned ones so workers-1 goroutines suffice.
//
//scipp:hotpath
func DecodeParallelInto(d ChunkDecoder, dst *tensor.Tensor, workers int) error {
	n := d.NumChunks()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 || d.Workload().BytesOut < parallelDecodeMinBytes {
		return DecodeInto(d, dst)
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= n {
				return
			}
			if err := d.DecodeChunk(c, dst); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("codec: chunk %d: %w", c, err)
				}
				errMu.Unlock()
			}
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return firstErr
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Format)
)

// Register adds a format to the global registry. It panics on duplicate
// names (a programming error).
func Register(f Format) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[f.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate format %q", f.Name()))
	}
	registry[f.Name()] = f
}

// Lookup returns the registered format with the given name.
func Lookup(name string) (Format, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("codec: unknown format %q", name)
	}
	return f, nil
}

// Formats returns the registered format names, sorted.
func Formats() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
