// Package codec defines the encoder/decoder plugin contract of the paper's
// preprocessing pipeline (§V–VI).
//
// An encoded sample is an opaque blob plus a Format that can open it into a
// ChunkDecoder: a decoder whose work decomposes into independent chunks
// ("we use metadata that enables independent decoding of lines, thus
// enabling efficient execution on accelerator architectures"). The CPU
// plugin assigns chunks to worker threads; the simulated-GPU plugin assigns
// them to warps, using the Workload profile for cost accounting.
package codec

import (
	"fmt"
	"sort"
	"sync"

	"scipp/internal/tensor"
)

// Workload characterizes the decode work of one encoded sample for the
// execution-cost models (both CPU thread pool and simulated GPU).
type Workload struct {
	BytesIn  int // encoded bytes read
	BytesOut int // decoded bytes written
	Ops      int // arithmetic operation estimate (FP adds, table lookups...)
	// Chunks is the number of independently decodable units.
	Chunks int
	// DivergentChunks counts chunks whose decode has data-dependent control
	// flow (differential-encoded lines); on the simulated GPU these execute
	// with a warp-divergence penalty (§VI's hierarchical parallelism).
	Divergent int
	// SerialBytes counts bytes that must pass through an inherently serial
	// host-CPU stage before any parallel decode can start (gzip inflate:
	// "the decompression can only be performed on the host CPU", §IX-B).
	// Zero for GPU-decodable formats.
	SerialBytes int
}

// ChunkDecoder decodes one encoded sample. Implementations must allow
// concurrent DecodeChunk calls on distinct chunks.
type ChunkDecoder interface {
	// OutputShape is the shape of the decoded tensor.
	OutputShape() tensor.Shape
	// OutputDType is the element type of the decoded tensor (F16 for the
	// paper's plugins, F32 for the baseline path).
	OutputDType() tensor.DType
	// NumChunks returns the count of independently decodable units.
	NumChunks() int
	// DecodeChunk decodes unit chunk into its region of dst, which must
	// have OutputShape/OutputDType.
	DecodeChunk(chunk int, dst *tensor.Tensor) error
	// Workload reports the decode cost profile.
	Workload() Workload
}

// Format opens encoded blobs of one on-disk format.
type Format interface {
	// Name identifies the format (e.g. "deltafp", "cosmo-lut", "raw-cosmo").
	Name() string
	// Open parses blob and returns a decoder for it.
	Open(blob []byte) (ChunkDecoder, error)
}

// Decode fully decodes blob-opened decoder d serially.
func Decode(d ChunkDecoder) (*tensor.Tensor, error) {
	dst := tensor.New(d.OutputDType(), d.OutputShape()...)
	for c := 0; c < d.NumChunks(); c++ {
		if err := d.DecodeChunk(c, dst); err != nil {
			return nil, fmt.Errorf("codec: chunk %d: %w", c, err)
		}
	}
	return dst, nil
}

// DecodeParallel decodes with up to workers concurrent goroutines, the CPU
// plugin's execution strategy ("on the CPU we assign different samples to
// different threads" — and within a sample, chunks to threads).
func DecodeParallel(d ChunkDecoder, workers int) (*tensor.Tensor, error) {
	n := d.NumChunks()
	if workers <= 1 || n <= 1 {
		return Decode(d)
	}
	if workers > n {
		workers = n
	}
	dst := tensor.New(d.OutputDType(), d.OutputShape()...)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		next = make(chan int, n)
	)
	for c := 0; c < n; c++ {
		next <- c
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				if err := d.DecodeChunk(c, dst); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("codec: chunk %d: %w", c, err))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return dst, nil
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Format)
)

// Register adds a format to the global registry. It panics on duplicate
// names (a programming error).
func Register(f Format) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[f.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate format %q", f.Name()))
	}
	registry[f.Name()] = f
}

// Lookup returns the registered format with the given name.
func Lookup(name string) (Format, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("codec: unknown format %q", name)
	}
	return f, nil
}

// Formats returns the registered format names, sorted.
func Formats() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
