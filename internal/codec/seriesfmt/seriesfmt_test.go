package seriesfmt

import (
	"testing"

	"scipp/internal/codec"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

func record(t *testing.T, cfg synthetic.WeatherConfig, index int) ([]byte, *synthetic.WeatherSample) {
	t.Helper()
	s, err := synthetic.GenerateWeather(cfg, index)
	if err != nil {
		t.Fatal(err)
	}
	return synthetic.WeatherToRecord(s), s
}

func TestSeriesRoundTrip(t *testing.T) {
	cfg := synthetic.DefaultWeatherConfig()
	cfg.MaxLen = 48
	f, err := codec.Lookup("raw-series")
	if err != nil {
		t.Fatal(err)
	}
	for index := 0; index < 8; index++ {
		blob, s := record(t, cfg, index)
		d, err := f.Open(blob)
		if err != nil {
			t.Fatalf("index %d: %v", index, err)
		}
		wantShape := s.Data.Shape
		if !d.OutputShape().Equal(wantShape) || d.OutputDType() != tensor.F32 {
			t.Fatalf("index %d: decoder shape %v %v, want F32 %v", index, d.OutputDType(), d.OutputShape(), wantShape)
		}
		if d.NumChunks() != cfg.Channels {
			t.Fatalf("index %d: %d chunks, want %d", index, d.NumChunks(), cfg.Channels)
		}
		out, err := codec.Decode(d)
		if err != nil {
			t.Fatalf("index %d: %v", index, err)
		}
		if tensor.MaxAbsDiff(out, s.Data) != 0 {
			t.Fatalf("index %d: decoded series differs from generated", index)
		}
	}
}

func TestSeriesShapeVariesPerSample(t *testing.T) {
	cfg := synthetic.DefaultWeatherConfig()
	cfg.MinLen, cfg.MaxLen = 0, 64
	seen := map[int]bool{}
	for index := 0; index < 32; index++ {
		blob, _ := record(t, cfg, index)
		_, shape, err := codec.ProbeShape(Series(), blob)
		if err != nil {
			t.Fatal(err)
		}
		if want := synthetic.StationLen(cfg, index); shape[1] != want {
			t.Fatalf("index %d: probed length %d, want %d", index, shape[1], want)
		}
		seen[shape[1]] = true
	}
	if len(seen) < 8 {
		t.Errorf("only %d distinct lengths over 32 stations: domain is not ragged", len(seen))
	}
	if !seen[0] && synthetic.StationLen(cfg, 0) != 0 {
		// Zero-length stations are admitted by the range; their presence is
		// index-dependent, so only assert the decode below.
		t.Log("no dead station in the first 32 indices")
	}
}

func TestSeriesEmptySampleDecodes(t *testing.T) {
	cfg := synthetic.DefaultWeatherConfig()
	cfg.MinLen, cfg.MaxLen = 0, 0 // every station is dead
	blob, s := record(t, cfg, 3)
	d, err := Series().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OutputShape().Equal(tensor.Shape{cfg.Channels, 0}) {
		t.Fatalf("empty station shape = %v", d.OutputShape())
	}
	out, err := codec.Decode(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Elems() != 0 {
		t.Fatalf("empty station decoded %d elems", out.Elems())
	}
	if s.Data.Elems() != 0 {
		t.Fatal("generator produced observations for a dead station")
	}
}

func TestSeriesBounded(t *testing.T) {
	f := Bounded(4, 256)
	dt, shape, ok := codec.MaxShape(f)
	if !ok || dt != tensor.F32 || !shape.Equal(tensor.Shape{4, 256}) {
		t.Fatalf("MaxShape = %v %v %v", dt, shape, ok)
	}
	// The bound never constrains decode: a record within the bound opens
	// with its own header shape.
	cfg := synthetic.DefaultWeatherConfig()
	blob, s := record(t, cfg, 5)
	d, err := f.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OutputShape().Equal(s.Data.Shape) {
		t.Fatalf("bounded open shape %v, want per-sample %v", d.OutputShape(), s.Data.Shape)
	}
}

func TestSeriesParams(t *testing.T) {
	cfg := synthetic.DefaultWeatherConfig()
	blob, s := record(t, cfg, 11)
	p, err := Params(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p != s.Params {
		t.Fatalf("Params = %v, want %v", p, s.Params)
	}
	if _, err := Params([]byte{1, 2, 3}); err == nil {
		t.Error("truncated record did not error")
	}
}

func TestSeriesRejectsCorruptRecords(t *testing.T) {
	cfg := synthetic.DefaultWeatherConfig()
	blob, _ := record(t, cfg, 0)
	cases := map[string][]byte{
		"empty":     nil,
		"magic":     append([]byte{0, 0, 0, 0}, blob[4:]...),
		"truncated": blob[:len(blob)-1],
	}
	for name, bad := range cases {
		if _, err := Series().Open(bad); err == nil {
			t.Errorf("%s record opened", name)
		}
		if _, _, err := codec.ProbeShape(Series(), bad); err == nil {
			t.Errorf("%s record probed", name)
		}
	}
	d, err := Series().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DecodeChunk(-1, tensor.New(tensor.F32, 4)); err == nil {
		t.Error("out-of-range chunk decoded")
	}
	wrong := tensor.New(tensor.F32, 1)
	if err := d.DecodeChunk(0, wrong); err == nil {
		t.Error("wrong-shape destination accepted")
	}
	if w := d.Workload(); w.BytesIn != len(blob) || w.Chunks != cfg.Channels {
		t.Errorf("workload = %+v", w)
	}
}
