// Package seriesfmt implements the decode path for variable-length
// weather-station time series — the irregular domain the fixed-shape
// pipeline never faced. Unlike the fixed-shape formats, a "raw-series"
// blob's decoded shape is not a dataset constant: every record carries its
// own [C, L] shape in its header, so the decoder returned by Open reports
// that sample's shape, ProbeShape reads it without building a decoder, and
// the only dataset-wide shape is the Bounded wrapper's explicit upper
// bound used for pool and cache sizing.
package seriesfmt

import (
	"encoding/binary"
	"fmt"
	"math"

	"scipp/internal/codec"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

func init() {
	codec.Register(Series())
}

// Series returns the variable-length station-series format.
func Series() codec.Format { return seriesFormat{} }

type seriesFormat struct{}

func (seriesFormat) Name() string { return "raw-series" }

func (seriesFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	c, l, err := synthetic.WeatherHeader(blob)
	if err != nil {
		return nil, fmt.Errorf("seriesfmt: %w", err)
	}
	return &seriesDecoder{blob: blob, channels: c, length: l}, nil
}

// ProbeShape implements codec.ShapeProber: the record header alone names
// the decoded shape, so per-sample byte accounting never pays an Open.
func (seriesFormat) ProbeShape(blob []byte) (tensor.DType, tensor.Shape, error) {
	c, l, err := synthetic.WeatherHeader(blob)
	if err != nil {
		return 0, nil, fmt.Errorf("seriesfmt: %w", err)
	}
	return tensor.F32, tensor.Shape{c, l}, nil
}

// Bounded wraps the series format with the archive-level shape bound its
// generator guarantees, implementing codec.ShapeBounded for the sizing
// layers (slab pools, cache byte budgets). The bound never reaches decode:
// per-sample shapes still come from each record's header.
func Bounded(channels, maxLen int) codec.Format {
	return boundedSeries{channels: channels, maxLen: maxLen}
}

type boundedSeries struct {
	seriesFormat
	channels, maxLen int
}

// MaxShape implements codec.ShapeBounded.
func (b boundedSeries) MaxShape() (tensor.DType, tensor.Shape) {
	return tensor.F32, tensor.Shape{b.channels, b.maxLen}
}

// seriesDecoder decodes one station record, channel row per chunk.
type seriesDecoder struct {
	blob             []byte
	channels, length int
}

func (d *seriesDecoder) OutputShape() tensor.Shape { return tensor.Shape{d.channels, d.length} }
func (d *seriesDecoder) OutputDType() tensor.DType { return tensor.F32 }

// NumChunks: one independently decodable chunk per sensor channel.
func (d *seriesDecoder) NumChunks() int { return d.channels }

func (d *seriesDecoder) Workload() codec.Workload {
	n := d.channels * d.length
	return codec.Workload{
		BytesIn:  len(d.blob),
		BytesOut: 4 * n,
		Ops:      n, // bit copy per observation
		Chunks:   d.channels,
	}
}

func (d *seriesDecoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	if chunk < 0 || chunk >= d.channels {
		return fmt.Errorf("seriesfmt: chunk %d out of range", chunk)
	}
	if dst.DT != tensor.F32 || !dst.Shape.Equal(d.OutputShape()) {
		return fmt.Errorf("seriesfmt: dst must be F32 %v", d.OutputShape())
	}
	out := dst.F32s[chunk*d.length : (chunk+1)*d.length]
	off := 28 + 4*chunk*d.length
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.blob[off:]))
		off += 4
	}
	return nil
}

// Params extracts the label parameters from a station record without
// decoding the observation payload.
func Params(blob []byte) ([4]float32, error) {
	if _, _, err := synthetic.WeatherHeader(blob); err != nil {
		return [4]float32{}, fmt.Errorf("seriesfmt: %w", err)
	}
	var p [4]float32
	for i := range p {
		p[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[12+4*i:]))
	}
	return p, nil
}
