// Package rawfmt implements the *baseline* decode paths the paper compares
// against: parsing the stock container formats and performing the full
// preprocessing on the host CPU in FP32.
//
//   - "raw-deepcam": CAM5-style h5lite sample files holding an FP32
//     [C, H, W] stack. Baseline preprocessing materializes FP32 (no
//     compression, no FP16).
//   - "raw-cosmo": CosmoFlow records holding 4 x dim^3 int16 counts.
//     Baseline preprocessing applies log(1+count) per voxel in FP32 — the
//     expensive per-value operator pass the LUT codec's fusion eliminates.
package rawfmt

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"scipp/internal/codec"
	"scipp/internal/h5lite"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

func init() {
	codec.Register(DeepCAM())
	codec.Register(Cosmo())
}

// DeepCAM returns the baseline format for CAM5-style h5lite blobs.
func DeepCAM() codec.Format { return deepcamFormat{} }

type deepcamFormat struct{}

func (deepcamFormat) Name() string { return "raw-deepcam" }

func (deepcamFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	f, err := h5lite.Read(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("rawfmt: %w", err)
	}
	data, ok := f.Get("climate/data")
	if !ok {
		return nil, errors.New("rawfmt: blob has no climate/data dataset")
	}
	if data.DT != tensor.F32 || len(data.Shape) != 3 {
		return nil, fmt.Errorf("rawfmt: climate/data is %v %v, want rank-3 F32", data.DT, data.Shape)
	}
	return &deepcamDecoder{data: data, blobLen: len(blob)}, nil
}

type deepcamDecoder struct {
	data    *tensor.Tensor
	blobLen int
}

func (d *deepcamDecoder) OutputShape() tensor.Shape { return d.data.Shape }
func (d *deepcamDecoder) OutputDType() tensor.DType { return tensor.F32 }

// NumChunks: the baseline copies channel by channel.
func (d *deepcamDecoder) NumChunks() int { return d.data.Shape[0] }

func (d *deepcamDecoder) Workload() codec.Workload {
	n := d.data.Elems()
	return codec.Workload{
		BytesIn:  d.blobLen,
		BytesOut: 4 * n,
		Ops:      n, // copy per value
		Chunks:   d.data.Shape[0],
	}
}

func (d *deepcamDecoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	c := d.data.Shape[0]
	if chunk < 0 || chunk >= c {
		return fmt.Errorf("rawfmt: chunk %d out of range", chunk)
	}
	if dst.DT != tensor.F32 || !dst.Shape.Equal(d.data.Shape) {
		return fmt.Errorf("rawfmt: dst must be F32 %v", d.data.Shape)
	}
	stride := d.data.Shape[1] * d.data.Shape[2]
	copy(dst.F32s[chunk*stride:(chunk+1)*stride], d.data.F32s[chunk*stride:(chunk+1)*stride])
	return nil
}

// Cosmo returns the baseline format for CosmoFlow records.
func Cosmo() codec.Format { return cosmoFormat{} }

type cosmoFormat struct{}

func (cosmoFormat) Name() string { return "raw-cosmo" }

func (cosmoFormat) Open(blob []byte) (codec.ChunkDecoder, error) {
	s, err := synthetic.CosmoFromRecord(blob)
	if err != nil {
		return nil, fmt.Errorf("rawfmt: %w", err)
	}
	return &cosmoDecoder{s: s, blobLen: len(blob)}, nil
}

type cosmoDecoder struct {
	s       *synthetic.CosmoSample
	blobLen int
}

func (d *cosmoDecoder) OutputShape() tensor.Shape {
	return tensor.Shape{4, d.s.Dim, d.s.Dim, d.s.Dim}
}
func (d *cosmoDecoder) OutputDType() tensor.DType { return tensor.F32 }

// NumChunks: one chunk per redshift channel.
func (d *cosmoDecoder) NumChunks() int { return 4 }

func (d *cosmoDecoder) Workload() codec.Workload {
	n := 4 * d.s.Dim * d.s.Dim * d.s.Dim
	return codec.Workload{
		BytesIn:  d.blobLen,
		BytesOut: 4 * n,
		Ops:      n * 8, // per-voxel log evaluation dominates
		Chunks:   4,
	}
}

func (d *cosmoDecoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	if chunk < 0 || chunk >= 4 {
		return fmt.Errorf("rawfmt: chunk %d out of range", chunk)
	}
	if dst.DT != tensor.F32 || !dst.Shape.Equal(d.OutputShape()) {
		return fmt.Errorf("rawfmt: dst must be F32 %v", d.OutputShape())
	}
	vol := d.s.Dim * d.s.Dim * d.s.Dim
	out := dst.F32s[chunk*vol : (chunk+1)*vol]
	src := d.s.Channels[chunk]
	for i, v := range src {
		// The baseline per-voxel preprocessing: log(count + 1) in FP32.
		out[i] = float32(math.Log1p(float64(v)))
	}
	return nil
}

// Params extracts the label parameters from a cosmo record without decoding
// the voxel payload.
func Params(blob []byte) ([4]float32, error) {
	s, err := synthetic.CosmoFromRecord(blob)
	if err != nil {
		return [4]float32{}, err
	}
	return s.Params, nil
}
