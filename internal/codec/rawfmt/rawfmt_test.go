package rawfmt

import (
	"bytes"
	"math"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
)

func climateBlob(t testing.TB) (*synthetic.ClimateSample, []byte) {
	t.Helper()
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 3
	cfg.Height = 32
	cfg.Width = 48
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := synthetic.ClimateToH5(s).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

func TestDeepCAMBaseline(t *testing.T) {
	s, blob := climateBlob(t)
	cd, err := DeepCAM().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if cd.OutputDType() != tensor.F32 {
		t.Error("baseline must output FP32")
	}
	out, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(out, s.Data) != 0 {
		t.Error("baseline decode is not bit-exact")
	}
	wl := cd.Workload()
	if wl.Chunks != 3 {
		t.Errorf("Chunks = %d, want 3 (channels)", wl.Chunks)
	}
	if wl.SerialBytes != 0 {
		t.Error("raw decode should report no serial stage")
	}
}

func TestDeepCAMOpenErrors(t *testing.T) {
	if _, err := DeepCAM().Open([]byte("not-h5")); err == nil {
		t.Error("garbage accepted")
	}
}

func cosmoBlob(t testing.TB) (*synthetic.CosmoSample, []byte) {
	t.Helper()
	cfg := synthetic.DefaultCosmoConfig()
	cfg.Dim = 16
	s, err := synthetic.GenerateCosmo(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s, synthetic.CosmoToRecord(s)
}

func TestCosmoBaseline(t *testing.T) {
	s, blob := cosmoBlob(t)
	cd, err := Cosmo().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	out, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	vol := s.Dim * s.Dim * s.Dim
	for c := 0; c < 4; c++ {
		for i := 0; i < vol; i++ {
			want := float32(math.Log1p(float64(s.Channels[c][i])))
			if out.F32s[c*vol+i] != want {
				t.Fatalf("channel %d voxel %d: %g != %g", c, i, out.F32s[c*vol+i], want)
			}
		}
	}
}

func TestCosmoParallelChunks(t *testing.T) {
	_, blob := cosmoBlob(t)
	cd, err := Cosmo().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := codec.DecodeParallel(cd, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Error("parallel baseline decode differs")
	}
}

func TestParams(t *testing.T) {
	s, blob := cosmoBlob(t)
	p, err := Params(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p != s.Params {
		t.Errorf("params %v != %v", p, s.Params)
	}
	if _, err := Params([]byte("junk")); err == nil {
		t.Error("garbage record accepted")
	}
}

func TestChunkValidation(t *testing.T) {
	_, blob := cosmoBlob(t)
	cd, err := Cosmo().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(tensor.F32, 4, 16, 16, 16)
	if err := cd.DecodeChunk(4, dst); err == nil {
		t.Error("chunk 4 accepted")
	}
	if err := cd.DecodeChunk(0, tensor.New(tensor.F16, 4, 16, 16, 16)); err == nil {
		t.Error("F16 dst accepted for baseline")
	}
}
