package codec

import "scipp/internal/tensor"

// The fixed-shape pipeline consumed ChunkDecoder.OutputShape as a
// dataset-wide constant. With variable-shape datasets every opened decoder
// reports its own sample's shape (shape-in-header decode), and the two
// optional Format capabilities below replace the places that consumed the
// constant for something other than decoding the sample at hand:
//
//   - ShapeBounded declares a per-dataset upper bound, for sizing slab
//     pools and cache budgets before any sample is opened.
//   - ShapeProber reads one sample's decoded shape straight from its blob
//     header, for byte-cost accounting that must not pay a full Open.
//
// Fixed-shape formats are the degenerate case: their bound is the one shape
// every decoder reports.

// ShapeBounded is implemented by Formats whose decoded samples, while
// individually variable-shaped, share a known upper-bound dtype and shape.
// MaxShape is a sizing bound, never a decode contract: per-sample code must
// take the shape from the opened decoder (or ProbeShape), which is what the
// shapecontract lint rule enforces on hot paths.
type ShapeBounded interface {
	// MaxShape returns the element type and the elementwise upper-bound
	// shape of every sample the format will decode.
	MaxShape() (tensor.DType, tensor.Shape)
}

// MaxShape returns f's declared decoded-shape bound, when it has one.
func MaxShape(f Format) (tensor.DType, tensor.Shape, bool) {
	if b, ok := f.(ShapeBounded); ok {
		dt, shape := b.MaxShape()
		return dt, shape, true
	}
	return 0, nil, false
}

// ShapeProber is implemented by Formats that can read a sample's decoded
// dtype and shape from its blob header without building a decoder — the
// cheap path for per-sample byte-cost accounting.
type ShapeProber interface {
	// ProbeShape parses only as much of blob as identifies the decoded
	// tensor's dtype and shape.
	ProbeShape(blob []byte) (tensor.DType, tensor.Shape, error)
}

// ProbeShape returns blob's decoded dtype and shape: through f's prober when
// it implements ShapeProber, otherwise by opening the blob and consulting
// the decoder (recycling it immediately). The fallback costs a full Open, so
// hot paths should prefer formats with a real prober.
func ProbeShape(f Format, blob []byte) (tensor.DType, tensor.Shape, error) {
	if p, ok := f.(ShapeProber); ok {
		return p.ProbeShape(blob)
	}
	d, err := f.Open(blob)
	if err != nil {
		return 0, nil, err
	}
	dt, shape := d.OutputDType(), d.OutputShape().Clone()
	Recycle(d)
	return dt, shape, nil
}
