package codec

import (
	"strings"
	"testing"

	"scipp/internal/tensor"
)

// bigFake wraps fakeDecoder with a decoded-output size large enough to
// cross the parallelDecodeMinBytes threshold, so DecodeParallelInto takes
// its chunk-cursor path instead of the serial fallback.
type bigFake struct {
	fakeDecoder
	bytesOut int
}

func (f *bigFake) Workload() Workload {
	return Workload{Chunks: f.n, BytesOut: f.bytesOut}
}

// recycleFake additionally implements Recycler.
type recycleFake struct {
	fakeDecoder
	recycled bool
}

func (f *recycleFake) Recycle() { f.recycled = true }

func TestDecodeIntoReusesDst(t *testing.T) {
	d := &fakeDecoder{n: 8, failAt: -1, dtype: tensor.F32}
	dst := tensor.New(tensor.F32, 8)
	// Dirty the destination: DecodeInto must overwrite every element.
	for i := range dst.F32s {
		dst.F32s[i] = -1
	}
	if err := DecodeInto(d, dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if dst.F32s[i] != float32(i) {
			t.Fatalf("element %d = %v, want %d", i, dst.F32s[i], i)
		}
	}
}

func TestDecodeIntoChunkError(t *testing.T) {
	d := &fakeDecoder{n: 8, failAt: 3, dtype: tensor.F32}
	dst := tensor.New(tensor.F32, 8)
	err := DecodeInto(d, dst)
	if err == nil || !strings.Contains(err.Error(), "chunk 3") {
		t.Fatalf("err = %v, want chunk 3 failure", err)
	}
}

func TestDecodeParallelIntoLargeSample(t *testing.T) {
	n := 32
	d := &bigFake{
		fakeDecoder: fakeDecoder{n: n, failAt: -1, dtype: tensor.F32, counter: make(chan int, n)},
		bytesOut:    parallelDecodeMinBytes,
	}
	dst := tensor.New(tensor.F32, n)
	if err := DecodeParallelInto(d, dst, 5); err != nil {
		t.Fatal(err)
	}
	close(d.counter)
	seen := make(map[int]int)
	for c := range d.counter {
		seen[c]++
	}
	if len(seen) != n {
		t.Errorf("decoded %d distinct chunks, want %d", len(seen), n)
	}
	for c, k := range seen {
		if k != 1 {
			t.Errorf("chunk %d decoded %d times", c, k)
		}
	}
	for i := 0; i < n; i++ {
		if dst.F32s[i] != float32(i) {
			t.Fatalf("chunk %d missing from output", i)
		}
	}
}

func TestDecodeParallelIntoWorkerClamp(t *testing.T) {
	// More workers than chunks: the clamp must not spawn idle goroutines or
	// decode any chunk twice.
	n := 4
	d := &bigFake{
		fakeDecoder: fakeDecoder{n: n, failAt: -1, dtype: tensor.F32, counter: make(chan int, n)},
		bytesOut:    parallelDecodeMinBytes,
	}
	dst := tensor.New(tensor.F32, n)
	if err := DecodeParallelInto(d, dst, 64); err != nil {
		t.Fatal(err)
	}
	close(d.counter)
	count := 0
	for range d.counter {
		count++
	}
	if count != n {
		t.Errorf("decoded %d chunks, want %d", count, n)
	}
}

func TestDecodeParallelIntoErrorPropagates(t *testing.T) {
	n := 16
	d := &bigFake{
		fakeDecoder: fakeDecoder{n: n, failAt: 7, dtype: tensor.F32},
		bytesOut:    parallelDecodeMinBytes,
	}
	dst := tensor.New(tensor.F32, n)
	err := DecodeParallelInto(d, dst, 4)
	if err == nil || !strings.Contains(err.Error(), "chunk 7") {
		t.Fatalf("err = %v, want chunk 7 failure", err)
	}
}

func TestDecodeParallelIntoSmallSampleStaysSerial(t *testing.T) {
	// Below the size threshold the decode must still be complete and
	// correct (it runs on the calling goroutine).
	n := 8
	d := &fakeDecoder{n: n, failAt: -1, dtype: tensor.F32}
	dst := tensor.New(tensor.F32, n)
	if err := DecodeParallelInto(d, dst, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if dst.F32s[i] != float32(i) {
			t.Fatalf("element %d not decoded", i)
		}
	}
}

func TestRecycle(t *testing.T) {
	r := &recycleFake{fakeDecoder: fakeDecoder{n: 1, failAt: -1, dtype: tensor.F32}}
	Recycle(r)
	if !r.recycled {
		t.Error("Recycle did not invoke the decoder's Recycler")
	}
	// Non-Recyclers are silently ignored.
	Recycle(&fakeDecoder{n: 1, failAt: -1, dtype: tensor.F32})
}
