// Package lut implements the paper's CosmoFlow lookup-table encoding (§V-B,
// Fig 5).
//
// A CosmoFlow sample holds four redshift snapshots of the same sub-volume.
// The particle counts across the four redshifts at one voxel are highly
// coupled, so the number of unique 4-groups is tiny compared to the
// permutation bound (tens of thousands vs 10^11 in the paper). The encoder
// builds a per-sample table of unique groups and stores one small key per
// voxel: 1 byte when the table has <= 256 entries, else 2 bytes ("keys of
// width 1 or 2 bytes for lookup tables, with lookup values of 8 bytes" —
// the 8-byte lookup value is exactly the four FP16 outputs per group).
// Volumes whose group count overflows 16-bit keys are split along z into
// sub-volumes with independent tables ("for larger than 128^3
// decompositions, multiple lookup tables are required").
//
// The decode path realizes the paper's fused-operator optimization: the
// preprocessing op — log(1+count) — and the FP16 cast are applied once per
// *unique group* while building the decoded table, instead of once per
// voxel ("applying the log operator before decompression is advantageous";
// the sample has 8M values but three orders of magnitude fewer uniques).
package lut

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"scipp/internal/codec"
	"scipp/internal/fp16"
	"scipp/internal/tensor"
)

const blobMagic = 0x434C5554 // "CLUT"

// Op selects the preprocessing operator fused into decode.
type Op uint8

const (
	// OpLog1p emits log(1 + count), CosmoFlow's preprocessing (§II).
	OpLog1p Op = iota
	// OpIdentity emits the raw count, for ablations and round-trip checks.
	OpIdentity
)

// Apply evaluates the operator in FP32 (the precision the baseline CPU
// preprocessing uses before casting). It panics on an unknown operator
// (programmer invariant: Open rejects formats with operators outside the
// package's constants before any decode runs).
func (op Op) Apply(count int16) float32 {
	switch op {
	case OpLog1p:
		return float32(math.Log1p(float64(count)))
	case OpIdentity:
		return float32(count)
	}
	panic(fmt.Sprintf("lut: unknown op %d", op))
}

// group is one unique 4-redshift count vector.
type group [4]int16

// Encode compresses the four redshift channels (each dim^3 int16 counts,
// x-fastest order) into a LUT blob.
func Encode(channels [4][]int16, dim int) ([]byte, error) {
	n := dim * dim * dim
	if dim <= 0 {
		return nil, fmt.Errorf("lut: invalid dim %d", dim)
	}
	for c := range channels {
		if len(channels[c]) != n {
			return nil, fmt.Errorf("lut: channel %d has %d voxels, want %d", c, len(channels[c]), n)
		}
	}

	// Recursive z-split until each sub-volume's group count fits 16-bit keys.
	type subEnc struct {
		z0, z1 int
		table  []group
		keys   []uint16 // table indices per voxel; packed at serialization
	}
	var subs []subEnc
	var build func(z0, z1 int) error
	build = func(z0, z1 int) error {
		plane := dim * dim
		idx := make(map[group]uint16, 1<<14)
		keys := make([]uint16, (z1-z0)*plane)
		var table []group
		for v := z0 * plane; v < z1*plane; v++ {
			g := group{channels[0][v], channels[1][v], channels[2][v], channels[3][v]}
			k, ok := idx[g]
			if !ok {
				if len(table) > math.MaxUint16 {
					// Too many groups: split the z-range and retry halves.
					if z1-z0 <= 1 {
						return errors.New("lut: single z-slice exceeds 65536 groups")
					}
					mid := (z0 + z1) / 2
					if err := build(z0, mid); err != nil {
						return err
					}
					return build(mid, z1)
				}
				k = uint16(len(table))
				table = append(table, g)
				idx[g] = k
			}
			keys[v-z0*plane] = k
		}
		subs = append(subs, subEnc{z0: z0, z1: z1, table: table, keys: keys})
		return nil
	}
	if err := build(0, dim); err != nil {
		return nil, err
	}

	// Serialize.
	size := 12
	for _, s := range subs {
		kw := 2
		if len(s.table) <= 256 {
			kw = 1
		}
		size += 4 + 4 + 1 + 4 + len(s.table)*8 + len(s.keys)*kw
	}
	blob := make([]byte, 0, size)
	blob = binary.LittleEndian.AppendUint32(blob, blobMagic)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(dim))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(subs)))
	for _, s := range subs {
		kw := byte(2)
		if len(s.table) <= 256 {
			kw = 1
		}
		blob = binary.LittleEndian.AppendUint32(blob, uint32(s.z0))
		blob = binary.LittleEndian.AppendUint32(blob, uint32(s.z1))
		blob = append(blob, kw)
		blob = binary.LittleEndian.AppendUint32(blob, uint32(len(s.table)))
		for _, g := range s.table {
			for _, v := range g {
				blob = binary.LittleEndian.AppendUint16(blob, uint16(v))
			}
		}
		if kw == 1 {
			for _, k := range s.keys {
				blob = append(blob, byte(k))
			}
		} else {
			for _, k := range s.keys {
				blob = binary.LittleEndian.AppendUint16(blob, k)
			}
		}
	}
	return blob, nil
}

// format implements codec.Format.
type format struct {
	op    Op
	fused bool
}

// Format returns the default codec.Format: log1p fused into the table.
func Format() codec.Format { return format{op: OpLog1p, fused: true} }

func init() {
	codec.Register(Format())
	codec.Register(FormatWithOp(OpLog1p, false))
}

// FormatWithOp returns a Format applying the given operator. fused selects
// the table-level application (the paper's optimization); fused=false
// applies the op per voxel, for the ablation benchmark.
func FormatWithOp(op Op, fused bool) codec.Format { return format{op: op, fused: fused} }

func (f format) Name() string {
	if !f.fused {
		return "cosmo-lut-unfused"
	}
	return "cosmo-lut"
}

type sub struct {
	z0, z1   int
	keyWidth int
	ngroups  int
	rawTable []byte // ngroups * 8 bytes of int16 groups
	keys     []byte // (z1-z0)*dim^2 * keyWidth bytes
	// decoded is the fused table: 4 FP16 outputs per group (8 bytes — the
	// paper's lookup-value width), built once at Open.
	decoded []fp16.Bits
}

// Decoder decodes a LUT blob. Chunks are z-slices; DecodeChunk may be called
// concurrently on distinct chunks.
type Decoder struct {
	dim     int
	op      Op
	fused   bool
	subs    []sub
	blobLen int
	// subOfZ maps a z-slice to its sub-volume index.
	subOfZ []int
	// tables is the decoder's freelist of fused-table backing slices,
	// scavenged from recycled sub-volumes so a reused Decoder re-fuses its
	// groups into existing memory.
	tables [][]fp16.Bits
}

// decoderPool recycles Decoder structs — with their z-maps, sub-volume
// slices, and fused-table backing memory — between samples: the pipeline's
// decode stage hands finished decoders back via codec.Recycle, so a steady
// decode loop re-fuses each sample's groups into memory it already owns.
var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// getDecoder returns a reset Decoder whose subOfZ covers dim z-slices,
// reusing recycled backing memory when available.
func getDecoder(dim int) *Decoder {
	d := decoderPool.Get().(*Decoder)
	subOfZ := d.subOfZ
	if cap(subOfZ) < dim {
		subOfZ = make([]int, dim)
	}
	*d = Decoder{subOfZ: subOfZ[:dim], subs: d.subs[:0], tables: d.tables}
	return d
}

// getTable returns an n-element fused-table slice, preferring the freelist.
func (d *Decoder) getTable(n int) []fp16.Bits {
	for i, t := range d.tables {
		if cap(t) >= n {
			last := len(d.tables) - 1
			d.tables[i] = d.tables[last]
			d.tables = d.tables[:last]
			return t[:n]
		}
	}
	return make([]fp16.Bits, n)
}

// Recycle implements codec.Recycler: it drops every blob reference, keeps
// the fused-table memory on the decoder's freelist, and returns the decoder
// to the pool. The decoder must not be used afterwards.
func (d *Decoder) Recycle() {
	for i := range d.subs {
		if d.subs[i].decoded != nil {
			d.tables = append(d.tables, d.subs[i].decoded)
		}
		d.subs[i] = sub{}
	}
	subOfZ, subs, tables := d.subOfZ, d.subs[:0], d.tables
	*d = Decoder{subOfZ: subOfZ[:0], subs: subs, tables: tables}
	decoderPool.Put(d)
}

func (f format) Open(blob []byte) (codec.ChunkDecoder, error) {
	if f.op != OpLog1p && f.op != OpIdentity {
		return nil, fmt.Errorf("lut: unknown op %d", f.op)
	}
	if len(blob) < 12 {
		return nil, errors.New("lut: blob too short")
	}
	if binary.LittleEndian.Uint32(blob[0:]) != blobMagic {
		return nil, errors.New("lut: bad magic")
	}
	dim := int(binary.LittleEndian.Uint32(blob[4:]))
	nsub := int(binary.LittleEndian.Uint32(blob[8:]))
	if dim <= 0 || nsub <= 0 || nsub > dim {
		return nil, fmt.Errorf("lut: invalid header dim=%d nsub=%d", dim, nsub)
	}
	// Allocation guard: keys occupy at least one byte per voxel, so a blob
	// shorter than dim^3 cannot be valid; reject before allocating.
	if dim > 4096 || int64(len(blob)) < int64(dim)*int64(dim)*int64(dim) {
		return nil, fmt.Errorf("lut: dim %d implausible for a %d-byte blob", dim, len(blob))
	}
	d := getDecoder(dim)
	d.dim, d.op, d.fused, d.blobLen = dim, f.op, f.fused, len(blob)
	for i := range d.subOfZ {
		d.subOfZ[i] = -1
	}
	plane := dim * dim
	pos := 12
	for i := 0; i < nsub; i++ {
		if pos+13 > len(blob) {
			d.Recycle()
			return nil, errors.New("lut: truncated sub-volume header")
		}
		z0 := int(binary.LittleEndian.Uint32(blob[pos:]))
		z1 := int(binary.LittleEndian.Uint32(blob[pos+4:]))
		kw := int(blob[pos+8])
		ng := int(binary.LittleEndian.Uint32(blob[pos+9:]))
		pos += 13
		if z0 < 0 || z1 <= z0 || z1 > dim || (kw != 1 && kw != 2) || ng <= 0 || ng > math.MaxUint16+1 {
			d.Recycle()
			return nil, fmt.Errorf("lut: invalid sub-volume z=[%d,%d) kw=%d ng=%d", z0, z1, kw, ng)
		}
		if kw == 1 && ng > 256 {
			d.Recycle()
			return nil, errors.New("lut: 1-byte keys with >256 groups")
		}
		tlen := ng * 8
		klen := (z1 - z0) * plane * kw
		if pos+tlen+klen > len(blob) {
			d.Recycle()
			return nil, errors.New("lut: truncated sub-volume payload")
		}
		s := sub{
			z0: z0, z1: z1, keyWidth: kw, ngroups: ng,
			rawTable: blob[pos : pos+tlen],
			keys:     blob[pos+tlen : pos+tlen+klen],
		}
		pos += tlen + klen
		if f.fused {
			// The fused-operator optimization: op + FP16 cast on the unique
			// groups only.
			s.decoded = d.getTable(ng * 4)
			for g := 0; g < ng; g++ {
				for c := 0; c < 4; c++ {
					count := int16(binary.LittleEndian.Uint16(s.rawTable[g*8+c*2:]))
					s.decoded[g*4+c] = fp16.FromFloat32(f.op.Apply(count))
				}
			}
		}
		for z := z0; z < z1; z++ {
			if d.subOfZ[z] != -1 {
				d.subs = append(d.subs, s)
				d.Recycle()
				return nil, fmt.Errorf("lut: overlapping sub-volumes at z=%d", z)
			}
			d.subOfZ[z] = len(d.subs)
		}
		d.subs = append(d.subs, s)
	}
	if pos != len(blob) {
		d.Recycle()
		return nil, errors.New("lut: trailing bytes")
	}
	for z, si := range d.subOfZ {
		if si == -1 {
			d.Recycle()
			return nil, fmt.Errorf("lut: z=%d not covered by any sub-volume", z)
		}
	}
	return d, nil
}

// OutputShape implements codec.ChunkDecoder.
func (d *Decoder) OutputShape() tensor.Shape {
	return tensor.Shape{4, d.dim, d.dim, d.dim}
}

// OutputDType implements codec.ChunkDecoder.
func (d *Decoder) OutputDType() tensor.DType { return tensor.F16 }

// NumChunks implements codec.ChunkDecoder: one chunk per z-slice.
func (d *Decoder) NumChunks() int { return d.dim }

// NumSubVolumes returns the number of independent lookup tables.
func (d *Decoder) NumSubVolumes() int { return len(d.subs) }

// Groups returns the total unique-group count across sub-volumes.
func (d *Decoder) Groups() int {
	n := 0
	for _, s := range d.subs {
		n += s.ngroups
	}
	return n
}

// KeyWidth returns the key width in bytes of sub-volume i.
func (d *Decoder) KeyWidth(i int) int { return d.subs[i].keyWidth }

// Workload implements codec.ChunkDecoder.
func (d *Decoder) Workload() codec.Workload {
	n := d.dim * d.dim * d.dim
	ops := 5 * n // key fetch + 4 table reads/stores per voxel
	if !d.fused {
		ops += 4 * n * 8 // per-voxel log evaluation (ablation path)
	} else {
		ops += d.Groups() * 4 * 8 // log on unique groups only
	}
	return codec.Workload{
		BytesIn:  d.blobLen,
		BytesOut: 4 * n * 2,
		Ops:      ops,
		Chunks:   d.dim,
		// Table lookups are uniform control flow; no divergence.
		Divergent: 0,
	}
}

// DecodeChunk implements codec.ChunkDecoder: decodes z-slice chunk into all
// four channels of dst.
func (d *Decoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	if chunk < 0 || chunk >= d.dim {
		return fmt.Errorf("lut: chunk %d out of range", chunk)
	}
	if dst.DT != tensor.F16 || !dst.Shape.Equal(d.OutputShape()) {
		return fmt.Errorf("lut: dst must be F16 %v", d.OutputShape())
	}
	s := &d.subs[d.subOfZ[chunk]]
	plane := d.dim * d.dim
	vol := plane * d.dim
	local := (chunk - s.z0) * plane
	base := chunk * plane
	for p := 0; p < plane; p++ {
		var k int
		if s.keyWidth == 1 {
			k = int(s.keys[local+p])
		} else {
			k = int(binary.LittleEndian.Uint16(s.keys[(local+p)*2:]))
		}
		if k >= s.ngroups {
			return fmt.Errorf("lut: key %d out of table (%d groups)", k, s.ngroups)
		}
		out := base + p
		if d.fused {
			t := s.decoded[k*4 : k*4+4]
			dst.F16s[out] = t[0]
			dst.F16s[vol+out] = t[1]
			dst.F16s[2*vol+out] = t[2]
			dst.F16s[3*vol+out] = t[3]
		} else {
			// Ablation path: evaluate the op per voxel, as the baseline
			// preprocessing does.
			for c := 0; c < 4; c++ {
				count := int16(binary.LittleEndian.Uint16(s.rawTable[k*8+c*2:]))
				dst.F16s[c*vol+out] = fp16.FromFloat32(d.op.Apply(count))
			}
		}
	}
	return nil
}

// Stats summarizes an encoded blob.
type Stats struct {
	Dim          int
	SubVolumes   int
	Groups       int
	EncodedBytes int
	SourceBytes  int // int16 on-disk source size (4 channels)
	RawF32Bytes  int // FP32 in-memory size the baseline materializes
	Ratio        float64
}

// BlobStats inspects blob without decoding voxels.
func BlobStats(blob []byte) (Stats, error) {
	cd, err := Format().Open(blob)
	if err != nil {
		return Stats{}, err
	}
	d := cd.(*Decoder)
	n := d.dim * d.dim * d.dim
	src := 4 * n * 2
	return Stats{
		Dim:          d.dim,
		SubVolumes:   len(d.subs),
		Groups:       d.Groups(),
		EncodedBytes: d.blobLen,
		SourceBytes:  src,
		RawF32Bytes:  4 * n * 4,
		Ratio:        float64(src) / float64(d.blobLen),
	}, nil
}
