package lut

import (
	"math"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/fp16"
	"scipp/internal/synthetic"
	"scipp/internal/tensor"
	"scipp/internal/xrand"
)

func genSample(t testing.TB, dim, index int) *synthetic.CosmoSample {
	t.Helper()
	cfg := synthetic.DefaultCosmoConfig()
	cfg.Dim = dim
	s, err := synthetic.GenerateCosmo(cfg, index)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTripExactUnderLog(t *testing.T) {
	// The LUT decode must reproduce exactly what the baseline preprocessing
	// produces: fp16(log1p(count)) for every voxel. The encoding itself is
	// lossless; only the (shared) fp16 cast quantizes.
	s := genSample(t, 24, 0)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	out, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	vol := s.Dim * s.Dim * s.Dim
	for c := 0; c < 4; c++ {
		for i := 0; i < vol; i++ {
			want := fp16.FromFloat32(OpLog1p.Apply(s.Channels[c][i]))
			if out.F16s[c*vol+i] != want {
				t.Fatalf("channel %d voxel %d: got %v want %v", c, i,
					out.F16s[c*vol+i].ToFloat32(), want.ToFloat32())
			}
		}
	}
}

func TestIdentityOpRoundTrip(t *testing.T) {
	s := genSample(t, 16, 1)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := FormatWithOp(OpIdentity, true).Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	out, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	vol := s.Dim * s.Dim * s.Dim
	for c := 0; c < 4; c++ {
		for i := 0; i < vol; i++ {
			if got := out.F16s[c*vol+i].ToFloat32(); got != float32(s.Channels[c][i]) {
				t.Fatalf("identity decode channel %d voxel %d: %g != %d", c, i, got, s.Channels[c][i])
			}
		}
	}
}

func TestFusedMatchesUnfused(t *testing.T) {
	// The fused (table-level) and unfused (per-voxel) operator applications
	// must produce bit-identical FP16 output — fusion is a pure optimization.
	s := genSample(t, 20, 2)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FormatWithOp(OpLog1p, true).Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := FormatWithOp(OpLog1p, false).Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := codec.Decode(fused)
	if err != nil {
		t.Fatal(err)
	}
	b, err := codec.Decode(unfused)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.F16s {
		if a.F16s[i] != b.F16s[i] {
			t.Fatalf("fused/unfused differ at %d", i)
		}
	}
	// Fused should report far fewer ops.
	if fused.Workload().Ops >= unfused.Workload().Ops {
		t.Error("fused workload not cheaper than unfused")
	}
}

func TestCompressionRatio(t *testing.T) {
	// §V-B: "a compression factor of roughly 4x" vs the int16 source with
	// 2-byte keys. Accept anything >= 3x on synthetic data.
	s := genSample(t, 48, 3)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BlobStats(blob)
	if err != nil {
		t.Fatal(err)
	}
	// dim=48 leaves the table overhead under-amortized; the paper-scale ~4x
	// is reached at dim=128 (bench harness).
	if st.Ratio < 2.5 {
		t.Errorf("compression ratio %.2f, want >= 2.5x vs int16 source", st.Ratio)
	}
	if st.Ratio > 9 {
		t.Errorf("compression ratio %.2f implausibly high", st.Ratio)
	}
	t.Logf("dim=%d groups=%d subs=%d ratio=%.2fx", st.Dim, st.Groups, st.SubVolumes, st.Ratio)
}

func TestOneByteKeys(t *testing.T) {
	// A tiny low-diversity volume should fit in 256 groups and use 1-byte keys.
	dim := 8
	n := dim * dim * dim
	var ch [4][]int16
	for c := range ch {
		ch[c] = make([]int16, n)
		for i := range ch[c] {
			ch[c][i] = int16((i % 4) + c)
		}
	}
	blob, err := Encode(ch, dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	d := cd.(*Decoder)
	if d.NumSubVolumes() != 1 || d.KeyWidth(0) != 1 {
		t.Errorf("subs=%d kw=%d, want 1-byte keys in one sub-volume",
			d.NumSubVolumes(), d.KeyWidth(0))
	}
	if d.Groups() != 4 {
		t.Errorf("groups = %d, want 4", d.Groups())
	}
	out, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.F16s[0].ToFloat32(); math.Abs(float64(got)-math.Log1p(0)) > 1e-3 {
		t.Errorf("voxel 0 channel 0 = %g", got)
	}
}

func TestMultiTableSplit(t *testing.T) {
	// Force >65536 groups so the encoder must split into sub-volumes: use
	// unique group per voxel.
	dim := 44 // 85184 voxels > 65536
	n := dim * dim * dim
	var ch [4][]int16
	for c := range ch {
		ch[c] = make([]int16, n)
	}
	for i := 0; i < n; i++ {
		ch[0][i] = int16(i & 0x7FFF)
		ch[1][i] = int16((i >> 15) & 0x7FFF)
		ch[2][i] = int16(i % 37)
		ch[3][i] = int16(i % 41)
	}
	blob, err := Encode(ch, dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := FormatWithOp(OpIdentity, true).Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	d := cd.(*Decoder)
	if d.NumSubVolumes() < 2 {
		t.Fatalf("expected multi-table split, got %d sub-volumes", d.NumSubVolumes())
	}
	out, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check exactness across the split boundary.
	r := xrand.New(1)
	for k := 0; k < 1000; k++ {
		i := r.Intn(n)
		c := r.Intn(4)
		if got := out.F16s[c*n+i].ToFloat32(); got != fp16.RoundTrip32(float32(ch[c][i])) {
			t.Fatalf("voxel %d channel %d: %g != %d", i, c, got, ch[c][i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	s := genSample(t, 24, 4)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := codec.Decode(cd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := codec.DecodeParallel(cd, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.F16s {
		if a.F16s[i] != b.F16s[i] {
			t.Fatal("parallel decode differs")
		}
	}
}

func TestWorkload(t *testing.T) {
	s := genSample(t, 16, 5)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	wl := cd.Workload()
	if wl.Chunks != 16 {
		t.Errorf("Chunks = %d, want 16 (z-slices)", wl.Chunks)
	}
	n := 16 * 16 * 16
	if wl.BytesOut != 4*n*2 {
		t.Errorf("BytesOut = %d", wl.BytesOut)
	}
	if wl.Divergent != 0 {
		t.Error("LUT decode should have no divergent chunks")
	}
	if wl.SerialBytes != 0 {
		t.Error("LUT decode should have no serial stage")
	}
}

func TestEncodeValidation(t *testing.T) {
	var ch [4][]int16
	if _, err := Encode(ch, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	for c := range ch {
		ch[c] = make([]int16, 8)
	}
	if _, err := Encode(ch, 3); err == nil {
		t.Error("mismatched channel length accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Format().Open(nil); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := Format().Open(make([]byte, 32)); err == nil {
		t.Error("garbage accepted")
	}
	s := genSample(t, 12, 6)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{8, 13, len(blob) / 2, len(blob) - 1} {
		if _, err := Format().Open(blob[:cut]); err == nil {
			t.Errorf("truncated blob (%d) accepted", cut)
		}
	}
	// Trailing junk.
	if _, err := Format().Open(append(append([]byte(nil), blob...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeChunkValidation(t *testing.T) {
	s := genSample(t, 12, 7)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(tensor.F16, 4, 12, 12, 12)
	if err := cd.DecodeChunk(-1, dst); err == nil {
		t.Error("negative chunk accepted")
	}
	if err := cd.DecodeChunk(12, dst); err == nil {
		t.Error("chunk beyond dim accepted")
	}
	if err := cd.DecodeChunk(0, tensor.New(tensor.F32, 4, 12, 12, 12)); err == nil {
		t.Error("F32 dst accepted")
	}
}

func TestGroupsMatchStatsPackage(t *testing.T) {
	// Decoder group count must equal the independent stats-package count
	// when a single table covers the volume.
	s := genSample(t, 20, 8)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	d := cd.(*Decoder)
	if d.NumSubVolumes() == 1 {
		want := uniqueGroupsRef(s.Channels)
		if d.Groups() != want {
			t.Errorf("Groups = %d, reference count %d", d.Groups(), want)
		}
	}
}

func uniqueGroupsRef(ch [4][]int16) int {
	m := make(map[group]struct{})
	for i := range ch[0] {
		m[group{ch[0][i], ch[1][i], ch[2][i], ch[3][i]}] = struct{}{}
	}
	return len(m)
}

func BenchmarkEncode(b *testing.B) {
	s := genSample(b, 48, 0)
	b.SetBytes(int64(s.StoredBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(s.Channels, s.Dim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFused(b *testing.B) {
	s := genSample(b, 48, 0)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		b.Fatal(err)
	}
	cd, err := Format().Open(blob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.RawBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(cd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUnfused(b *testing.B) {
	// Ablation: per-voxel log instead of table-level log.
	s := genSample(b, 48, 0)
	blob, err := Encode(s.Channels, s.Dim)
	if err != nil {
		b.Fatal(err)
	}
	cd, err := FormatWithOp(OpLog1p, false).Open(blob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.RawBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(cd); err != nil {
			b.Fatal(err)
		}
	}
}
