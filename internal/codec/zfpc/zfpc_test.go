package zfpc

import (
	"math"
	"testing"
	"testing/quick"

	"scipp/internal/stats"
	"scipp/internal/synthetic"
	"scipp/internal/xrand"
)

func TestLiftInverse(t *testing.T) {
	// zfp's lifting pair is range-contracting (the forward matrix carries a
	// 1/16 factor), so inversion is exact only down to a few integer units
	// of rounding — which sit far below the quantization floor in use.
	f := func(a, b, c, d int16) bool {
		p := [4]int32{int32(a) << 8, int32(b) << 8, int32(c) << 8, int32(d) << 8}
		orig := p
		fwdLift(&p)
		invLift(&p)
		for i := range p {
			diff := p[i] - orig[i]
			if diff < -8 || diff > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSequencyOrder(t *testing.T) {
	seen := map[int]bool{}
	for _, idx := range seqOrder {
		if idx < 0 || idx > 15 || seen[idx] {
			t.Fatalf("seqOrder not a permutation: %v", seqOrder)
		}
		seen[idx] = true
	}
	if seqOrder[0] != 0 {
		t.Error("DC coefficient must come first")
	}
	// Bands must be non-decreasing.
	for k := 1; k < 16; k++ {
		if seqBand[k] < seqBand[k-1] {
			t.Error("sequency bands not ordered")
		}
	}
}

func TestRoundTripSmooth(t *testing.T) {
	h, w := 32, 48
	data := make([]float32, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			data[y*w+x] = 100 + 10*float32(math.Sin(float64(x)*0.2))*float32(math.Cos(float64(y)*0.15))
		}
	}
	blob, err := Encode(data, h, w, Options{Rate: 10})
	if err != nil {
		t.Fatal(err)
	}
	dec, dh, dw, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dh != h || dw != w {
		t.Fatalf("dims %dx%d", dh, dw)
	}
	st := stats.RelativeErrors(data, dec, 0.01)
	if st.MaxRel > 0.02 {
		t.Errorf("max relative error %.4f too large for rate 10 on smooth data", st.MaxRel)
	}
}

func TestRoundTripSpecialBlocks(t *testing.T) {
	// All-zero plane.
	zero := make([]float32, 16)
	blob, err := Encode(zero, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, _, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("zero block decoded %g at %d", v, i)
		}
	}
	// Constant plane: DC-only, should be near-exact.
	konst := make([]float32, 64)
	for i := range konst {
		konst[i] = -7.25
	}
	blob, err = Encode(konst, 8, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, _, err = Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if math.Abs(float64(v)+7.25) > 0.01 {
			t.Fatalf("const block decoded %g at %d", v, i)
		}
	}
}

func TestPartialEdgeBlocks(t *testing.T) {
	// Dimensions not divisible by 4.
	h, w := 7, 9
	data := make([]float32, h*w)
	r := xrand.New(3)
	for i := range data {
		data[i] = 50 + float32(r.NormFloat64())
	}
	blob, err := Encode(data, h, w, Options{Rate: 12})
	if err != nil {
		t.Fatal(err)
	}
	dec, dh, dw, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dh != h || dw != w || len(dec) != h*w {
		t.Fatalf("decoded dims %dx%d", dh, dw)
	}
	st := stats.RelativeErrors(data, dec, 0.05)
	if st.FracAbove > 0.02 {
		t.Errorf("%.1f%% of edge-block values above 5%% error", 100*st.FracAbove)
	}
}

func TestFixedRateSize(t *testing.T) {
	h, w := 64, 64
	data := make([]float32, h*w)
	for i := range data {
		data[i] = float32(i % 37)
	}
	for _, rate := range []int{4, 8, 12, 16} {
		blob, err := Encode(data, h, w, Options{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != EncodedSize(h, w, rate) {
			t.Errorf("rate %d: size %d, predicted %d", rate, len(blob), EncodedSize(h, w, rate))
		}
	}
	// Higher rate, bigger blob, smaller error.
	lo, _ := Encode(data, h, w, Options{Rate: 4})
	hi, _ := Encode(data, h, w, Options{Rate: 16})
	if len(lo) >= len(hi) {
		t.Error("rate 4 not smaller than rate 16")
	}
}

func TestRateQualityTradeoff(t *testing.T) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 1
	cfg.Height = 64
	cfg.Width = 96
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, rate := range []int{6, 10, 14} {
		blob, err := Encode(s.Data.F32s, cfg.Height, cfg.Width, Options{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		dec, _, _, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		st := stats.RelativeErrors(s.Data.F32s, dec, 0.10)
		if st.MeanRel >= prevErr {
			t.Errorf("rate %d: error %.5f did not improve on previous %.5f", rate, st.MeanRel, prevErr)
		}
		prevErr = st.MeanRel
	}
}

func TestValidation(t *testing.T) {
	if _, err := Encode(make([]float32, 5), 2, 3, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Encode(make([]float32, 6), 2, 3, Options{Rate: 99}); err == nil {
		t.Error("bad rate accepted")
	}
	bad := make([]float32, 4)
	bad[2] = float32(math.NaN())
	if _, err := Encode(bad, 2, 2, Options{}); err == nil {
		t.Error("NaN accepted")
	}
	if _, _, _, err := Decode(nil); err == nil {
		t.Error("nil blob accepted")
	}
	if _, _, _, err := Decode([]byte("0123456789012")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDecodeTruncation(t *testing.T) {
	data := make([]float32, 64)
	for i := range data {
		data[i] = float32(i)
	}
	blob, err := Encode(data, 8, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{13, 14, len(blob) - 1} {
		if _, _, _, err := Decode(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 1
	cfg.Height = 192
	cfg.Width = 288
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(s.Data.F32s) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(s.Data.F32s, cfg.Height, cfg.Width, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	cfg := synthetic.DefaultClimateConfig()
	cfg.Channels = 1
	cfg.Height = 192
	cfg.Width = 288
	s, err := synthetic.GenerateClimate(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := Encode(s.Data.F32s, cfg.Height, cfg.Width, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(s.Data.F32s) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}
