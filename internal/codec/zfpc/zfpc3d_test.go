package zfpc

import (
	"math"
	"testing"

	"scipp/internal/codec/lut"
	"scipp/internal/stats"
	"scipp/internal/synthetic"
	"scipp/internal/xrand"
)

func TestSeq3DPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, idx := range seq3D {
		if idx < 0 || idx > 63 || seen[idx] {
			t.Fatalf("seq3D not a permutation")
		}
		seen[idx] = true
	}
	for n := 1; n < 64; n++ {
		if seq3DBand[n] < seq3DBand[n-1] {
			t.Fatal("3D bands not ordered")
		}
	}
}

func TestRoundTrip3DSmooth(t *testing.T) {
	d := 16
	data := make([]float32, d*d*d)
	for z := 0; z < d; z++ {
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				data[(z*d+y)*d+x] = 50 + 5*float32(math.Sin(0.3*float64(x))*math.Cos(0.2*float64(y))*math.Sin(0.25*float64(z)))
			}
		}
	}
	blob, err := Encode3D(data, d, Options{Rate: 10})
	if err != nil {
		t.Fatal(err)
	}
	dec, dd, err := Decode3D(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dd != d {
		t.Fatalf("dim %d", dd)
	}
	st := stats.RelativeErrors(data, dec, 0.01)
	if st.MaxRel > 0.03 {
		t.Errorf("3D max relative error %.4f too large", st.MaxRel)
	}
}

func TestRoundTrip3DEdgeBlocks(t *testing.T) {
	d := 10 // not divisible by 4
	data := make([]float32, d*d*d)
	r := xrand.New(9)
	for i := range data {
		data[i] = 20 + float32(r.NormFloat64())
	}
	blob, err := Encode3D(data, d, Options{Rate: 12})
	if err != nil {
		t.Fatal(err)
	}
	dec, dd, err := Decode3D(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dd != d || len(dec) != d*d*d {
		t.Fatal("dims")
	}
	st := stats.RelativeErrors(data, dec, 0.05)
	if st.FracAbove > 0.02 {
		t.Errorf("%.1f%% above 5%% error on edge blocks", 100*st.FracAbove)
	}
}

func TestFixedRate3DSize(t *testing.T) {
	d := 16
	data := make([]float32, d*d*d)
	for i := range data {
		data[i] = float32(i % 91)
	}
	for _, rate := range []int{6, 10, 14} {
		blob, err := Encode3D(data, d, Options{Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != EncodedSize3D(d, rate) {
			t.Errorf("rate %d: size %d, predicted %d", rate, len(blob), EncodedSize3D(d, rate))
		}
	}
}

func TestZfp3DOnCosmoData(t *testing.T) {
	// The comparison §V-B implies: on CosmoFlow counts, the LUT codec is
	// exact under fp16(log1p(.)) while a general-purpose FP compressor at a
	// similar rate is lossy on the counts themselves.
	cfg := synthetic.DefaultCosmoConfig()
	cfg.Dim = 32
	s, err := synthetic.GenerateCosmo(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 as FP32.
	vol := make([]float32, cfg.Dim*cfg.Dim*cfg.Dim)
	for i, v := range s.Channels[0] {
		vol[i] = float32(v)
	}
	blob, err := Encode3D(vol, cfg.Dim, Options{Rate: 8})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decode3D(blob)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.RelativeErrors(vol, dec, 0.10)
	// Particle counts are spiky; a fixed-rate transform codec cannot keep
	// them exact (its errors break the unique-group structure the LUT codec
	// preserves losslessly).
	if st.MaxAbs == 0 {
		t.Error("zfp-style codec reproduced counts exactly; comparison claim would be vacuous")
	}
	// Exactness check for the LUT path on the same data.
	lutBlob, err := lut.Encode(s.Channels, s.Dim)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := lut.BlobStats(lutBlob)
	if err != nil {
		t.Fatal(err)
	}
	zfpRatio := float64(len(vol)*4) / float64(len(blob))
	t.Logf("zfp3d rate8: ratio %.2fx vs FP32, >10%%err %.2f%%; lut: %.2fx vs int16 (lossless)",
		zfpRatio, 100*st.FracAbove, lst.Ratio)
}

func TestDecode3DValidation(t *testing.T) {
	if _, _, err := Decode3D(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, _, err := Decode3D([]byte("012345678")); err == nil {
		t.Error("garbage accepted")
	}
	data := make([]float32, 64)
	blob, err := Encode3D(data, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode3D(blob[:len(blob)-1]); err == nil {
		// all-zero blocks are 1 byte each; trimming the last byte must fail
		t.Error("truncated 3D blob accepted")
	}
	if _, err := Encode3D(make([]float32, 10), 4, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLift3DInverse(t *testing.T) {
	r := xrand.New(17)
	var q [64]int32
	for i := range q {
		q[i] = int32(r.Intn(1<<20)) - 1<<19
	}
	orig := q
	lift3D(&q, 1, true)
	lift3D(&q, 4, true)
	lift3D(&q, 16, true)
	lift3D(&q, 16, false)
	lift3D(&q, 4, false)
	lift3D(&q, 1, false)
	for i := range q {
		diff := q[i] - orig[i]
		if diff < -32 || diff > 32 {
			t.Fatalf("3D lift not approximately invertible at %d: diff %d", i, diff)
		}
	}
}
