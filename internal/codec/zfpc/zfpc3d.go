package zfpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// 3D variant: 4x4x4 blocks with the lifting transform applied along each
// axis — zfp's native mode for volumetric scientific data, applied here to
// CosmoFlow-style voxel grids for the related-work comparison.

const blobMagic3D = 0x5A465033 // "ZFP3"

// seq3D orders the 64 coefficients of a 4x4x4 block by total band i+j+k.
var seq3D = buildSeq3D()
var seq3DBand = buildSeq3DBand()

func buildSeq3D() [64]int {
	var order [64]int
	n := 0
	for band := 0; band <= 9; band++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				k := band - i - j
				if k >= 0 && k < 4 {
					order[n] = (i*4+j)*4 + k
					n++
				}
			}
		}
	}
	return order
}

func buildSeq3DBand() [64]int {
	var b [64]int
	for n, idx := range buildSeq3D() {
		b[n] = idx/16 + (idx/4)%4 + idx%4
	}
	return b
}

// bitsFor3D allocates storage width by band with a 1-bit/band decay (3D
// bands run 0..9, so the 2D decay of 2 bits/band would zero too much).
func bitsFor3D(rate, n int) int {
	b := rate + 6 - seq3DBand[n]
	if b < 0 {
		return 0
	}
	if b > 30 {
		b = 30
	}
	return b
}

func block3DBits(rate int) int {
	total := 0
	for n := 0; n < 64; n++ {
		total += bitsFor3D(rate, n)
	}
	return total
}

// Encode3D compresses a [D, D, D] FP32 volume (flat, x-fastest) at the
// given options. Partial edge blocks replicate the boundary.
func Encode3D(data []float32, d int, opts Options) ([]byte, error) {
	if d <= 0 || len(data) != d*d*d {
		return nil, fmt.Errorf("zfpc: bad volume %d^3 with %d values", d, len(data))
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	for _, v := range data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return nil, errors.New("zfpc: non-finite values are not representable in block-floating-point")
		}
	}
	nb := (d + 3) / 4
	header := make([]byte, 0, 9)
	header = binary.LittleEndian.AppendUint32(header, blobMagic3D)
	header = binary.LittleEndian.AppendUint32(header, uint32(d))
	header = append(header, byte(opts.Rate))

	bits := newBitWriter()
	var block [64]float32
	for bz := 0; bz < nb; bz++ {
		for by := 0; by < nb; by++ {
			for bx := 0; bx < nb; bx++ {
				gather3D(data, d, bz, by, bx, &block)
				encodeBlock3D(&block, opts.Rate, bits)
			}
		}
	}
	return append(header, bits.bytes()...), nil
}

func gather3D(data []float32, d, bz, by, bx int, out *[64]float32) {
	for i := 0; i < 4; i++ {
		z := bz*4 + i
		if z >= d {
			z = d - 1
		}
		for j := 0; j < 4; j++ {
			y := by*4 + j
			if y >= d {
				y = d - 1
			}
			for k := 0; k < 4; k++ {
				x := bx*4 + k
				if x >= d {
					x = d - 1
				}
				out[(i*4+j)*4+k] = data[(z*d+y)*d+x]
			}
		}
	}
}

// lift3D applies fwdLift along one axis of the 4x4x4 block.
func lift3D(q *[64]int32, stride int, fwd bool) {
	// The block decomposes into 16 independent 4-vectors along each axis.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			var base int
			switch stride {
			case 1: // x axis: vary k
				base = (a*4 + b) * 4
			case 4: // y axis: vary j
				base = a*16 + b
			case 16: // z axis: vary i
				base = a*4 + b
			}
			var v [4]int32
			for t := 0; t < 4; t++ {
				v[t] = q[base+t*stride]
			}
			if fwd {
				fwdLift(&v)
			} else {
				invLift(&v)
			}
			for t := 0; t < 4; t++ {
				q[base+t*stride] = v[t]
			}
		}
	}
}

func encodeBlock3D(block *[64]float32, rate int, bits *bitWriter) {
	maxAbs := float32(0)
	for _, v := range block {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		bits.write(0, 8)
		return
	}
	_, emax := math.Frexp(float64(maxAbs))
	biased := emax + 128
	if biased < 1 {
		biased = 1
	}
	if biased > 255 {
		biased = 255
	}
	bits.write(uint64(biased), 8)
	emax = biased - 128

	scale := math.Ldexp(1, 24-emax) // 3 lifting passes: an extra headroom bit
	var q [64]int32
	for i, v := range block {
		q[i] = int32(math.Round(float64(v) * scale))
	}
	lift3D(&q, 1, true)
	lift3D(&q, 4, true)
	lift3D(&q, 16, true)
	for n := 0; n < 64; n++ {
		b := bitsFor3D(rate, n)
		if b == 0 {
			continue
		}
		shift := 27 - b
		c := q[seq3D[n]]
		neg := c < 0
		if neg {
			c = -c
		}
		v := c >> uint(shift)
		lim := int32(1)<<(b-1) - 1
		if v > lim {
			v = lim
		}
		if neg {
			v = -v
		}
		bits.write(uint64(uint32(v))&((1<<uint(b))-1), b)
	}
}

// Decode3D reconstructs the FP32 volume from an Encode3D blob.
func Decode3D(blob []byte) ([]float32, int, error) {
	if len(blob) < 9 {
		return nil, 0, errors.New("zfpc: blob too short")
	}
	if binary.LittleEndian.Uint32(blob[0:]) != blobMagic3D {
		return nil, 0, errors.New("zfpc: bad 3D magic")
	}
	d := int(binary.LittleEndian.Uint32(blob[4:]))
	rate := int(blob[8])
	if d <= 0 || d > 4096 || rate < 4 || rate > 16 {
		return nil, 0, fmt.Errorf("zfpc: invalid 3D header d=%d rate=%d", d, rate)
	}
	nb := (d + 3) / 4
	if int64(nb)*int64(nb)*int64(nb) > int64(len(blob))*8 {
		return nil, 0, fmt.Errorf("zfpc: header implies %d blocks from %d bytes", nb*nb*nb, len(blob))
	}
	bits := &bitReader{data: blob[9:]}
	out := make([]float32, d*d*d)
	var block [64]float32
	for bz := 0; bz < nb; bz++ {
		for by := 0; by < nb; by++ {
			for bx := 0; bx < nb; bx++ {
				if err := decodeBlock3D(&block, rate, bits); err != nil {
					return nil, 0, err
				}
				scatter3D(out, d, bz, by, bx, &block)
			}
		}
	}
	return out, d, nil
}

func decodeBlock3D(block *[64]float32, rate int, bits *bitReader) error {
	biased, err := bits.read(8)
	if err != nil {
		return err
	}
	if biased == 0 {
		for i := range block {
			block[i] = 0
		}
		return nil
	}
	emax := int(biased) - 128
	var q [64]int32
	for n := 0; n < 64; n++ {
		b := bitsFor3D(rate, n)
		if b == 0 {
			q[seq3D[n]] = 0
			continue
		}
		raw, err := bits.read(b)
		if err != nil {
			return err
		}
		v := int32(raw << (32 - uint(b)))
		v >>= 32 - uint(b)
		shift := 27 - b
		var rec int32
		if v != 0 {
			neg := v < 0
			a := v
			if neg {
				a = -v
			}
			rec = a << uint(shift)
			if shift > 0 {
				rec |= 1 << uint(shift-1)
			}
			if neg {
				rec = -rec
			}
		}
		q[seq3D[n]] = rec
	}
	lift3D(&q, 16, false)
	lift3D(&q, 4, false)
	lift3D(&q, 1, false)
	scale := math.Ldexp(1, emax-24)
	for i, v := range q {
		block[i] = float32(float64(v) * scale)
	}
	return nil
}

func scatter3D(out []float32, d, bz, by, bx int, block *[64]float32) {
	for i := 0; i < 4; i++ {
		z := bz*4 + i
		if z >= d {
			continue
		}
		for j := 0; j < 4; j++ {
			y := by*4 + j
			if y >= d {
				continue
			}
			for k := 0; k < 4; k++ {
				x := bx*4 + k
				if x >= d {
					continue
				}
				out[(z*d+y)*d+x] = block[(i*4+j)*4+k]
			}
		}
	}
}

// EncodedSize3D predicts the 3D blob size.
func EncodedSize3D(d, rate int) int {
	nb := (d + 3) / 4
	perBlockBits := 8 + block3DBits(rate)
	totalBits := nb * nb * nb * perBlockBits
	return 9 + (totalBits+7)/8
}
