// Package zfpc implements a simplified zfp-style fixed-rate block-transform
// compressor for 2D FP32 fields — the class of general-purpose
// floating-point compressors the paper's related work covers (zfp/fpzip,
// §III refs [24]-[27]) and sets aside: "they do not provide mixed-precision
// solutions, specifically targeting 16-bit floating-point representation,
// and the support on accelerator architecture is limited. Moreover, most
// compression frameworks do not provide the flexibility to fuse or reorder
// user-level compute operations with the decompression process."
//
// The scheme follows zfp's structure (per 4x4 block: block-floating-point
// alignment to a common exponent, the zfp integer lifting transform along
// each axis, sequency-ordered coefficients, coarser quantization for higher
// bands) in a simplified fixed-rate layout. It exists as a comparator: the
// encbench tool reports its ratio/error next to the paper's domain codec,
// and it intentionally decodes only to FP32 on the host — no FP16 output,
// no operator fusion, no chunk-decoder plugin — mirroring the limitations
// the paper cites.
package zfpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Options configure the encoder.
type Options struct {
	// Rate is the nominal bits per value (4..16). Payload per 4x4 block is
	// fixed at 16*Rate bits plus a 1-byte block exponent.
	Rate int
}

// DefaultRate gives ~3.6x compression vs FP32, comparable to the paper's
// domain codec, for an apples-to-apples error comparison.
const DefaultRate = 8

func (o Options) withDefaults() Options {
	if o.Rate == 0 {
		o.Rate = DefaultRate
	}
	return o
}

func (o Options) validate() error {
	if o.Rate < 4 || o.Rate > 16 {
		return fmt.Errorf("zfpc: rate %d out of [4,16]", o.Rate)
	}
	return nil
}

const blobMagic = 0x5A465043 // "ZFPC"

// sequency order of 4x4 coefficients: by band (i+j), then row. Band 0 is
// the DC coefficient; band 6 the highest-frequency corner.
var seqOrder = buildSeqOrder()

// band[k] is the total order (i+j) of the k-th coefficient in seqOrder.
var seqBand = buildSeqBand()

func buildSeqOrder() [16]int {
	var order [16]int
	k := 0
	for band := 0; band <= 6; band++ {
		for i := 0; i < 4; i++ {
			j := band - i
			if j >= 0 && j < 4 {
				order[k] = i*4 + j
				k++
			}
		}
	}
	return order
}

func buildSeqBand() [16]int {
	var b [16]int
	for k, idx := range buildSeqOrder() {
		b[k] = idx/4 + idx%4
	}
	return b
}

// bitsFor returns the quantized storage width of sequency position k at the
// given rate: higher bands lose two bits per band, zfp's energy heuristic.
func bitsFor(rate, k int) int {
	b := rate + 6 - 2*seqBand[k]
	if b < 0 {
		return 0
	}
	if b > 30 {
		b = 30
	}
	return b
}

// blockBits returns the packed payload bits per block at a rate.
func blockBits(rate int) int {
	total := 0
	for k := 0; k < 16; k++ {
		total += bitsFor(rate, k)
	}
	return total
}

// fwdLift is zfp's forward decorrelating transform on a 4-vector.
func fwdLift(p *[4]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// invLift inverts fwdLift exactly.
func invLift(p *[4]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// Encode compresses a [H, W] FP32 plane (passed as a flat slice) at the
// given options. Partial edge blocks are padded by replicating the last row
// and column.
func Encode(data []float32, h, w int, opts Options) ([]byte, error) {
	if h <= 0 || w <= 0 || len(data) != h*w {
		return nil, fmt.Errorf("zfpc: bad plane %dx%d with %d values", h, w, len(data))
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	for _, v := range data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return nil, errors.New("zfpc: non-finite values are not representable in block-floating-point")
		}
	}
	bh, bw := (h+3)/4, (w+3)/4
	header := make([]byte, 0, 17)
	header = binary.LittleEndian.AppendUint32(header, blobMagic)
	header = binary.LittleEndian.AppendUint32(header, uint32(h))
	header = binary.LittleEndian.AppendUint32(header, uint32(w))
	header = append(header, byte(opts.Rate))

	bits := newBitWriter()
	var block [16]float32
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			gatherBlock(data, h, w, by, bx, &block)
			encodeBlock(&block, opts.Rate, bits)
		}
	}
	return append(header, bits.bytes()...), nil
}

func gatherBlock(data []float32, h, w, by, bx int, out *[16]float32) {
	for i := 0; i < 4; i++ {
		y := by*4 + i
		if y >= h {
			y = h - 1
		}
		for j := 0; j < 4; j++ {
			x := bx*4 + j
			if x >= w {
				x = w - 1
			}
			out[i*4+j] = data[y*w+x]
		}
	}
}

func encodeBlock(block *[16]float32, rate int, bits *bitWriter) {
	// Block-floating-point: align to the common (max) exponent.
	maxAbs := float32(0)
	for _, v := range block {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		bits.write(0, 8) // emax byte 0 = all-zero block
		return
	}
	_, emax := math.Frexp(float64(maxAbs))
	// Store emax biased into a byte (field range approximately 2^-127..2^126).
	biased := emax + 128
	if biased < 1 {
		biased = 1
	}
	if biased > 255 {
		biased = 255
	}
	bits.write(uint64(biased), 8)
	emax = biased - 128

	// Fixed-point: i = v * 2^(25 - emax), |i| < 2^25; two lifting passes add
	// at most ~2 bits of growth, safely inside int32.
	scale := math.Ldexp(1, 25-emax)
	var q [16]int32
	for i, v := range block {
		q[i] = int32(math.Round(float64(v) * scale))
	}
	// Decorrelate rows, then columns.
	for r := 0; r < 4; r++ {
		var row [4]int32
		copy(row[:], q[r*4:r*4+4])
		fwdLift(&row)
		copy(q[r*4:r*4+4], row[:])
	}
	for c := 0; c < 4; c++ {
		col := [4]int32{q[c], q[4+c], q[8+c], q[12+c]}
		fwdLift(&col)
		q[c], q[4+c], q[8+c], q[12+c] = col[0], col[1], col[2], col[3]
	}
	// Quantize per sequency position and pack. Quantization rounds toward
	// zero symmetrically: an arithmetic shift would floor small negative
	// coefficients to -1 and reconstruct them half a step away.
	for k := 0; k < 16; k++ {
		b := bitsFor(rate, k)
		if b == 0 {
			continue
		}
		shift := 27 - b // keep the top b bits of the +-2^27 coefficient range
		c := q[seqOrder[k]]
		neg := c < 0
		if neg {
			c = -c
		}
		v := c >> uint(shift)
		lim := int32(1)<<(b-1) - 1
		if v > lim {
			v = lim
		}
		if neg {
			v = -v
		}
		bits.write(uint64(uint32(v))&((1<<uint(b))-1), b)
	}
}

// Decode reconstructs the FP32 plane from an Encode blob.
func Decode(blob []byte) ([]float32, int, int, error) {
	if len(blob) < 13 {
		return nil, 0, 0, errors.New("zfpc: blob too short")
	}
	if binary.LittleEndian.Uint32(blob[0:]) != blobMagic {
		return nil, 0, 0, errors.New("zfpc: bad magic")
	}
	h := int(binary.LittleEndian.Uint32(blob[4:]))
	w := int(binary.LittleEndian.Uint32(blob[8:]))
	rate := int(blob[12])
	if h <= 0 || w <= 0 || rate < 4 || rate > 16 {
		return nil, 0, 0, fmt.Errorf("zfpc: invalid header h=%d w=%d rate=%d", h, w, rate)
	}
	bh, bw := (h+3)/4, (w+3)/4
	// Allocation guard: payload is bounded below by one emax byte per block.
	if int64(bh)*int64(bw) > int64(len(blob))*8 {
		return nil, 0, 0, fmt.Errorf("zfpc: header implies %d blocks from %d bytes", bh*bw, len(blob))
	}
	bits := &bitReader{data: blob[13:]}
	out := make([]float32, h*w)
	var block [16]float32
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			if err := decodeBlock(&block, rate, bits); err != nil {
				return nil, 0, 0, err
			}
			scatterBlock(out, h, w, by, bx, &block)
		}
	}
	return out, h, w, nil
}

func decodeBlock(block *[16]float32, rate int, bits *bitReader) error {
	biased, err := bits.read(8)
	if err != nil {
		return err
	}
	if biased == 0 {
		for i := range block {
			block[i] = 0
		}
		return nil
	}
	emax := int(biased) - 128
	var q [16]int32
	for k := 0; k < 16; k++ {
		b := bitsFor(rate, k)
		if b == 0 {
			q[seqOrder[k]] = 0
			continue
		}
		raw, err := bits.read(b)
		if err != nil {
			return err
		}
		// Sign-extend the b-bit value.
		v := int32(raw << (32 - uint(b)))
		v >>= 32 - uint(b)
		shift := 27 - b
		// Reconstruct at the bucket midpoint, symmetrically around zero.
		var rec int32
		if v != 0 {
			neg := v < 0
			a := v
			if neg {
				a = -v
			}
			rec = a << uint(shift)
			if shift > 0 {
				rec |= 1 << uint(shift-1)
			}
			if neg {
				rec = -rec
			}
		}
		q[seqOrder[k]] = rec
	}
	for c := 0; c < 4; c++ {
		col := [4]int32{q[c], q[4+c], q[8+c], q[12+c]}
		invLift(&col)
		q[c], q[4+c], q[8+c], q[12+c] = col[0], col[1], col[2], col[3]
	}
	for r := 0; r < 4; r++ {
		var row [4]int32
		copy(row[:], q[r*4:r*4+4])
		invLift(&row)
		copy(q[r*4:r*4+4], row[:])
	}
	scale := math.Ldexp(1, emax-25)
	for i, v := range q {
		block[i] = float32(float64(v) * scale)
	}
	return nil
}

func scatterBlock(out []float32, h, w, by, bx int, block *[16]float32) {
	for i := 0; i < 4; i++ {
		y := by*4 + i
		if y >= h {
			continue
		}
		for j := 0; j < 4; j++ {
			x := bx*4 + j
			if x >= w {
				continue
			}
			out[y*w+x] = block[i*4+j]
		}
	}
}

// EncodedSize predicts the blob size for a plane at a rate.
func EncodedSize(h, w, rate int) int {
	bh, bw := (h+3)/4, (w+3)/4
	perBlockBits := 8 + blockBits(rate)
	totalBits := bh * bw * perBlockBits
	return 13 + (totalBits+7)/8
}

// --- bit IO ---

type bitWriter struct {
	buf []byte
	acc uint64
	n   int
}

func newBitWriter() *bitWriter { return &bitWriter{} }

func (bw *bitWriter) write(v uint64, bits int) {
	bw.acc |= (v & ((1 << uint(bits)) - 1)) << uint(bw.n)
	bw.n += bits
	for bw.n >= 8 {
		bw.buf = append(bw.buf, byte(bw.acc))
		bw.acc >>= 8
		bw.n -= 8
	}
}

func (bw *bitWriter) bytes() []byte {
	out := bw.buf
	if bw.n > 0 {
		out = append(out, byte(bw.acc))
	}
	return out
}

type bitReader struct {
	data []byte
	pos  int
	acc  uint64
	n    int
}

func (br *bitReader) read(bits int) (uint64, error) {
	for br.n < bits {
		if br.pos >= len(br.data) {
			return 0, errors.New("zfpc: truncated bit stream")
		}
		br.acc |= uint64(br.data[br.pos]) << uint(br.n)
		br.pos++
		br.n += 8
	}
	v := br.acc & ((1 << uint(bits)) - 1)
	br.acc >>= uint(bits)
	br.n -= bits
	return v, nil
}
