package zfpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scipp/internal/codec"
	"scipp/internal/tensor"
)

// The registry wrappers expose zfpc through the codec plugin contract the
// way the paper characterizes general-purpose FP compressors: a serial,
// host-CPU, FP32-only decode. Each decoder reports a single chunk with the
// whole payload as SerialBytes, so the pipeline cost models charge it
// entirely to the CPU — the comparator's handicap is part of its contract.

func init() {
	codec.Register(format2D{})
	codec.Register(format3D{})
}

type format2D struct{}

// Name implements codec.Format.
func (format2D) Name() string { return "zfpc2d" }

// Open implements codec.Format for Encode blobs.
func (format2D) Open(blob []byte) (codec.ChunkDecoder, error) {
	if len(blob) < 13 {
		return nil, errors.New("zfpc: blob too short")
	}
	if binary.LittleEndian.Uint32(blob[0:]) != blobMagic {
		return nil, errors.New("zfpc: bad magic")
	}
	h := int(binary.LittleEndian.Uint32(blob[4:]))
	w := int(binary.LittleEndian.Uint32(blob[8:]))
	rate := int(blob[12])
	if h <= 0 || w <= 0 || h > 1<<20 || w > 1<<20 || rate < 4 || rate > 16 {
		return nil, fmt.Errorf("zfpc: invalid header h=%d w=%d rate=%d", h, w, rate)
	}
	return &serialDecoder{blob: blob, shape: tensor.Shape{h, w}}, nil
}

type format3D struct{}

// Name implements codec.Format.
func (format3D) Name() string { return "zfpc3d" }

// Open implements codec.Format for Encode3D blobs.
func (format3D) Open(blob []byte) (codec.ChunkDecoder, error) {
	if len(blob) < 9 {
		return nil, errors.New("zfpc: blob too short")
	}
	if binary.LittleEndian.Uint32(blob[0:]) != blobMagic3D {
		return nil, errors.New("zfpc: bad 3D magic")
	}
	d := int(binary.LittleEndian.Uint32(blob[4:]))
	rate := int(blob[8])
	if d <= 0 || d > 4096 || rate < 4 || rate > 16 {
		return nil, fmt.Errorf("zfpc: invalid 3D header d=%d rate=%d", d, rate)
	}
	return &serialDecoder{blob: blob, shape: tensor.Shape{d, d, d}, is3D: true}, nil
}

// serialDecoder adapts the whole-blob Decode/Decode3D paths to the
// ChunkDecoder interface as one serial chunk.
type serialDecoder struct {
	blob  []byte
	shape tensor.Shape
	is3D  bool
}

// OutputShape implements codec.ChunkDecoder.
func (d *serialDecoder) OutputShape() tensor.Shape { return d.shape }

// OutputDType implements codec.ChunkDecoder: zfpc decodes only to FP32.
func (d *serialDecoder) OutputDType() tensor.DType { return tensor.F32 }

// NumChunks implements codec.ChunkDecoder: the bitstream decodes serially.
func (d *serialDecoder) NumChunks() int { return 1 }

// Workload implements codec.ChunkDecoder.
func (d *serialDecoder) Workload() codec.Workload {
	n := d.shape.Elems()
	return codec.Workload{
		BytesIn:     len(d.blob),
		BytesOut:    4 * n,
		Ops:         4 * n, // lifting transform + dequantize per value
		Chunks:      1,
		SerialBytes: len(d.blob), // no parallel or accelerator decode path
	}
}

// DecodeChunk implements codec.ChunkDecoder.
func (d *serialDecoder) DecodeChunk(chunk int, dst *tensor.Tensor) error {
	if chunk != 0 {
		return fmt.Errorf("zfpc: chunk %d out of range", chunk)
	}
	if dst.DT != tensor.F32 || !dst.Shape.Equal(d.shape) {
		return fmt.Errorf("zfpc: dst must be F32 %v", d.shape)
	}
	var (
		vals []float32
		err  error
	)
	if d.is3D {
		vals, _, err = Decode3D(d.blob)
	} else {
		vals, _, _, err = Decode(d.blob)
	}
	if err != nil {
		return err
	}
	copy(dst.F32s, vals)
	return nil
}
