package codec

import (
	"errors"
	"testing"

	"scipp/internal/tensor"
)

// boundedFormat declares a shape bound; probedFormat reads shapes from the
// blob header; plainFormat does neither, exercising the fallbacks.
type boundedFormat struct{ fakeFormat }

func (boundedFormat) MaxShape() (tensor.DType, tensor.Shape) {
	return tensor.F32, tensor.Shape{2, 16}
}

type probedFormat struct{ fakeFormat }

func (probedFormat) ProbeShape(blob []byte) (tensor.DType, tensor.Shape, error) {
	if len(blob) == 0 {
		return 0, nil, errors.New("empty blob")
	}
	return tensor.F16, tensor.Shape{int(blob[0])}, nil
}

func TestMaxShape(t *testing.T) {
	dt, shape, ok := MaxShape(boundedFormat{})
	if !ok || dt != tensor.F32 || !shape.Equal(tensor.Shape{2, 16}) {
		t.Errorf("MaxShape = %v %v %v, want F32 [2 16] true", dt, shape, ok)
	}
	if _, _, ok := MaxShape(fakeFormat{name: "plain"}); ok {
		t.Error("unbounded format reported a shape bound")
	}
}

func TestProbeShapeWithProber(t *testing.T) {
	dt, shape, err := ProbeShape(probedFormat{}, []byte{9})
	if err != nil || dt != tensor.F16 || !shape.Equal(tensor.Shape{9}) {
		t.Errorf("ProbeShape = %v %v %v, want F16 [9] nil", dt, shape, err)
	}
	if _, _, err := ProbeShape(probedFormat{}, nil); err == nil {
		t.Error("prober error was swallowed")
	}
}

func TestProbeShapeFallbackOpens(t *testing.T) {
	// fakeFormat has no prober: the fallback opens the blob and reports the
	// decoder's own shape.
	dt, shape, err := ProbeShape(fakeFormat{name: "plain"}, []byte{1, 2, 3})
	if err != nil || dt != tensor.F32 || !shape.Equal(tensor.Shape{4}) {
		t.Errorf("fallback ProbeShape = %v %v %v, want F32 [4] nil", dt, shape, err)
	}
}

type failOpenFormat struct{ fakeFormat }

func (failOpenFormat) Open([]byte) (ChunkDecoder, error) {
	return nil, errors.New("corrupt blob")
}

func TestProbeShapeFallbackOpenError(t *testing.T) {
	if _, _, err := ProbeShape(failOpenFormat{}, []byte{1}); err == nil {
		t.Error("fallback swallowed the open error")
	}
}
