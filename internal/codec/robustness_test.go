package codec_test

// Adversarial-input robustness: every registered format must reject
// arbitrary garbage, random truncations and random byte flips of valid
// blobs with an error — never a panic or a hang. Decoders run on data
// staged through shared filesystems; a corrupt sample must fail cleanly.

import (
	"fmt"
	"testing"

	"scipp/internal/codec"
	"scipp/internal/codec/deltafp"
	"scipp/internal/codec/gzipc"
	"scipp/internal/codec/lut"
	"scipp/internal/codec/rawfmt"
	"scipp/internal/codec/zfpc"
	"scipp/internal/core"
	"scipp/internal/synthetic"
	"scipp/internal/xrand"
)

// tryOpenDecode opens and fully decodes, converting panics into errors.
func tryOpenDecode(f codec.Format, blob []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC: %v", r)
		}
	}()
	cd, err := f.Open(blob)
	if err != nil {
		return err
	}
	_, err = codec.Decode(cd)
	return err
}

// buildValidBlobs returns one valid encoded blob per registered format
// name. It deliberately avoids *testing.T so the fuzz targets can reuse it
// as their seed corpus; the same blob serves every format that shares an
// encoding (deltafp/deltafp-hwc, cosmo-lut/cosmo-lut-unfused).
func buildValidBlobs() (map[string][]byte, error) {
	climCfg := synthetic.DefaultClimateConfig()
	climCfg.Channels = 2
	climCfg.Height = 16
	climCfg.Width = 48
	clim, err := core.BuildClimateDataset(climCfg, 1, core.Plugin)
	if err != nil {
		return nil, err
	}
	climRaw, err := core.BuildClimateDataset(climCfg, 1, core.Baseline)
	if err != nil {
		return nil, err
	}
	climGz, err := core.BuildClimateDataset(climCfg, 1, core.Gzip)
	if err != nil {
		return nil, err
	}
	cosmoCfg := synthetic.DefaultCosmoConfig()
	cosmoCfg.Dim = 16
	cosmo, err := core.BuildCosmoDataset(cosmoCfg, 1, core.Plugin)
	if err != nil {
		return nil, err
	}
	cosmoRaw, err := core.BuildCosmoDataset(cosmoCfg, 1, core.Baseline)
	if err != nil {
		return nil, err
	}
	cosmoGz, err := core.BuildCosmoDataset(cosmoCfg, 1, core.Gzip)
	if err != nil {
		return nil, err
	}
	// zfpc comparator blobs: a smooth 2D field and a small 3D volume.
	r := xrand.New(4242)
	field := make([]float32, 16*48)
	for i := range field {
		field[i] = float32(r.NormFloat64())
	}
	z2d, err := zfpc.Encode(field, 16, 48, zfpc.Options{})
	if err != nil {
		return nil, err
	}
	vol := make([]float32, 8*8*8)
	for i := range vol {
		vol[i] = float32(r.NormFloat64())
	}
	z3d, err := zfpc.Encode3D(vol, 8, zfpc.Options{})
	if err != nil {
		return nil, err
	}
	return map[string][]byte{
		"deltafp":           clim.Blobs[0],
		"deltafp-hwc":       clim.Blobs[0],
		"raw-deepcam":       climRaw.Blobs[0],
		"gzip+raw-deepcam":  climGz.Blobs[0],
		"cosmo-lut":         cosmo.Blobs[0],
		"cosmo-lut-unfused": cosmo.Blobs[0],
		"raw-cosmo":         cosmoRaw.Blobs[0],
		"gzip+raw-cosmo":    cosmoGz.Blobs[0],
		"zfpc2d":            z2d,
		"zfpc3d":            z3d,
	}, nil
}

func validBlobs(t *testing.T) map[string][]byte {
	t.Helper()
	m, err := buildValidBlobs()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// formatByName resolves a format through its public constructor where one
// exists (exercising the constructors as well as the registry) and falls
// back to the registry for the rest. Shared with the fuzz targets, so no
// *testing.T.
func formatByName(name string) (codec.Format, error) {
	switch name {
	case "deltafp":
		return deltafp.Format(), nil
	case "deltafp-hwc":
		return deltafp.FormatHWC(), nil
	case "raw-deepcam":
		return rawfmt.DeepCAM(), nil
	case "gzip+raw-deepcam":
		return gzipc.Wrap(rawfmt.DeepCAM()), nil
	case "cosmo-lut":
		return lut.Format(), nil
	case "cosmo-lut-unfused":
		return lut.FormatWithOp(lut.OpLog1p, false), nil
	case "raw-cosmo":
		return rawfmt.Cosmo(), nil
	case "gzip+raw-cosmo":
		return gzipc.Wrap(rawfmt.Cosmo()), nil
	}
	// zfpc registers through the codec registry (package init).
	return codec.Lookup(name)
}

func formatFor(t *testing.T, name string) codec.Format {
	t.Helper()
	f, err := formatByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidBlobsDecode(t *testing.T) {
	for name, blob := range validBlobs(t) {
		if err := tryOpenDecode(formatFor(t, name), blob); err != nil {
			t.Errorf("%s: valid blob failed: %v", name, err)
		}
	}
}

func TestRandomGarbageNeverPanics(t *testing.T) {
	r := xrand.New(99)
	for name := range validBlobs(t) {
		f := formatFor(t, name)
		for trial := 0; trial < 200; trial++ {
			n := r.Intn(512)
			garbage := make([]byte, n)
			for i := range garbage {
				garbage[i] = byte(r.Uint64())
			}
			if err := tryOpenDecode(f, garbage); err == nil {
				// Vanishingly unlikely that garbage forms a valid blob of
				// any size; treat success as suspicious only for non-empty
				// inputs.
				if n > 0 {
					t.Errorf("%s: random garbage (%d bytes) decoded successfully", name, n)
				}
			} else if len(err.Error()) > 5 && err.Error()[:5] == "PANIC" {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestTruncationsNeverPanic(t *testing.T) {
	r := xrand.New(7)
	for name, blob := range validBlobs(t) {
		f := formatFor(t, name)
		for trial := 0; trial < 100; trial++ {
			cut := r.Intn(len(blob))
			if err := tryOpenDecode(f, blob[:cut]); err != nil {
				if len(err.Error()) > 5 && err.Error()[:5] == "PANIC" {
					t.Fatalf("%s: truncation at %d: %v", name, cut, err)
				}
			}
		}
	}
}

func TestByteFlipsNeverPanic(t *testing.T) {
	r := xrand.New(13)
	for name, blob := range validBlobs(t) {
		f := formatFor(t, name)
		for trial := 0; trial < 300; trial++ {
			mutated := append([]byte(nil), blob...)
			// Flip 1-4 random bytes.
			for k := 0; k <= r.Intn(4); k++ {
				mutated[r.Intn(len(mutated))] ^= byte(1 + r.Intn(255))
			}
			if err := tryOpenDecode(f, mutated); err != nil {
				if len(err.Error()) > 5 && err.Error()[:5] == "PANIC" {
					t.Fatalf("%s: byte flip: %v", name, err)
				}
			}
			// Decoding may succeed with wrong content (flips inside payload
			// values) — that is acceptable; panics and hangs are not.
		}
	}
}
